(** The property-testing engine: seeded generators, labeled properties,
    integrated greedy shrinking, deterministic replay.

    This is the reusable core that {!Shrink} (and through it the
    differential fuzzer) and the translation-validation campaigns are built
    on.  Everything is a pure function of an explicit seed: a property run
    derives one independent rng per case with {!Yali_util.Rng.split_ix}
    keyed by (seed, property name, case index), so any failing case can be
    replayed in isolation and results do not depend on how many other
    properties ran first. *)

(** A seeded generator: equal rng states produce equal values. *)
type 'a gen = Yali_util.Rng.t -> 'a

(** [minimize ~measure ~candidates pred x] — the generic greedy shrinking
    loop: repeatedly replace [x] with the first candidate that strictly
    decreases [measure] (polymorphic compare) and still satisfies [pred]
    ("still fails"), until none does.  Deterministic; terminates because
    the measure decreases strictly.  [max_checks] caps predicate calls,
    which dominate the cost. *)
val minimize :
  ?max_checks:int ->
  measure:('a -> 'm) ->
  candidates:('a -> 'a list) ->
  ('a -> bool) ->
  'a ->
  'a

(** A packed, labeled property (the type parameter is hidden so suites mix
    properties over different carrier types). *)
type t

(** [make ~name gen law] — a labeled property: [law] must hold for every
    generated value.  [law] may raise; exceptions are reported as failures
    with the exception text.  [show] renders counterexamples (default
    ["<opaque>"]); [candidates]/[measure] enable integrated shrinking of a
    failing case (defaults: no shrinking).  [max_count] caps the number of
    cases this one property runs regardless of the [count] passed to
    {!run} — for oracles whose per-case cost (e.g. an [ocamlopt]
    invocation) makes the deep tier's global count prohibitive.  Case
    indices below the cap are unchanged, so replay keys stay valid. *)
val make :
  name:string ->
  ?show:('a -> string) ->
  ?candidates:('a -> 'a list) ->
  ?measure:('a -> int) ->
  ?max_count:int ->
  'a gen ->
  ('a -> bool) ->
  t

val name : t -> string

type outcome =
  | Pass of { cases : int }
  | Fail of {
      case_ix : int;  (** replay key: [run_case ~seed prop case_ix] *)
      error : string option;  (** exception text, [None] for plain falsity *)
      counterexample : string;
      shrunk : string option;  (** rendered minimized case, when shrinkable *)
    }

type result = { r_name : string; r_outcome : outcome }

(** [run ~seed ~count prop] — check [count] generated cases (stops at the
    first failure, then shrinks it). *)
val run : ?count:int -> seed:int -> t -> result

(** [run_case ~seed prop ix] — replay exactly case [ix] of [run ~seed];
    true when the law holds. *)
val run_case : seed:int -> t -> int -> bool

val run_all : ?count:int -> seed:int -> t list -> result list
val failed : result list -> result list
val pp_result : Format.formatter -> result -> unit
val summary : result list -> string
