(** Per-pass translation validation.

    One {!validate} call proves one pass on one program: lower at [-O0],
    verify, execute on seeded input vectors (under the engine selected in
    {!Yali_vm.Execution} — the VM by default, [--engine=ref] for the frozen
    interpreter; both produce bit-identical outcomes); apply
    {e just that pass}; re-verify the SSA/dominance invariants
    ({!Yali_ir.Verify.check_module}); re-run and compare observable
    behaviour.  This is the per-pass refinement of the whole-pipeline
    differential oracle in [lib/fuzz] — a miscompile is localized to the
    single pass that introduced it rather than to a 5-stage pipeline.

    {!campaign} fans generated programs out over the {!Yali_exec.Pool}
    (bit-identical findings at any [--jobs]), replays the persisted
    regression corpus first, and minimizes every failing program with
    {!Shrink} down to a minimal reproducer + pass name. *)

module Rng = Yali_util.Rng

type failure_kind =
  | Verify_failed of { error : string }
      (** the pass broke an SSA/dominance/CFG invariant *)
  | Transform_crash of { error : string }
  | Run_crash of { input_ix : int; error : string }
  | Divergence of { input_ix : int; expected : string; got : string }

type verdict =
  | Valid  (** verifier-clean and observationally equivalent *)
  | Bad_baseline of string
      (** the program itself failed to lower/verify/run — a generator or
          corpus problem, not attributable to the pass *)
  | Miscompiled of failure_kind

val failure_kind_to_string : failure_kind -> string

(** [validate entry rng p] — rng children: 0 seeds the input vectors,
    [salt entry.ename] seeds the pass (stable under re-validation of a
    single pass, as the shrink predicate does). *)
val validate :
  ?fuel:int ->
  ?vectors:int ->
  Passdb.entry ->
  Rng.t ->
  Yali_minic.Ast.program ->
  verdict

type failure = {
  f_pass : string;
  f_origin : string;  (** ["gen:<ix>"] or ["corpus:<file>"] *)
  f_kind : failure_kind;
  f_engine : string;
      (** execution engine ({!Yali_vm.Execution}) that observed it *)
  f_program : Yali_minic.Ast.program;
  f_minimized : Yali_minic.Ast.program option;
}

val pp_failure : Format.formatter -> failure -> unit

type config = {
  seed : int;
  per_pass : int;  (** generated programs validated against every entry *)
  entries : Passdb.entry list;
  gen_cfg : Gen.cfg;
  fuel : int;
  vectors : int;
  shrink : bool;
  shrink_checks : int;
  corpus_dir : string option;  (** replayed through every entry first *)
  log : string -> unit;
}

(** Seed 42, 50 programs per pass, {!Passdb.all}, shrinking on, corpus
    replay from {!Corpus.default_dir}. *)
val default : config

type report = {
  c_passes : int;  (** entries validated *)
  c_programs : int;  (** distinct programs (corpus + generated) *)
  c_corpus : int;  (** corpus entries replayed *)
  c_validations : int;  (** program x pass validations *)
  c_failures : failure list;
  c_elapsed : float;
}

val run : config -> report
val summary : report -> string
