(** See oracles.mli. *)

module Rng = Yali_util.Rng
module Ml = Yali_ml
module F = Yali_ml.Fmat
module M = Yali_ml.Matrix
module Pool = Yali_exec.Pool
module Cache = Yali_exec.Cache

let finite x = Float.is_finite x
let in_unit x = finite x && 0.0 <= x && x <= 1.0

(* -- kernels vs lib/ml/reference.ml ---------------------------------------- *)

(* labelled class-separable count features (<= 256 distinct values per
   feature, the tree's histogram path) *)
let gen_dataset (rng : Rng.t) =
  let n_classes = 2 + Rng.int rng 3 in
  let n = 10 + Rng.int rng 50 and d = 1 + Rng.int rng 8 in
  let sample m =
    Array.init m (fun _ ->
        let cls = Rng.int rng n_classes in
        let x =
          Array.init d (fun j ->
              float_of_int
                (Rng.int rng 8 + if j mod n_classes = cls then 6 else 0))
        in
        (x, cls))
  in
  let train = sample n and test = sample 16 in
  let train_seed = Rng.int rng 1_000_000 in
  (n_classes, Array.map fst train, Array.map snd train, Array.map fst test,
   train_seed)

let show_dataset (n_classes, xs, _, txs, seed) =
  Printf.sprintf "dataset n=%d d=%d classes=%d queries=%d seed=%d"
    (Array.length xs)
    (if Array.length xs = 0 then 0 else Array.length xs.(0))
    n_classes (Array.length txs) seed

let tree_vs_reference (n_classes, xs, ys, txs, seed) =
  let t_new = Ml.Decision_tree.train (Rng.make seed) ~n_classes (F.of_rows xs) ys in
  let t_ref = Ml.Reference.Decision_tree.train (Rng.make seed) ~n_classes xs ys in
  Array.for_all
    (fun x -> Ml.Decision_tree.predict t_new x = Ml.Reference.Decision_tree.predict t_ref x)
    (Array.append xs txs)

let forest_vs_reference (n_classes, xs, ys, txs, seed) =
  let params = { Ml.Random_forest.n_trees = 5; max_depth = 6 } in
  let ref_params = { Ml.Reference.Random_forest.n_trees = 5; max_depth = 6 } in
  let f_new = Ml.Random_forest.train ~params (Rng.make seed) ~n_classes (F.of_rows xs) ys in
  let f_ref =
    Ml.Reference.Random_forest.train ~params:ref_params (Rng.make seed) ~n_classes xs ys
  in
  Array.for_all
    (fun x -> Ml.Random_forest.predict f_new x = Ml.Reference.Random_forest.predict f_ref x)
    (Array.append xs txs)

(* continuous features for the knn oracle: with quantized counts, two
   distinct training points can be exactly equidistant from a query, and
   knn.mli documents that the norm-expanded distance breaks such ties by
   float rounding rather than row index — gaussians make exact ties
   measure-zero, so prediction equality is the right law *)
let gen_gauss_dataset (rng : Rng.t) =
  let n_classes = 2 + Rng.int rng 3 in
  let n = 10 + Rng.int rng 50 and d = 2 + Rng.int rng 7 in
  let sample m =
    Array.init m (fun _ ->
        let cls = Rng.int rng n_classes in
        let x =
          Array.init d (fun j ->
              Rng.gaussian rng
              +. (if j mod n_classes = cls then 4.0 else 0.0))
        in
        (x, cls))
  in
  let train = sample n and test = sample 16 in
  let train_seed = Rng.int rng 1_000_000 in
  (n_classes, Array.map fst train, Array.map snd train, Array.map fst test,
   train_seed)

let knn_vs_reference (n_classes, xs, ys, txs, _seed) =
  let m_new = Ml.Knn.train ~n_classes (F.of_rows xs) ys in
  let m_ref = Ml.Reference.Knn.train ~n_classes xs ys in
  Array.for_all
    (fun x -> Ml.Knn.predict m_new x = Ml.Reference.Knn.predict m_ref x)
    txs

let gen_matmul (rng : Rng.t) =
  let n = 1 + Rng.int rng 40
  and k = 1 + Rng.int rng 40
  and p = 1 + Rng.int rng 40 in
  (M.random rng n k ~scale:1.0, M.random rng k p ~scale:1.0)

let show_matmul ((a : M.t), (b : M.t)) =
  Printf.sprintf "matmul %dx%d * %dx%d" a.M.rows a.M.cols b.M.rows b.M.cols

let matmul_bit_identical (a, b) = (M.matmul a b).M.data = (M.matmul_naive a b).M.data

let matmul_bias_matches (a, b) =
  let p = b.M.cols and k = a.M.cols and n = a.M.rows in
  let bias = Array.init p (fun j -> float_of_int j /. 7.0) in
  let c = M.matmul_bias ~bias a b in
  let expected =
    M.init n p (fun i j ->
        let acc = ref bias.(j) in
        for l = 0 to k - 1 do
          acc := !acc +. (M.get a i l *. M.get b l j)
        done;
        !acc)
  in
  c.M.data = expected.M.data

let gen_fmat (rng : Rng.t) =
  let n = 1 + Rng.int rng 30 and d = 1 + Rng.int rng 8 in
  Array.init n (fun _ -> Array.init d (fun _ -> Rng.gaussian rng))

let fmat_layout_laws rows =
  let m = F.of_rows rows in
  let d = m.F.d in
  F.to_rows m = rows
  && Array.for_all
       (fun i ->
         let buf = Array.make d 0.0 in
         F.row_into m i buf;
         buf = F.row_copy m i && buf = rows.(i))
       (Array.init m.F.n Fun.id)
  && Array.for_all
       (fun i ->
         let v = Array.init d (fun j -> float_of_int (j + 1)) in
         let naive = ref 0.0 in
         Array.iteri (fun j x -> naive := !naive +. (x *. v.(j))) rows.(i);
         F.dot_row_vec m i v = !naive)
       (Array.init m.F.n Fun.id)

let kernels =
  [
    Prop.make ~name:"kernels/tree-vs-reference" ~show:show_dataset gen_dataset
      tree_vs_reference;
    Prop.make ~name:"kernels/forest-vs-reference" ~show:show_dataset
      gen_dataset forest_vs_reference;
    Prop.make ~name:"kernels/knn-vs-reference" ~show:show_dataset
      gen_gauss_dataset knn_vs_reference;
    Prop.make ~name:"kernels/matmul-tiled-vs-naive" ~show:show_matmul
      gen_matmul matmul_bit_identical;
    Prop.make ~name:"kernels/matmul-bias-vs-loop" ~show:show_matmul gen_matmul
      matmul_bias_matches;
    Prop.make ~name:"kernels/fmat-layout-laws"
      ~show:(fun rows -> Printf.sprintf "fmat %d rows" (Array.length rows))
      gen_fmat fmat_layout_laws;
  ]

(* -- Ml.Metrics axioms ------------------------------------------------------ *)

(* labels drawn so that every degenerate shape occurs: empty arrays, a
   single class, classes never predicted, classes never true *)
let gen_labels (rng : Rng.t) =
  let n_classes = 1 + Rng.int rng 5 in
  let n = Rng.int rng 30 in
  let draw () = Array.init n (fun _ -> Rng.int rng n_classes) in
  (n_classes, draw (), draw ())

let show_labels (n_classes, truth, _) =
  Printf.sprintf "labels n=%d classes=%d" (Array.length truth) n_classes

let accuracy_bounds (_, truth, pred) = in_unit (Ml.Metrics.accuracy truth pred)

let confusion_row_sums (n_classes, truth, pred) =
  let c = Ml.Metrics.confusion ~n_classes truth pred in
  Array.for_all
    (fun t ->
      let row_sum = Array.fold_left ( + ) 0 c.Ml.Metrics.counts.(t) in
      let expect =
        Array.fold_left (fun k t' -> if t' = t then k + 1 else k) 0 truth
      in
      row_sum = expect)
    (Array.init n_classes Fun.id)

let prf1_defined (n_classes, truth, pred) =
  let c = Ml.Metrics.confusion ~n_classes truth pred in
  Array.for_all
    (fun cls ->
      let p, r, f1 = Ml.Metrics.precision_recall_f1 c cls in
      in_unit p && in_unit r && in_unit f1)
    (Array.init n_classes Fun.id)

let macro_f1_bounds (n_classes, truth, pred) =
  in_unit (Ml.Metrics.macro_f1 (Ml.Metrics.confusion ~n_classes truth pred))

let gen_sample (rng : Rng.t) =
  List.init (Rng.int rng 20) (fun _ -> Rng.gaussian rng *. 10.0)

let boxplot_ordered xs =
  let bp = Ml.Metrics.boxplot xs in
  finite bp.Ml.Metrics.bp_min && finite bp.Ml.Metrics.q1
  && finite bp.Ml.Metrics.median && finite bp.Ml.Metrics.q3
  && finite bp.Ml.Metrics.bp_max && finite bp.Ml.Metrics.bp_mean
  && bp.Ml.Metrics.bp_min <= bp.Ml.Metrics.q1
  && bp.Ml.Metrics.q1 <= bp.Ml.Metrics.median
  && bp.Ml.Metrics.median <= bp.Ml.Metrics.q3
  && bp.Ml.Metrics.q3 <= bp.Ml.Metrics.bp_max

let sample_stats_defined xs =
  finite (Ml.Metrics.mean xs) && finite (Ml.Metrics.stddev xs)
  && finite (Ml.Metrics.welch_t xs (List.map (fun x -> x +. 1.0) xs))

let metrics =
  [
    Prop.make ~name:"metrics/accuracy-in-unit-interval" ~show:show_labels
      gen_labels accuracy_bounds;
    Prop.make ~name:"metrics/confusion-row-sums" ~show:show_labels gen_labels
      confusion_row_sums;
    Prop.make ~name:"metrics/precision-recall-f1-defined" ~show:show_labels
      gen_labels prf1_defined;
    Prop.make ~name:"metrics/macro-f1-in-unit-interval" ~show:show_labels
      gen_labels macro_f1_bounds;
    Prop.make ~name:"metrics/boxplot-ordered-and-finite"
      ~show:(fun xs -> Printf.sprintf "sample of %d" (List.length xs))
      gen_sample boxplot_ordered;
    Prop.make ~name:"metrics/sample-stats-defined"
      ~show:(fun xs -> Printf.sprintf "sample of %d" (List.length xs))
      gen_sample sample_stats_defined;
  ]

(* -- Exec determinism ------------------------------------------------------- *)

(* a pure per-index task with enough arithmetic to interleave under any
   schedule; determinism means the slot array is independent of jobs *)
let gen_pool_case (rng : Rng.t) =
  let n = Rng.int rng 200 in
  let jobs = 1 + Rng.int rng 8 in
  let seed = Rng.int rng 1_000_000 in
  (n, jobs, seed)

let show_pool_case (n, jobs, seed) =
  Printf.sprintf "pool n=%d jobs=%d seed=%d" n jobs seed

let task seed i =
  let r = Rng.split_ix (Rng.make seed) i in
  let acc = ref 0L in
  for _ = 0 to 64 do
    acc := Int64.add !acc (Rng.next_int64 r)
  done;
  !acc

let pool_run_deterministic (n, jobs, seed) =
  let fill () =
    let slots = Array.make n 0L in
    Pool.run ~n (fun i -> slots.(i) <- task seed i);
    slots
  in
  Pool.with_jobs 1 fill = Pool.with_jobs jobs fill

let pool_map_rng_deterministic (n, jobs, seed) =
  let xs = Array.init n Fun.id in
  let map () =
    Pool.parallel_array_map_rng (Rng.make seed)
      (fun r i -> Int64.add (Rng.next_int64 r) (Int64.of_int i))
      xs
  in
  Pool.with_jobs 1 map = Pool.with_jobs jobs map

let cache_transparent (n, _, seed) =
  let cache = Cache.create ~capacity:64 () in
  let key i = Printf.sprintf "k%d" (i mod 16) in
  let ok = ref true in
  for i = 0 to min n 64 - 1 do
    let v = Cache.find_or_compute cache ~key:(key i) (fun () -> task seed (i mod 16)) in
    if v <> task seed (i mod 16) then ok := false
  done;
  !ok

let exec =
  [
    Prop.make ~name:"exec/pool-run-jobs-invariant" ~show:show_pool_case
      gen_pool_case pool_run_deterministic;
    Prop.make ~name:"exec/pool-map-rng-jobs-invariant" ~show:show_pool_case
      gen_pool_case pool_map_rng_deterministic;
    Prop.make ~name:"exec/cache-transparent" ~show:show_pool_case gen_pool_case
      cache_transparent;
  ]

(* -- execution engines: lib/vm vs the frozen reference interpreter --------- *)

module Interp = Yali_ir.Interp

(* One case = one generated program pushed through every registered pipeline
   variant (the 22 of {!Pipelines.all}) and executed under both engines on
   seeded inputs.  The engines must agree on the FULL outcome — output,
   foutput, exit value, steps and abstract cost, not just the observation —
   and on the exception classification (the exact [Trap] message vs
   [Out_of_fuel]).  Variants whose transforms crash or fail the verifier are
   skipped here: those are translation-validation findings, and unverified
   SSA is outside the VM's exactness contract (vm.mli). *)
let engine_fuel = 200_000

let gen_engine_case (rng : Rng.t) =
  (Gen.program (Rng.split_ix rng 0), Rng.split_ix rng 1)

let show_engine_case ((p : Yali_minic.Ast.program), _) =
  Yali_minic.Pp.program_to_string p

let classify (run : unit -> Interp.outcome) =
  match run () with
  | o -> Ok o
  | exception Interp.Trap msg -> Error ("trap: " ^ msg)
  | exception Interp.Out_of_fuel -> Error "out of fuel"
  | exception e -> Error ("exn: " ^ Printexc.to_string e)

let engine_inputs (rng : Rng.t) =
  Array.init 2 (fun ix ->
      let r = Rng.split_ix rng ix in
      List.init 32 (fun _ -> Int64.of_int (Rng.int_range r (-1000) 1000)))

let vm_matches_interp ((p : Yali_minic.Ast.program), (rng : Rng.t)) : bool =
  let inputs = engine_inputs (Rng.split_ix rng 0) in
  match Yali_minic.Lower.lower_program p with
  | exception _ -> true (* a lowering crash is another oracle's finding *)
  | m0 ->
      let variant_ok k (v : Pipelines.variant) =
        let vrng = Rng.split_ix rng (1 + k) in
        match
          List.fold_left
            (fun (m, ix) (s : Pipelines.stage) ->
              (s.srun (Rng.split_ix vrng ix) m, ix + 1))
            (m0, 0) v.vstages
        with
        | exception _ -> true
        | m, _ ->
            if Yali_ir.Verify.check_module m <> [] then true
            else
              let fuel = engine_fuel * v.vfuel in
              let cp = Yali_vm.Vm.compile m in
              Array.for_all
                (fun input ->
                  let a = classify (fun () -> Interp.run ~fuel m input) in
                  let b =
                    classify (fun () ->
                        Yali_vm.Vm.run_compiled ~fuel cp input)
                  in
                  match (a, b) with
                  | Ok oa, Ok ob -> Stdlib.compare oa ob = 0
                  | Error ea, Error eb -> String.equal ea eb
                  | Ok _, Error _ | Error _, Ok _ -> false)
                inputs
      in
      List.for_all Fun.id (List.mapi variant_ok Pipelines.all)

(* The native tier against the frozen reference interpreter, same contract
   as {!vm_matches_interp}: full-outcome bit identity (steps and cost
   included) plus exact exception classification, across every registered
   pipeline variant.  All of a case's surviving variant modules are batched
   into a single plugin ({!Yali_native.Native.prepare_many}) so each case
   pays one [ocamlopt] invocation, not 22.  When the toolchain is absent
   the case passes vacuously — that environment is the fallback tests'
   concern — but a compile [Error] on a verified module is a finding: the
   codegen rejected input inside its contract. *)
let native_matches_interp ((p : Yali_minic.Ast.program), (rng : Rng.t)) : bool =
  if not (Yali_native.Native.available ()) then true
  else
    let inputs = engine_inputs (Rng.split_ix rng 0) in
    match Yali_minic.Lower.lower_program p with
    | exception _ -> true (* a lowering crash is another oracle's finding *)
    | m0 ->
        let live =
          List.filter_map Fun.id
            (List.mapi
               (fun k (v : Pipelines.variant) ->
                 let vrng = Rng.split_ix rng (1 + k) in
                 match
                   List.fold_left
                     (fun (m, ix) (s : Pipelines.stage) ->
                       (s.srun (Rng.split_ix vrng ix) m, ix + 1))
                     (m0, 0) v.vstages
                 with
                 | exception _ -> None
                 | m, _ ->
                     if Yali_ir.Verify.check_module m <> [] then None
                     else Some (m, engine_fuel * v.vfuel))
               Pipelines.all)
        in
        live = []
        ||
        (* compile each distinct module once: on small programs many
           variants converge to the same module, and the plugin's size is
           what the ocamlopt invocation's cost scales with *)
        let tbl = Hashtbl.create 16 in
        let uniq = ref [] and n = ref 0 in
        let ixs =
          List.map
            (fun (m, _) ->
              let key = Yali_serve.Codec.encode_module m in
              match Hashtbl.find_opt tbl key with
              | Some j -> j
              | None ->
                  let j = !n in
                  Hashtbl.add tbl key j;
                  incr n;
                  uniq := m :: !uniq;
                  j)
            live
        in
        let mods = Array.of_list (List.rev !uniq) in
        (match Yali_native.Native.prepare_many mods with
        | Error _ -> false
        | Ok ps ->
            List.for_all2
              (fun j (m, fuel) ->
                let prep = ps.(j) in
                Array.for_all
                  (fun input ->
                    let a = classify (fun () -> Interp.run ~fuel m input) in
                    let b = classify (fun () -> prep ~fuel input) in
                    match (a, b) with
                    | Ok oa, Ok ob -> Stdlib.compare oa ob = 0
                    | Error ea, Error eb -> String.equal ea eb
                    | Ok _, Error _ | Error _, Ok _ -> false)
                  inputs)
              ixs live)

let engines =
  [
    Prop.make ~name:"engines/vm-vs-interp-differential" ~show:show_engine_case
      ~candidates:(fun (p, rng) ->
        List.map (fun q -> (q, rng)) (Shrink.candidates p))
      ~measure:(fun (p, _) -> Shrink.stmt_count p)
      gen_engine_case vm_matches_interp;
    (* each case costs an ocamlopt run; 200 is the ISSUE's deep-tier budget *)
    Prop.make ~name:"engines/native-vs-interp-differential"
      ~show:show_engine_case
      ~candidates:(fun (p, rng) ->
        List.map (fun q -> (q, rng)) (Shrink.candidates p))
      ~measure:(fun (p, _) -> Shrink.stmt_count p)
      ~max_count:200 gen_engine_case native_matches_interp;
  ]

(* -- serve: the binary codec against the textual Pp path -------------------- *)

module Codec = Yali_serve.Codec
module Wire = Yali_serve.Wire

(* One case = one generated program pushed through every registered pipeline
   variant; each resulting module must survive encode/decode with full
   structural identity (high-water marks included, [Stdlib.compare] so NaN
   constants count as themselves), print bit-identically under Pp, and
   re-encode to the identical blob.  Variants whose transforms crash are
   skipped — those are translation-validation findings. *)
let codec_roundtrip ((p : Yali_minic.Ast.program), (rng : Rng.t)) : bool =
  match Yali_minic.Lower.lower_program p with
  | exception _ -> true
  | m0 ->
      let variant_ok k (v : Pipelines.variant) =
        let vrng = Rng.split_ix rng (1 + k) in
        match
          List.fold_left
            (fun (m, ix) (s : Pipelines.stage) ->
              (s.srun (Rng.split_ix vrng ix) m, ix + 1))
            (m0, 0) v.vstages
        with
        | exception _ -> true
        | m, _ -> (
            let blob = Codec.encode_module m in
            match Codec.decode_module blob with
            | exception Yali_util.Bin.Corrupt _ -> false
            | m' ->
                Stdlib.compare m' m = 0
                && Yali_ir.Pp.module_to_string m'
                   = Yali_ir.Pp.module_to_string m
                && String.equal (Codec.encode_module m') blob)
      in
      List.for_all Fun.id (List.mapi variant_ok Pipelines.all)

let gen_wire_case (rng : Rng.t) =
  let blob n = String.init (Rng.int rng n) (fun _ -> Char.chr (Rng.int rng 256)) in
  let fmt () =
    match Rng.int rng 3 with
    | 0 -> Wire.Binary
    | 1 -> Wire.Minic
    | _ -> Wire.Textual
  in
  let rq =
    match Rng.int rng 5 with
    | 0 -> Wire.Classify { fmt = fmt (); blob = blob 64 }
    | 1 -> Wire.Ping
    | 2 -> Wire.Stats
    | 3 -> Wire.Shutdown
    | _ -> Wire.Margins { fmt = fmt (); blob = blob 64 }
  in
  let rs =
    match Rng.int rng 7 with
    | 0 ->
        Wire.Class
          {
            cls = Rng.int rng 104;
            queue_us = Rng.int rng 1_000_000;
            batch = 1 + Rng.int rng 64;
          }
    | 1 -> Wire.Error (blob 32)
    | 2 -> Wire.Busy
    | 3 -> Wire.Pong
    | 4 -> Wire.Stats_json (blob 128)
    | 5 -> Wire.Bye
    | _ ->
        (* scores include negatives and non-round values so the round trip
           exercises real f64 bit patterns *)
        Wire.Margins_r
          {
            scores =
              Array.init (Rng.int rng 8) (fun _ ->
                  (2.0 *. Rng.float rng) -. 1.0);
            queue_us = Rng.int rng 1_000_000;
            batch = 1 + Rng.int rng 64;
          }
  in
  (rq, rs)

let show_wire_case (rq, rs) =
  Printf.sprintf "wire request tag %d, response tag %d"
    (match rq with
    | Wire.Classify _ -> 1
    | Wire.Ping -> 2
    | Wire.Stats -> 3
    | Wire.Shutdown -> 4
    | Wire.Margins _ -> 5)
    (match rs with
    | Wire.Class _ -> 0
    | Wire.Error _ -> 1
    | Wire.Busy -> 2
    | Wire.Pong -> 3
    | Wire.Stats_json _ -> 4
    | Wire.Bye -> 5
    | Wire.Margins_r _ -> 6)

let wire_roundtrip (rq, rs) =
  Wire.decode_request (Wire.encode_request rq) = rq
  && Wire.decode_response (Wire.encode_response rs) = rs

let serve =
  [
    Prop.make ~name:"serve/codec-roundtrip" ~show:show_engine_case
      ~candidates:(fun (p, rng) ->
        List.map (fun q -> (q, rng)) (Shrink.candidates p))
      ~measure:(fun (p, _) -> Shrink.stmt_count p)
      gen_engine_case codec_roundtrip;
    Prop.make ~name:"serve/wire-roundtrip" ~show:show_wire_case gen_wire_case
      wire_roundtrip;
  ]

(* -- corpus: the streaming store and out-of-core training vs the in-memory
   reference paths (DESIGN.md §12) ------------------------------------------- *)

module Corpus_gen = Yali_corpus.Gen
module Corpus_store = Yali_corpus.Store
module Corpus_embed = Yali_corpus.Embed

let tmp_counter = ref 0

let with_tmp_dir (f : string -> 'a) : 'a =
  incr tmp_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "yali-oracle-%d-%d" (Unix.getpid ()) !tmp_counter)
  in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        (try Sys.readdir dir with Sys_error _ -> [||]);
      try Sys.rmdir dir with Sys_error _ -> ())
    (fun () -> f dir)

let gen_corpus_case (rng : Rng.t) =
  let spec =
    {
      Corpus_gen.dataset = "poj";
      seed = Rng.int rng 10_000;
      n_classes = 2 + Rng.int rng 3;
      per_class = 2 + Rng.int rng 3;
    }
  in
  (spec, 1 + Rng.int rng 5, Rng.int rng 1_000_000)

let show_corpus_case (spec, rps, train_seed) =
  Printf.sprintf "corpus %s records_per_shard=%d train_seed=%d"
    (Corpus_gen.spec_to_string spec)
    rps train_seed

(* The sharded store against the in-memory reference path: same modules
   (structural identity), same labels, same order, index metadata intact. *)
let corpus_store_roundtrip (spec, rps, _) =
  with_tmp_dir (fun dir ->
      Corpus_gen.generate ~dir ~records_per_shard:rps spec;
      let r = Corpus_store.open_ dir in
      Fun.protect
        ~finally:(fun () -> Corpus_store.close r)
        (fun () ->
          let reference = Corpus_gen.materialize spec in
          Corpus_store.length r = Array.length reference
          && Corpus_store.meta r = Corpus_gen.spec_to_string spec
          && Corpus_store.n_classes r = spec.Corpus_gen.n_classes
          && Array.for_all
               (fun i ->
                 let m_ref, l_ref = reference.(i) in
                 let l, m = Corpus_store.get r i in
                 l = l_ref && l = Corpus_store.label r i && m = m_ref)
               (Array.init (Array.length reference) Fun.id)))

(* Out-of-core training against the in-memory trainers: on a source that
   fits one block, every snapshot-able model must produce a byte-identical
   Model.save blob (the DESIGN.md §12 equivalence contract). *)
let corpus_stream_train_bit_identical (spec, rps, train_seed) =
  with_tmp_dir (fun dir ->
      Corpus_gen.generate ~dir ~records_per_shard:rps spec;
      let r = Corpus_store.open_ dir in
      Fun.protect
        ~finally:(fun () -> Corpus_store.close r)
        (fun () ->
          let embedding = Yali_embeddings.Embedding.histogram in
          let x, ys = Corpus_embed.to_fmat ~embedding r in
          let path = Filename.concat dir "features.yfmb" in
          let d = Corpus_embed.to_file ~embedding r ~out:path in
          let fr = Ml.Fblock.open_reader path in
          Fun.protect
            ~finally:(fun () -> Ml.Fblock.close_reader fr)
            (fun () ->
              let src = Ml.Fblock.Disk fr in
              d = x.F.d
              && Ml.Fblock.rows src = x.F.n
              (* the parallel embed path writes the same bits the
                 sequential one computes *)
              && (Ml.Fblock.materialize src).F.data = x.F.data
              && List.for_all
                   (fun kind ->
                     let inmem =
                       Ml.Model.train_snapshot kind (Rng.make train_seed)
                         ~n_classes:spec.Corpus_gen.n_classes x ys
                     in
                     let streamed =
                       Ml.Model.train_snapshot_stream
                         ~block_rows:(max 1 x.F.n) kind
                         (Rng.make train_seed)
                         ~n_classes:spec.Corpus_gen.n_classes src ys
                     in
                     match (inmem, streamed) with
                     | Some a, Some b -> Ml.Model.save a = Ml.Model.save b
                     | _ -> false)
                   Ml.Model.snapshot_kinds)))

(* Feature standardisation is blocking-invariant: fit_stream must equal
   fit_fmat bit for bit at ANY block size (sum order is preserved), and the
   on-disk feature file must round-trip doubles exactly. *)
let fblock_fit_stream_blocking (n_classes, xs, _, _, seed) =
  ignore n_classes;
  let x = F.of_rows xs in
  let block_rows = 1 + (seed mod 7) in
  with_tmp_dir (fun dir ->
      let path = Filename.concat dir "m.yfmb" in
      Ml.Fblock.to_file path x;
      let fr = Ml.Fblock.open_reader path in
      Fun.protect
        ~finally:(fun () -> Ml.Fblock.close_reader fr)
        (fun () ->
          let disk = Ml.Fblock.Disk fr in
          let s_ref = Ml.Features.fit_fmat x in
          let s_mem = Ml.Features.fit_stream ~block_rows (Ml.Fblock.of_fmat x) in
          let s_disk = Ml.Features.fit_stream ~block_rows disk in
          let under s =
            let c = F.create x.F.n x.F.d in
            Array.blit x.F.data 0 c.F.data 0 (x.F.n * x.F.d);
            Ml.Features.transform_fmat_inplace s c;
            c.F.data
          in
          (Ml.Fblock.materialize disk).F.data = x.F.data
          && under s_mem = under s_ref
          && under s_disk = under s_ref))

let corpus =
  [
    Prop.make ~name:"corpus/store-roundtrip-vs-materialize"
      ~show:show_corpus_case gen_corpus_case corpus_store_roundtrip;
    Prop.make ~name:"corpus/stream-train-bit-identical" ~show:show_corpus_case
      gen_corpus_case corpus_stream_train_bit_identical;
    Prop.make ~name:"corpus/fit-stream-blocking-invariant" ~show:show_dataset
      gen_dataset fblock_fit_stream_blocking;
  ]

(* -- adapt: the classifier-in-the-loop evader search (DESIGN.md §14) -------- *)

module Adapt_driver = Yali_adapt.Driver
module Adapt_search = Yali_adapt.Search
module Adapt_pareto = Yali_adapt.Pareto

let gen_adapt_case (rng : Rng.t) =
  let algo =
    List.nth Adapt_search.all (Rng.int rng (List.length Adapt_search.all))
  in
  (Rng.int rng 100_000, algo)

let show_adapt_case (seed, algo) =
  Printf.sprintf "adapt seed=%d algo=%s" seed
    (Adapt_search.algo_to_string algo)

(* Same seed at any --jobs: identical pass sequences, identical Pareto
   front (structural identity of the whole report), and the front is
   well-formed — cost strictly ascending, no dominated points.  The config
   is deliberately tiny; the property is scheduling-independence, not
   search quality. *)
let adapt_search_deterministic ((seed, algo) : int * Adapt_search.algo) : bool
    =
  let cfg =
    {
      Adapt_driver.default with
      a_seed = seed;
      a_algo = algo;
      a_classes = 2;
      a_train_per_class = 3;
      a_challenges_per_class = 1;
      a_models = [ "lr" ];
      a_budget = 10;
      a_batch = 4;
      a_max_len = 3;
      a_vectors = 1;
    }
  in
  let run_at jobs =
    Yali_exec.Pool.with_jobs jobs (fun () -> Adapt_driver.run cfg)
  in
  let r1 = run_at 1 in
  let r3 = run_at 3 in
  Adapt_driver.reports_identical r1 r3
  && List.for_all
       (fun (f : Adapt_driver.model_front) ->
         Adapt_pareto.well_formed f.mf_front
         && f.mf_front <> []
         && List.exists
              (fun (p : Adapt_pareto.point) -> p.Adapt_pareto.p_cost = 1.0)
              f.mf_front
            (* the identity evader anchors every front *)
         )
       r1.Adapt_driver.r_fronts

let adapt =
  [
    Prop.make ~name:"adapt/search-determinism" ~show:show_adapt_case
      ~max_count:6 gen_adapt_case adapt_search_deterministic;
  ]

(* -- neural minibatch kernels vs lib/ml/reference.ml (DESIGN.md §15) ------- *)

module Graph = Yali_embeddings.Graph

(* gaussian class blobs straight into an Fmat; data is derived from an
   explicit seed inside the law so cases replay in isolation *)
let nn_blobs (seed : int) ~(n : int) ~(d : int) ~(n_classes : int) :
    F.t * int array =
  let rng = Rng.make seed in
  let x = F.create n d in
  let ys = Array.init n (fun i -> i mod n_classes) in
  for i = 0 to n - 1 do
    for k = 0 to d - 1 do
      x.F.data.((i * d) + k) <-
        Rng.gaussian rng +. (if k = ys.(i) then 6.0 else 0.0)
    done
  done;
  (x, ys)

let gen_nn_case (rng : Rng.t) =
  let d = 4 + Rng.int rng 28 in
  let n_classes = 2 + Rng.int rng 4 in
  let batch = 1 + Rng.int rng 48 in
  (d, n_classes, batch, Rng.int rng 1_000_000)

let show_nn_case (d, n_classes, batch, seed) =
  Printf.sprintf "nn d=%d classes=%d batch=%d seed=%d" d n_classes batch seed

(* Nn.train_batch (tiled, sharded over the pool) against the naive
   Reference.Nnb on the same net: losses, input gradients and every weight
   bit must agree after several steps.  Cnn.build_net covers both the
   dense-tail (d < 16) and conv-stack architectures. *)
let nn_kernel_vs_reference (d, n_classes, batch, seed) =
  let build () = Ml.Cnn.build_net (Rng.make seed) ~d_in:d ~n_classes in
  let kernel = build () and naive = build () in
  let krng = Rng.make (seed + 1) and nrng = Rng.make (seed + 1) in
  let steps_ok = ref true in
  for step = 0 to 2 do
    let x, ys = nn_blobs (seed + 10 + step) ~n:batch ~d ~n_classes in
    let lr = 0.01 /. (1.0 +. (0.1 *. float_of_int step)) in
    let kl, kdx = Ml.Nn.train_batch ~lr ~rng:krng kernel x ys in
    let nl, ndx = Ml.Reference.Nnb.train_batch ~lr ~rng:nrng naive x ys in
    steps_ok := !steps_ok && kl = nl && kdx.F.data = ndx.F.data
  done;
  !steps_ok && Ml.Nn.dump_weights kernel = Ml.Nn.dump_weights naive

let gen_graph_case (rng : Rng.t) =
  let n = 6 + Rng.int rng 14 in
  let feat_dim = 3 + Rng.int rng 4 in
  (n, feat_dim, Rng.int rng 1_000_000)

let show_graph_case (n, feat_dim, seed) =
  Printf.sprintf "graphs n=%d feat_dim=%d seed=%d" n feat_dim seed

let nn_random_graphs (seed : int) ~(n : int) ~(feat_dim : int) :
    Graph.t array * int array =
  let rng = Rng.make seed in
  let graphs =
    Array.init n (fun i ->
        let nodes = 3 + Rng.int rng 8 + if i mod 2 = 0 then 0 else 4 in
        let feats =
          Array.init nodes (fun _ ->
              Array.init feat_dim (fun _ -> float_of_int (Rng.int rng 5)))
        in
        let edges =
          List.init (nodes - 1) (fun k -> (k, k + 1, Graph.Control))
        in
        { Graph.node_feats = feats; edges; feat_dim })
  in
  (graphs, Array.init n (fun i -> i mod 2))

let nn_params_small = { Ml.Dgcnn.default_params with epochs = 1; batch = 8 }

(* The full dgcnn minibatch trainer (parallel forward shards, batched head
   step, tree-reduced graph-conv gradients) against the sequential naive
   Reference.Dgcnn. *)
let dgcnn_kernel_vs_reference (n, feat_dim, seed) =
  let graphs, ys = nn_random_graphs seed ~n ~feat_dim in
  let kernel =
    Ml.Dgcnn.train ~params:nn_params_small (Rng.make seed) ~n_classes:2
      ~feat_dim graphs ys
  in
  let naive =
    Ml.Reference.Dgcnn.train ~params:nn_params_small (Rng.make seed)
      ~n_classes:2 ~feat_dim graphs ys
  in
  Ml.Dgcnn.dump_weights kernel = Ml.Dgcnn.dump_weights naive

(* Sharded gradient accumulation reduces in a fixed tree order, so weights
   are a function of the data alone, never of the worker count. *)
let nn_jobs_invariant (d, n_classes, batch, seed) =
  let train jobs =
    Pool.with_jobs jobs (fun () ->
        let x, ys =
          nn_blobs (seed + 10) ~n:(3 * batch) ~d ~n_classes
        in
        let params = { Ml.Cnn.default_params with epochs = 1; batch } in
        Ml.Cnn.dump_weights
          (Ml.Cnn.train ~params (Rng.make seed) ~n_classes x ys))
  in
  train 1 = train 4

(* Streamed training vs in-memory on one block: identical cnn Model.save
   blobs, identical dgcnn weight dumps over a Gsource. *)
let nn_stream_vs_inmem (n, feat_dim, seed) =
  let d = 8 + feat_dim and n_classes = 2 in
  let rows = 4 * n in
  let cnn_ok =
    let x, ys = nn_blobs (seed + 1) ~n:rows ~d ~n_classes in
    let inmem = Ml.Model.train_snapshot "cnn" (Rng.make seed) ~n_classes x ys in
    let streamed =
      Ml.Model.train_snapshot_stream ~block_rows:rows "cnn" (Rng.make seed)
        ~n_classes (Ml.Fblock.of_fmat x) ys
    in
    match (inmem, streamed) with
    | Some a, Some b -> Ml.Model.save a = Ml.Model.save b
    | _ -> false
  in
  let dgcnn_ok =
    let graphs, ys = nn_random_graphs seed ~n ~feat_dim in
    let inmem =
      Ml.Dgcnn.train ~params:nn_params_small (Rng.make seed) ~n_classes:2
        ~feat_dim graphs ys
    in
    let streamed =
      Ml.Model.train_dgcnn_stream ~params:nn_params_small (Rng.make seed)
        ~n_classes:2
        (Ml.Gsource.of_graphs graphs)
        ys
    in
    Ml.Dgcnn.dump_weights inmem = Ml.Dgcnn.dump_weights streamed
  in
  cnn_ok && dgcnn_ok

let nn =
  [
    Prop.make ~name:"ml/nn-kernel-vs-reference" ~show:show_nn_case
      gen_nn_case nn_kernel_vs_reference;
    Prop.make ~name:"ml/dgcnn-kernel-vs-reference" ~show:show_graph_case
      ~max_count:12 gen_graph_case dgcnn_kernel_vs_reference;
    Prop.make ~name:"ml/nn-jobs-invariant" ~show:show_nn_case ~max_count:12
      gen_nn_case nn_jobs_invariant;
    Prop.make ~name:"ml/nn-stream-vs-inmem" ~show:show_graph_case
      ~max_count:8 gen_graph_case nn_stream_vs_inmem;
  ]

let all = kernels @ metrics @ exec @ engines @ serve @ corpus @ nn @ adapt

