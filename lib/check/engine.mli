(** The two correctness tiers.

    {b Smoke} is part of tier-1 [dune runtest] (seconds): a handful of
    generated programs through every pass and pipeline, plus the invariant
    oracles at shallow case counts.  {b Deep} is the CI / [make check-deep]
    tier (minutes): hundreds of generated programs per pass, deep oracle
    sweeps, minimized counterexamples written to [out_dir] as [.c]
    artifacts, and optional persistence of reproducers into the regression
    corpus. *)

type tier = Smoke | Deep

type config = {
  seed : int;
  tier : tier;
  per_pass : int option;  (** override the tier's programs-per-pass *)
  prop_count : int option;  (** override the tier's oracle case count *)
  out_dir : string option;  (** minimized counterexamples + report land here *)
  save_findings : bool;  (** persist reproducers into the corpus *)
  corpus_dir : string option;
  log : string -> unit;
}

val default : config

(** Every entry the engine validates: {!Passdb.all} plus the [O1]/[O2]/[O3]
    pipeline compositions (the title says {e every pass and pipeline}). *)
val entries : unit -> Passdb.entry list

type report = {
  e_tv : Tv.report;
  e_props : Prop.result list;
  e_ok : bool;  (** no translation-validation failures, no oracle failures *)
}

val run : config -> report
val summary : report -> string
