(** The build-pipeline variants the differential oracle compares: the
    [-O0]…[-O3] pipelines, every individual optimization pass, each O-LLVM
    obfuscation pass, and compositions of the two families. *)

type stage = {
  sname : string;  (** one transform, e.g. ["O2"] or ["fla"] *)
  srun : Yali_util.Rng.t -> Yali_ir.Irmod.t -> Yali_ir.Irmod.t;
}

type variant = {
  vname : string;
  vfuel : int;  (** interpreter fuel multiplier vs the baseline run *)
  vstages : stage list;  (** applied in order to the [-O0] lowering *)
}

(** Lift a deterministic module transform into a stage. *)
val pure : string -> (Yali_ir.Irmod.t -> Yali_ir.Irmod.t) -> stage

(** Lift a seeded module transform into a stage. *)
val seeded :
  string -> (Yali_util.Rng.t -> Yali_ir.Irmod.t -> Yali_ir.Irmod.t) -> stage

(** The full registry, [O0] (the trivial variant) included. *)
val all : variant list

val find : string -> variant option
val names : unit -> string list
