(** The build-pipeline variants the differential oracle compares.

    A variant is a named sequence of IR-to-IR stages applied to the [-O0]
    lowering of a program; the oracle verifies the module after {e every}
    stage and compares observable behaviour against the plain [-O0]
    baseline.  The registry covers everything the paper's games can hand a
    classifier: the clang-style [-O0]…[-O3] pipelines, every individual
    optimization pass, each O-LLVM obfuscation pass, and compositions of
    the two families ([fla(O2(p))] and friends). *)

module Rng = Yali_util.Rng
module P = Yali_transforms.Pipeline
module Ob = Yali_obfuscation

type stage = {
  sname : string;
  srun : Rng.t -> Yali_ir.Irmod.t -> Yali_ir.Irmod.t;
}

type variant = {
  vname : string;
  vfuel : int;  (** interpreter fuel multiplier vs the baseline run *)
  vstages : stage list;  (** applied in order to the [-O0] lowering *)
}

let pure name f = { sname = name; srun = (fun _ m -> f m) }
let seeded name f = { sname = name; srun = f }

let stage_o1 = pure "O1" P.o1
let stage_o2 = pure "O2" P.o2
let stage_o3 = pure "O3" P.o3
let stage_sub = seeded "sub" (fun rng m -> Ob.Sub.run rng m)
let stage_bcf = seeded "bcf" (fun rng m -> Ob.Bcf.run rng m)
let stage_fla = seeded "fla" (fun rng m -> Ob.Fla.run rng m)
let stage_ollvm = seeded "ollvm" (fun rng m -> Ob.Ollvm.run rng m)

let optimization_levels =
  [
    { vname = "O0"; vfuel = 1; vstages = [] };
    { vname = "O1"; vfuel = 4; vstages = [ stage_o1 ] };
    { vname = "O2"; vfuel = 4; vstages = [ stage_o2 ] };
    { vname = "O3"; vfuel = 4; vstages = [ stage_o3 ] };
  ]

(* every entry of the shared pass table ({!Passdb}) on its own,
   straight off the -O0 lowering — registering a pass there feeds both the
   per-pass translation validator and this fuzzing registry; the table's
   fuel multipliers already account for obfuscator step cost *)
let of_entry (e : Passdb.entry) =
  { vname = e.ename; vfuel = e.efuel; vstages = [ seeded e.ename e.erun ] }

let single_passes =
  List.filter_map
    (fun (e : Passdb.entry) ->
      if e.ekind = Passdb.Opt then Some (of_entry e) else None)
    Passdb.builtin

let obfuscators =
  List.filter_map
    (fun (e : Passdb.entry) ->
      if e.ekind = Passdb.Obf then Some (of_entry e) else None)
    Passdb.builtin

(* compositions: optimize-then-obfuscate is the paper's evader pipeline,
   obfuscate-then-optimize asks the optimizers to chew on adversarial CFGs *)
let compositions =
  [
    { vname = "O2+sub"; vfuel = 8; vstages = [ stage_o2; stage_sub ] };
    { vname = "O2+bcf"; vfuel = 8; vstages = [ stage_o2; stage_bcf ] };
    { vname = "O2+fla"; vfuel = 16; vstages = [ stage_o2; stage_fla ] };
    { vname = "O3+ollvm"; vfuel = 16; vstages = [ stage_o3; stage_ollvm ] };
    { vname = "fla+O2"; vfuel = 16; vstages = [ stage_fla; stage_o2 ] };
    { vname = "ollvm+O3"; vfuel = 16; vstages = [ stage_ollvm; stage_o3 ] };
  ]

let all : variant list =
  optimization_levels @ single_passes @ obfuscators @ compositions

let find name = List.find_opt (fun v -> v.vname = name) all
let names () = List.map (fun v -> v.vname) all
