(** See passdb.mli. *)

module Rng = Yali_util.Rng
module P = Yali_transforms.Pipeline
module Ob = Yali_obfuscation

type kind = Opt | Obf | Test

type entry = {
  ename : string;
  ekind : kind;
  erun : Rng.t -> Yali_ir.Irmod.t -> Yali_ir.Irmod.t;
  efuel : int;
}

let pure ?(kind = Opt) ?(fuel = 4) name f =
  { ename = name; ekind = kind; erun = (fun _ m -> f m); efuel = fuel }

let seeded ?(kind = Obf) ?(fuel = 8) name f =
  { ename = name; ekind = kind; erun = f; efuel = fuel }

let builtin : entry list =
  List.map (fun (p : P.pass) -> pure p.pname p.prun) P.all_passes
  @ [
      seeded "sub" (fun rng m -> Ob.Sub.run rng m);
      seeded "bcf" (fun rng m -> Ob.Bcf.run rng m);
      seeded ~fuel:16 "fla" (fun rng m -> Ob.Fla.run rng m);
      seeded ~fuel:16 "ollvm" (fun rng m -> Ob.Ollvm.run rng m);
    ]

(* runtime registrations, in registration order *)
let extra : entry list ref = ref []

let register (e : entry) =
  extra := List.filter (fun e' -> e'.ename <> e.ename) !extra @ [ e ]

let unregister name =
  extra := List.filter (fun e -> e.ename <> name) !extra

let all () = builtin @ !extra
let find name = List.find_opt (fun e -> e.ename = name) (all ())
let names () = List.map (fun e -> e.ename) (all ())
