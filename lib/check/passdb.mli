(** The single pass-registration table behind per-pass translation
    validation.

    Every optimization pass ({!Yali_transforms.Pipeline.all_passes}) and
    every O-LLVM-style obfuscation pass is an {!entry}; the differential
    fuzzer's single-pass pipeline variants are derived from this table too,
    so a future pass registered here gets per-pass validation, fuzzing and
    the deep CI tier for free.  {!register} exists for test-only passes
    (e.g. a deliberately planted miscompile used to prove the validator
    catches one); it never persists beyond the process. *)

type kind =
  | Opt  (** optimization pass (deterministic, rng unused) *)
  | Obf  (** obfuscation pass (seeded) *)
  | Test  (** test-only registration, excluded from {!builtin} *)

type entry = {
  ename : string;
  ekind : kind;
  erun : Yali_util.Rng.t -> Yali_ir.Irmod.t -> Yali_ir.Irmod.t;
  efuel : int;
      (** interpreter fuel multiplier vs the [-O0] baseline (obfuscators
          add dispatch loops and bogus blocks) *)
}

(** Wrap a deterministic module transform as an entry. *)
val pure :
  ?kind:kind -> ?fuel:int -> string -> (Yali_ir.Irmod.t -> Yali_ir.Irmod.t) -> entry

(** Every built-in pass: the transform passes (in registry order) followed
    by the obfuscators [sub], [bcf], [fla], [ollvm]. *)
val builtin : entry list

(** Runtime registrations, appended after {!builtin} in {!all}.
    Re-registering a name replaces the previous runtime entry. *)
val register : entry -> unit

val unregister : string -> unit
val all : unit -> entry list
val find : string -> entry option
val names : unit -> string list
