(** Seeded random mini-C programs for the differential oracle, layered on
    {!Yali_dataset.Gen_dsl}.

    Generator contract (the oracle depends on it): every program lowers to
    verified IR, terminates quickly in the interpreter on any input stream,
    and never traps — loops count to literal bounds with read-only
    counters, recursion decrements a clamped counter, divisions and array
    indices are guarded, inputs are clamped on read.  Every top-level
    scalar and array cell is printed, so miscompilations surface as output
    divergences. *)

type cfg = {
  max_stmts : int;  (** top-level statement budget for [main] *)
  max_depth : int;  (** block-nesting depth *)
  max_expr_depth : int;
  max_helpers : int;
}

val default : cfg

(** Draw one program.  Equal rng states give equal programs. *)
val program : ?cfg:cfg -> Yali_util.Rng.t -> Yali_minic.Ast.program
