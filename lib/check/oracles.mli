(** Invariant oracles for the non-IR layers, packaged as {!Prop}
    properties so the smoke and deep tiers run them at different depths.

    Three families:
    - {!kernels}: the rewritten numeric kernels against the frozen
      pre-rewrite implementations in {!Yali_ml.Reference} (decision tree,
      forest, k-NN), tiled vs naive matmul bit-identity, and Fmat layout
      laws;
    - {!metrics}: axioms of {!Yali_ml.Metrics} — bounds, confusion-matrix
      row sums, and division-by-zero guards (every statistic is a defined
      finite number, never [nan], on degenerate inputs);
    - {!exec}: {!Yali_exec.Pool} determinism at arbitrary [--jobs] and
      {!Yali_exec.Cache} transparency;
    - {!engines}: the {!Yali_vm.Vm} and {!Yali_native.Native} execution
      engines against the frozen reference interpreter — each generated
      program is pushed through every registered pipeline variant
      ({!Pipelines.all}) and the engines must produce bit-identical
      outcomes (steps and cost included) with identical
      [Trap]/[Out_of_fuel] classification.  The native differential
      batches a case's surviving variants into one plugin compile and
      passes vacuously where the toolchain is absent; its deep-tier case
      count is capped at 200 ([max_count]) because each case pays an
      [ocamlopt] invocation;
    - {!serve}: the {!Yali_serve.Codec} binary format — each generated
      program, through every registered pipeline variant, must survive
      encode/decode with full structural identity and print bit-identically
      under {!Yali_ir.Pp}, and re-encode to the identical blob; plus
      {!Yali_serve.Wire} message round-trips;
    - {!corpus}: the {!Yali_corpus} streaming layer — a generated sharded
      store must replay {!Yali_corpus.Gen.materialize} record for record;
      out-of-core training over a single block must produce byte-identical
      {!Yali_ml.Model.save} blobs to the in-memory trainers; and feature
      standardisation must be blocking-invariant bit for bit
      (DESIGN.md §12). *)

val kernels : Prop.t list
val metrics : Prop.t list
val exec : Prop.t list
val engines : Prop.t list
val serve : Prop.t list
val corpus : Prop.t list

(** The kernelized neural tier (DESIGN.md §15): [Nn.train_batch] and the
    cnn/dgcnn minibatch trainers against the frozen naive implementations
    in {!Yali_ml.Reference} (losses, input gradients and weights bit for
    bit), weight invariance under [--jobs], and streamed-vs-in-memory
    equality (byte-identical cnn [Model.save] blobs on one block; identical
    dgcnn weight dumps over a {!Yali_ml.Gsource}). *)
val nn : Prop.t list

(** {!Yali_adapt}: the [adapt/search-determinism] oracle — the same seed
    at any [--jobs] must yield an identical report (pass sequences and
    Pareto front, structural identity), and every front must be
    well-formed (cost-sorted, no dominated points, anchored by the
    identity evader at cost 1.0). *)
val adapt : Prop.t list

(** All families, in the order above. *)
val all : Prop.t list
