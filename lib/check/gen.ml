(** Seeded random mini-C programs for the differential oracle.

    Layered on {!Yali_dataset.Gen_dsl}, the generator extends the dataset
    contract to adversarial shapes: deep guarded arithmetic, nested bounded
    loops, switches, early [break], helper calls and bounded recursion —
    while keeping the two invariants the oracle depends on: every program
    (a) lowers to verified IR, and (b) terminates quickly and trap-free in
    the interpreter on {e any} input stream.  Loops count to literal bounds
    and their counters are never assigned by loop bodies, recursive helpers
    decrement a clamped counter to a base case, divisions and indices go
    through {!Yali_dataset.Gen_dsl.safe_div} / [safe_index], and inputs are
    clamped on read.

    Observability: every top-level scalar and every array cell is printed
    in an epilogue, so a miscompiled computation anywhere in the program
    surfaces as an output divergence. *)

open Yali_minic.Ast
open Yali_dataset.Gen_dsl
module Rng = Yali_util.Rng

type cfg = {
  max_stmts : int;  (** top-level statement budget for [main] *)
  max_depth : int;  (** block-nesting depth *)
  max_expr_depth : int;
  max_helpers : int;
}

let default =
  { max_stmts = 12; max_depth = 2; max_expr_depth = 4; max_helpers = 2 }

(* generation state: the rng plus a fresh-name counter (generated names are
   disjoint from Gen_dsl's salted pools by construction) *)
type st = { rng : Rng.t; mutable fresh : int; cfg : cfg }

type helper_sig = { hname : string; arity : int; bounded_arg : bool }
(** [bounded_arg]: the first argument is a recursion depth and must be
    clamped at every call site. *)

type scope = {
  vars : string list;  (** assignable scalars, innermost first *)
  ro : string list;  (** read-only scalars: loop counters, parameters *)
  arrays : (string * int) list;  (** in-scope arrays and their sizes *)
  helpers : helper_sig list;
  in_loop : bool;
}

let readable sc = sc.vars @ sc.ro

let fresh st base =
  let n = st.fresh in
  st.fresh <- n + 1;
  Printf.sprintf "%s%d" base n

(* -- expressions ---------------------------------------------------------- *)

let rec expr (st : st) (sc : scope) (depth : int) : Yali_minic.Ast.expr =
  if depth <= 0 || Rng.bernoulli st.rng 0.25 then leaf st sc
  else
    match Rng.int st.rng 14 with
    | 0 | 1 -> Bin (Add, expr st sc (depth - 1), expr st sc (depth - 1))
    | 2 -> Bin (Sub, expr st sc (depth - 1), expr st sc (depth - 1))
    | 3 -> Bin (Mul, expr st sc (depth - 1), leaf st sc)
    | 4 ->
        if Rng.bool st.rng then safe_div (expr st sc (depth - 1)) (leaf st sc)
        else safe_mod (expr st sc (depth - 1)) (leaf st sc)
    | 5 ->
        let cmp = Rng.choice st.rng [ Lt; Le; Gt; Ge; Eq; Ne ] in
        Bin (cmp, expr st sc (depth - 1), expr st sc (depth - 1))
    | 6 ->
        let op = Rng.choice st.rng [ BAnd; BOr; BXor ] in
        Bin (op, expr st sc (depth - 1), expr st sc (depth - 1))
    | 7 ->
        (* shift amounts are small literals: in-range for i32 on both the
           interpreter and the folders *)
        let op = Rng.choice st.rng [ Shl; Shr ] in
        Bin (op, expr st sc (depth - 1), i (Rng.int st.rng 8))
    | 8 ->
        let op = Rng.choice st.rng [ Neg; LNot; BNot ] in
        Un (op, expr st sc (depth - 1))
    | 9 ->
        let cmp = Rng.choice st.rng [ Lt; Gt; Eq; Ne ] in
        Ternary
          ( Bin (cmp, expr st sc (depth - 1), leaf st sc),
            expr st sc (depth - 1),
            expr st sc (depth - 1) )
    | 10 ->
        let f = Rng.choice st.rng [ "min"; "max" ] in
        Call (f, [ expr st sc (depth - 1); leaf st sc ])
    | 11 -> Call ("abs", [ expr st sc (depth - 1) ])
    | 12 -> (
        match sc.helpers with
        | [] -> leaf st sc
        | hs ->
            let h = Rng.choice st.rng hs in
            let arg k =
              let e = expr st sc (depth - 1) in
              (* clamp recursion depths so call chains stay shallow *)
              if k = 0 && h.bounded_arg then safe_index 24 e else e
            in
            Call (h.hname, List.init h.arity arg))
    | _ ->
        let op = Rng.choice st.rng [ LAnd; LOr ] in
        Bin (op, expr st sc (depth - 1), expr st sc (depth - 1))

and leaf (st : st) (sc : scope) : Yali_minic.Ast.expr =
  let rv = readable sc in
  match Rng.int st.rng 8 with
  | (0 | 1 | 2) when rv <> [] -> v (Rng.choice st.rng rv)
  | (3 | 4) when sc.arrays <> [] ->
      let a, n = Rng.choice st.rng sc.arrays in
      let ix =
        if rv <> [] && Rng.bool st.rng then v (Rng.choice st.rng rv)
        else i (Rng.int st.rng 1000)
      in
      idx a (safe_index n ix)
  | 5 -> read_clamped (-50) 50
  | _ -> i (Rng.int_range st.rng (-100) 100)

(* -- statements ----------------------------------------------------------- *)

(* a block of statements spending [budget]; declarations extend the scope
   for the statements that follow within the same block *)
let rec stmts (st : st) (sc : scope) ~(depth : int) ~(budget : int) :
    stmt list =
  if budget <= 0 then []
  else
    let s, sc', cost = stmt st sc ~depth ~budget in
    s @ stmts st sc' ~depth ~budget:(budget - cost)

and stmt (st : st) (sc : scope) ~(depth : int) ~(budget : int) :
    stmt list * scope * int =
  let ed = st.cfg.max_expr_depth in
  let pick = Rng.int st.rng 20 in
  match pick with
  | 0 | 1 | 2 | 3 ->
      (* declare a fresh scalar *)
      let n = fresh st "x" in
      ([ decl n (expr st sc ed) ], { sc with vars = n :: sc.vars }, 1)
  | 4 | 5 | 6 when sc.vars <> [] ->
      ([ set (Rng.choice st.rng sc.vars) (expr st sc ed) ], sc, 1)
  | 7 when depth = st.cfg.max_depth ->
      (* arrays only at top level, so the epilogue sees them all *)
      let a = fresh st "arr" in
      let n = Rng.int_range st.rng 3 10 in
      ( [ DeclArr (a, n); seti a (safe_index n (expr st sc 1)) (expr st sc 2) ],
        { sc with arrays = (a, n) :: sc.arrays },
        2 )
  | 7 | 8 when sc.arrays <> [] ->
      let a, n = Rng.choice st.rng sc.arrays in
      ([ seti a (safe_index n (expr st sc 2)) (expr st sc ed) ], sc, 1)
  | 9 | 10 when depth > 0 ->
      (* a bounded counting loop, rendered as for/while by Gen_dsl; the
         counter is read-only inside the body, so the bound is reached *)
      let c = ctx (Rng.split st.rng) in
      let k = fresh st "k" in
      let bound = Rng.int_range st.rng 2 10 in
      let inner = { sc with ro = k :: sc.ro; in_loop = true } in
      let body =
        stmts st inner ~depth:(depth - 1) ~budget:(min (budget - 1) 4)
      in
      let body = if body = [] then [ Expr (v k) ] else body in
      (count_loop c ~var:k ~lo:(i 0) ~hi:(i bound) body, sc, 3)
  | 11 when depth > 0 ->
      (* do-while with an explicit counter: always terminates *)
      let k = fresh st "k" in
      let bound = Rng.int_range st.rng 1 6 in
      let inner = { sc with ro = k :: sc.ro; in_loop = true } in
      let body =
        stmts st inner ~depth:(depth - 1) ~budget:(min (budget - 1) 3)
      in
      ( [
          Decl (TInt, k, Some (i 0));
          DoWhile (body @ [ set k (v k +@ i 1) ], v k <@ i bound);
        ],
        sc,
        3 )
  | 12 | 13 when depth > 0 ->
      let cond = expr st sc ed in
      let t = stmts st sc ~depth:(depth - 1) ~budget:(min (budget - 1) 4) in
      let e =
        if Rng.bool st.rng then
          stmts st sc ~depth:(depth - 1) ~budget:(min (budget - 1) 3)
        else []
      in
      ([ If (cond, t, e) ], sc, 2)
  | 14 when depth > 0 ->
      let scrut = safe_mod (expr st sc ed) (i 4) in
      let n_cases = Rng.int_range st.rng 1 3 in
      let case k =
        (k, stmts st sc ~depth:(depth - 1) ~budget:(min (budget - 1) 2))
      in
      let dflt = stmts st sc ~depth:(depth - 1) ~budget:1 in
      ([ Switch (scrut, List.init n_cases case, dflt) ], sc, 2)
  | 15 when sc.in_loop ->
      (* a conditional early exit; break is always safe *)
      ([ If (expr st sc 2, [ Break ], []) ], sc, 1)
  | 16 when readable sc <> [] ->
      ([ print (v (Rng.choice st.rng (readable sc))) ], sc, 1)
  | _ ->
      let n = fresh st "y" in
      ([ decl n (expr st sc ed) ], { sc with vars = n :: sc.vars }, 1)

(* -- helper functions ------------------------------------------------------ *)

let empty_scope = { vars = []; ro = []; arrays = []; helpers = []; in_loop = false }

(* a pure helper: a couple of locals and a return expression *)
let pure_helper (st : st) : func * helper_sig =
  let name = fresh st "calc" in
  let p1 = fresh st "p" and p2 = fresh st "p" in
  let sc = { empty_scope with ro = [ p1; p2 ] } in
  let t = fresh st "t" in
  let body =
    [
      decl t (expr st sc st.cfg.max_expr_depth);
      ret (expr st { sc with vars = [ t ] } st.cfg.max_expr_depth);
    ]
  in
  ( { fname = name; fparams = [ (TInt, p1); (TInt, p2) ]; fret = TInt; fbody = body },
    { hname = name; arity = 2; bounded_arg = false } )

(* a bounded recursive helper: [h n acc] with [n] strictly decreasing to a
   base case — terminates for any arguments, and call sites clamp [n] *)
let rec_helper (st : st) : func * helper_sig =
  let name = fresh st "walk" in
  let n = fresh st "n" and acc = fresh st "a" in
  let sc = { empty_scope with ro = [ n; acc ] } in
  let step = expr st sc 3 in
  ( {
      fname = name;
      fparams = [ (TInt, n); (TInt, acc) ];
      fret = TInt;
      fbody =
        [
          If (v n <=@ i 0, [ ret (v acc) ], []);
          ret (call name [ v n -@ i 1; v acc +@ step ]);
        ];
    },
    { hname = name; arity = 2; bounded_arg = true } )

(* -- programs -------------------------------------------------------------- *)

let program ?(cfg = default) (rng : Rng.t) : Yali_minic.Ast.program =
  let st = { rng; fresh = 0; cfg } in
  let helpers =
    List.init (Rng.int st.rng (cfg.max_helpers + 1)) (fun _ ->
        if Rng.bernoulli st.rng 0.35 then rec_helper st else pure_helper st)
  in
  (* prologue: read a couple of clamped workload inputs *)
  let n_reads = Rng.int_range st.rng 1 3 in
  let reads =
    List.init n_reads (fun _ ->
        let n = fresh st "in" in
        (n, decl n (read_clamped (-40) 40)))
  in
  let sc =
    {
      empty_scope with
      vars = List.rev_map fst reads;
      helpers = List.map snd helpers;
    }
  in
  let body =
    stmts st sc ~depth:cfg.max_depth
      ~budget:(Rng.int_range st.rng 6 cfg.max_stmts)
  in
  (* top-level declarations feed the observing epilogue *)
  let top_vars =
    List.map fst reads
    @ List.filter_map (function Decl (TInt, n, _) -> Some n | _ -> None) body
  in
  let top_arrays =
    List.filter_map (function DeclArr (a, n) -> Some (a, n) | _ -> None) body
  in
  (* epilogue: print every live scalar and every array cell *)
  let c = ctx (Rng.split st.rng) in
  let print_arrays =
    List.concat_map
      (fun (a, n) ->
        let k = fresh st "pk" in
        count_loop c ~var:k ~lo:(i 0) ~hi:(i n) [ print (idx a (v k)) ])
      top_arrays
  in
  let epilogue = List.map (fun n -> print (v n)) top_vars @ print_arrays in
  let ret_e =
    match List.rev top_vars with
    | [] -> i 0
    | n :: _ -> safe_mod (v n) (i 256)
  in
  let main =
    {
      fname = "main";
      fparams = [];
      fret = TInt;
      fbody = List.map snd reads @ body @ epilogue @ [ ret ret_e ];
    }
  in
  Yali_dataset.Gen_dsl.program (List.map fst helpers @ [ main ])
