(** See engine.mli. *)

module P = Yali_transforms.Pipeline

type tier = Smoke | Deep

type config = {
  seed : int;
  tier : tier;
  per_pass : int option;
  prop_count : int option;
  out_dir : string option;
  save_findings : bool;
  corpus_dir : string option;
  log : string -> unit;
}

let default =
  {
    seed = 42;
    tier = Smoke;
    per_pass = None;
    prop_count = None;
    out_dir = None;
    save_findings = false;
    corpus_dir = Some Corpus.default_dir;
    log = ignore;
  }

(* pipeline compositions validated on top of the unit passes; O3 inlines
   and so runs hotter, give it the roomier budget *)
let pipeline_entries : Passdb.entry list =
  [
    Passdb.pure "O1" P.o1;
    Passdb.pure "O2" P.o2;
    Passdb.pure ~fuel:8 "O3" P.o3;
  ]

let entries () = Passdb.all () @ pipeline_entries

let tier_per_pass = function Smoke -> 5 | Deep -> 200
let tier_prop_count = function Smoke -> 25 | Deep -> 300

type report = { e_tv : Tv.report; e_props : Prop.result list; e_ok : bool }

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    (try Sys.mkdir dir 0o755 with Sys_error _ -> ())
  end

let sanitize name =
  String.map (fun c -> if c = ':' || c = '/' || c = ' ' then '-' else c) name

let write_file path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)

let summary (r : report) : string =
  let b = Buffer.create 512 in
  Buffer.add_string b (Tv.summary r.e_tv);
  Buffer.add_char b '\n';
  Buffer.add_string b (Prop.summary r.e_props);
  Printf.bprintf b "\ncheck %s\n" (if r.e_ok then "OK" else "FAILED");
  Buffer.contents b

(* one .c artifact per translation-validation failure: the minimized
   reproducer (or the original program when shrinking was off), with the
   pass name and failure kind in a leading comment — exactly what a CI
   artifact needs to replay the bug locally *)
let dump_artifacts dir (r : report) =
  mkdir_p dir;
  List.iteri
    (fun k (f : Tv.failure) ->
      let p = Option.value f.Tv.f_minimized ~default:f.Tv.f_program in
      let body =
        Printf.sprintf "// pass: %s\n// origin: %s\n// engine: %s\n// %s\n%s"
          f.Tv.f_pass f.Tv.f_origin f.Tv.f_engine
          (Tv.failure_kind_to_string f.Tv.f_kind)
          (Yali_minic.Pp.program_to_string p)
      in
      write_file
        (Filename.concat dir
           (Printf.sprintf "counterexample-%02d-%s.c" k (sanitize f.Tv.f_pass)))
        body)
    r.e_tv.Tv.c_failures;
  write_file (Filename.concat dir "report.txt") (summary r)

let run (cfg : config) : report =
  let per_pass = Option.value cfg.per_pass ~default:(tier_per_pass cfg.tier) in
  let prop_count =
    Option.value cfg.prop_count ~default:(tier_prop_count cfg.tier)
  in
  let tv =
    Tv.run
      {
        Tv.default with
        seed = cfg.seed;
        per_pass;
        entries = entries ();
        corpus_dir = cfg.corpus_dir;
        log = cfg.log;
      }
  in
  let props = Prop.run_all ~count:prop_count ~seed:cfg.seed Oracles.all in
  let ok = tv.Tv.c_failures = [] && Prop.failed props = [] in
  let report = { e_tv = tv; e_props = props; e_ok = ok } in
  (match cfg.out_dir with
  | Some dir when not ok -> dump_artifacts dir report
  | _ -> ());
  (if cfg.save_findings then
     match cfg.corpus_dir with
     | Some dir ->
         List.iter
           (fun (f : Tv.failure) ->
             let p = Option.value f.Tv.f_minimized ~default:f.Tv.f_program in
             ignore (Corpus.save ~dir p))
           tv.Tv.c_failures
     | None -> ());
  report
