(** Greedy AST minimizer for failing programs: repeatedly takes the first
    strictly smaller one-step reduction that still satisfies the predicate.
    Deterministic; terminates because every candidate strictly decreases a
    (node weight, literal magnitude) measure. *)

(** The decreasing measure (exposed for tests). *)
val measure : Yali_minic.Ast.program -> int * int

(** All one-step reductions of a program, biggest jumps first. *)
val candidates : Yali_minic.Ast.program -> Yali_minic.Ast.program list

(** [run pred p] — greedy minimization of [p] under [pred] ("still
    fails").  [max_checks] caps predicate calls. *)
val run :
  ?max_checks:int ->
  (Yali_minic.Ast.program -> bool) ->
  Yali_minic.Ast.program ->
  Yali_minic.Ast.program

(** Total statement count (the reported size of a reproducer). *)
val stmt_count : Yali_minic.Ast.program -> int
