(** The persistent corpus: mini-C files replayed before fresh generation,
    afl/libFuzzer seed-directory style. *)

(** ["fuzz/corpus"]. *)
val default_dir : string

(** Every [*.c] file, sorted by name; unparseable entries are [Error]. *)
val load :
  string -> (string * (Yali_minic.Ast.program, string) Result.t) list

(** Write a reproducer named by content hash; idempotent.  Returns the
    path. *)
val save : dir:string -> Yali_minic.Ast.program -> string
