(** See prop.mli. *)

module Rng = Yali_util.Rng

type 'a gen = Rng.t -> 'a

(* -- the generic greedy shrinking loop ------------------------------------- *)

let minimize ?(max_checks = 10_000) ~(measure : 'a -> 'm)
    ~(candidates : 'a -> 'a list) (pred : 'a -> bool) (x0 : 'a) : 'a =
  let checks = ref 0 in
  let rec go x =
    let m = measure x in
    let next =
      List.find_opt
        (fun c ->
          measure c < m && !checks < max_checks
          && (incr checks;
              pred c))
        (candidates x)
    in
    match next with Some c -> go c | None -> x
  in
  go x0

(* -- packed labeled properties --------------------------------------------- *)

type 'a spec = {
  s_gen : 'a gen;
  s_law : 'a -> bool;
  s_show : 'a -> string;
  s_candidates : ('a -> 'a list) option;
  s_measure : 'a -> int;
  s_max_count : int option;
}

type t = Prop : string * 'a spec -> t

let make ~name ?(show = fun _ -> "<opaque>") ?candidates
    ?(measure = fun _ -> 0) ?max_count (gen : 'a gen) (law : 'a -> bool) : t =
  Prop
    ( name,
      {
        s_gen = gen;
        s_law = law;
        s_show = show;
        s_candidates = candidates;
        s_measure = measure;
        s_max_count = max_count;
      } )

let name (Prop (n, _)) = n

type outcome =
  | Pass of { cases : int }
  | Fail of {
      case_ix : int;
      error : string option;
      counterexample : string;
      shrunk : string option;
    }

type result = { r_name : string; r_outcome : outcome }

(* per-case rng, keyed by (seed, property name, case index): stable under
   reordering of the suite and replayable in isolation *)
let name_salt (name : string) : int =
  let h = String.fold_left (fun h ch -> (h * 131) + Char.code ch) 5381 name in
  h land 0x3FFFFFFF

let case_rng ~seed name ix =
  Rng.split_ix (Rng.split_ix (Rng.make seed) (name_salt name)) ix

(* evaluate the law, folding exceptions into the verdict *)
let eval (s : 'a spec) (x : 'a) : (bool, string) Result.t =
  match s.s_law x with
  | ok -> Ok ok
  | exception e -> Error (Printexc.to_string e)

let run_case ~seed (Prop (n, s)) ix : bool =
  match eval s (s.s_gen (case_rng ~seed n ix)) with
  | Ok ok -> ok
  | Error _ -> false

let run ?(count = 100) ~seed (Prop (n, s) as p) : result =
  ignore p;
  let count =
    match s.s_max_count with Some m -> min m count | None -> count
  in
  let rec go ix =
    if ix >= count then { r_name = n; r_outcome = Pass { cases = count } }
    else
      let x = s.s_gen (case_rng ~seed n ix) in
      match eval s x with
      | Ok true -> go (ix + 1)
      | verdict ->
          let error =
            match verdict with Error e -> Some e | Ok _ -> None
          in
          let shrunk =
            match s.s_candidates with
            | None -> None
            | Some candidates ->
                let still_fails c =
                  match eval s c with Ok true -> false | _ -> true
                in
                Some
                  (s.s_show
                     (minimize ~measure:s.s_measure ~candidates still_fails x))
          in
          {
            r_name = n;
            r_outcome =
              Fail { case_ix = ix; error; counterexample = s.s_show x; shrunk };
          }
  in
  go 0

let run_all ?count ~seed props = List.map (run ?count ~seed) props

let failed results =
  List.filter
    (fun r -> match r.r_outcome with Pass _ -> false | Fail _ -> true)
    results

let pp_result fmt (r : result) =
  match r.r_outcome with
  | Pass { cases } -> Format.fprintf fmt "ok   %s (%d cases)" r.r_name cases
  | Fail { case_ix; error; counterexample; shrunk } ->
      Format.fprintf fmt "FAIL %s (case %d)%s: %s%s" r.r_name case_ix
        (match error with Some e -> " raised " ^ e | None -> "")
        counterexample
        (match shrunk with
        | Some s -> Printf.sprintf "\n  shrunk: %s" s
        | None -> "")

let summary (results : result list) : string =
  let b = Buffer.create 256 in
  let nfail = List.length (failed results) in
  Printf.bprintf b "%d properties, %d failed\n" (List.length results) nfail;
  List.iter
    (fun r -> Printf.bprintf b "%s\n" (Format.asprintf "%a" pp_result r))
    results;
  Buffer.contents b
