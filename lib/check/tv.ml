(** See tv.mli. *)

module Rng = Yali_util.Rng
module Ir = Yali_ir
module Interp = Yali_ir.Interp
module Execution = Yali_vm.Execution
module Pool = Yali_exec.Pool
module Telemetry = Yali_exec.Telemetry

type failure_kind =
  | Verify_failed of { error : string }
  | Transform_crash of { error : string }
  | Run_crash of { input_ix : int; error : string }
  | Divergence of { input_ix : int; expected : string; got : string }

type verdict = Valid | Bad_baseline of string | Miscompiled of failure_kind

let failure_kind_to_string = function
  | Verify_failed { error } -> Printf.sprintf "verifier error: %s" error
  | Transform_crash { error } -> Printf.sprintf "pass raised: %s" error
  | Run_crash { input_ix; error } ->
      Printf.sprintf "runtime fault on input #%d: %s" input_ix error
  | Divergence { input_ix; expected; got } ->
      Printf.sprintf "divergence on input #%d: baseline %s, pass %s" input_ix
        expected got

(* identical derivations to the whole-pipeline oracle: child 0 of the check
   rng seeds the input vectors, child [salt name] seeds the pass — so
   re-validating a single pass (the shrink predicate) reproduces the exact
   randomness of the full sweep *)
let salt (name : string) : int =
  let h = String.fold_left (fun h ch -> (h * 131) + Char.code ch) 5381 name in
  1 + (h land 0xFFFFF)

let inputs_for (rng : Rng.t) ~(vectors : int) ~(len : int) : int64 list array =
  Array.init vectors (fun ix ->
      let r = Rng.split_ix rng ix in
      List.init len (fun _ -> Int64.of_int (Rng.int_range r (-1000) 1000)))

let default_fuel = 2_000_000

let verify_errors (m : Ir.Irmod.t) : string option =
  match Ir.Verify.check_module m with
  | [] -> None
  | e :: _ -> Some (Format.asprintf "%a" Ir.Verify.pp_error e)

let observation_to_string (o : Interp.outcome) : string =
  let ints, floats, exitv = Interp.observe o in
  Printf.sprintf "out=[%s] fout=[%s] exit=%s"
    (String.concat ";" (List.map Int64.to_string ints))
    (String.concat ";" (List.map string_of_float floats))
    exitv

(* the [-O0] side of one program, computed once and shared by every pass *)
type prepared = {
  p_mod : Ir.Irmod.t;
  p_inputs : int64 list array;
  p_base : Interp.outcome array;
}

let prepare ~fuel ~vectors (rng : Rng.t) (p : Yali_minic.Ast.program) :
    (prepared, string) Result.t =
  let inputs = inputs_for (Rng.split_ix rng 0) ~vectors ~len:32 in
  match
    let m = Yali_minic.Lower.lower_program p in
    match verify_errors m with
    | Some err -> Error ("verifier error after lowering: " ^ err)
    | None ->
        (* one prepare (under the VM: one compile) amortized over the
           vectors, and later over every entry's shrink re-validations *)
        let runm = Execution.prepare m in
        let base = Array.map (fun input -> runm ~fuel input) inputs in
        Ok { p_mod = m; p_inputs = inputs; p_base = base }
  with
  | r -> r
  | exception Interp.Trap msg -> Error ("baseline trap: " ^ msg)
  | exception Interp.Out_of_fuel -> Error "baseline out of fuel"
  | exception e -> Error (Printexc.to_string e)

(* apply one pass to a prepared baseline: verify, run, compare *)
let check_entry ~fuel (prep : prepared) (e : Passdb.entry) (prng : Rng.t) :
    failure_kind option =
  match e.erun prng prep.p_mod with
  | exception ex ->
      Some (Transform_crash { error = Printexc.to_string ex })
  | m1 -> (
      match verify_errors m1 with
      | Some err -> Some (Verify_failed { error = err })
      | None ->
          let vfuel = fuel * e.efuel in
          let run1 = Execution.prepare m1 in
          let n = Array.length prep.p_inputs in
          let rec go input_ix =
            if input_ix >= n then None
            else
              match run1 ~fuel:vfuel prep.p_inputs.(input_ix) with
              | o ->
                  if Interp.equal_behaviour prep.p_base.(input_ix) o then
                    go (input_ix + 1)
                  else
                    Some
                      (Divergence
                         {
                           input_ix;
                           expected =
                             observation_to_string prep.p_base.(input_ix);
                           got = observation_to_string o;
                         })
              | exception Interp.Trap msg ->
                  Some (Run_crash { input_ix; error = "trap: " ^ msg })
              | exception Interp.Out_of_fuel ->
                  Some (Run_crash { input_ix; error = "out of fuel" })
          in
          go 0)

let validate ?(fuel = default_fuel) ?(vectors = 3) (e : Passdb.entry)
    (rng : Rng.t) (p : Yali_minic.Ast.program) : verdict =
  match prepare ~fuel ~vectors rng p with
  | Error msg -> Bad_baseline msg
  | Ok prep -> (
      match check_entry ~fuel prep e (Rng.split_ix rng (salt e.ename)) with
      | None -> Valid
      | Some kind -> Miscompiled kind)

(* -- the campaign ----------------------------------------------------------- *)

type failure = {
  f_pass : string;
  f_origin : string;
  f_kind : failure_kind;
  f_engine : string;
  f_program : Yali_minic.Ast.program;
  f_minimized : Yali_minic.Ast.program option;
}

let current_engine () = Execution.engine_to_string (Execution.get_engine ())

let pp_failure fmt (f : failure) =
  Format.fprintf fmt "[%s] %s (engine %s) %s" f.f_pass f.f_origin f.f_engine
    (failure_kind_to_string f.f_kind)

type config = {
  seed : int;
  per_pass : int;
  entries : Passdb.entry list;
  gen_cfg : Gen.cfg;
  fuel : int;
  vectors : int;
  shrink : bool;
  shrink_checks : int;
  corpus_dir : string option;
  log : string -> unit;
}

let default =
  {
    seed = 42;
    per_pass = 50;
    entries = Passdb.all ();
    gen_cfg = Gen.default;
    fuel = default_fuel;
    vectors = 3;
    shrink = true;
    shrink_checks = 2_000;
    corpus_dir = Some Corpus.default_dir;
    log = ignore;
  }

type report = {
  c_passes : int;
  c_programs : int;
  c_corpus : int;
  c_validations : int;
  c_failures : failure list;
  c_elapsed : float;
}

(* the shrink predicate: the candidate still miscompiles under this pass,
   with exactly the detection-time rng (baseline must stay healthy, so a
   candidate that is itself broken does not count) *)
let still_fails (cfg : config) (e : Passdb.entry) (rng : Rng.t)
    (p : Yali_minic.Ast.program) : bool =
  match validate ~fuel:cfg.fuel ~vectors:cfg.vectors e rng p with
  | Miscompiled _ -> true
  | Valid | Bad_baseline _ -> false

let make_failure (cfg : config) ~origin ~rng (e : Passdb.entry)
    (kind : failure_kind) (p : Yali_minic.Ast.program) : failure =
  let minimized =
    if cfg.shrink then
      Some
        (Shrink.run ~max_checks:cfg.shrink_checks (still_fails cfg e rng) p)
    else None
  in
  {
    f_pass = e.ename;
    f_origin = origin;
    f_kind = kind;
    f_engine = current_engine ();
    f_program = p;
    f_minimized = minimized;
  }

(* one program through every entry; returns per-entry failures (or the
   baseline problem).  Pure function of (rng, program) — safe on workers. *)
let sweep (cfg : config) (rng : Rng.t) (p : Yali_minic.Ast.program) :
    ((Passdb.entry * failure_kind) list, string) Result.t =
  match prepare ~fuel:cfg.fuel ~vectors:cfg.vectors rng p with
  | Error msg -> Error msg
  | Ok prep ->
      Ok
        (List.filter_map
           (fun (e : Passdb.entry) ->
             match
               check_entry ~fuel:cfg.fuel prep e
                 (Rng.split_ix rng (salt e.ename))
             with
             | None -> None
             | Some kind -> Some (e, kind))
           cfg.entries)

let run (cfg : config) : report =
  let t0 = Telemetry.clock () in
  let root = Rng.make cfg.seed in
  let corpus_rng = Rng.split_ix root 0 in
  let gen_rng = Rng.split_ix root 1 in
  let programs = ref 0 and validations = ref 0 in
  let failures = ref [] in
  (* fold one swept program into the totals, on the calling domain *)
  let absorb ~origin ~rng (p : Yali_minic.Ast.program) result =
    incr programs;
    match result with
    | Error msg ->
        failures :=
          {
            f_pass = "baseline";
            f_origin = origin;
            f_kind = Transform_crash { error = msg };
            f_engine = current_engine ();
            f_program = p;
            f_minimized = None;
          }
          :: !failures
    | Ok fails ->
        validations := !validations + List.length cfg.entries;
        List.iter
          (fun (e, kind) ->
            failures := make_failure cfg ~origin ~rng e kind p :: !failures)
          fails
  in
  (* 1. regression-corpus replay, through every entry *)
  let corpus_entries =
    match cfg.corpus_dir with None -> [] | Some dir -> Corpus.load dir
  in
  List.iteri
    (fun k (name, entry) ->
      let origin = "corpus:" ^ name in
      match entry with
      | Error msg ->
          incr programs;
          failures :=
            {
              f_pass = "corpus-parse";
              f_origin = origin;
              f_kind = Transform_crash { error = msg };
              f_engine = current_engine ();
              f_program = { Yali_minic.Ast.pfuncs = [] };
              f_minimized = None;
            }
            :: !failures
      | Ok p ->
          let rng = Rng.split_ix corpus_rng k in
          absorb ~origin ~rng p (sweep cfg rng p))
    corpus_entries;
  let replayed = !programs in
  if replayed > 0 then
    cfg.log (Printf.sprintf "replayed %d corpus entries" replayed);
  (* 2. fresh generation, chunked over the pool (slot-per-task results keep
     findings bit-identical at any jobs setting) *)
  let chunk_size = 16 in
  let next = ref 0 in
  while !next < cfg.per_pass do
    let n = min chunk_size (cfg.per_pass - !next) in
    let start = !next in
    let slots = Array.make n None in
    Telemetry.with_span "check.chunk" (fun () ->
        Pool.run ~n (fun k ->
            let ix = start + k in
            let pri = Rng.split_ix gen_rng ix in
            let p = Gen.program ~cfg:cfg.gen_cfg (Rng.split_ix pri 0) in
            let vrng = Rng.split_ix pri 1 in
            slots.(k) <- Some (ix, p, vrng, sweep cfg vrng p)));
    Array.iter
      (function
        | None -> ()
        | Some (ix, p, vrng, r) ->
            absorb ~origin:(Printf.sprintf "gen:%d" ix) ~rng:vrng p r)
      slots;
    next := start + n;
    cfg.log
      (Printf.sprintf "%6d programs  %6d validations  %d failure%s  %.1fs"
         !programs !validations
         (List.length !failures)
         (if List.length !failures = 1 then "" else "s")
         (Telemetry.clock () -. t0))
  done;
  Telemetry.incr ~by:!programs "check.programs";
  Telemetry.incr ~by:!validations "check.validations";
  Telemetry.incr ~by:(List.length !failures) "check.failures";
  {
    c_passes = List.length cfg.entries;
    c_programs = !programs;
    c_corpus = replayed;
    c_validations = !validations;
    c_failures = List.rev !failures;
    c_elapsed = Telemetry.clock () -. t0;
  }

let summary (r : report) : string =
  let b = Buffer.create 256 in
  Printf.bprintf b
    "check: %d passes x %d programs (%d corpus) = %d validations in %.1fs \
     (jobs=%d)\n"
    r.c_passes r.c_programs r.c_corpus r.c_validations r.c_elapsed
    (Pool.get_jobs ());
  Printf.bprintf b "failures: %d\n" (List.length r.c_failures);
  List.iter
    (fun f ->
      Printf.bprintf b "\nFAILURE %s\n"
        (Format.asprintf "%a" pp_failure f);
      match f.f_minimized with
      | Some p ->
          Printf.bprintf b "  minimized to %d statement(s):\n%s"
            (Shrink.stmt_count p)
            (Yali_minic.Pp.program_to_string p)
      | None -> ())
    r.c_failures;
  Buffer.contents b
