(** The persistent corpus: mini-C files replayed before fresh generation,
    afl/libFuzzer seed-directory style.

    [fuzz/corpus/*.c] holds both hand-written seeds and minimized
    reproducers saved by the driver ([crash-<hash>.c]); every fuzz run
    replays the directory first, so a once-found divergence keeps guarding
    the passes after it is fixed. *)

let default_dir = Filename.concat "fuzz" "corpus"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(** Load every [*.c] file, sorted by name for reproducible replay order.
    Files that fail to parse are reported as [Error] entries rather than
    dropped — a corpus entry the frontend can no longer read is itself a
    regression worth surfacing. *)
let load (dir : string) :
    (string * (Yali_minic.Ast.program, string) Result.t) list =
  if not (Sys.file_exists dir && Sys.is_directory dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".c")
    |> List.sort String.compare
    |> List.map (fun f ->
           let path = Filename.concat dir f in
           let entry =
             match Yali_minic.Parser.parse_program (read_file path) with
             | p -> Ok p
             | exception e -> Error (Printexc.to_string e)
           in
           (f, entry))

(* a small stable content hash (FNV-1a over the printed source) *)
let hash_hex (src : string) : string =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun ch ->
      h := Int64.logxor !h (Int64.of_int (Char.code ch));
      h := Int64.mul !h 0x100000001b3L)
    src;
  Printf.sprintf "%016Lx" !h

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    (try Sys.mkdir dir 0o755 with Sys_error _ -> ())
  end

(** Write a reproducer; the filename is derived from the content hash, so
    re-saving the same program is idempotent.  Returns the path. *)
let save ~(dir : string) (p : Yali_minic.Ast.program) : string =
  let src = Yali_minic.Pp.program_to_string p in
  mkdir_p dir;
  let path = Filename.concat dir (Printf.sprintf "crash-%s.c" (hash_hex src)) in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc src);
  path
