(** Greedy AST minimizer for failing programs.

    [run pred p] repeatedly replaces the program with the first strictly
    smaller one-step reduction that still satisfies [pred] (the "still
    fails the same variant" predicate supplied by the driver), until no
    reduction does.  Reductions: drop a helper function, drop a statement,
    replace a compound statement with one of its bodies, hoist a
    subexpression, collapse an expression to [0]/[1], and halve integer
    literals.  Every candidate strictly decreases a lexicographic (node
    weight, literal magnitude) measure, so shrinking terminates without a
    fuel bound; [max_checks] merely caps the number of predicate calls,
    which dominate the cost.  The procedure is fully deterministic. *)

open Yali_minic.Ast

(* -- the strictly decreasing measure -------------------------------------- *)

(* leaf weights make [Var x -> IntLit 0] a strict decrease; the literal
   magnitude sum breaks ties for literal halving *)
let rec expr_weight (e : expr) : int =
  match e with
  | IntLit n -> if n = 0 || n = 1 then 1 else 2
  | FloatLit _ | Var _ -> 2
  | Bin (_, a, b) -> 1 + expr_weight a + expr_weight b
  | Un (_, a) -> 1 + expr_weight a
  | Call (_, args) -> 2 + List.fold_left (fun s a -> s + expr_weight a) 0 args
  | Index (_, ix) -> 2 + expr_weight ix
  | Ternary (c, a, b) -> 1 + expr_weight c + expr_weight a + expr_weight b

let rec expr_mag (e : expr) : int =
  match e with
  | IntLit n -> min (abs n) 0x40000000
  | FloatLit _ | Var _ -> 0
  | Bin (_, a, b) -> expr_mag a + expr_mag b
  | Un (_, a) -> expr_mag a
  | Call (_, args) -> List.fold_left (fun s a -> s + expr_mag a) 0 args
  | Index (_, ix) -> expr_mag ix
  | Ternary (c, a, b) -> expr_mag c + expr_mag a + expr_mag b

let rec stmt_weight (s : stmt) : int =
  1
  +
  match s with
  | Decl (_, _, e) -> Option.fold ~none:0 ~some:expr_weight e
  | DeclArr _ | Break | Continue -> 0
  | Assign (_, e) -> expr_weight e
  | AssignIdx (_, ix, e) -> expr_weight ix + expr_weight e
  | If (c, t, e) -> expr_weight c + stmts_weight t + stmts_weight e
  | While (c, b) -> expr_weight c + stmts_weight b
  | DoWhile (b, c) -> stmts_weight b + expr_weight c
  | For (i, c, st, b) ->
      Option.fold ~none:0 ~some:stmt_weight i
      + Option.fold ~none:0 ~some:expr_weight c
      + Option.fold ~none:0 ~some:stmt_weight st
      + stmts_weight b
  | Switch (e, cases, d) ->
      expr_weight e
      + List.fold_left (fun s (_, b) -> s + stmts_weight b) 0 cases
      + stmts_weight d
  | Return e -> Option.fold ~none:0 ~some:expr_weight e
  | Expr e -> expr_weight e
  | Block b -> stmts_weight b

and stmts_weight ss = List.fold_left (fun s x -> s + stmt_weight x) 0 ss

let rec stmt_mag (s : stmt) : int =
  match s with
  | Decl (_, _, e) -> Option.fold ~none:0 ~some:expr_mag e
  | DeclArr _ | Break | Continue -> 0
  | Assign (_, e) -> expr_mag e
  | AssignIdx (_, ix, e) -> expr_mag ix + expr_mag e
  | If (c, t, e) -> expr_mag c + stmts_mag t + stmts_mag e
  | While (c, b) -> expr_mag c + stmts_mag b
  | DoWhile (b, c) -> stmts_mag b + expr_mag c
  | For (i, c, st, b) ->
      Option.fold ~none:0 ~some:stmt_mag i
      + Option.fold ~none:0 ~some:expr_mag c
      + Option.fold ~none:0 ~some:stmt_mag st
      + stmts_mag b
  | Switch (e, cases, d) ->
      expr_mag e
      + List.fold_left (fun s (_, b) -> s + stmts_mag b) 0 cases
      + stmts_mag d
  | Return e -> Option.fold ~none:0 ~some:expr_mag e
  | Expr e -> expr_mag e
  | Block b -> stmts_mag b

and stmts_mag ss = List.fold_left (fun s x -> s + stmt_mag x) 0 ss

let measure (p : program) : int * int =
  List.fold_left
    (fun (w, m) f -> (w + 1 + stmts_weight f.fbody, m + stmts_mag f.fbody))
    (0, 0) p.pfuncs

(* -- one-step reductions --------------------------------------------------- *)

let rec edits_expr (e : expr) : expr list =
  (* biggest jumps first: collapse to a unit literal, then hoist
     subexpressions, then edit in place *)
  let collapse =
    match e with
    | IntLit 0 | IntLit 1 -> []
    | IntLit n -> (if n <> 0 then [ IntLit 0 ] else []) @ [ IntLit (n / 2) ]
    | _ -> [ IntLit 0; IntLit 1 ]
  in
  let hoist =
    match e with
    | Bin (_, a, b) -> [ a; b ]
    | Un (_, a) -> [ a ]
    | Call (_, args) -> args
    | Index (_, ix) -> [ ix ]
    | Ternary (c, a, b) -> [ c; a; b ]
    | _ -> []
  in
  let in_place =
    match e with
    | IntLit _ | FloatLit _ | Var _ -> []
    | Bin (op, a, b) ->
        List.map (fun a' -> Bin (op, a', b)) (edits_expr a)
        @ List.map (fun b' -> Bin (op, a, b')) (edits_expr b)
    | Un (op, a) -> List.map (fun a' -> Un (op, a')) (edits_expr a)
    | Call (f, args) ->
        List.concat
          (List.mapi
             (fun k a ->
               List.map
                 (fun a' ->
                   Call (f, List.mapi (fun j x -> if j = k then a' else x) args))
                 (edits_expr a))
             args)
    | Index (a, ix) -> List.map (fun ix' -> Index (a, ix')) (edits_expr ix)
    | Ternary (c, a, b) ->
        List.map (fun c' -> Ternary (c', a, b)) (edits_expr c)
        @ List.map (fun a' -> Ternary (c, a', b)) (edits_expr a)
        @ List.map (fun b' -> Ternary (c, a, b')) (edits_expr b)
  in
  collapse @ hoist @ in_place

(* replacements for one statement, each a (possibly empty) statement list *)
let rec edits_stmt (s : stmt) : stmt list list =
  let e1 mk es = List.map (fun e' -> [ mk e' ]) es in
  match s with
  | Decl (t, n, Some e) -> e1 (fun e' -> Decl (t, n, Some e')) (edits_expr e)
  | Decl (_, _, None) | DeclArr _ | Break | Continue -> []
  | Assign (n, e) -> e1 (fun e' -> Assign (n, e')) (edits_expr e)
  | AssignIdx (a, ix, e) ->
      e1 (fun ix' -> AssignIdx (a, ix', e)) (edits_expr ix)
      @ e1 (fun e' -> AssignIdx (a, ix, e')) (edits_expr e)
  | If (c, t, e) ->
      [ t; e ]
      @ e1 (fun c' -> If (c', t, e)) (edits_expr c)
      @ List.map (fun t' -> [ If (c, t', e) ]) (edits_stmts t)
      @ List.map (fun e' -> [ If (c, t, e') ]) (edits_stmts e)
  | While (c, b) ->
      [ b ]
      @ e1 (fun c' -> While (c', b)) (edits_expr c)
      @ List.map (fun b' -> [ While (c, b') ]) (edits_stmts b)
  | DoWhile (b, c) ->
      [ b ]
      @ e1 (fun c' -> DoWhile (b, c')) (edits_expr c)
      @ List.map (fun b' -> [ DoWhile (b', c) ]) (edits_stmts b)
  | For (init, c, step, b) ->
      [ Option.to_list init @ b ]
      @ (match c with
        | Some c ->
            List.map (fun c' -> [ For (init, Some c', step, b) ]) (edits_expr c)
        | None -> [])
      @ List.map (fun b' -> [ For (init, c, step, b') ]) (edits_stmts b)
  | Switch (e, cases, d) ->
      List.map snd cases @ [ d ]
      @ e1 (fun e' -> Switch (e', cases, d)) (edits_expr e)
      @ List.concat
          (List.mapi
             (fun k (tag, b) ->
               List.map
                 (fun b' ->
                   [
                     Switch
                       ( e,
                         List.mapi
                           (fun j c -> if j = k then (tag, b') else c)
                           cases,
                         d );
                   ])
                 (edits_stmts b))
             cases)
      @ List.map (fun d' -> [ Switch (e, cases, d') ]) (edits_stmts d)
  | Return (Some e) -> e1 (fun e' -> Return (Some e')) (edits_expr e)
  | Return None -> []
  | Expr e -> e1 (fun e' -> Expr e') (edits_expr e)
  | Block b -> [ b ] @ List.map (fun b' -> [ Block b' ]) (edits_stmts b)

(* replacements for a statement list: drop one statement, or rewrite one *)
and edits_stmts (ss : stmt list) : stmt list list =
  let drops =
    List.mapi (fun k _ -> List.filteri (fun j _ -> j <> k) ss) ss
  in
  let rewrites =
    List.concat
      (List.mapi
         (fun k s ->
           List.map
             (fun repl ->
               List.concat
                 (List.mapi (fun j x -> if j = k then repl else [ x ]) ss))
             (edits_stmt s))
         ss)
  in
  drops @ rewrites

let candidates (p : program) : program list =
  let drop_funcs =
    if List.length p.pfuncs > 1 then
      List.filter_map
        (fun f ->
          if f.fname = "main" then None
          else
            Some { pfuncs = List.filter (fun g -> g.fname <> f.fname) p.pfuncs })
        p.pfuncs
    else []
  in
  let body_edits =
    List.concat_map
      (fun f ->
        List.map
          (fun body' ->
            {
              pfuncs =
                List.map
                  (fun g -> if g.fname = f.fname then { g with fbody = body' } else g)
                  p.pfuncs;
            })
          (edits_stmts f.fbody))
      p.pfuncs
  in
  drop_funcs @ body_edits

(* -- the greedy loop (the generic engine, instantiated at programs) -------- *)

let run ?max_checks (pred : program -> bool) (p0 : program) : program =
  Prop.minimize ?max_checks ~measure ~candidates pred p0

(** Total statement count of a program (the reported size of a minimized
    reproducer). *)
let stmt_count (p : program) : int =
  List.fold_left (fun n f -> n + Yali_minic.Ast.stmt_count f.fbody) 0 p.pfuncs
