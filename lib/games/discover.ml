(** RQ7 (Figure 14): can a classifier detect *which transformer* was applied
    to a program?  Ten transformer classes; four dataset regimes that differ
    in whether every transformer sees the same programs (datasets 1 and 2)
    or each transformer gets its own programs (3 and 4 — the latter produce
    the spurious correlation the paper warns about). *)

module Rng = Yali_util.Rng
module E = Yali_embeddings
module Ml = Yali_ml
open Yali_obfuscation

type dataset_kind = Dataset1 | Dataset2 | Dataset3 | Dataset4

let dataset_name = function
  | Dataset1 -> "dataset1"
  | Dataset2 -> "dataset2"
  | Dataset3 -> "dataset3"
  | Dataset4 -> "dataset4"

(** The ten transformer classes of §4.7. *)
let transformers : Evader.t list =
  [
    Evader.none (* clang -O0 *);
    Evader.mem2reg;
    Evader.o3;
    Evader.bcf;
    Evader.fla;
    Evader.sub;
    Evader.drlsg;
    Evader.mcmc;
    Evader.rs;
    Evader.ga;
  ]

let n_transformers = List.length transformers

(* pools of source programs, per the four regimes *)
let programs_for (rng : Rng.t) (kind : dataset_kind) ~(per_transformer : int) :
    Yali_minic.Ast.program list list =
  match kind with
  | Dataset1 ->
      (* one random problem; same programs for every transformer *)
      let p = Rng.choice rng Yali_dataset.Genprog.all in
      let pool =
        List.init per_transformer (fun _ ->
            Yali_dataset.Genprog.sample (Rng.split rng) p)
      in
      List.init n_transformers (fun _ -> pool)
  | Dataset2 ->
      (* a few solutions from each of many problems; same for everyone *)
      let problems = Yali_dataset.Genprog.all in
      let pool =
        List.init per_transformer (fun k ->
            let p = List.nth problems (k mod List.length problems) in
            Yali_dataset.Genprog.sample (Rng.split rng) p)
      in
      List.init n_transformers (fun _ -> pool)
  | Dataset3 ->
      (* each transformer gets solutions of its own problem: the
         class-confounded regime *)
      let problems = Rng.sample rng n_transformers Yali_dataset.Genprog.all in
      List.map
        (fun p ->
          List.init per_transformer (fun _ ->
              Yali_dataset.Genprog.sample (Rng.split rng) p))
        problems
  | Dataset4 ->
      (* each transformer gets different programs drawn across problems *)
      List.init n_transformers (fun _ ->
          List.init per_transformer (fun k ->
              let p =
                List.nth Yali_dataset.Genprog.all
                  ((k * 7) mod Yali_dataset.Genprog.count)
              in
              Yali_dataset.Genprog.sample (Rng.split rng) p))

type result = { kind : dataset_kind; accuracy : float }

(** Run the obfuscator-detection experiment: train a histogram+rf classifier
    to name the transformer. *)
let run ?(per_transformer = 50) ?(train_fraction = 0.8) (rng : Rng.t)
    (kind : dataset_kind) : result =
  let pools = programs_for (Rng.split rng) kind ~per_transformer in
  let samples =
    List.concat
      (List.mapi
         (fun label (evader, pool) ->
           List.map
             (fun src ->
               let m = evader.Evader.apply (Rng.split rng) src in
               (E.Histogram.of_module m, label))
             pool)
         (List.combine transformers pools))
  in
  let samples = Array.of_list (Rng.shuffle rng samples) in
  let n_train =
    int_of_float (train_fraction *. float_of_int (Array.length samples))
  in
  let train = Array.sub samples 0 n_train in
  let test = Array.sub samples n_train (Array.length samples - n_train) in
  let trained =
    Ml.Model.rf.ftrain (Rng.split rng) ~n_classes:n_transformers
      (Ml.Fmat.of_rows (Array.map fst train))
      (Array.map snd train)
  in
  let truth = Array.map snd test in
  let pred = trained.predict_batch (Ml.Fmat.of_rows (Array.map fst test)) in
  { kind; accuracy = Ml.Metrics.accuracy truth pred }
