(** The game framework of Section 2, as code.

    Definition 2.1 (programming problem), Definition 2.3 (algorithm
    classification) and Definition 2.4 (adversarial game) map onto the types
    below; the four games of Figure 1 are the four ways of assigning
    transformation resources to the two players. *)

open Yali_minic
module Rng = Yali_util.Rng
module Irmod = Yali_ir.Irmod

(** A classifier takes a challenge module and names a problem class
    (Definition 2.3: the index of the problem it believes the challenge
    solves). *)
type classifier = Irmod.t -> int

(** An evader turns a solution into an equivalent program handed to the
    classifier (Definition 2.4, step 1).  Evaders receive source programs —
    they own the build pipeline of the challenge, as in the paper where the
    evader compiles with O-LLVM. *)
type evader = Rng.t -> Ast.program -> Irmod.t

(** The resources of the four games (paper, Figure 1):

    - [train_tx]: how the classifier builds IR from its 0.8 share of the
      dataset (Game2 obfuscates it; Game3 normalizes it);
    - [challenge_tx]: how the evader builds the challenge from its 0.2 share;
    - [normalize]: what the classifier applies to an incoming challenge
      before classifying (identity except in Game3). *)
type setup = {
  game_name : string;
  train_tx : Rng.t -> Ast.program -> Irmod.t;
  challenge_tx : Rng.t -> Ast.program -> Irmod.t;
  normalize : Irmod.t -> Irmod.t;
}

let lower = Lower.lower_program ?name:None

(* lowered modules are content-addressed on the source AST: figures replay
   the same split under several games and rounds, so plain [-O0] lowering
   of a given solution recurs constantly (modules are immutable, sharing
   the cached one is safe) *)
let lower_cache : Irmod.t Yali_exec.Cache.t =
  Yali_exec.Cache.create ~name:"game.lower" ~capacity:4096 ()

let lower_cached (p : Ast.program) : Irmod.t =
  Yali_exec.Cache.find_or_compute lower_cache
    ~key:(Digest.string (Marshal.to_string p [ Marshal.No_sharing ]))
    (fun () -> lower p)

let passive : evader = fun _ p -> lower_cached p

(** Game0 (symmetric): no transformation on either side. *)
let game0 : setup =
  {
    game_name = "game0";
    train_tx = passive;
    challenge_tx = passive;
    normalize = Fun.id;
  }

(** Game1 (asymmetric): the evader transforms; the classifier trains on
    plain programs and is unaware of the transformation. *)
let game1 (e : Yali_obfuscation.Evader.t) : setup =
  {
    game_name = "game1-" ^ e.ename;
    train_tx = passive;
    challenge_tx = e.apply;
    normalize = Fun.id;
  }

(** Game2 (symmetric): both players hold the same one-way transformation;
    the classifier trains on transformed samples. *)
let game2 (e : Yali_obfuscation.Evader.t) : setup =
  {
    game_name = "game2-" ^ e.ename;
    train_tx = e.apply;
    challenge_tx = e.apply;
    normalize = Fun.id;
  }

(** Game3 (asymmetric): the evader holds an unknown transformation; the
    classifier holds an optimizer used as a normalizer on both its training
    set and incoming challenges. *)
let game3 ?(normalizer = Yali_transforms.Pipeline.o3)
    (e : Yali_obfuscation.Evader.t) : setup =
  {
    game_name = "game3-" ^ e.ename;
    train_tx = (fun rng p -> normalizer (passive rng p));
    challenge_tx = e.apply;
    normalize = normalizer;
  }

(** Definition 2.4, verbatim: play a set of challenges against a classifier
    and decide the game against an accuracy threshold [K]. *)
type verdict = { accuracy : float; classifier_wins : bool }

let play ~(classifier : classifier) ~(threshold : float)
    (challenges : (Irmod.t * int) list) : verdict =
  let hits =
    List.fold_left
      (fun acc (challenge, truth) ->
        if classifier challenge = truth then acc + 1 else acc)
      0 challenges
  in
  let accuracy =
    float_of_int hits /. float_of_int (max 1 (List.length challenges))
  in
  { accuracy; classifier_wins = accuracy > threshold }
