(** The classification arena: wires a dataset split, an embedding, a model
    and a game setup into an accuracy measurement — the engine behind every
    figure of the paper's evaluation. *)

type result = {
  accuracy : float;
  f1 : float;
  model_bytes : int;
  train_seconds : float;
  n_train : int;
  n_test : int;
}

(** Materialise the IR of both dataset halves under the game's resources:
    training modules via [train_tx], challenges via [normalize ∘
    challenge_tx]. *)
val build_modules :
  Yali_util.Rng.t ->
  Game.setup ->
  Yali_dataset.Poj.split ->
  (Yali_ir.Irmod.t * int) array * (Yali_ir.Irmod.t * int) array

(** Embed a module array straight into a flat feature matrix (no
    intermediate row arrays). *)
val embed_fmat :
  Yali_embeddings.Embedding.t ->
  (Yali_ir.Irmod.t * int) array ->
  Yali_ml.Fmat.t

(** Run a game with a flat model (graph embeddings are flattened). *)
val run_flat :
  Yali_util.Rng.t ->
  n_classes:int ->
  Yali_embeddings.Embedding.t ->
  Yali_ml.Model.flat ->
  Game.setup ->
  Yali_dataset.Poj.split ->
  result

(** Run a game with the DGCNN over a graph embedding. *)
val run_graph :
  Yali_util.Rng.t ->
  n_classes:int ->
  Yali_embeddings.Embedding.t ->
  Game.setup ->
  Yali_dataset.Poj.split ->
  result

(** The paper's RQ1 protocol: dgcnn on graph embeddings, its cnn truncation
    on flat ones. *)
val run_neural :
  Yali_util.Rng.t ->
  n_classes:int ->
  Yali_embeddings.Embedding.t ->
  Game.setup ->
  Yali_dataset.Poj.split ->
  result
