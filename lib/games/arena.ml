(** The classification arena: wires a dataset split, an embedding, a model
    and a game setup into an accuracy measurement.  This is the engine
    behind every figure of the paper's evaluation.

    All hot loops — materialising IR under the game's resources, embedding
    both dataset halves, sweeping the challenge set — fan out over
    {!Yali_exec.Pool} and report through {!Yali_exec.Telemetry}.  Runs are
    bit-identical at any [jobs] setting: every per-item RNG is pre-derived
    on the calling domain ({!Rng.split_n}), embeddings flow through the
    content-addressed cache of pure functions, and each task writes only
    its own result slot. *)

module Rng = Yali_util.Rng
module Exec = Yali_exec
module E = Yali_embeddings
module Ml = Yali_ml
module Irmod = Yali_ir.Irmod

type result = {
  accuracy : float;
  f1 : float;
  model_bytes : int;
  train_seconds : float;
  n_train : int;
  n_test : int;
}

(* materialise the IR of both dataset halves under the game's resources *)
let build_modules (rng : Rng.t) (setup : Game.setup)
    (split : Yali_dataset.Poj.split) : (Irmod.t * int) array * (Irmod.t * int) array
    =
  Exec.Telemetry.with_span "arena.build_modules" (fun () ->
      (* derivation order matches the former sequential loops: all train
         streams first, then all test streams *)
      let train_rngs = Rng.split_n rng (Array.length split.train) in
      let test_rngs = Rng.split_n rng (Array.length split.test) in
      let train =
        Exec.Pool.parallel_array_mapi
          (fun i (s : Yali_dataset.Poj.labelled) ->
            (setup.Game.train_tx train_rngs.(i) s.src, s.label))
          split.train
      in
      let test =
        Exec.Pool.parallel_array_mapi
          (fun i (s : Yali_dataset.Poj.labelled) ->
            ( setup.Game.normalize (setup.Game.challenge_tx test_rngs.(i) s.src),
              s.label ))
          split.test
      in
      (train, test))

let eval_predictions ~(n_classes : int) (truth : int array) (pred : int array)
    : float * float =
  let acc = Ml.Metrics.accuracy truth pred in
  let f1 = Ml.Metrics.macro_f1 (Ml.Metrics.confusion ~n_classes truth pred) in
  (acc, f1)

(** Embed a module array straight into a flat feature matrix: each
    embedding vector is written into its row of one contiguous block, so no
    intermediate [float array array] is ever materialised. *)
let embed_fmat (embedding : E.Embedding.t) (mods : (Irmod.t * int) array) :
    Ml.Fmat.t =
  Exec.Telemetry.with_span "arena.embed" (fun () ->
      Ml.Fmat.parallel_of_fn ~n:(Array.length mods) (fun i ->
          E.Embedding.to_flat_cached embedding (fst mods.(i))))

(** Run a game with a flat model over a flat (or flattened) embedding. *)
let run_flat (rng : Rng.t) ~(n_classes : int) (embedding : E.Embedding.t)
    (model : Ml.Model.flat) (setup : Game.setup)
    (split : Yali_dataset.Poj.split) : result =
  let train_mods, test_mods = build_modules (Rng.split rng) setup split in
  let xs = embed_fmat embedding train_mods in
  let ys = Array.map snd train_mods in
  let t0 = Exec.Telemetry.clock () in
  let trained =
    Exec.Telemetry.with_span "arena.train" (fun () ->
        model.ftrain (Rng.split rng) ~n_classes xs ys)
  in
  let train_seconds = Exec.Telemetry.clock () -. t0 in
  let truth = Array.map snd test_mods in
  let challenges = embed_fmat embedding test_mods in
  let pred =
    Exec.Telemetry.with_span "arena.predict" (fun () ->
        trained.predict_batch challenges)
  in
  let accuracy, f1 = eval_predictions ~n_classes truth pred in
  {
    accuracy;
    f1;
    model_bytes = trained.size_bytes;
    train_seconds;
    n_train = xs.Ml.Fmat.n;
    n_test = Array.length truth;
  }

(** Run a game with the DGCNN over a graph embedding (flat embeddings are
    wrapped as single-node graphs, mirroring the paper's note that the graph
    layers "find no service" on arrays). *)
let run_graph (rng : Rng.t) ~(n_classes : int) (embedding : E.Embedding.t)
    (setup : Game.setup) (split : Yali_dataset.Poj.split) : result =
  let train_mods, test_mods = build_modules (Rng.split rng) setup split in
  let embed m = E.Embedding.to_graph_cached embedding m in
  let graphs =
    Exec.Telemetry.with_span "arena.embed" (fun () ->
        Exec.Pool.parallel_array_map (fun (m, _) -> embed m) train_mods)
  in
  let ys = Array.map snd train_mods in
  let feat_dim =
    if Array.length graphs = 0 then 1 else graphs.(0).E.Graph.feat_dim
  in
  let t0 = Exec.Telemetry.clock () in
  let trained =
    Exec.Telemetry.with_span "arena.train" (fun () ->
        Ml.Model.dgcnn.gtrain (Rng.split rng) ~n_classes ~feat_dim graphs ys)
  in
  let train_seconds = Exec.Telemetry.clock () -. t0 in
  let truth = Array.map snd test_mods in
  let pred =
    Exec.Telemetry.with_span "arena.predict" (fun () ->
        Exec.Pool.parallel_array_map
          (fun (m, _) -> trained.gpredict (embed m))
          test_mods)
  in
  let accuracy, f1 = eval_predictions ~n_classes truth pred in
  {
    accuracy;
    f1;
    model_bytes = trained.gsize_bytes;
    train_seconds;
    n_train = Array.length graphs;
    n_test = Array.length truth;
  }

(** The model used for the embedding-comparison experiments (RQ1): dgcnn on
    graph embeddings, its cnn truncation on flat ones — exactly the paper's
    protocol. *)
let run_neural (rng : Rng.t) ~(n_classes : int) (embedding : E.Embedding.t)
    (setup : Game.setup) (split : Yali_dataset.Poj.split) : result =
  if E.Embedding.is_flat embedding then
    run_flat rng ~n_classes embedding Ml.Model.cnn setup split
  else run_graph rng ~n_classes embedding setup split
