(** Cost-priced, classifier-in-the-loop fitness for the adaptive evader.

    A candidate sequence is scored against a fixed set of {e challenges}
    (held-out programs the classifier was not trained on).  For each
    challenge the transformed module is (1) re-run on the challenge's
    seeded input vectors under the engine switchboard — its observable
    behaviour must match the baseline, and the abstract cost
    ({!Yali_ir.Interp.outcome}[.cost], the paper's stand-in for running
    time) prices the obfuscation — and (2) pushed through the classifier's
    per-class score oracle ({!Yali_ml.Model.margins}, in-process or via the
    {!Yali_serve} daemon).

    Fitness rewards the evasion rate, breaks ties by the normalised margin
    gap (how far the true class has fallen behind the best rival), and
    charges [lambda] per unit of cost multiplier above 1 — so the search
    surfaces the whole evasion-vs-slowdown trade-off rather than a single
    maximally-expensive evader ({!Pareto}). *)

module Rng = Yali_util.Rng
module Interp = Yali_ir.Interp
module Execution = Yali_vm.Execution

type challenge = {
  ch_module : Yali_ir.Irmod.t;
  ch_label : int;
  ch_inputs : int64 list array;
  ch_base : (int64 list * float list * string) array;
      (** baseline observations, one per input vector *)
  ch_base_cost : float;  (** mean abstract cost of the baseline *)
}

(* Tv-style seeded input vectors: per-vector streams derived by index, so
   any vector can be regenerated in isolation. *)
let inputs_for (rng : Rng.t) ~(vectors : int) ~(len : int) : int64 list array
    =
  Array.init vectors (fun ix ->
      let r = Rng.split_ix rng ix in
      List.init len (fun _ -> Int64.of_int (Rng.int_range r (-1000) 1000)))

let challenge ?(fuel = 2_000_000) ?(vectors = 2) (rng : Rng.t) ~(label : int)
    (m : Yali_ir.Irmod.t) : (challenge, string) result =
  let inputs = inputs_for rng ~vectors ~len:32 in
  match
    let runm = Execution.prepare m in
    Array.map
      (fun input ->
        let o = runm ~fuel input in
        (Interp.observe o, o.Interp.cost))
      inputs
  with
  | outs ->
      let cost =
        Array.fold_left (fun a (_, c) -> a +. float_of_int c) 0.0 outs
        /. float_of_int (max 1 vectors)
      in
      Ok
        {
          ch_module = m;
          ch_label = label;
          ch_inputs = inputs;
          ch_base = Array.map fst outs;
          ch_base_cost = Float.max 1.0 cost;
        }
  | exception e -> Error (Printexc.to_string e)

type eval = {
  e_seq : Seqspace.seq;
  e_evasion : float;  (** fraction of challenges misclassified *)
  e_cost : float;  (** mean cost multiplier vs the baselines *)
  e_gap : float;  (** mean normalised margin gap (rival − true class) *)
  e_fitness : float;
}

(** Sequences whose transforms break behaviour (or blow the fuel headroom)
    are rejected with this sentinel — never on a Pareto front. *)
let rejected (s : Seqspace.seq) : eval =
  {
    e_seq = s;
    e_evasion = 0.0;
    e_cost = infinity;
    e_gap = neg_infinity;
    e_fitness = neg_infinity;
  }

(* transformed programs run strictly more instructions; give them headroom
   over the baseline fuel before calling a candidate non-terminating *)
let fuel_headroom = 16

(* the margin-gap tiebreak weight: small enough that one extra evaded
   challenge always dominates any gap movement *)
let gap_weight = 0.05

let evaluate ~(oracle : Yali_ir.Irmod.t -> float array) ~(lambda : float)
    ~(fuel : int) (chs : challenge array) (rng : Rng.t) (s : Seqspace.seq) :
    eval =
  let n = Array.length chs in
  let evaded = ref 0 and cost_sum = ref 0.0 and gap_sum = ref 0.0 in
  let valid = ref (n > 0) in
  Array.iteri
    (fun i ch ->
      if !valid then begin
        let m' = Seqspace.apply (Rng.split_ix rng i) s ch.ch_module in
        match
          let runm = Execution.prepare m' in
          Array.mapi
            (fun j input ->
              let o = runm ~fuel:(fuel * fuel_headroom) input in
              if Interp.observe o <> ch.ch_base.(j) then
                failwith "behaviour diverged";
              o.Interp.cost)
            ch.ch_inputs
        with
        | exception _ -> valid := false
        | costs ->
            let c =
              Array.fold_left (fun a c -> a +. float_of_int c) 0.0 costs
              /. float_of_int (max 1 (Array.length costs))
            in
            cost_sum := !cost_sum +. (c /. ch.ch_base_cost);
            let scores = oracle m' in
            let y = ch.ch_label in
            let rival = ref neg_infinity in
            Array.iteri
              (fun cidx v -> if cidx <> y && v > !rival then rival := v)
              scores;
            let denom =
              Array.fold_left (fun a v -> a +. Float.abs v) 0.0 scores
            in
            let gap = !rival -. scores.(y) in
            gap_sum := !gap_sum +. (if denom > 0.0 then gap /. denom else 0.0);
            if Yali_ml.Model.argmax scores <> y then incr evaded
      end)
    chs;
  if not !valid then rejected s
  else
    let nf = float_of_int n in
    let evasion = float_of_int !evaded /. nf in
    let cost = !cost_sum /. nf in
    let gap = !gap_sum /. nf in
    {
      e_seq = s;
      e_evasion = evasion;
      e_cost = cost;
      e_gap = gap;
      e_fitness =
        evasion +. (gap_weight *. gap)
        -. (lambda *. Float.max 0.0 (cost -. 1.0));
    }
