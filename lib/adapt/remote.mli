(** The via-serve margins oracle: classifier queries answered by a running
    {!Yali_serve.Server} daemon, bit-identical to the in-process snapshot
    (codec round trip is structural identity, embeddings are
    deterministic, scores travel f64-exact). *)

type t

(** Connect to a daemon's Unix socket.
    @raise Unix.Unix_error when it cannot be reached *)
val connect : socket:string -> t

val close : t -> unit

(** Per-class scores of a module, server-side.  Thread-safe: the shared
    connection is mutex-serialised, so it can stand in for an in-process
    oracle inside {!Yali_exec.Pool} tasks.
    @raise Failure on daemon errors or persistent busy replies *)
val oracle : t -> Yali_ir.Irmod.t -> float array
