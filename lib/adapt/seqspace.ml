(** The adaptive evader's gene space: sequences of parameterised IR-level
    obfuscation steps.

    Where {!Yali_obfuscation.Strategies} searches over the fifteen
    source-level rewrites with a fixed-distance objective, the adaptive
    evader searches {e here} — over the O-LLVM-style IR passes and their
    knobs (substitution probability and rounds, bogus-control-flow
    probability, the combined ollvm settings) — with the trained classifier
    itself in the loop ({!Fitness}).  Knob values are drawn from small
    discrete grids so the space stays enumerable and mutation is a
    well-defined neighbourhood move rather than a float perturbation. *)

module Rng = Yali_util.Rng
module Ob = Yali_obfuscation

type step =
  | Sub of { probability : float; rounds : int }
  | Fla
  | Bcf of { probability : float }
  | Ollvm of {
      sub_probability : float;
      sub_rounds : int;
      bcf_probability : float;
    }

type seq = step list

(* the discrete knob grids; probabilities are quartiles, rounds stay small
   because substitution growth compounds exponentially *)
let prob_grid = [| 0.25; 0.5; 0.75; 1.0 |]

let rounds_grid = [| 1; 2 |]

let random_step (rng : Rng.t) : step =
  let prob () = Rng.choice_arr rng prob_grid in
  let rounds () = Rng.choice_arr rng rounds_grid in
  match Rng.int rng 4 with
  | 0 -> Sub { probability = prob (); rounds = rounds () }
  | 1 -> Fla
  | 2 -> Bcf { probability = prob () }
  | _ ->
      Ollvm
        {
          sub_probability = prob ();
          sub_rounds = rounds ();
          bcf_probability = prob ();
        }

let random_seq (rng : Rng.t) ~(max_len : int) : seq =
  let len = Rng.int_range rng 1 (max 1 max_len) in
  List.init len (fun _ -> random_step rng)

(* retune: keep the step kind, move one knob to a fresh grid value *)
let retune (rng : Rng.t) : step -> step = function
  | Sub { probability; rounds } ->
      if Rng.bool rng then
        Sub { probability = Rng.choice_arr rng prob_grid; rounds }
      else Sub { probability; rounds = Rng.choice_arr rng rounds_grid }
  | Fla -> Fla
  | Bcf _ -> Bcf { probability = Rng.choice_arr rng prob_grid }
  | Ollvm o -> (
      match Rng.int rng 3 with
      | 0 -> Ollvm { o with sub_probability = Rng.choice_arr rng prob_grid }
      | 1 -> Ollvm { o with sub_rounds = Rng.choice_arr rng rounds_grid }
      | _ -> Ollvm { o with bcf_probability = Rng.choice_arr rng prob_grid })

let mutate (rng : Rng.t) ~(max_len : int) (s : seq) : seq =
  let n = List.length s in
  match Rng.int rng 4 with
  | 0 when n < max_len ->
      (* insert a fresh step at a random position *)
      let k = Rng.int rng (n + 1) in
      List.filteri (fun i _ -> i < k) s
      @ [ random_step rng ]
      @ List.filteri (fun i _ -> i >= k) s
  | 1 when n > 1 ->
      let k = Rng.int rng n in
      List.filteri (fun i _ -> i <> k) s
  | 2 when n > 0 ->
      let k = Rng.int rng n in
      List.mapi (fun i st -> if i = k then random_step rng else st) s
  | _ ->
      if n = 0 then [ random_step rng ]
      else
        let k = Rng.int rng n in
        List.mapi (fun i st -> if i = k then retune rng st else st) s

let apply_step (rng : Rng.t) (st : step) (m : Yali_ir.Irmod.t) :
    Yali_ir.Irmod.t =
  match st with
  | Sub { probability; rounds } -> Ob.Sub.run ~probability ~rounds rng m
  | Fla -> Ob.Fla.run rng m
  | Bcf { probability } -> Ob.Bcf.run ~probability rng m
  | Ollvm { sub_probability; sub_rounds; bcf_probability } ->
      Ob.Ollvm.run ~sub_probability ~sub_rounds ~bcf_probability rng m

let apply (rng : Rng.t) (s : seq) (m : Yali_ir.Irmod.t) : Yali_ir.Irmod.t =
  fst
    (List.fold_left
       (fun (m, ix) st ->
         let r = Rng.split_ix rng ix in
         (* search must be robust: a step that crashes is a no-op, not a
            dead candidate — and so is one whose output fails verification
            (e.g. re-flattening a function duplicates its dispatcher
            label), since only well-formed modules may reach the
            interpreter and the classifier *)
         let m' =
           match apply_step r st m with
           | m' -> if Yali_ir.Verify.check_module m' = [] then m' else m
           | exception _ -> m
         in
         (m', ix + 1))
       (m, 0) s)

let step_to_string = function
  | Sub { probability; rounds } ->
      Printf.sprintf "sub(p=%.2f,r=%d)" probability rounds
  | Fla -> "fla"
  | Bcf { probability } -> Printf.sprintf "bcf(p=%.2f)" probability
  | Ollvm { sub_probability; sub_rounds; bcf_probability } ->
      Printf.sprintf "ollvm(sp=%.2f,sr=%d,bp=%.2f)" sub_probability sub_rounds
        bcf_probability

let to_string = function
  | [] -> "id"
  | s -> String.concat ";" (List.map step_to_string s)
