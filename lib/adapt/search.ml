(** The four search strategies of {!Yali_obfuscation.Strategies}, ported
    from source-rewrite space to {!Seqspace} — random search, hill
    climbing with restarts, multi-chain MCMC, and a genetic algorithm —
    with the classifier-in-the-loop fitness of {!Fitness} instead of the
    histogram-distance proxy.

    Every strategy proposes candidates {e sequentially} on the calling
    domain and evaluates each round's batch through
    {!Yali_exec.Pool.parallel_array_map_rng}, which pre-derives one rng
    per candidate by index — so the whole search (and therefore the
    Pareto front) is bit-identical at any [--jobs]. *)

module Rng = Yali_util.Rng
module Pool = Yali_exec.Pool

type algo = Rs | Hill | Mcmc | Ga

let all = [ Rs; Hill; Mcmc; Ga ]

let algo_to_string = function
  | Rs -> "rs"
  | Hill -> "hill"
  | Mcmc -> "mcmc"
  | Ga -> "ga"

let algo_of_string = function
  | "rs" -> Some Rs
  | "hill" -> Some Hill
  | "mcmc" -> Some Mcmc
  | "ga" -> Some Ga
  | _ -> None

type outcome = {
  o_base : Fitness.eval;  (** the empty sequence (the passive evader) *)
  o_best : Fitness.eval;
  o_evals : Fitness.eval list;  (** every evaluation, in proposal order *)
}

let better (a : Fitness.eval) (b : Fitness.eval) : Fitness.eval =
  if b.Fitness.e_fitness > a.Fitness.e_fitness then b else a

(* mcmc acceptance temperature, on the fitness scale (evasion in [0,1]) *)
let temperature = 0.25

let run (algo : algo) ~(budget : int) ~(batch : int) ~(max_len : int)
    (rng : Rng.t) (eval_fn : Rng.t -> Seqspace.seq -> Fitness.eval) : outcome
    =
  let batch = max 1 batch in
  let eval_batch (seqs : Seqspace.seq array) : Fitness.eval array =
    Pool.parallel_array_map_rng rng (fun r s -> eval_fn r s) seqs
  in
  let base = (eval_batch [| [] |]).(0) in
  let best = ref base in
  let used = ref 1 in
  let batches = ref [ [| base |] ] in
  let round (seqs : Seqspace.seq array) : Fitness.eval array =
    let es = eval_batch seqs in
    Array.iter (fun e -> best := better !best e) es;
    batches := es :: !batches;
    used := !used + Array.length seqs;
    es
  in
  (match algo with
  | Rs ->
      while !used < budget do
        let k = min batch (budget - !used) in
        ignore
          (round (Array.init k (fun _ -> Seqspace.random_seq rng ~max_len)))
      done
  | Hill ->
      (* steepest-ascent over the mutation neighbourhood; a stalled climb
         restarts from the identity (rng has advanced, so the restart
         explores a different path) *)
      let cur = ref base in
      while !used < budget do
        let k = min batch (budget - !used) in
        let es =
          round
            (Array.init k (fun _ ->
                 Seqspace.mutate rng ~max_len (!cur).Fitness.e_seq))
        in
        let round_best = Array.fold_left better es.(0) es in
        if round_best.Fitness.e_fitness > (!cur).Fitness.e_fitness then
          cur := round_best
        else cur := base
      done
  | Mcmc ->
      (* [batch] independent chains advancing in lockstep: each round every
         chain proposes one mutation, the proposals are evaluated as one
         parallel batch, and Metropolis acceptance runs sequentially with
         one uniform per chain *)
      let k0 = min batch (max 1 (budget - !used)) in
      let states =
        ref (round (Array.init k0 (fun _ -> Seqspace.random_seq rng ~max_len)))
      in
      while !used < budget do
        let states' = !states in
        let k = min (Array.length states') (budget - !used) in
        let proposals =
          Array.init k (fun i ->
              Seqspace.mutate rng ~max_len states'.(i).Fitness.e_seq)
        in
        let es = round proposals in
        Array.iteri
          (fun i (e : Fitness.eval) ->
            let cur = states'.(i) in
            let u = Rng.float rng in
            let accept =
              e.e_fitness >= cur.Fitness.e_fitness
              || Float.is_finite e.e_fitness
                 && u
                    < exp ((e.e_fitness -. cur.Fitness.e_fitness) /. temperature)
            in
            if accept then states'.(i) <- e)
          es
      done
  | Ga ->
      (* tournament selection, one-point crossover, point mutation — the
         [Strategies.ga] recipe over step sequences *)
      let take n l = List.filteri (fun i _ -> i < n) l in
      let drop n l = List.filteri (fun i _ -> i >= n) l in
      let pop =
        ref (Array.init batch (fun _ -> Seqspace.random_seq rng ~max_len))
      in
      while !used < budget do
        let k = min (Array.length !pop) (budget - !used) in
        let es = round (Array.sub !pop 0 k) in
        let tournament () =
          let a = es.(Rng.int rng (Array.length es)) in
          let b = es.(Rng.int rng (Array.length es)) in
          if a.Fitness.e_fitness >= b.Fitness.e_fitness then a.Fitness.e_seq
          else b.Fitness.e_seq
        in
        let crossover a b =
          if a = [] then b
          else if b = [] then a
          else
            let ka = Rng.int rng (List.length a + 1) in
            let kb = Rng.int rng (List.length b + 1) in
            take max_len (take ka a @ drop kb b)
        in
        pop :=
          Array.init batch (fun _ ->
              let child = crossover (tournament ()) (tournament ()) in
              if Rng.bernoulli rng 0.5 then Seqspace.mutate rng ~max_len child
              else child)
      done);
  {
    o_base = base;
    o_best = !best;
    o_evals = List.concat_map Array.to_list (List.rev !batches);
  }
