(** Sequence-space search with the classifier in the loop: the rs / hill /
    mcmc / ga strategies of {!Yali_obfuscation.Strategies}, ported to
    {!Seqspace} under the cost-priced {!Fitness}.

    Proposals are drawn sequentially on the calling domain; each round's
    batch is evaluated through {!Yali_exec.Pool.parallel_array_map_rng}
    (per-candidate rngs pre-derived by index), so the search result is
    bit-identical at any [--jobs]. *)

type algo = Rs | Hill | Mcmc | Ga

val all : algo list
val algo_to_string : algo -> string
val algo_of_string : string -> algo option

type outcome = {
  o_base : Fitness.eval;  (** the empty sequence (the passive evader) *)
  o_best : Fitness.eval;
  o_evals : Fitness.eval list;  (** every evaluation, in proposal order *)
}

(** Run the strategy until [budget] evaluations are spent (the empty
    sequence is always evaluated first and counts).  [batch] sets the
    parallel evaluation width — and the chain count for [Mcmc], the
    population for [Ga]. *)
val run :
  algo ->
  budget:int ->
  batch:int ->
  max_len:int ->
  Yali_util.Rng.t ->
  (Yali_util.Rng.t -> Seqspace.seq -> Fitness.eval) ->
  outcome
