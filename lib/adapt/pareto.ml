(** The evasion-vs-cost Pareto front over every candidate a search
    evaluated.

    A point dominates another when it evades at least as much for at most
    the cost (strictly better in one coordinate).  The front is reported
    cost-ascending; by construction evasion is then strictly ascending too,
    which is the well-formedness the [adapt/search-determinism] oracle and
    the bench gate check. *)

type point = {
  p_cost : float;  (** mean cost multiplier (1.0 = the baseline) *)
  p_evasion : float;  (** evasion rate in [0, 1] *)
  p_fitness : float;
  p_seq : string;  (** {!Seqspace.to_string} of the pass sequence *)
}

let point_of_eval (e : Fitness.eval) : point =
  {
    p_cost = e.Fitness.e_cost;
    p_evasion = e.Fitness.e_evasion;
    p_fitness = e.Fitness.e_fitness;
    p_seq = Seqspace.to_string e.Fitness.e_seq;
  }

let front (evals : Fitness.eval list) : point list =
  let pts =
    List.filter_map
      (fun (e : Fitness.eval) ->
        if Float.is_finite e.e_cost then Some (point_of_eval e) else None)
      evals
  in
  (* cost ascending, then evasion descending, then the printed sequence as
     a deterministic tiebreak independent of evaluation order *)
  let sorted =
    List.sort
      (fun a b ->
        match compare a.p_cost b.p_cost with
        | 0 -> (
            match compare b.p_evasion a.p_evasion with
            | 0 -> compare a.p_seq b.p_seq
            | c -> c)
        | c -> c)
      pts
  in
  let rec keep best acc = function
    | [] -> List.rev acc
    | p :: rest ->
        if p.p_evasion > best then keep p.p_evasion (p :: acc) rest
        else keep best acc rest
  in
  keep neg_infinity [] sorted

let well_formed (f : point list) : bool =
  let rec go = function
    | a :: (b :: _ as rest) ->
        a.p_cost < b.p_cost && a.p_evasion < b.p_evasion && go rest
    | _ -> true
  in
  List.for_all
    (fun p ->
      Float.is_finite p.p_cost && p.p_cost > 0.0 && p.p_evasion >= 0.0
      && p.p_evasion <= 1.0)
    f
  && go f
