(** Cost-priced, classifier-in-the-loop fitness: a candidate sequence is
    scored by the evasion rate it achieves over a fixed challenge set,
    tie-broken by the classifier's margin gap, and charged [lambda] per
    unit of abstract-cost multiplier above 1 (DESIGN.md §14). *)

(** A held-out program with its label, seeded input vectors, baseline
    observations and baseline abstract cost. *)
type challenge = {
  ch_module : Yali_ir.Irmod.t;
  ch_label : int;
  ch_inputs : int64 list array;
  ch_base : (int64 list * float list * string) array;
  ch_base_cost : float;
}

(** Tv-style seeded vectors: vector [i] is derived from [split_ix rng i]. *)
val inputs_for :
  Yali_util.Rng.t -> vectors:int -> len:int -> int64 list array

(** Prepare a challenge: run the baseline on its seeded vectors, record
    observations and mean cost.  [Error] when the baseline itself traps or
    runs out of fuel. *)
val challenge :
  ?fuel:int ->
  ?vectors:int ->
  Yali_util.Rng.t ->
  label:int ->
  Yali_ir.Irmod.t ->
  (challenge, string) result

type eval = {
  e_seq : Seqspace.seq;
  e_evasion : float;  (** fraction of challenges misclassified *)
  e_cost : float;  (** mean cost multiplier vs the baselines *)
  e_gap : float;  (** mean normalised margin gap (best rival − true) *)
  e_fitness : float;
}

(** The sentinel for behaviour-breaking candidates: [e_fitness] is
    [neg_infinity], [e_cost] is [infinity] (never on a front). *)
val rejected : Seqspace.seq -> eval

(** Score one sequence: challenge [i] is transformed under
    [split_ix rng i], re-run against its baseline observations (any
    divergence rejects the whole candidate), cost-priced against the
    baseline cost, and pushed through [oracle] for per-class scores.
    Pure in (rng state, seq) — safe to fan out over
    {!Yali_exec.Pool} with pre-derived streams. *)
val evaluate :
  oracle:(Yali_ir.Irmod.t -> float array) ->
  lambda:float ->
  fuel:int ->
  challenge array ->
  Yali_util.Rng.t ->
  Seqspace.seq ->
  eval
