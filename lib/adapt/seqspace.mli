(** The adaptive evader's gene space: sequences of parameterised IR-level
    obfuscation steps — the O-LLVM passes and their knobs, drawn from small
    discrete grids (DESIGN.md §14). *)

type step =
  | Sub of { probability : float; rounds : int }
  | Fla
  | Bcf of { probability : float }
  | Ollvm of {
      sub_probability : float;
      sub_rounds : int;
      bcf_probability : float;
    }

(** A candidate evader: the steps applied left to right.  [[]] is the
    identity (the passive evader). *)
type seq = step list

(** One step with knobs drawn uniformly from the grids. *)
val random_step : Yali_util.Rng.t -> step

(** A sequence of random length in [1, max_len]. *)
val random_seq : Yali_util.Rng.t -> max_len:int -> seq

(** One neighbourhood move: insert, drop, replace, or retune a knob of one
    step; never grows past [max_len]. *)
val mutate : Yali_util.Rng.t -> max_len:int -> seq -> seq

(** Apply the steps left to right, step [i] under [split_ix rng i] — a pure
    function of (rng state, seq, module), independent of evaluation order.
    A step that raises or whose output fails {!Yali_ir.Verify} is skipped
    (the search stays robust, and the result always verifies); the passes
    themselves are semantics-preserving. *)
val apply : Yali_util.Rng.t -> seq -> Yali_ir.Irmod.t -> Yali_ir.Irmod.t

val step_to_string : step -> string

(** ["sub(p=0.50,r=1);fla;bcf(p=0.25)"]; [ "id" ] for the empty sequence. *)
val to_string : seq -> string
