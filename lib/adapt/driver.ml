(** The adaptive-evader driver: dataset → trained snapshots → per-model
    sequence search → cost-priced Pareto fronts.

    This closes the game loop of the paper's Definition 2.4: instead of a
    fixed evader from Figure 4's registry, the evader {e adapts} — it
    queries the trained classifier's per-class scores while searching the
    obfuscation-sequence space, and reports the whole evasion-vs-cost
    trade-off it found ({!Pareto}).

    Split into {!prepare} (dataset, baselines, snapshots — everything both
    the in-process and the via-serve runs must share) and
    {!search_fronts} (the searches themselves, oracles injectable per
    model kind), so [--via-serve] can publish the prepared snapshots to a
    registry, point daemons at them, and provably produce the identical
    report. *)

module Rng = Yali_util.Rng
module Poj = Yali_dataset.Poj
module Embedding = Yali_embeddings.Embedding
module Model = Yali_ml.Model
module Lower = Yali_minic.Lower

type config = {
  a_seed : int;
  a_classes : int;
  a_train_per_class : int;
  a_challenges_per_class : int;
  a_models : string list;
  a_algo : Search.algo;
  a_budget : int;
  a_batch : int;
  a_max_len : int;
  a_lambda : float;
  a_vectors : int;
  a_fuel : int;
}

let default =
  {
    a_seed = 42;
    a_classes = 4;
    a_train_per_class = 10;
    a_challenges_per_class = 2;
    a_models = [ "rf"; "lr" ];
    a_algo = Search.Hill;
    a_budget = 48;
    a_batch = 8;
    a_max_len = 4;
    a_lambda = 0.05;
    a_vectors = 2;
    a_fuel = 2_000_000;
  }

(* the paper's default flat embedding; every model kind trains over it *)
let embedding = Embedding.histogram

type prepared = {
  p_snapshots : (string * Model.snapshot) list;
  p_challenges : Fitness.challenge array;
  p_n_train : int;
}

let prepare ?(log = ignore) (cfg : config) : prepared =
  let rng = Rng.make cfg.a_seed in
  let data_rng = Rng.split_ix rng 0 in
  let train_rng = Rng.split_ix rng 1 in
  let chal_rng = Rng.split_ix rng 2 in
  let split =
    Poj.make data_rng ~n_classes:cfg.a_classes
      ~train_per_class:cfg.a_train_per_class
      ~test_per_class:cfg.a_challenges_per_class
  in
  (* Game 1's unaware classifier: trains on plain -O0 lowerings *)
  let train_mods =
    Array.map
      (fun (l : Poj.labelled) -> (Lower.lower_program l.src, l.label))
      split.train
  in
  let x = Yali_games.Arena.embed_fmat embedding train_mods in
  let ys = Array.map snd train_mods in
  let snapshots =
    List.mapi
      (fun ix kind ->
        match
          Model.train_snapshot kind
            (Rng.split_ix train_rng ix)
            ~n_classes:cfg.a_classes x ys
        with
        | Some s -> (kind, s)
        | None -> failwith ("adapt: no snapshot form for model " ^ kind))
      cfg.a_models
  in
  let challenges =
    split.test |> Array.to_list
    |> List.mapi (fun i (l : Poj.labelled) ->
           let m = Lower.lower_program l.src in
           match
             Fitness.challenge ~fuel:cfg.a_fuel ~vectors:cfg.a_vectors
               (Rng.split_ix chal_rng i) ~label:l.label m
           with
           | Ok c -> Some c
           | Error msg ->
               log (Printf.sprintf "adapt: dropping challenge %d: %s" i msg);
               None)
    |> List.filter_map Fun.id |> Array.of_list
  in
  log
    (Printf.sprintf "adapt: %d training rows, %d challenges, models %s"
       (Array.length split.train)
       (Array.length challenges)
       (String.concat "," cfg.a_models));
  {
    p_snapshots = snapshots;
    p_challenges = challenges;
    p_n_train = Array.length split.train;
  }

let oracle_of_snapshot (s : Model.snapshot) : Yali_ir.Irmod.t -> float array =
  let margins = Model.margins s in
  (* the uncached pure embedding: safe from any pool worker *)
  fun m -> margins (Embedding.to_flat embedding m)

type model_front = {
  mf_kind : string;
  mf_base : Fitness.eval;
  mf_best : Fitness.eval;
  mf_front : Pareto.point list;
  mf_evals : int;
}

type report = { r_fronts : model_front list; r_challenges : int }

let search_fronts ?(log = ignore) ?oracle_for (cfg : config)
    (prep : prepared) : report =
  let search_rng = Rng.split_ix (Rng.make cfg.a_seed) 3 in
  let fronts =
    List.mapi
      (fun ix (kind, snap) ->
        let oracle =
          match Option.bind oracle_for (fun f -> f kind) with
          | Some o -> o
          | None -> oracle_of_snapshot snap
        in
        let eval_fn r s =
          Fitness.evaluate ~oracle ~lambda:cfg.a_lambda ~fuel:cfg.a_fuel
            prep.p_challenges r s
        in
        let out =
          Search.run cfg.a_algo ~budget:cfg.a_budget ~batch:cfg.a_batch
            ~max_len:cfg.a_max_len
            (Rng.split_ix search_rng ix)
            eval_fn
        in
        let front = Pareto.front out.o_evals in
        log
          (Printf.sprintf
             "adapt[%s]: %d evals, base evasion %.2f, best %.2f @ %.2fx \
              cost, front %d points"
             kind (List.length out.o_evals) out.o_base.Fitness.e_evasion
             out.o_best.Fitness.e_evasion out.o_best.Fitness.e_cost
             (List.length front));
        {
          mf_kind = kind;
          mf_base = out.o_base;
          mf_best = out.o_best;
          mf_front = front;
          mf_evals = List.length out.o_evals;
        })
      prep.p_snapshots
  in
  { r_fronts = fronts; r_challenges = Array.length prep.p_challenges }

let run ?(log = ignore) ?oracle_for (cfg : config) : report =
  search_fronts ~log ?oracle_for cfg (prepare ~log cfg)

(* -- report rendering ------------------------------------------------------- *)

let json_front (f : model_front) : string =
  let b = Buffer.create 512 in
  Printf.bprintf b
    "{\"base_evasion\": %.4f, \"best_evasion\": %.4f, \"best_cost\": %.4f, \
     \"best_fitness\": %.4f, \"best_seq\": %S, \"evals\": %d, \
     \"front_points\": %d, \"front\": ["
    f.mf_base.Fitness.e_evasion f.mf_best.Fitness.e_evasion
    f.mf_best.Fitness.e_cost f.mf_best.Fitness.e_fitness
    (Seqspace.to_string f.mf_best.Fitness.e_seq)
    f.mf_evals
    (List.length f.mf_front);
  List.iteri
    (fun i (p : Pareto.point) ->
      Printf.bprintf b
        "%s{\"cost_multiplier\": %.4f, \"evasion_rate\": %.4f, \"seq\": %S}"
        (if i = 0 then "" else ", ")
        p.p_cost p.p_evasion p.p_seq)
    f.mf_front;
  Buffer.add_string b "]}";
  Buffer.contents b

let report_to_json (cfg : config) (r : report) : string =
  let b = Buffer.create 2048 in
  Printf.bprintf b
    "{\n\
    \  \"seed\": %d,\n\
    \  \"algo\": %S,\n\
    \  \"budget\": %d,\n\
    \  \"max_len\": %d,\n\
    \  \"lambda\": %.4f,\n\
    \  \"classes\": %d,\n\
    \  \"challenges\": %d,\n\
    \  \"models\": {\n"
    cfg.a_seed
    (Search.algo_to_string cfg.a_algo)
    cfg.a_budget cfg.a_max_len cfg.a_lambda cfg.a_classes r.r_challenges;
  List.iteri
    (fun i f ->
      Printf.bprintf b "    %S: %s%s\n" f.mf_kind (json_front f)
        (if i = List.length r.r_fronts - 1 then "" else ","))
    r.r_fronts;
  Buffer.add_string b "  }\n}\n";
  Buffer.contents b

(** Two reports are bit-identical — the via-serve acceptance check. *)
let reports_identical (a : report) (b : report) : bool =
  Stdlib.compare a b = 0
