(** The evasion-vs-cost Pareto front over every evaluated candidate. *)

type point = {
  p_cost : float;  (** mean cost multiplier (1.0 = the baseline) *)
  p_evasion : float;  (** evasion rate in [0, 1] *)
  p_fitness : float;
  p_seq : string;  (** {!Seqspace.to_string} of the pass sequence *)
}

val point_of_eval : Fitness.eval -> point

(** The non-dominated subset, cost-ascending (rejected candidates with
    infinite cost never appear).  Deterministic in the multiset of evals:
    ties are broken by the printed sequence, not list order. *)
val front : Fitness.eval list -> point list

(** Costs strictly ascending, evasions strictly ascending, every point
    finite with evasion in [0, 1] — i.e. no dominated or duplicate
    points.  Holds for every {!front} result; checked by the
    [adapt/search-determinism] oracle. *)
val well_formed : point list -> bool
