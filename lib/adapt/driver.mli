(** The adaptive-evader driver (DESIGN.md §14): dataset → trained
    snapshots → per-model sequence search → cost-priced Pareto fronts,
    deterministic in the seed and bit-identical at any [--jobs]. *)

type config = {
  a_seed : int;
  a_classes : int;
  a_train_per_class : int;
  a_challenges_per_class : int;
  a_models : string list;  (** snapshot kinds: rf svm knn lr mlp *)
  a_algo : Search.algo;
  a_budget : int;  (** total fitness evaluations per model *)
  a_batch : int;  (** parallel evaluation width / chain count *)
  a_max_len : int;
  a_lambda : float;  (** cost price per unit multiplier above 1 *)
  a_vectors : int;  (** seeded input vectors per challenge *)
  a_fuel : int;
}

val default : config

(** The embedding every searched model trains over (histogram). *)
val embedding : Yali_embeddings.Embedding.t

(** Everything the in-process and via-serve runs must share: the trained
    snapshots (one per kind, in [a_models] order) and the prepared
    challenges. *)
type prepared = {
  p_snapshots : (string * Yali_ml.Model.snapshot) list;
  p_challenges : Fitness.challenge array;
  p_n_train : int;
}

val prepare : ?log:(string -> unit) -> config -> prepared

(** The in-process margins oracle of a snapshot (embed, then
    {!Yali_ml.Model.margins}); pure, safe from pool workers. *)
val oracle_of_snapshot :
  Yali_ml.Model.snapshot -> Yali_ir.Irmod.t -> float array

type model_front = {
  mf_kind : string;
  mf_base : Fitness.eval;  (** the passive evader (empty sequence) *)
  mf_best : Fitness.eval;
  mf_front : Pareto.point list;
  mf_evals : int;
}

type report = { r_fronts : model_front list; r_challenges : int }

(** Search every prepared model.  [oracle_for] may substitute a remote
    ({!Remote}) oracle per kind — [None] falls back to the in-process
    snapshot; because margins are bit-exact either way, the report is
    identical. *)
val search_fronts :
  ?log:(string -> unit) ->
  ?oracle_for:(string -> (Yali_ir.Irmod.t -> float array) option) ->
  config ->
  prepared ->
  report

(** {!prepare} then {!search_fronts}. *)
val run :
  ?log:(string -> unit) ->
  ?oracle_for:(string -> (Yali_ir.Irmod.t -> float array) option) ->
  config ->
  report

(** The report as JSON (the [BENCH_adapt.json] / [--out] payload). *)
val report_to_json : config -> report -> string

(** Structural identity of two reports — the via-serve acceptance check. *)
val reports_identical : report -> report -> bool
