(** The via-serve margins oracle: route every classifier query of the
    search through a running {!Yali_serve.Server} daemon instead of the
    in-process snapshot.

    The daemon decodes the {!Yali_serve.Codec} blob (structural identity),
    embeds with the same deterministic embedding, and answers
    {!Yali_ml.Model.margins} with f64-exact scores — so a search driven
    through this oracle is bit-identical to the in-process one (the
    [adapt] bench asserts exactly that).  One blocking connection is
    shared under a mutex: pool workers serialise their queries, which
    keeps the client trivially correct; the daemon's micro-batching is
    irrelevant to the scores by its own contract. *)

module Client = Yali_serve.Client
module Wire = Yali_serve.Wire

type t = { client : Client.t; lock : Mutex.t }

let connect ~socket = { client = Client.connect socket; lock = Mutex.create () }

let close t = Client.close t.client

let oracle (t : t) (m : Yali_ir.Irmod.t) : float array =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      let rec go tries =
        match Client.margins t.client m with
        | Wire.Margins_r { scores; _ } -> scores
        | Wire.Busy when tries > 0 ->
            Unix.sleepf 0.002;
            go (tries - 1)
        | Wire.Busy -> failwith "serve margins: daemon stayed busy"
        | Wire.Error msg -> failwith ("serve margins: " ^ msg)
        | _ -> failwith "serve margins: unexpected reply"
      in
      go 100)
