(** An INST2VEC-style statement embedding (Ben-Nun et al., NeurIPS'18) —
    provided as an *extension*: the paper tried to include inst2vec in its
    Figure 5 comparison but could not ("the artifact runs out of memory even
    for small training sets", §3.1 fn. 1).

    The original learns skip-gram vectors for full IR statements over a
    context flow graph.  This re-implementation keeps the two ideas that
    distinguish inst2vec from a bag of opcodes — (1) the token is the whole
    *statement shape* (opcode + type + operand kinds), not the opcode alone,
    and (2) each statement's vector is smoothed with its control-flow
    context — while deriving the seed vectors deterministically from hashes,
    so memory stays bounded by construction.

    Not part of {!Embedding.all} (the paper's Figure 5 has exactly nine
    rows); exposed as {!embedding} for extension experiments. *)

open Yali_ir
module Rng = Yali_util.Rng

let dim = 64

(** Weight of the neighbouring statements in the context window. *)
let w_context = 0.3

(* domain-local memo: embedding loops run on pool workers, and an
   unsynchronised shared table would race (bindings are pure, so each
   domain rebuilds the same ones) *)
let seed_vec_key : (string, float array) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 1024)

let vec_of_token (tok : string) : float array =
  let seed_vec = Domain.DLS.get seed_vec_key in
  match Hashtbl.find_opt seed_vec tok with
  | Some v -> v
  | None ->
      let rng = Rng.make (Hashtbl.hash tok * 40503) in
      let v =
        Array.init dim (fun _ -> Rng.gaussian rng /. sqrt (float_of_int dim))
      in
      Hashtbl.replace seed_vec tok v;
      v

(* The statement "shape": opcode, result type, and operand kinds — the
   statement-level identity inst2vec builds its vocabulary from. *)
let token_of_instr (i : Instr.t) : string =
  let operand_kind (v : Value.t) =
    match v with
    | Value.Var _ -> "v"
    | Value.IConst _ -> "c"
    | Value.FConst _ -> "f"
    | Value.Global _ -> "g"
    | Value.Undef _ -> "u"
  in
  Printf.sprintf "%s:%s:%s"
    (Opcode.to_string (Instr.opcode i))
    (Types.to_string i.ty)
    (String.concat "" (List.map operand_kind (Instr.operands i)))

let token_of_terminator (t : Instr.terminator) : string =
  Printf.sprintf "%s:%d"
    (Opcode.to_string (Instr.opcode_of_terminator t))
    (List.length (Instr.successors t))

let axpy ~(a : float) (x : float array) (y : float array) : unit =
  Array.iteri (fun k xk -> y.(k) <- y.(k) +. (a *. xk)) x

let of_func (f : Func.t) : float array =
  let out = Array.make dim 0.0 in
  List.iter
    (fun (b : Block.t) ->
      (* statements of the block in order, terminator included *)
      let tokens =
        List.map token_of_instr b.instrs @ [ token_of_terminator b.term ]
      in
      let arr = Array.of_list tokens in
      Array.iteri
        (fun k tok ->
          axpy ~a:1.0 (vec_of_token tok) out;
          (* context smoothing within the block: previous and next *)
          if k > 0 then axpy ~a:w_context (vec_of_token arr.(k - 1)) out;
          if k < Array.length arr - 1 then
            axpy ~a:w_context (vec_of_token arr.(k + 1)) out)
        arr)
    f.blocks;
  out

let of_module (m : Irmod.t) : float array =
  let out = Array.make dim 0.0 in
  List.iter (fun f -> axpy ~a:1.0 (of_func f) out) m.funcs;
  out

(** The embedding registry entry (extension; not among the paper's nine). *)
let embedding : Embedding.t =
  { Embedding.name = "inst2vec"; kind = Embedding.Flat of_module }
