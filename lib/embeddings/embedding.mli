(** The registry of program embeddings evaluated by the paper (Figure 3):
    three flat vector embeddings and six graph-based ones. *)

type kind =
  | Flat of (Yali_ir.Irmod.t -> float array)
  | Graphed of (Yali_ir.Irmod.t -> Graph.t)

type t = { name : string; kind : kind }

val histogram : t
val milepost : t
val ir2vec : t
val cfg : t
val cfg_compact : t
val cdfg : t
val cdfg_compact : t
val cdfg_plus : t
val programl : t

(** All nine, in the order of the paper's Figure 5. *)
val all : t list

val find : string -> t option
val is_flat : t -> bool

(** A flat vector for any embedding (graphs are summarised through
    {!Graph.to_flat}). *)
val to_flat : t -> Yali_ir.Irmod.t -> float array

(** A graph for any embedding (flat vectors become a single-node graph). *)
val to_graph : t -> Yali_ir.Irmod.t -> Graph.t

(** Structural digest of a module: equal exactly for structurally equal
    modules, so it content-addresses anything computed purely from one. *)
val digest : Yali_ir.Irmod.t -> string

(** {!to_flat} through a process-wide content-addressed LRU cache keyed on
    (embedding name, module digest) — structurally repeated modules across
    game rounds embed once.  The returned vector is shared; treat it as
    immutable (everything in the arena already does). *)
val to_flat_cached : t -> Yali_ir.Irmod.t -> float array

(** {!to_graph} through the graph-side cache; same contract. *)
val to_graph_cached : t -> Yali_ir.Irmod.t -> Graph.t

val flat_cache_stats : unit -> Yali_exec.Cache.stats
val graph_cache_stats : unit -> Yali_exec.Cache.stats
