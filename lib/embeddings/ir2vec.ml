(** An IR2Vec-style distributed embedding (VenkataKeerthy et al.).

    The original learns seed embeddings for opcodes, types and argument
    kinds with TransE, then composes instruction, function and program
    vectors by weighted summation along use-def chains.  This
    re-implementation keeps the compositional scheme — [w_o * opcode + w_t *
    type + w_a * args], accumulated over the program — but derives the seed
    vectors deterministically from hashes, which preserves the property the
    experiments need: programs with similar instruction mixes and similar
    data-flow shapes land close together in the embedding space. *)

open Yali_ir
module Rng = Yali_util.Rng

let dim = 64

let w_opcode = 1.0
let w_type = 0.5
let w_arg = 0.2

(* Deterministic seed vector for a token, from a splitmix stream keyed on the
   token's hash.  The memo table is domain-local: embedding loops run on
   pool workers, and an unsynchronised shared table would race.  Each
   domain rebuilds the same pure token -> vector bindings. *)
let seed_vec_key : (string, float array) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 256)

let vec_of_token (tok : string) : float array =
  let seed_vec = Domain.DLS.get seed_vec_key in
  match Hashtbl.find_opt seed_vec tok with
  | Some v -> v
  | None ->
      let rng = Rng.make (Hashtbl.hash tok * 2654435761) in
      let v = Array.init dim (fun _ -> Rng.gaussian rng /. sqrt (float_of_int dim)) in
      Hashtbl.replace seed_vec tok v;
      v

let axpy ~(a : float) (x : float array) (y : float array) : unit =
  Array.iteri (fun i xi -> y.(i) <- y.(i) +. (a *. xi)) x

let arg_token (v : Value.t) : string =
  match v with
  | Value.Var _ -> "arg:var"
  | Value.IConst _ -> "arg:const"
  | Value.FConst _ -> "arg:fconst"
  | Value.Global _ -> "arg:global"
  | Value.Undef _ -> "arg:undef"

let instr_vec (i : Instr.t) : float array =
  let out = Array.make dim 0.0 in
  axpy ~a:w_opcode (vec_of_token ("op:" ^ Opcode.to_string (Instr.opcode i))) out;
  axpy ~a:w_type (vec_of_token ("ty:" ^ Types.to_string i.ty)) out;
  List.iter (fun v -> axpy ~a:w_arg (vec_of_token (arg_token v)) out) (Instr.operands i);
  out

let term_vec (t : Instr.terminator) : float array =
  let out = Array.make dim 0.0 in
  axpy ~a:w_opcode
    (vec_of_token ("op:" ^ Opcode.to_string (Instr.opcode_of_terminator t)))
    out;
  List.iter
    (fun v -> axpy ~a:w_arg (vec_of_token (arg_token v)) out)
    (Instr.terminator_operands t);
  out

let of_func (f : Func.t) : float array =
  let out = Array.make dim 0.0 in
  List.iter
    (fun (b : Block.t) ->
      List.iter (fun i -> axpy ~a:1.0 (instr_vec i) out) b.instrs;
      axpy ~a:1.0 (term_vec b.term) out)
    f.blocks;
  out

let of_module (m : Irmod.t) : float array =
  let out = Array.make dim 0.0 in
  List.iter (fun f -> axpy ~a:1.0 (of_func f) out) m.funcs;
  out
