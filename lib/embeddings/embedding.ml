(** The registry of program embeddings evaluated by the paper (Figure 3):
    three flat vector embeddings and six graph-based ones, all computed from
    the miniature IR. *)

open Yali_ir

type kind =
  | Flat of (Irmod.t -> float array)
  | Graphed of (Irmod.t -> Graph.t)

type t = { name : string; kind : kind }

let histogram = { name = "histogram"; kind = Flat Histogram.of_module }
let milepost = { name = "milepost"; kind = Flat Milepost.of_module }
let ir2vec = { name = "ir2vec"; kind = Flat Ir2vec.of_module }
let cfg = { name = "cfg"; kind = Graphed Graphs.cfg }
let cfg_compact = { name = "cfg_compact"; kind = Graphed Graphs.cfg_compact }
let cdfg = { name = "cdfg"; kind = Graphed Graphs.cdfg }
let cdfg_compact = { name = "cdfg_compact"; kind = Graphed Graphs.cdfg_compact }
let cdfg_plus = { name = "cdfg_plus"; kind = Graphed Graphs.cdfg_plus }
let programl = { name = "programl"; kind = Graphed Graphs.programl }

(** All nine embeddings, in the order of the paper's Figure 5. *)
let all : t list =
  [
    cfg; cfg_compact; cdfg; cdfg_compact; cdfg_plus; programl; ir2vec;
    milepost; histogram;
  ]

let find name = List.find_opt (fun e -> e.name = name) all

let is_flat (e : t) = match e.kind with Flat _ -> true | Graphed _ -> false

(** Compute a flat vector for any embedding: graph embeddings are summarised
    through {!Graph.to_flat}. *)
let to_flat (e : t) (m : Irmod.t) : float array =
  match e.kind with Flat f -> f m | Graphed g -> Graph.to_flat (g m)

(** Compute a graph for graph embeddings; flat embeddings yield a single-node
    graph carrying the vector (lets graph models consume them uniformly). *)
let to_graph (e : t) (m : Irmod.t) : Graph.t =
  match e.kind with
  | Graphed g -> g m
  | Flat f ->
      let v = f m in
      { Graph.node_feats = [| v |]; edges = []; feat_dim = Array.length v }

(* ------------------------------------------------------------------ *)
(* content-addressed embedding caches                                  *)
(* ------------------------------------------------------------------ *)

(** Structural digest of a module (MD5 over a sharing-free marshalling):
    two modules digest equally exactly when they are structurally equal,
    so a digest plus an embedding name content-addresses the embedding
    of any (source program, transform pipeline) pair. *)
let digest (m : Irmod.t) : string =
  Digest.string (Marshal.to_string m [ Marshal.No_sharing ])

(* game rounds re-embed structurally repeated modules constantly (growing
   training suites, shared baselines, re-generated corpora); vectors are
   never mutated downstream, so cached arrays can be shared *)
let flat_cache : float array Yali_exec.Cache.t =
  Yali_exec.Cache.create ~name:"embed.flat" ~capacity:16384 ()

let graph_cache : Graph.t Yali_exec.Cache.t =
  Yali_exec.Cache.create ~name:"embed.graph" ~capacity:4096 ()

(** {!to_flat} through the content-addressed cache. *)
let to_flat_cached (e : t) (m : Irmod.t) : float array =
  Yali_exec.Cache.find_or_compute flat_cache
    ~key:(e.name ^ "|" ^ digest m)
    (fun () -> to_flat e m)

(** {!to_graph} through the content-addressed cache. *)
let to_graph_cached (e : t) (m : Irmod.t) : Graph.t =
  Yali_exec.Cache.find_or_compute graph_cache
    ~key:(e.name ^ "|" ^ digest m)
    (fun () -> to_graph e m)

let flat_cache_stats () = Yali_exec.Cache.stats flat_cache
let graph_cache_stats () = Yali_exec.Cache.stats graph_cache
