(** Constant folding: evaluate instructions whose operands are literals and
    substitute the result into all uses. *)

open Yali_ir

let fold_instr (i : Instr.t) : Value.t option =
  match i.kind with
  | Instr.Ibin (op, Value.IConst (_, a), Value.IConst (_, b)) -> (
      try Some (Value.IConst (i.ty, Interp.eval_ibin i.ty op a b))
      with Interp.Trap _ -> None)
  | Instr.Fbin (op, Value.FConst a, Value.FConst b) ->
      Some (Value.FConst (Interp.eval_fbin op a b))
  | Instr.Fneg (Value.FConst a) -> Some (Value.FConst (-.a))
  | Instr.Icmp (p, Value.IConst (_, a), Value.IConst (_, b)) ->
      Some (Value.i1 (Interp.eval_icmp p a b))
  | Instr.Fcmp (p, Value.FConst a, Value.FConst b) ->
      Some (Value.i1 (Interp.eval_fcmp p a b))
  | Instr.Select (Value.IConst (_, c), a, b) ->
      Some (if not (Int64.equal c 0L) then a else b)
  | Instr.Cast (c, (Value.IConst _ | Value.FConst _)) -> (
      let v =
        match i.kind with
        | Instr.Cast (_, v) -> v
        | _ -> assert false
      in
      let rv =
        match v with
        | Value.IConst (t, n) -> Interp.RInt (Interp.normalize t n)
        | Value.FConst f -> Interp.RFloat f
        | _ -> assert false
      in
      match Interp.eval_cast c i.ty rv with
      | Interp.RInt n -> Some (Value.IConst (i.ty, n))
      | Interp.RFloat f -> Some (Value.FConst f)
      | _ -> None)
  | Instr.Freeze ((Value.IConst _ | Value.FConst _) as v) -> Some v
  | Instr.Phi ((v, _) :: rest)
    when List.for_all (fun (v', _) -> Value.equal v v') rest
         && not (Value.equal v (Value.Var i.id)) ->
      (* all-same phi (self-references would make the rewrite cyclic) *)
      Some v
  | _ -> None

let run_func (f : Func.t) : Func.t =
  let changed = ref true in
  let f = ref f in
  while !changed do
    changed := false;
    let repl : (int, Value.t) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (fun (b : Block.t) ->
        List.iter
          (fun (i : Instr.t) ->
            if Instr.defines i then
              match fold_instr i with
              | Some v ->
                  Hashtbl.replace repl i.id v;
                  changed := true
              | None -> ())
          b.instrs)
      !f.blocks;
    if !changed then begin
      (* a replacement can itself be a replaced variable (an all-same phi
         of an instruction folded in the same round, a select whose chosen
         arm folded, ...): chase the chain to a live value, or every use
         of the intermediate would dangle once its definition is dropped *)
      let resolve v =
        let rec go seen v =
          match v with
          | Value.Var id when not (List.mem id seen) -> (
              match Hashtbl.find_opt repl id with
              | Some v' -> go (id :: seen) v'
              | None -> v)
          | _ -> v
        in
        go [] v
      in
      f :=
        Func.map_blocks
          (fun b ->
            {
              b with
              instrs =
                List.filter_map
                  (fun (i : Instr.t) ->
                    if Hashtbl.mem repl i.id then None
                    else Some (Instr.map_operands resolve i))
                  b.instrs;
              term = Instr.map_terminator_operands resolve b.term;
            })
          !f
    end
  done;
  !f

let run : Irmod.t -> Irmod.t = Irmod.map_funcs run_func
