(** The request/response protocol spoken over the daemon's Unix socket
    (DESIGN.md §11).

    Every message travels in a {e frame}: a u32 little-endian byte length
    followed by that many payload bytes.  Payloads are {!Yali_util.Bin}
    encodings — a u8 opcode/status byte, then opcode-specific fields.
    Malformed payloads raise {!Yali_util.Bin.Corrupt}; the server answers
    them with {!Error} rather than dying. *)

(** How a {!Classify} payload carries the program. *)
type payload_fmt =
  | Binary  (** a {!Codec} blob — the fast path, parse nothing *)
  | Minic  (** MiniC source, front-end compiled server-side *)
  | Textual  (** printed IR, re-parsed server-side *)

type request =
  | Classify of { fmt : payload_fmt; blob : string }
  | Ping
  | Stats  (** ask for the telemetry JSON of {!Server} *)
  | Shutdown
  | Margins of { fmt : payload_fmt; blob : string }
      (** like {!Classify} but asks for the full per-class score vector
          ({!Yali_ml.Model.margins}) — the adaptive evaders' oracle *)

type response =
  | Class of {
      cls : int;  (** predicted class *)
      queue_us : int;  (** time from arrival to batch dispatch *)
      batch : int;  (** size of the micro-batch that served it *)
    }
  | Error of string
  | Busy  (** bounded queue full — explicit backpressure, retry later *)
  | Pong
  | Stats_json of string
  | Bye  (** acknowledges {!Shutdown}; the daemon exits after sending *)
  | Margins_r of {
      scores : float array;
          (** per-class scores, f64 bit-exact over the wire *)
      queue_us : int;
      batch : int;
    }

val encode_request : request -> string

(** @raise Yali_util.Bin.Corrupt on malformed input *)
val decode_request : string -> request

val encode_response : response -> string

(** @raise Yali_util.Bin.Corrupt on malformed input *)
val decode_response : string -> response

(** {1 Framing} *)

(** Refused frame length (64 MiB) — oversized headers raise
    {!Yali_util.Bin.Corrupt} instead of allocating. *)
val max_frame : int

(** [write_frame fd payload] writes the length prefix and payload,
    retrying on [EINTR] and short writes. *)
val write_frame : Unix.file_descr -> string -> unit

(** Blocking read of one complete frame; [None] on orderly EOF at a
    frame boundary.  EOF mid-frame raises {!Yali_util.Bin.Corrupt}. *)
val read_frame : Unix.file_descr -> string option

(** Incremental frame extraction for the server's [select] loop: feed
    whatever [read] returned, get back every frame completed so far. *)
module Dechunk : sig
  type t

  val create : unit -> t

  (** @raise Yali_util.Bin.Corrupt when a header exceeds {!max_frame} *)
  val feed : t -> bytes -> int -> string list
end
