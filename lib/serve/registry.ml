module Bin = Yali_util.Bin
module Rng = Yali_util.Rng
module Model = Yali_ml.Model

type meta = {
  kind : string;
  version : int;
  embedding : string;
  n_classes : int;
  dim : int;
  n_train : int;
  seed : int;
  source : string;
}

type entry = { meta : meta; snapshot : Model.snapshot }

let magic = "YREG"

(* v2 added the [source] provenance string (corpus spec or inline recipe). *)
let format_version = 2

let encode_entry { meta; snapshot } =
  let b = Buffer.create 1024 in
  Buffer.add_string b magic;
  Bin.w_u16 b format_version;
  Bin.w_str b meta.kind;
  Bin.w_u32 b meta.version;
  Bin.w_str b meta.embedding;
  Bin.w_u32 b meta.n_classes;
  Bin.w_u32 b meta.dim;
  Bin.w_u32 b meta.n_train;
  Bin.w_int b meta.seed;
  Bin.w_str b meta.source;
  Bin.w_str b (Model.save snapshot);
  Buffer.contents b

let decode_entry blob =
  let r = Bin.reader blob in
  let m = Bin.r_raw r 4 in
  if m <> magic then Bin.fail r (Printf.sprintf "bad registry magic %S" m);
  let v = Bin.r_u16 r in
  if v <> format_version then
    Bin.fail r
      (Printf.sprintf "registry version skew: got %d, expected %d" v
         format_version);
  let kind = Bin.r_str r in
  let version = Bin.r_u32 r in
  let embedding = Bin.r_str r in
  let n_classes = Bin.r_u32 r in
  let dim = Bin.r_u32 r in
  let n_train = Bin.r_u32 r in
  let seed = Bin.r_int r in
  let source = Bin.r_str r in
  let snapshot = Model.load (Bin.r_str r) in
  Bin.expect_end r;
  if Model.snapshot_kind snapshot <> kind then
    Bin.fail r
      (Printf.sprintf "metadata kind %s but payload is a %s model" kind
         (Model.snapshot_kind snapshot));
  { meta = { kind; version; embedding; n_classes; dim; n_train; seed; source };
    snapshot }

let file_name ~kind ~version = Printf.sprintf "%s@%d.ymdl" kind version

let parse_spec spec =
  let check_kind kind =
    if kind = "" then Error "empty model name"
    else if String.contains kind '/' || String.contains kind '.' then
      Error (Printf.sprintf "invalid model name %S" kind)
    else Ok kind
  in
  match String.index_opt spec '@' with
  | None -> Result.map (fun k -> (k, None)) (check_kind spec)
  | Some i -> (
      let kind = String.sub spec 0 i in
      let vs = String.sub spec (i + 1) (String.length spec - i - 1) in
      match check_kind kind with
      | Error e -> Error e
      | Ok k -> (
          match int_of_string_opt vs with
          | Some v when v >= 1 -> Ok (k, Some v)
          | _ -> Error (Printf.sprintf "invalid version %S in %S" vs spec)))

let versions ~dir kind =
  let prefix = kind ^ "@" and suffix = ".ymdl" in
  let files = try Sys.readdir dir with Sys_error _ -> [||] in
  Array.to_list files
  |> List.filter_map (fun f ->
         if
           String.length f > String.length prefix + String.length suffix
           && String.sub f 0 (String.length prefix) = prefix
           && Filename.check_suffix f suffix
         then
           int_of_string_opt
             (String.sub f (String.length prefix)
                (String.length f - String.length prefix - String.length suffix))
         else None)
  |> List.filter (fun v -> v >= 1)
  |> List.sort_uniq compare

let latest ~dir kind =
  match List.rev (versions ~dir kind) with [] -> None | v :: _ -> Some v

let list_all ~dir =
  let files = try Sys.readdir dir with Sys_error _ -> [||] in
  Array.to_list files
  |> List.filter_map (fun f ->
         match String.index_opt f '@' with
         | Some i when Filename.check_suffix f ".ymdl" ->
             Some (String.sub f 0 i)
         | _ -> None)
  |> List.sort_uniq compare
  |> List.map (fun kind -> (kind, versions ~dir kind))

let write_file path blob =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc blob)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let publish ~dir ?version ~meta snapshot =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let assigned =
    match version with
    | Some v -> v
    | None -> ( match latest ~dir meta.kind with Some v -> v + 1 | None -> 1)
  in
  let meta = { meta with version = assigned } in
  let path = Filename.concat dir (file_name ~kind:meta.kind ~version:assigned) in
  write_file path (encode_entry { meta; snapshot });
  (assigned, path)

let load ~dir spec =
  match parse_spec spec with
  | Error e -> Error e
  | Ok (kind, pin) -> (
      let version =
        match pin with Some v -> Some v | None -> latest ~dir kind
      in
      match version with
      | None -> Error (Printf.sprintf "no published versions of %s in %s" kind dir)
      | Some v -> (
          let path = Filename.concat dir (file_name ~kind ~version:v) in
          match read_file path with
          | exception Sys_error _ ->
              Error (Printf.sprintf "model %s@%d not found in %s" kind v dir)
          | blob -> (
              match decode_entry blob with
              | e ->
                  if e.meta.kind <> kind then
                    Error
                      (Printf.sprintf "%s holds a %s model, not %s" path
                         e.meta.kind kind)
                  else Ok e
              | exception Bin.Corrupt msg ->
                  Error (Printf.sprintf "%s: corrupt: %s" path msg))))

let train ~seed ~embedding ~kind ~n_classes ~per_class =
  let rng = Rng.make seed in
  let split =
    Yali_dataset.Poj.make rng ~n_classes ~train_per_class:per_class
      ~test_per_class:0
  in
  let modules, _ =
    Yali_games.Arena.build_modules (Rng.split rng) Yali_games.Game.game0 split
  in
  let x = Yali_games.Arena.embed_fmat embedding modules in
  let ys = Array.map snd modules in
  match Model.train_snapshot kind (Rng.split rng) ~n_classes x ys with
  | None -> Error (Printf.sprintf "no snapshot-able model named %s" kind)
  | Some snapshot ->
      let meta =
        {
          kind;
          version = 0;
          embedding = embedding.Yali_embeddings.Embedding.name;
          n_classes;
          dim = x.Yali_ml.Fmat.d;
          n_train = x.Yali_ml.Fmat.n;
          seed;
          source =
            Printf.sprintf "inline:poj:seed=%d:classes=%d:per=%d" seed
              n_classes per_class;
        }
      in
      Ok { meta; snapshot }
