(** The classification daemon: a single-threaded [select] loop over a Unix
    socket that accumulates in-flight classify requests into micro-batches
    and routes each batch through the model's [predict_batch] on the
    {!Yali_exec.Pool} runtime (DESIGN.md §11).

    Batching never changes an answer: [predict_batch] is documented
    bit-identical to mapping [predict] over the rows, and embeddings go
    through the content-addressed cache — so the reply for a program is
    the same at any [--jobs] setting, any batch size, and any request
    interleaving.

    The pending queue is bounded: once [queue_cap] requests await
    dispatch, further classify requests get an explicit {!Wire.Busy}
    reply instead of unbounded buffering.  [SIGTERM]/[SIGINT] (and the
    {!Wire.Shutdown} request) drain the pending queue, answer every
    accepted request, close the socket and return cleanly. *)

type config = {
  socket : string;  (** path of the Unix socket to create *)
  registry_dir : string;
  model_spec : string;  (** {!Registry.parse_spec} syntax: "rf", "rf@3" *)
  queue_cap : int;  (** pending classify requests before {!Wire.Busy} *)
  max_batch : int;  (** micro-batch size cap per dispatch *)
  log : string -> unit;
}

val default : config

(** Load the model, warm it (restore weights, embed-and-classify one probe
    row), bind the socket and serve until shutdown.  Returns after a clean
    shutdown; [Error] on setup failures (unresolvable model spec, unknown
    embedding, unbindable socket). *)
val run : config -> (unit, string) result

(** The daemon's telemetry snapshot as JSON — also what a {!Wire.Stats}
    request returns: request/batch/busy/error counters, the batch-size
    histogram, queue-wait quantiles, and the embedding cache's
    hit/miss/eviction statistics ({!Yali_exec.Cache.stats}). *)
val stats_json : unit -> string
