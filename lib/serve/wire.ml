module Bin = Yali_util.Bin

type payload_fmt = Binary | Minic | Textual

type request =
  | Classify of { fmt : payload_fmt; blob : string }
  | Ping
  | Stats
  | Shutdown
  | Margins of { fmt : payload_fmt; blob : string }

type response =
  | Class of { cls : int; queue_us : int; batch : int }
  | Error of string
  | Busy
  | Pong
  | Stats_json of string
  | Bye
  | Margins_r of { scores : float array; queue_us : int; batch : int }

let encode_request rq =
  let b = Buffer.create 64 in
  (match rq with
  | Classify { fmt; blob } ->
      Bin.w_u8 b 1;
      Bin.w_u8 b (match fmt with Binary -> 0 | Minic -> 1 | Textual -> 2);
      Bin.w_str b blob
  | Ping -> Bin.w_u8 b 2
  | Stats -> Bin.w_u8 b 3
  | Shutdown -> Bin.w_u8 b 4
  | Margins { fmt; blob } ->
      Bin.w_u8 b 5;
      Bin.w_u8 b (match fmt with Binary -> 0 | Minic -> 1 | Textual -> 2);
      Bin.w_str b blob);
  Buffer.contents b

let decode_request payload =
  let r = Bin.reader payload in
  let rq =
    match Bin.r_u8 r with
    | 1 ->
        let fmt =
          match Bin.r_u8 r with
          | 0 -> Binary
          | 1 -> Minic
          | 2 -> Textual
          | n -> Bin.fail r (Printf.sprintf "bad payload format %d" n)
        in
        Classify { fmt; blob = Bin.r_str r }
    | 2 -> Ping
    | 3 -> Stats
    | 4 -> Shutdown
    | 5 ->
        let fmt =
          match Bin.r_u8 r with
          | 0 -> Binary
          | 1 -> Minic
          | 2 -> Textual
          | n -> Bin.fail r (Printf.sprintf "bad payload format %d" n)
        in
        Margins { fmt; blob = Bin.r_str r }
    | n -> Bin.fail r (Printf.sprintf "bad request opcode %d" n)
  in
  Bin.expect_end r;
  rq

let encode_response rs =
  let b = Buffer.create 64 in
  (match rs with
  | Class { cls; queue_us; batch } ->
      Bin.w_u8 b 0;
      Bin.w_int b cls;
      Bin.w_int b queue_us;
      Bin.w_int b batch
  | Error msg ->
      Bin.w_u8 b 1;
      Bin.w_str b msg
  | Busy -> Bin.w_u8 b 2
  | Pong -> Bin.w_u8 b 3
  | Stats_json j ->
      Bin.w_u8 b 4;
      Bin.w_str b j
  | Bye -> Bin.w_u8 b 5
  | Margins_r { scores; queue_us; batch } ->
      Bin.w_u8 b 6;
      Bin.w_floats b scores;
      Bin.w_int b queue_us;
      Bin.w_int b batch);
  Buffer.contents b

let decode_response payload =
  let r = Bin.reader payload in
  let rs =
    match Bin.r_u8 r with
    | 0 ->
        let cls = Bin.r_int r in
        let queue_us = Bin.r_int r in
        Class { cls; queue_us; batch = Bin.r_int r }
    | 1 -> Error (Bin.r_str r)
    | 2 -> Busy
    | 3 -> Pong
    | 4 -> Stats_json (Bin.r_str r)
    | 5 -> Bye
    | 6 ->
        let scores = Bin.r_floats r in
        let queue_us = Bin.r_int r in
        Margins_r { scores; queue_us; batch = Bin.r_int r }
    | n -> Bin.fail r (Printf.sprintf "bad response status %d" n)
  in
  Bin.expect_end r;
  rs

(* -- framing --------------------------------------------------------------- *)

let max_frame = 64 * 1024 * 1024

let corrupt fmt = Printf.ksprintf (fun m -> raise (Bin.Corrupt m)) fmt

let parse_header b off =
  let n = Int32.to_int (Bytes.get_int32_le b off) land 0xffffffff in
  if n > max_frame then corrupt "frame of %d bytes exceeds max %d" n max_frame;
  n

let rec write_all fd b off len =
  if len > 0 then
    let n =
      try Unix.write fd b off len
      with Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    write_all fd b (off + n) (len - n)

let write_frame fd payload =
  let len = String.length payload in
  if len > max_frame then corrupt "frame of %d bytes exceeds max %d" len max_frame;
  let b = Bytes.create (4 + len) in
  Bytes.set_int32_le b 0 (Int32.of_int len);
  Bytes.blit_string payload 0 b 4 len;
  write_all fd b 0 (4 + len)

(* [exact] returns [false] only on EOF before the first byte *)
let read_exact fd b len =
  let rec go off =
    if off >= len then true
    else
      match Unix.read fd b off (len - off) with
      | 0 ->
          if off = 0 then false
          else corrupt "connection closed mid-frame (%d of %d bytes)" off len
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let read_frame fd =
  let hdr = Bytes.create 4 in
  if not (read_exact fd hdr 4) then None
  else begin
    let len = parse_header hdr 0 in
    let b = Bytes.create len in
    if len > 0 && not (read_exact fd b len) then
      corrupt "connection closed before %d-byte frame" len;
    Some (Bytes.unsafe_to_string b)
  end

module Dechunk = struct
  type t = { mutable pending : string }

  let create () = { pending = "" }

  let feed t chunk n =
    let buf = Buffer.create (String.length t.pending + n) in
    Buffer.add_string buf t.pending;
    Buffer.add_subbytes buf chunk 0 n;
    let data = Buffer.contents buf in
    let total = String.length data in
    let frames = ref [] in
    let pos = ref 0 in
    let more = ref true in
    while !more do
      if total - !pos < 4 then more := false
      else begin
        let len =
          let n32 = String.get_int32_le data !pos in
          let n = Int32.to_int n32 land 0xffffffff in
          if n > max_frame then
            corrupt "frame of %d bytes exceeds max %d" n max_frame;
          n
        in
        if total - !pos - 4 < len then more := false
        else begin
          frames := String.sub data (!pos + 4) len :: !frames;
          pos := !pos + 4 + len
        end
      end
    done;
    t.pending <- String.sub data !pos (total - !pos);
    List.rev !frames
end
