(** The versioned model registry: trained classifier snapshots persisted as
    weights under [<dir>/<kind>@<version>.ymdl], so a daemon can warm-load
    a model at startup instead of retraining (DESIGN.md §11).

    Each file is a metadata header (magic ["YREG"], format version, model
    kind, training recipe) wrapping a {!Yali_ml.Model.save} blob.  A loaded
    entry predicts bit-identically to the model that published it. *)

type meta = {
  kind : string;  (** model registry name: "rf", "svm", "knn", "lr", "mlp" *)
  version : int;  (** registry version tag, 1-based *)
  embedding : string;  (** embedding the model was trained over *)
  n_classes : int;
  dim : int;  (** feature dimension the model expects *)
  n_train : int;  (** training rows *)
  seed : int;  (** training seed (the recipe is reproducible) *)
  source : string;
      (** provenance: a {!Yali_corpus.Gen.spec} string for corpus-trained
          models, ["inline:..."] for {!train}'s synthetic recipe *)
}

type entry = { meta : meta; snapshot : Yali_ml.Model.snapshot }

val encode_entry : entry -> string

(** @raise Yali_util.Bin.Corrupt on bad magic, version skew, malformed
    payload, or a metadata kind that contradicts the snapshot *)
val decode_entry : string -> entry

(** ["rf@3.ymdl"] *)
val file_name : kind:string -> version:int -> string

(** Parse a model spec: ["rf"] is (rf, latest), ["rf@3"] pins version 3. *)
val parse_spec : string -> (string * int option, string) result

(** Published versions of a kind, ascending; [] when none (or no dir). *)
val versions : dir:string -> string -> int list

val latest : dir:string -> string -> int option

(** Every kind with at least one published version. *)
val list_all : dir:string -> (string * int list) list

(** Write a snapshot into the registry.  [version] defaults to
    latest+1 (or 1); the stored metadata carries the assigned version.
    Returns (assigned version, path).  Creates [dir] when missing. *)
val publish :
  dir:string -> ?version:int -> meta:meta -> Yali_ml.Model.snapshot ->
  int * string

(** Resolve a spec ("rf", "rf@3") against the registry and load it.
    [Error] covers bad specs, unknown kinds/versions and corrupt files. *)
val load : dir:string -> string -> (entry, string) result

(** Train a fresh snapshot on the synthetic corpus — the same Game0
    modules and embedding matrix the arena would build — and return it
    with its recipe metadata (version 0 until {!publish} assigns one).
    [Error] for unknown model kinds (including the snapshot-less [cnn]). *)
val train :
  seed:int ->
  embedding:Yali_embeddings.Embedding.t ->
  kind:string ->
  n_classes:int ->
  per_class:int ->
  (entry, string) result
