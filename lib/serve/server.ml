module Embedding = Yali_embeddings.Embedding
module Cache = Yali_exec.Cache
module Telemetry = Yali_exec.Telemetry

type config = {
  socket : string;
  registry_dir : string;
  model_spec : string;
  queue_cap : int;
  max_batch : int;
  log : string -> unit;
}

let default =
  {
    socket = "yali.sock";
    registry_dir = "models";
    model_spec = "rf";
    queue_cap = 256;
    max_batch = 64;
    log = ignore;
  }

(* -- telemetry ------------------------------------------------------------- *)

type counters = {
  mutable requests : int;  (** classify requests accepted into the queue *)
  mutable served : int;
  mutable busy : int;
  mutable errors : int;
  mutable batches : int;
  batch_hist : (int, int) Hashtbl.t;  (** batch size -> dispatches *)
  mutable waits_us : int list;  (** queue waits of served requests *)
  mutable started : float;
}

let counters =
  {
    requests = 0;
    served = 0;
    busy = 0;
    errors = 0;
    batches = 0;
    batch_hist = Hashtbl.create 16;
    waits_us = [];
    started = 0.0;
  }

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0
  else sorted.(min (n - 1) (int_of_float (float_of_int (n - 1) *. q +. 0.5)))

let stats_json () =
  let b = Buffer.create 512 in
  let hist =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) counters.batch_hist []
    |> List.sort compare
  in
  let waits = Array.of_list counters.waits_us in
  Array.sort compare waits;
  let cache = Embedding.flat_cache_stats () in
  Buffer.add_string b "{";
  Printf.bprintf b "\"requests\": %d, " counters.requests;
  Printf.bprintf b "\"served\": %d, " counters.served;
  Printf.bprintf b "\"busy\": %d, " counters.busy;
  Printf.bprintf b "\"errors\": %d, " counters.errors;
  Printf.bprintf b "\"batches\": %d, " counters.batches;
  Printf.bprintf b "\"uptime_seconds\": %.3f, "
    (Telemetry.clock () -. counters.started);
  Printf.bprintf b "\"queue_wait_us\": {\"p50\": %d, \"p99\": %d}, "
    (percentile waits 0.5) (percentile waits 0.99);
  Buffer.add_string b "\"batch_hist\": {";
  List.iteri
    (fun i (size, count) ->
      Printf.bprintf b "%s\"%d\": %d" (if i = 0 then "" else ", ") size count)
    hist;
  Buffer.add_string b "}, ";
  Printf.bprintf b
    "\"embed_cache\": {\"hits\": %d, \"misses\": %d, \"evictions\": %d, \
     \"size\": %d, \"capacity\": %d, \"hit_rate\": %.4f}"
    cache.Cache.hits cache.Cache.misses cache.Cache.evictions
    cache.Cache.size cache.Cache.capacity (Cache.hit_rate cache);
  Buffer.add_string b "}";
  Buffer.contents b

let reset_counters () =
  counters.requests <- 0;
  counters.served <- 0;
  counters.busy <- 0;
  counters.errors <- 0;
  counters.batches <- 0;
  Hashtbl.reset counters.batch_hist;
  counters.waits_us <- [];
  counters.started <- Telemetry.clock ()

(* -- the loop -------------------------------------------------------------- *)

type conn = {
  fd : Unix.file_descr;
  chunks : Wire.Dechunk.t;
  mutable alive : bool;
}

(** What a queued request asked for: the class decision alone, or the full
    per-class score vector (the adaptive evaders' oracle). *)
type want = Want_class | Want_margins

type pending = {
  origin : conn;
  m : Yali_ir.Irmod.t;
  arrival : float;
  want : want;
}

type state = {
  cfg : config;
  embedding : Embedding.t;
  dim : int;
  trained : Yali_ml.Model.trained;
  margins : float array -> float array;
  mutable conns : conn list;
  mutable queue : pending list;  (** newest first *)
  mutable queued : int;
  mutable running : bool;
}

let send conn resp =
  if conn.alive then
    try Wire.write_frame conn.fd (Wire.encode_response resp)
    with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
      conn.alive <- false

let close_conn st conn =
  if conn.alive then begin
    conn.alive <- false;
    (try Unix.close conn.fd with Unix.Unix_error _ -> ())
  end;
  st.conns <- List.filter (fun c -> c != conn) st.conns

let module_of_blob (fmt : Wire.payload_fmt) blob :
    (Yali_ir.Irmod.t, string) result =
  match fmt with
  | Binary -> Codec.decode_result blob
  | Minic -> (
      try
        Ok
          (Yali_transforms.Pipeline.optimize Yali_transforms.Pipeline.O0
             (Yali_minic.Lower.lower_program
                (Yali_minic.Parser.parse_program blob)))
      with e -> Error (Printexc.to_string e))
  | Textual -> (
      try Ok (Yali_ir.Parser.parse_module blob)
      with e -> Error (Printexc.to_string e))

let rec handle_request st conn = function
  | Wire.Ping -> send conn Wire.Pong
  | Wire.Stats -> send conn (Wire.Stats_json (stats_json ()))
  | Wire.Shutdown ->
      st.cfg.log "shutdown requested";
      send conn Wire.Bye;
      st.running <- false
  | Wire.Classify { fmt; blob } -> enqueue st conn Want_class fmt blob
  | Wire.Margins { fmt; blob } -> enqueue st conn Want_margins fmt blob

and enqueue st conn want fmt blob =
  if st.queued >= st.cfg.queue_cap then begin
    counters.busy <- counters.busy + 1;
    send conn Wire.Busy
  end
  else
    match module_of_blob fmt blob with
    | Error msg ->
        counters.errors <- counters.errors + 1;
        send conn (Wire.Error msg)
    | Ok m ->
        counters.requests <- counters.requests + 1;
        st.queue <-
          { origin = conn; m; arrival = Telemetry.clock (); want } :: st.queue;
        st.queued <- st.queued + 1

let handle_frame st conn payload =
  match Wire.decode_request payload with
  | rq -> handle_request st conn rq
  | exception Yali_util.Bin.Corrupt msg ->
      counters.errors <- counters.errors + 1;
      send conn (Wire.Error ("malformed request: " ^ msg))

(* One micro-batch: everything queued (oldest first), capped at
   [max_batch].  Embeddings go through the content-addressed cache, the
   class decisions through the model's bulk kernel — both documented
   bit-identical to the one-at-a-time path, which is what makes replies
   independent of batching. *)
let dispatch st =
  while st.queue <> [] do
    let pendings = List.rev st.queue in
    let batch, rest =
      let rec split i acc = function
        | xs when i = st.cfg.max_batch -> (List.rev acc, xs)
        | [] -> (List.rev acc, [])
        | x :: xs -> split (i + 1) (x :: acc) xs
      in
      split 0 [] pendings
    in
    st.queue <- List.rev rest;
    st.queued <- List.length rest;
    let rows =
      List.map
        (fun p ->
          match Embedding.to_flat_cached st.embedding p.m with
          | v when Array.length v = st.dim -> Ok (p, v)
          | v ->
              Error
                ( p,
                  Printf.sprintf "embedding dimension %d, model expects %d"
                    (Array.length v) st.dim )
          | exception e -> Error (p, Printexc.to_string e))
        batch
    in
    let good =
      List.filter_map (function Ok pv -> Some pv | Error _ -> None) rows
    in
    List.iter
      (function
        | Ok _ -> ()
        | Error ((p : pending), msg) ->
            counters.errors <- counters.errors + 1;
            send p.origin (Wire.Error msg))
      rows;
    if good <> [] then begin
      let n = List.length good in
      let x = Yali_ml.Fmat.of_rows (Array.of_list (List.map snd good)) in
      let classes = st.trained.predict_batch x in
      let now = Telemetry.clock () in
      counters.batches <- counters.batches + 1;
      Hashtbl.replace counters.batch_hist n
        (1 + Option.value ~default:0 (Hashtbl.find_opt counters.batch_hist n));
      List.iteri
        (fun i ((p : pending), row) ->
          let queue_us =
            int_of_float ((now -. p.arrival) *. 1_000_000.0)
          in
          counters.served <- counters.served + 1;
          counters.waits_us <- queue_us :: counters.waits_us;
          match p.want with
          | Want_class ->
              send p.origin
                (Wire.Class { cls = classes.(i); queue_us; batch = n })
          | Want_margins ->
              (* per-row margins over the same cached embedding the batch
                 used — scores independent of batching by construction *)
              send p.origin
                (Wire.Margins_r
                   { scores = st.margins row; queue_us; batch = n }))
        good
    end
  done

let read_chunk st conn =
  let buf = Bytes.create 65536 in
  match Unix.read conn.fd buf 0 (Bytes.length buf) with
  | 0 -> close_conn st conn
  | n -> (
      match Wire.Dechunk.feed conn.chunks buf n with
      | frames -> List.iter (handle_frame st conn) frames
      | exception Yali_util.Bin.Corrupt msg ->
          counters.errors <- counters.errors + 1;
          send conn (Wire.Error msg);
          close_conn st conn)
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
      close_conn st conn

let interrupted = ref false

let install_signals () =
  let note _ = interrupted := true in
  let prev_term = Sys.signal Sys.sigterm (Sys.Signal_handle note) in
  let prev_int = Sys.signal Sys.sigint (Sys.Signal_handle note) in
  let prev_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  fun () ->
    Sys.set_signal Sys.sigterm prev_term;
    Sys.set_signal Sys.sigint prev_int;
    Sys.set_signal Sys.sigpipe prev_pipe

let serve_loop st listen_fd =
  while st.running do
    if !interrupted then begin
      st.cfg.log "signal: shutting down";
      st.running <- false
    end
    else begin
      let fds = listen_fd :: List.map (fun c -> c.fd) st.conns in
      match Unix.select fds [] [] 1.0 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | ready, _, _ ->
          if List.mem listen_fd ready then begin
            match Unix.accept listen_fd with
            | fd, _ ->
                st.conns <-
                  { fd; chunks = Wire.Dechunk.create (); alive = true }
                  :: st.conns
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
          end;
          List.iter
            (fun conn ->
              if conn.alive && List.memq conn.fd ready then
                read_chunk st conn)
            st.conns;
          dispatch st
    end
  done;
  (* graceful: answer everything already accepted before closing *)
  dispatch st

let run cfg =
  interrupted := false;
  reset_counters ();
  match Registry.load ~dir:cfg.registry_dir cfg.model_spec with
  | Error e -> Error e
  | Ok entry -> (
      match Embedding.find entry.meta.embedding with
      | None ->
          Error
            (Printf.sprintf "model trained over unknown embedding %s"
               entry.meta.embedding)
      | Some embedding ->
          (* warm preload: restore the weights and push one probe row
             through embed + predict before accepting connections *)
          let trained = Yali_ml.Model.restore entry.snapshot in
          let probe = Array.make entry.meta.dim 0.0 in
          ignore (trained.predict probe);
          cfg.log
            (Printf.sprintf "serving %s@%d (%s, %d classes, dim %d) on %s"
               entry.meta.kind entry.meta.version entry.meta.embedding
               entry.meta.n_classes entry.meta.dim cfg.socket);
          if Sys.file_exists cfg.socket then Sys.remove cfg.socket;
          let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
          let restore_signals = install_signals () in
          Fun.protect
            ~finally:(fun () ->
              restore_signals ();
              (try Unix.close listen_fd with Unix.Unix_error _ -> ());
              if Sys.file_exists cfg.socket then Sys.remove cfg.socket)
            (fun () ->
              match Unix.bind listen_fd (Unix.ADDR_UNIX cfg.socket) with
              | exception Unix.Unix_error (err, _, _) ->
                  Error
                    (Printf.sprintf "cannot bind %s: %s" cfg.socket
                       (Unix.error_message err))
              | () ->
                  Unix.listen listen_fd 64;
                  let st =
                    {
                      cfg;
                      embedding;
                      dim = entry.meta.dim;
                      trained;
                      margins = Yali_ml.Model.margins entry.snapshot;
                      conns = [];
                      queue = [];
                      queued = 0;
                      running = true;
                    }
                  in
                  serve_loop st listen_fd;
                  List.iter (fun c -> close_conn st c) st.conns;
                  cfg.log "bye";
                  Ok ()))
