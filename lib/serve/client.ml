module Bin = Yali_util.Bin

type t = { cfd : Unix.file_descr }

let connect path =
  let cfd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect cfd (Unix.ADDR_UNIX path)
   with e -> (try Unix.close cfd with Unix.Unix_error _ -> ()); raise e);
  { cfd }

let close t = try Unix.close t.cfd with Unix.Unix_error _ -> ()

let fd t = t.cfd

let request t rq =
  Wire.write_frame t.cfd (Wire.encode_request rq);
  match Wire.read_frame t.cfd with
  | Some payload -> Wire.decode_response payload
  | None -> raise (Bin.Corrupt "daemon closed the connection")

let classify t m =
  request t (Wire.Classify { fmt = Wire.Binary; blob = Codec.encode_module m })

let classify_source t src =
  request t (Wire.Classify { fmt = Wire.Minic; blob = src })

let margins t m =
  request t (Wire.Margins { fmt = Wire.Binary; blob = Codec.encode_module m })

let ping t = match request t Wire.Ping with Wire.Pong -> true | _ -> false

let stats t =
  match request t Wire.Stats with
  | Wire.Stats_json j -> Ok j
  | Wire.Error e -> Error e
  | _ -> Error "unexpected reply to stats"

let shutdown t =
  match request t Wire.Shutdown with
  | _ -> ()
  | exception Bin.Corrupt _ -> ()
