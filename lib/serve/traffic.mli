(** Synthetic traffic generator for benchmarking the daemon: [clients]
    concurrent connections replaying programs drawn from the synthetic
    corpus, measuring sustained throughput and latency quantiles, and
    checking reply determinism (the same program must classify identically
    on every repetition, whatever batch it lands in). *)

type cfg = {
  socket : string;
  clients : int;  (** concurrent connections (= max in-flight requests) *)
  requests : int;  (** total classify requests *)
  seed : int;
  n_classes : int;
  per_class : int;  (** distinct programs per class in the replay pool *)
  log : string -> unit;
}

val default : cfg

type result = {
  t_classified : int;
  t_busy : int;  (** backpressure replies observed (each retried) *)
  t_errors : int;
  t_seconds : float;
  t_throughput : float;  (** classified programs per second *)
  t_p50_us : int;  (** request latency, client-side *)
  t_p99_us : int;
  t_batch_hist : (int * int) list;  (** batch size -> replies served at it *)
  t_deterministic : bool;  (** same program -> same class, always *)
}

(** @raise Unix.Unix_error when the daemon is unreachable *)
val run : cfg -> result

val result_to_json : result -> string
