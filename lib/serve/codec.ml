(** See codec.mli.  Layout, all little-endian:

    {v
    "YALI"  u16 version  u8 nsections
    per section: u8 tag  u32 length  payload
      tag 1: string table   u32 count, then per string u32 len + bytes
      tag 2: module body    encoded against the string table
    v}

    The encoder interns strings while serialising the body, then emits the
    table first; the decoder reads the table, then resolves indices while
    deserialising the body.  Every name is a u32 index, every enum a u8
    tag, every float an IEEE-754 bit pattern — the round trip is exact. *)

module Bin = Yali_util.Bin
module Ir = Yali_ir
module Instr = Ir.Instr
module Types = Ir.Types
module Value = Ir.Value

let magic = "YALI"
let version = 1

(* -- enum tags ------------------------------------------------------------- *)

let ibin_tags : Instr.ibin array =
  [|
    Add; Sub; Mul; SDiv; UDiv; SRem; URem; Shl; LShr; AShr; And; Or; Xor;
  |]

let fbin_tags : Instr.fbin array = [| FAdd; FSub; FMul; FDiv; FRem |]

let icmp_tags : Instr.icmp array =
  [| Eq; Ne; Slt; Sle; Sgt; Sge; Ult; Ule; Ugt; Uge |]

let fcmp_tags : Instr.fcmp array = [| Oeq; One; Olt; Ole; Ogt; Oge |]

let cast_tags : Instr.cast array =
  [|
    Trunc; ZExt; SExt; FPTrunc; FPExt; FPToUI; FPToSI; UIToFP; SIToFP;
    PtrToInt; IntToPtr; Bitcast;
  |]

let tag_of (tags : 'a array) (x : 'a) : int =
  let rec go i = if tags.(i) = x then i else go (i + 1) in
  go 0

let of_tag (what : string) (tags : 'a array) (r : Bin.r) : 'a =
  let t = Bin.r_u8 r in
  if t >= Array.length tags then
    Bin.fail r (Printf.sprintf "bad %s tag %d" what t);
  tags.(t)

(* -- types ----------------------------------------------------------------- *)

let rec w_type b (t : Types.t) =
  match t with
  | Void -> Bin.w_u8 b 0
  | I1 -> Bin.w_u8 b 1
  | I8 -> Bin.w_u8 b 2
  | I32 -> Bin.w_u8 b 3
  | I64 -> Bin.w_u8 b 4
  | F64 -> Bin.w_u8 b 5
  | Ptr t' ->
      Bin.w_u8 b 6;
      w_type b t'
  | Arr (t', n) ->
      Bin.w_u8 b 7;
      w_type b t';
      Bin.w_u32 b n

let rec r_type ?(depth = 0) r : Types.t =
  if depth > 64 then Bin.fail r "type nested deeper than 64";
  match Bin.r_u8 r with
  | 0 -> Void
  | 1 -> I1
  | 2 -> I8
  | 3 -> I32
  | 4 -> I64
  | 5 -> F64
  | 6 -> Ptr (r_type ~depth:(depth + 1) r)
  | 7 ->
      let t = r_type ~depth:(depth + 1) r in
      Arr (t, Bin.r_u32 r)
  | n -> Bin.fail r (Printf.sprintf "bad type tag %d" n)

(* -- the string table ------------------------------------------------------ *)

type interner = { tbl : (string, int) Hashtbl.t; mutable order : string list }

let intern (it : interner) (s : string) : int =
  match Hashtbl.find_opt it.tbl s with
  | Some ix -> ix
  | None ->
      let ix = Hashtbl.length it.tbl in
      Hashtbl.add it.tbl s ix;
      it.order <- s :: it.order;
      ix

let w_name it b s = Bin.w_u32 b (intern it s)

let r_name (strings : string array) r : string =
  let ix = Bin.r_u32 r in
  if ix >= Array.length strings then
    Bin.fail r (Printf.sprintf "string index %d out of %d" ix
                  (Array.length strings));
  strings.(ix)

(* -- values ---------------------------------------------------------------- *)

let w_value it b (v : Value.t) =
  match v with
  | Var id ->
      Bin.w_u8 b 0;
      Bin.w_int b id
  | IConst (ty, x) ->
      Bin.w_u8 b 1;
      w_type b ty;
      Bin.w_i64 b x
  | FConst x ->
      Bin.w_u8 b 2;
      Bin.w_f64 b x
  | Global g ->
      Bin.w_u8 b 3;
      w_name it b g
  | Undef ty ->
      Bin.w_u8 b 4;
      w_type b ty

let r_value strings r : Value.t =
  match Bin.r_u8 r with
  | 0 -> Var (Bin.r_int r)
  | 1 ->
      let ty = r_type r in
      IConst (ty, Bin.r_i64 r)
  | 2 -> FConst (Bin.r_f64 r)
  | 3 -> Global (r_name strings r)
  | 4 -> Undef (r_type r)
  | n -> Bin.fail r (Printf.sprintf "bad value tag %d" n)

(* -- instructions ---------------------------------------------------------- *)

let w_kind it b (k : Instr.kind) =
  let v = w_value it b in
  match k with
  | Ibin (op, a, c) ->
      Bin.w_u8 b 0;
      Bin.w_u8 b (tag_of ibin_tags op);
      v a;
      v c
  | Fbin (op, a, c) ->
      Bin.w_u8 b 1;
      Bin.w_u8 b (tag_of fbin_tags op);
      v a;
      v c
  | Fneg a ->
      Bin.w_u8 b 2;
      v a
  | Icmp (p, a, c) ->
      Bin.w_u8 b 3;
      Bin.w_u8 b (tag_of icmp_tags p);
      v a;
      v c
  | Fcmp (p, a, c) ->
      Bin.w_u8 b 4;
      Bin.w_u8 b (tag_of fcmp_tags p);
      v a;
      v c
  | Alloca ty ->
      Bin.w_u8 b 5;
      w_type b ty
  | Load a ->
      Bin.w_u8 b 6;
      v a
  | Store (a, p) ->
      Bin.w_u8 b 7;
      v a;
      v p
  | Gep (base, ixs) ->
      Bin.w_u8 b 8;
      v base;
      Bin.w_seq b (w_value it) ixs
  | Phi entries ->
      Bin.w_u8 b 9;
      Bin.w_seq b
        (fun b (value, pred) ->
          w_value it b value;
          w_name it b pred)
        entries
  | Select (c, a, d) ->
      Bin.w_u8 b 10;
      v c;
      v a;
      v d
  | Call (f, args) ->
      Bin.w_u8 b 11;
      w_name it b f;
      Bin.w_seq b (w_value it) args
  | Cast (op, a) ->
      Bin.w_u8 b 12;
      Bin.w_u8 b (tag_of cast_tags op);
      v a
  | Freeze a ->
      Bin.w_u8 b 13;
      v a

let r_kind strings r : Instr.kind =
  let v () = r_value strings r in
  match Bin.r_u8 r with
  | 0 ->
      let op = of_tag "ibin" ibin_tags r in
      let a = v () in
      Ibin (op, a, v ())
  | 1 ->
      let op = of_tag "fbin" fbin_tags r in
      let a = v () in
      Fbin (op, a, v ())
  | 2 -> Fneg (v ())
  | 3 ->
      let p = of_tag "icmp" icmp_tags r in
      let a = v () in
      Icmp (p, a, v ())
  | 4 ->
      let p = of_tag "fcmp" fcmp_tags r in
      let a = v () in
      Fcmp (p, a, v ())
  | 5 -> Alloca (r_type r)
  | 6 -> Load (v ())
  | 7 ->
      let a = v () in
      Store (a, v ())
  | 8 ->
      let base = v () in
      Gep (base, Bin.r_seq r (r_value strings))
  | 9 ->
      Phi
        (Bin.r_seq r (fun r ->
             let value = r_value strings r in
             (value, r_name strings r)))
  | 10 ->
      let c = v () in
      let a = v () in
      Select (c, a, v ())
  | 11 ->
      let f = r_name strings r in
      Call (f, Bin.r_seq r (r_value strings))
  | 12 ->
      let op = of_tag "cast" cast_tags r in
      Cast (op, v ())
  | 13 -> Freeze (v ())
  | n -> Bin.fail r (Printf.sprintf "bad instruction tag %d" n)

let w_instr it b (i : Instr.t) =
  Bin.w_int b i.id;
  w_type b i.ty;
  w_kind it b i.kind

let r_instr strings r : Instr.t =
  let id = Bin.r_int r in
  let ty = r_type r in
  { id; ty; kind = r_kind strings r }

let w_terminator it b (t : Instr.terminator) =
  match t with
  | Ret None -> Bin.w_u8 b 0
  | Ret (Some v) ->
      Bin.w_u8 b 1;
      w_value it b v
  | Br l ->
      Bin.w_u8 b 2;
      w_name it b l
  | CondBr (c, l1, l2) ->
      Bin.w_u8 b 3;
      w_value it b c;
      w_name it b l1;
      w_name it b l2
  | Switch (s, dflt, cases) ->
      Bin.w_u8 b 4;
      w_value it b s;
      w_name it b dflt;
      Bin.w_seq b
        (fun b (x, l) ->
          Bin.w_i64 b x;
          w_name it b l)
        cases
  | Unreachable -> Bin.w_u8 b 5

let r_terminator strings r : Instr.terminator =
  match Bin.r_u8 r with
  | 0 -> Ret None
  | 1 -> Ret (Some (r_value strings r))
  | 2 -> Br (r_name strings r)
  | 3 ->
      let c = r_value strings r in
      let l1 = r_name strings r in
      CondBr (c, l1, r_name strings r)
  | 4 ->
      let s = r_value strings r in
      let dflt = r_name strings r in
      Switch
        ( s,
          dflt,
          Bin.r_seq r (fun r ->
              let x = Bin.r_i64 r in
              (x, r_name strings r)) )
  | 5 -> Unreachable
  | n -> Bin.fail r (Printf.sprintf "bad terminator tag %d" n)

(* -- blocks, functions, globals, the module -------------------------------- *)

let w_block it b (blk : Ir.Block.t) =
  w_name it b blk.label;
  Bin.w_seq b (w_instr it) blk.instrs;
  w_terminator it b blk.term

let r_block strings r : Ir.Block.t =
  let label = r_name strings r in
  let instrs = Bin.r_seq r (r_instr strings) in
  { label; instrs; term = r_terminator strings r }

(* high-water marks travel explicitly: [Func.make] would re-derive them
   from the contents, losing headroom a pass had already minted — and the
   round trip must be structural identity, not just printed identity *)
let w_func it b (f : Ir.Func.t) =
  w_name it b f.name;
  Bin.w_seq b
    (fun b (id, ty) ->
      Bin.w_int b id;
      w_type b ty)
    f.params;
  w_type b f.ret;
  Bin.w_u32 b f.next_id;
  Bin.w_u32 b f.next_label;
  Bin.w_seq b (w_block it) f.blocks

let r_func strings r : Ir.Func.t =
  let name = r_name strings r in
  let params =
    Bin.r_seq r (fun r ->
        let id = Bin.r_int r in
        (id, r_type r))
  in
  let ret = r_type r in
  let next_id = Bin.r_u32 r in
  let next_label = Bin.r_u32 r in
  let blocks = Bin.r_seq r (r_block strings) in
  { name; params; ret; blocks; next_id; next_label }

let w_global it b (g : Ir.Irmod.global) =
  w_name it b g.gname;
  w_type b g.gty;
  Bin.w_arr b Bin.w_i64 g.ginit

let r_global strings r : Ir.Irmod.global =
  let gname = r_name strings r in
  let gty = r_type r in
  { gname; gty; ginit = Bin.r_arr r Bin.r_i64 }

let encode_module (m : Ir.Irmod.t) : string =
  let it = { tbl = Hashtbl.create 64; order = [] } in
  let body = Buffer.create 4096 in
  w_name it body m.mname;
  Bin.w_seq body (w_global it) m.globals;
  Bin.w_seq body (w_func it) m.funcs;
  let strtab = Buffer.create 1024 in
  let strings = List.rev it.order in
  Bin.w_u32 strtab (List.length strings);
  List.iter (Bin.w_str strtab) strings;
  let out = Buffer.create (Buffer.length body + Buffer.length strtab + 32) in
  Buffer.add_string out magic;
  Bin.w_u16 out version;
  Bin.w_u8 out 2;
  Bin.w_u8 out 1;
  Bin.w_u32 out (Buffer.length strtab);
  Buffer.add_buffer out strtab;
  Bin.w_u8 out 2;
  Bin.w_u32 out (Buffer.length body);
  Buffer.add_buffer out body;
  Buffer.contents out

let decode_module (blob : string) : Ir.Irmod.t =
  let r = Bin.reader blob in
  let m = Bin.r_raw r 4 in
  if m <> magic then Bin.fail r (Printf.sprintf "bad magic %S" m);
  let v = Bin.r_u16 r in
  if v <> version then
    Bin.fail r (Printf.sprintf "version skew: got %d, expected %d" v version);
  let nsections = Bin.r_u8 r in
  let sections =
    List.init nsections (fun _ ->
        let tag = Bin.r_u8 r in
        let payload = Bin.r_str r in
        (tag, payload))
  in
  Bin.expect_end r;
  let section tag what =
    match List.assoc_opt tag sections with
    | Some p -> Bin.reader p
    | None -> Bin.fail r (Printf.sprintf "missing %s section" what)
  in
  List.iter
    (fun (tag, _) ->
      if tag <> 1 && tag <> 2 then
        Bin.fail r (Printf.sprintf "unknown section tag %d" tag))
    sections;
  let st = section 1 "string-table" in
  let strings = Array.init (Bin.r_u32 st) (fun _ -> Bin.r_str st) in
  Bin.expect_end st;
  let body = section 2 "module" in
  let mname = r_name strings body in
  let globals = Bin.r_seq body (r_global strings) in
  let funcs = Bin.r_seq body (r_func strings) in
  Bin.expect_end body;
  { mname; globals; funcs }

let decode_result blob =
  match decode_module blob with
  | m -> Ok m
  | exception Bin.Corrupt msg -> Error msg

let write_file path m =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (encode_module m))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> decode_module (really_input_string ic (in_channel_length ic)))
