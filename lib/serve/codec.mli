(** The compact binary on-disk / wire format for IR modules — the "parse
    once" half of classification-as-a-service (DESIGN.md §11).

    A blob is a 7-byte header (magic ["YALI"], u16 format version, u8
    section count) followed by length-prefixed sections: a string table
    (every identifier — module, function, global, block label, call
    target — interned once, in first-use order) and the module body, whose
    opcodes, types, predicates and casts are single-byte tags.

    Contract (enforced by the [serve/codec-roundtrip] oracle in
    {!Yali_check.Oracles} across generated programs and every registered
    pipeline variant): [decode (encode m)] is structurally equal to [m] —
    high-water marks included — and therefore prints bit-identically under
    {!Yali_ir.Pp} and behaves identically under every engine.  Decoding
    validates every byte: truncation, bad magic, version skew, unknown
    tags and trailing garbage raise {!Yali_util.Bin.Corrupt}, never a
    crash or a silently wrong module. *)

val magic : string

(** The current format version; the decoder accepts exactly this one. *)
val version : int

val encode_module : Yali_ir.Irmod.t -> string

(** @raise Yali_util.Bin.Corrupt on malformed input *)
val decode_module : string -> Yali_ir.Irmod.t

(** {!decode_module} with the corruption message as [Error]. *)
val decode_result : string -> (Yali_ir.Irmod.t, string) result

val write_file : string -> Yali_ir.Irmod.t -> unit

(** @raise Yali_util.Bin.Corrupt as {!decode_module};
    @raise Sys_error as [open_in] *)
val read_file : string -> Yali_ir.Irmod.t
