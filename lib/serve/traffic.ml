module Rng = Yali_util.Rng
module Telemetry = Yali_exec.Telemetry

type cfg = {
  socket : string;
  clients : int;
  requests : int;
  seed : int;
  n_classes : int;
  per_class : int;
  log : string -> unit;
}

let default =
  {
    socket = "yali.sock";
    clients = 8;
    requests = 200;
    seed = 42;
    n_classes = 8;
    per_class = 3;
    log = ignore;
  }

type result = {
  t_classified : int;
  t_busy : int;
  t_errors : int;
  t_seconds : float;
  t_throughput : float;
  t_p50_us : int;
  t_p99_us : int;
  t_batch_hist : (int * int) list;
  t_deterministic : bool;
}

(* the replay pool: corpus programs lowered exactly as Game0 training
   modules are, pre-encoded once into codec blobs *)
let build_pool cfg =
  let rng = Rng.make cfg.seed in
  let split =
    Yali_dataset.Poj.make rng ~n_classes:cfg.n_classes
      ~train_per_class:cfg.per_class ~test_per_class:0
  in
  let modules, _ =
    Yali_games.Arena.build_modules (Rng.split rng) Yali_games.Game.game0 split
  in
  Array.map (fun (m, _) -> Codec.encode_module m) modules

type flight = {
  client : Client.t;
  mutable pool_ix : int;  (** which pool program is in flight *)
  mutable sent_at : float;
}

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0
  else sorted.(min (n - 1) (int_of_float (float_of_int (n - 1) *. q +. 0.5)))

let run cfg =
  let pool = build_pool cfg in
  if Array.length pool = 0 then invalid_arg "Traffic.run: empty program pool";
  let classified = ref 0 and busy = ref 0 and errors = ref 0 in
  let latencies = ref [] in
  let batch_hist = Hashtbl.create 16 in
  let verdicts = Array.make (Array.length pool) (-1) in
  let deterministic = ref true in
  let next = ref 0 in
  let inflight = Hashtbl.create 16 in
  let send_on (f : flight) ix =
    f.pool_ix <- ix;
    f.sent_at <- Telemetry.clock ();
    Wire.write_frame (Client.fd f.client)
      (Wire.encode_request
         (Wire.Classify { fmt = Wire.Binary; blob = pool.(ix) }))
  in
  let n_conns = min cfg.clients cfg.requests in
  let started = Telemetry.clock () in
  let flights =
    List.init n_conns (fun _ ->
        let f =
          { client = Client.connect cfg.socket; pool_ix = 0; sent_at = 0.0 }
        in
        Hashtbl.replace inflight (Client.fd f.client) f;
        f)
  in
  List.iter
    (fun f ->
      let ix = !next mod Array.length pool in
      incr next;
      send_on f ix)
    flights;
  let done_count () = !classified + !errors in
  let retire f =
    Hashtbl.remove inflight (Client.fd f.client);
    Client.close f.client
  in
  let advance f =
    if !next < cfg.requests then begin
      let ix = !next mod Array.length pool in
      incr next;
      send_on f ix
    end
    else retire f
  in
  while done_count () < cfg.requests && Hashtbl.length inflight > 0 do
    let fds = Hashtbl.fold (fun fd _ acc -> fd :: acc) inflight [] in
    match Unix.select fds [] [] 5.0 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | [], _, _ ->
        cfg.log "traffic: 5s with no replies; giving up";
        Hashtbl.iter (fun _ f -> Client.close f.client) inflight;
        Hashtbl.reset inflight
    | ready, _, _ ->
        List.iter
          (fun fd ->
            match Hashtbl.find_opt inflight fd with
            | None -> ()
            | Some f -> (
                match Wire.read_frame fd with
                | None ->
                    incr errors;
                    retire f
                | Some payload -> (
                    match Wire.decode_response payload with
                    | Wire.Class { cls; batch; _ } ->
                        let us =
                          int_of_float
                            ((Telemetry.clock () -. f.sent_at) *. 1_000_000.)
                        in
                        latencies := us :: !latencies;
                        Hashtbl.replace batch_hist batch
                          (1
                          + Option.value ~default:0
                              (Hashtbl.find_opt batch_hist batch));
                        if verdicts.(f.pool_ix) = -1 then
                          verdicts.(f.pool_ix) <- cls
                        else if verdicts.(f.pool_ix) <> cls then
                          deterministic := false;
                        incr classified;
                        advance f
                    | Wire.Busy ->
                        incr busy;
                        (* backpressure: yield briefly, then replay the
                           same program *)
                        Unix.sleepf 0.001;
                        send_on f f.pool_ix
                    | Wire.Error msg ->
                        cfg.log ("traffic: error reply: " ^ msg);
                        incr errors;
                        advance f
                    | Wire.Pong | Wire.Stats_json _ | Wire.Bye
                    | Wire.Margins_r _ -> ())
                | exception Yali_util.Bin.Corrupt msg ->
                    cfg.log ("traffic: corrupt reply: " ^ msg);
                    incr errors;
                    retire f))
          ready
  done;
  Hashtbl.iter (fun _ f -> Client.close f.client) inflight;
  let seconds = Telemetry.clock () -. started in
  let lat = Array.of_list !latencies in
  Array.sort compare lat;
  {
    t_classified = !classified;
    t_busy = !busy;
    t_errors = !errors;
    t_seconds = seconds;
    t_throughput =
      (if seconds > 0.0 then float_of_int !classified /. seconds else 0.0);
    t_p50_us = percentile lat 0.5;
    t_p99_us = percentile lat 0.99;
    t_batch_hist =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) batch_hist []
      |> List.sort compare;
    t_deterministic = !deterministic;
  }

let result_to_json r =
  let b = Buffer.create 256 in
  Buffer.add_string b "{";
  Printf.bprintf b "\"classified\": %d, " r.t_classified;
  Printf.bprintf b "\"busy\": %d, " r.t_busy;
  Printf.bprintf b "\"errors\": %d, " r.t_errors;
  Printf.bprintf b "\"seconds\": %.4f, " r.t_seconds;
  Printf.bprintf b "\"programs_per_second\": %.1f, " r.t_throughput;
  Printf.bprintf b "\"latency_us\": {\"p50\": %d, \"p99\": %d}, " r.t_p50_us
    r.t_p99_us;
  Buffer.add_string b "\"batch_hist\": {";
  List.iteri
    (fun i (size, count) ->
      Printf.bprintf b "%s\"%d\": %d" (if i = 0 then "" else ", ") size count)
    r.t_batch_hist;
  Buffer.add_string b "}, ";
  Printf.bprintf b "\"deterministic\": %b" r.t_deterministic;
  Buffer.add_string b "}";
  Buffer.contents b
