(** Blocking client for the {!Server} daemon: one request in flight per
    connection, framed as in {!Wire}. *)

type t

(** @raise Unix.Unix_error when the socket cannot be reached *)
val connect : string -> t

val close : t -> unit

val fd : t -> Unix.file_descr

(** Send a request and block for its reply.
    @raise Yali_util.Bin.Corrupt on a malformed reply or mid-frame EOF *)
val request : t -> Wire.request -> Wire.response

(** Classify an IR module (sent as a {!Codec} blob — the fast path). *)
val classify : t -> Yali_ir.Irmod.t -> Wire.response

(** Classify mini-C source text (compiled server-side). *)
val classify_source : t -> string -> Wire.response

(** Ask for the per-class score vector of an IR module
    ({!Yali_ml.Model.margins} server-side; f64 bit-exact over the wire). *)
val margins : t -> Yali_ir.Irmod.t -> Wire.response

val ping : t -> bool

(** The daemon's {!Server.stats_json}. *)
val stats : t -> (string, string) result

(** Ask the daemon to exit; returns once it acknowledges with [Bye]. *)
val shutdown : t -> unit
