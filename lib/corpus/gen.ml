(** See gen.mli. *)

module Rng = Yali_util.Rng
module Pool = Yali_exec.Pool
module Poj = Yali_dataset.Poj
module Genprog2 = Yali_dataset.Genprog2

type spec = { dataset : string; seed : int; n_classes : int; per_class : int }

let spec_to_string (s : spec) : string =
  Printf.sprintf "%s:seed=%d:classes=%d:per=%d" s.dataset s.seed s.n_classes
    s.per_class

let spec_of_string (s : string) : (spec, string) result =
  let field name part =
    let prefix = name ^ "=" in
    if String.length part > String.length prefix
       && String.sub part 0 (String.length prefix) = prefix
    then
      match
        int_of_string_opt
          (String.sub part (String.length prefix)
             (String.length part - String.length prefix))
      with
      | Some v when v >= 0 -> Ok v
      | _ -> Error (Printf.sprintf "bad %s in corpus spec %S" name s)
    else Error (Printf.sprintf "expected %s=<int> in corpus spec %S" name s)
  in
  match String.split_on_char ':' s with
  | [ dataset; seed_p; classes_p; per_p ] -> (
      match (field "seed" seed_p, field "classes" classes_p, field "per" per_p)
      with
      | Ok seed, Ok n_classes, Ok per_class ->
          Ok { dataset; seed; n_classes; per_class }
      | Error e, _, _ | _, Error e, _ | _, _, Error e -> Error e)
  | _ -> Error (Printf.sprintf "malformed corpus spec %S" s)

let size (s : spec) : int = s.n_classes * s.per_class

let plan (s : spec) : Poj.plan =
  match s.dataset with
  | "poj" ->
      Poj.plan (Rng.make s.seed) ~n_classes:s.n_classes
        ~train_per_class:s.per_class ~test_per_class:0
  | "genprog2" ->
      if s.n_classes <> Genprog2.count then
        invalid_arg
          (Printf.sprintf "Corpus.Gen: genprog2 has %d classes, spec says %d"
             Genprog2.count s.n_classes);
      Genprog2.plan (Rng.make s.seed) ~train_per_class:s.per_class
        ~test_per_class:0
  | other ->
      invalid_arg (Printf.sprintf "Corpus.Gen: unknown dataset %S" other)

let lower (l : Poj.labelled) : Yali_ir.Irmod.t =
  Yali_minic.Lower.lower_program l.Poj.src

let generate ~(dir : string) ?(records_per_shard = 1024) (s : spec) : unit =
  if records_per_shard < 1 then
    invalid_arg "Corpus.Gen.generate: records_per_shard < 1";
  let p = plan s in
  let n = Poj.train_size p in
  let n_shards = max 1 ((n + records_per_shard - 1) / records_per_shard) in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let results = Array.make n_shards ([||], 0) in
  Pool.run ~n:n_shards (fun sh ->
      let w = Store.Shard.create ~dir sh in
      let lo = sh * records_per_shard in
      let hi = min n (lo + records_per_shard) in
      for j = lo to hi - 1 do
        let l = Poj.train_sample p j in
        Store.Shard.append w ~label:l.Poj.label (lower l)
      done;
      results.(sh) <- Store.Shard.finish w);
  Store.write_index ~dir ~meta:(spec_to_string s) ~n_classes:s.n_classes
    results

let materialize (s : spec) : (Yali_ir.Irmod.t * int) array =
  let p = plan s in
  Array.init (Poj.train_size p) (fun j ->
      let l = Poj.train_sample p j in
      (lower l, l.Poj.label))
