(** Streaming dataset generation: programs flow from the generator straight
    into a sharded {!Store}, one shard per pool task, nothing resident
    beyond the shard being written (DESIGN.md §12).

    Generation is index-based ({!Yali_dataset.Poj.plan}): record [i] is a
    pure function of the spec, so the streamed corpus and the in-memory
    {!materialize} reference path produce structurally equal modules in the
    same order — the [corpus/*] oracles in {!Yali_check.Oracles} hold the
    two against each other. *)

(** A corpus recipe.  [dataset] is ["poj"] (the first [n_classes] POJ
    problems) or ["genprog2"] (all {!Yali_dataset.Genprog2} problems;
    [n_classes] must equal {!Yali_dataset.Genprog2.count}). *)
type spec = { dataset : string; seed : int; n_classes : int; per_class : int }

(** ["poj:seed=42:classes=104:per=500"] — the string recorded as the
    corpus {!Store.meta} and in registry entries trained from it. *)
val spec_to_string : spec -> string

val spec_of_string : string -> (spec, string) result

(** Total records of a spec. *)
val size : spec -> int

(** The sampling plan behind a spec (train side only; test sets come from
    a separate spec at a different seed).
    @raise Invalid_argument on an unknown dataset or a class count the
    dataset cannot provide *)
val plan : spec -> Yali_dataset.Poj.plan

(** Generate the corpus into [dir] (created when missing), shard-parallel
    over {!Yali_exec.Pool}: shard [s] owns records
    [[s*records_per_shard, (s+1)*records_per_shard)), and every task
    lowers, encodes and appends only its own shard.  Deterministic at any
    [jobs]. *)
val generate : dir:string -> ?records_per_shard:int -> spec -> unit

(** The in-memory reference path: every record of the spec as a lowered
    module with its label, in corpus record order. *)
val materialize : spec -> (Yali_ir.Irmod.t * int) array
