(** See train.mli. *)

module Bin = Yali_util.Bin
module Rng = Yali_util.Rng
module Embedding = Yali_embeddings.Embedding
module Fblock = Yali_ml.Fblock
module Model = Yali_ml.Model
module Registry = Yali_serve.Registry

let features_path ~dir ~embedding =
  Filename.concat dir ("features-" ^ embedding ^ ".yfmb")

let ensure_features ~(embedding : Embedding.t) (r : Store.reader)
    ~(dir : string) : string * int =
  let path = features_path ~dir ~embedding:embedding.Embedding.name in
  let cached =
    if not (Sys.file_exists path) then None
    else
      match Fblock.open_reader path with
      | fr ->
          let src = Fblock.Disk fr in
          let d = Fblock.dim src in
          let ok = Fblock.rows src = Store.length r in
          Fblock.close_reader fr;
          if ok then Some d else None
      | exception Bin.Corrupt _ -> None
  in
  match cached with
  | Some d -> (path, d)
  | None -> (path, Embed.to_file ~embedding r ~out:path)

let train ~(dir : string) ~(embedding : Embedding.t) ~(kind : string)
    ~(seed : int) ?block_rows () : (Registry.entry, string) result =
  match Store.open_ dir with
  | exception Bin.Corrupt m ->
      Error (Printf.sprintf "corrupt corpus in %s: %s" dir m)
  | exception Sys_error m -> Error (Printf.sprintf "no corpus in %s: %s" dir m)
  | r ->
      Fun.protect
        ~finally:(fun () -> Store.close r)
        (fun () ->
          let path, dim = ensure_features ~embedding r ~dir in
          let fr = Fblock.open_reader path in
          Fun.protect
            ~finally:(fun () -> Fblock.close_reader fr)
            (fun () ->
              let ys = Store.labels r in
              let rng = Rng.make seed in
              match
                Model.train_snapshot_stream ?block_rows kind (Rng.split rng)
                  ~n_classes:(Store.n_classes r) (Fblock.Disk fr) ys
              with
              | None -> Error (Printf.sprintf "no snapshot-able model named %s" kind)
              | Some snapshot ->
                  Ok
                    {
                      Registry.meta =
                        {
                          kind;
                          version = 0;
                          embedding = embedding.Embedding.name;
                          n_classes = Store.n_classes r;
                          dim;
                          n_train = Store.length r;
                          seed;
                          source = Store.meta r;
                        };
                      snapshot;
                    }))
