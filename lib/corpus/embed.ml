(** See embed.mli. *)

module Pool = Yali_exec.Pool
module Embedding = Yali_embeddings.Embedding
module Fmat = Yali_ml.Fmat
module Fblock = Yali_ml.Fblock

(* The feature dimension comes from embedding record 0; every other row is
   checked against it (embeddings are fixed-width by construction, this
   guards drift). *)
let dim_of ~(embedding : Embedding.t) (r : Store.reader) : int =
  let _, m0 = Store.get r 0 in
  Array.length (Embedding.to_flat embedding m0)

let to_file ~(embedding : Embedding.t) (r : Store.reader) ~(out : string) :
    int =
  let n = Store.length r in
  let d = if n = 0 then 0 else dim_of ~embedding r in
  Fblock.create_sized out ~n ~d;
  if n > 0 then
    Pool.run ~n:(Store.shard_count r) (fun s ->
        let w = Fblock.Pwrite.open_ out ~d in
        Fun.protect
          ~finally:(fun () -> Fblock.Pwrite.close w)
          (fun () ->
            Store.fold_shard r s ~init:() (fun () i ~label:_ m ->
                let row = Embedding.to_flat embedding m in
                if Array.length row <> d then
                  failwith "Corpus.Embed: embedding dimension drift";
                Fblock.Pwrite.write_row w i row)));
  d

let to_fmat ~(embedding : Embedding.t) (r : Store.reader) :
    Fmat.t * int array =
  let n = Store.length r in
  if n = 0 then (Fmat.create 0 0, [||])
  else begin
    let d = dim_of ~embedding r in
    let x = Fmat.create n d in
    Store.iter r (fun i ~label:_ m ->
        let row = Embedding.to_flat embedding m in
        if Array.length row <> d then
          failwith "Corpus.Embed: embedding dimension drift";
        Array.blit row 0 x.Fmat.data (i * d) d);
    (x, Store.labels r)
  end

(* Graph twin of {!to_fmat}'s streaming side: a random-access {!Gsource}
   whose getter decodes + embeds corpus record [i] on demand, so the DGCNN
   trainer holds one minibatch of graphs at a time (never the corpus). *)
let graph_source ~(embedding : Embedding.t) (r : Store.reader) :
    Yali_ml.Gsource.t =
  let n = Store.length r in
  let feat_dim =
    if n = 0 then 1
    else
      let _, m0 = Store.get r 0 in
      (Embedding.to_graph embedding m0).Yali_embeddings.Graph.feat_dim
  in
  Yali_ml.Gsource.of_fn ~n ~feat_dim (fun i ->
      let _, m = Store.get r i in
      Embedding.to_graph_cached embedding m)
