(** Embed a stored corpus into an on-disk {!Yali_ml.Fblock} feature file,
    shard-parallel: each pool task folds one shard through a private
    descriptor and writes its rows (disjoint by construction) through a
    private {!Yali_ml.Fblock.Pwrite} — deterministic at any [jobs], and
    never more than one module resident per task (DESIGN.md §12). *)

(** [to_file ~embedding r ~out] writes one feature row per corpus record
    (in record order) and returns the feature dimension. *)
val to_file :
  embedding:Yali_embeddings.Embedding.t -> Store.reader -> out:string -> int

(** Sequential in-memory embedding (test corpora, equivalence checks):
    the feature matrix and the label vector, in record order. *)
val to_fmat :
  embedding:Yali_embeddings.Embedding.t -> Store.reader ->
  Yali_ml.Fmat.t * int array

(** Graph-embedding twin of the streamed path: a {!Yali_ml.Gsource.t} that
    decodes and embeds record [i] on demand — the DGCNN's minibatch trainer
    ({!Yali_ml.Model.train_dgcnn_stream}) holds one minibatch of graphs at a
    time, never the whole corpus.  Labels come from [Store.labels].  Uses
    the graph-embedding cache, so repeated epochs re-embed cheaply. *)
val graph_source :
  embedding:Yali_embeddings.Embedding.t -> Store.reader -> Yali_ml.Gsource.t
