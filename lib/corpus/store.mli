(** The sharded on-disk corpus: labelled IR modules in the {!Yali_serve.Codec}
    binary format, split across append-only shard files plus one index
    (DESIGN.md §12).

    Layout under a corpus directory:

    - [corpus.ycix] — magic ["YCIX"], u16 version, the generation meta
      string, class count, a shard table (record count and byte size per
      shard) and a record table (shard, byte offset, payload length, label
      per record).
    - [shard-NNNN.yshd] — magic ["YSHD"], u16 version, u16 shard id, then
      u32-length-framed records, each a u16 label followed by one
      {!Yali_serve.Codec} module blob.

    Shards are written independently (one {!Shard} per generation task, a
    private descriptor each), so generation fans out over
    {!Yali_exec.Pool} while content stays deterministic: record [i] of the
    corpus is fixed by the generation plan, not by scheduling.

    {!open_} validates the whole layout up front — index magic/version,
    every shard's header and exact byte size — and every record read
    re-checks its frame against the index, so a truncated shard or a stale
    index raises {!Yali_util.Bin.Corrupt}, never a crash or a silently
    wrong module. *)

val index_magic : string
val shard_magic : string
val version : int

(** ["corpus.ycix"] within the corpus directory. *)
val index_file : string -> string

(** ["shard-0007.yshd"] within the corpus directory. *)
val shard_file : string -> int -> string

(** The index entry of one record. *)
type entry = { e_shard : int; e_off : int; e_len : int; e_label : int }

(** One shard under construction — the unit of parallel generation. *)
module Shard : sig
  type t

  val create : dir:string -> int -> t

  (** Encode and frame one labelled module at the end of the shard. *)
  val append : t -> label:int -> Yali_ir.Irmod.t -> unit

  (** Close the shard; its index entries (in append order) and final byte
      size, ready for {!write_index}. *)
  val finish : t -> entry array * int
end

(** Write [corpus.ycix] from per-shard results, in shard order (shard [s]
    holds the records preceding shard [s+1]'s).  Atomic: the index is
    renamed into place, so a crashed generation leaves no valid corpus. *)
val write_index :
  dir:string -> meta:string -> n_classes:int -> (entry array * int) array ->
  unit

(** Sequential convenience writer (tests, small corpora): appends roll
    over into a fresh shard every [records_per_shard] records. *)
module Writer : sig
  type t

  val create :
    dir:string -> meta:string -> n_classes:int -> ?records_per_shard:int ->
    unit -> t

  val append : t -> label:int -> Yali_ir.Irmod.t -> unit

  (** Seal the open shard and write the index. *)
  val close : t -> unit
end

type reader

(** Open and validate a corpus directory.
    @raise Yali_util.Bin.Corrupt on bad magic, version skew, a missing
    shard, or a shard whose size contradicts the index (truncation, stale
    index); @raise Sys_error when the index file is missing *)
val open_ : string -> reader

val close : reader -> unit

(** The generation meta string recorded at write time (a
    {!Gen.spec} rendering for generated corpora). *)
val meta : reader -> string

val n_classes : reader -> int
val length : reader -> int
val shard_count : reader -> int

(** Total shard bytes (as recorded in the index). *)
val total_bytes : reader -> int

(** Label of record [i], from the index alone (no decode). *)
val label : reader -> int -> int

(** All labels in record order, from the index alone. *)
val labels : reader -> int array

(** Decode record [i].
    @raise Yali_util.Bin.Corrupt when the shard frame contradicts the
    index or the payload is malformed *)
val get : reader -> int -> int * Yali_ir.Irmod.t

(** [iter r f] calls [f i ~label m] for every record in order. *)
val iter : reader -> (int -> label:int -> Yali_ir.Irmod.t -> unit) -> unit

(** [fold_shard r s ~init f] folds over shard [s]'s records (with their
    global record indices, in offset order) through a private descriptor —
    safe to run for distinct shards on distinct domains (the parallel
    embedding path). *)
val fold_shard :
  reader -> int -> init:'a ->
  ('a -> int -> label:int -> Yali_ir.Irmod.t -> 'a) -> 'a
