(** See store.mli. *)

module Bin = Yali_util.Bin
module Codec = Yali_serve.Codec

let index_magic = "YCIX"
let shard_magic = "YSHD"
let version = 1
let shard_header_bytes = 4 + 2 + 2

let corrupt fmt = Printf.ksprintf (fun m -> raise (Bin.Corrupt m)) fmt

let index_file dir = Filename.concat dir "corpus.ycix"
let shard_file dir s = Filename.concat dir (Printf.sprintf "shard-%04d.yshd" s)

type entry = { e_shard : int; e_off : int; e_len : int; e_label : int }

(* -- shard writer ------------------------------------------------------------ *)

module Shard = struct
  type t = {
    id : int;
    oc : out_channel;
    mutable entries : entry list;  (* reversed *)
    mutable count : int;
  }

  let create ~dir (id : int) : t =
    let oc = open_out_bin (shard_file dir id) in
    let b = Buffer.create shard_header_bytes in
    Buffer.add_string b shard_magic;
    Bin.w_u16 b version;
    Bin.w_u16 b id;
    output_string oc (Buffer.contents b);
    { id; oc; entries = []; count = 0 }

  let append (t : t) ~(label : int) (m : Yali_ir.Irmod.t) : unit =
    let blob = Codec.encode_module m in
    let payload = Buffer.create (2 + String.length blob) in
    Bin.w_u16 payload label;
    Buffer.add_string payload blob;
    let len = Buffer.length payload in
    let off = pos_out t.oc in
    let frame = Buffer.create 4 in
    Bin.w_u32 frame len;
    output_string t.oc (Buffer.contents frame);
    Buffer.output_buffer t.oc payload;
    t.entries <-
      { e_shard = t.id; e_off = off; e_len = len; e_label = label } :: t.entries;
    t.count <- t.count + 1

  let finish (t : t) : entry array * int =
    let bytes = pos_out t.oc in
    close_out t.oc;
    let arr = Array.make t.count { e_shard = 0; e_off = 0; e_len = 0; e_label = 0 } in
    List.iteri (fun k e -> arr.(t.count - 1 - k) <- e) t.entries;
    (arr, bytes)
end

(* -- index ------------------------------------------------------------------- *)

let write_index ~dir ~(meta : string) ~(n_classes : int)
    (shards : (entry array * int) array) : unit =
  let b = Buffer.create 4096 in
  Buffer.add_string b index_magic;
  Bin.w_u16 b version;
  Bin.w_str b meta;
  Bin.w_u32 b n_classes;
  Bin.w_u32 b (Array.length shards);
  Array.iter
    (fun (entries, bytes) ->
      Bin.w_u32 b (Array.length entries);
      Bin.w_int b bytes)
    shards;
  let n = Array.fold_left (fun a (es, _) -> a + Array.length es) 0 shards in
  Bin.w_u32 b n;
  Array.iter
    (fun (entries, _) ->
      Array.iter
        (fun e ->
          Bin.w_u16 b e.e_shard;
          Bin.w_int b e.e_off;
          Bin.w_u32 b e.e_len;
          Bin.w_u16 b e.e_label)
        entries)
    shards;
  let tmp = index_file dir ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Buffer.contents b));
  Sys.rename tmp (index_file dir)

(* -- sequential writer ------------------------------------------------------- *)

module Writer = struct
  type t = {
    dir : string;
    w_meta : string;
    w_classes : int;
    per_shard : int;
    mutable shard : Shard.t;
    mutable done_ : (entry array * int) list;  (* reversed *)
    mutable in_shard : int;
  }

  let create ~dir ~(meta : string) ~(n_classes : int)
      ?(records_per_shard = 1024) () : t =
    if records_per_shard < 1 then
      invalid_arg "Store.Writer.create: records_per_shard < 1";
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    {
      dir;
      w_meta = meta;
      w_classes = n_classes;
      per_shard = records_per_shard;
      shard = Shard.create ~dir 0;
      done_ = [];
      in_shard = 0;
    }

  let roll (t : t) : unit =
    t.done_ <- Shard.finish t.shard :: t.done_;
    t.shard <- Shard.create ~dir:t.dir (List.length t.done_);
    t.in_shard <- 0

  let append (t : t) ~(label : int) (m : Yali_ir.Irmod.t) : unit =
    if t.in_shard >= t.per_shard then roll t;
    Shard.append t.shard ~label m;
    t.in_shard <- t.in_shard + 1

  let close (t : t) : unit =
    t.done_ <- Shard.finish t.shard :: t.done_;
    write_index ~dir:t.dir ~meta:t.w_meta ~n_classes:t.w_classes
      (Array.of_list (List.rev t.done_))
end

(* -- reader ------------------------------------------------------------------ *)

type reader = {
  dir : string;
  r_meta : string;
  r_classes : int;
  entries : entry array;
  shard_bytes : int array;
  chans : in_channel option array;  (* lazily opened, sequential use only *)
}

let read_file path : string =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Validate one shard file against the index: existence, exact size, header. *)
let check_shard dir s ~(bytes : int) : unit =
  let path = shard_file dir s in
  let ic =
    try open_in_bin path
    with Sys_error _ -> corrupt "corpus shard %d missing (%s)" s path
  in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let len = in_channel_length ic in
      if len <> bytes then
        corrupt "corpus shard %d: %d bytes on disk, index says %d (truncated or stale)"
          s len bytes;
      if len < shard_header_bytes then
        corrupt "corpus shard %d truncated at %d bytes" s len;
      let r = Bin.reader (really_input_string ic shard_header_bytes) in
      let m = Bin.r_raw r 4 in
      if m <> shard_magic then corrupt "bad shard magic %S in shard %d" m s;
      let v = Bin.r_u16 r in
      if v <> version then
        corrupt "shard version skew: got %d, expected %d" v version;
      let id = Bin.r_u16 r in
      if id <> s then corrupt "shard file %d says it is shard %d" s id)

let open_ (dir : string) : reader =
  let r = Bin.reader (read_file (index_file dir)) in
  let m = Bin.r_raw r 4 in
  if m <> index_magic then corrupt "bad corpus index magic %S" m;
  let v = Bin.r_u16 r in
  if v <> version then
    corrupt "corpus index version skew: got %d, expected %d" v version;
  let meta = Bin.r_str r in
  let n_classes = Bin.r_u32 r in
  let n_shards = Bin.r_u32 r in
  let shard_counts = Array.make n_shards 0 in
  let shard_bytes = Array.make n_shards 0 in
  for s = 0 to n_shards - 1 do
    shard_counts.(s) <- Bin.r_u32 r;
    shard_bytes.(s) <- Bin.r_int r
  done;
  let n = Bin.r_u32 r in
  if n <> Array.fold_left ( + ) 0 shard_counts then
    corrupt "corpus index: %d records but shard table sums to %d" n
      (Array.fold_left ( + ) 0 shard_counts);
  let entries =
    Array.init n (fun _ ->
        let e_shard = Bin.r_u16 r in
        let e_off = Bin.r_int r in
        let e_len = Bin.r_u32 r in
        let e_label = Bin.r_u16 r in
        { e_shard; e_off; e_len; e_label })
  in
  Bin.expect_end r;
  Array.iter
    (fun e ->
      if e.e_shard >= n_shards then
        corrupt "corpus index: record points at shard %d of %d" e.e_shard
          n_shards)
    entries;
  for s = 0 to n_shards - 1 do
    check_shard dir s ~bytes:shard_bytes.(s)
  done;
  {
    dir;
    r_meta = meta;
    r_classes = n_classes;
    entries;
    shard_bytes;
    chans = Array.make (max 1 n_shards) None;
  }

let close (r : reader) : unit =
  Array.iteri
    (fun i c ->
      Option.iter close_in_noerr c;
      r.chans.(i) <- None)
    r.chans

let meta r = r.r_meta
let n_classes r = r.r_classes
let length r = Array.length r.entries
let shard_count r = Array.length r.shard_bytes
let total_bytes r = Array.fold_left ( + ) 0 r.shard_bytes
let label r i = r.entries.(i).e_label
let labels r = Array.map (fun e -> e.e_label) r.entries

(* Read the record behind entry [e] through channel [ic], re-checking the
   frame against the index. *)
let read_entry (ic : in_channel) (e : entry) : int * Yali_ir.Irmod.t =
  seek_in ic e.e_off;
  let frame =
    try really_input_string ic 4
    with End_of_file -> corrupt "corpus shard %d truncated mid-frame" e.e_shard
  in
  let len = Bin.r_u32 (Bin.reader frame) in
  if len <> e.e_len then
    corrupt "corpus shard %d: frame of %d bytes where the index says %d"
      e.e_shard len e.e_len;
  let payload =
    try really_input_string ic e.e_len
    with End_of_file -> corrupt "corpus shard %d truncated mid-record" e.e_shard
  in
  let pr = Bin.reader payload in
  let lbl = Bin.r_u16 pr in
  if lbl <> e.e_label then
    corrupt "corpus shard %d: record label %d where the index says %d"
      e.e_shard lbl e.e_label;
  let m = Codec.decode_module (Bin.r_raw pr (String.length payload - 2)) in
  Bin.expect_end pr;
  (lbl, m)

let chan (r : reader) (s : int) : in_channel =
  match r.chans.(s) with
  | Some ic -> ic
  | None ->
      let ic = open_in_bin (shard_file r.dir s) in
      r.chans.(s) <- Some ic;
      ic

let get (r : reader) (i : int) : int * Yali_ir.Irmod.t =
  let e = r.entries.(i) in
  read_entry (chan r e.e_shard) e

let iter (r : reader) (f : int -> label:int -> Yali_ir.Irmod.t -> unit) : unit =
  Array.iteri
    (fun i e ->
      let lbl, m = read_entry (chan r e.e_shard) e in
      f i ~label:lbl m)
    r.entries

let fold_shard (r : reader) (s : int) ~(init : 'a)
    (f : 'a -> int -> label:int -> Yali_ir.Irmod.t -> 'a) : 'a =
  (* private channel: distinct shards may be folded on distinct domains *)
  let ic = open_in_bin (shard_file r.dir s) in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let mine = ref [] in
      Array.iteri
        (fun i e -> if e.e_shard = s then mine := (i, e) :: !mine)
        r.entries;
      let mine =
        List.sort (fun (_, a) (_, b) -> compare a.e_off b.e_off) !mine
      in
      List.fold_left
        (fun acc (i, e) ->
          let lbl, m = read_entry ic e in
          f acc i ~label:lbl m)
        init mine)
