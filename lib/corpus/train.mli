(** Out-of-core training from a stored corpus: embed (or reuse) the on-disk
    feature file, then stream it through
    {!Yali_ml.Model.train_snapshot_stream}.  The resulting registry entry
    records the corpus meta string as its provenance ([meta.source]), so a
    published model names the exact recipe that produced it
    (DESIGN.md §12). *)

(** The feature-file path for an embedding within a corpus directory
    (["<dir>/features-<embedding>.yfmb"]). *)
val features_path : dir:string -> embedding:string -> string

(** Embed the corpus into its feature file unless a valid one with the
    right shape is already there; the file path and feature dimension. *)
val ensure_features :
  embedding:Yali_embeddings.Embedding.t -> Store.reader -> dir:string ->
  string * int

(** [train ~dir ~embedding ~kind ~seed ()] opens the corpus at [dir] and
    trains [kind] out of core ([version 0] until published).  [block_rows]
    caps the feature rows resident at once.  [Error] covers a missing or
    corrupt corpus and unknown model kinds. *)
val train :
  dir:string ->
  embedding:Yali_embeddings.Embedding.t ->
  kind:string ->
  seed:int ->
  ?block_rows:int ->
  unit ->
  (Yali_serve.Registry.entry, string) result
