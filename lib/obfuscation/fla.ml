(** Control-flow flattening, after O-LLVM's [-fla] pass.

    Every basic block becomes a case of a switch inside a dispatch loop; a
    "next block" variable, kept in memory, selects the successor at the end
    of each case.  The CFG of the flattened function is a star: all
    structure of the original control flow disappears — though, as the paper
    notes, the *histogram* of opcodes barely changes, which is why
    histogram-based classifiers see through flattening (§4.3).

    Precondition: phi-free functions (the pass runs on [-O0]-style code).
    Switch terminators are first lowered into compare-and-branch chains. *)

open Yali_ir
module Rng = Yali_util.Rng

let has_phis (f : Func.t) =
  List.exists
    (fun (i : Instr.t) -> match i.kind with Instr.Phi _ -> true | _ -> false)
    (Func.instrs f)

(** Replace switch terminators with chains of [icmp eq]/[condbr] blocks. *)
let lower_switches (f : Func.t) : Func.t =
  let next = ref f.next_id in
  let fresh () =
    let id = !next in
    incr next;
    id
  in
  let next_label = ref f.next_label in
  let fresh_label hint =
    let l = Printf.sprintf "%s.%d" hint !next_label in
    incr next_label;
    l
  in
  let blocks =
    List.concat_map
      (fun (b : Block.t) ->
        match b.term with
        | Instr.Switch (v, default, cases) ->
            (* b ends with a test for the first case; continuation blocks
               test the remaining cases *)
            let rec chain cases =
              match cases with
              | [] -> (default, [])
              | (k, l) :: rest ->
                  let cont, blocks = chain rest in
                  let test_label = fresh_label (b.label ^ ".swtest") in
                  let c = fresh () in
                  let test_block =
                    Block.make ~label:test_label
                      ~instrs:
                        [
                          Instr.mk ~id:c ~ty:Types.I1
                            (Instr.Icmp (Instr.Eq, v, Value.IConst (Types.I64, k)));
                        ]
                      ~term:(Instr.CondBr (Value.Var c, l, cont))
                  in
                  (test_label, test_block :: blocks)
            in
            let first, chain_blocks = chain cases in
            [ { b with term = Instr.Br first } ] @ chain_blocks
        | _ -> [ b ])
      f.blocks
  in
  { f with blocks; next_id = !next; next_label = !next_label }

(** Move every alloca into the entry block so stack slots keep dominating
    their accesses once the CFG is a star.  Lowered code initializes each
    slot before any load on every path, so widening a slot's lifetime to
    the whole function is unobservable. *)
let hoist_allocas (f : Func.t) : Func.t =
  let entry_label = (Func.entry f).label in
  let hoisted = ref [] in
  let stripped =
    List.map
      (fun (b : Block.t) ->
        if b.label = entry_label then b
        else
          let allocas, others =
            List.partition
              (fun (i : Instr.t) ->
                match i.kind with Instr.Alloca _ -> true | _ -> false)
              b.instrs
          in
          hoisted := !hoisted @ allocas;
          { b with instrs = others })
      f.blocks
  in
  {
    f with
    blocks =
      List.map
        (fun (b : Block.t) ->
          if b.label = entry_label then
            { b with instrs = b.instrs @ !hoisted }
          else b)
        stripped;
  }

(** O-LLVM's reg2mem prerequisite: an SSA value defined in a non-entry
    block and used in another block would no longer dominate its uses
    after flattening (all inter-block edges get rerouted through the
    dispatcher).  Demote each such value to a fresh entry-block stack
    slot: store once after the definition, reload in front of every
    out-of-block use. *)
let demote_cross_block (f : Func.t) : Func.t =
  let next = ref f.next_id in
  let fresh () =
    let id = !next in
    incr next;
    id
  in
  let entry_label = (Func.entry f).label in
  let def_block : (int, string) Hashtbl.t = Hashtbl.create 64 in
  let def_ty : (int, Types.t) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (b : Block.t) ->
      List.iter
        (fun (i : Instr.t) ->
          if Instr.defines i then begin
            Hashtbl.replace def_block i.id b.label;
            Hashtbl.replace def_ty i.id i.ty
          end)
        b.instrs)
    f.blocks;
  (* slot table: demoted id -> (slot id, value type) *)
  let slot : (int, int * Types.t) Hashtbl.t = Hashtbl.create 16 in
  let note_use here v =
    match v with
    | Value.Var id -> (
        match Hashtbl.find_opt def_block id with
        | Some dl when dl <> here && dl <> entry_label ->
            if not (Hashtbl.mem slot id) then
              Hashtbl.replace slot id (fresh (), Hashtbl.find def_ty id)
        | _ -> ())
    | _ -> ()
  in
  List.iter
    (fun (b : Block.t) ->
      List.iter
        (fun (i : Instr.t) -> List.iter (note_use b.label) (Instr.operands i))
        b.instrs;
      List.iter (note_use b.label) (Instr.terminator_operands b.term))
    f.blocks;
  if Hashtbl.length slot = 0 then f
  else
    let reload (b : Block.t) acc v =
      match v with
      | Value.Var id
        when Hashtbl.mem slot id
             && Hashtbl.find_opt def_block id <> Some b.label ->
          let s, ty = Hashtbl.find slot id in
          let l = fresh () in
          acc := Instr.mk ~id:l ~ty (Instr.Load (Value.Var s)) :: !acc;
          Value.Var l
      | _ -> v
    in
    let blocks =
      List.map
        (fun (b : Block.t) ->
          let instrs =
            List.concat_map
              (fun (i : Instr.t) ->
                let loads = ref [] in
                let i' = Instr.map_operands (reload b loads) i in
                let spill =
                  if Instr.defines i && Hashtbl.mem slot i.id then
                    let s, _ = Hashtbl.find slot i.id in
                    [
                      Instr.mk_void
                        (Instr.Store (Value.Var i.id, Value.Var s));
                    ]
                  else []
                in
                List.rev !loads @ (i' :: spill))
              b.instrs
          in
          let tloads = ref [] in
          let term =
            Instr.map_terminator_operands (reload b tloads) b.term
          in
          { b with instrs = instrs @ List.rev !tloads; term })
        f.blocks
    in
    let allocas =
      Hashtbl.fold
        (fun _id (s, ty) acc ->
          Instr.mk ~id:s ~ty:(Types.Ptr ty) (Instr.Alloca ty) :: acc)
        slot []
      |> List.sort (fun (a : Instr.t) (b : Instr.t) -> compare a.id b.id)
    in
    let blocks =
      List.map
        (fun (b : Block.t) ->
          if b.label = entry_label then
            { b with instrs = b.instrs @ allocas }
          else b)
        blocks
    in
    { f with blocks; next_id = !next }

let run_func (rng : Rng.t) (f : Func.t) : Func.t =
  if has_phis f || List.length f.blocks < 2 then f
  else
    let f = lower_switches f in
    let f = hoist_allocas f in
    let f = demote_cross_block f in
    let entry = Func.entry f in
    let rest = List.tl f.blocks in
    (* entry must not be a branch target *)
    let entry_is_target =
      List.exists
        (fun (b : Block.t) -> List.mem entry.label (Block.successors b))
        f.blocks
    in
    if entry_is_target then f
    else
      let next = ref f.next_id in
      let fresh () =
        let id = !next in
        incr next;
        id
      in
      (* randomized case numbers *)
      let labels = List.map (fun (b : Block.t) -> b.label) rest in
      let shuffled = Rng.shuffle rng labels in
      let case_of : (string, int) Hashtbl.t = Hashtbl.create 16 in
      List.iteri (fun i l -> Hashtbl.replace case_of l i) shuffled;
      let sw_slot = fresh () in
      let dispatch_label = "fla.dispatch" in
      let case_const l = Value.i32 (Hashtbl.find case_of l) in
      (* rewrite a terminator into "store next-case; br dispatcher" *)
      let reroute (instrs : Instr.t list) (term : Instr.terminator) :
          Instr.t list * Instr.terminator =
        match term with
        | Instr.Br l ->
            ( instrs
              @ [ Instr.mk_void (Instr.Store (case_const l, Value.Var sw_slot)) ],
              Instr.Br dispatch_label )
        | Instr.CondBr (c, t, e) ->
            let sel = fresh () in
            ( instrs
              @ [
                  Instr.mk ~id:sel ~ty:Types.I32
                    (Instr.Select (c, case_const t, case_const e));
                  Instr.mk_void (Instr.Store (Value.Var sel, Value.Var sw_slot));
                ],
              Instr.Br dispatch_label )
        | (Instr.Ret _ | Instr.Unreachable) as t -> (instrs, t)
        | Instr.Switch _ -> (instrs, term) (* lowered away above *)
      in
      let entry_instrs, entry_term =
        let alloca =
          Instr.mk ~id:sw_slot ~ty:(Types.Ptr Types.I32) (Instr.Alloca Types.I32)
        in
        reroute (entry.instrs @ [ alloca ]) entry.term
      in
      let entry' = { entry with instrs = entry_instrs; term = entry_term } in
      let flattened =
        List.map
          (fun (b : Block.t) ->
            let instrs, term = reroute b.instrs b.term in
            { b with instrs; term })
          rest
      in
      (* the dispatcher *)
      let loaded = fresh () in
      let cases =
        List.map (fun l -> (Int64.of_int (Hashtbl.find case_of l), l)) labels
      in
      let default = match labels with l :: _ -> l | [] -> entry.label in
      let dispatcher =
        Block.make ~label:dispatch_label
          ~instrs:[ Instr.mk ~id:loaded ~ty:Types.I32 (Instr.Load (Value.Var sw_slot)) ]
          ~term:(Instr.Switch (Value.Var loaded, default, cases))
      in
      { f with blocks = entry' :: dispatcher :: flattened; next_id = !next }

let run (rng : Rng.t) (m : Irmod.t) : Irmod.t =
  Irmod.map_funcs (run_func rng) m
