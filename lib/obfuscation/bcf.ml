(** Bogus control flow, after O-LLVM's [-bcf] pass.

    Selected basic blocks are guarded by an opaque predicate over two module
    globals [__bcf_x] and [__bcf_y] (both 0 at runtime, but the optimizer
    cannot know their values): [x * (x - 1) % 2 == 0 || y < 10] is always
    true, so the "true" edge to the real block is always taken; the "false"
    edge leads to a never-executed bogus clone of the block.  Because the
    predicate reads memory, standard optimizations do not fold it away —
    which is why, in the paper, bcf resists [-O3] normalization (§4.4).

    Precondition: the function must be phi-free (the pass is meant for
    [-O0]-style code, like the original, which runs before SSA
    construction). *)

open Yali_ir
module Rng = Yali_util.Rng

let x_global = "__bcf_x"
let y_global = "__bcf_y"

let has_phis (f : Func.t) =
  List.exists
    (fun (i : Instr.t) -> match i.kind with Instr.Phi _ -> true | _ -> false)
    (Func.instrs f)

(* A bogus clone of a block: pure instructions are duplicated with fresh ids
   (and binary opcodes perturbed), effectful ones dropped.  The clone is
   never executed, so its semantics are irrelevant; it exists to confuse
   static analyses and histogram-style embeddings. *)
let make_bogus ~(fresh : unit -> int) (rng : Rng.t) (b : Block.t)
    ~(target : string) ~(label : string) : Block.t =
  let remap = Hashtbl.create 8 in
  (* Effectful instructions are dropped from the clone, so a reference to
     one would point into the sibling ".real" block, which does not
     dominate the bogus block.  The clone is dead code: any well-formed
     placeholder of the right kind will do. *)
  let local_ty = Hashtbl.create 8 in
  List.iter
    (fun (i : Instr.t) ->
      if Instr.defines i then Hashtbl.replace local_ty i.id i.ty)
    b.instrs;
  let placeholder (ty : Types.t) =
    match ty with
    | Types.F64 -> Value.FConst 0.0
    | Types.Ptr _ -> Value.Global x_global
    | ty -> Value.IConst (ty, 7L)
  in
  let rewrite v =
    match v with
    | Value.Var id -> (
        match Hashtbl.find_opt remap id with
        | Some id' -> Value.Var id'
        | None -> (
            match Hashtbl.find_opt local_ty id with
            | Some ty -> placeholder ty
            | None -> v))
    | _ -> v
  in
  let perturb (op : Instr.ibin) : Instr.ibin =
    match op with
    | Instr.Add -> if Rng.bool rng then Instr.Sub else Instr.Xor
    | Instr.Sub -> if Rng.bool rng then Instr.Add else Instr.Or
    | Instr.Mul -> Instr.Add
    | other -> other
  in
  let instrs =
    List.filter_map
      (fun (i : Instr.t) ->
        if Instr.defines i && Instr.is_pure i then
          match i.kind with
          | Instr.Phi _ | Instr.Alloca _ -> None
          | Instr.Ibin (op, a, b') ->
              let id = fresh () in
              Hashtbl.replace remap i.id id;
              Some
                (Instr.mk ~id ~ty:i.ty
                   (Instr.Ibin (perturb op, rewrite a, rewrite b')))
          | _ ->
              let id = fresh () in
              Hashtbl.replace remap i.id id;
              Some { (Instr.map_operands rewrite i) with id }
        else None)
      b.instrs
  in
  Block.make ~label ~instrs ~term:(Instr.Br target)

(* The opaque predicate block: always evaluates to true at runtime. *)
let make_predicate ~(fresh : unit -> int) ~(label : string)
    ~(real : string) ~(bogus : string) : Block.t =
  let x = fresh () and xm1 = fresh () and prod = fresh () and rem = fresh () in
  let c1 = fresh () and y = fresh () and c2 = fresh () and c = fresh () in
  let i32 = Types.I32 in
  let instrs =
    [
      Instr.mk ~id:x ~ty:i32 (Instr.Load (Value.Global x_global));
      Instr.mk ~id:xm1 ~ty:i32
        (Instr.Ibin (Instr.Sub, Value.Var x, Value.i32 1));
      Instr.mk ~id:prod ~ty:i32
        (Instr.Ibin (Instr.Mul, Value.Var x, Value.Var xm1));
      Instr.mk ~id:rem ~ty:i32
        (Instr.Ibin (Instr.SRem, Value.Var prod, Value.i32 2));
      Instr.mk ~id:c1 ~ty:Types.I1
        (Instr.Icmp (Instr.Eq, Value.Var rem, Value.i32 0));
      Instr.mk ~id:y ~ty:i32 (Instr.Load (Value.Global y_global));
      Instr.mk ~id:c2 ~ty:Types.I1
        (Instr.Icmp (Instr.Slt, Value.Var y, Value.i32 10));
      Instr.mk ~id:c ~ty:Types.I1
        (Instr.Ibin (Instr.Or, Value.Var c1, Value.Var c2));
    ]
  in
  Block.make ~label ~instrs ~term:(Instr.CondBr (Value.Var c, real, bogus))

let run_func ?(probability = 0.5) (rng : Rng.t) (f : Func.t) : Func.t =
  if has_phis f then f
  else
    let entry_label = (Func.entry f).label in
    let next = ref f.next_id in
    let fresh () =
      let id = !next in
      incr next;
      id
    in
    let next_label = ref f.next_label in
    let fresh_label hint =
      let l = Printf.sprintf "%s.%d" hint !next_label in
      incr next_label;
      l
    in
    let blocks =
      List.concat_map
        (fun (b : Block.t) ->
          if b.label = entry_label || not (Rng.bernoulli rng probability) then
            [ b ]
          else
            let real = fresh_label (b.label ^ ".real") in
            let bogus = fresh_label (b.label ^ ".bogus") in
            let pred = make_predicate ~fresh ~label:b.label ~real ~bogus in
            let real_block = { b with label = real } in
            let bogus_block = make_bogus ~fresh rng b ~target:real ~label:bogus in
            [ pred; real_block; bogus_block ])
        f.blocks
    in
    { f with blocks; next_id = !next; next_label = !next_label }

(** Ensure the opaque-predicate globals exist in the module. *)
let add_globals (m : Irmod.t) : Irmod.t =
  let have n = Irmod.find_global m n <> None in
  let globals =
    m.globals
    @ (if have x_global then []
       else [ { Irmod.gname = x_global; gty = Types.I32; ginit = [| 0L |] } ])
    @
    if have y_global then []
    else [ { Irmod.gname = y_global; gty = Types.I32; ginit = [| 0L |] } ]
  in
  { m with globals }

let run ?probability (rng : Rng.t) (m : Irmod.t) : Irmod.t =
  let m = add_globals m in
  Irmod.map_funcs (run_func ?probability rng) m
