(** The flat-input truncation of Zhang et al.'s DGCNN that the paper calls
    [cnn] (§3.2): 1-D convolution, max pooling, a second convolution, dense
    + dropout, dense classifier.  On inputs too narrow for the convolutional
    front end, only the dense tail is used. *)

type t

type params = { epochs : int; lr : float }

val default_params : params

val train :
  ?params:params ->
  Yali_util.Rng.t ->
  n_classes:int ->
  Fmat.t ->
  int array ->
  t

val predict : t -> float array -> int

(** Classify every row of a flat matrix. *)
val predict_batch : t -> Fmat.t -> int array

val size_bytes : t -> int
