(** The flat-input truncation of Zhang et al.'s DGCNN that the paper calls
    [cnn] (§3.2): 1-D convolution, max pooling, a second convolution, dense
    + dropout, dense classifier.  On inputs too narrow for the convolutional
    front end, only the dense tail is used.

    Trained by minibatch SGD through the batched {!Nn.train_batch} kernel —
    bit-identical at any [--jobs] and to the frozen naive trainer in
    [Reference.Cnn] (the ml/nn-kernel-vs-reference oracle). *)

type t

type params = { epochs : int; lr : float; batch : int }

val default_params : params

val train :
  ?params:params ->
  Yali_util.Rng.t ->
  n_classes:int ->
  Fmat.t ->
  int array ->
  t

(** Minibatch SGD over streamed blocks (the out-of-core path of DESIGN.md
    §12/§15); per-epoch shuffles and minibatches stay within a block.  On a
    source that fits one block the model is bit-identical to {!train}. *)
val train_stream :
  ?params:params ->
  ?block_rows:int ->
  Yali_util.Rng.t ->
  n_classes:int ->
  Fblock.source ->
  int array ->
  t

val predict : t -> float array -> int

(** Per-class raw logits; [argmax (margins t x)] is exactly
    [predict t x]. *)
val margins : t -> float array -> float array

(** Classify every row of a flat matrix. *)
val predict_batch : t -> Fmat.t -> int array

val size_bytes : t -> int

(** Training internals, exposed for the frozen reference trainer
    ([Reference.Cnn]) and the differential tests: the architecture builder
    (consumes the rng exactly as {!train}'s initialisation does),
    reassembly from parts, and the parameter dump compared for
    bit-identity. *)

val build_net : Yali_util.Rng.t -> d_in:int -> n_classes:int -> Nn.t

val of_parts : scaler:Features.scaler -> net:Nn.t -> t
val dump_weights : t -> float array array

(** Serialise bit-exactly (scaler + all layers, conv included). *)
val to_bin : Buffer.t -> t -> unit

(** @raise Yali_util.Bin.Corrupt on malformed input *)
val of_bin : Yali_util.Bin.r -> t
