(** Zhang et al.'s Deep Graph Convolutional Neural Network (AAAI'18), the
    [dgcnn] model of the paper (§3.2):

    1. four graph-convolution layers (channel widths 32, 32, 32 and 1) with
       hyperbolic-tangent activation: Z_l = tanh(D⁻¹ Â Z_(l-1) W_l);
    2. sort pooling on the last (1-wide) channel, keeping the top-k nodes;
    3. a one-dimensional convolution;
    4. max pooling;
    5. a second one-dimensional convolution;
    6. a dense layer with dropout; and
    7. a final dense classification layer.

    Backpropagation runs end-to-end, through the convolutional head, the
    (fixed-permutation) sort pooling, and the graph convolutions.  Channel
    widths are scaled down from the original (32 → 16) so the model trains
    in seconds on synthetic corpora; the architecture is otherwise as
    published.

    Training is minibatch SGD (DESIGN.md §15): per batch, every graph's
    forward pass runs in parallel shards over {!Yali_exec.Pool}, the pooled
    flat vectors feed one batched {!Nn.train_batch} step of the head, and
    the graph-convolution gradients are accumulated per shard and merged in
    a fixed tree order — bit-identical at any [--jobs] and to the frozen
    naive trainer in [Reference.Dgcnn].  {!train_source} consumes a
    {!Gsource.t} (graphs streamed from a corpus store); {!train} is the
    in-memory special case. *)

module Rng = Yali_util.Rng
module Pool = Yali_exec.Pool
module Graph = Yali_embeddings.Graph

type params = {
  gc_channels : int list;  (** graph-conv widths; last must be 1 *)
  sortpool_k : int;
  epochs : int;
  lr : float;
  max_nodes : int;
      (** graphs larger than this are truncated to a prefix subgraph — a
          sampling cap that bounds the per-graph cost on heavily obfuscated
          inputs (flattened/bogus code can be 5x the original size) *)
  batch : int;  (** graphs per minibatch *)
}

let default_params =
  {
    gc_channels = [ 16; 16; 16; 1 ];
    sortpool_k = 16;
    epochs = 24;
    lr = 0.02;
    max_nodes = 384;
    batch = 32;
  }

type t = {
  params : params;
  gc_weights : Matrix.t list;  (** one per graph-conv layer *)
  head : Nn.t;
  feat_dim : int;
  n_classes : int;
}

(* Propagation: Y = D^-1 (A + I) X, computed over adjacency lists. *)
let propagate (adj : int list array) (x : Matrix.t) : Matrix.t =
  let n = x.Matrix.rows and d = x.Matrix.cols in
  let y = Matrix.create n d in
  for i = 0 to n - 1 do
    let neigh = i :: adj.(i) in
    let deg = float_of_int (List.length neigh) in
    List.iter
      (fun j ->
        for c = 0 to d - 1 do
          Matrix.set y i c (Matrix.get y i c +. (Matrix.get x j c /. deg))
        done)
      neigh
  done;
  y

(* Transposed propagation for the backward pass: given dY, returns dX where
   Y = P X and P_(i,j) = 1/deg(i) for j in N(i) u {i}. *)
let propagate_t (adj : int list array) (dy : Matrix.t) : Matrix.t =
  let n = dy.Matrix.rows and d = dy.Matrix.cols in
  let dx = Matrix.create n d in
  for i = 0 to n - 1 do
    let neigh = i :: adj.(i) in
    let deg = float_of_int (List.length neigh) in
    List.iter
      (fun j ->
        for c = 0 to d - 1 do
          Matrix.set dx j c (Matrix.get dx j c +. (Matrix.get dy i c /. deg))
        done)
      neigh
  done;
  dx

type forward_state = {
  adj : int list array;
  px_list : Matrix.t list;  (** P·Z_(l-1) per layer, pre-weights *)
  z_list : Matrix.t list;  (** post-tanh activations per layer *)
  concat : Matrix.t;  (** n x total_channels *)
  order : int array;  (** node permutation chosen by sort pooling *)
  flat : float array;  (** pooled, flattened input to the head *)
}

let total_channels (p : params) = List.fold_left ( + ) 0 p.gc_channels

let forward_graph (t_params : params) (gc_weights : Matrix.t list)
    (g : Graph.t) : forward_state =
  (* an empty graph is treated as a single zero-feature node *)
  let g =
    if Graph.node_count g = 0 then
      { g with Graph.node_feats = [| Array.make g.feat_dim 0.0 |]; edges = [] }
    else g
  in
  (* cap the graph size: keep a prefix subgraph *)
  let g =
    let cap = t_params.max_nodes in
    if Graph.node_count g <= cap then g
    else
      {
        g with
        Graph.node_feats = Array.sub g.node_feats 0 cap;
        edges = List.filter (fun (s, d, _) -> s < cap && d < cap) g.edges;
      }
  in
  let adj = Graph.undirected_adjacency g in
  (* squash count-valued node features (e.g. per-block histograms of the
     compact embeddings): raw counts saturate the tanh units *)
  let x0 =
    Matrix.map (fun v -> Float.copy_sign (log1p (Float.abs v)) v)
      (Matrix.of_rows g.node_feats)
  in
  let n = Matrix.(x0.rows) in
  let rec go z ws px_acc z_acc =
    match ws with
    | [] -> (List.rev px_acc, List.rev z_acc)
    | w :: rest ->
        let px = propagate adj z in
        let zl = Matrix.map tanh (Matrix.matmul px w) in
        go zl rest (px :: px_acc) (zl :: z_acc)
  in
  let px_list, z_list = go x0 gc_weights [] [] in
  (* concatenate channels of every layer *)
  let tc = total_channels t_params in
  let concat = Matrix.create n tc in
  let off = ref 0 in
  List.iter
    (fun (z : Matrix.t) ->
      for i = 0 to n - 1 do
        for c = 0 to z.Matrix.cols - 1 do
          Matrix.set concat i (!off + c) (Matrix.get z i c)
        done
      done;
      off := !off + z.Matrix.cols)
    z_list;
  (* sort pooling on the last channel *)
  let k = t_params.sortpool_k in
  let order = Array.init n Fun.id in
  Array.sort
    (fun a b -> compare (Matrix.get concat b (tc - 1)) (Matrix.get concat a (tc - 1)))
    order;
  let flat = Array.make (k * tc) 0.0 in
  for r = 0 to min k n - 1 do
    let i = order.(r) in
    for c = 0 to tc - 1 do
      flat.((r * tc) + c) <- Matrix.get concat i c
    done
  done;
  { adj; px_list; z_list; concat; order; flat }

(* dL/dW per graph-convolution layer (in layer order) for one graph, given
   dL/d(flat) from the head — no weight update here; the minibatch loop
   accumulates grads across the batch and applies them once.  The same
   computation, on naive matmuls, is frozen in [Reference.Dgcnn]. *)
let graph_backward (p : params) (gc_weights : Matrix.t list)
    (st : forward_state) (dflat : float array) : Matrix.t list =
  let tc = total_channels p in
  (* scatter the gradient back through sort pooling *)
  let nn = st.concat.Matrix.rows in
  let dconcat = Matrix.create nn tc in
  for r = 0 to min p.sortpool_k nn - 1 do
    let node = st.order.(r) in
    for c = 0 to tc - 1 do
      Matrix.set dconcat node c (dflat.((r * tc) + c))
    done
  done;
  (* un-concatenate into per-layer gradients, then backprop through the
     graph convolutions in reverse *)
  let layer_grads =
    let off = ref 0 in
    List.map
      (fun (z : Matrix.t) ->
        let dz = Matrix.create nn z.Matrix.cols in
        for i' = 0 to nn - 1 do
          for c = 0 to z.Matrix.cols - 1 do
            Matrix.set dz i' c (Matrix.get dconcat i' (!off + c))
          done
        done;
        off := !off + z.Matrix.cols;
        dz)
      st.z_list
  in
  (* process layers from last to first, accumulating the gradient that
     flows down from upper layers *)
  let rev_w = List.rev gc_weights in
  let rev_z = List.rev st.z_list in
  let rev_px = List.rev st.px_list in
  let rev_dz = List.rev layer_grads in
  let rec back ws zs pxs dzs (carry : Matrix.t option) (dws : Matrix.t list) =
    match (ws, zs, pxs, dzs) with
    | [], [], [], [] -> dws
    | w :: ws', z :: zs', px :: pxs', dz :: dzs' ->
        let dz_total =
          match carry with Some c -> Matrix.add dz c | None -> dz
        in
        (* through tanh *)
        let dpre =
          Matrix.init nn z.Matrix.cols (fun i' c ->
              let zv = Matrix.get z i' c in
              Matrix.get dz_total i' c *. (1.0 -. (zv *. zv)))
        in
        (* dW = (P Z_(l-1))^T dpre *)
        let dw = Matrix.matmul (Matrix.transpose px) dpre in
        (* gradient to previous layer: P^T (dpre W^T) *)
        let dprev = propagate_t st.adj (Matrix.matmul dpre (Matrix.transpose w)) in
        back ws' zs' pxs' dzs' (Some dprev) (dw :: dws)
    | _ -> assert false
  in
  back rev_w rev_z rev_px rev_dz None []

let init_gc_weights (rng : Rng.t) (p : params) ~(feat_dim : int) :
    Matrix.t list =
  let dims =
    let rec widths d = function
      | [] -> []
      | c :: rest -> (d, c) :: widths c rest
    in
    widths feat_dim p.gc_channels
  in
  List.map
    (fun (d_in, d_out) ->
      Matrix.random rng d_in d_out ~scale:(sqrt (1.0 /. float_of_int d_in)))
    dims

let build_head (rng : Rng.t) (p : params) ~(n_classes : int) : Nn.t =
  let tc = total_channels p in
  let k = p.sortpool_k in
  (* conv over the flattened k*tc signal with kernel = tc, stride = tc: one
     filter application per node slot (the DGCNN trick) *)
  let c1 = 16 in
  let l1 = k in
  let l1p = l1 / 2 in
  let c2 = 16 and k2 = min 3 l1p in
  let l2 = l1p - k2 + 1 in
  {
    Nn.layers =
      [
        Nn.conv1d rng ~c_in:1 ~c_out:c1 ~kernel:tc ~stride:tc;
        Nn.relu ();
        Nn.maxpool 2;
        Nn.conv1d rng ~c_in:c1 ~c_out:c2 ~kernel:k2 ~stride:1;
        Nn.relu ();
        Nn.dense rng ~d_in:(c2 * l2) ~d_out:48;
        Nn.relu ();
        Nn.dropout 0.2;
        Nn.dense rng ~d_in:48 ~d_out:n_classes;
      ];
    n_classes;
  }

let of_parts ~(params : params) ~(gc_weights : Matrix.t list) ~(head : Nn.t)
    ~(feat_dim : int) ~(n_classes : int) : t =
  { params; gc_weights; head; feat_dim; n_classes }

let dump_weights (t : t) : float array array =
  Array.append
    (Array.of_list
       (List.map (fun (w : Matrix.t) -> Array.copy w.Matrix.data) t.gc_weights))
    (Nn.dump_weights t.head)

let train_source ?(params = default_params) (rng : Rng.t)
    ~(n_classes : int) (src : Gsource.t) (ys : int array) : t =
  let feat_dim = src.Gsource.feat_dim in
  let gc_weights = init_gc_weights rng params ~feat_dim in
  let head = build_head rng params ~n_classes in
  let n = src.Gsource.n in
  let order = Array.init n Fun.id in
  let flat_w = params.sortpool_k * total_channels params in
  for epoch = 0 to params.epochs - 1 do
    let lr = params.lr /. (1.0 +. (0.05 *. float_of_int epoch)) in
    for i = n - 1 downto 1 do
      let j = Rng.int rng (i + 1) in
      let tmp = order.(i) in
      order.(i) <- order.(j);
      order.(j) <- tmp
    done;
    let nb = (n + params.batch - 1) / params.batch in
    for b = 0 to nb - 1 do
      let lo = b * params.batch in
      let m = min params.batch (n - lo) in
      (* shard layout shared with Nn.train_batch: boundaries are a function
         of the batch size only, so grads reduce identically at any jobs *)
      let ns = (m + Nn.grad_shard_rows - 1) / Nn.grad_shard_rows in
      let shard_rows s =
        let slo = s * Nn.grad_shard_rows in
        (slo, min m (slo + Nn.grad_shard_rows))
      in
      (* phase 1: forward every graph of the batch (parallel; per-graph
         work is independent, so jobs only changes scheduling) *)
      let states = Array.make m None in
      Pool.run ~n:ns (fun s ->
          let slo, shi = shard_rows s in
          for i = slo to shi - 1 do
            states.(i) <-
              Some (forward_graph params gc_weights (src.Gsource.get order.(lo + i)))
          done);
      let flats = Fmat.create m flat_w in
      Fmat.of_rows_into flats
        (Array.map (fun st -> (Option.get st).flat) states);
      let yb = Array.init m (fun i -> ys.(order.(lo + i))) in
      (* phase 2: one batched SGD step of the head; dflat rows are the
         gradients at the pooled inputs *)
      let _loss, dflat = Nn.train_batch ~lr ~rng head flats yb in
      (* phase 3: per-graph gradients of the graph convolutions,
         accumulated per shard in ascending graph order *)
      let shard_acc =
        Array.init ns (fun _ ->
            List.map
              (fun (w : Matrix.t) -> Matrix.create w.Matrix.rows w.Matrix.cols)
              gc_weights)
      in
      Pool.run ~n:ns (fun s ->
          let slo, shi = shard_rows s in
          let accs = shard_acc.(s) in
          for i = slo to shi - 1 do
            let st = Option.get states.(i) in
            let dws =
              graph_backward params gc_weights st (Fmat.row_copy dflat i)
            in
            List.iter2 (fun acc dw -> Matrix.axpy ~a:1.0 dw acc) accs dws
          done);
      (* phase 4: fixed pairwise tree reduction, then one SGD update *)
      Nn.tree_reduce
        (fun a b -> List.iter2 (fun x y -> Matrix.axpy ~a:1.0 y x) a b)
        shard_acc;
      List.iter2
        (fun (w : Matrix.t) dw -> Matrix.axpy ~a:(-.lr) dw w)
        gc_weights shard_acc.(0)
    done
  done;
  { params; gc_weights; head; feat_dim; n_classes }

let train ?params (rng : Rng.t) ~(n_classes : int) ~(feat_dim : int)
    (graphs : Graph.t array) (ys : int array) : t =
  train_source ?params rng ~n_classes
    (Gsource.of_fn ~n:(Array.length graphs) ~feat_dim (fun i -> graphs.(i)))
    ys

let predict (t : t) (g : Graph.t) : int =
  let st = forward_graph t.params t.gc_weights g in
  Nn.predict t.head st.flat

let size_bytes (t : t) : int =
  Nn.size_bytes t.head
  + List.fold_left
      (fun acc (w : Matrix.t) -> acc + (8 * w.rows * w.cols))
      0 t.gc_weights
