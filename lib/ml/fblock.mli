(** Out-of-core feature matrices: a fixed-width row file on disk, read back
    as fixed-size {!Fmat} blocks (DESIGN.md §12).

    The file is a 14-byte header (magic ["YFMB"], u16 version, u32 rows,
    u32 dim) followed by [n*d] IEEE-754 doubles, little-endian bit
    patterns — the same encoding as {!Yali_util.Bin.w_f64}, so a write/read
    round trip is bit-identical.  {!open_reader} validates magic, version
    and exact byte length; any mismatch raises {!Yali_util.Bin.Corrupt}.

    A {!source} abstracts over in-memory and on-disk matrices so the
    minibatch trainers ([Logreg.train_stream] & co.) are written once.
    {!iter_blocks} visits rows in order as sequential blocks; every block
    handed to the callback is freshly allocated (a file read or a copy of
    the in-memory slice), so callees may standardise it in place. *)

val magic : string
val version : int

(** Rows per block everywhere a [?block_rows] default is needed.  Small
    corpora fit one block, which makes the streamed trainers bit-identical
    to the in-memory ones (the equivalence argument of DESIGN.md §12). *)
val default_block_rows : int

module Writer : sig
  type t

  (** Declare the exact shape up front; the header is written immediately. *)
  val create : string -> n:int -> d:int -> t

  (** @raise Invalid_argument on width mismatch or when more than [n] rows
      are appended *)
  val append_row : t -> float array -> unit

  (** @raise Failure when fewer than [n] rows were appended *)
  val close : t -> unit
end

(** Pre-size a feature file (header plus a hole for [n*d] doubles) so
    parallel writers can fill disjoint row ranges. *)
val create_sized : string -> n:int -> d:int -> unit

(** [write_rows_at path ~d ~row0 rows] writes [rows] starting at row index
    [row0], through a private descriptor — safe to call concurrently for
    disjoint ranges (the shard-parallel embedding path). *)
val write_rows_at : string -> d:int -> row0:int -> float array array -> unit

(** A positioned row writer over a pre-sized file ({!create_sized}): each
    task opens its own descriptor and writes only its own row indices, so
    concurrent writers over disjoint rows are safe and deterministic. *)
module Pwrite : sig
  type t

  val open_ : string -> d:int -> t
  val write_row : t -> int -> float array -> unit
  val close : t -> unit
end

type reader

(** @raise Yali_util.Bin.Corrupt on bad magic, version skew, or a byte
    length that contradicts the header (a truncated or stale file);
    @raise Sys_error as [open_in] *)
val open_reader : string -> reader

val close_reader : reader -> unit

(** A feature-matrix source the streamed trainers consume. *)
type source = Mem of Fmat.t | Disk of reader

val rows : source -> int
val dim : source -> int

(** [iter_blocks ~block_rows src f] calls [f row_offset block] for each
    consecutive block of at most [block_rows] rows, in row order.  Blocks
    are fresh matrices the callee may mutate. *)
val iter_blocks : ?block_rows:int -> source -> (int -> Fmat.t -> unit) -> unit

val n_blocks : ?block_rows:int -> source -> int

(** The whole source as one in-memory matrix ([Mem] is returned as-is). *)
val materialize : source -> Fmat.t

val of_fmat : Fmat.t -> source

(** Write a matrix into the on-disk format (bit-exact round trip). *)
val to_file : string -> Fmat.t -> unit
