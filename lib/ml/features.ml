(** Feature preprocessing shared by the distance- and gradient-based models:
    per-feature standardisation (zero mean, unit variance) fitted on the
    training set and replayed on challenges. *)

type scaler = { means : float array; stds : float array }

let fit (xs : float array array) : scaler =
  match Array.length xs with
  | 0 -> { means = [||]; stds = [||] }
  | n ->
      let d = Array.length xs.(0) in
      let means = Array.make d 0.0 and stds = Array.make d 0.0 in
      Array.iter (fun x -> Array.iteri (fun j v -> means.(j) <- means.(j) +. v) x) xs;
      for j = 0 to d - 1 do
        means.(j) <- means.(j) /. float_of_int n
      done;
      Array.iter
        (fun x ->
          Array.iteri
            (fun j v -> stds.(j) <- stds.(j) +. ((v -. means.(j)) ** 2.0))
            x)
        xs;
      for j = 0 to d - 1 do
        stds.(j) <- sqrt (stds.(j) /. float_of_int n);
        if stds.(j) < 1e-9 then stds.(j) <- 1.0
      done;
      { means; stds }

let transform (s : scaler) (x : float array) : float array =
  Array.mapi (fun j v -> (v -. s.means.(j)) /. s.stds.(j)) x

let fit_transform (xs : float array array) : scaler * float array array =
  let s = fit xs in
  (s, Array.map (transform s) xs)

(** [transform_into s src dst] writes the standardised [src] into [dst]
    without allocating (the per-challenge hot path of the batched
    predictors). *)
let transform_into (s : scaler) (src : float array) (dst : float array) : unit
    =
  for j = 0 to Array.length src - 1 do
    dst.(j) <- (src.(j) -. s.means.(j)) /. s.stds.(j)
  done

(* The flat-matrix counterparts.  The accumulation loops visit elements in
   exactly the order of the row-array versions above (samples outer,
   features inner), so fitted parameters and transformed values are
   bit-identical to the pre-Fmat pipeline. *)

let fit_fmat (x : Fmat.t) : scaler =
  if x.Fmat.n = 0 then { means = [||]; stds = [||] }
  else begin
    let n = x.Fmat.n and d = x.Fmat.d and data = x.Fmat.data in
    let means = Array.make d 0.0 and stds = Array.make d 0.0 in
    for i = 0 to n - 1 do
      let base = i * d in
      for j = 0 to d - 1 do
        means.(j) <- means.(j) +. data.(base + j)
      done
    done;
    for j = 0 to d - 1 do
      means.(j) <- means.(j) /. float_of_int n
    done;
    for i = 0 to n - 1 do
      let base = i * d in
      for j = 0 to d - 1 do
        stds.(j) <- stds.(j) +. ((data.(base + j) -. means.(j)) ** 2.0)
      done
    done;
    for j = 0 to d - 1 do
      stds.(j) <- sqrt (stds.(j) /. float_of_int n);
      if stds.(j) < 1e-9 then stds.(j) <- 1.0
    done;
    { means; stds }
  end

(** Fit over streamed blocks.  Blocks arrive in row order and each pass
    accumulates samples-outer / features-inner exactly as {!fit_fmat}, so
    the fitted parameters are bit-identical to the in-memory fit at any
    [block_rows] — the streamed trainers inherit the in-memory scaler
    verbatim. *)
let fit_stream ?block_rows (src : Fblock.source) : scaler =
  let n = Fblock.rows src and d = Fblock.dim src in
  if n = 0 then { means = [||]; stds = [||] }
  else begin
    let means = Array.make d 0.0 and stds = Array.make d 0.0 in
    Fblock.iter_blocks ?block_rows src (fun _lo block ->
        let data = block.Fmat.data in
        for i = 0 to block.Fmat.n - 1 do
          let base = i * d in
          for j = 0 to d - 1 do
            means.(j) <- means.(j) +. data.(base + j)
          done
        done);
    for j = 0 to d - 1 do
      means.(j) <- means.(j) /. float_of_int n
    done;
    Fblock.iter_blocks ?block_rows src (fun _lo block ->
        let data = block.Fmat.data in
        for i = 0 to block.Fmat.n - 1 do
          let base = i * d in
          for j = 0 to d - 1 do
            stds.(j) <- stds.(j) +. ((data.(base + j) -. means.(j)) ** 2.0)
          done
        done);
    for j = 0 to d - 1 do
      stds.(j) <- sqrt (stds.(j) /. float_of_int n);
      if stds.(j) < 1e-9 then stds.(j) <- 1.0
    done;
    { means; stds }
  end

let transform_fmat_inplace (s : scaler) (x : Fmat.t) : unit =
  let n = x.Fmat.n and d = x.Fmat.d and data = x.Fmat.data in
  for i = 0 to n - 1 do
    let base = i * d in
    for j = 0 to d - 1 do
      data.(base + j) <- (data.(base + j) -. s.means.(j)) /. s.stds.(j)
    done
  done

(** Fit on [x] and return a standardised copy ([x] itself is left intact:
    callers share one embedded matrix across several models). *)
let fit_transform_fmat (x : Fmat.t) : scaler * Fmat.t =
  let s = fit_fmat x in
  let y = Fmat.copy x in
  transform_fmat_inplace s y;
  (s, y)

(** Memory footprint of a float-array-of-arrays, in bytes (8 bytes per
    element plus header overhead); used for the paper's Figure 7 memory
    comparison. *)
let bytes_of_rows (xs : float array array) : int =
  Array.fold_left (fun acc r -> acc + (8 * Array.length r) + 24) 24 xs

(** Same footprint estimate for a flat matrix: one header, no per-row
    overhead — the memory argument for the contiguous layout. *)
let bytes_of_fmat (x : Fmat.t) : int = (8 * x.Fmat.n * x.Fmat.d) + 24

module Bin = Yali_util.Bin

let scaler_to_bin b (s : scaler) =
  Bin.w_floats b s.means;
  Bin.w_floats b s.stds

let scaler_of_bin r : scaler =
  let means = Bin.r_floats r in
  let stds = Bin.r_floats r in
  if Array.length means <> Array.length stds then
    Bin.fail r "scaler with mismatched means/stds";
  { means; stds }
