(** k-nearest-neighbour classification over standardised features (the only
    deterministic model in the arena — the paper notes it is the one model
    with no randomly initialised parameters). *)

type t = {
  k : int;
  scaler : Features.scaler;
  xs : float array array;  (** standardised training points *)
  ys : int array;
  n_classes : int;
}

let train ?(k = 5) ~(n_classes : int) (xs : float array array) (ys : int array)
    : t =
  let scaler, xs = Features.fit_transform xs in
  { k; scaler; xs; ys; n_classes }

let sq_dist (a : float array) (b : float array) : float =
  let acc = ref 0.0 in
  Array.iteri
    (fun i x ->
      let d = x -. b.(i) in
      acc := !acc +. (d *. d))
    a;
  !acc

let predict (t : t) (x : float array) : int =
  let x = Features.transform t.scaler x in
  let n = Array.length t.xs in
  let k = min t.k n in
  (* partial selection of the k nearest; the distance sweep dominates and
     parallelises in chunks (it stays inline under an outer parallel loop,
     e.g. the arena's challenge sweep) *)
  let dists = Array.make n (0.0, 0) in
  Yali_exec.Pool.parallel_for_chunks ~min_chunk:512 n (fun lo hi ->
      for i = lo to hi - 1 do
        dists.(i) <- (sq_dist x t.xs.(i), t.ys.(i))
      done);
  Array.sort (fun (a, _) (b, _) -> compare a b) dists;
  let votes = Array.make t.n_classes 0 in
  for i = 0 to k - 1 do
    let _, y = dists.(i) in
    votes.(y) <- votes.(y) + 1
  done;
  let best = ref 0 in
  Array.iteri (fun c v -> if v > votes.(!best) then best := c) votes;
  !best

let size_bytes (t : t) : int = Features.bytes_of_rows t.xs + (8 * Array.length t.ys)
