(** k-nearest-neighbour classification over standardised features (the only
    deterministic model in the arena — the paper notes it is the one model
    with no randomly initialised parameters).

    Distances use the expansion [‖a−b‖² = ‖a‖² − 2a·b + ‖b‖²] with the
    per-row training norms precomputed at [train] time, so a query costs one
    dot product per training row over the contiguous {!Fmat} storage; the
    sweep is chunked over the pool and the k nearest are kept with a partial
    selection instead of a full sort.  See the interface for the exact
    tie-breaking rule and the float caveat of the expansion. *)

type t = {
  k : int;
  scaler : Features.scaler;
  x : Fmat.t;  (** standardised training points *)
  norms : float array;  (** per-row squared norms of [x] *)
  ys : int array;
  n_classes : int;
}

let train ?(k = 5) ~(n_classes : int) (x : Fmat.t) (ys : int array) : t =
  let scaler, x = Features.fit_transform_fmat x in
  let norms = Array.init x.Fmat.n (Fmat.sq_norm_row x) in
  { k; scaler; x; norms; ys; n_classes }

(* neighbour vote counts of a (raw, unstandardised) query — the shared
   kernel behind [predict] and [margins] *)
let votes (t : t) (q : float array) : int array =
  let q = Features.transform t.scaler q in
  let qn =
    let acc = ref 0.0 in
    Array.iter (fun v -> acc := !acc +. (v *. v)) q;
    !acc
  in
  let n = t.x.Fmat.n in
  let k = min t.k n in
  (* distance sweep: cache-blocked chunks over the contiguous rows (it
     stays inline under an outer parallel loop, e.g. the arena's challenge
     sweep); each chunk writes only its own slots *)
  let dists = Array.make n 0.0 in
  Yali_exec.Pool.parallel_for_chunks ~min_chunk:512 n (fun lo hi ->
      for i = lo to hi - 1 do
        dists.(i) <- qn -. (2.0 *. Fmat.dot_row_vec t.x i q) +. t.norms.(i)
      done);
  (* partial selection of the k nearest under the total (distance, row)
     order: scanning rows in ascending index and requiring a strictly
     smaller distance to displace the incumbent worst realises the
     lowest-index-wins tie rule *)
  let bd = Array.make (max 1 k) infinity in
  let bi = Array.make (max 1 k) 0 in
  let filled = ref 0 in
  for i = 0 to n - 1 do
    let di = dists.(i) in
    if !filled < k then begin
      let p = ref !filled in
      while !p > 0 && di < bd.(!p - 1) do
        bd.(!p) <- bd.(!p - 1);
        bi.(!p) <- bi.(!p - 1);
        decr p
      done;
      bd.(!p) <- di;
      bi.(!p) <- i;
      incr filled
    end
    else if k > 0 && di < bd.(k - 1) then begin
      let p = ref (k - 1) in
      while !p > 0 && di < bd.(!p - 1) do
        bd.(!p) <- bd.(!p - 1);
        bi.(!p) <- bi.(!p - 1);
        decr p
      done;
      bd.(!p) <- di;
      bi.(!p) <- i
    end
  done;
  let votes = Array.make t.n_classes 0 in
  for q = 0 to !filled - 1 do
    let y = t.ys.(bi.(q)) in
    votes.(y) <- votes.(y) + 1
  done;
  votes

let predict (t : t) (q : float array) : int =
  let votes = votes t q in
  let best = ref 0 in
  Array.iteri (fun c v -> if v > votes.(!best) then best := c) votes;
  !best

(** Per-class neighbour vote counts as floats; the first-maximum index is
    exactly {!predict}'s decision (ties break to the lowest class in both). *)
let margins (t : t) (q : float array) : float array =
  Array.map float_of_int (votes t q)

(** Classify every row of a flat matrix (each query's sweep parallelises
    internally). *)
let predict_batch (t : t) (qs : Fmat.t) : int array =
  let buf = Array.make qs.Fmat.d 0.0 in
  Array.init qs.Fmat.n (fun i ->
      Fmat.row_into qs i buf;
      predict t buf)

let size_bytes (t : t) : int =
  Features.bytes_of_fmat t.x + (8 * Array.length t.ys)

(* The snapshot stores the standardised training matrix itself: k-NN's
   "weights" are the training set, exactly as held in memory. *)

module Bin = Yali_util.Bin

let to_bin b (t : t) =
  Bin.w_u32 b t.k;
  Features.scaler_to_bin b t.scaler;
  Fmat.to_bin b t.x;
  Bin.w_floats b t.norms;
  Bin.w_ints b t.ys;
  Bin.w_u32 b t.n_classes

let of_bin r : t =
  let k = Bin.r_u32 r in
  let scaler = Features.scaler_of_bin r in
  let x = Fmat.of_bin r in
  let norms = Bin.r_floats r in
  let ys = Bin.r_ints r in
  let n_classes = Bin.r_u32 r in
  if Array.length norms <> x.Fmat.n || Array.length ys <> x.Fmat.n then
    Bin.fail r "knn shape mismatch";
  { k; scaler; x; norms; ys; n_classes }
