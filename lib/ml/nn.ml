(** A small feed-forward neural-network kernel with hand-written
    backpropagation: dense, ReLU, tanh, dropout, 1-D convolution and max
    pooling layers, plus a softmax/cross-entropy head.  Shared by the MLP,
    CNN and DGCNN models.

    Two training paths coexist:
    - the per-example {!train_step} (used by the MLP), and
    - the batched {!train_batch} minibatch kernel: whole-batch forward and
      backward as cache-tiled matmuls (im2col lowering for the 1-D
      convolutions), gradients accumulated in fixed row shards over
      {!Yali_exec.Pool} and merged in a fixed pairwise tree order, so the
      result is bit-identical at any [--jobs].  The frozen naive
      counterpart lives in [Reference.Nnb]; `bench nn` proves the speedup
      and the bit-identity. *)

module Rng = Yali_util.Rng
module Pool = Yali_exec.Pool


type dense = {
  mutable w : Matrix.t;  (** out x in *)
  mutable b : float array;
  mutable last_in : float array;
  mutable wt : Matrix.t option;
      (** cached transpose of [w] for the batched paths; invalidated on
          every weight update *)
}

type conv1d = {
  c_in : int;
  c_out : int;
  kernel : int;
  stride : int;
  mutable filters : Matrix.t;  (** c_out x (c_in * kernel) *)
  mutable cbias : float array;
  mutable conv_in : float array;
  mutable in_len : int;
  mutable ft : Matrix.t option;
      (** cached transpose of [filters]; invalidated on update *)
}

type layer =
  | Dense of dense
  | Relu of { mutable mask : bool array }
  | Tanh of { mutable out : float array }
  | Dropout of { p : float; mutable dmask : float array }
  | Conv1d of conv1d
  | MaxPool of { size : int; mutable argmax : int array; mutable pool_in_len : int }

let dense (rng : Rng.t) ~(d_in : int) ~(d_out : int) : layer =
  Dense
    {
      w = Matrix.random rng d_out d_in ~scale:(sqrt (2.0 /. float_of_int d_in));
      b = Array.make d_out 0.0;
      last_in = [||];
      wt = None;
    }

let relu () = Relu { mask = [||] }
let tanh_layer () = Tanh { out = [||] }
let dropout p = Dropout { p; dmask = [||] }

let conv1d (rng : Rng.t) ~(c_in : int) ~(c_out : int) ~(kernel : int)
    ~(stride : int) : layer =
  Conv1d
    {
      c_in;
      c_out;
      kernel;
      stride;
      filters =
        Matrix.random rng c_out (c_in * kernel)
          ~scale:(sqrt (2.0 /. float_of_int (c_in * kernel)));
      cbias = Array.make c_out 0.0;
      conv_in = [||];
      in_len = 0;
      ft = None;
    }

let maxpool size = MaxPool { size; argmax = [||]; pool_in_len = 0 }

(* Conv layout: a multi-channel signal of [c] channels and length [l] is a
   flat array of size c*l, channel-major: index = ch*l + pos. *)

let conv_out_len (c : conv1d) (in_len : int) : int =
  ((in_len - c.kernel) / c.stride) + 1

let dense_wt (d : dense) : Matrix.t =
  match d.wt with
  | Some t -> t
  | None ->
      let t = Matrix.transpose d.w in
      d.wt <- Some t;
      t

let conv_ft (c : conv1d) : Matrix.t =
  match c.ft with
  | Some t -> t
  | None ->
      let t = Matrix.transpose c.filters in
      c.ft <- Some t;
      t

let forward ?(train = false) ?rng (layer : layer) (x : float array) :
    float array =
  match layer with
  | Dense d ->
      d.last_in <- x;
      let out = Matrix.mv d.w x in
      Array.mapi (fun i v -> v +. d.b.(i)) out
  | Relu r ->
      r.mask <- Array.map (fun v -> v > 0.0) x;
      Array.map (fun v -> if v > 0.0 then v else 0.0) x
  | Tanh t ->
      let out = Array.map tanh x in
      t.out <- out;
      out
  | Dropout d ->
      if train then begin
        let rng = Option.get rng in
        d.dmask <-
          Array.map
            (fun _ -> if Rng.float rng < d.p then 0.0 else 1.0 /. (1.0 -. d.p))
            x;
        Array.mapi (fun i v -> v *. d.dmask.(i)) x
      end
      else x
  | Conv1d c ->
      let in_len = Array.length x / c.c_in in
      c.conv_in <- x;
      c.in_len <- in_len;
      let out_len = conv_out_len c in_len in
      if out_len <= 0 then Array.make c.c_out 0.0
      else begin
        let out = Array.make (c.c_out * out_len) 0.0 in
        let fd = c.filters.data and fcols = c.filters.cols in
        for o = 0 to c.c_out - 1 do
          let fbase = o * fcols in
          for p = 0 to out_len - 1 do
            let acc = ref c.cbias.(o) in
            for ci = 0 to c.c_in - 1 do
              for k = 0 to c.kernel - 1 do
                acc :=
                  !acc
                  +. Array.unsafe_get fd (fbase + (ci * c.kernel) + k)
                     *. x.((ci * in_len) + (p * c.stride) + k)
              done
            done;
            out.((o * out_len) + p) <- !acc
          done
        done;
        out
      end
  | MaxPool m ->
      (* single-channel view: pool every channel independently requires
         knowing the channel count; we pool over the flat layout in windows
         of [size], which for channel-major layouts pools within channels as
         long as the length is a multiple of [size] *)
      let n = Array.length x in
      let out_n = n / m.size in
      m.pool_in_len <- n;
      m.argmax <- Array.make out_n 0;
      Array.init out_n (fun i ->
          let base = i * m.size in
          let best = ref base in
          for k = 1 to m.size - 1 do
            if base + k < n && x.(base + k) > x.(!best) then best := base + k
          done;
          m.argmax.(i) <- !best;
          x.(!best))

(* Backward pass: given dL/d(out), update parameter grads in-place (SGD with
   the supplied learning rate) and return dL/d(in). *)
let backward ~(lr : float) (layer : layer) (dout : float array) : float array
    =
  match layer with
  | Dense d ->
      let din = Matrix.vm dout d.w in
      (* update: w -= lr * dout^T last_in ; b -= lr * dout.  Flat offsets
         into the weight data; the float expressions are unchanged
         ([lr *. dout.(o) *. x] associates left, so hoisting the scale is
         the same product). *)
      let wd = d.w.data and cols = d.w.cols in
      for o = 0 to d.w.rows - 1 do
        d.b.(o) <- d.b.(o) -. (lr *. dout.(o));
        let s = lr *. dout.(o) in
        let base = o * cols in
        for i = 0 to cols - 1 do
          Array.unsafe_set wd (base + i)
            (Array.unsafe_get wd (base + i) -. (s *. d.last_in.(i)))
        done
      done;
      d.wt <- None;
      din
  | Relu r -> Array.mapi (fun i v -> if r.mask.(i) then v else 0.0) dout
  | Tanh t -> Array.mapi (fun i v -> v *. (1.0 -. (t.out.(i) *. t.out.(i)))) dout
  | Dropout d ->
      if Array.length d.dmask = Array.length dout then
        Array.mapi (fun i v -> v *. d.dmask.(i)) dout
      else dout
  | Conv1d c ->
      let in_len = c.in_len in
      let out_len = conv_out_len c in_len in
      let din = Array.make (Array.length c.conv_in) 0.0 in
      if out_len > 0 then begin
        let fd = c.filters.data and fcols = c.filters.cols in
        for o = 0 to c.c_out - 1 do
          let fbase = o * fcols in
          let gb = ref 0.0 in
          for p = 0 to out_len - 1 do
            let g = dout.((o * out_len) + p) in
            gb := !gb +. g;
            let s = lr *. g in
            for ci = 0 to c.c_in - 1 do
              for k = 0 to c.kernel - 1 do
                let xi = (ci * in_len) + (p * c.stride) + k in
                let fi = fbase + (ci * c.kernel) + k in
                let fv = Array.unsafe_get fd fi in
                din.(xi) <- din.(xi) +. (g *. fv);
                Array.unsafe_set fd fi (fv -. (s *. c.conv_in.(xi)))
              done
            done
          done;
          c.cbias.(o) <- c.cbias.(o) -. (lr *. !gb)
        done;
        c.ft <- None
      end;
      din
  | MaxPool m ->
      let din = Array.make m.pool_in_len 0.0 in
      Array.iteri (fun i g -> din.(m.argmax.(i)) <- din.(m.argmax.(i)) +. g) dout;
      din

type t = { layers : layer list; n_classes : int }

let invalidate_caches (net : t) : unit =
  List.iter
    (function
      | Dense d -> d.wt <- None
      | Conv1d c -> c.ft <- None
      | Relu _ | Tanh _ | Dropout _ | MaxPool _ -> ())
    net.layers

type layer_view =
  | V_dense of { w : Matrix.t; b : float array }
  | V_relu
  | V_tanh
  | V_dropout of float
  | V_conv1d of {
      c_in : int;
      c_out : int;
      kernel : int;
      stride : int;
      filters : Matrix.t;
      cbias : float array;
    }
  | V_maxpool of int

let view (net : t) : layer_view list =
  List.map
    (function
      | Dense d -> V_dense { w = d.w; b = d.b }
      | Relu _ -> V_relu
      | Tanh _ -> V_tanh
      | Dropout d -> V_dropout d.p
      | Conv1d c ->
          V_conv1d
            {
              c_in = c.c_in;
              c_out = c.c_out;
              kernel = c.kernel;
              stride = c.stride;
              filters = c.filters;
              cbias = c.cbias;
            }
      | MaxPool m -> V_maxpool m.size)
    net.layers

let dump_weights (net : t) : float array array =
  Array.of_list
    (List.concat_map
       (function
         | Dense d -> [ Array.copy d.w.Matrix.data; Array.copy d.b ]
         | Conv1d c -> [ Array.copy c.filters.Matrix.data; Array.copy c.cbias ]
         | Relu _ | Tanh _ | Dropout _ | MaxPool _ -> [])
       net.layers)

let forward_all ?(train = false) ?rng (net : t) (x : float array) :
    float array =
  List.fold_left (fun x l -> forward ~train ?rng l x) x net.layers

let backward_all ~(lr : float) (net : t) (dout : float array) : float array =
  List.fold_left (fun d l -> backward ~lr l d) dout (List.rev net.layers)

let softmax (z : float array) : float array =
  let m = Array.fold_left max neg_infinity z in
  let e = Array.map (fun v -> exp (v -. m)) z in
  let s = Array.fold_left ( +. ) 0.0 e in
  Array.map (fun v -> v /. s) e

(** One SGD step on a (sample, label) pair with cross-entropy loss; returns
    the loss and the gradient at the input (useful for models that have
    differentiable layers below the network, like the DGCNN's graph
    convolutions). *)
let train_step ~(lr : float) ~(rng : Rng.t) (net : t) (x : float array)
    (y : int) : float * float array =
  let logits = forward_all ~train:true ~rng net x in
  let p = softmax logits in
  let loss = -.log (max 1e-12 p.(y)) in
  let dlogits = Array.mapi (fun i v -> v -. if i = y then 1.0 else 0.0) p in
  let dx = backward_all ~lr net dlogits in
  (loss, dx)

(* -- batched minibatch training (DESIGN.md §15) ----------------------------- *)

(* Bit-identity contract with [Reference.Nnb]: both sides implement the SAME
   minibatch algorithm; every floating-point accumulation below is specified
   per output cell as an ascending-index chain so the naive per-sample loops
   of the reference produce the same bits as the tiled matmuls here
   (Matrix.matmul is bit-identical to Matrix.matmul_naive, including the
   zero-skip on elements of the left operand).  Do not reorder loops or
   change skip conditions without updating Reference.Nnb in lockstep —
   the ml/nn-kernel-vs-reference oracle pins the pairing. *)

(** Rows per gradient shard.  Shard boundaries depend only on the batch
    size — never on [--jobs] — and shards are merged in a fixed pairwise
    tree order, so training is bit-identical at any parallelism. *)
let grad_shard_rows = 16

(* widths.(li) = width of layer li's input; widths.(n_layers) = output. *)
let shape_widths (net : t) ~(d_in : int) : int array =
  let nl = List.length net.layers in
  let widths = Array.make (nl + 1) d_in in
  List.iteri
    (fun li l ->
      let w = widths.(li) in
      widths.(li + 1) <-
        (match l with
        | Dense d ->
            if d.w.Matrix.cols <> w then
              invalid_arg "Nn.train_batch: dense layer width mismatch";
            d.w.Matrix.rows
        | Relu _ | Tanh _ | Dropout _ -> w
        | Conv1d c ->
            let in_len = w / c.c_in in
            let ol = conv_out_len c in_len in
            if ol <= 0 then c.c_out else c.c_out * ol
        | MaxPool m -> w / m.size))
    net.layers;
  widths

type grad =
  | G_none
  | G_dense of Matrix.t * float array
  | G_conv of Matrix.t * float array

type bscratch =
  | S_nothing
  | S_input of Matrix.t  (** dense / relu input *)
  | S_out of Matrix.t  (** tanh output *)
  | S_conv of { im : Matrix.t; in_w : int; out_len : int }
  | S_pool of { argmax : int array; in_w : int; out_w : int }

(* One gradient shard: forward its rows, softmax/cross-entropy, backward,
   returning the shard-local parameter gradients.  [losses] and [dx] rows
   are disjoint per shard (safe under the pool). *)
let run_shard (net : t) ~(need_dx : bool) ~(masks : Matrix.t option array)
    ~(row0 : int) ~(xm : Matrix.t) ~(yb : int array)
    ~(losses : float array) ~(dx : Fmat.t) : grad array =
  let nl = List.length net.layers in
  let scratch = Array.make nl S_nothing in
  let rows = xm.Matrix.rows in
  let a = ref xm in
  List.iteri
    (fun li l ->
      let x = !a in
      match l with
      | Dense d ->
          scratch.(li) <- S_input x;
          a := Matrix.matmul_bias ~bias:d.b x (dense_wt d)
      | Relu _ ->
          (* rectify in place: only non-positive cells need a store, and the
             backward pass can read the sign off the post-activation values
             (relu v > 0 iff v > 0, NaN included).  The previous layer's
             output is dead once rectified; only the shard input [xm] must
             never be mutated. *)
          let out = if x == xm then Matrix.copy x else x in
          for t = 0 to (rows * out.Matrix.cols) - 1 do
            if not (Array.unsafe_get out.Matrix.data t > 0.0) then
              Array.unsafe_set out.Matrix.data t 0.0
          done;
          scratch.(li) <- S_input out;
          a := out
      | Tanh _ ->
          let out = Matrix.create_uninit rows x.Matrix.cols in
          for t = 0 to (rows * x.Matrix.cols) - 1 do
            Array.unsafe_set out.Matrix.data t
              (tanh (Array.unsafe_get x.Matrix.data t))
          done;
          scratch.(li) <- S_out out;
          a := out
      | Dropout _ ->
          let mask = Option.get masks.(li) in
          let w = x.Matrix.cols in
          let out = Matrix.create_uninit rows w in
          for i = 0 to rows - 1 do
            let xb = i * w and mb = (row0 + i) * w in
            for j = 0 to w - 1 do
              Array.unsafe_set out.Matrix.data (xb + j)
                (Array.unsafe_get x.Matrix.data (xb + j)
                *. Array.unsafe_get mask.Matrix.data (mb + j))
            done
          done;
          a := out
      | Conv1d c ->
          let in_w = x.Matrix.cols in
          let in_len = in_w / c.c_in in
          let out_len = conv_out_len c in_len in
          if out_len <= 0 then begin
            scratch.(li) <- S_conv { im = Matrix.create 0 0; in_w; out_len };
            a := Matrix.create rows c.c_out
          end
          else begin
            (* im2col: row (i, p) holds the window of sample i at output
               position p, columns (ci*kernel + k) — contiguous per-channel
               blits from the channel-major input layout *)
            let cols = c.c_in * c.kernel in
            let im = Matrix.create_uninit (rows * out_len) cols in
            (* windows are [kernel] elements (typically <= 5): an inline
               copy loop beats an Array.blit call per window *)
            for i = 0 to rows - 1 do
              let xbase = i * in_w in
              for p = 0 to out_len - 1 do
                let rbase = ((i * out_len) + p) * cols in
                for ci = 0 to c.c_in - 1 do
                  let sb = xbase + (ci * in_len) + (p * c.stride) in
                  let db = rbase + (ci * c.kernel) in
                  for k = 0 to c.kernel - 1 do
                    Array.unsafe_set im.Matrix.data (db + k)
                      (Array.unsafe_get x.Matrix.data (sb + k))
                  done
                done
              done
            done;
            scratch.(li) <- S_conv { im; in_w; out_len };
            let col = Matrix.matmul_bias ~bias:c.cbias im (conv_ft c) in
            let out = Matrix.create_uninit rows (c.c_out * out_len) in
            for i = 0 to rows - 1 do
              let ob = i * out.Matrix.cols in
              for p = 0 to out_len - 1 do
                let cb = ((i * out_len) + p) * c.c_out in
                for o = 0 to c.c_out - 1 do
                  Array.unsafe_set out.Matrix.data (ob + (o * out_len) + p)
                    (Array.unsafe_get col.Matrix.data (cb + o))
                done
              done
            done;
            a := out
          end
      | MaxPool mp ->
          let in_w = x.Matrix.cols in
          let out_w = in_w / mp.size in
          let amax = Array.make (rows * out_w) 0 in
          let out = Matrix.create_uninit rows out_w in
          for i = 0 to rows - 1 do
            let xb = i * in_w in
            for wi = 0 to out_w - 1 do
              let base = wi * mp.size in
              let best = ref base in
              for k = 1 to mp.size - 1 do
                if
                  base + k < in_w
                  && Array.unsafe_get x.Matrix.data (xb + base + k)
                     > Array.unsafe_get x.Matrix.data (xb + !best)
                then best := base + k
              done;
              Array.unsafe_set amax ((i * out_w) + wi) !best;
              Array.unsafe_set out.Matrix.data ((i * out_w) + wi)
                (Array.unsafe_get x.Matrix.data (xb + !best))
            done
          done;
          scratch.(li) <- S_pool { argmax = amax; in_w; out_w };
          a := out)
    net.layers;
  (* softmax / cross-entropy head.  Gradients are SUMMED over the batch
     (dlogits = p - onehot per row, no 1/m), so the per-epoch step
     magnitude matches the per-example trainer at the same learning rate. *)
  let logits = !a in
  let nc = logits.Matrix.cols in
  let dlog = Matrix.create_uninit rows nc in
  let buf = Array.make nc 0.0 in
  for r = 0 to rows - 1 do
    Array.blit logits.Matrix.data (r * nc) buf 0 nc;
    let p = softmax buf in
    let y = yb.(r) in
    losses.(row0 + r) <- -.log (max 1e-12 p.(y));
    for j = 0 to nc - 1 do
      dlog.Matrix.data.((r * nc) + j) <- p.(j) -. (if j = y then 1.0 else 0.0)
    done
  done;
  let grads = Array.make nl G_none in
  let dout = ref dlog in
  let layers = Array.of_list net.layers in
  for li = nl - 1 downto 0 do
    let d_o = !dout in
    match (layers.(li), scratch.(li)) with
    | Dense d, S_input xin ->
        let gw = Matrix.matmul (Matrix.transpose d_o) xin in
        let nc = d_o.Matrix.cols in
        let gb = Array.make nc 0.0 in
        for r = 0 to rows - 1 do
          let base = r * nc in
          for o = 0 to nc - 1 do
            Array.unsafe_set gb o
              (Array.unsafe_get gb o
              +. Array.unsafe_get d_o.Matrix.data (base + o))
          done
        done;
        grads.(li) <- G_dense (gw, gb);
        (* the first layer's input gradient only exists for [dx] *)
        if li > 0 || need_dx then dout := Matrix.matmul d_o d.w
    | Relu _, S_input xin ->
        (* [xin] holds the post-activation values (forward rectified in
           place); mask the incoming gradient in place — every upstream
           producer hands over a matrix that is dead after this layer *)
        for t = 0 to (rows * xin.Matrix.cols) - 1 do
          if not (Array.unsafe_get xin.Matrix.data t > 0.0) then
            Array.unsafe_set d_o.Matrix.data t 0.0
        done;
        dout := d_o
    | Tanh _, S_out out ->
        let dn = Matrix.create_uninit rows out.Matrix.cols in
        for t = 0 to (rows * out.Matrix.cols) - 1 do
          let o = Array.unsafe_get out.Matrix.data t in
          Array.unsafe_set dn.Matrix.data t
            (Array.unsafe_get d_o.Matrix.data t *. (1.0 -. (o *. o)))
        done;
        dout := dn
    | Dropout _, S_nothing ->
        let mask = Option.get masks.(li) in
        let w = d_o.Matrix.cols in
        let dn = Matrix.create_uninit rows w in
        for i = 0 to rows - 1 do
          let db = i * w and mb = (row0 + i) * w in
          for j = 0 to w - 1 do
            Array.unsafe_set dn.Matrix.data (db + j)
              (Array.unsafe_get d_o.Matrix.data (db + j)
              *. Array.unsafe_get mask.Matrix.data (mb + j))
          done
        done;
        dout := dn
    | Conv1d c, S_conv { im; in_w; out_len } ->
        if out_len <= 0 then begin
          grads.(li) <-
            G_conv
              (Matrix.create c.c_out (c.c_in * c.kernel), Array.make c.c_out 0.0);
          dout := Matrix.create rows in_w
        end
        else begin
          let cols = c.c_in * c.kernel in
          (* gather dL/d(out) into im2col row order *)
          let dcol = Matrix.create_uninit (rows * out_len) c.c_out in
          for i = 0 to rows - 1 do
            let db = i * d_o.Matrix.cols in
            for p = 0 to out_len - 1 do
              let rb = ((i * out_len) + p) * c.c_out in
              for o = 0 to c.c_out - 1 do
                Array.unsafe_set dcol.Matrix.data (rb + o)
                  (Array.unsafe_get d_o.Matrix.data (db + (o * out_len) + p))
              done
            done
          done;
          let gf = Matrix.matmul (Matrix.transpose dcol) im in
          let gcb = Array.make c.c_out 0.0 in
          for r = 0 to (rows * out_len) - 1 do
            let base = r * c.c_out in
            for o = 0 to c.c_out - 1 do
              Array.unsafe_set gcb o
                (Array.unsafe_get gcb o
                +. Array.unsafe_get dcol.Matrix.data (base + o))
            done
          done;
          grads.(li) <- G_conv (gf, gcb);
          if li > 0 || need_dx then begin
            let dim = Matrix.matmul dcol c.filters in
            let din = Matrix.create rows in_w in
            let in_len = in_w / c.c_in in
            for i = 0 to rows - 1 do
              let xbase = i * in_w in
              for p = 0 to out_len - 1 do
                let rb = ((i * out_len) + p) * cols in
                for ci = 0 to c.c_in - 1 do
                  let db = xbase + (ci * in_len) + (p * c.stride) in
                  let sb = rb + (ci * c.kernel) in
                  for k = 0 to c.kernel - 1 do
                    Array.unsafe_set din.Matrix.data (db + k)
                      (Array.unsafe_get din.Matrix.data (db + k)
                      +. Array.unsafe_get dim.Matrix.data (sb + k))
                  done
                done
              done
            done;
            dout := din
          end
        end
    | MaxPool _, S_pool { argmax; in_w; out_w } ->
        let din = Matrix.create rows in_w in
        for i = 0 to rows - 1 do
          for wi = 0 to out_w - 1 do
            let t = (i * in_w) + Array.unsafe_get argmax ((i * out_w) + wi) in
            Array.unsafe_set din.Matrix.data t
              (Array.unsafe_get din.Matrix.data t
              +. Array.unsafe_get d_o.Matrix.data ((i * out_w) + wi))
          done
        done;
        dout := din
    | _ -> assert false
  done;
  if need_dx then begin
    let dfin = !dout in
    for i = 0 to rows - 1 do
      Array.blit dfin.Matrix.data
        (i * dfin.Matrix.cols)
        dx.Fmat.data
        ((row0 + i) * dx.Fmat.d)
        dx.Fmat.d
    done
  end;
  grads

let merge_grads (a : grad array) (b : grad array) : unit =
  Array.iteri
    (fun i g ->
      match (g, b.(i)) with
      | G_none, G_none -> ()
      | G_dense (gw, gb), G_dense (gw', gb') ->
          Matrix.axpy ~a:1.0 gw' gw;
          Array.iteri (fun j v -> gb.(j) <- gb.(j) +. v) gb'
      | G_conv (gf, gcb), G_conv (gf', gcb') ->
          Matrix.axpy ~a:1.0 gf' gf;
          Array.iteri (fun j v -> gcb.(j) <- gcb.(j) +. v) gcb'
      | _ -> assert false)
    a

(* Pairwise stride-doubling reduction into slot 0: merge (s, s+step) for
   step = 1, 2, 4, ...  The order is a function of the shard count only. *)
let tree_reduce (merge : 'a -> 'a -> unit) (shards : 'a array) : unit =
  let ns = Array.length shards in
  let step = ref 1 in
  while !step < ns do
    let s = ref 0 in
    while !s + !step < ns do
      merge shards.(!s) shards.(!s + !step);
      s := !s + (2 * !step)
    done;
    step := !step * 2
  done

let apply_grads ~(lr : float) (net : t) (g : grad array) : unit =
  List.iteri
    (fun li l ->
      match (l, g.(li)) with
      | Dense d, G_dense (gw, gb) ->
          Array.iteri (fun j v -> d.b.(j) <- d.b.(j) -. (lr *. v)) gb;
          let wd = d.w.Matrix.data and gwd = gw.Matrix.data in
          for i = 0 to Array.length wd - 1 do
            wd.(i) <- wd.(i) -. (lr *. gwd.(i))
          done;
          d.wt <- None
      | Conv1d c, G_conv (gf, gcb) ->
          Array.iteri (fun j v -> c.cbias.(j) <- c.cbias.(j) -. (lr *. v)) gcb;
          let fd = c.filters.Matrix.data and gfd = gf.Matrix.data in
          for i = 0 to Array.length fd - 1 do
            fd.(i) <- fd.(i) -. (lr *. gfd.(i))
          done;
          c.ft <- None
      | _, G_none -> ()
      | _ -> assert false)
    net.layers

let train_batch ?(need_dx = true) ~(lr : float) ~(rng : Rng.t) (net : t)
    (xb : Fmat.t) (yb : int array) : float * Fmat.t =
  let m = xb.Fmat.n in
  if m = 0 then (0.0, Fmat.create 0 xb.Fmat.d)
  else begin
    if Array.length yb <> m then
      invalid_arg "Nn.train_batch: label count mismatch";
    let widths = shape_widths net ~d_in:xb.Fmat.d in
    (* dropout masks are pre-drawn on the calling domain, layer-major then
       row-major, so the rng never reaches a worker and the draw order is
       independent of sharding *)
    let masks =
      Array.of_list
        (List.mapi
           (fun li l ->
             match l with
             | Dropout d ->
                 Some
                   (Matrix.init m widths.(li) (fun _ _ ->
                        if Rng.float rng < d.p then 0.0
                        else 1.0 /. (1.0 -. d.p)))
             | _ -> None)
           net.layers)
    in
    let ns = (m + grad_shard_rows - 1) / grad_shard_rows in
    let losses = Array.make m 0.0 in
    let dx = Fmat.create m xb.Fmat.d in
    let shard_grads = Array.make ns [||] in
    Pool.run ~n:ns (fun s ->
        let lo = s * grad_shard_rows in
        let len = min grad_shard_rows (m - lo) in
        let xm =
          {
            Matrix.rows = len;
            cols = xb.Fmat.d;
            data = Array.sub xb.Fmat.data (lo * xb.Fmat.d) (len * xb.Fmat.d);
          }
        in
        let ys = Array.sub yb lo len in
        shard_grads.(s) <-
          run_shard net ~need_dx ~masks ~row0:lo ~xm ~yb:ys ~losses ~dx);
    tree_reduce merge_grads shard_grads;
    apply_grads ~lr net shard_grads.(0);
    let total = ref 0.0 in
    for i = 0 to m - 1 do
      total := !total +. losses.(i)
    done;
    (!total /. float_of_int m, dx)
  end

(** Raw output-layer activations of one inference pass (no softmax). *)
let logits (net : t) (x : float array) : float array =
  forward_all ~train:false net x

let predict (net : t) (x : float array) : int =
  let logits = logits net x in
  let best = ref 0 in
  Array.iteri (fun i v -> if v > logits.(!best) then best := i) logits;
  !best

(* Batched inference.  A dense-only net (Dense/Relu/Tanh/Dropout) runs the
   whole batch as one cache-tiled matmul per layer, with the bias added
   after accumulation — the same summation order as the per-row [mv] path.
   Anything with a Conv1d/MaxPool falls back to per-row prediction. *)
let predict_batch (net : t) (x : Fmat.t) : int array =
  let dense_only =
    List.for_all
      (function
        | Dense _ | Relu _ | Tanh _ | Dropout _ -> true
        | Conv1d _ | MaxPool _ -> false)
      net.layers
  in
  if not dense_only then begin
    let buf = Array.make x.Fmat.d 0.0 in
    Array.init x.Fmat.n (fun i ->
        Fmat.row_into x i buf;
        predict net buf)
  end
  else begin
    let a = ref (Fmat.to_matrix x) in
    List.iter
      (fun l ->
        match l with
        | Dense d ->
            let out = Matrix.matmul !a (dense_wt d) in
            for i = 0 to out.Matrix.rows - 1 do
              let base = i * out.Matrix.cols in
              for j = 0 to out.Matrix.cols - 1 do
                out.Matrix.data.(base + j) <-
                  out.Matrix.data.(base + j) +. d.b.(j)
              done
            done;
            a := out
        | Relu _ -> a := Matrix.map (fun v -> if v > 0.0 then v else 0.0) !a
        | Tanh _ -> a := Matrix.map tanh !a
        | Dropout _ -> ()
        | Conv1d _ | MaxPool _ -> assert false)
      net.layers;
    let logits = !a in
    Array.init logits.Matrix.rows (fun i ->
        let base = i * logits.Matrix.cols in
        let best = ref 0 in
        for j = 1 to logits.Matrix.cols - 1 do
          if
            logits.Matrix.data.(base + j) > logits.Matrix.data.(base + !best)
          then best := j
        done;
        !best)
  end

let size_bytes (net : t) : int =
  List.fold_left
    (fun acc l ->
      acc
      +
      match l with
      | Dense d -> 8 * ((d.w.rows * d.w.cols) + Array.length d.b)
      | Conv1d c -> 8 * ((c.filters.rows * c.filters.cols) + Array.length c.cbias)
      | Relu _ | Tanh _ | Dropout _ | MaxPool _ -> 0)
    0 net.layers

(* -- snapshots -------------------------------------------------------------- *)

module Bin = Yali_util.Bin

let layer_to_bin b (l : layer) =
  match l with
  | Dense d ->
      Bin.w_u8 b 0;
      Matrix.to_bin b d.w;
      Bin.w_floats b d.b
  | Relu _ -> Bin.w_u8 b 1
  | Tanh _ -> Bin.w_u8 b 2
  | Dropout d ->
      Bin.w_u8 b 3;
      Bin.w_f64 b d.p
  | Conv1d c ->
      Bin.w_u8 b 4;
      Bin.w_u32 b c.c_in;
      Bin.w_u32 b c.c_out;
      Bin.w_u32 b c.kernel;
      Bin.w_u32 b c.stride;
      Matrix.to_bin b c.filters;
      Bin.w_floats b c.cbias
  | MaxPool m ->
      Bin.w_u8 b 5;
      Bin.w_u32 b m.size

let layer_of_bin r : layer =
  match Bin.r_u8 r with
  | 0 ->
      let w = Matrix.of_bin r in
      let b = Bin.r_floats r in
      if Array.length b <> w.Matrix.rows then
        Bin.fail r "dense layer bias/weight shape mismatch";
      Dense { w; b; last_in = [||]; wt = None }
  | 1 -> Relu { mask = [||] }
  | 2 -> Tanh { out = [||] }
  | 3 -> Dropout { p = Bin.r_f64 r; dmask = [||] }
  | 4 ->
      let c_in = Bin.r_u32 r in
      let c_out = Bin.r_u32 r in
      let kernel = Bin.r_u32 r in
      let stride = Bin.r_u32 r in
      let filters = Matrix.of_bin r in
      let cbias = Bin.r_floats r in
      if stride <= 0 || kernel <= 0 || c_in <= 0 || c_out <= 0 then
        Bin.fail r "conv layer with non-positive shape";
      if filters.Matrix.rows <> c_out || filters.Matrix.cols <> c_in * kernel
      then Bin.fail r "conv layer filter shape mismatch";
      if Array.length cbias <> c_out then
        Bin.fail r "conv layer bias shape mismatch";
      Conv1d
        { c_in; c_out; kernel; stride; filters; cbias; conv_in = [||];
          in_len = 0; ft = None }
  | 5 ->
      let size = Bin.r_u32 r in
      if size <= 0 then Bin.fail r "maxpool layer with non-positive size";
      MaxPool { size; argmax = [||]; pool_in_len = 0 }
  | n -> Bin.fail r (Printf.sprintf "bad layer tag %d" n)

let to_bin b (net : t) =
  Bin.w_u32 b net.n_classes;
  Bin.w_seq b layer_to_bin net.layers

let of_bin r : t =
  let n_classes = Bin.r_u32 r in
  let layers = Bin.r_seq r layer_of_bin in
  { layers; n_classes }
