(** A small feed-forward neural-network kernel with hand-written
    backpropagation: dense, ReLU, tanh, dropout, 1-D convolution and max
    pooling layers, plus a softmax/cross-entropy head.  Shared by the MLP,
    CNN and DGCNN models. *)

module Rng = Yali_util.Rng

type dense = {
  mutable w : Matrix.t;  (** out x in *)
  mutable b : float array;
  mutable last_in : float array;
}

type conv1d = {
  c_in : int;
  c_out : int;
  kernel : int;
  stride : int;
  mutable filters : Matrix.t;  (** c_out x (c_in * kernel) *)
  mutable cbias : float array;
  mutable conv_in : float array;
  mutable in_len : int;
}

type layer =
  | Dense of dense
  | Relu of { mutable mask : bool array }
  | Tanh of { mutable out : float array }
  | Dropout of { p : float; mutable dmask : float array }
  | Conv1d of conv1d
  | MaxPool of { size : int; mutable argmax : int array; mutable pool_in_len : int }

let dense (rng : Rng.t) ~(d_in : int) ~(d_out : int) : layer =
  Dense
    {
      w = Matrix.random rng d_out d_in ~scale:(sqrt (2.0 /. float_of_int d_in));
      b = Array.make d_out 0.0;
      last_in = [||];
    }

let relu () = Relu { mask = [||] }
let tanh_layer () = Tanh { out = [||] }
let dropout p = Dropout { p; dmask = [||] }

let conv1d (rng : Rng.t) ~(c_in : int) ~(c_out : int) ~(kernel : int)
    ~(stride : int) : layer =
  Conv1d
    {
      c_in;
      c_out;
      kernel;
      stride;
      filters =
        Matrix.random rng c_out (c_in * kernel)
          ~scale:(sqrt (2.0 /. float_of_int (c_in * kernel)));
      cbias = Array.make c_out 0.0;
      conv_in = [||];
      in_len = 0;
    }

let maxpool size = MaxPool { size; argmax = [||]; pool_in_len = 0 }

(* Conv layout: a multi-channel signal of [c] channels and length [l] is a
   flat array of size c*l, channel-major: index = ch*l + pos. *)

let conv_out_len (c : conv1d) (in_len : int) : int =
  ((in_len - c.kernel) / c.stride) + 1

let forward ?(train = false) ?rng (layer : layer) (x : float array) :
    float array =
  match layer with
  | Dense d ->
      d.last_in <- x;
      let out = Matrix.mv d.w x in
      Array.mapi (fun i v -> v +. d.b.(i)) out
  | Relu r ->
      r.mask <- Array.map (fun v -> v > 0.0) x;
      Array.map (fun v -> if v > 0.0 then v else 0.0) x
  | Tanh t ->
      let out = Array.map tanh x in
      t.out <- out;
      out
  | Dropout d ->
      if train then begin
        let rng = Option.get rng in
        d.dmask <-
          Array.map
            (fun _ -> if Rng.float rng < d.p then 0.0 else 1.0 /. (1.0 -. d.p))
            x;
        Array.mapi (fun i v -> v *. d.dmask.(i)) x
      end
      else x
  | Conv1d c ->
      let in_len = Array.length x / c.c_in in
      c.conv_in <- x;
      c.in_len <- in_len;
      let out_len = conv_out_len c in_len in
      if out_len <= 0 then Array.make c.c_out 0.0
      else begin
        let out = Array.make (c.c_out * out_len) 0.0 in
        let fd = c.filters.data and fcols = c.filters.cols in
        for o = 0 to c.c_out - 1 do
          let fbase = o * fcols in
          for p = 0 to out_len - 1 do
            let acc = ref c.cbias.(o) in
            for ci = 0 to c.c_in - 1 do
              for k = 0 to c.kernel - 1 do
                acc :=
                  !acc
                  +. Array.unsafe_get fd (fbase + (ci * c.kernel) + k)
                     *. x.((ci * in_len) + (p * c.stride) + k)
              done
            done;
            out.((o * out_len) + p) <- !acc
          done
        done;
        out
      end
  | MaxPool m ->
      (* single-channel view: pool every channel independently requires
         knowing the channel count; we pool over the flat layout in windows
         of [size], which for channel-major layouts pools within channels as
         long as the length is a multiple of [size] *)
      let n = Array.length x in
      let out_n = n / m.size in
      m.pool_in_len <- n;
      m.argmax <- Array.make out_n 0;
      Array.init out_n (fun i ->
          let base = i * m.size in
          let best = ref base in
          for k = 1 to m.size - 1 do
            if base + k < n && x.(base + k) > x.(!best) then best := base + k
          done;
          m.argmax.(i) <- !best;
          x.(!best))

(* Backward pass: given dL/d(out), update parameter grads in-place (SGD with
   the supplied learning rate) and return dL/d(in). *)
let backward ~(lr : float) (layer : layer) (dout : float array) : float array
    =
  match layer with
  | Dense d ->
      let din = Matrix.vm dout d.w in
      (* update: w -= lr * dout^T last_in ; b -= lr * dout.  Flat offsets
         into the weight data; the float expressions are unchanged
         ([lr *. dout.(o) *. x] associates left, so hoisting the scale is
         the same product). *)
      let wd = d.w.data and cols = d.w.cols in
      for o = 0 to d.w.rows - 1 do
        d.b.(o) <- d.b.(o) -. (lr *. dout.(o));
        let s = lr *. dout.(o) in
        let base = o * cols in
        for i = 0 to cols - 1 do
          Array.unsafe_set wd (base + i)
            (Array.unsafe_get wd (base + i) -. (s *. d.last_in.(i)))
        done
      done;
      din
  | Relu r -> Array.mapi (fun i v -> if r.mask.(i) then v else 0.0) dout
  | Tanh t -> Array.mapi (fun i v -> v *. (1.0 -. (t.out.(i) *. t.out.(i)))) dout
  | Dropout d ->
      if Array.length d.dmask = Array.length dout then
        Array.mapi (fun i v -> v *. d.dmask.(i)) dout
      else dout
  | Conv1d c ->
      let in_len = c.in_len in
      let out_len = conv_out_len c in_len in
      let din = Array.make (Array.length c.conv_in) 0.0 in
      if out_len > 0 then begin
        let fd = c.filters.data and fcols = c.filters.cols in
        for o = 0 to c.c_out - 1 do
          let fbase = o * fcols in
          let gb = ref 0.0 in
          for p = 0 to out_len - 1 do
            let g = dout.((o * out_len) + p) in
            gb := !gb +. g;
            let s = lr *. g in
            for ci = 0 to c.c_in - 1 do
              for k = 0 to c.kernel - 1 do
                let xi = (ci * in_len) + (p * c.stride) + k in
                let fi = fbase + (ci * c.kernel) + k in
                let fv = Array.unsafe_get fd fi in
                din.(xi) <- din.(xi) +. (g *. fv);
                Array.unsafe_set fd fi (fv -. (s *. c.conv_in.(xi)))
              done
            done
          done;
          c.cbias.(o) <- c.cbias.(o) -. (lr *. !gb)
        done
      end;
      din
  | MaxPool m ->
      let din = Array.make m.pool_in_len 0.0 in
      Array.iteri (fun i g -> din.(m.argmax.(i)) <- din.(m.argmax.(i)) +. g) dout;
      din

type t = { layers : layer list; n_classes : int }

let forward_all ?(train = false) ?rng (net : t) (x : float array) :
    float array =
  List.fold_left (fun x l -> forward ~train ?rng l x) x net.layers

let backward_all ~(lr : float) (net : t) (dout : float array) : float array =
  List.fold_left (fun d l -> backward ~lr l d) dout (List.rev net.layers)

let softmax (z : float array) : float array =
  let m = Array.fold_left max neg_infinity z in
  let e = Array.map (fun v -> exp (v -. m)) z in
  let s = Array.fold_left ( +. ) 0.0 e in
  Array.map (fun v -> v /. s) e

(** One SGD step on a (sample, label) pair with cross-entropy loss; returns
    the loss and the gradient at the input (useful for models that have
    differentiable layers below the network, like the DGCNN's graph
    convolutions). *)
let train_step ~(lr : float) ~(rng : Rng.t) (net : t) (x : float array)
    (y : int) : float * float array =
  let logits = forward_all ~train:true ~rng net x in
  let p = softmax logits in
  let loss = -.log (max 1e-12 p.(y)) in
  let dlogits = Array.mapi (fun i v -> v -. if i = y then 1.0 else 0.0) p in
  let dx = backward_all ~lr net dlogits in
  (loss, dx)

(** Raw output-layer activations of one inference pass (no softmax). *)
let logits (net : t) (x : float array) : float array =
  forward_all ~train:false net x

let predict (net : t) (x : float array) : int =
  let logits = logits net x in
  let best = ref 0 in
  Array.iteri (fun i v -> if v > logits.(!best) then best := i) logits;
  !best

(* Batched inference.  A dense-only net (Dense/Relu/Tanh/Dropout) runs the
   whole batch as one cache-tiled matmul per layer, with the bias added
   after accumulation — the same summation order as the per-row [mv] path.
   Anything with a Conv1d/MaxPool falls back to per-row prediction. *)
let predict_batch (net : t) (x : Fmat.t) : int array =
  let dense_only =
    List.for_all
      (function
        | Dense _ | Relu _ | Tanh _ | Dropout _ -> true
        | Conv1d _ | MaxPool _ -> false)
      net.layers
  in
  if not dense_only then begin
    let buf = Array.make x.Fmat.d 0.0 in
    Array.init x.Fmat.n (fun i ->
        Fmat.row_into x i buf;
        predict net buf)
  end
  else begin
    let a = ref (Fmat.to_matrix x) in
    List.iter
      (fun l ->
        match l with
        | Dense d ->
            let out = Matrix.matmul !a (Matrix.transpose d.w) in
            for i = 0 to out.Matrix.rows - 1 do
              let base = i * out.Matrix.cols in
              for j = 0 to out.Matrix.cols - 1 do
                out.Matrix.data.(base + j) <-
                  out.Matrix.data.(base + j) +. d.b.(j)
              done
            done;
            a := out
        | Relu _ -> a := Matrix.map (fun v -> if v > 0.0 then v else 0.0) !a
        | Tanh _ -> a := Matrix.map tanh !a
        | Dropout _ -> ()
        | Conv1d _ | MaxPool _ -> assert false)
      net.layers;
    let logits = !a in
    Array.init logits.Matrix.rows (fun i ->
        let base = i * logits.Matrix.cols in
        let best = ref 0 in
        for j = 1 to logits.Matrix.cols - 1 do
          if
            logits.Matrix.data.(base + j) > logits.Matrix.data.(base + !best)
          then best := j
        done;
        !best)
  end

let size_bytes (net : t) : int =
  List.fold_left
    (fun acc l ->
      acc
      +
      match l with
      | Dense d -> 8 * ((d.w.rows * d.w.cols) + Array.length d.b)
      | Conv1d c -> 8 * ((c.filters.rows * c.filters.cols) + Array.length c.cbias)
      | Relu _ | Tanh _ | Dropout _ | MaxPool _ -> 0)
    0 net.layers

(* -- snapshots -------------------------------------------------------------- *)

module Bin = Yali_util.Bin

let layer_to_bin b (l : layer) =
  match l with
  | Dense d ->
      Bin.w_u8 b 0;
      Matrix.to_bin b d.w;
      Bin.w_floats b d.b
  | Relu _ -> Bin.w_u8 b 1
  | Tanh _ -> Bin.w_u8 b 2
  | Dropout d ->
      Bin.w_u8 b 3;
      Bin.w_f64 b d.p
  | Conv1d _ | MaxPool _ ->
      invalid_arg "Nn.to_bin: convolutional layers are not snapshot-able"

let layer_of_bin r : layer =
  match Bin.r_u8 r with
  | 0 ->
      let w = Matrix.of_bin r in
      let b = Bin.r_floats r in
      if Array.length b <> w.Matrix.rows then
        Bin.fail r "dense layer bias/weight shape mismatch";
      Dense { w; b; last_in = [||] }
  | 1 -> Relu { mask = [||] }
  | 2 -> Tanh { out = [||] }
  | 3 -> Dropout { p = Bin.r_f64 r; dmask = [||] }
  | n -> Bin.fail r (Printf.sprintf "bad layer tag %d" n)

let to_bin b (net : t) =
  Bin.w_u32 b net.n_classes;
  Bin.w_seq b layer_to_bin net.layers

let of_bin r : t =
  let n_classes = Bin.r_u32 r in
  let layers = Bin.r_seq r layer_of_bin in
  { layers; n_classes }
