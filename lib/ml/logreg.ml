(** Multinomial logistic regression (softmax), trained with mini-batch
    gradient descent and L2 regularisation — SciKit's [lr] counterpart.

    Training walks flat offsets into the {!Fmat} training matrix; the float
    expressions and their evaluation order are those of the classic
    row-array implementation, so the fitted model is bit-identical to it
    (test/test_fmat.ml checks this against {!Reference.Logreg}). *)

module Rng = Yali_util.Rng

type t = {
  scaler : Features.scaler;
  weights : Matrix.t;  (** n_classes x d *)
  bias : float array;
  n_classes : int;
}

type params = { epochs : int; lr : float; l2 : float; batch : int }

let default_params = { epochs = 60; lr = 0.1; l2 = 1e-4; batch = 32 }

let softmax (z : float array) : float array =
  let m = Array.fold_left max neg_infinity z in
  let e = Array.map (fun x -> exp (x -. m)) z in
  let s = Array.fold_left ( +. ) 0.0 e in
  Array.map (fun x -> x /. s) e

let logits (w : Matrix.t) (bias : float array) (x : float array) : float array
    =
  Array.init (Array.length bias) (fun c ->
      let acc = ref bias.(c) in
      for j = 0 to Array.length x - 1 do
        acc := !acc +. (Matrix.get w c j *. x.(j))
      done;
      !acc)

(* logits of row [i] of a flat matrix: same accumulation order as [logits] *)
let logits_row (w : Matrix.t) (bias : float array) (xd : float array)
    (xbase : int) (d : int) : float array =
  Array.init (Array.length bias) (fun c ->
      let acc = ref bias.(c) in
      let wbase = c * w.Matrix.cols in
      for j = 0 to d - 1 do
        acc :=
          !acc
          +. Array.unsafe_get w.Matrix.data (wbase + j)
             *. Array.unsafe_get xd (xbase + j)
      done;
      !acc)

let argmax (v : float array) : int =
  let best = ref 0 in
  Array.iteri (fun i x -> if x > v.(!best) then best := i) v;
  !best

let train ?(params = default_params) (rng : Rng.t) ~(n_classes : int)
    (x : Fmat.t) (ys : int array) : t =
  let scaler, x = Features.fit_transform_fmat x in
  let n = x.Fmat.n in
  let d = x.Fmat.d in
  let xd = x.Fmat.data in
  let w = Matrix.random rng n_classes d ~scale:0.01 in
  let bias = Array.make n_classes 0.0 in
  let order = Array.init n Fun.id in
  for epoch = 0 to params.epochs - 1 do
    let lr = params.lr /. (1.0 +. (0.05 *. float_of_int epoch)) in
    (* shuffle *)
    for i = n - 1 downto 1 do
      let j = Rng.int rng (i + 1) in
      let tmp = order.(i) in
      order.(i) <- order.(j);
      order.(j) <- tmp
    done;
    let b = ref 0 in
    while !b < n do
      let hi = min n (!b + params.batch) in
      let gw = Matrix.create n_classes d and gb = Array.make n_classes 0.0 in
      let gd = gw.Matrix.data in
      for k = !b to hi - 1 do
        let i = order.(k) in
        let xbase = i * d in
        let p = softmax (logits_row w bias xd xbase d) in
        for c = 0 to n_classes - 1 do
          let err = p.(c) -. (if c = ys.(i) then 1.0 else 0.0) in
          gb.(c) <- gb.(c) +. err;
          let gbase = c * d in
          for j = 0 to d - 1 do
            Array.unsafe_set gd (gbase + j)
              (Array.unsafe_get gd (gbase + j)
              +. (err *. Array.unsafe_get xd (xbase + j)))
          done
        done
      done;
      let bs = float_of_int (hi - !b) in
      let wd = w.Matrix.data in
      for c = 0 to n_classes - 1 do
        bias.(c) <- bias.(c) -. (lr *. gb.(c) /. bs);
        let base = c * d in
        for j = 0 to d - 1 do
          let wij = Array.unsafe_get wd (base + j) in
          Array.unsafe_set wd (base + j)
            (wij
            -. (lr
               *. ((Array.unsafe_get gd (base + j) /. bs)
                  +. (params.l2 *. wij))))
        done
      done;
      b := hi
    done
  done;
  { scaler; weights = w; bias; n_classes }

(** Minibatch SGD over streamed blocks (DESIGN.md §12).  Each epoch walks
    the blocks in order, shuffling {e within} each block with the same
    persistent-order Fisher–Yates as {!train}; minibatches never cross a
    block boundary.  When the whole corpus fits one block — the default
    [block_rows] on a small corpus — every rng draw, shuffle, batch
    boundary and float operation coincides with {!train}'s, so the fitted
    model is bit-identical (the [corpus/stream-vs-inmem] oracle holds
    {!Model.save} blobs equal). *)
let train_stream ?(params = default_params) ?block_rows (rng : Rng.t)
    ~(n_classes : int) (src : Fblock.source) (ys : int array) : t =
  let scaler = Features.fit_stream ?block_rows src in
  let n = Fblock.rows src in
  let d = Fblock.dim src in
  let w = Matrix.random rng n_classes d ~scale:0.01 in
  let bias = Array.make n_classes 0.0 in
  let bs_rows =
    match block_rows with Some b -> b | None -> Fblock.default_block_rows
  in
  (* per-block sample orders persist across epochs, as [train]'s one global
     order does *)
  let orders =
    Array.init (Fblock.n_blocks ?block_rows src) (fun b ->
        Array.init (min bs_rows (n - (b * bs_rows))) Fun.id)
  in
  for epoch = 0 to params.epochs - 1 do
    let lr = params.lr /. (1.0 +. (0.05 *. float_of_int epoch)) in
    Fblock.iter_blocks ?block_rows src (fun lo block ->
        Features.transform_fmat_inplace scaler block;
        let bn = block.Fmat.n in
        let xd = block.Fmat.data in
        let order = orders.(lo / bs_rows) in
        for i = bn - 1 downto 1 do
          let j = Rng.int rng (i + 1) in
          let tmp = order.(i) in
          order.(i) <- order.(j);
          order.(j) <- tmp
        done;
        let b = ref 0 in
        while !b < bn do
          let hi = min bn (!b + params.batch) in
          let gw = Matrix.create n_classes d and gb = Array.make n_classes 0.0 in
          let gd = gw.Matrix.data in
          for k = !b to hi - 1 do
            let i = order.(k) in
            let xbase = i * d in
            let p = softmax (logits_row w bias xd xbase d) in
            for c = 0 to n_classes - 1 do
              let err = p.(c) -. (if c = ys.(lo + i) then 1.0 else 0.0) in
              gb.(c) <- gb.(c) +. err;
              let gbase = c * d in
              for j = 0 to d - 1 do
                Array.unsafe_set gd (gbase + j)
                  (Array.unsafe_get gd (gbase + j)
                  +. (err *. Array.unsafe_get xd (xbase + j)))
              done
            done
          done;
          let bs = float_of_int (hi - !b) in
          let wd = w.Matrix.data in
          for c = 0 to n_classes - 1 do
            bias.(c) <- bias.(c) -. (lr *. gb.(c) /. bs);
            let base = c * d in
            for j = 0 to d - 1 do
              let wij = Array.unsafe_get wd (base + j) in
              Array.unsafe_set wd (base + j)
                (wij
                -. (lr
                   *. ((Array.unsafe_get gd (base + j) /. bs)
                      +. (params.l2 *. wij))))
            done
          done;
          b := hi
        done)
  done;
  { scaler; weights = w; bias; n_classes }

let weights (t : t) : Matrix.t = t.weights

let predict (t : t) (x : float array) : int =
  let x = Features.transform t.scaler x in
  argmax (logits t.weights t.bias x)

(** Per-class scores (raw logits).  Same standardisation and accumulation
    order as {!predict}, so the first-maximum of the returned vector IS the
    prediction. *)
let margins (t : t) (x : float array) : float array =
  let x = Features.transform t.scaler x in
  logits t.weights t.bias x

(** Classify every row: one cache-tiled [matmul_bias] computes the whole
    batch's logits with the same per-sample summation order as {!predict}. *)
let predict_batch (t : t) (x : Fmat.t) : int array =
  let x = Fmat.copy x in
  Features.transform_fmat_inplace t.scaler x;
  let logits =
    Matrix.matmul_bias ~bias:t.bias (Fmat.to_matrix x)
      (Matrix.transpose t.weights)
  in
  Array.init logits.Matrix.rows (fun i ->
      let base = i * logits.Matrix.cols in
      let best = ref 0 in
      for c = 1 to logits.Matrix.cols - 1 do
        if logits.Matrix.data.(base + c) > logits.Matrix.data.(base + !best)
        then best := c
      done;
      !best)

let size_bytes (t : t) : int =
  (8 * t.weights.rows * t.weights.cols) + (8 * Array.length t.bias)

module Bin = Yali_util.Bin

let to_bin b (t : t) =
  Features.scaler_to_bin b t.scaler;
  Matrix.to_bin b t.weights;
  Bin.w_floats b t.bias;
  Bin.w_u32 b t.n_classes

let of_bin r : t =
  let scaler = Features.scaler_of_bin r in
  let weights = Matrix.of_bin r in
  let bias = Bin.r_floats r in
  let n_classes = Bin.r_u32 r in
  if Array.length bias <> n_classes || weights.Matrix.rows <> n_classes then
    Bin.fail r "logreg shape mismatch";
  { scaler; weights; bias; n_classes }
