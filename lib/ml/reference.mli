(** Frozen pre-kernel-layer model implementations, kept {e only} for the
    differential property tests (test/test_fmat.ml) and the before/after
    numbers of [bench kernels].  Framework code must not depend on this
    module.  See the implementation's module comment for the one deliberate
    deviation (the tree adopts the rewritten tree's total feature
    tie-break). *)

module Decision_tree : sig
  type t

  type params = {
    max_depth : int;
    min_samples_split : int;
    features_per_split : int option;
  }

  val default_params : params

  val train :
    ?params:params ->
    Yali_util.Rng.t ->
    n_classes:int ->
    float array array ->
    int array ->
    t

  val predict : t -> float array -> int
end

module Random_forest : sig
  type t

  type params = { n_trees : int; max_depth : int }

  val default_params : params

  val train :
    ?params:params ->
    Yali_util.Rng.t ->
    n_classes:int ->
    float array array ->
    int array ->
    t

  val predict : t -> float array -> int
end

module Knn : sig
  type t

  val train :
    ?k:int -> n_classes:int -> float array array -> int array -> t

  val predict : t -> float array -> int
end

module Logreg : sig
  type t

  type params = { epochs : int; lr : float; l2 : float; batch : int }

  val default_params : params

  val train :
    ?params:params ->
    Yali_util.Rng.t ->
    n_classes:int ->
    float array array ->
    int array ->
    t

  val predict : t -> float array -> int
end
