(** Frozen pre-kernel-layer model implementations, kept {e only} for the
    differential property tests (test/test_fmat.ml) and the before/after
    numbers of [bench kernels].  Framework code must not depend on this
    module.  See the implementation's module comment for the one deliberate
    deviation (the tree adopts the rewritten tree's total feature
    tie-break). *)

module Decision_tree : sig
  type t

  type params = {
    max_depth : int;
    min_samples_split : int;
    features_per_split : int option;
  }

  val default_params : params

  val train :
    ?params:params ->
    Yali_util.Rng.t ->
    n_classes:int ->
    float array array ->
    int array ->
    t

  val predict : t -> float array -> int
end

module Random_forest : sig
  type t

  type params = { n_trees : int; max_depth : int }

  val default_params : params

  val train :
    ?params:params ->
    Yali_util.Rng.t ->
    n_classes:int ->
    float array array ->
    int array ->
    t

  val predict : t -> float array -> int
end

module Knn : sig
  type t

  val train :
    ?k:int -> n_classes:int -> float array array -> int array -> t

  val predict : t -> float array -> int
end

module Logreg : sig
  type t

  type params = { epochs : int; lr : float; l2 : float; batch : int }

  val default_params : params

  val train :
    ?params:params ->
    Yali_util.Rng.t ->
    n_classes:int ->
    float array array ->
    int array ->
    t

  val predict : t -> float array -> int
end

(** Frozen naive minibatch trainers for the neural tier (DESIGN.md §15): the
    SAME minibatch algorithm as [Nn.train_batch] and the cnn/dgcnn trainers
    — same shard boundaries, accumulation chains and rng draw order — as
    sequential per-sample boxed loops.  The ml/nn-kernel-vs-reference
    oracles and [bench nn] pin the kernelized trainers bit-identical to
    these, and measure the speedup against them. *)

module Nnb : sig
  (** Naive counterpart of [Nn.train_batch], training through [Nn.view]
      (shared storage; invalidates the net's transpose caches itself). *)
  val train_batch :
    lr:float ->
    rng:Yali_util.Rng.t ->
    Nn.t ->
    Fmat.t ->
    int array ->
    float * Fmat.t
end

module Cnn : sig
  (** Naive counterpart of [Cnn.train]; bit-identical weights. *)
  val train :
    ?params:Cnn.params ->
    Yali_util.Rng.t ->
    n_classes:int ->
    Fmat.t ->
    int array ->
    Cnn.t
end

module Dgcnn : sig
  (** Naive counterpart of [Dgcnn.train]; bit-identical weights. *)
  val train :
    ?params:Dgcnn.params ->
    Yali_util.Rng.t ->
    n_classes:int ->
    feat_dim:int ->
    Yali_embeddings.Graph.t array ->
    int array ->
    Dgcnn.t
end
