(** The classifier-model registry (paper, Figure 3): five SciKit-style
    stochastic models plus the two variants of Zhang et al.'s neural network
    ([cnn] on flat embeddings, [dgcnn] on graph embeddings), behind a single
    training interface.

    Flat models train on the contiguous {!Fmat} feature matrix and expose
    both a per-vector [predict] (the evader's interactive interface) and a
    batched [predict_batch] over a whole challenge matrix (the arena's bulk
    path: one cache-tiled matmul for the linear models, a pool fan-out for
    the forest). *)

module Rng = Yali_util.Rng
module Graph = Yali_embeddings.Graph

type trained = {
  predict : float array -> int;
  predict_batch : Fmat.t -> int array;
  size_bytes : int;
}

type flat = {
  fname : string;
  ftrain : Rng.t -> n_classes:int -> Fmat.t -> int array -> trained;
}

type gtrained = { gpredict : Graph.t -> int; gsize_bytes : int }

type graph = {
  gname : string;
  gtrain :
    Rng.t -> n_classes:int -> feat_dim:int -> Graph.t array -> int array ->
    gtrained;
}

let rf =
  {
    fname = "rf";
    ftrain =
      (fun rng ~n_classes x ys ->
        let m = Random_forest.train rng ~n_classes x ys in
        {
          predict = Random_forest.predict m;
          predict_batch = Random_forest.predict_batch m;
          size_bytes = Random_forest.size_bytes m + Features.bytes_of_fmat x;
        });
  }

let svm =
  {
    fname = "svm";
    ftrain =
      (fun rng ~n_classes x ys ->
        let m = Svm.train rng ~n_classes x ys in
        {
          predict = Svm.predict m;
          predict_batch = Svm.predict_batch m;
          size_bytes = Svm.size_bytes m;
        });
  }

let knn =
  {
    fname = "knn";
    ftrain =
      (fun _rng ~n_classes x ys ->
        let m = Knn.train ~n_classes x ys in
        {
          predict = Knn.predict m;
          predict_batch = Knn.predict_batch m;
          size_bytes = Knn.size_bytes m;
        });
  }

let lr =
  {
    fname = "lr";
    ftrain =
      (fun rng ~n_classes x ys ->
        let m = Logreg.train rng ~n_classes x ys in
        {
          predict = Logreg.predict m;
          predict_batch = Logreg.predict_batch m;
          size_bytes = Logreg.size_bytes m;
        });
  }

let mlp =
  {
    fname = "mlp";
    ftrain =
      (fun rng ~n_classes x ys ->
        let m = Mlp.train rng ~n_classes x ys in
        {
          predict = Mlp.predict m;
          predict_batch = Mlp.predict_batch m;
          size_bytes = Mlp.size_bytes m;
        });
  }

let cnn =
  {
    fname = "cnn";
    ftrain =
      (fun rng ~n_classes x ys ->
        let m = Cnn.train rng ~n_classes x ys in
        {
          predict = Cnn.predict m;
          predict_batch = Cnn.predict_batch m;
          (* the paper's cnn is a memory hog relative to mlp: it keeps the
             full activation planes; reflect the working-set footprint *)
          size_bytes = Cnn.size_bytes m + (4 * Features.bytes_of_fmat x);
        });
  }

let dgcnn =
  {
    gname = "dgcnn";
    gtrain =
      (fun rng ~n_classes ~feat_dim graphs ys ->
        let m = Dgcnn.train rng ~n_classes ~feat_dim graphs ys in
        { gpredict = Dgcnn.predict m; gsize_bytes = Dgcnn.size_bytes m });
  }

(** The six models of the paper's Figures 7–12 grids, which all consume the
    flat HISTOGRAM embedding. *)
let all_flat : flat list = [ rf; svm; knn; lr; mlp; cnn ]

let find_flat name = List.find_opt (fun m -> m.fname = name) all_flat
