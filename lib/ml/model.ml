(** The classifier-model registry (paper, Figure 3): five SciKit-style
    stochastic models plus the two variants of Zhang et al.'s neural network
    ([cnn] on flat embeddings, [dgcnn] on graph embeddings), behind a single
    training interface.

    Flat models train on the contiguous {!Fmat} feature matrix and expose
    both a per-vector [predict] (the evader's interactive interface) and a
    batched [predict_batch] over a whole challenge matrix (the arena's bulk
    path: one cache-tiled matmul for the linear models, a pool fan-out for
    the forest). *)

module Rng = Yali_util.Rng
module Graph = Yali_embeddings.Graph

type trained = {
  predict : float array -> int;
  predict_batch : Fmat.t -> int array;
  size_bytes : int;
}

type flat = {
  fname : string;
  ftrain : Rng.t -> n_classes:int -> Fmat.t -> int array -> trained;
}

type gtrained = { gpredict : Graph.t -> int; gsize_bytes : int }

type graph = {
  gname : string;
  gtrain :
    Rng.t -> n_classes:int -> feat_dim:int -> Graph.t array -> int array ->
    gtrained;
}

let rf =
  {
    fname = "rf";
    ftrain =
      (fun rng ~n_classes x ys ->
        let m = Random_forest.train rng ~n_classes x ys in
        {
          predict = Random_forest.predict m;
          predict_batch = Random_forest.predict_batch m;
          size_bytes = Random_forest.size_bytes m + Features.bytes_of_fmat x;
        });
  }

let svm =
  {
    fname = "svm";
    ftrain =
      (fun rng ~n_classes x ys ->
        let m = Svm.train rng ~n_classes x ys in
        {
          predict = Svm.predict m;
          predict_batch = Svm.predict_batch m;
          size_bytes = Svm.size_bytes m;
        });
  }

let knn =
  {
    fname = "knn";
    ftrain =
      (fun _rng ~n_classes x ys ->
        let m = Knn.train ~n_classes x ys in
        {
          predict = Knn.predict m;
          predict_batch = Knn.predict_batch m;
          size_bytes = Knn.size_bytes m;
        });
  }

let lr =
  {
    fname = "lr";
    ftrain =
      (fun rng ~n_classes x ys ->
        let m = Logreg.train rng ~n_classes x ys in
        {
          predict = Logreg.predict m;
          predict_batch = Logreg.predict_batch m;
          size_bytes = Logreg.size_bytes m;
        });
  }

let mlp =
  {
    fname = "mlp";
    ftrain =
      (fun rng ~n_classes x ys ->
        let m = Mlp.train rng ~n_classes x ys in
        {
          predict = Mlp.predict m;
          predict_batch = Mlp.predict_batch m;
          size_bytes = Mlp.size_bytes m;
        });
  }

let cnn =
  {
    fname = "cnn";
    ftrain =
      (fun rng ~n_classes x ys ->
        let m = Cnn.train rng ~n_classes x ys in
        {
          predict = Cnn.predict m;
          predict_batch = Cnn.predict_batch m;
          (* the paper's cnn is a memory hog relative to mlp: it keeps the
             full activation planes; reflect the working-set footprint *)
          size_bytes = Cnn.size_bytes m + (4 * Features.bytes_of_fmat x);
        });
  }

let dgcnn =
  {
    gname = "dgcnn";
    gtrain =
      (fun rng ~n_classes ~feat_dim graphs ys ->
        let m = Dgcnn.train rng ~n_classes ~feat_dim graphs ys in
        { gpredict = Dgcnn.predict m; gsize_bytes = Dgcnn.size_bytes m });
  }

(** The six models of the paper's Figures 7–12 grids, which all consume the
    flat HISTOGRAM embedding. *)
let all_flat : flat list = [ rf; svm; knn; lr; mlp; cnn ]

let find_flat name = List.find_opt (fun m -> m.fname = name) all_flat

(* -- snapshots -------------------------------------------------------------- *)

module Bin = Yali_util.Bin

type snapshot =
  | S_lr of Logreg.t
  | S_svm of Svm.t
  | S_knn of Knn.t
  | S_mlp of Mlp.t
  | S_rf of Random_forest.t
  | S_cnn of Cnn.t

let snapshot_kind = function
  | S_lr _ -> "lr"
  | S_svm _ -> "svm"
  | S_knn _ -> "knn"
  | S_mlp _ -> "mlp"
  | S_rf _ -> "rf"
  | S_cnn _ -> "cnn"

let snapshot_kinds = [ "rf"; "svm"; "knn"; "lr"; "mlp"; "cnn" ]

let train_snapshot name rng ~n_classes x ys =
  match name with
  | "lr" -> Some (S_lr (Logreg.train rng ~n_classes x ys))
  | "svm" -> Some (S_svm (Svm.train rng ~n_classes x ys))
  | "knn" -> Some (S_knn (Knn.train ~n_classes x ys))
  | "mlp" -> Some (S_mlp (Mlp.train rng ~n_classes x ys))
  | "rf" -> Some (S_rf (Random_forest.train rng ~n_classes x ys))
  | "cnn" -> Some (S_cnn (Cnn.train rng ~n_classes x ys))
  | _ -> None

(** The out-of-core counterpart of {!train_snapshot}: lr/svm/mlp/cnn train
    by minibatch SGD over streamed blocks, rf grows trees per block; knn
    keeps every training row by definition and materialises the source.  On
    a source that fits one block the snapshot is bit-identical to
    {!train_snapshot}'s. *)
let train_snapshot_stream ?block_rows name rng ~n_classes
    (src : Fblock.source) ys =
  match name with
  | "lr" -> Some (S_lr (Logreg.train_stream ?block_rows rng ~n_classes src ys))
  | "svm" -> Some (S_svm (Svm.train_stream ?block_rows rng ~n_classes src ys))
  | "knn" -> Some (S_knn (Knn.train ~n_classes (Fblock.materialize src) ys))
  | "mlp" -> Some (S_mlp (Mlp.train_stream ?block_rows rng ~n_classes src ys))
  | "rf" ->
      Some (S_rf (Random_forest.train_stream ?block_rows rng ~n_classes src ys))
  | "cnn" -> Some (S_cnn (Cnn.train_stream ?block_rows rng ~n_classes src ys))
  | _ -> None

(** The graph twin of {!train_snapshot_stream}; delegates to the (single)
    streamed dgcnn trainer. *)
let train_dgcnn_stream ?params rng ~n_classes (src : Gsource.t) ys =
  Dgcnn.train_source ?params rng ~n_classes src ys

(** First-maximum index — the arena-wide argmax convention (every model's
    [predict] scans scores left to right and displaces only on a strictly
    greater value, so ties break to the lowest class). *)
let argmax (v : float array) : int =
  let best = ref 0 in
  Array.iteri (fun i x -> if x > v.(!best) then best := i) v;
  !best

(** Per-class scores of a snapshot — raw logits for lr/mlp/cnn, one-vs-rest
    scores for svm, vote counts for knn/rf.  The contract shared by every
    kind: [argmax (margins s v) = (restore s).predict v], bit for bit, and
    a {!save}/{!load} round trip preserves the scores exactly.  The adaptive
    evaders ({!Yali_adapt}) optimise against these scores. *)
let margins = function
  | S_lr m -> Logreg.margins m
  | S_svm m -> Svm.margins m
  | S_knn m -> Knn.margins m
  | S_mlp m -> Mlp.margins m
  | S_rf m -> Random_forest.margins m
  | S_cnn m -> Cnn.margins m

let restore = function
  | S_lr m ->
      {
        predict = Logreg.predict m;
        predict_batch = Logreg.predict_batch m;
        size_bytes = Logreg.size_bytes m;
      }
  | S_svm m ->
      {
        predict = Svm.predict m;
        predict_batch = Svm.predict_batch m;
        size_bytes = Svm.size_bytes m;
      }
  | S_knn m ->
      {
        predict = Knn.predict m;
        predict_batch = Knn.predict_batch m;
        size_bytes = Knn.size_bytes m;
      }
  | S_mlp m ->
      {
        predict = Mlp.predict m;
        predict_batch = Mlp.predict_batch m;
        size_bytes = Mlp.size_bytes m;
      }
  | S_rf m ->
      {
        predict = Random_forest.predict m;
        predict_batch = Random_forest.predict_batch m;
        size_bytes = Random_forest.size_bytes m;
      }
  | S_cnn m ->
      {
        predict = Cnn.predict m;
        predict_batch = Cnn.predict_batch m;
        size_bytes = Cnn.size_bytes m;
      }

(* Snapshot blob: magic + u16 version + u8 kind tag + weight payload.
   The magic keeps a model file from ever being confused with an IR blob
   (Serve.Codec uses "YALI"); the version gates decoder evolution. *)

let magic = "YMDL"
let version = 1

let kind_tag = function
  | S_lr _ -> 0
  | S_svm _ -> 1
  | S_knn _ -> 2
  | S_mlp _ -> 3
  | S_rf _ -> 4
  | S_cnn _ -> 5

let save (s : snapshot) : string =
  let b = Buffer.create 4096 in
  Buffer.add_string b magic;
  Bin.w_u16 b version;
  Bin.w_u8 b (kind_tag s);
  (match s with
  | S_lr m -> Logreg.to_bin b m
  | S_svm m -> Svm.to_bin b m
  | S_knn m -> Knn.to_bin b m
  | S_mlp m -> Mlp.to_bin b m
  | S_rf m -> Random_forest.to_bin b m
  | S_cnn m -> Cnn.to_bin b m);
  Buffer.contents b

let load (blob : string) : snapshot =
  let r = Bin.reader blob in
  let m = Bin.r_raw r 4 in
  if m <> magic then Bin.fail r (Printf.sprintf "bad model magic %S" m);
  let v = Bin.r_u16 r in
  if v <> version then
    Bin.fail r (Printf.sprintf "model version skew: got %d, expected %d" v version);
  let s =
    match Bin.r_u8 r with
    | 0 -> S_lr (Logreg.of_bin r)
    | 1 -> S_svm (Svm.of_bin r)
    | 2 -> S_knn (Knn.of_bin r)
    | 3 -> S_mlp (Mlp.of_bin r)
    | 4 -> S_rf (Random_forest.of_bin r)
    | 5 -> S_cnn (Cnn.of_bin r)
    | n -> Bin.fail r (Printf.sprintf "bad model kind tag %d" n)
  in
  Bin.expect_end r;
  s

let save_file path s =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (save s))

let load_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> load (really_input_string ic (in_channel_length ic)))
