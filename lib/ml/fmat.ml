(** Flat feature matrices: one contiguous row-major [float array] per
    dataset.  See the interface for the layout contract. *)

type t = { n : int; d : int; data : float array }

let create n d = { n; d; data = Array.make (n * d) 0.0 }

let init n d f =
  let m = create n d in
  for i = 0 to n - 1 do
    for j = 0 to d - 1 do
      m.data.((i * d) + j) <- f i j
    done
  done;
  m

let get m i j = m.data.((i * m.d) + j)
let set m i j v = m.data.((i * m.d) + j) <- v

let set_row (m : t) (i : int) (src : float array) : unit =
  if Array.length src <> m.d then invalid_arg "Fmat.set_row: width mismatch";
  Array.blit src 0 m.data (i * m.d) m.d

let of_rows (rows : float array array) : t =
  match Array.length rows with
  | 0 -> create 0 0
  | n ->
      let d = Array.length rows.(0) in
      let m = create n d in
      Array.iteri
        (fun i r ->
          if Array.length r <> d then invalid_arg "Fmat.of_rows: ragged rows";
          Array.blit r 0 m.data (i * d) d)
        rows;
      m

let of_rows_into (dst : t) (rows : float array array) : unit =
  if Array.length rows <> dst.n then
    invalid_arg "Fmat.of_rows_into: row count mismatch";
  Array.iteri
    (fun i r ->
      if Array.length r <> dst.d then
        invalid_arg "Fmat.of_rows_into: width mismatch";
      Array.blit r 0 dst.data (i * dst.d) dst.d)
    rows

let gather_rows_into (dst : t) (src : t) (idx : int array) ~(lo : int)
    ~(len : int) : unit =
  if src.d <> dst.d then invalid_arg "Fmat.gather_rows_into: width mismatch";
  if dst.n <> len then invalid_arg "Fmat.gather_rows_into: row count mismatch";
  if lo < 0 || lo + len > Array.length idx then
    invalid_arg "Fmat.gather_rows_into: index range out of bounds";
  for i = 0 to len - 1 do
    Array.blit src.data (idx.(lo + i) * src.d) dst.data (i * dst.d) dst.d
  done

let row_copy (m : t) (i : int) : float array = Array.sub m.data (i * m.d) m.d

let row_into (m : t) (i : int) (dst : float array) : unit =
  if Array.length dst <> m.d then invalid_arg "Fmat.row_into: width mismatch";
  Array.blit m.data (i * m.d) dst 0 m.d

let to_rows (m : t) : float array array = Array.init m.n (row_copy m)

let of_fn ~(n : int) (f : int -> float array) : t =
  if n = 0 then create 0 0
  else begin
    let r0 = f 0 in
    let m = create n (Array.length r0) in
    set_row m 0 r0;
    for i = 1 to n - 1 do
      set_row m i (f i)
    done;
    m
  end

let parallel_of_fn ~(n : int) (f : int -> float array) : t =
  if n = 0 then create 0 0
  else begin
    let r0 = f 0 in
    let m = create n (Array.length r0) in
    set_row m 0 r0;
    (* each task writes only its own row: deterministic at any [jobs] *)
    Yali_exec.Pool.run ~n:(n - 1) (fun j -> set_row m (j + 1) (f (j + 1)));
    m
  end

let dot_row_vec (m : t) (i : int) (v : float array) : float =
  if Array.length v < m.d then invalid_arg "Fmat.dot_row_vec: vector too short";
  let base = i * m.d in
  let acc = ref 0.0 in
  for j = 0 to m.d - 1 do
    acc := !acc +. (Array.unsafe_get m.data (base + j) *. Array.unsafe_get v j)
  done;
  !acc

let sq_norm_row (m : t) (i : int) : float =
  let base = i * m.d in
  let acc = ref 0.0 in
  for j = 0 to m.d - 1 do
    let x = Array.unsafe_get m.data (base + j) in
    acc := !acc +. (x *. x)
  done;
  !acc

let copy (m : t) : t = { m with data = Array.copy m.data }
let to_matrix (m : t) : Matrix.t = { Matrix.rows = m.n; cols = m.d; data = m.data }
let of_matrix (m : Matrix.t) : t = { n = m.Matrix.rows; d = m.Matrix.cols; data = m.Matrix.data }

module Bin = Yali_util.Bin

let to_bin b (m : t) =
  Bin.w_u32 b m.n;
  Bin.w_u32 b m.d;
  Bin.w_floats b m.data

let of_bin r : t =
  let n = Bin.r_u32 r in
  let d = Bin.r_u32 r in
  let data = Bin.r_floats r in
  if Array.length data <> n * d then
    Bin.fail r
      (Printf.sprintf "fmat %dx%d with %d elements" n d (Array.length data));
  { n; d; data }
