(** Linear support-vector machine: one-vs-rest hinge loss trained with an
    averaged Pegasos-style stochastic subgradient method. *)

type t

type params = { epochs : int; lambda : float; step_offset : float }

val default_params : params

val train :
  ?params:params ->
  Yali_util.Rng.t ->
  n_classes:int ->
  Fmat.t ->
  int array ->
  t

(** Pegasos over streamed feature blocks; the step counter and averaging
    window stay global.  One block = bit-identical to {!train}. *)
val train_stream :
  ?params:params ->
  ?block_rows:int ->
  Yali_util.Rng.t ->
  n_classes:int ->
  Fblock.source ->
  int array ->
  t

val predict : t -> float array -> int

(** Per-class one-vs-rest scores; the first-maximum index is exactly
    {!predict}'s decision. *)
val margins : t -> float array -> float array

(** Classify every row of a flat matrix via one cache-tiled matmul. *)
val predict_batch : t -> Fmat.t -> int array

val size_bytes : t -> int

(** Serialise the trained model bit-exactly ({!Model.save}'s weights). *)
val to_bin : Buffer.t -> t -> unit

(** @raise Yali_util.Bin.Corrupt on malformed input *)
val of_bin : Yali_util.Bin.r -> t
