(** k-nearest-neighbour classification over standardised features.

    Training precomputes the squared norm of every (standardised) training
    row; prediction expands [‖a−b‖² = ‖a‖² − 2a·b + ‖b‖²] so the distance
    sweep is one contiguous dot product per training row.  The expansion
    evaluates the same distances up to float rounding — exact equality with
    the subtract-square-accumulate form is not guaranteed, but the ordering
    of non-tied neighbours is unaffected at the scale of standardised
    features.

    {b Tie-break} (total, documented): neighbours are ordered by
    [(distance, training_row_index)] lexicographically — when two training
    points are exactly equidistant from the query, the one with the lower
    training-row index wins the slot.  A voting tie between classes resolves
    to the lowest class id. *)

type t

(** [train ?k ~n_classes x ys] standardises [x] and stores it (plus per-row
    squared norms). *)
val train : ?k:int -> n_classes:int -> Fmat.t -> int array -> t

val predict : t -> float array -> int

(** Per-class neighbour vote counts as floats; the first-maximum index is
    exactly {!predict}'s decision. *)
val margins : t -> float array -> float array

(** Classify every row of a flat matrix. *)
val predict_batch : t -> Fmat.t -> int array

(** Approximate heap footprint of the stored training set. *)
val size_bytes : t -> int

(** Serialise the trained model bit-exactly ({!Model.save}'s weights). *)
val to_bin : Buffer.t -> t -> unit

(** @raise Yali_util.Bin.Corrupt on malformed input *)
val of_bin : Yali_util.Bin.r -> t
