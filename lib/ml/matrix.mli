(** Dense row-major matrices: the only numeric kernel the framework needs. *)

type t = { rows : int; cols : int; data : float array }

val create : int -> int -> t

(** Uninitialised storage (no zero-fill) for results that are fully
    overwritten before being read.  Callers must write every cell. *)
val create_uninit : int -> int -> t
val init : int -> int -> (int -> int -> float) -> t
val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit
val of_rows : float array array -> t

(** Copy of row [i] (allocates; prefer {!row_into} in loops). *)
val row : t -> int -> float array

(** [row_into m i dst] blits row [i] into [dst] without allocating.
    @raise Invalid_argument when [Array.length dst <> cols]. *)
val row_into : t -> int -> float array -> unit

val copy : t -> t

(** Cache-tiled product.  Bit-identical to {!matmul_naive}: tiling only
    reorders work across output cells, never the per-cell accumulation
    order.  @raise Invalid_argument on dimension mismatch *)
val matmul : t -> t -> t

(** The untiled i-k-j reference kernel (for differential tests and the
    kernel benchmarks).  @raise Invalid_argument on dimension mismatch *)
val matmul_naive : t -> t -> t

(** [matmul_bias ~bias a b]: like {!matmul} but row [i] of the result is
    seeded from [bias] before accumulating, matching the summation order of
    a per-sample [bias.(j) + Σ_k a_ik b_kj] loop.
    @raise Invalid_argument on dimension mismatch *)
val matmul_bias : bias:float array -> t -> t -> t

val transpose : t -> t
val map : (float -> float) -> t -> t

(** @raise Invalid_argument on dimension mismatch *)
val add : t -> t -> t

val scale : float -> t -> t

(** In-place [y += a * x].  @raise Invalid_argument on dimension mismatch *)
val axpy : a:float -> t -> t -> unit

(** Matrix–vector product.  @raise Invalid_argument on dimension mismatch *)
val mv : t -> float array -> float array

(** Vector–matrix product [v^T M]. *)
val vm : float array -> t -> float array

(** Gaussian random matrix with the given standard deviation. *)
val random : Yali_util.Rng.t -> int -> int -> scale:float -> t

val frobenius : t -> float
val pp : Format.formatter -> t -> unit

(** Serialise shape and element bits (model snapshots; bit-exact). *)
val to_bin : Buffer.t -> t -> unit

(** @raise Yali_util.Bin.Corrupt on malformed input *)
val of_bin : Yali_util.Bin.r -> t
