(** The flat-input truncation of Zhang et al.'s DGCNN that the paper calls
    [cnn] (§3.2): the four graph-convolution layers are dropped (they "find
    no service" on array embeddings) and the remaining stack — 1-D
    convolution, max pooling, a second 1-D convolution, dense + dropout,
    dense classifier — consumes the flat vector directly. *)

module Rng = Yali_util.Rng

type t = { scaler : Features.scaler; net : Nn.t }

type params = { epochs : int; lr : float }

let default_params = { epochs = 30; lr = 0.01 }

let build_net (rng : Rng.t) ~(d_in : int) ~(n_classes : int) : Nn.t =
  if d_in < 16 then
    (* narrow inputs: the convolutional front end finds no service (cf. the
       paper's remark about graph layers on flat inputs); use the dense
       tail only *)
    {
      Nn.layers =
        [
          Nn.dense rng ~d_in ~d_out:64;
          Nn.relu ();
          Nn.dropout 0.2;
          Nn.dense rng ~d_in:64 ~d_out:n_classes;
        ];
      n_classes;
    }
  else begin
    (* kernel sizes keep intermediate lengths even, so that flat max pooling
       never straddles a channel boundary *)
    let c1 = 8 and k1 = if d_in mod 2 = 0 then 5 else 4 and c2 = 8 in
    let l1 = d_in - k1 + 1 in
    let l1p = l1 / 2 in
    let k2 = min 5 l1p in
    let l2 = l1p - k2 + 1 in
    let flat = c2 * l2 in
    {
      Nn.layers =
        [
          Nn.conv1d rng ~c_in:1 ~c_out:c1 ~kernel:k1 ~stride:1;
          Nn.relu ();
          Nn.maxpool 2;
          Nn.conv1d rng ~c_in:c1 ~c_out:c2 ~kernel:k2 ~stride:1;
          Nn.relu ();
          Nn.dense rng ~d_in:flat ~d_out:64;
          Nn.relu ();
          Nn.dropout 0.2;
          Nn.dense rng ~d_in:64 ~d_out:n_classes;
        ];
      n_classes;
    }
  end

let train ?(params = default_params) (rng : Rng.t) ~(n_classes : int)
    (x : Fmat.t) (ys : int array) : t =
  let scaler, x = Features.fit_transform_fmat x in
  let d = x.Fmat.d in
  let net = build_net rng ~d_in:d ~n_classes in
  let n = x.Fmat.n in
  let order = Array.init n Fun.id in
  (* reused row buffer; [Nn.train_step] consumes the sample within the step *)
  let buf = Array.make d 0.0 in
  for epoch = 0 to params.epochs - 1 do
    let lr = params.lr /. (1.0 +. (0.05 *. float_of_int epoch)) in
    for i = n - 1 downto 1 do
      let j = Rng.int rng (i + 1) in
      let tmp = order.(i) in
      order.(i) <- order.(j);
      order.(j) <- tmp
    done;
    Array.iter
      (fun i ->
        Fmat.row_into x i buf;
        ignore (Nn.train_step ~lr ~rng net buf ys.(i)))
      order
  done;
  { scaler; net }

let predict (t : t) (x : float array) : int =
  Nn.predict t.net (Features.transform t.scaler x)

(** Classify every row: standardise a copy in place, then defer to
    {!Nn.predict_batch} (per-row fallback when the net has conv layers). *)
let predict_batch (t : t) (x : Fmat.t) : int array =
  let x = Fmat.copy x in
  Features.transform_fmat_inplace t.scaler x;
  Nn.predict_batch t.net x

let size_bytes (t : t) : int = Nn.size_bytes t.net
