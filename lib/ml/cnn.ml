(** The flat-input truncation of Zhang et al.'s DGCNN that the paper calls
    [cnn] (§3.2): the four graph-convolution layers are dropped (they "find
    no service" on array embeddings) and the remaining stack — 1-D
    convolution, max pooling, a second 1-D convolution, dense + dropout,
    dense classifier — consumes the flat vector directly.

    Training is minibatch SGD through the batched {!Nn.train_batch} kernel
    (im2col convolutions, cache-tiled matmuls, sharded gradient workers) —
    bit-identical at any [--jobs] and to the frozen naive trainer in
    [Reference.Cnn].  {!train_stream} is the out-of-core variant over
    {!Fblock} sources; on a source that fits one block it is bit-identical
    to {!train}. *)

module Rng = Yali_util.Rng

type t = { scaler : Features.scaler; net : Nn.t }

type params = { epochs : int; lr : float; batch : int }

let default_params = { epochs = 30; lr = 0.01; batch = 32 }

let build_net (rng : Rng.t) ~(d_in : int) ~(n_classes : int) : Nn.t =
  if d_in < 16 then
    (* narrow inputs: the convolutional front end finds no service (cf. the
       paper's remark about graph layers on flat inputs); use the dense
       tail only *)
    {
      Nn.layers =
        [
          Nn.dense rng ~d_in ~d_out:64;
          Nn.relu ();
          Nn.dropout 0.2;
          Nn.dense rng ~d_in:64 ~d_out:n_classes;
        ];
      n_classes;
    }
  else begin
    (* kernel sizes keep intermediate lengths even, so that flat max pooling
       never straddles a channel boundary *)
    let c1 = 8 and k1 = if d_in mod 2 = 0 then 5 else 4 and c2 = 8 in
    let l1 = d_in - k1 + 1 in
    let l1p = l1 / 2 in
    let k2 = min 5 l1p in
    let l2 = l1p - k2 + 1 in
    let flat = c2 * l2 in
    {
      Nn.layers =
        [
          Nn.conv1d rng ~c_in:1 ~c_out:c1 ~kernel:k1 ~stride:1;
          Nn.relu ();
          Nn.maxpool 2;
          Nn.conv1d rng ~c_in:c1 ~c_out:c2 ~kernel:k2 ~stride:1;
          Nn.relu ();
          Nn.dense rng ~d_in:flat ~d_out:64;
          Nn.relu ();
          Nn.dropout 0.2;
          Nn.dense rng ~d_in:64 ~d_out:n_classes;
        ];
      n_classes;
    }
  end

let of_parts ~(scaler : Features.scaler) ~(net : Nn.t) : t = { scaler; net }
let dump_weights (t : t) : float array array = Nn.dump_weights t.net

let shuffle (rng : Rng.t) (order : int array) : unit =
  for i = Array.length order - 1 downto 1 do
    let j = Rng.int rng (i + 1) in
    let tmp = order.(i) in
    order.(i) <- order.(j);
    order.(j) <- tmp
  done

(* One epoch of minibatch steps over [x] rows in [order.(lo0 .. )] order;
   [labels i] maps a position in [order] to its class. *)
let run_batches ~(lr : float) ~(rng : Rng.t) ~(batch : int) (net : Nn.t)
    (x : Fmat.t) (order : int array) (labels : int -> int) : unit =
  let n = Array.length order in
  let nb = (n + batch - 1) / batch in
  for b = 0 to nb - 1 do
    let lo = b * batch in
    let m = min batch (n - lo) in
    let xb = Fmat.create m x.Fmat.d in
    Fmat.gather_rows_into xb x order ~lo ~len:m;
    let yb = Array.init m (fun i -> labels (lo + i)) in
    ignore (Nn.train_batch ~need_dx:false ~lr ~rng net xb yb)
  done

let train ?(params = default_params) (rng : Rng.t) ~(n_classes : int)
    (x : Fmat.t) (ys : int array) : t =
  let scaler, x = Features.fit_transform_fmat x in
  let net = build_net rng ~d_in:x.Fmat.d ~n_classes in
  let order = Array.init x.Fmat.n Fun.id in
  for epoch = 0 to params.epochs - 1 do
    let lr = params.lr /. (1.0 +. (0.05 *. float_of_int epoch)) in
    shuffle rng order;
    run_batches ~lr ~rng ~batch:params.batch net x order (fun i ->
        ys.(order.(i)))
  done;
  { scaler; net }

(** Minibatch SGD over streamed blocks; per-epoch shuffles stay within a
    block (persistent per-block orders), minibatches never straddle a block
    boundary.  One block = exactly {!train}. *)
let train_stream ?(params = default_params) ?block_rows (rng : Rng.t)
    ~(n_classes : int) (src : Fblock.source) (ys : int array) : t =
  let scaler = Features.fit_stream ?block_rows src in
  let n = Fblock.rows src in
  let net = build_net rng ~d_in:(Fblock.dim src) ~n_classes in
  let bs_rows =
    match block_rows with Some b -> b | None -> Fblock.default_block_rows
  in
  let orders =
    Array.init (Fblock.n_blocks ?block_rows src) (fun b ->
        Array.init (min bs_rows (n - (b * bs_rows))) Fun.id)
  in
  for epoch = 0 to params.epochs - 1 do
    let lr = params.lr /. (1.0 +. (0.05 *. float_of_int epoch)) in
    Fblock.iter_blocks ?block_rows src (fun lo block ->
        Features.transform_fmat_inplace scaler block;
        let order = orders.(lo / bs_rows) in
        shuffle rng order;
        run_batches ~lr ~rng ~batch:params.batch net block order (fun i ->
            ys.(lo + order.(i))))
  done;
  { scaler; net }

let predict (t : t) (x : float array) : int =
  Nn.predict t.net (Features.transform t.scaler x)

(** Per-class raw logits; the first-maximum index is exactly {!predict}'s
    decision (same standardisation, same forward pass). *)
let margins (t : t) (x : float array) : float array =
  Nn.logits t.net (Features.transform t.scaler x)

(** Classify every row: standardise a copy in place, then defer to
    {!Nn.predict_batch} (per-row fallback when the net has conv layers). *)
let predict_batch (t : t) (x : Fmat.t) : int array =
  let x = Fmat.copy x in
  Features.transform_fmat_inplace t.scaler x;
  Nn.predict_batch t.net x

let size_bytes (t : t) : int = Nn.size_bytes t.net

module Bin = Yali_util.Bin

let to_bin b (t : t) =
  Features.scaler_to_bin b t.scaler;
  Nn.to_bin b t.net

let of_bin r : t =
  let scaler = Features.scaler_of_bin r in
  let net = Nn.of_bin r in
  { scaler; net }
