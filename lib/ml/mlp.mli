(** The SciKit-style multi-layer perceptron the paper evaluates as [mlp]:
    exactly one hidden layer of 100 ReLU units (§3.2). *)

type t

type params = { hidden : int; epochs : int; lr : float }

val default_params : params

val train :
  ?params:params ->
  Yali_util.Rng.t ->
  n_classes:int ->
  Fmat.t ->
  int array ->
  t

(** Per-sample SGD over streamed feature blocks; one block = bit-identical
    to {!train}. *)
val train_stream :
  ?params:params ->
  ?block_rows:int ->
  Yali_util.Rng.t ->
  n_classes:int ->
  Fblock.source ->
  int array ->
  t

val predict : t -> float array -> int

(** Per-class raw logits; the first-maximum index is exactly {!predict}'s
    decision. *)
val margins : t -> float array -> float array

(** Classify every row of a flat matrix (batched dense inference). *)
val predict_batch : t -> Fmat.t -> int array

val size_bytes : t -> int

(** Serialise the trained model bit-exactly ({!Model.save}'s weights). *)
val to_bin : Buffer.t -> t -> unit

(** @raise Yali_util.Bin.Corrupt on malformed input *)
val of_bin : Yali_util.Bin.r -> t
