(** The classifier-model registry (paper, Figure 3): five SciKit-style
    models plus Zhang et al.'s neural network in its two guises — [cnn] on
    flat embeddings and [dgcnn] on graph embeddings — behind one training
    interface. *)

(** A trained flat-vector classifier.  [predict] classifies one vector;
    [predict_batch] classifies every row of a flat matrix at once (the
    arena's bulk path — batched kernels, class decisions identical to
    mapping [predict] over the rows). *)
type trained = {
  predict : float array -> int;
  predict_batch : Fmat.t -> int array;
  size_bytes : int;
}

(** A trainable flat model. *)
type flat = {
  fname : string;
  ftrain :
    Yali_util.Rng.t -> n_classes:int -> Fmat.t -> int array -> trained;
}

(** A trained graph classifier. *)
type gtrained = {
  gpredict : Yali_embeddings.Graph.t -> int;
  gsize_bytes : int;
}

(** A trainable graph model. *)
type graph = {
  gname : string;
  gtrain :
    Yali_util.Rng.t -> n_classes:int -> feat_dim:int ->
    Yali_embeddings.Graph.t array -> int array -> gtrained;
}

val rf : flat  (** random forest — the paper's consistent winner *)

val svm : flat  (** one-vs-rest linear SVM (averaged Pegasos) *)

val knn : flat  (** k-nearest neighbours (the only deterministic model) *)

val lr : flat  (** multinomial logistic regression *)

val mlp : flat  (** one hidden layer, 100 ReLU units (paper §3.2) *)

val cnn : flat  (** Zhang et al.'s network minus the graph layers *)

val dgcnn : graph  (** the full Deep Graph CNN *)

(** The six models of the Figures 7–12 grids (all consume flat vectors). *)
val all_flat : flat list

val find_flat : string -> flat option
