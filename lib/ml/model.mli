(** The classifier-model registry (paper, Figure 3): five SciKit-style
    models plus Zhang et al.'s neural network in its two guises — [cnn] on
    flat embeddings and [dgcnn] on graph embeddings — behind one training
    interface. *)

(** A trained flat-vector classifier.  [predict] classifies one vector;
    [predict_batch] classifies every row of a flat matrix at once (the
    arena's bulk path — batched kernels, class decisions identical to
    mapping [predict] over the rows). *)
type trained = {
  predict : float array -> int;
  predict_batch : Fmat.t -> int array;
  size_bytes : int;
}

(** A trainable flat model. *)
type flat = {
  fname : string;
  ftrain :
    Yali_util.Rng.t -> n_classes:int -> Fmat.t -> int array -> trained;
}

(** A trained graph classifier. *)
type gtrained = {
  gpredict : Yali_embeddings.Graph.t -> int;
  gsize_bytes : int;
}

(** A trainable graph model. *)
type graph = {
  gname : string;
  gtrain :
    Yali_util.Rng.t -> n_classes:int -> feat_dim:int ->
    Yali_embeddings.Graph.t array -> int array -> gtrained;
}

val rf : flat  (** random forest — the paper's consistent winner *)

val svm : flat  (** one-vs-rest linear SVM (averaged Pegasos) *)

val knn : flat  (** k-nearest neighbours (the only deterministic model) *)

val lr : flat  (** multinomial logistic regression *)

val mlp : flat  (** one hidden layer, 100 ReLU units (paper §3.2) *)

val cnn : flat  (** Zhang et al.'s network minus the graph layers *)

val dgcnn : graph  (** the full Deep Graph CNN *)

(** The six models of the Figures 7–12 grids (all consume flat vectors). *)
val all_flat : flat list

val find_flat : string -> flat option

(** {1 Snapshots}

    A snapshot is the concrete weight state of a trained flat model —
    matrices, biases, trees, the k-NN training set — rather than the
    closures of {!trained}, so it can be persisted and reloaded
    bit-exactly: {!restore} of a saved-and-loaded snapshot predicts
    bit-identically to the in-memory trained model.  Every flat model has a
    snapshot form; the graph-consuming [dgcnn] does not (margins and the
    registry are flat-vector interfaces — see {!train_dgcnn_stream} for its
    streamed trainer). *)

type snapshot =
  | S_lr of Logreg.t
  | S_svm of Svm.t
  | S_knn of Knn.t
  | S_mlp of Mlp.t
  | S_rf of Random_forest.t
  | S_cnn of Cnn.t

(** The registry name of the snapshot's model ("lr", "svm", ...). *)
val snapshot_kind : snapshot -> string

(** Names accepted by {!train_snapshot}, in registry order. *)
val snapshot_kinds : string list

(** Train the named model and capture its weights.  [None] for unknown
    names.  The trained model behind the snapshot is exactly
    [find_flat name].ftrain on the same inputs (same rng consumption). *)
val train_snapshot :
  string ->
  Yali_util.Rng.t ->
  n_classes:int ->
  Fmat.t ->
  int array ->
  snapshot option

(** {!train_snapshot} over a streamed feature source (out-of-core
    training, DESIGN.md §12).  lr/svm/mlp/cnn run minibatch SGD over
    blocks, rf grows trees block-by-block, knn materialises (it keeps every
    row by definition).  On a source that fits one [block_rows] the
    snapshot is bit-identical to {!train_snapshot}'s. *)
val train_snapshot_stream :
  ?block_rows:int ->
  string ->
  Yali_util.Rng.t ->
  n_classes:int ->
  Fblock.source ->
  int array ->
  snapshot option

(** The graph twin of {!train_snapshot_stream}: train the [dgcnn] over a
    streamed graph source ({!Gsource.t}), holding only one minibatch of
    graphs at a time.  Bit-identical to [Dgcnn.train] on the materialised
    array (they share the same trainer). *)
val train_dgcnn_stream :
  ?params:Dgcnn.params ->
  Yali_util.Rng.t ->
  n_classes:int ->
  Gsource.t ->
  int array ->
  Dgcnn.t

(** The predictor of a snapshot; class decisions are identical to the
    {!trained} returned by the original [ftrain]. *)
val restore : snapshot -> trained

(** First-maximum index of a score vector — the argmax convention shared by
    every model's [predict] (ties break to the lowest class). *)
val argmax : float array -> int

(** Per-class scores of a snapshot on one feature vector — raw logits for
    lr/mlp/cnn, one-vs-rest scores for svm, vote counts for knn/rf.  For every
    kind, [argmax (margins s v) = (restore s).predict v] bit for bit, and
    the scores survive a {!save}/{!load} round trip exactly.  This is the
    interface the adaptive evaders ({!Yali_adapt}) optimise against. *)
val margins : snapshot -> float array -> float array

(** Serialise to the versioned binary form (magic ["YMDL"], version 1,
    kind tag, weight payload — DESIGN.md §11). *)
val save : snapshot -> string

(** @raise Yali_util.Bin.Corrupt on bad magic, version skew or a
    malformed payload *)
val load : string -> snapshot

val save_file : string -> snapshot -> unit

(** @raise Yali_util.Bin.Corrupt as {!load}; @raise Sys_error as [open_in] *)
val load_file : string -> snapshot
