(** The SciKit-style multi-layer perceptron the paper evaluates as [mlp]:
    exactly one hidden layer of 100 ReLU units (§3.2), trained with SGD on
    standardised features. *)

module Rng = Yali_util.Rng

type t = { scaler : Features.scaler; net : Nn.t }

type params = { hidden : int; epochs : int; lr : float }

let default_params = { hidden = 100; epochs = 40; lr = 0.02 }

let train ?(params = default_params) (rng : Rng.t) ~(n_classes : int)
    (x : Fmat.t) (ys : int array) : t =
  let scaler, x = Features.fit_transform_fmat x in
  let d = x.Fmat.d in
  let net =
    {
      Nn.layers =
        [
          Nn.dense rng ~d_in:d ~d_out:params.hidden;
          Nn.relu ();
          Nn.dense rng ~d_in:params.hidden ~d_out:n_classes;
        ];
      n_classes;
    }
  in
  let n = x.Fmat.n in
  let order = Array.init n Fun.id in
  (* one reused row buffer: [Nn.train_step] consumes the sample within the
     step, so the buffer may be overwritten for the next one *)
  let buf = Array.make d 0.0 in
  for epoch = 0 to params.epochs - 1 do
    let lr = params.lr /. (1.0 +. (0.03 *. float_of_int epoch)) in
    for i = n - 1 downto 1 do
      let j = Rng.int rng (i + 1) in
      let tmp = order.(i) in
      order.(i) <- order.(j);
      order.(j) <- tmp
    done;
    Array.iter
      (fun i ->
        Fmat.row_into x i buf;
        ignore (Nn.train_step ~lr ~rng net buf ys.(i)))
      order
  done;
  { scaler; net }

(** Per-sample SGD over streamed blocks; per-epoch shuffles stay within a
    block (persistent per-block orders).  One block = exactly {!train}. *)
let train_stream ?(params = default_params) ?block_rows (rng : Rng.t)
    ~(n_classes : int) (src : Fblock.source) (ys : int array) : t =
  let scaler = Features.fit_stream ?block_rows src in
  let d = Fblock.dim src in
  let n = Fblock.rows src in
  let net =
    {
      Nn.layers =
        [
          Nn.dense rng ~d_in:d ~d_out:params.hidden;
          Nn.relu ();
          Nn.dense rng ~d_in:params.hidden ~d_out:n_classes;
        ];
      n_classes;
    }
  in
  let bs_rows =
    match block_rows with Some b -> b | None -> Fblock.default_block_rows
  in
  let orders =
    Array.init (Fblock.n_blocks ?block_rows src) (fun b ->
        Array.init (min bs_rows (n - (b * bs_rows))) Fun.id)
  in
  let buf = Array.make d 0.0 in
  for epoch = 0 to params.epochs - 1 do
    let lr = params.lr /. (1.0 +. (0.03 *. float_of_int epoch)) in
    Fblock.iter_blocks ?block_rows src (fun lo block ->
        Features.transform_fmat_inplace scaler block;
        let order = orders.(lo / bs_rows) in
        for i = block.Fmat.n - 1 downto 1 do
          let j = Rng.int rng (i + 1) in
          let tmp = order.(i) in
          order.(i) <- order.(j);
          order.(j) <- tmp
        done;
        Array.iter
          (fun i ->
            Fmat.row_into block i buf;
            ignore (Nn.train_step ~lr ~rng net buf ys.(lo + i)))
          order)
  done;
  { scaler; net }

let predict (t : t) (x : float array) : int =
  Nn.predict t.net (Features.transform t.scaler x)

(** Per-class raw logits; the first-maximum index is exactly {!predict}'s
    decision (same standardisation, same forward pass). *)
let margins (t : t) (x : float array) : float array =
  Nn.logits t.net (Features.transform t.scaler x)

(** Classify every row: standardise a copy in place, then run the batched
    dense path of {!Nn.predict_batch}. *)
let predict_batch (t : t) (x : Fmat.t) : int array =
  let x = Fmat.copy x in
  Features.transform_fmat_inplace t.scaler x;
  Nn.predict_batch t.net x

let size_bytes (t : t) : int = Nn.size_bytes t.net

module Bin = Yali_util.Bin

let to_bin b (t : t) =
  Features.scaler_to_bin b t.scaler;
  Nn.to_bin b t.net

let of_bin r : t =
  let scaler = Features.scaler_of_bin r in
  let net = Nn.of_bin r in
  { scaler; net }
