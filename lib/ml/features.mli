(** Feature preprocessing shared by the distance- and gradient-based
    models: per-feature standardisation fitted on the training set. *)

type scaler

(** Fit means and standard deviations (constant features get unit scale). *)
val fit : float array array -> scaler

val transform : scaler -> float array -> float array
val fit_transform : float array array -> scaler * float array array

(** [transform_into s src dst] standardises [src] into [dst] without
    allocating. *)
val transform_into : scaler -> float array -> float array -> unit

(** Fit on a flat feature matrix.  Parameters are bit-identical to {!fit}
    on the equivalent rows (same accumulation order). *)
val fit_fmat : Fmat.t -> scaler

(** Fit over streamed blocks.  Bit-identical to {!fit_fmat} on the
    materialised source at any [block_rows] (same accumulation order). *)
val fit_stream : ?block_rows:int -> Fblock.source -> scaler

(** Standardise a flat matrix in place. *)
val transform_fmat_inplace : scaler -> Fmat.t -> unit

(** Fit and return a standardised {e copy} (the input is left intact, so
    one embedded matrix can be shared across models). *)
val fit_transform_fmat : Fmat.t -> scaler * Fmat.t

(** Approximate heap footprint of a row matrix, in bytes (for the paper's
    Figure 7 memory comparison). *)
val bytes_of_rows : float array array -> int

(** Footprint of a flat matrix (one block, no per-row headers). *)
val bytes_of_fmat : Fmat.t -> int

(** Serialise a fitted scaler bit-exactly (model snapshots). *)
val scaler_to_bin : Buffer.t -> scaler -> unit

(** @raise Yali_util.Bin.Corrupt on malformed input *)
val scaler_of_bin : Yali_util.Bin.r -> scaler
