(** Random forests: bagged CART trees with sqrt-feature subsampling and
    majority voting — the paper's consistently best model (§4.2).

    The training matrix is binned once ({!Decision_tree.prebin}) and the
    read-only binning is shared by all trees; each bootstrap sample is an
    index array into the shared matrix, so bagging copies no feature data
    at all. *)

module Rng = Yali_util.Rng

type t = { trees : Decision_tree.t array; n_classes : int }

type params = { n_trees : int; max_depth : int }

let default_params = { n_trees = 64; max_depth = 24 }

let train ?(params = default_params) (rng : Rng.t) ~(n_classes : int)
    (x : Fmat.t) (ys : int array) : t =
  let n = x.Fmat.n in
  let d = x.Fmat.d in
  let fps = max 1 (max (int_of_float (sqrt (float_of_int d))) (d / 2)) in
  let tree_params =
    {
      Decision_tree.max_depth = params.max_depth;
      min_samples_split = 2;
      features_per_split = Some fps;
    }
  in
  (* one global binning, shared read-only across all trees *)
  let pb = Decision_tree.prebin x in
  (* pre-derive one stream per tree (identical to the former
     split-per-iteration loop), then bag and grow the trees in parallel:
     each task owns its stream, so the forest is the same at any [jobs] *)
  let tree_rngs = Rng.split_n rng params.n_trees in
  let trees =
    Yali_exec.Pool.parallel_array_map
      (fun tree_rng ->
        (* bootstrap sample: indices into the shared matrix *)
        let bidx = Array.make n 0 in
        for i = 0 to n - 1 do
          bidx.(i) <- Rng.int tree_rng n
        done;
        Decision_tree.train ~params:tree_params ~prebinned:pb ~sample:bidx
          tree_rng ~n_classes x ys)
      tree_rngs
  in
  { trees; n_classes }

let predict (f : t) (x : float array) : int =
  let votes = Array.make f.n_classes 0 in
  Array.iter
    (fun t ->
      let c = Decision_tree.predict t x in
      votes.(c) <- votes.(c) + 1)
    f.trees;
  let best = ref 0 in
  Array.iteri (fun c k -> if k > votes.(!best) then best := c) votes;
  !best

(** Vote every row of a flat matrix; rows fan out over the pool (each task
    writes only its own slot, so the output is the same at any [jobs]). *)
let predict_batch (f : t) (x : Fmat.t) : int array =
  let pred = Array.make x.Fmat.n 0 in
  Yali_exec.Pool.parallel_for_chunks ~min_chunk:16 x.Fmat.n (fun lo hi ->
      let votes = Array.make f.n_classes 0 in
      for i = lo to hi - 1 do
        Array.fill votes 0 f.n_classes 0;
        Array.iter
          (fun t ->
            let c = Decision_tree.predict_row t x i in
            votes.(c) <- votes.(c) + 1)
          f.trees;
        let best = ref 0 in
        Array.iteri (fun c k -> if k > votes.(!best) then best := c) votes;
        pred.(i) <- !best
      done);
  pred

let size_bytes (f : t) : int =
  Array.fold_left (fun acc t -> acc + Decision_tree.size_bytes t) 0 f.trees

module Bin = Yali_util.Bin

let to_bin b (f : t) =
  Bin.w_u32 b f.n_classes;
  Bin.w_arr b Decision_tree.to_bin f.trees

let of_bin r : t =
  let n_classes = Bin.r_u32 r in
  let trees = Bin.r_arr r Decision_tree.of_bin in
  { trees; n_classes }
