(** Random forests: bagged CART trees with sqrt-feature subsampling and
    majority voting — the paper's consistently best model (§4.2).

    The training matrix is binned once ({!Decision_tree.prebin}) and the
    read-only binning is shared by all trees; each bootstrap sample is an
    index array into the shared matrix, so bagging copies no feature data
    at all. *)

module Rng = Yali_util.Rng

type t = { trees : Decision_tree.t array; n_classes : int }

type params = { n_trees : int; max_depth : int }

let default_params = { n_trees = 64; max_depth = 24 }

let train ?(params = default_params) (rng : Rng.t) ~(n_classes : int)
    (x : Fmat.t) (ys : int array) : t =
  let n = x.Fmat.n in
  let d = x.Fmat.d in
  let fps = max 1 (max (int_of_float (sqrt (float_of_int d))) (d / 2)) in
  let tree_params =
    {
      Decision_tree.max_depth = params.max_depth;
      min_samples_split = 2;
      features_per_split = Some fps;
    }
  in
  (* one global binning, shared read-only across all trees *)
  let pb = Decision_tree.prebin x in
  (* pre-derive one stream per tree (identical to the former
     split-per-iteration loop), then bag and grow the trees in parallel:
     each task owns its stream, so the forest is the same at any [jobs] *)
  let tree_rngs = Rng.split_n rng params.n_trees in
  let trees =
    Yali_exec.Pool.parallel_array_map
      (fun tree_rng ->
        (* bootstrap sample: indices into the shared matrix *)
        let bidx = Array.make n 0 in
        for i = 0 to n - 1 do
          bidx.(i) <- Rng.int tree_rng n
        done;
        Decision_tree.train ~params:tree_params ~prebinned:pb ~sample:bidx
          tree_rng ~n_classes x ys)
      tree_rngs
  in
  { trees; n_classes }

(* Per-tree bootstrap cap for the streamed path: bounds gather memory at
   [gather_group * max_tree_rows * d] floats no matter how big the corpus
   grows.  The group size is a constant, not the pool width, so the forest
   is the same at any [jobs]. *)
let max_tree_rows = 65536

let gather_group = 8

(** Incremental forest growth over streamed blocks.  Each tree bootstraps
    over the {e whole} row range — same draw order as {!train} — and the
    blocks are then streamed once per group of {!gather_group} trees,
    copying only the rows a tree actually sampled into a per-tree gather
    matrix (unique rows; duplicates stay index-level, as in {!train}).
    Resident memory is one block plus one group's gathers, bounded by
    {!max_tree_rows}.  When the source fits a single block the code takes
    the in-memory path verbatim: same pre-derived per-tree streams, same
    bootstrap draws, same shared binning — the forest is bit-identical to
    {!train}'s. *)
let train_stream ?(params = default_params) ?block_rows (rng : Rng.t)
    ~(n_classes : int) (src : Fblock.source) (ys : int array) : t =
  let n = Fblock.rows src in
  let d = Fblock.dim src in
  let fps = max 1 (max (int_of_float (sqrt (float_of_int d))) (d / 2)) in
  let tree_params =
    {
      Decision_tree.max_depth = params.max_depth;
      min_samples_split = 2;
      features_per_split = Some fps;
    }
  in
  let n_blocks = max 1 (Fblock.n_blocks ?block_rows src) in
  let tree_rngs = Rng.split_n rng params.n_trees in
  if n_blocks = 1 then begin
    let trees = ref [||] in
    Fblock.iter_blocks ?block_rows src (fun _lo block ->
        let pb = Decision_tree.prebin block in
        trees :=
          Yali_exec.Pool.parallel_array_map
            (fun tree_rng ->
              let bidx = Array.make n 0 in
              for i = 0 to n - 1 do
                bidx.(i) <- Rng.int tree_rng n
              done;
              Decision_tree.train ~params:tree_params ~prebinned:pb
                ~sample:bidx tree_rng ~n_classes block ys)
            tree_rngs);
    { trees = !trees; n_classes }
  end
  else begin
    (* draw every tree's bootstrap up front (global row indices, the same
       rng order [train] uses), then gather and grow group by group *)
    let s = min n max_tree_rows in
    let samples =
      Array.map (fun tr -> Array.init s (fun _ -> Rng.int tr n)) tree_rngs
    in
    let trees = Array.make params.n_trees None in
    let g0 = ref 0 in
    while !g0 < params.n_trees do
      let g1 = min params.n_trees (!g0 + gather_group) in
      let gk = g1 - !g0 in
      (* unique sampled rows per tree, ascending, with a sample->position
         remap so duplicates survive as repeated indices *)
      let rows = Array.make gk [||] and remap = Array.make gk [||] in
      for k = 0 to gk - 1 do
        let sorted = Array.copy samples.(!g0 + k) in
        Array.sort compare sorted;
        let m = ref 0 in
        for i = 0 to s - 1 do
          if !m = 0 || sorted.(i) <> sorted.(!m - 1) then begin
            sorted.(!m) <- sorted.(i);
            incr m
          end
        done;
        rows.(k) <- Array.sub sorted 0 !m;
        let pos = Hashtbl.create !m in
        Array.iteri (fun p r -> Hashtbl.add pos r p) rows.(k);
        remap.(k) <-
          Array.map (fun r -> Hashtbl.find pos r) samples.(!g0 + k)
      done;
      let gathers = Array.map (fun r -> Fmat.create (Array.length r) d) rows in
      let cursors = Array.make gk 0 in
      Fblock.iter_blocks ?block_rows src (fun lo block ->
          let hi = lo + block.Fmat.n in
          for k = 0 to gk - 1 do
            let r = rows.(k) and m = Array.length rows.(k) in
            while cursors.(k) < m && r.(cursors.(k)) < hi do
              let p = cursors.(k) in
              Array.blit block.Fmat.data
                ((r.(p) - lo) * d)
                gathers.(k).Fmat.data (p * d) d;
              cursors.(k) <- p + 1
            done
          done);
      let grown =
        Yali_exec.Pool.parallel_array_map
          (fun k ->
            let t = !g0 + k in
            let ys_g = Array.map (fun r -> ys.(r)) rows.(k) in
            let pb = Decision_tree.prebin gathers.(k) in
            ( t,
              Decision_tree.train ~params:tree_params ~prebinned:pb
                ~sample:remap.(k) tree_rngs.(t) ~n_classes gathers.(k) ys_g ))
          (Array.init gk Fun.id)
      in
      Array.iter (fun (t, tree) -> trees.(t) <- Some tree) grown;
      g0 := g1
    done;
    let trees =
      Array.map
        (function Some t -> t | None -> failwith "rf stream: tree not grown")
        trees
    in
    { trees; n_classes }
  end

(* per-class tree vote counts — the shared kernel behind [predict] and
   [margins] *)
let votes (f : t) (x : float array) : int array =
  let votes = Array.make f.n_classes 0 in
  Array.iter
    (fun t ->
      let c = Decision_tree.predict t x in
      votes.(c) <- votes.(c) + 1)
    f.trees;
  votes

let predict (f : t) (x : float array) : int =
  let votes = votes f x in
  let best = ref 0 in
  Array.iteri (fun c k -> if k > votes.(!best) then best := c) votes;
  !best

(** Per-class tree vote counts as floats; the first-maximum index is
    exactly {!predict}'s decision (ties break to the lowest class in both). *)
let margins (f : t) (x : float array) : float array =
  Array.map float_of_int (votes f x)

(** Vote every row of a flat matrix; rows fan out over the pool (each task
    writes only its own slot, so the output is the same at any [jobs]). *)
let predict_batch (f : t) (x : Fmat.t) : int array =
  let pred = Array.make x.Fmat.n 0 in
  Yali_exec.Pool.parallel_for_chunks ~min_chunk:16 x.Fmat.n (fun lo hi ->
      let votes = Array.make f.n_classes 0 in
      for i = lo to hi - 1 do
        Array.fill votes 0 f.n_classes 0;
        Array.iter
          (fun t ->
            let c = Decision_tree.predict_row t x i in
            votes.(c) <- votes.(c) + 1)
          f.trees;
        let best = ref 0 in
        Array.iteri (fun c k -> if k > votes.(!best) then best := c) votes;
        pred.(i) <- !best
      done);
  pred

let size_bytes (f : t) : int =
  Array.fold_left (fun acc t -> acc + Decision_tree.size_bytes t) 0 f.trees

module Bin = Yali_util.Bin

let to_bin b (f : t) =
  Bin.w_u32 b f.n_classes;
  Bin.w_arr b Decision_tree.to_bin f.trees

let of_bin r : t =
  let n_classes = Bin.r_u32 r in
  let trees = Bin.r_arr r Decision_tree.of_bin in
  { trees; n_classes }
