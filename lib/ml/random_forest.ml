(** Random forests: bagged CART trees with sqrt-feature subsampling and
    majority voting — the paper's consistently best model (§4.2). *)

module Rng = Yali_util.Rng

type t = { trees : Decision_tree.t array; n_classes : int }

type params = { n_trees : int; max_depth : int }

let default_params = { n_trees = 64; max_depth = 24 }

let train ?(params = default_params) (rng : Rng.t) ~(n_classes : int)
    (xs : float array array) (ys : int array) : t =
  let n = Array.length xs in
  let d = if n = 0 then 0 else Array.length xs.(0) in
  let fps = max 1 (max (int_of_float (sqrt (float_of_int d))) (d / 2)) in
  let tree_params =
    {
      Decision_tree.max_depth = params.max_depth;
      min_samples_split = 2;
      features_per_split = Some fps;
    }
  in
  (* pre-derive one stream per tree (identical to the former
     split-per-iteration loop), then bag and grow the trees in parallel:
     each task owns its stream, so the forest is the same at any [jobs] *)
  let tree_rngs = Rng.split_n rng params.n_trees in
  let trees =
    Yali_exec.Pool.parallel_array_map
      (fun tree_rng ->
        (* bootstrap sample *)
        let bxs = Array.make n [||] and bys = Array.make n 0 in
        for i = 0 to n - 1 do
          let j = Rng.int tree_rng n in
          bxs.(i) <- xs.(j);
          bys.(i) <- ys.(j)
        done;
        Decision_tree.train ~params:tree_params tree_rng ~n_classes bxs bys)
      tree_rngs
  in
  { trees; n_classes }

let predict (f : t) (x : float array) : int =
  let votes = Array.make f.n_classes 0 in
  Array.iter
    (fun t ->
      let c = Decision_tree.predict t x in
      votes.(c) <- votes.(c) + 1)
    f.trees;
  let best = ref 0 in
  Array.iteri (fun c k -> if k > votes.(!best) then best := c) votes;
  !best

let size_bytes (f : t) : int =
  Array.fold_left (fun acc t -> acc + Decision_tree.size_bytes t) 0 f.trees
