(** A random-access graph source: the graph analogue of {!Fblock.source},
    consumed by the DGCNN's minibatch trainer (DESIGN.md §15).

    Flat rows stream as contiguous blocks; graphs are ragged, so the
    abstraction is an indexed getter instead — [get i] may decode record
    [i] from a corpus store, embed an IR module on the fly, or just index
    an in-memory array.  Trainers promise to call [get] only for the
    indices of the current minibatch, so peak memory is one minibatch of
    graphs regardless of corpus size.  Because a trainer sees exactly the
    same graphs in the same order either way, a streamed source is
    bit-identical to {!of_graphs} over the materialised array by
    construction. *)

module Graph = Yali_embeddings.Graph

type t = {
  n : int;  (** number of graphs *)
  feat_dim : int;  (** node-feature width, constant across the source *)
  get : int -> Graph.t;  (** random access; must be pure *)
}

let of_graphs ?feat_dim (graphs : Graph.t array) : t =
  let feat_dim =
    match feat_dim with
    | Some d -> d
    | None -> if Array.length graphs = 0 then 1 else graphs.(0).Graph.feat_dim
  in
  { n = Array.length graphs; feat_dim; get = (fun i -> graphs.(i)) }

let of_fn ~(n : int) ~(feat_dim : int) (get : int -> Graph.t) : t =
  { n; feat_dim; get }
