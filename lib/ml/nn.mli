(** A small feed-forward neural-network kernel with hand-written
    backpropagation: dense, ReLU, tanh, dropout, 1-D convolution and max
    pooling, plus a softmax/cross-entropy training step.  Shared by the MLP,
    CNN and DGCNN models.

    Convolution layout: a [c]-channel signal of length [l] is a flat array
    of size [c*l], channel-major. *)

type layer

val dense : Yali_util.Rng.t -> d_in:int -> d_out:int -> layer
val relu : unit -> layer
val tanh_layer : unit -> layer
val dropout : float -> layer

val conv1d :
  Yali_util.Rng.t -> c_in:int -> c_out:int -> kernel:int -> stride:int -> layer

val maxpool : int -> layer

val forward :
  ?train:bool -> ?rng:Yali_util.Rng.t -> layer -> float array -> float array

(** Backward pass: applies the SGD update in place and returns dL/d(in). *)
val backward : lr:float -> layer -> float array -> float array

type t = { layers : layer list; n_classes : int }

val forward_all :
  ?train:bool -> ?rng:Yali_util.Rng.t -> t -> float array -> float array

val backward_all : lr:float -> t -> float array -> float array
val softmax : float array -> float array

(** One SGD step on a (sample, label) pair; returns the loss and the
    gradient at the network input (used by models with differentiable
    layers below the network, like the DGCNN's graph convolutions). *)
val train_step :
  lr:float -> rng:Yali_util.Rng.t -> t -> float array -> int -> float * float array

(** Raw output-layer activations of one inference pass (no softmax); the
    first-maximum index is exactly {!predict}'s decision. *)
val logits : t -> float array -> float array

val predict : t -> float array -> int

(** Classify every row of a flat matrix.  Dense-only networks run the batch
    as one cache-tiled matmul per layer (same summation order as the
    per-row path); convolutional networks fall back to per-row inference. *)
val predict_batch : t -> Fmat.t -> int array

val size_bytes : t -> int

(** Serialise a dense-only network (Dense/ReLU/tanh/dropout) bit-exactly;
    training scratch (masks, cached activations) is not part of the model
    and is not persisted.
    @raise Invalid_argument on convolutional layers (the CNN keeps its
    activation planes and is not snapshot-able) *)
val to_bin : Buffer.t -> t -> unit

(** @raise Yali_util.Bin.Corrupt on malformed input *)
val of_bin : Yali_util.Bin.r -> t
