(** A small feed-forward neural-network kernel with hand-written
    backpropagation: dense, ReLU, tanh, dropout, 1-D convolution and max
    pooling, plus a softmax/cross-entropy head.  Shared by the MLP, CNN and
    DGCNN models.

    Convolution layout: a [c]-channel signal of length [l] is a flat array
    of size [c*l], channel-major.

    Training paths: the per-example {!train_step} (used by the MLP) and the
    batched minibatch kernel {!train_batch} (used by the CNN and the DGCNN
    head), which runs whole-batch forward/backward as cache-tiled matmuls
    with data-parallel gradient shards — bit-identical at any [--jobs], and
    bit-identical to the frozen naive implementation in [Reference.Nnb]
    (the ml/nn-kernel-vs-reference oracle). *)

type layer

val dense : Yali_util.Rng.t -> d_in:int -> d_out:int -> layer
val relu : unit -> layer
val tanh_layer : unit -> layer
val dropout : float -> layer

val conv1d :
  Yali_util.Rng.t -> c_in:int -> c_out:int -> kernel:int -> stride:int -> layer

val maxpool : int -> layer

val forward :
  ?train:bool -> ?rng:Yali_util.Rng.t -> layer -> float array -> float array

(** Backward pass: applies the SGD update in place and returns dL/d(in). *)
val backward : lr:float -> layer -> float array -> float array

type t = { layers : layer list; n_classes : int }

val forward_all :
  ?train:bool -> ?rng:Yali_util.Rng.t -> t -> float array -> float array

val backward_all : lr:float -> t -> float array -> float array
val softmax : float array -> float array

(** One SGD step on a (sample, label) pair; returns the loss and the
    gradient at the network input (used by models with differentiable
    layers below the network, like the DGCNN's graph convolutions). *)
val train_step :
  lr:float -> rng:Yali_util.Rng.t -> t -> float array -> int -> float * float array

(** Rows per gradient shard of {!train_batch}.  Shard boundaries are a
    function of the batch size only (never of [--jobs]); exposed so the
    frozen reference and the differential tests partition identically. *)
val grad_shard_rows : int

(** In-place pairwise tree reduction into slot 0: merges [shards.(s+step)]
    into [shards.(s)] for stride-doubling steps 1, 2, 4, … — the fixed
    merge order that makes sharded gradient accumulation independent of
    [--jobs].  Shared by {!train_batch} and the DGCNN's graph-convolution
    gradient reduction (and mirrored verbatim by the frozen reference). *)
val tree_reduce : ('a -> 'a -> unit) -> 'a array -> unit

(** [train_batch ~lr ~rng net xb yb] performs ONE minibatch SGD step on the
    whole batch: forward and backward as cache-tiled matmuls (im2col
    lowering for 1-D convolutions), cross-entropy gradients {e summed} over
    the batch (so the per-epoch step magnitude matches the per-example
    trainer at the same learning rate), accumulated in fixed row shards of
    {!grad_shard_rows} over {!Yali_exec.Pool} and merged in a fixed
    pairwise tree order — bit-identical at any [--jobs].  Dropout masks are
    drawn from [rng] on the calling domain, layer-major then row-major.
    Returns the mean loss over the batch and dL/d(input) per row (for
    models with differentiable layers below the network).  Callers that
    discard the input gradient pass [~need_dx:false] to skip the first
    layer's (otherwise unused) backward-to-input work; the returned [dx]
    is then all zeros.  Weights are bit-identical either way. *)
val train_batch :
  ?need_dx:bool ->
  lr:float ->
  rng:Yali_util.Rng.t ->
  t ->
  Fmat.t ->
  int array ->
  float * Fmat.t

(** Raw output-layer activations of one inference pass (no softmax); the
    first-maximum index is exactly {!predict}'s decision. *)
val logits : t -> float array -> float array

val predict : t -> float array -> int

(** Classify every row of a flat matrix.  Dense-only networks run the batch
    as one cache-tiled matmul per layer (same summation order as the
    per-row path), against a per-layer cached weight transpose that is
    invalidated on every weight update; convolutional networks fall back to
    per-row inference. *)
val predict_batch : t -> Fmat.t -> int array

val size_bytes : t -> int

(** A read-only structural view of the layers.  The matrices and bias
    arrays are the network's own storage (not copies): [Reference.Nnb] — the
    frozen naive trainer that `bench nn` and the differential oracles
    compare against — trains through this view.  Any code that mutates
    weights through a view must call {!invalidate_caches} afterwards. *)
type layer_view =
  | V_dense of { w : Matrix.t; b : float array }
  | V_relu
  | V_tanh
  | V_dropout of float
  | V_conv1d of {
      c_in : int;
      c_out : int;
      kernel : int;
      stride : int;
      filters : Matrix.t;
      cbias : float array;
    }
  | V_maxpool of int

val view : t -> layer_view list

(** Drop the cached per-layer weight transposes (see {!predict_batch});
    required after mutating weights through a {!view}. *)
val invalidate_caches : t -> unit

(** Every parameter array in layer order (weights then bias per
    parameterised layer), copied — the bit-identity currency of the
    differential tests. *)
val dump_weights : t -> float array array

(** Serialise a network bit-exactly (all layer kinds, including Conv1d and
    MaxPool); training scratch (masks, cached activations, cached
    transposes) is not part of the model and is not persisted. *)
val to_bin : Buffer.t -> t -> unit

(** @raise Yali_util.Bin.Corrupt on malformed input *)
val of_bin : Yali_util.Bin.r -> t
