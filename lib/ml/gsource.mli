(** A random-access graph source: the graph analogue of {!Fblock.source}
    for the DGCNN's streamed minibatch training (DESIGN.md §15).  [get i]
    may index an array, or decode + embed corpus record [i] out of core —
    trainers only ever hold one minibatch of graphs at a time. *)

type t = {
  n : int;  (** number of graphs *)
  feat_dim : int;  (** node-feature width, constant across the source *)
  get : int -> Yali_embeddings.Graph.t;  (** random access; must be pure *)
}

(** In-memory source.  [feat_dim] defaults to the first graph's (1 when
    empty). *)
val of_graphs : ?feat_dim:int -> Yali_embeddings.Graph.t array -> t

val of_fn : n:int -> feat_dim:int -> (int -> Yali_embeddings.Graph.t) -> t
