(** Frozen pre-kernel-layer implementations of the models the {!Fmat}
    rewrite touched: decision trees / random forests with per-node
    sort-and-sweep split finding over [float array array] rows, k-NN with
    the subtract-square-accumulate distance and a full sort, and logistic
    regression over row arrays.

    These exist for two reasons only:
    - differential property tests (test/test_fmat.ml) check that the
      rewritten kernels predict identically on randomised datasets;
    - the [bench kernels] section measures the before/after speedup against
      the very code the optimised kernels replaced.

    Nothing in the framework proper may depend on this module.  The one
    deliberate deviation from the historical code is marked below: the tree
    sorts its candidate features ascending, adopting the total
    (gain, lowest-feature, lowest-threshold) tie-break that the rewritten
    {!Decision_tree} documents — the differential tests compare the split
    kernels, not the (changed, documented) tie rule.  [Matrix.matmul_naive]
    plays the same role for the tiled matmul. *)

module Rng = Yali_util.Rng

module Decision_tree = struct
  type node =
    | Leaf of int
    | Split of { feature : int; threshold : float; left : node; right : node }

  type t = { root : node; n_classes : int }

  type params = {
    max_depth : int;
    min_samples_split : int;
    features_per_split : int option;
  }

  let default_params =
    { max_depth = 18; min_samples_split = 2; features_per_split = None }

  let majority ~(n_classes : int) (ys : int array) (idx : int array) : int =
    let counts = Array.make n_classes 0 in
    Array.iter (fun i -> counts.(ys.(i)) <- counts.(ys.(i)) + 1) idx;
    let best = ref 0 in
    Array.iteri (fun c k -> if k > counts.(!best) then best := c) counts;
    !best

  let gini_of_counts (counts : int array) (total : int) : float =
    if total = 0 then 0.0
    else begin
      let acc = ref 1.0 in
      Array.iter
        (fun k ->
          let p = float_of_int k /. float_of_int total in
          acc := !acc -. (p *. p))
        counts;
      !acc
    end

  let best_split ~(n_classes : int) (xs : float array array) (ys : int array)
      (idx : int array) (features : int list) : (int * float * float) option =
    let n = Array.length idx in
    let parent_counts = Array.make n_classes 0 in
    Array.iter
      (fun i -> parent_counts.(ys.(i)) <- parent_counts.(ys.(i)) + 1)
      idx;
    let parent_gini = gini_of_counts parent_counts n in
    let best = ref None in
    List.iter
      (fun f ->
        (* per-node, per-feature: copy and sort the sample indices — the
           O(n log n)-per-candidate cost the histogram kernel removes *)
        let sorted = Array.copy idx in
        Array.sort (fun a b -> compare xs.(a).(f) xs.(b).(f)) sorted;
        let left_counts = Array.make n_classes 0 in
        let right_counts = Array.copy parent_counts in
        for k = 0 to n - 2 do
          let i = sorted.(k) in
          left_counts.(ys.(i)) <- left_counts.(ys.(i)) + 1;
          right_counts.(ys.(i)) <- right_counts.(ys.(i)) - 1;
          let v = xs.(i).(f) and v' = xs.(sorted.(k + 1)).(f) in
          if v < v' then begin
            let nl = k + 1 and nr = n - k - 1 in
            let g =
              (float_of_int nl *. gini_of_counts left_counts nl
              +. float_of_int nr *. gini_of_counts right_counts nr)
              /. float_of_int n
            in
            let gain = parent_gini -. g in
            let thr = (v +. v') /. 2.0 in
            match !best with
            | Some (_, _, best_gain) when best_gain >= gain -> ()
            | _ -> best := Some (f, thr, gain)
          end
        done)
      features;
    match !best with
    | Some (f, thr, gain) when gain > 1e-12 -> Some (f, thr, gain)
    | _ -> None

  let train ?(params = default_params) (rng : Rng.t) ~(n_classes : int)
      (xs : float array array) (ys : int array) : t =
    let d = if Array.length xs = 0 then 0 else Array.length xs.(0) in
    let all_features = List.init d Fun.id in
    let pick_features () =
      match params.features_per_split with
      | None -> all_features
      | Some k ->
          (* deviation from the historical code (see module comment): sort
             the sampled candidates so ties resolve to the lowest feature,
             like the rewritten tree; RNG consumption is unchanged *)
          List.sort compare (Rng.sample rng (min k d) all_features)
    in
    let rec grow (idx : int array) (depth : int) : node =
      let pure =
        Array.length idx > 0
        && Array.for_all (fun i -> ys.(i) = ys.(idx.(0))) idx
      in
      if
        pure || depth >= params.max_depth
        || Array.length idx < params.min_samples_split
      then Leaf (majority ~n_classes ys idx)
      else
        match best_split ~n_classes xs ys idx (pick_features ()) with
        | None -> Leaf (majority ~n_classes ys idx)
        | Some (feature, threshold, _) ->
            let left_idx =
              Array.of_seq
                (Seq.filter
                   (fun i -> xs.(i).(feature) <= threshold)
                   (Array.to_seq idx))
            in
            let right_idx =
              Array.of_seq
                (Seq.filter
                   (fun i -> xs.(i).(feature) > threshold)
                   (Array.to_seq idx))
            in
            if Array.length left_idx = 0 || Array.length right_idx = 0 then
              Leaf (majority ~n_classes ys idx)
            else
              Split
                {
                  feature;
                  threshold;
                  left = grow left_idx (depth + 1);
                  right = grow right_idx (depth + 1);
                }
    in
    let idx = Array.init (Array.length xs) Fun.id in
    { root = grow idx 0; n_classes }

  let predict (t : t) (x : float array) : int =
    let rec go = function
      | Leaf c -> c
      | Split { feature; threshold; left; right } ->
          if x.(feature) <= threshold then go left else go right
    in
    go t.root
end

module Random_forest = struct
  type t = { trees : Decision_tree.t array; n_classes : int }

  type params = { n_trees : int; max_depth : int }

  let default_params = { n_trees = 64; max_depth = 24 }

  let train ?(params = default_params) (rng : Rng.t) ~(n_classes : int)
      (xs : float array array) (ys : int array) : t =
    let n = Array.length xs in
    let d = if n = 0 then 0 else Array.length xs.(0) in
    let fps = max 1 (max (int_of_float (sqrt (float_of_int d))) (d / 2)) in
    let tree_params =
      {
        Decision_tree.max_depth = params.max_depth;
        min_samples_split = 2;
        features_per_split = Some fps;
      }
    in
    let tree_rngs = Rng.split_n rng params.n_trees in
    let trees =
      Yali_exec.Pool.parallel_array_map
        (fun tree_rng ->
          (* bootstrap by row copy — the allocation the rewrite avoids *)
          let bxs = Array.make n [||] and bys = Array.make n 0 in
          for i = 0 to n - 1 do
            let j = Rng.int tree_rng n in
            bxs.(i) <- xs.(j);
            bys.(i) <- ys.(j)
          done;
          Decision_tree.train ~params:tree_params tree_rng ~n_classes bxs bys)
        tree_rngs
    in
    { trees; n_classes }

  let predict (f : t) (x : float array) : int =
    let votes = Array.make f.n_classes 0 in
    Array.iter
      (fun t ->
        let c = Decision_tree.predict t x in
        votes.(c) <- votes.(c) + 1)
      f.trees;
    let best = ref 0 in
    Array.iteri (fun c k -> if k > votes.(!best) then best := c) votes;
    !best
end

module Knn = struct
  type t = {
    k : int;
    scaler : Features.scaler;
    xs : float array array;
    ys : int array;
    n_classes : int;
  }

  let train ?(k = 5) ~(n_classes : int) (xs : float array array)
      (ys : int array) : t =
    let scaler, xs = Features.fit_transform xs in
    { k; scaler; xs; ys; n_classes }

  let sq_dist (a : float array) (b : float array) : float =
    let acc = ref 0.0 in
    Array.iteri
      (fun i x ->
        let d = x -. b.(i) in
        acc := !acc +. (d *. d))
      a;
    !acc

  let predict (t : t) (x : float array) : int =
    let x = Features.transform t.scaler x in
    let n = Array.length t.xs in
    let k = min t.k n in
    (* per-query: n fresh tuples and a full O(n log n) sort — the
       allocation and work the partial selection removes *)
    let dists = Array.make n (0.0, 0) in
    Yali_exec.Pool.parallel_for_chunks ~min_chunk:512 n (fun lo hi ->
        for i = lo to hi - 1 do
          dists.(i) <- (sq_dist x t.xs.(i), t.ys.(i))
        done);
    Array.sort (fun (a, _) (b, _) -> compare a b) dists;
    let votes = Array.make t.n_classes 0 in
    for i = 0 to k - 1 do
      let _, y = dists.(i) in
      votes.(y) <- votes.(y) + 1
    done;
    let best = ref 0 in
    Array.iteri (fun c v -> if v > votes.(!best) then best := c) votes;
    !best
end

module Logreg = struct
  type t = {
    scaler : Features.scaler;
    weights : Matrix.t;
    bias : float array;
    n_classes : int;
  }

  type params = { epochs : int; lr : float; l2 : float; batch : int }

  let default_params = { epochs = 60; lr = 0.1; l2 = 1e-4; batch = 32 }

  let softmax (z : float array) : float array =
    let m = Array.fold_left max neg_infinity z in
    let e = Array.map (fun x -> exp (x -. m)) z in
    let s = Array.fold_left ( +. ) 0.0 e in
    Array.map (fun x -> x /. s) e

  let logits (w : Matrix.t) (bias : float array) (x : float array) :
      float array =
    Array.init (Array.length bias) (fun c ->
        let acc = ref bias.(c) in
        for j = 0 to Array.length x - 1 do
          acc := !acc +. (Matrix.get w c j *. x.(j))
        done;
        !acc)

  let argmax (v : float array) : int =
    let best = ref 0 in
    Array.iteri (fun i x -> if x > v.(!best) then best := i) v;
    !best

  let train ?(params = default_params) (rng : Rng.t) ~(n_classes : int)
      (xs : float array array) (ys : int array) : t =
    let scaler, xs = Features.fit_transform xs in
    let n = Array.length xs in
    let d = if n = 0 then 0 else Array.length xs.(0) in
    let w = Matrix.random rng n_classes d ~scale:0.01 in
    let bias = Array.make n_classes 0.0 in
    let order = Array.init n Fun.id in
    for epoch = 0 to params.epochs - 1 do
      let lr = params.lr /. (1.0 +. (0.05 *. float_of_int epoch)) in
      for i = n - 1 downto 1 do
        let j = Rng.int rng (i + 1) in
        let tmp = order.(i) in
        order.(i) <- order.(j);
        order.(j) <- tmp
      done;
      let b = ref 0 in
      while !b < n do
        let hi = min n (!b + params.batch) in
        let gw = Matrix.create n_classes d
        and gb = Array.make n_classes 0.0 in
        for k = !b to hi - 1 do
          let i = order.(k) in
          let p = softmax (logits w bias xs.(i)) in
          for c = 0 to n_classes - 1 do
            let err = p.(c) -. (if c = ys.(i) then 1.0 else 0.0) in
            gb.(c) <- gb.(c) +. err;
            for j = 0 to d - 1 do
              Matrix.set gw c j (Matrix.get gw c j +. (err *. xs.(i).(j)))
            done
          done
        done;
        let bs = float_of_int (hi - !b) in
        for c = 0 to n_classes - 1 do
          bias.(c) <- bias.(c) -. (lr *. gb.(c) /. bs);
          for j = 0 to d - 1 do
            let wij = Matrix.get w c j in
            Matrix.set w c j
              (wij -. (lr *. ((Matrix.get gw c j /. bs) +. (params.l2 *. wij))))
          done
        done;
        b := hi
      done
    done;
    { scaler; weights = w; bias; n_classes }

  let predict (t : t) (x : float array) : int =
    let x = Features.transform t.scaler x in
    argmax (logits t.weights t.bias x)
end

(* -- frozen naive minibatch trainers (DESIGN.md §15) ------------------------ *)

(* The minibatch rewrite of the neural tier (Nn.train_batch and the
   cnn/dgcnn trainers built on it) is pinned against the naive
   implementations below: the SAME minibatch algorithm — same shard
   boundaries, same per-cell floating-point accumulation chains, same rng
   draw order — expressed as per-sample boxed loops instead of tiled
   matmuls, and run sequentially instead of over the worker pool.  The
   ml/nn-kernel-vs-reference oracle and `bench nn` require the two sides to
   produce bit-identical weights; the benchmark also measures the speedup
   against this very code.  Do not "optimise" anything below. *)

(* Duplicated from Nn.tree_reduce: pairwise stride-doubling reduction into
   slot 0 — the merge order is part of the frozen contract. *)
let tree_reduce (merge : 'a -> 'a -> unit) (shards : 'a array) : unit =
  let ns = Array.length shards in
  let step = ref 1 in
  while !step < ns do
    let s = ref 0 in
    while !s + !step < ns do
      merge shards.(!s) shards.(!s + !step);
      s := !s + (2 * !step)
    done;
    step := !step * 2
  done

(* Fisher-Yates exactly as the kernel trainers consume the rng. *)
let shuffle (rng : Rng.t) (order : int array) : unit =
  for i = Array.length order - 1 downto 1 do
    let j = Rng.int rng (i + 1) in
    let tmp = order.(i) in
    order.(i) <- order.(j);
    order.(j) <- tmp
  done

module Nnb = struct
  type grad = G_none | G_par of Matrix.t * float array

  type scr =
    | Nothing
    | In of float array
    | Out of float array
    | ConvS of { xin : float array; in_w : int; out_len : int }
    | PoolS of { argmax : int array; in_w : int; out_w : int }

  let widths_of (views : Nn.layer_view array) ~(d_in : int) : int array =
    let nl = Array.length views in
    let widths = Array.make (nl + 1) d_in in
    for li = 0 to nl - 1 do
      let w = widths.(li) in
      widths.(li + 1) <-
        (match views.(li) with
        | Nn.V_dense { w = wm; _ } ->
            if wm.Matrix.cols <> w then
              invalid_arg "Reference.Nnb: dense layer width mismatch";
            wm.Matrix.rows
        | Nn.V_relu | Nn.V_tanh | Nn.V_dropout _ -> w
        | Nn.V_conv1d c ->
            let in_len = w / c.c_in in
            let ol = ((in_len - c.kernel) / c.stride) + 1 in
            if ol <= 0 then c.c_out else c.c_out * ol
        | Nn.V_maxpool size -> w / size)
    done;
    widths

  (* One minibatch SGD step through a {!Nn.view} of the network — the naive
     counterpart of [Nn.train_batch].  Summed cross-entropy gradients,
     shard-local accumulators of [Nn.grad_shard_rows] rows merged by
     {!tree_reduce}, dropout masks drawn layer-major then row-major. *)
  let train_batch ~(lr : float) ~(rng : Rng.t) (net : Nn.t) (xb : Fmat.t)
      (yb : int array) : float * Fmat.t =
    let m = xb.Fmat.n in
    if m = 0 then (0.0, Fmat.create 0 xb.Fmat.d)
    else begin
      if Array.length yb <> m then
        invalid_arg "Reference.Nnb.train_batch: label count mismatch";
      let views = Array.of_list (Nn.view net) in
      let nl = Array.length views in
      let widths = widths_of views ~d_in:xb.Fmat.d in
      let masks = Array.make nl None in
      for li = 0 to nl - 1 do
        match views.(li) with
        | Nn.V_dropout p ->
            let wd = widths.(li) in
            let mk = Array.make (m * wd) 0.0 in
            for i = 0 to m - 1 do
              for j = 0 to wd - 1 do
                mk.((i * wd) + j) <-
                  (if Rng.float rng < p then 0.0 else 1.0 /. (1.0 -. p))
              done
            done;
            masks.(li) <- Some mk
        | _ -> ()
      done;
      let ns = (m + Nn.grad_shard_rows - 1) / Nn.grad_shard_rows in
      let losses = Array.make m 0.0 in
      let dx = Fmat.create m xb.Fmat.d in
      let shard_grads =
        Array.init ns (fun _ ->
            Array.map
              (function
                | Nn.V_dense { w; _ } ->
                    G_par
                      ( Matrix.create w.Matrix.rows w.Matrix.cols,
                        Array.make w.Matrix.rows 0.0 )
                | Nn.V_conv1d c ->
                    G_par
                      ( Matrix.create c.c_out (c.c_in * c.kernel),
                        Array.make c.c_out 0.0 )
                | _ -> G_none)
              views)
      in
      for s = 0 to ns - 1 do
        let lo = s * Nn.grad_shard_rows in
        let len = min Nn.grad_shard_rows (m - lo) in
        let grads = shard_grads.(s) in
        for r = 0 to len - 1 do
          let row = lo + r in
          let scratch = Array.make nl Nothing in
          let a = ref (Fmat.row_copy xb row) in
          for li = 0 to nl - 1 do
            let x = !a in
            match views.(li) with
            | Nn.V_dense { w; b } ->
                scratch.(li) <- In x;
                let out = Array.make w.Matrix.rows 0.0 in
                for o = 0 to w.Matrix.rows - 1 do
                  let acc = ref b.(o) in
                  for j = 0 to w.Matrix.cols - 1 do
                    let xv = x.(j) in
                    if xv <> 0.0 then acc := !acc +. (xv *. Matrix.get w o j)
                  done;
                  out.(o) <- !acc
                done;
                a := out
            | Nn.V_relu ->
                scratch.(li) <- In x;
                a := Array.map (fun v -> if v > 0.0 then v else 0.0) x
            | Nn.V_tanh ->
                let out = Array.map tanh x in
                scratch.(li) <- Out out;
                a := out
            | Nn.V_dropout _ ->
                let mask = Option.get masks.(li) in
                let wd = widths.(li) in
                a := Array.mapi (fun j v -> v *. mask.((row * wd) + j)) x
            | Nn.V_conv1d c ->
                let in_w = Array.length x in
                let in_len = in_w / c.c_in in
                let out_len = ((in_len - c.kernel) / c.stride) + 1 in
                scratch.(li) <- ConvS { xin = x; in_w; out_len };
                if out_len <= 0 then a := Array.make c.c_out 0.0
                else begin
                  let out = Array.make (c.c_out * out_len) 0.0 in
                  for o = 0 to c.c_out - 1 do
                    for p = 0 to out_len - 1 do
                      let acc = ref c.cbias.(o) in
                      for ci = 0 to c.c_in - 1 do
                        for k = 0 to c.kernel - 1 do
                          let xv = x.((ci * in_len) + (p * c.stride) + k) in
                          if xv <> 0.0 then
                            acc :=
                              !acc
                              +. (xv
                                 *. Matrix.get c.filters o ((ci * c.kernel) + k))
                        done
                      done;
                      out.((o * out_len) + p) <- !acc
                    done
                  done;
                  a := out
                end
            | Nn.V_maxpool size ->
                let in_w = Array.length x in
                let out_w = in_w / size in
                let amax = Array.make out_w 0 in
                let out =
                  Array.init out_w (fun wi ->
                      let base = wi * size in
                      let best = ref base in
                      for k = 1 to size - 1 do
                        if base + k < in_w && x.(base + k) > x.(!best) then
                          best := base + k
                      done;
                      amax.(wi) <- !best;
                      x.(!best))
                in
                scratch.(li) <- PoolS { argmax = amax; in_w; out_w };
                a := out
          done;
          let logits = !a in
          let p = Nn.softmax logits in
          let y = yb.(row) in
          losses.(row) <- -.log (max 1e-12 p.(y));
          let g =
            ref (Array.mapi (fun j v -> v -. if j = y then 1.0 else 0.0) p)
          in
          for li = nl - 1 downto 0 do
            let d_o = !g in
            match (views.(li), scratch.(li), grads.(li)) with
            | Nn.V_dense { w; _ }, In xin, G_par (gw, gb) ->
                for o = 0 to Array.length d_o - 1 do
                  gb.(o) <- gb.(o) +. d_o.(o)
                done;
                for o = 0 to Array.length d_o - 1 do
                  let gv = d_o.(o) in
                  if gv <> 0.0 then
                    for j = 0 to Array.length xin - 1 do
                      Matrix.set gw o j (Matrix.get gw o j +. (gv *. xin.(j)))
                    done
                done;
                g :=
                  Array.init w.Matrix.cols (fun j ->
                      let acc = ref 0.0 in
                      for o = 0 to w.Matrix.rows - 1 do
                        let gv = d_o.(o) in
                        if gv <> 0.0 then
                          acc := !acc +. (gv *. Matrix.get w o j)
                      done;
                      !acc)
            | Nn.V_relu, In xin, G_none ->
                g :=
                  Array.mapi
                    (fun j v -> if xin.(j) > 0.0 then v else 0.0)
                    d_o
            | Nn.V_tanh, Out out, G_none ->
                g :=
                  Array.mapi
                    (fun j v -> v *. (1.0 -. (out.(j) *. out.(j))))
                    d_o
            | Nn.V_dropout _, Nothing, G_none ->
                let mask = Option.get masks.(li) in
                let wd = widths.(li) in
                g := Array.mapi (fun j v -> v *. mask.((row * wd) + j)) d_o
            | Nn.V_conv1d c, ConvS { xin; in_w; out_len }, G_par (gf, gcb) ->
                if out_len <= 0 then g := Array.make in_w 0.0
                else begin
                  let in_len = in_w / c.c_in in
                  for p = 0 to out_len - 1 do
                    for o = 0 to c.c_out - 1 do
                      gcb.(o) <- gcb.(o) +. d_o.((o * out_len) + p)
                    done
                  done;
                  for p = 0 to out_len - 1 do
                    for o = 0 to c.c_out - 1 do
                      let gv = d_o.((o * out_len) + p) in
                      if gv <> 0.0 then
                        for ci = 0 to c.c_in - 1 do
                          for k = 0 to c.kernel - 1 do
                            let col = (ci * c.kernel) + k in
                            Matrix.set gf o col
                              (Matrix.get gf o col
                              +. (gv
                                 *. xin.((ci * in_len) + (p * c.stride) + k)))
                          done
                        done
                    done
                  done;
                  let din = Array.make in_w 0.0 in
                  let cols = c.c_in * c.kernel in
                  let dimrow = Array.make cols 0.0 in
                  for p = 0 to out_len - 1 do
                    for col = 0 to cols - 1 do
                      let acc = ref 0.0 in
                      for o = 0 to c.c_out - 1 do
                        let gv = d_o.((o * out_len) + p) in
                        if gv <> 0.0 then
                          acc := !acc +. (gv *. Matrix.get c.filters o col)
                      done;
                      dimrow.(col) <- !acc
                    done;
                    for ci = 0 to c.c_in - 1 do
                      for k = 0 to c.kernel - 1 do
                        let xi = (ci * in_len) + (p * c.stride) + k in
                        din.(xi) <- din.(xi) +. dimrow.((ci * c.kernel) + k)
                      done
                    done
                  done;
                  g := din
                end
            | Nn.V_maxpool _, PoolS { argmax; in_w; out_w }, G_none ->
                let din = Array.make in_w 0.0 in
                for wi = 0 to out_w - 1 do
                  din.(argmax.(wi)) <- din.(argmax.(wi)) +. d_o.(wi)
                done;
                g := din
            | _ -> assert false
          done;
          Array.blit !g 0 dx.Fmat.data (row * dx.Fmat.d) dx.Fmat.d
        done
      done;
      tree_reduce
        (fun a b ->
          Array.iteri
            (fun i ga ->
              match (ga, b.(i)) with
              | G_none, G_none -> ()
              | G_par (gw, gb), G_par (gw', gb') ->
                  Array.iteri
                    (fun j v ->
                      gw.Matrix.data.(j) <- gw.Matrix.data.(j) +. v)
                    gw'.Matrix.data;
                  Array.iteri (fun j v -> gb.(j) <- gb.(j) +. v) gb'
              | _ -> assert false)
            a)
        shard_grads;
      Array.iteri
        (fun li v ->
          match (v, shard_grads.(0).(li)) with
          | Nn.V_dense { w; b }, G_par (gw, gb) ->
              Array.iteri (fun j gv -> b.(j) <- b.(j) -. (lr *. gv)) gb;
              let wd = w.Matrix.data and gwd = gw.Matrix.data in
              for i = 0 to Array.length wd - 1 do
                wd.(i) <- wd.(i) -. (lr *. gwd.(i))
              done
          | Nn.V_conv1d c, G_par (gf, gcb) ->
              Array.iteri
                (fun j gv -> c.cbias.(j) <- c.cbias.(j) -. (lr *. gv))
                gcb;
              let fd = c.filters.Matrix.data and gfd = gf.Matrix.data in
              for i = 0 to Array.length fd - 1 do
                fd.(i) <- fd.(i) -. (lr *. gfd.(i))
              done
          | _, G_none -> ()
          | _ -> assert false)
        views;
      Nn.invalidate_caches net;
      let total = ref 0.0 in
      for i = 0 to m - 1 do
        total := !total +. losses.(i)
      done;
      (!total /. float_of_int m, dx)
    end
end

module Cnn = struct
  (* The naive counterpart of [Cnn.train]: identical rng consumption
     (build_net draws, per-epoch shuffles, per-batch dropout masks) and
     identical minibatch schedule, with every SGD step going through
     {!Nnb.train_batch} instead of the kernel. *)
  let train ?params (rng : Rng.t) ~(n_classes : int) (x : Fmat.t)
      (ys : int array) : Cnn.t =
    let params =
      match params with Some p -> p | None -> Cnn.default_params
    in
    let scaler, x = Features.fit_transform_fmat x in
    let net = Cnn.build_net rng ~d_in:x.Fmat.d ~n_classes in
    let n = x.Fmat.n in
    let order = Array.init n Fun.id in
    let batch = params.Cnn.batch in
    for epoch = 0 to params.Cnn.epochs - 1 do
      let lr = params.Cnn.lr /. (1.0 +. (0.05 *. float_of_int epoch)) in
      shuffle rng order;
      let nb = (n + batch - 1) / batch in
      for b = 0 to nb - 1 do
        let lo = b * batch in
        let m = min batch (n - lo) in
        let xb = Fmat.create m x.Fmat.d in
        for i = 0 to m - 1 do
          Array.blit x.Fmat.data
            (order.(lo + i) * x.Fmat.d)
            xb.Fmat.data (i * x.Fmat.d) x.Fmat.d
        done;
        let yb = Array.init m (fun i -> ys.(order.(lo + i))) in
        ignore (Nnb.train_batch ~lr ~rng net xb yb)
      done
    done;
    Cnn.of_parts ~scaler ~net
end

module Dgcnn = struct
  module Graph = Yali_embeddings.Graph

  (* Naive counterpart of the DGCNN minibatch trainer: same initialisation
     draws ([Dgcnn.init_gc_weights] / [Dgcnn.build_head]), duplicated
     forward/backward on [Matrix.matmul_naive], same shard-structured
     gradient accumulation merged by {!tree_reduce}, head steps through
     {!Nnb.train_batch}. *)

  let total_channels (p : Dgcnn.params) =
    List.fold_left ( + ) 0 p.Dgcnn.gc_channels

  let propagate (adj : int list array) (x : Matrix.t) : Matrix.t =
    let n = x.Matrix.rows and d = x.Matrix.cols in
    let y = Matrix.create n d in
    for i = 0 to n - 1 do
      let neigh = i :: adj.(i) in
      let deg = float_of_int (List.length neigh) in
      List.iter
        (fun j ->
          for c = 0 to d - 1 do
            Matrix.set y i c (Matrix.get y i c +. (Matrix.get x j c /. deg))
          done)
        neigh
    done;
    y

  let propagate_t (adj : int list array) (dy : Matrix.t) : Matrix.t =
    let n = dy.Matrix.rows and d = dy.Matrix.cols in
    let dx = Matrix.create n d in
    for i = 0 to n - 1 do
      let neigh = i :: adj.(i) in
      let deg = float_of_int (List.length neigh) in
      List.iter
        (fun j ->
          for c = 0 to d - 1 do
            Matrix.set dx j c (Matrix.get dx j c +. (Matrix.get dy i c /. deg))
          done)
        neigh
    done;
    dx

  type forward_state = {
    adj : int list array;
    px_list : Matrix.t list;
    z_list : Matrix.t list;
    concat : Matrix.t;
    order : int array;
    flat : float array;
  }

  let forward_graph (p : Dgcnn.params) (gc_weights : Matrix.t list)
      (g : Graph.t) : forward_state =
    let g =
      if Graph.node_count g = 0 then
        { g with Graph.node_feats = [| Array.make g.feat_dim 0.0 |]; edges = [] }
      else g
    in
    let g =
      let cap = p.Dgcnn.max_nodes in
      if Graph.node_count g <= cap then g
      else
        {
          g with
          Graph.node_feats = Array.sub g.node_feats 0 cap;
          edges = List.filter (fun (s, d, _) -> s < cap && d < cap) g.edges;
        }
    in
    let adj = Graph.undirected_adjacency g in
    let x0 =
      Matrix.map (fun v -> Float.copy_sign (log1p (Float.abs v)) v)
        (Matrix.of_rows g.node_feats)
    in
    let n = Matrix.(x0.rows) in
    let rec go z ws px_acc z_acc =
      match ws with
      | [] -> (List.rev px_acc, List.rev z_acc)
      | w :: rest ->
          let px = propagate adj z in
          let zl = Matrix.map tanh (Matrix.matmul_naive px w) in
          go zl rest (px :: px_acc) (zl :: z_acc)
    in
    let px_list, z_list = go x0 gc_weights [] [] in
    let tc = total_channels p in
    let concat = Matrix.create n tc in
    let off = ref 0 in
    List.iter
      (fun (z : Matrix.t) ->
        for i = 0 to n - 1 do
          for c = 0 to z.Matrix.cols - 1 do
            Matrix.set concat i (!off + c) (Matrix.get z i c)
          done
        done;
        off := !off + z.Matrix.cols)
      z_list;
    let k = p.Dgcnn.sortpool_k in
    let order = Array.init n Fun.id in
    Array.sort
      (fun a b ->
        compare (Matrix.get concat b (tc - 1)) (Matrix.get concat a (tc - 1)))
      order;
    let flat = Array.make (k * tc) 0.0 in
    for r = 0 to min k n - 1 do
      let i = order.(r) in
      for c = 0 to tc - 1 do
        flat.((r * tc) + c) <- Matrix.get concat i c
      done
    done;
    { adj; px_list; z_list; concat; order; flat }

  let graph_backward (p : Dgcnn.params) (gc_weights : Matrix.t list)
      (st : forward_state) (dflat : float array) : Matrix.t list =
    let tc = total_channels p in
    let nn = st.concat.Matrix.rows in
    let dconcat = Matrix.create nn tc in
    for r = 0 to min p.Dgcnn.sortpool_k nn - 1 do
      let node = st.order.(r) in
      for c = 0 to tc - 1 do
        Matrix.set dconcat node c (dflat.((r * tc) + c))
      done
    done;
    let layer_grads =
      let off = ref 0 in
      List.map
        (fun (z : Matrix.t) ->
          let dz = Matrix.create nn z.Matrix.cols in
          for i' = 0 to nn - 1 do
            for c = 0 to z.Matrix.cols - 1 do
              Matrix.set dz i' c (Matrix.get dconcat i' (!off + c))
            done
          done;
          off := !off + z.Matrix.cols;
          dz)
        st.z_list
    in
    let rev_w = List.rev gc_weights in
    let rev_z = List.rev st.z_list in
    let rev_px = List.rev st.px_list in
    let rev_dz = List.rev layer_grads in
    let rec back ws zs pxs dzs (carry : Matrix.t option) (dws : Matrix.t list)
        =
      match (ws, zs, pxs, dzs) with
      | [], [], [], [] -> dws
      | w :: ws', z :: zs', px :: pxs', dz :: dzs' ->
          let dz_total =
            match carry with Some c -> Matrix.add dz c | None -> dz
          in
          let dpre =
            Matrix.init nn z.Matrix.cols (fun i' c ->
                let zv = Matrix.get z i' c in
                Matrix.get dz_total i' c *. (1.0 -. (zv *. zv)))
          in
          let dw = Matrix.matmul_naive (Matrix.transpose px) dpre in
          let dprev =
            propagate_t st.adj (Matrix.matmul_naive dpre (Matrix.transpose w))
          in
          back ws' zs' pxs' dzs' (Some dprev) (dw :: dws)
      | _ -> assert false
    in
    back rev_w rev_z rev_px rev_dz None []

  let train ?params (rng : Rng.t) ~(n_classes : int) ~(feat_dim : int)
      (graphs : Graph.t array) (ys : int array) : Dgcnn.t =
    let params =
      match params with Some p -> p | None -> Dgcnn.default_params
    in
    let gc_weights = Dgcnn.init_gc_weights rng params ~feat_dim in
    let head = Dgcnn.build_head rng params ~n_classes in
    let n = Array.length graphs in
    let order = Array.init n Fun.id in
    let flat_w = params.Dgcnn.sortpool_k * total_channels params in
    for epoch = 0 to params.Dgcnn.epochs - 1 do
      let lr =
        params.Dgcnn.lr /. (1.0 +. (0.05 *. float_of_int epoch))
      in
      shuffle rng order;
      let batch = params.Dgcnn.batch in
      let nb = (n + batch - 1) / batch in
      for b = 0 to nb - 1 do
        let lo = b * batch in
        let m = min batch (n - lo) in
        let states =
          Array.init m (fun i ->
              forward_graph params gc_weights graphs.(order.(lo + i)))
        in
        let flats = Fmat.create m flat_w in
        for i = 0 to m - 1 do
          Array.blit states.(i).flat 0 flats.Fmat.data (i * flat_w) flat_w
        done;
        let yb = Array.init m (fun i -> ys.(order.(lo + i))) in
        let _loss, dflat = Nnb.train_batch ~lr ~rng head flats yb in
        let ns = (m + Nn.grad_shard_rows - 1) / Nn.grad_shard_rows in
        let shard_acc =
          Array.init ns (fun _ ->
              List.map
                (fun (w : Matrix.t) ->
                  Matrix.create w.Matrix.rows w.Matrix.cols)
                gc_weights)
        in
        for s = 0 to ns - 1 do
          let slo = s * Nn.grad_shard_rows in
          let shi = min m (slo + Nn.grad_shard_rows) in
          let accs = shard_acc.(s) in
          for i = slo to shi - 1 do
            let dws =
              graph_backward params gc_weights states.(i)
                (Fmat.row_copy dflat i)
            in
            List.iter2
              (fun (acc : Matrix.t) (dw : Matrix.t) ->
                for j = 0 to Array.length acc.Matrix.data - 1 do
                  acc.Matrix.data.(j) <-
                    acc.Matrix.data.(j) +. (1.0 *. dw.Matrix.data.(j))
                done)
              accs dws
          done
        done;
        tree_reduce
          (fun a b ->
            List.iter2
              (fun (x : Matrix.t) (y : Matrix.t) ->
                for j = 0 to Array.length x.Matrix.data - 1 do
                  x.Matrix.data.(j) <-
                    x.Matrix.data.(j) +. (1.0 *. y.Matrix.data.(j))
                done)
              a b)
          shard_acc;
        List.iter2
          (fun (w : Matrix.t) (dw : Matrix.t) ->
            for j = 0 to Array.length w.Matrix.data - 1 do
              w.Matrix.data.(j) <-
                w.Matrix.data.(j) +. (-.lr *. dw.Matrix.data.(j))
            done)
          gc_weights shard_acc.(0)
      done
    done;
    Dgcnn.of_parts ~params ~gc_weights ~head ~feat_dim ~n_classes
end
