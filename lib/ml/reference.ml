(** Frozen pre-kernel-layer implementations of the models the {!Fmat}
    rewrite touched: decision trees / random forests with per-node
    sort-and-sweep split finding over [float array array] rows, k-NN with
    the subtract-square-accumulate distance and a full sort, and logistic
    regression over row arrays.

    These exist for two reasons only:
    - differential property tests (test/test_fmat.ml) check that the
      rewritten kernels predict identically on randomised datasets;
    - the [bench kernels] section measures the before/after speedup against
      the very code the optimised kernels replaced.

    Nothing in the framework proper may depend on this module.  The one
    deliberate deviation from the historical code is marked below: the tree
    sorts its candidate features ascending, adopting the total
    (gain, lowest-feature, lowest-threshold) tie-break that the rewritten
    {!Decision_tree} documents — the differential tests compare the split
    kernels, not the (changed, documented) tie rule.  [Matrix.matmul_naive]
    plays the same role for the tiled matmul. *)

module Rng = Yali_util.Rng

module Decision_tree = struct
  type node =
    | Leaf of int
    | Split of { feature : int; threshold : float; left : node; right : node }

  type t = { root : node; n_classes : int }

  type params = {
    max_depth : int;
    min_samples_split : int;
    features_per_split : int option;
  }

  let default_params =
    { max_depth = 18; min_samples_split = 2; features_per_split = None }

  let majority ~(n_classes : int) (ys : int array) (idx : int array) : int =
    let counts = Array.make n_classes 0 in
    Array.iter (fun i -> counts.(ys.(i)) <- counts.(ys.(i)) + 1) idx;
    let best = ref 0 in
    Array.iteri (fun c k -> if k > counts.(!best) then best := c) counts;
    !best

  let gini_of_counts (counts : int array) (total : int) : float =
    if total = 0 then 0.0
    else begin
      let acc = ref 1.0 in
      Array.iter
        (fun k ->
          let p = float_of_int k /. float_of_int total in
          acc := !acc -. (p *. p))
        counts;
      !acc
    end

  let best_split ~(n_classes : int) (xs : float array array) (ys : int array)
      (idx : int array) (features : int list) : (int * float * float) option =
    let n = Array.length idx in
    let parent_counts = Array.make n_classes 0 in
    Array.iter
      (fun i -> parent_counts.(ys.(i)) <- parent_counts.(ys.(i)) + 1)
      idx;
    let parent_gini = gini_of_counts parent_counts n in
    let best = ref None in
    List.iter
      (fun f ->
        (* per-node, per-feature: copy and sort the sample indices — the
           O(n log n)-per-candidate cost the histogram kernel removes *)
        let sorted = Array.copy idx in
        Array.sort (fun a b -> compare xs.(a).(f) xs.(b).(f)) sorted;
        let left_counts = Array.make n_classes 0 in
        let right_counts = Array.copy parent_counts in
        for k = 0 to n - 2 do
          let i = sorted.(k) in
          left_counts.(ys.(i)) <- left_counts.(ys.(i)) + 1;
          right_counts.(ys.(i)) <- right_counts.(ys.(i)) - 1;
          let v = xs.(i).(f) and v' = xs.(sorted.(k + 1)).(f) in
          if v < v' then begin
            let nl = k + 1 and nr = n - k - 1 in
            let g =
              (float_of_int nl *. gini_of_counts left_counts nl
              +. float_of_int nr *. gini_of_counts right_counts nr)
              /. float_of_int n
            in
            let gain = parent_gini -. g in
            let thr = (v +. v') /. 2.0 in
            match !best with
            | Some (_, _, best_gain) when best_gain >= gain -> ()
            | _ -> best := Some (f, thr, gain)
          end
        done)
      features;
    match !best with
    | Some (f, thr, gain) when gain > 1e-12 -> Some (f, thr, gain)
    | _ -> None

  let train ?(params = default_params) (rng : Rng.t) ~(n_classes : int)
      (xs : float array array) (ys : int array) : t =
    let d = if Array.length xs = 0 then 0 else Array.length xs.(0) in
    let all_features = List.init d Fun.id in
    let pick_features () =
      match params.features_per_split with
      | None -> all_features
      | Some k ->
          (* deviation from the historical code (see module comment): sort
             the sampled candidates so ties resolve to the lowest feature,
             like the rewritten tree; RNG consumption is unchanged *)
          List.sort compare (Rng.sample rng (min k d) all_features)
    in
    let rec grow (idx : int array) (depth : int) : node =
      let pure =
        Array.length idx > 0
        && Array.for_all (fun i -> ys.(i) = ys.(idx.(0))) idx
      in
      if
        pure || depth >= params.max_depth
        || Array.length idx < params.min_samples_split
      then Leaf (majority ~n_classes ys idx)
      else
        match best_split ~n_classes xs ys idx (pick_features ()) with
        | None -> Leaf (majority ~n_classes ys idx)
        | Some (feature, threshold, _) ->
            let left_idx =
              Array.of_seq
                (Seq.filter
                   (fun i -> xs.(i).(feature) <= threshold)
                   (Array.to_seq idx))
            in
            let right_idx =
              Array.of_seq
                (Seq.filter
                   (fun i -> xs.(i).(feature) > threshold)
                   (Array.to_seq idx))
            in
            if Array.length left_idx = 0 || Array.length right_idx = 0 then
              Leaf (majority ~n_classes ys idx)
            else
              Split
                {
                  feature;
                  threshold;
                  left = grow left_idx (depth + 1);
                  right = grow right_idx (depth + 1);
                }
    in
    let idx = Array.init (Array.length xs) Fun.id in
    { root = grow idx 0; n_classes }

  let predict (t : t) (x : float array) : int =
    let rec go = function
      | Leaf c -> c
      | Split { feature; threshold; left; right } ->
          if x.(feature) <= threshold then go left else go right
    in
    go t.root
end

module Random_forest = struct
  type t = { trees : Decision_tree.t array; n_classes : int }

  type params = { n_trees : int; max_depth : int }

  let default_params = { n_trees = 64; max_depth = 24 }

  let train ?(params = default_params) (rng : Rng.t) ~(n_classes : int)
      (xs : float array array) (ys : int array) : t =
    let n = Array.length xs in
    let d = if n = 0 then 0 else Array.length xs.(0) in
    let fps = max 1 (max (int_of_float (sqrt (float_of_int d))) (d / 2)) in
    let tree_params =
      {
        Decision_tree.max_depth = params.max_depth;
        min_samples_split = 2;
        features_per_split = Some fps;
      }
    in
    let tree_rngs = Rng.split_n rng params.n_trees in
    let trees =
      Yali_exec.Pool.parallel_array_map
        (fun tree_rng ->
          (* bootstrap by row copy — the allocation the rewrite avoids *)
          let bxs = Array.make n [||] and bys = Array.make n 0 in
          for i = 0 to n - 1 do
            let j = Rng.int tree_rng n in
            bxs.(i) <- xs.(j);
            bys.(i) <- ys.(j)
          done;
          Decision_tree.train ~params:tree_params tree_rng ~n_classes bxs bys)
        tree_rngs
    in
    { trees; n_classes }

  let predict (f : t) (x : float array) : int =
    let votes = Array.make f.n_classes 0 in
    Array.iter
      (fun t ->
        let c = Decision_tree.predict t x in
        votes.(c) <- votes.(c) + 1)
      f.trees;
    let best = ref 0 in
    Array.iteri (fun c k -> if k > votes.(!best) then best := c) votes;
    !best
end

module Knn = struct
  type t = {
    k : int;
    scaler : Features.scaler;
    xs : float array array;
    ys : int array;
    n_classes : int;
  }

  let train ?(k = 5) ~(n_classes : int) (xs : float array array)
      (ys : int array) : t =
    let scaler, xs = Features.fit_transform xs in
    { k; scaler; xs; ys; n_classes }

  let sq_dist (a : float array) (b : float array) : float =
    let acc = ref 0.0 in
    Array.iteri
      (fun i x ->
        let d = x -. b.(i) in
        acc := !acc +. (d *. d))
      a;
    !acc

  let predict (t : t) (x : float array) : int =
    let x = Features.transform t.scaler x in
    let n = Array.length t.xs in
    let k = min t.k n in
    (* per-query: n fresh tuples and a full O(n log n) sort — the
       allocation and work the partial selection removes *)
    let dists = Array.make n (0.0, 0) in
    Yali_exec.Pool.parallel_for_chunks ~min_chunk:512 n (fun lo hi ->
        for i = lo to hi - 1 do
          dists.(i) <- (sq_dist x t.xs.(i), t.ys.(i))
        done);
    Array.sort (fun (a, _) (b, _) -> compare a b) dists;
    let votes = Array.make t.n_classes 0 in
    for i = 0 to k - 1 do
      let _, y = dists.(i) in
      votes.(y) <- votes.(y) + 1
    done;
    let best = ref 0 in
    Array.iteri (fun c v -> if v > votes.(!best) then best := c) votes;
    !best
end

module Logreg = struct
  type t = {
    scaler : Features.scaler;
    weights : Matrix.t;
    bias : float array;
    n_classes : int;
  }

  type params = { epochs : int; lr : float; l2 : float; batch : int }

  let default_params = { epochs = 60; lr = 0.1; l2 = 1e-4; batch = 32 }

  let softmax (z : float array) : float array =
    let m = Array.fold_left max neg_infinity z in
    let e = Array.map (fun x -> exp (x -. m)) z in
    let s = Array.fold_left ( +. ) 0.0 e in
    Array.map (fun x -> x /. s) e

  let logits (w : Matrix.t) (bias : float array) (x : float array) :
      float array =
    Array.init (Array.length bias) (fun c ->
        let acc = ref bias.(c) in
        for j = 0 to Array.length x - 1 do
          acc := !acc +. (Matrix.get w c j *. x.(j))
        done;
        !acc)

  let argmax (v : float array) : int =
    let best = ref 0 in
    Array.iteri (fun i x -> if x > v.(!best) then best := i) v;
    !best

  let train ?(params = default_params) (rng : Rng.t) ~(n_classes : int)
      (xs : float array array) (ys : int array) : t =
    let scaler, xs = Features.fit_transform xs in
    let n = Array.length xs in
    let d = if n = 0 then 0 else Array.length xs.(0) in
    let w = Matrix.random rng n_classes d ~scale:0.01 in
    let bias = Array.make n_classes 0.0 in
    let order = Array.init n Fun.id in
    for epoch = 0 to params.epochs - 1 do
      let lr = params.lr /. (1.0 +. (0.05 *. float_of_int epoch)) in
      for i = n - 1 downto 1 do
        let j = Rng.int rng (i + 1) in
        let tmp = order.(i) in
        order.(i) <- order.(j);
        order.(j) <- tmp
      done;
      let b = ref 0 in
      while !b < n do
        let hi = min n (!b + params.batch) in
        let gw = Matrix.create n_classes d
        and gb = Array.make n_classes 0.0 in
        for k = !b to hi - 1 do
          let i = order.(k) in
          let p = softmax (logits w bias xs.(i)) in
          for c = 0 to n_classes - 1 do
            let err = p.(c) -. (if c = ys.(i) then 1.0 else 0.0) in
            gb.(c) <- gb.(c) +. err;
            for j = 0 to d - 1 do
              Matrix.set gw c j (Matrix.get gw c j +. (err *. xs.(i).(j)))
            done
          done
        done;
        let bs = float_of_int (hi - !b) in
        for c = 0 to n_classes - 1 do
          bias.(c) <- bias.(c) -. (lr *. gb.(c) /. bs);
          for j = 0 to d - 1 do
            let wij = Matrix.get w c j in
            Matrix.set w c j
              (wij -. (lr *. ((Matrix.get gw c j /. bs) +. (params.l2 *. wij))))
          done
        done;
        b := hi
      done
    done;
    { scaler; weights = w; bias; n_classes }

  let predict (t : t) (x : float array) : int =
    let x = Features.transform t.scaler x in
    argmax (logits t.weights t.bias x)
end
