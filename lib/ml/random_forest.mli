(** Random forests: bagged CART trees with per-split feature subsampling and
    majority voting — the paper's consistently best model (§4.2).

    The training matrix is binned once ({!Decision_tree.prebin}) and shared
    read-only across all trees; bootstrap samples are index arrays into the
    shared {!Fmat}, not row copies. *)

type t

type params = { n_trees : int; max_depth : int }

val default_params : params

val train :
  ?params:params ->
  Yali_util.Rng.t ->
  n_classes:int ->
  Fmat.t ->
  int array ->
  t

(** Incremental growth over streamed feature blocks: trees are dealt
    round-robin over blocks and each grows on its block alone (at most one
    block resident).  One block = bit-identical to {!train}. *)
val train_stream :
  ?params:params ->
  ?block_rows:int ->
  Yali_util.Rng.t ->
  n_classes:int ->
  Fblock.source ->
  int array ->
  t

val predict : t -> float array -> int

(** Per-class tree vote counts as floats; the first-maximum index is
    exactly {!predict}'s decision. *)
val margins : t -> float array -> float array

(** Classify every row of a flat matrix; rows fan out over the pool, each
    task writes only its own slot (deterministic at any [jobs]). *)
val predict_batch : t -> Fmat.t -> int array

(** Approximate heap footprint. *)
val size_bytes : t -> int

(** Serialise the trained model bit-exactly ({!Model.save}'s weights). *)
val to_bin : Buffer.t -> t -> unit

(** @raise Yali_util.Bin.Corrupt on malformed input *)
val of_bin : Yali_util.Bin.r -> t
