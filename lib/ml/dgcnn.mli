(** Zhang et al.'s Deep Graph Convolutional Neural Network, the [dgcnn]
    model of the paper (§3.2): graph convolutions + sort pooling feeding a
    1-D convolutional head.

    Trained by minibatch SGD (DESIGN.md §15): parallel per-graph forward
    shards, one batched {!Nn.train_batch} step of the head per minibatch,
    and sharded graph-convolution gradients merged in a fixed tree order —
    bit-identical at any [--jobs] and to the frozen naive trainer in
    [Reference.Dgcnn]. *)

type params = {
  gc_channels : int list;  (** graph-conv widths; last must be 1 *)
  sortpool_k : int;
  epochs : int;
  lr : float;
  max_nodes : int;  (** larger graphs are truncated to a prefix subgraph *)
  batch : int;  (** graphs per minibatch *)
}

val default_params : params

type t

(** In-memory training: delegates to {!train_source} over
    {!Gsource.of_fn}, so the two are bit-identical by construction. *)
val train :
  ?params:params ->
  Yali_util.Rng.t ->
  n_classes:int ->
  feat_dim:int ->
  Yali_embeddings.Graph.t array ->
  int array ->
  t

(** Minibatch training over a streamed graph source; only one minibatch of
    graphs is held at a time, so corpora never need materialising. *)
val train_source :
  ?params:params ->
  Yali_util.Rng.t ->
  n_classes:int ->
  Gsource.t ->
  int array ->
  t

val predict : t -> Yali_embeddings.Graph.t -> int
val size_bytes : t -> int

(** Training internals, exposed for the frozen reference trainer
    ([Reference.Dgcnn]) and the differential tests: initialisers that
    consume the rng exactly as {!train}'s do, reassembly from parts, and
    the parameter dump (graph-conv weights in layer order, then the head's
    {!Nn.dump_weights}) compared for bit-identity. *)

val init_gc_weights :
  Yali_util.Rng.t -> params -> feat_dim:int -> Matrix.t list

val build_head : Yali_util.Rng.t -> params -> n_classes:int -> Nn.t

val of_parts :
  params:params ->
  gc_weights:Matrix.t list ->
  head:Nn.t ->
  feat_dim:int ->
  n_classes:int ->
  t

val dump_weights : t -> float array array
