(** Linear support-vector machine: one-vs-rest hinge loss trained with an
    averaged Pegasos-style stochastic subgradient method — SciKit's [svm]
    counterpart at laptop scale.

    The bias is folded in as a constant feature; the returned predictor uses
    the *average* of the weight iterates, which stabilises the one-vs-rest
    scores when the number of classes is large (the 104-class grids of the
    paper's Figures 7–12). *)

module Rng = Yali_util.Rng

type t = {
  scaler : Features.scaler;
  weights : Matrix.t;  (** n_classes x (d+1); last column is the bias *)
  n_classes : int;
}

type params = { epochs : int; lambda : float; step_offset : float }

let default_params = { epochs = 30; lambda = 1e-4; step_offset = 100.0 }

let augment (x : float array) : float array =
  let d = Array.length x in
  Array.init (d + 1) (fun j -> if j < d then x.(j) else 1.0)

(* standardised matrix -> matrix with a trailing constant-1 column *)
let augment_fmat (x : Fmat.t) : Fmat.t =
  let n = x.Fmat.n and d = x.Fmat.d in
  let a = Fmat.create n (d + 1) in
  for i = 0 to n - 1 do
    Array.blit x.Fmat.data (i * d) a.Fmat.data (i * (d + 1)) d;
    a.Fmat.data.((i * (d + 1)) + d) <- 1.0
  done;
  a

let score_row (w : Matrix.t) (c : int) (x : float array) : float =
  let acc = ref 0.0 in
  for j = 0 to Array.length x - 1 do
    acc := !acc +. (Matrix.get w c j *. x.(j))
  done;
  !acc

(* score of row [i] of the augmented flat matrix; same accumulation order *)
let score_flat (w : Matrix.t) (c : int) (xd : float array) (xbase : int)
    (d : int) : float =
  let acc = ref 0.0 in
  let wbase = c * w.Matrix.cols in
  for j = 0 to d - 1 do
    acc :=
      !acc
      +. Array.unsafe_get w.Matrix.data (wbase + j)
         *. Array.unsafe_get xd (xbase + j)
  done;
  !acc

let train ?(params = default_params) (rng : Rng.t) ~(n_classes : int)
    (x : Fmat.t) (ys : int array) : t =
  let scaler, x = Features.fit_transform_fmat x in
  let xs = augment_fmat x in
  let n = xs.Fmat.n in
  let d = if n = 0 then 1 else xs.Fmat.d in
  let xd = xs.Fmat.data in
  let w = Matrix.create n_classes d in
  let w_sum = Matrix.create n_classes d in
  let wd = w.Matrix.data in
  let t_step = ref 0 in
  let n_avg = ref 0 in
  for _epoch = 0 to params.epochs - 1 do
    for _ = 0 to n - 1 do
      let i = Rng.int rng n in
      incr t_step;
      let eta =
        1.0 /. (params.lambda *. (float_of_int !t_step +. params.step_offset))
      in
      let xbase = i * d in
      for c = 0 to n_classes - 1 do
        let y = if ys.(i) = c then 1.0 else -1.0 in
        let margin = y *. score_flat w c xd xbase d in
        let shrink = 1.0 -. (eta *. params.lambda) in
        let wbase = c * d in
        if margin < 1.0 then begin
          let s = eta *. y in
          for j = 0 to d - 1 do
            Array.unsafe_set wd (wbase + j)
              ((Array.unsafe_get wd (wbase + j) *. shrink)
              +. (s *. Array.unsafe_get xd (xbase + j)))
          done
        end
        else
          for j = 0 to d - 1 do
            Array.unsafe_set wd (wbase + j)
              (Array.unsafe_get wd (wbase + j) *. shrink)
          done
      done;
      (* tail averaging: accumulate the second half of the trajectory *)
      if 2 * !t_step > params.epochs * n then begin
        incr n_avg;
        Matrix.axpy ~a:1.0 w w_sum
      end
    done
  done;
  let weights =
    if !n_avg > 0 then Matrix.scale (1.0 /. float_of_int !n_avg) w_sum else w
  in
  { scaler; weights; n_classes }

(** Pegasos over streamed blocks: per-block uniform draws replace the
    global ones, the step counter and tail-averaging window stay global.
    One block = exactly {!train} (same draws, same updates). *)
let train_stream ?(params = default_params) ?block_rows (rng : Rng.t)
    ~(n_classes : int) (src : Fblock.source) (ys : int array) : t =
  let scaler = Features.fit_stream ?block_rows src in
  let n = Fblock.rows src in
  let d = if n = 0 then 1 else Fblock.dim src + 1 in
  let w = Matrix.create n_classes d in
  let w_sum = Matrix.create n_classes d in
  let wd = w.Matrix.data in
  let t_step = ref 0 in
  let n_avg = ref 0 in
  for _epoch = 0 to params.epochs - 1 do
    Fblock.iter_blocks ?block_rows src (fun lo block ->
        Features.transform_fmat_inplace scaler block;
        let xs = augment_fmat block in
        let bn = xs.Fmat.n in
        let xd = xs.Fmat.data in
        for _ = 0 to bn - 1 do
          let i = Rng.int rng bn in
          incr t_step;
          let eta =
            1.0
            /. (params.lambda *. (float_of_int !t_step +. params.step_offset))
          in
          let xbase = i * d in
          for c = 0 to n_classes - 1 do
            let y = if ys.(lo + i) = c then 1.0 else -1.0 in
            let margin = y *. score_flat w c xd xbase d in
            let shrink = 1.0 -. (eta *. params.lambda) in
            let wbase = c * d in
            if margin < 1.0 then begin
              let s = eta *. y in
              for j = 0 to d - 1 do
                Array.unsafe_set wd (wbase + j)
                  ((Array.unsafe_get wd (wbase + j) *. shrink)
                  +. (s *. Array.unsafe_get xd (xbase + j)))
              done
            end
            else
              for j = 0 to d - 1 do
                Array.unsafe_set wd (wbase + j)
                  (Array.unsafe_get wd (wbase + j) *. shrink)
              done
          done;
          if 2 * !t_step > params.epochs * n then begin
            incr n_avg;
            Matrix.axpy ~a:1.0 w w_sum
          end
        done)
  done;
  let weights =
    if !n_avg > 0 then Matrix.scale (1.0 /. float_of_int !n_avg) w_sum else w
  in
  { scaler; weights; n_classes }

let predict (t : t) (x : float array) : int =
  let x = augment (Features.transform t.scaler x) in
  let best = ref 0 and best_score = ref neg_infinity in
  for c = 0 to t.n_classes - 1 do
    let s = score_row t.weights c x in
    if s > !best_score then begin
      best_score := s;
      best := c
    end
  done;
  !best

(** Per-class one-vs-rest scores; the first-maximum index is exactly
    {!predict}'s decision (same augmentation and accumulation order). *)
let margins (t : t) (x : float array) : float array =
  let x = augment (Features.transform t.scaler x) in
  Array.init t.n_classes (fun c -> score_row t.weights c x)

(** Classify every row: one cache-tiled matmul scores the whole batch. *)
let predict_batch (t : t) (x : Fmat.t) : int array =
  let x = Fmat.copy x in
  Features.transform_fmat_inplace t.scaler x;
  let xa = augment_fmat x in
  let scores =
    Matrix.matmul (Fmat.to_matrix xa) (Matrix.transpose t.weights)
  in
  Array.init scores.Matrix.rows (fun i ->
      let base = i * scores.Matrix.cols in
      let best = ref 0 and best_score = ref neg_infinity in
      for c = 0 to scores.Matrix.cols - 1 do
        let s = scores.Matrix.data.(base + c) in
        if s > !best_score then begin
          best_score := s;
          best := c
        end
      done;
      !best)

let size_bytes (t : t) : int = 8 * t.weights.rows * t.weights.cols

module Bin = Yali_util.Bin

let to_bin b (t : t) =
  Features.scaler_to_bin b t.scaler;
  Matrix.to_bin b t.weights;
  Bin.w_u32 b t.n_classes

let of_bin r : t =
  let scaler = Features.scaler_of_bin r in
  let weights = Matrix.of_bin r in
  let n_classes = Bin.r_u32 r in
  if weights.Matrix.rows <> n_classes then Bin.fail r "svm shape mismatch";
  { scaler; weights; n_classes }
