(** CART decision trees with Gini impurity and optional per-split random
    feature subsampling ({!Random_forest}'s building block).

    Training runs over a flat {!Fmat} matrix with histogram-based split
    finding: one global presort per feature assigns every sample a one-byte
    bucket code (buckets are {e exact distinct values}, up to 256 per
    feature), and each node finds its best threshold from per-bucket class
    counts instead of re-sorting its samples per candidate feature.
    Thresholds, gains and the grown tree are bit-identical to the classic
    per-node sort-and-sweep (see DESIGN.md §8); features with more than 256
    distinct values use an exact per-node sweep instead.

    {b Tie-break} (total, order-invariant): the winning split maximises
    [(gain, -feature_index, -threshold)] lexicographically — highest gain
    first, then the lowest feature index, then the lowest threshold — so
    the tree does not depend on the order in which candidate features are
    enumerated. *)

type node =
  | Leaf of int  (** predicted class *)
  | Split of { feature : int; threshold : float; left : node; right : node }

type t = { root : node; n_classes : int }

type params = {
  max_depth : int;
  min_samples_split : int;
  features_per_split : int option;  (** [None] = all features *)
}

val default_params : params

(** The reusable global binning of a dataset (the per-feature presort).
    Build it once with {!prebin} and share it across every tree trained on
    the same matrix — it is read-only after construction, so concurrent
    trainings may share one. *)
type prebinned

(** @raise Invalid_argument via {!train} when shapes mismatch. *)
val prebin : Fmat.t -> prebinned

(** [train ?params ?prebinned ?sample rng ~n_classes x ys] grows a tree on
    the rows of [x] listed in [sample] (default: all rows, in order;
    duplicated indices express bootstrap resampling without copying rows).
    [prebinned] must come from {!prebin} on this same [x].
    @raise Invalid_argument when [prebinned] was built for another shape. *)
val train :
  ?params:params ->
  ?prebinned:prebinned ->
  ?sample:int array ->
  Yali_util.Rng.t ->
  n_classes:int ->
  Fmat.t ->
  int array ->
  t

val predict : t -> float array -> int

(** Predict from row [i] of a flat matrix without copying the row. *)
val predict_row : t -> Fmat.t -> int -> int

val node_count : node -> int
val size_bytes : t -> int

(** Serialise a grown tree bit-exactly (thresholds as IEEE-754 bits). *)
val to_bin : Buffer.t -> t -> unit

(** @raise Yali_util.Bin.Corrupt on malformed input *)
val of_bin : Yali_util.Bin.r -> t
