(** Multinomial logistic regression (softmax) trained with mini-batch
    gradient descent and L2 regularisation — SciKit's [lr] counterpart. *)

type t

type params = { epochs : int; lr : float; l2 : float; batch : int }

val default_params : params

val train :
  ?params:params ->
  Yali_util.Rng.t ->
  n_classes:int ->
  Fmat.t ->
  int array ->
  t

(** Minibatch SGD over streamed feature blocks; per-epoch shuffles stay
    within a block.  On a corpus that fits one block the fitted model is
    bit-identical to {!train} (DESIGN.md §12). *)
val train_stream :
  ?params:params ->
  ?block_rows:int ->
  Yali_util.Rng.t ->
  n_classes:int ->
  Fblock.source ->
  int array ->
  t

(** The fitted class-by-feature weight matrix (equivalence tests). *)
val weights : t -> Matrix.t

val predict : t -> float array -> int

(** Per-class raw logits; the first-maximum index is exactly {!predict}'s
    decision (same standardisation and accumulation order). *)
val margins : t -> float array -> float array

(** Classify every row of a flat matrix via one cache-tiled matmul; class
    decisions are identical to mapping {!predict} over the rows. *)
val predict_batch : t -> Fmat.t -> int array

val size_bytes : t -> int

(** Serialise the trained model bit-exactly ({!Model.save}'s weights). *)
val to_bin : Buffer.t -> t -> unit

(** @raise Yali_util.Bin.Corrupt on malformed input *)
val of_bin : Yali_util.Bin.r -> t
