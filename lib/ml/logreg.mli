(** Multinomial logistic regression (softmax) trained with mini-batch
    gradient descent and L2 regularisation — SciKit's [lr] counterpart. *)

type t

type params = { epochs : int; lr : float; l2 : float; batch : int }

val default_params : params

val train :
  ?params:params ->
  Yali_util.Rng.t ->
  n_classes:int ->
  Fmat.t ->
  int array ->
  t

val predict : t -> float array -> int

(** Classify every row of a flat matrix via one cache-tiled matmul; class
    decisions are identical to mapping {!predict} over the rows. *)
val predict_batch : t -> Fmat.t -> int array

val size_bytes : t -> int

(** Serialise the trained model bit-exactly ({!Model.save}'s weights). *)
val to_bin : Buffer.t -> t -> unit

(** @raise Yali_util.Bin.Corrupt on malformed input *)
val of_bin : Yali_util.Bin.r -> t
