(** Flat feature matrices: the storage layer of the numeric kernels.

    An [n x d] dataset is one contiguous row-major [float array] (sample
    [i]'s feature [j] lives at [i * d + j]) instead of an array of row
    pointers.  Training kernels iterate it with unit stride, row views are
    zero-copy, and the whole matrix is one heap block — the layout that
    histogram tree learners and blocked distance kernels depend on
    (DESIGN.md §8). *)

type t = {
  n : int;  (** rows (samples) *)
  d : int;  (** columns (features) *)
  data : float array;  (** row-major, length [n * d] *)
}

(** [create n d] is an [n x d] matrix of zeros. *)
val create : int -> int -> t

(** [init n d f] fills position [(i, j)] with [f i j]. *)
val init : int -> int -> (int -> int -> float) -> t

val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit

(** Pack an array of equal-length rows.  @raise Invalid_argument on ragged
    input. *)
val of_rows : float array array -> t

(** Unpack to an array of fresh rows (test/debug helper). *)
val to_rows : t -> float array array

(** [of_fn ~n f] packs the [n] rows [f 0 .. f (n-1)]; the width is taken
    from [f 0].  @raise Invalid_argument when a row's length differs. *)
val of_fn : n:int -> (int -> float array) -> t

(** {!of_fn} with rows [1..n-1] computed on the {!Yali_exec.Pool} ([f] must
    be pure; each task writes only its own row, so the result is
    bit-identical at any [jobs]).  This is how embedding pipelines emit
    straight into matrix rows without an intermediate [float array array]. *)
val parallel_of_fn : n:int -> (int -> float array) -> t

(** [of_rows_into dst rows] overwrites [dst] from [rows], one blit per row
    and no intermediate allocation — the minibatch-assembly path of the
    batched neural trainers.  @raise Invalid_argument on shape mismatch. *)
val of_rows_into : t -> float array array -> unit

(** [gather_rows_into dst src idx ~lo ~len] blits rows
    [src[idx.(lo)] .. src[idx.(lo + len - 1)]] into [dst] — minibatch
    assembly from a shuffled index order, one blit per row.
    @raise Invalid_argument on shape mismatch or an out-of-range slice. *)
val gather_rows_into : t -> t -> int array -> lo:int -> len:int -> unit

(** Fresh copy of row [i] (allocates; prefer {!row_into} in loops). *)
val row_copy : t -> int -> float array

(** [row_into m i dst] blits row [i] into [dst] without allocating.
    @raise Invalid_argument when [Array.length dst <> m.d]. *)
val row_into : t -> int -> float array -> unit

(** [set_row m i src] overwrites row [i] from [src]. *)
val set_row : t -> int -> float array -> unit

(** [dot_row_vec m i v] is the dot product of row [i] with [v], accumulated
    in ascending column order. *)
val dot_row_vec : t -> int -> float array -> float

(** [sq_norm_row m i] is [‖row i‖²], accumulated in ascending column
    order. *)
val sq_norm_row : t -> int -> float

val copy : t -> t

(** Zero-copy view of the same storage as a {!Matrix.t} (shares [data];
    writes through either view are visible in both). *)
val to_matrix : t -> Matrix.t

(** Zero-copy view of a {!Matrix.t} as a feature matrix (shares [data]). *)
val of_matrix : Matrix.t -> t

(** Serialise shape and element bits (model snapshots; bit-exact). *)
val to_bin : Buffer.t -> t -> unit

(** @raise Yali_util.Bin.Corrupt on malformed input *)
val of_bin : Yali_util.Bin.r -> t
