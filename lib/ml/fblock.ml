(** See fblock.mli. *)

module Bin = Yali_util.Bin

let magic = "YFMB"
let version = 1
let header_bytes = 4 + 2 + 4 + 4
let default_block_rows = 8192

let corrupt fmt = Printf.ksprintf (fun m -> raise (Bin.Corrupt m)) fmt

let encode_header ~n ~d : string =
  let b = Buffer.create header_bytes in
  Buffer.add_string b magic;
  Bin.w_u16 b version;
  Bin.w_u32 b n;
  Bin.w_u32 b d;
  Buffer.contents b

let decode_header (s : string) : int * int =
  let r = Bin.reader s in
  let m = Bin.r_raw r 4 in
  if m <> magic then corrupt "bad feature-file magic %S" m;
  let v = Bin.r_u16 r in
  if v <> version then
    corrupt "feature-file version skew: got %d, expected %d" v version;
  let n = Bin.r_u32 r in
  let d = Bin.r_u32 r in
  (n, d)

(* -- low-level row IO (bit patterns, LE — same as Bin.w_f64) ---------------- *)

let put_row (buf : Bytes.t) (off : int) (row : float array) : unit =
  Array.iteri
    (fun j v ->
      Bytes.set_int64_le buf (off + (8 * j)) (Int64.bits_of_float v))
    row

let row_offset ~d i = header_bytes + (8 * d * i)

(* -- writer ----------------------------------------------------------------- *)

module Writer = struct
  type t = {
    path : string;
    n : int;
    d : int;
    oc : out_channel;
    buf : Bytes.t;
    mutable written : int;
  }

  let create (path : string) ~(n : int) ~(d : int) : t =
    let oc = open_out_bin path in
    output_string oc (encode_header ~n ~d);
    { path; n; d; oc; buf = Bytes.create (8 * d); written = 0 }

  let append_row (w : t) (row : float array) : unit =
    if Array.length row <> w.d then
      invalid_arg "Fblock.Writer.append_row: width mismatch";
    if w.written >= w.n then
      invalid_arg "Fblock.Writer.append_row: more rows than declared";
    put_row w.buf 0 row;
    output_bytes w.oc w.buf;
    w.written <- w.written + 1

  let close (w : t) : unit =
    Fun.protect
      ~finally:(fun () -> close_out w.oc)
      (fun () ->
        if w.written <> w.n then
          failwith
            (Printf.sprintf "Fblock.Writer.close: %d of %d rows written"
               w.written w.n))
end

(* [create_sized] + [write_rows_at]: the shard-parallel path.  The file is
   pre-sized, then each task opens its own descriptor and writes only its
   own disjoint row range, so content is deterministic at any [jobs]. *)

let create_sized (path : string) ~(n : int) ~(d : int) : unit =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (encode_header ~n ~d);
      if n * d > 0 then begin
        seek_out oc (row_offset ~d n - 1);
        output_char oc '\000'
      end)

let write_rows_at (path : string) ~(d : int) ~(row0 : int)
    (rows : float array array) : unit =
  if Array.length rows = 0 then ()
  else begin
    let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () ->
        ignore (Unix.lseek fd (row_offset ~d row0) Unix.SEEK_SET);
        let buf = Bytes.create (8 * d) in
        Array.iter
          (fun row ->
            if Array.length row <> d then
              invalid_arg "Fblock.write_rows_at: width mismatch";
            put_row buf 0 row;
            let k = Unix.write fd buf 0 (Bytes.length buf) in
            if k <> Bytes.length buf then failwith "Fblock: short write")
          rows)
  end

module Pwrite = struct
  type t = { fd : Unix.file_descr; d : int; buf : Bytes.t }

  let open_ (path : string) ~(d : int) : t =
    { fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644; d; buf = Bytes.create (8 * d) }

  let write_row (w : t) (i : int) (row : float array) : unit =
    if Array.length row <> w.d then
      invalid_arg "Fblock.Pwrite.write_row: width mismatch";
    ignore (Unix.lseek w.fd (row_offset ~d:w.d i) Unix.SEEK_SET);
    put_row w.buf 0 row;
    let k = Unix.write w.fd w.buf 0 (Bytes.length w.buf) in
    if k <> Bytes.length w.buf then failwith "Fblock: short write"

  let close (w : t) : unit = Unix.close w.fd
end

(* -- reader ----------------------------------------------------------------- *)

type reader = { path : string; n : int; d : int; ic : in_channel }

let open_reader (path : string) : reader =
  let ic = open_in_bin path in
  match
    let len = in_channel_length ic in
    if len < header_bytes then corrupt "feature file truncated at %d bytes" len;
    let n, d = decode_header (really_input_string ic header_bytes) in
    let expected = row_offset ~d n in
    if len <> expected then
      corrupt "feature file %dx%d: %d bytes on disk, expected %d" n d len
        expected;
    { path; n; d; ic }
  with
  | r -> r
  | exception e ->
      close_in_noerr ic;
      raise e

let close_reader (r : reader) : unit = close_in_noerr r.ic

let read_block (r : reader) ~(lo : int) ~(rows : int) : Fmat.t =
  let m = Fmat.create rows r.d in
  seek_in r.ic (row_offset ~d:r.d lo);
  let bytes = 8 * r.d * rows in
  let buf = Bytes.create bytes in
  really_input r.ic buf 0 bytes;
  for k = 0 to (rows * r.d) - 1 do
    m.Fmat.data.(k) <- Int64.float_of_bits (Bytes.get_int64_le buf (8 * k))
  done;
  m

(* -- sources ---------------------------------------------------------------- *)

type source = Mem of Fmat.t | Disk of reader

let rows = function Mem m -> m.Fmat.n | Disk r -> r.n
let dim = function Mem m -> m.Fmat.d | Disk r -> r.d

let iter_blocks ?(block_rows = default_block_rows) (src : source)
    (f : int -> Fmat.t -> unit) : unit =
  if block_rows < 1 then invalid_arg "Fblock.iter_blocks: block_rows < 1";
  let n = rows src and d = dim src in
  let lo = ref 0 in
  while !lo < n do
    let bn = min block_rows (n - !lo) in
    let block =
      match src with
      | Disk r -> read_block r ~lo:!lo ~rows:bn
      | Mem m ->
          (* a fresh copy every time: callees may scale the block in place *)
          let b = Fmat.create bn d in
          Array.blit m.Fmat.data (!lo * d) b.Fmat.data 0 (bn * d);
          b
    in
    f !lo block;
    lo := !lo + bn
  done

let n_blocks ?(block_rows = default_block_rows) (src : source) : int =
  if block_rows < 1 then invalid_arg "Fblock.n_blocks: block_rows < 1";
  (rows src + block_rows - 1) / block_rows

let materialize (src : source) : Fmat.t =
  match src with
  | Mem m -> m
  | Disk r -> if r.n = 0 then Fmat.create 0 r.d else read_block r ~lo:0 ~rows:r.n

let of_fmat (m : Fmat.t) : source = Mem m

let to_file (path : string) (m : Fmat.t) : unit =
  let w = Writer.create path ~n:m.Fmat.n ~d:m.Fmat.d in
  let row = Array.make m.Fmat.d 0.0 in
  for i = 0 to m.Fmat.n - 1 do
    Fmat.row_into m i row;
    Writer.append_row w row
  done;
  Writer.close w
