(** CART decision trees with Gini impurity over flat {!Fmat} feature
    matrices.  Supports per-split random feature subsampling, which
    {!Random_forest} uses.

    The split finder is histogram-based (LightGBM-style): one global
    presort per feature maps every value to a bucket code (up to
    {!max_bins} distinct values per feature, one byte per sample), and each
    node then finds its best threshold with a single counting pass plus a
    scan over occupied buckets — instead of re-sorting the node's samples
    for every candidate feature.  Because buckets are the feature's exact
    distinct values (never quantised ranges) and empty buckets are skipped,
    every candidate threshold and every Gini evaluation is {e the same
    float} the classic per-node sort-and-sweep would produce: the
    optimisation changes throughput, not the tree.  Features with more
    than {!max_bins} distinct values fall back to an exact per-node sweep.

    Tie-breaking is total and documented: among candidate splits the winner
    is the lexicographic maximum of [(gain, -feature, -threshold)] — i.e.
    highest gain, then lowest feature index, then lowest threshold — so the
    tree is invariant under reordering of the candidate feature list
    (forests stay reproducible when the per-split feature sample is
    enumerated in any order). *)

module Rng = Yali_util.Rng

type node =
  | Leaf of int  (** predicted class *)
  | Split of { feature : int; threshold : float; left : node; right : node }

type t = { root : node; n_classes : int }

type params = {
  max_depth : int;
  min_samples_split : int;
  features_per_split : int option;  (** [None] = all features *)
}

let default_params =
  { max_depth = 18; min_samples_split = 2; features_per_split = None }

let max_bins = 256

(* ------------------------------------------------------------------ *)
(* global per-feature binning (the "presort", done once per dataset)   *)
(* ------------------------------------------------------------------ *)

type prebinned = {
  pb_n : int;
  pb_d : int;
  codes : Bytes.t;
      (** feature-major: sample [i]'s bucket for feature [f] at [f*n + i];
          only meaningful when [not wide.(f)] *)
  bin_values : float array array;
      (** per feature: its sorted distinct values (bucket [b] holds exactly
          the samples equal to [bin_values.(f).(b)]); [[||]] when wide *)
  wide : bool array;  (** more than {!max_bins} distinct values *)
}

let prebin (x : Fmat.t) : prebinned =
  let n = x.Fmat.n and d = x.Fmat.d and data = x.Fmat.data in
  let codes = Bytes.create (n * d) in
  let bin_values = Array.make (max 1 d) [||] in
  let wide = Array.make (max 1 d) false in
  let col = Array.make n 0.0 in
  let sorted = Array.make n 0.0 in
  for f = 0 to d - 1 do
    for i = 0 to n - 1 do
      col.(i) <- data.((i * d) + f)
    done;
    Array.blit col 0 sorted 0 n;
    Array.sort Float.compare sorted;
    let distinct = ref (if n = 0 then 0 else 1) in
    for i = 1 to n - 1 do
      if sorted.(i) <> sorted.(i - 1) then incr distinct
    done;
    if !distinct > max_bins then wide.(f) <- true
    else begin
      let vals = Array.make !distinct 0.0 in
      if n > 0 then begin
        vals.(0) <- sorted.(0);
        let k = ref 0 in
        for i = 1 to n - 1 do
          if sorted.(i) <> sorted.(i - 1) then begin
            incr k;
            vals.(!k) <- sorted.(i)
          end
        done
      end;
      bin_values.(f) <- vals;
      let base = f * n in
      for i = 0 to n - 1 do
        let v = col.(i) in
        let lo = ref 0 and hi = ref (!distinct - 1) in
        while !lo < !hi do
          let mid = (!lo + !hi) / 2 in
          if vals.(mid) < v then lo := mid + 1 else hi := mid
        done;
        Bytes.unsafe_set codes (base + i) (Char.unsafe_chr !lo)
      done
    end
  done;
  { pb_n = n; pb_d = d; codes; bin_values; wide }

(* ------------------------------------------------------------------ *)
(* impurity                                                            *)
(* ------------------------------------------------------------------ *)

let majority ~(n_classes : int) (ys : int array) (idx : int array) : int =
  let counts = Array.make n_classes 0 in
  Array.iter (fun i -> counts.(ys.(i)) <- counts.(ys.(i)) + 1) idx;
  let best = ref 0 in
  Array.iteri (fun c k -> if k > counts.(!best) then best := c) counts;
  !best

let gini_of_counts (counts : int array) (total : int) : float =
  if total = 0 then 0.0
  else begin
    let acc = ref 1.0 in
    Array.iter
      (fun k ->
        let p = float_of_int k /. float_of_int total in
        acc := !acc -. (p *. p))
      counts;
    !acc
  end

(* ------------------------------------------------------------------ *)
(* split finding                                                       *)
(* ------------------------------------------------------------------ *)

(* per-train scratch, so one tree never reallocates nor races another *)
type scratch = {
  hist : int array;  (** max_bins x n_classes class counts *)
  bin_tot : int array;  (** max_bins per-bucket totals *)
  occ : int array;  (** occupied-bucket ids (prefix of length n_occ) *)
  left_counts : int array;
  right_counts : int array;
  parent_counts : int array;
}

let make_scratch ~(n_classes : int) : scratch =
  {
    hist = Array.make (max_bins * n_classes) 0;
    bin_tot = Array.make max_bins 0;
    occ = Array.make max_bins 0;
    left_counts = Array.make n_classes 0;
    right_counts = Array.make n_classes 0;
    parent_counts = Array.make n_classes 0;
  }

(* ascending insertion sort of the occupied-bucket prefix (<= 256 ids) *)
let sort_occ (occ : int array) (n_occ : int) : unit =
  for i = 1 to n_occ - 1 do
    let v = occ.(i) in
    let j = ref (i - 1) in
    while !j >= 0 && occ.(!j) > v do
      occ.(!j + 1) <- occ.(!j);
      decr j
    done;
    occ.(!j + 1) <- v
  done

(* Best (feature, threshold, gain) for the sample subset [idx].  The
   candidate [features] are scanned in ascending index order and a
   strictly-greater gain is required to displace the incumbent, which
   realises the total (gain, -feature, -threshold) tie-break. *)
let best_split ~(n_classes : int) ~(pb : prebinned) ~(s : scratch)
    (x : Fmat.t) (ys : int array) (idx : int array) (features : int list) :
    (int * float * float) option =
  let n = Array.length idx in
  let d = x.Fmat.d and data = x.Fmat.data in
  Array.fill s.parent_counts 0 n_classes 0;
  Array.iter
    (fun i -> s.parent_counts.(ys.(i)) <- s.parent_counts.(ys.(i)) + 1)
    idx;
  let parent_gini = gini_of_counts s.parent_counts n in
  let best = ref None in
  let consider f thr gain =
    match !best with
    | Some (_, _, best_gain) when best_gain >= gain -> ()
    | _ -> best := Some (f, thr, gain)
  in
  (* evaluate one boundary: [nl] samples to the left, counts filled in *)
  let eval f v v' nl =
    let nr = n - nl in
    let g =
      (float_of_int nl *. gini_of_counts s.left_counts nl
      +. float_of_int nr *. gini_of_counts s.right_counts nr)
      /. float_of_int n
    in
    consider f ((v +. v') /. 2.0) (parent_gini -. g)
  in
  let scan_binned f =
    let base = f * pb.pb_n in
    let vals = pb.bin_values.(f) in
    let n_occ = ref 0 in
    for t = 0 to n - 1 do
      let i = Array.unsafe_get idx t in
      let b = Char.code (Bytes.unsafe_get pb.codes (base + i)) in
      if s.bin_tot.(b) = 0 then begin
        s.occ.(!n_occ) <- b;
        incr n_occ
      end;
      s.bin_tot.(b) <- s.bin_tot.(b) + 1;
      let h = (b * n_classes) + ys.(i) in
      s.hist.(h) <- s.hist.(h) + 1
    done;
    sort_occ s.occ !n_occ;
    Array.fill s.left_counts 0 n_classes 0;
    Array.blit s.parent_counts 0 s.right_counts 0 n_classes;
    let nl = ref 0 in
    for q = 0 to !n_occ - 2 do
      let b = s.occ.(q) in
      let hbase = b * n_classes in
      for c = 0 to n_classes - 1 do
        s.left_counts.(c) <- s.left_counts.(c) + s.hist.(hbase + c);
        s.right_counts.(c) <- s.right_counts.(c) - s.hist.(hbase + c)
      done;
      nl := !nl + s.bin_tot.(b);
      eval f vals.(b) vals.(s.occ.(q + 1)) !nl
    done;
    (* clear only the buckets this node touched *)
    for q = 0 to !n_occ - 1 do
      let b = s.occ.(q) in
      s.bin_tot.(b) <- 0;
      Array.fill s.hist (b * n_classes) n_classes 0
    done
  in
  (* exact fallback for features with > max_bins distinct values: the
     classic per-node sort-and-sweep, on gathered contiguous buffers *)
  let scan_wide f =
    let vals = Array.make n 0.0 and labs = Array.make n 0 in
    for t = 0 to n - 1 do
      let i = idx.(t) in
      vals.(t) <- data.((i * d) + f);
      labs.(t) <- ys.(i)
    done;
    let perm = Array.init n Fun.id in
    Array.sort (fun a b -> Float.compare vals.(a) vals.(b)) perm;
    Array.fill s.left_counts 0 n_classes 0;
    Array.blit s.parent_counts 0 s.right_counts 0 n_classes;
    for k = 0 to n - 2 do
      let p = perm.(k) in
      s.left_counts.(labs.(p)) <- s.left_counts.(labs.(p)) + 1;
      s.right_counts.(labs.(p)) <- s.right_counts.(labs.(p)) - 1;
      let v = vals.(p) and v' = vals.(perm.(k + 1)) in
      if v < v' then eval f v v' (k + 1)
    done
  in
  List.iter (fun f -> if pb.wide.(f) then scan_wide f else scan_binned f) features;
  match !best with
  | Some (f, thr, gain) when gain > 1e-12 -> Some (f, thr, gain)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* training                                                            *)
(* ------------------------------------------------------------------ *)

let train ?(params = default_params) ?prebinned ?sample (rng : Rng.t)
    ~(n_classes : int) (x : Fmat.t) (ys : int array) : t =
  let d = x.Fmat.d in
  let pb =
    match prebinned with
    | Some pb ->
        if pb.pb_n <> x.Fmat.n || pb.pb_d <> d then
          invalid_arg "Decision_tree.train: prebinned shape mismatch";
        pb
    | None -> prebin x
  in
  let s = make_scratch ~n_classes in
  let all_features = List.init d Fun.id in
  let pick_features () =
    match params.features_per_split with
    | None -> all_features
    | Some k ->
        (* sort the sample: the tie-break is order-invariant, and ascending
           scan order makes "first strictly better wins" implement it *)
        List.sort compare (Rng.sample rng (min k d) all_features)
  in
  let data = x.Fmat.data in
  let rec grow (idx : int array) (depth : int) : node =
    let pure =
      Array.length idx > 0
      && Array.for_all (fun i -> ys.(i) = ys.(idx.(0))) idx
    in
    if
      pure || depth >= params.max_depth
      || Array.length idx < params.min_samples_split
    then Leaf (majority ~n_classes ys idx)
    else
      match best_split ~n_classes ~pb ~s x ys idx (pick_features ()) with
      | None -> Leaf (majority ~n_classes ys idx)
      | Some (feature, threshold, _) ->
          let m = Array.length idx in
          let nl = ref 0 in
          for t = 0 to m - 1 do
            if data.((idx.(t) * d) + feature) <= threshold then incr nl
          done;
          if !nl = 0 || !nl = m then Leaf (majority ~n_classes ys idx)
          else begin
            let left_idx = Array.make !nl 0 in
            let right_idx = Array.make (m - !nl) 0 in
            let li = ref 0 and ri = ref 0 in
            for t = 0 to m - 1 do
              let i = idx.(t) in
              if data.((i * d) + feature) <= threshold then begin
                left_idx.(!li) <- i;
                incr li
              end
              else begin
                right_idx.(!ri) <- i;
                incr ri
              end
            done;
            Split
              {
                feature;
                threshold;
                left = grow left_idx (depth + 1);
                right = grow right_idx (depth + 1);
              }
          end
  in
  let idx =
    match sample with
    | Some s -> s
    | None -> Array.init x.Fmat.n Fun.id
  in
  { root = grow idx 0; n_classes }

let predict (t : t) (x : float array) : int =
  let rec go = function
    | Leaf c -> c
    | Split { feature; threshold; left; right } ->
        if x.(feature) <= threshold then go left else go right
  in
  go t.root

(** Predict straight from row [i] of a flat matrix (no row copy). *)
let predict_row (t : t) (x : Fmat.t) (i : int) : int =
  let base = i * x.Fmat.d and data = x.Fmat.data in
  let rec go = function
    | Leaf c -> c
    | Split { feature; threshold; left; right } ->
        if data.(base + feature) <= threshold then go left else go right
  in
  go t.root

let rec node_count = function
  | Leaf _ -> 1
  | Split { left; right; _ } -> 1 + node_count left + node_count right

let size_bytes (t : t) : int = node_count t.root * 40

(* -- snapshots -------------------------------------------------------------- *)

module Bin = Yali_util.Bin

(* trees are at most [max_depth] (default 24) deep, so plain recursion is
   safe on both sides *)
let rec node_to_bin b = function
  | Leaf c ->
      Bin.w_u8 b 0;
      Bin.w_u32 b c
  | Split { feature; threshold; left; right } ->
      Bin.w_u8 b 1;
      Bin.w_u32 b feature;
      Bin.w_f64 b threshold;
      node_to_bin b left;
      node_to_bin b right

(* the depth guard keeps a corrupt input from overflowing the stack: no
   genuine tree is remotely this deep (train caps depth at [max_depth]) *)
let rec node_of_bin ?(depth = 0) r =
  if depth > 512 then Bin.fail r "tree deeper than 512";
  match Bin.r_u8 r with
  | 0 -> Leaf (Bin.r_u32 r)
  | 1 ->
      let feature = Bin.r_u32 r in
      let threshold = Bin.r_f64 r in
      let left = node_of_bin ~depth:(depth + 1) r in
      let right = node_of_bin ~depth:(depth + 1) r in
      Split { feature; threshold; left; right }
  | n -> Bin.fail r (Printf.sprintf "bad tree-node tag %d" n)

let to_bin b (t : t) =
  Bin.w_u32 b t.n_classes;
  node_to_bin b t.root

let of_bin r : t =
  let n_classes = Bin.r_u32 r in
  let root = node_of_bin r in
  { root; n_classes }
