(** Dense row-major matrices.  The only numeric kernel the framework needs;
    deliberately simple and allocation-conscious. *)

type t = { rows : int; cols : int; data : float array }

let create rows cols = { rows; cols; data = Array.make (rows * cols) 0.0 }

(* Uninitialised storage for results that are fully overwritten before
   being read (transposes, gathers, elementwise outputs): skips the
   zero-fill pass of {!create}, which is measurable in the batched
   training kernels.  Callers MUST write every cell. *)
let create_uninit rows cols =
  { rows; cols; data = Array.create_float (rows * cols) }

let init rows cols f =
  let m = create rows cols in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      m.data.((i * cols) + j) <- f i j
    done
  done;
  m

let get m i j = m.data.((i * m.cols) + j)
let set m i j v = m.data.((i * m.cols) + j) <- v

let of_rows (rows : float array array) : t =
  match Array.length rows with
  | 0 -> create 0 0
  | n ->
      let cols = Array.length rows.(0) in
      init n cols (fun i j -> rows.(i).(j))

let row (m : t) (i : int) : float array =
  Array.sub m.data (i * m.cols) m.cols

let row_into (m : t) (i : int) (dst : float array) : unit =
  if Array.length dst <> m.cols then invalid_arg "Matrix.row_into: width mismatch";
  Array.blit m.data (i * m.cols) dst 0 m.cols

let copy (m : t) : t = { m with data = Array.copy m.data }

(* the straightforward i-k-j triple loop; kept as the reference point for
   the cache-tiled kernel below (test/test_fmat.ml checks exact equality,
   `bench kernels` reports the throughput gap) *)
let matmul_naive (a : t) (b : t) : t =
  if a.cols <> b.rows then invalid_arg "Matrix.matmul: dimension mismatch";
  let c = create a.rows b.cols in
  for i = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let aik = a.data.((i * a.cols) + k) in
      if aik <> 0.0 then
        for j = 0 to b.cols - 1 do
          c.data.((i * c.cols) + j) <-
            c.data.((i * c.cols) + j) +. (aik *. b.data.((k * b.cols) + j))
        done
    done
  done;
  c

(* Cache-tiled matmul.  Blocks of [b] (tile x tile, ~32 KB) stay resident
   while every row of [a] sweeps over them, so [b] is streamed from memory
   once per j-tile instead of once per row of [a].  Within a k-tile the
   nonzero [a (i, k)] entries are gathered once per row, and the j loop
   then accumulates each output cell in a register across the whole tile
   instead of loading and storing [c] once per (k, j) pair.  For any output
   cell (i, j) the products still accumulate in ascending [k] order — the
   tile loops only reorder work across *different* cells, and gathering
   drops exactly the products the [aik <> 0] skip would — so the result is
   bit-identical to {!matmul_naive}. *)
let tile = 64

let matmul_into (c : t) (a : t) (b : t) : unit =
  let n = a.rows and kdim = a.cols and p = b.cols in
  let av = Array.make tile 0.0 in
  let bb = Array.make tile 0 in
  let acc0 = ref 0.0 and acc1 = ref 0.0 and acc2 = ref 0.0 and acc3 = ref 0.0 in
  let acc4 = ref 0.0 and acc5 = ref 0.0 and acc6 = ref 0.0 and acc7 = ref 0.0 in
  let jj = ref 0 in
  while !jj < p do
    let jhi = min p (!jj + tile) in
    let kk = ref 0 in
    while !kk < kdim do
      let khi = min kdim (!kk + tile) in
      for i = 0 to n - 1 do
        let abase = i * kdim and cbase = i * p in
        let cnt = ref 0 in
        for k = !kk to khi - 1 do
          let aik = Array.unsafe_get a.data (abase + k) in
          if aik <> 0.0 then begin
            Array.unsafe_set av !cnt aik;
            Array.unsafe_set bb !cnt (k * p);
            incr cnt
          end
        done;
        let cnt = !cnt in
        if cnt > 0 then begin
          (* independent accumulator chains (one output cell each) keep the
             FPU busy across the fadd latency; each cell's own chain is
             still ascending-k *)
          let j = ref !jj in
          while !j + 7 < jhi do
            let cj = cbase + !j in
            acc0 := Array.unsafe_get c.data cj;
            acc1 := Array.unsafe_get c.data (cj + 1);
            acc2 := Array.unsafe_get c.data (cj + 2);
            acc3 := Array.unsafe_get c.data (cj + 3);
            acc4 := Array.unsafe_get c.data (cj + 4);
            acc5 := Array.unsafe_get c.data (cj + 5);
            acc6 := Array.unsafe_get c.data (cj + 6);
            acc7 := Array.unsafe_get c.data (cj + 7);
            for t = 0 to cnt - 1 do
              let aik = Array.unsafe_get av t in
              let bj = Array.unsafe_get bb t + !j in
              acc0 := !acc0 +. (aik *. Array.unsafe_get b.data bj);
              acc1 := !acc1 +. (aik *. Array.unsafe_get b.data (bj + 1));
              acc2 := !acc2 +. (aik *. Array.unsafe_get b.data (bj + 2));
              acc3 := !acc3 +. (aik *. Array.unsafe_get b.data (bj + 3));
              acc4 := !acc4 +. (aik *. Array.unsafe_get b.data (bj + 4));
              acc5 := !acc5 +. (aik *. Array.unsafe_get b.data (bj + 5));
              acc6 := !acc6 +. (aik *. Array.unsafe_get b.data (bj + 6));
              acc7 := !acc7 +. (aik *. Array.unsafe_get b.data (bj + 7))
            done;
            Array.unsafe_set c.data cj !acc0;
            Array.unsafe_set c.data (cj + 1) !acc1;
            Array.unsafe_set c.data (cj + 2) !acc2;
            Array.unsafe_set c.data (cj + 3) !acc3;
            Array.unsafe_set c.data (cj + 4) !acc4;
            Array.unsafe_set c.data (cj + 5) !acc5;
            Array.unsafe_set c.data (cj + 6) !acc6;
            Array.unsafe_set c.data (cj + 7) !acc7;
            j := !j + 8
          done;
          while !j + 3 < jhi do
            let cj = cbase + !j in
            acc0 := Array.unsafe_get c.data cj;
            acc1 := Array.unsafe_get c.data (cj + 1);
            acc2 := Array.unsafe_get c.data (cj + 2);
            acc3 := Array.unsafe_get c.data (cj + 3);
            for t = 0 to cnt - 1 do
              let aik = Array.unsafe_get av t in
              let bj = Array.unsafe_get bb t + !j in
              acc0 := !acc0 +. (aik *. Array.unsafe_get b.data bj);
              acc1 := !acc1 +. (aik *. Array.unsafe_get b.data (bj + 1));
              acc2 := !acc2 +. (aik *. Array.unsafe_get b.data (bj + 2));
              acc3 := !acc3 +. (aik *. Array.unsafe_get b.data (bj + 3))
            done;
            Array.unsafe_set c.data cj !acc0;
            Array.unsafe_set c.data (cj + 1) !acc1;
            Array.unsafe_set c.data (cj + 2) !acc2;
            Array.unsafe_set c.data (cj + 3) !acc3;
            j := !j + 4
          done;
          for j = !j to jhi - 1 do
            acc0 := Array.unsafe_get c.data (cbase + j);
            for t = 0 to cnt - 1 do
              acc0 :=
                !acc0
                +. Array.unsafe_get av t
                   *. Array.unsafe_get b.data (Array.unsafe_get bb t + j)
            done;
            Array.unsafe_set c.data (cbase + j) !acc0
          done
        end
      done;
      kk := khi
    done;
    jj := jhi
  done

let matmul (a : t) (b : t) : t =
  if a.cols <> b.rows then invalid_arg "Matrix.matmul: dimension mismatch";
  let c = create a.rows b.cols in
  matmul_into c a b;
  c

(** [matmul_bias ~bias a b] is [a * b] with row [i] of the result seeded
    from [bias] before accumulation — the summation order of a per-sample
    [bias.(j) + Σ_k a_ik b_kj] loop, which batched logits need to stay
    bit-identical to their per-sample counterparts. *)
let matmul_bias ~(bias : float array) (a : t) (b : t) : t =
  if a.cols <> b.rows then invalid_arg "Matrix.matmul_bias: dimension mismatch";
  if Array.length bias <> b.cols then
    invalid_arg "Matrix.matmul_bias: bias width mismatch";
  let c = create_uninit a.rows b.cols in
  for i = 0 to a.rows - 1 do
    Array.blit bias 0 c.data (i * b.cols) b.cols
  done;
  matmul_into c a b;
  c

let transpose (m : t) : t =
  let r = create_uninit m.cols m.rows in
  for i = 0 to m.rows - 1 do
    let base = i * m.cols in
    for j = 0 to m.cols - 1 do
      Array.unsafe_set r.data ((j * m.rows) + i)
        (Array.unsafe_get m.data (base + j))
    done
  done;
  r

let map f (m : t) : t = { m with data = Array.map f m.data }

let add (a : t) (b : t) : t =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg "Matrix.add: dimension mismatch";
  { a with data = Array.mapi (fun i x -> x +. b.data.(i)) a.data }

let scale (k : float) (m : t) : t = map (fun x -> k *. x) m

(** In-place y += a * x. *)
let axpy ~(a : float) (x : t) (y : t) : unit =
  if x.rows <> y.rows || x.cols <> y.cols then
    invalid_arg "Matrix.axpy: dimension mismatch";
  for i = 0 to Array.length x.data - 1 do
    Array.unsafe_set y.data i
      (Array.unsafe_get y.data i +. (a *. Array.unsafe_get x.data i))
  done

(** Matrix–vector product. *)
let mv (m : t) (v : float array) : float array =
  if m.cols <> Array.length v then invalid_arg "Matrix.mv: dimension mismatch";
  Array.init m.rows (fun i ->
      let acc = ref 0.0 in
      for j = 0 to m.cols - 1 do
        acc := !acc +. (m.data.((i * m.cols) + j) *. v.(j))
      done;
      !acc)

(** v^T M (vector–matrix product). *)
let vm (v : float array) (m : t) : float array =
  if m.rows <> Array.length v then invalid_arg "Matrix.vm: dimension mismatch";
  Array.init m.cols (fun j ->
      let acc = ref 0.0 in
      for i = 0 to m.rows - 1 do
        acc := !acc +. (v.(i) *. m.data.((i * m.cols) + j))
      done;
      !acc)

let random (rng : Yali_util.Rng.t) rows cols ~scale:s =
  init rows cols (fun _ _ -> Yali_util.Rng.gaussian rng *. s)

let frobenius (m : t) : float =
  sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 m.data)

let pp fmt (m : t) =
  Fmt.pf fmt "@[<v>";
  for i = 0 to m.rows - 1 do
    Fmt.pf fmt "[";
    for j = 0 to m.cols - 1 do
      Fmt.pf fmt "%8.3f " (get m i j)
    done;
    Fmt.pf fmt "]@,"
  done;
  Fmt.pf fmt "@]"

module Bin = Yali_util.Bin

let to_bin b (m : t) =
  Bin.w_u32 b m.rows;
  Bin.w_u32 b m.cols;
  Bin.w_floats b m.data

let of_bin r : t =
  let rows = Bin.r_u32 r in
  let cols = Bin.r_u32 r in
  let data = Bin.r_floats r in
  if Array.length data <> rows * cols then
    Bin.fail r
      (Printf.sprintf "matrix %dx%d with %d elements" rows cols
         (Array.length data));
  { rows; cols; data }
