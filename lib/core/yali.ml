(** Yali — the public umbrella API.

    A game-based framework to compare program classifiers and evaders
    (re-implementation of Damásio et al., CGO 2023).  This module re-exports
    the stable public surface; see the README for a tour.

    {1 Substrates}
    - {!Ir}: the miniature SSA IR (63 opcodes, verifier, interpreter)
    - {!Minic}: the mini-C frontend (AST, parser, printer, lowering)
    - {!Transforms}: optimization passes and [-O0]…[-O3] pipelines
    - {!Obfuscation}: O-LLVM-style passes, source transformations, evaders
    - {!Embeddings}: nine program embeddings
    - {!Ml}: six stochastic classification models
    - {!Dataset}: the synthetic POJ-104-style corpus, MIRAI suite,
      benchmark-game kernels
    - {!Exec}: the execution runtime — domain pool, content-addressed
      cache, telemetry ([--jobs], [--telemetry])
    - {!Vm} / {!Native} / {!Execution}: the pre-compiling IR virtual
      machine, the compile-to-OCaml native tier, and the engine
      switchboard ([--engine=vm|ref|native]; bit-identical outcomes, the
      interpreter stays the frozen oracle)
    - {!Fuzz}: the differential fuzzing subsystem — whole-pipeline oracle
      and campaign driver ([yali fuzz])
    - {!Check}: the correctness-tooling layer — property-testing engine,
      per-pass translation validation, invariant oracles, smoke/deep tiers
      ([yali check])
    - {!Serve}: classification-as-a-service — binary IR codec, versioned
      model registry, micro-batching daemon ([yali serve])
    - {!Corpus}: paper-scale corpora — streaming sharded generation,
      out-of-core feature files, minibatch training ([yali corpus])
    - {!Adapt}: adaptive evaders — classifier-in-the-loop search over
      obfuscation-pass sequences with cost-priced Pareto fronts
      ([yali adapt])

    {1 The games}
    - {!Games}: Definitions 2.1–2.4, the four games, the arena. *)

module Util = Yali_util
module Rng = Yali_util.Rng
module Exec = Yali_exec
module Ir = Yali_ir
module Minic = Yali_minic
module Transforms = Yali_transforms
module Obfuscation = Yali_obfuscation
module Embeddings = Yali_embeddings
module Ml = Yali_ml
module Dataset = Yali_dataset
module Games = Yali_games
module Fuzz = Yali_fuzz
module Check = Yali_check
module Serve = Yali_serve
module Corpus = Yali_corpus
module Adapt = Yali_adapt
module Vm = Yali_vm.Vm
module Native = Yali_native.Native
module Execution = Yali_vm.Execution

(** Parse mini-C source text into an AST. *)
let parse = Yali_minic.Parser.parse_program

(** Lower a mini-C program to an IR module (clang -O0 style). *)
let lower = Yali_minic.Lower.lower_program ?name:None

(** Compile source text straight to IR, at a chosen optimization level. *)
let compile ?(optimize = Yali_transforms.Pipeline.O0) (src : string) :
    Yali_ir.Irmod.t =
  Yali_transforms.Pipeline.optimize optimize (lower (parse src))

(** Run a module's [main] on a list of integer inputs, under the engine
    selected in {!Execution} (the VM by default). *)
let run ?fuel m input = Yali_vm.Execution.run ?fuel m input
