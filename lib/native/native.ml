(** See native.mli. *)

module Interp = Yali_ir.Interp
module Telemetry = Yali_exec.Telemetry

type packed = int * string * int64 list * float list * int * int64 * int * int
type entry = int -> int -> int64 list -> packed
type prepared = fuel:int -> int64 list -> Interp.outcome

(* ------------------------------------------------------------------ *)
(* Availability.  Probed on every call (not memoised) so tests can scrub
   PATH or flip YALI_NATIVE_DISABLE and observe the fallback. *)

let disabled () =
  match Sys.getenv_opt "YALI_NATIVE_DISABLE" with
  | None | Some "" | Some "0" -> false
  | Some _ -> true

let find_in_path name =
  match Sys.getenv_opt "PATH" with
  | None -> None
  | Some path ->
      List.find_map
        (fun dir ->
          if dir = "" then None
          else
            let p = Filename.concat dir name in
            match Unix.access p [ Unix.X_OK ] with
            | () -> Some p
            | exception Unix.Unix_error _ -> None)
        (String.split_on_char ':' path)

(* The compile command, as an argv prefix: ocamlfind's ocamlopt when
   available (it knows the right stdlib), a bare ocamlopt otherwise. *)
let toolchain () =
  match find_in_path "ocamlfind" with
  | Some p -> Some [ p; "ocamlopt" ]
  | None -> (
      match find_in_path "ocamlopt.opt" with
      | Some p -> Some [ p ]
      | None -> (
          match find_in_path "ocamlopt" with
          | Some p -> Some [ p ]
          | None -> None))

let why_unavailable () =
  if not Dynlink.is_native then
    Some "host is a bytecode build (no native Dynlink)"
  else if disabled () then Some "disabled by YALI_NATIVE_DISABLE"
  else
    match toolchain () with
    | None -> Some "no ocamlfind or ocamlopt on PATH"
    | Some _ -> None

let available () = why_unavailable () = None

(* ------------------------------------------------------------------ *)
(* On-disk artifact cache: content-addressed by the codec bytes of the
   program(s) plus compiler and codegen versions, mirroring Exec.Cache's
   keying discipline.  Artifacts survive process restarts, so fuzz corpus
   replay, per-game grids and daemon restarts pay each compile once. *)

let cache_dir () =
  match Sys.getenv_opt "YALI_NATIVE_CACHE" with
  | Some d when d <> "" -> d
  | _ -> Filename.concat (Filename.get_temp_dir_name ()) "yali-native-cache"

let cache_cap_bytes () =
  let mb =
    match Sys.getenv_opt "YALI_NATIVE_CACHE_MB" with
    | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 256)
    | None -> 256
  in
  mb * 1024 * 1024

let rec mkdir_p d =
  match Unix.mkdir d 0o755 with
  | () -> ()
  | exception Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  | exception Unix.Unix_error (Unix.ENOENT, _, _) ->
      mkdir_p (Filename.dirname d);
      (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())

let digest_of (ms : Yali_ir.Irmod.t array) : string =
  let b = Buffer.create 4096 in
  Array.iter (fun m -> Buffer.add_string b (Yali_serve.Codec.encode_module m)) ms;
  Buffer.add_string b Sys.ocaml_version;
  Buffer.add_char b '/';
  Buffer.add_string b (string_of_int Codegen.version);
  Digest.to_hex (Digest.string (Buffer.contents b))

let try_unlink p = try Unix.unlink p with Unix.Unix_error _ -> ()
let touch p = try Unix.utimes p 0.0 0.0 with Unix.Unix_error _ -> ()

(* Oldest-mtime-first eviction down to the byte cap; the artifact just
   installed (basename prefix [keep]) is never evicted. *)
let evict ~keep dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> ()
  | names ->
      let files =
        Array.to_list names
        |> List.filter_map (fun n ->
               if String.length n >= String.length keep
                  && String.sub n 0 (String.length keep) = keep
               then None
               else
                 let p = Filename.concat dir n in
                 match Unix.stat p with
                 | { Unix.st_kind = Unix.S_REG; st_size; st_mtime; _ } ->
                     Some (p, st_size, st_mtime)
                 | _ | (exception Unix.Unix_error _) -> None)
      in
      let kept_bytes =
        Array.to_list names
        |> List.fold_left
             (fun acc n ->
               if
                 String.length n >= String.length keep
                 && String.sub n 0 (String.length keep) = keep
               then
                 match Unix.stat (Filename.concat dir n) with
                 | { Unix.st_size; _ } -> acc + st_size
                 | exception Unix.Unix_error _ -> acc
               else acc)
             0
      in
      let total = List.fold_left (fun acc (_, s, _) -> acc + s) kept_bytes files in
      let cap = cache_cap_bytes () in
      if total > cap then begin
        let by_age = List.sort (fun (_, _, a) (_, _, b) -> compare a b) files in
        let excess = ref (total - cap) in
        List.iter
          (fun (p, s, _) ->
            if !excess > 0 then begin
              try_unlink p;
              excess := !excess - s;
              Telemetry.incr "native.cache.evictions"
            end)
          by_age
      end

(* ------------------------------------------------------------------ *)
(* Compilation and loading *)

let write_atomic path contents =
  let tmp = Printf.sprintf "%s.%d.tmp" path (Unix.getpid ()) in
  let oc = open_out_bin tmp in
  output_string oc contents;
  close_out oc;
  Unix.rename tmp path

let rec waitpid_retry pid =
  match Unix.waitpid [] pid with
  | _, status -> status
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> waitpid_retry pid

let run_command argv ~stderr_file =
  let fd =
    Unix.openfile stderr_file [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  let pid =
    Unix.create_process (List.hd argv) (Array.of_list argv) Unix.stdin Unix.stdout fd
  in
  Unix.close fd;
  waitpid_retry pid

let read_file_prefix path n =
  match open_in_bin path with
  | exception Sys_error _ -> ""
  | ic ->
      let len = min n (in_channel_length ic) in
      let s = really_input_string ic len in
      close_in ic;
      s

(* The generated unit announces its entry closure by raising at module
   initialisation; Dynlink surfaces that as Library's_module_initializers_failed.
   We recognise our own exception structurally (constructor block + magic
   string + closure) — no shared .cmi between host and plugin needed. *)
let load_entry cmxs : (entry, string) result =
  match Dynlink.loadfile cmxs with
  | () -> Error "plugin did not announce an entry point"
  | exception Dynlink.Error (Dynlink.Library's_module_initializers_failed e) ->
      let r = Obj.repr e in
      if
        Obj.is_block r && Obj.size r = 3
        && Obj.is_block (Obj.field r 1)
        && Obj.tag (Obj.field r 1) = Obj.string_tag
        && String.equal (Obj.obj (Obj.field r 1) : string) Codegen.abi_magic
      then Ok (Obj.obj (Obj.field r 2) : entry)
      else Error ("plugin failed to initialise: " ^ Printexc.to_string e)
  | exception Dynlink.Error err -> Error (Dynlink.error_message err)
  | exception e -> Error ("dynlink: " ^ Printexc.to_string e)

let compile_to ~dir ~stem ms : (string, string) result =
  let ml = Filename.concat dir (stem ^ ".ml") in
  let cmxs = Filename.concat dir (stem ^ ".cmxs") in
  let log = Filename.concat dir (stem ^ ".log") in
  let src = Telemetry.with_span "native.codegen" (fun () -> Codegen.emit_plugin ms) in
  write_atomic ml src;
  match toolchain () with
  | None -> Error "no ocamlfind or ocamlopt on PATH"
  | Some tool -> (
      let tmp = Printf.sprintf "%s.%d.tmp.cmxs" cmxs (Unix.getpid ()) in
      let argv = tool @ [ "-shared"; "-w"; "-a"; "-o"; tmp; ml ] in
      let status =
        Telemetry.with_span "native.compile" (fun () ->
            run_command argv ~stderr_file:log)
      in
      (* compiler byproducts are keyed by the source stem; drop them *)
      List.iter
        (fun ext -> try_unlink (Filename.concat dir (stem ^ ext)))
        [ ".cmi"; ".cmx"; ".o" ];
      match status with
      | Unix.WEXITED 0 ->
          Unix.rename tmp cmxs;
          evict ~keep:stem dir;
          Ok cmxs
      | _ ->
          try_unlink tmp;
          let err = read_file_prefix log 2048 in
          Error
            (Printf.sprintf "ocamlopt failed for %s: %s" stem
               (if err = "" then "no diagnostic captured" else err)))

(* In-process registry: one entry per digest, under a single mutex that also
   serialises compiles (a concurrent duplicate compile would only waste
   work; a concurrent duplicate *load* would clash on the module name). *)
let mu = Mutex.create ()
let table : (string, entry) Hashtbl.t = Hashtbl.create 16

let with_mu f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let get_entry (ms : Yali_ir.Irmod.t array) : (entry, string) result =
  let digest = digest_of ms in
  with_mu @@ fun () ->
  match Hashtbl.find_opt table digest with
  | Some e ->
      Telemetry.incr "native.cache.hits";
      Ok e
  | None -> (
      let dir = cache_dir () in
      mkdir_p dir;
      let stem = "yn_" ^ digest in
      let cmxs = Filename.concat dir (stem ^ ".cmxs") in
      let finish r =
        (match r with Ok e -> Hashtbl.replace table digest e | Error _ -> ());
        r
      in
      if Sys.file_exists cmxs then begin
        Telemetry.incr "native.cache.hits";
        touch cmxs;
        touch (Filename.concat dir (stem ^ ".ml"));
        match load_entry cmxs with
        | Ok e -> finish (Ok e)
        | Error _ ->
            (* stale or truncated artifact (e.g. compiler upgrade mid-cache,
               interrupted rename): rebuild once *)
            try_unlink cmxs;
            Telemetry.incr "native.cache.misses";
            finish
              (match compile_to ~dir ~stem ms with
              | Error e -> Error e
              | Ok cmxs -> load_entry cmxs)
      end
      else begin
        Telemetry.incr "native.cache.misses";
        finish
          (match compile_to ~dir ~stem ms with
          | Error e -> Error e
          | Ok cmxs -> load_entry cmxs)
      end)

(* ------------------------------------------------------------------ *)
(* Packing → Interp.outcome *)

let wrap (e : entry) (pix : int) : prepared =
 fun ~fuel input ->
  match e pix fuel input with
  | 0, _, out, fout, tag, bits, steps, cost ->
      let exit_value =
        match tag with
        | 0 -> Interp.RInt bits
        | 1 -> Interp.RFloat (Int64.float_of_bits bits)
        | 2 -> Interp.RPtr (Int64.to_int bits)
        | _ -> Interp.RUnit
      in
      { Interp.output = out; foutput = fout; exit_value; steps; cost }
  | 1, m, _, _, _, _, _, _ -> raise (Interp.Trap m)
  | 2, _, _, _, _, _, _, _ -> raise Interp.Out_of_fuel
  | 3, m, _, _, _, _, _, _ -> invalid_arg m
  | s, m, _, _, _, _, _, _ ->
      failwith (Printf.sprintf "native plugin protocol error %d: %s" s m)

let prepare_many (ms : Yali_ir.Irmod.t array) : (prepared array, string) result =
  match why_unavailable () with
  | Some why -> Error why
  | None -> (
      match get_entry ms with
      | Error e -> Error e
      | Ok entry -> Ok (Array.mapi (fun i _ -> wrap entry i) ms))

let prepare (m : Yali_ir.Irmod.t) : (prepared, string) result =
  match prepare_many [| m |] with Ok a -> Ok a.(0) | Error e -> Error e

let run ?(fuel = 10_000_000) (m : Yali_ir.Irmod.t) (input : int64 list) :
    Interp.outcome =
  match prepare m with
  | Ok p -> p ~fuel input
  | Error e -> failwith ("native tier unavailable: " ^ e)
