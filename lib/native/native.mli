(** Native-code execution tier: compile a module to OCaml with {!Codegen},
    build a [.cmxs] with the installed [ocamlopt], [Dynlink] it, and run it
    behind the interpreter's exact contract — same outputs, same trap
    messages, same [steps] and [cost], same exceptions.

    Artifacts are content-addressed (hash of the {!Yali_serve.Codec} bytes
    plus compiler and codegen versions) in an on-disk cache directory, so
    repeat runs across processes pay each compile once.  Environment knobs:

    - [YALI_NATIVE_CACHE]: cache directory (default
      [<tmpdir>/yali-native-cache]);
    - [YALI_NATIVE_CACHE_MB]: byte cap before oldest-first eviction
      (default 256);
    - [YALI_NATIVE_DISABLE]: any value but ["0"]/empty disables the tier,
      forcing the engine switchboard's fallback path.

    Telemetry: counters [native.cache.hits] / [native.cache.misses] /
    [native.cache.evictions]; spans [native.codegen] / [native.compile]. *)

(** A compiled program: run it on an input stream.
    @raise Yali_ir.Interp.Trap as the interpreter would, verbatim
    @raise Yali_ir.Interp.Out_of_fuel when [fuel] steps are exceeded
    @raise Invalid_argument for a missing [main] or an empty function *)
type prepared = fuel:int -> int64 list -> Yali_ir.Interp.outcome

(** Can this process use the native tier right now?  Probed afresh on every
    call (native Dynlink support, [YALI_NATIVE_DISABLE], a usable
    [ocamlfind]/[ocamlopt] on PATH) so environment changes are observed. *)
val available : unit -> bool

(** [None] when {!available}; otherwise a one-line reason for the fallback
    warning. *)
val why_unavailable : unit -> string option

(** Compile one module (or fetch it from the cache). [Error] carries a
    diagnostic: toolchain missing, compile failure, unloadable artifact. *)
val prepare : Yali_ir.Irmod.t -> (prepared, string) result

(** Compile a batch of modules into a single plugin — one [ocamlopt]
    invocation, one [Dynlink] load — returning one {!prepared} per module
    in order.  This is what the differential oracle uses to amortise
    compiles across a case's 22 pipeline variants. *)
val prepare_many : Yali_ir.Irmod.t array -> (prepared array, string) result

(** Convenience: prepare + run once.
    @raise Failure when the tier is unavailable. *)
val run : ?fuel:int -> Yali_ir.Irmod.t -> int64 list -> Yali_ir.Interp.outcome

(** The artifact cache directory currently in effect. *)
val cache_dir : unit -> string
