(** See codegen.mli. *)

module I = Yali_ir.Instr
module T = Yali_ir.Types
module V = Yali_ir.Value
module B = Yali_ir.Block
module F = Yali_ir.Func
module M = Yali_ir.Irmod
module Op = Yali_ir.Opcode

let abi_magic = "YALINAT1"

(* Bumped whenever the emitted code's shape changes; part of the cache key so
   stale artifacts from older code generators are never reused. *)
let version = 1

let mem_size = Yali_ir.Interp.mem_size

(* ------------------------------------------------------------------ *)
(* Static slot types.  A tiny lattice over the interpreter's rvalue
   constructors: when every reaching definition of a slot has the same
   constructor we compile reads and writes without tag dispatch. *)

type sty = SBot | SInt | SFloat | SPtr | SUnit | SUnk

let join a b = if a = SBot then b else if b = SBot then a else if a = b then a else SUnk

(* Where a definition lives at runtime.  Block-local definitions become
   plain OCaml lets; everything that crosses a block boundary (phis and
   parameters included — blocks compile to top-level functions, so nothing
   lexical survives a jump) gets dense indices into the per-call frame
   carved out of the shared slot stacks.  Parameters arrive at the function
   wrapper as (tag, int payload, float payload) triples and are spilled
   into their frame slots before the entry block runs. *)
type place =
  | PLocal
  | PFrame of int * int  (** int64-stack offset (-1 if none), float-stack offset (-1 if none) *)

type slot = { sty : sty; place : place; def_block : int; def_pos : int }

type fctx = {
  f : F.t;
  fname : string;
  findex : int;
  mindex : int;
  blocks : B.t array;
  label_ix : (string, int) Hashtbl.t;  (** label -> block index, last wins (Interp uses Hashtbl.replace) *)
  slots : (int, slot) Hashtbl.t;
  decl_ty : (int, T.t) Hashtbl.t;  (** declared types, for gep strides *)
  ni : int;  (** int64-stack frame size *)
  nf : int;  (** float-stack frame size *)
  gaddr : (string, int) Hashtbl.t;  (** global -> address, last wins *)
  gty1 : (string, T.t) Hashtbl.t;  (** global -> type, first wins (Irmod.find_global) *)
  fun_ix : (string, int) Hashtbl.t;  (** function name -> index, first wins *)
  fun_arity : int array;
  fun_ni : int array;  (** per-function int64-stack frame size (callers pre-grow) *)
  fun_nf : int array;  (** per-function float-stack frame size (callers pre-grow) *)
  mutable gensym : int;
  mutable out : Buffer.t;  (** active emission buffer, for hoisted frame reads *)
  mutable memo : (string * string) list;
      (** frame-cell read -> the local it is already bound to, within the
          current block function.  Frame cells are written at most once per
          block execution (SSA defs and edge phi-copies), so a read stays
          valid until that cell's write, which drops the entry. *)
}

let fresh ctx p =
  ctx.gensym <- ctx.gensym + 1;
  Printf.sprintf "%s%d" p ctx.gensym

(* ------------------------------------------------------------------ *)
(* Literals *)

let lit_i64 (n : int64) = Printf.sprintf "(%LdL)" n

let lit_int (n : int) = Printf.sprintf "(%d)" n

(* Exact float literals without a runtime [Int64.float_of_bits] call on the
   hot path: hex float literals are exact for every finite double (and -0.);
   infinities use the stdlib names; NaNs keep their payload via bits. *)
let lit_float (x : float) =
  if x <> x then Printf.sprintf "(Int64.float_of_bits (%LdL))" (Int64.bits_of_float x)
  else if x = infinity then "infinity"
  else if x = neg_infinity then "neg_infinity"
  else Printf.sprintf "(%h)" x

let quoted s = "\"" ^ String.escaped s ^ "\""

(* ------------------------------------------------------------------ *)
(* Interp.normalize, at codegen time (for constants) and emitted inline. *)

let normalize (ty : T.t) (n : int64) : int64 =
  match ty with
  | T.I1 -> Int64.logand n 1L
  | T.I8 ->
      let v = Int64.logand n 0xFFL in
      if Int64.compare v 0x7FL > 0 then Int64.sub v 0x100L else v
  | T.I32 ->
      let v = Int64.logand n 0xFFFFFFFFL in
      if Int64.compare v 0x7FFFFFFFL > 0 then Int64.sub v 0x1_0000_0000L else v
  | _ -> n

(* The same wrap as an inline expression over [e]. *)
let norm_expr (ty : T.t) (e : string) =
  match ty with
  | T.I1 -> Printf.sprintf "(Int64.logand %s 1L)" e
  | T.I8 ->
      Printf.sprintf
        "(let nq = Int64.logand %s 0xFFL in if nq > 0x7FL then Int64.sub nq 0x100L else nq)"
        e
  | T.I32 ->
      Printf.sprintf
        "(let nq = Int64.logand %s 0xFFFFFFFFL in if nq > 0x7FFFFFFFL then Int64.sub nq \
         0x1_0000_0000L else nq)"
        e
  | _ -> e

(* ------------------------------------------------------------------ *)
(* Operand classification *)

type vinfo =
  | KConstI of int64  (** already normalized *)
  | KConstF of float
  | KVar of int * slot
  | KUnsetVar of int
  | KGlobal of int
  | KUnknownGlobal of string
  | KUndef

let vinfo (ctx : fctx) (v : V.t) : vinfo =
  match v with
  | V.Var id -> (
      match Hashtbl.find_opt ctx.slots id with
      | Some s -> KVar (id, s)
      | None -> KUnsetVar id)
  | V.IConst (ty, n) -> KConstI (normalize ty n)
  | V.FConst x -> KConstF x
  | V.Global g -> (
      match Hashtbl.find_opt ctx.gaddr g with
      | Some a -> KGlobal a
      | None -> KUnknownGlobal g)
  | V.Undef _ -> KUndef

(* ------------------------------------------------------------------ *)
(* Reads.  Every reader returns an OCaml expression string; trap cases
   become calls to the plugin-local [tr] helper (type 'a, so they fit any
   context).  [tag]/[iv]/[fv] are the triple components of a definition. *)

let name_t id = Printf.sprintf "v%dt" id
let name_i id = Printf.sprintf "v%di" id
let name_f id = Printf.sprintf "v%df" id
let name_v id = Printf.sprintf "v%d" id

(* Memoized frame reads: the first read of a cell in a block function binds
   it to a fresh local (emitted at the current — always statement-level —
   buffer position; the reads are pure, so hoisting past expression
   boundaries is safe); further reads reuse the local.  [unmemo] forgets
   cells a write is about to change. *)
let hoist ctx key raw =
  match List.assoc_opt key ctx.memo with
  | Some q -> q
  | None ->
      let q = fresh ctx "m" in
      Buffer.add_string ctx.out (Printf.sprintf "let %s = %s in\n" q raw);
      ctx.memo <- (key, q) :: ctx.memo;
      q

let unmemo ctx keys =
  if ctx.memo <> [] then
    ctx.memo <- List.filter (fun (k, _) -> not (List.mem k keys)) ctx.memo

let ikey k = Printf.sprintf "i%d" k
let fkey j = Printf.sprintf "f%d" j

let ig ctx k =
  hoist ctx (ikey k) (Printf.sprintf "(Bigarray.Array1.unsafe_get st.istk (ib + %d))" k)

let fg ctx j = hoist ctx (fkey j) (Printf.sprintf "(Array.unsafe_get st.fstk (fb + %d))" j)

(* top-level name of a basic-block function *)
let bname mindex findex bi = Printf.sprintf "f%d_%d_b%d" mindex findex bi

(* raw triple component reads for a defined variable *)
let rd_tag ctx id (s : slot) =
  match s.place with
  | PLocal -> name_t id
  | PFrame (k, _) -> Printf.sprintf "(Int64.to_int %s)" (ig ctx k)

let rd_iv ctx id (s : slot) =
  match s.place with
  | PLocal -> name_i id
  | PFrame (k, _) -> ig ctx (k + 1)

let rd_fv ctx id (s : slot) =
  match s.place with
  | PLocal -> name_f id
  | PFrame (_, j) -> fg ctx j

(* typed single-value read (slot sty is SInt/SFloat/SPtr) *)
let rd_typed ctx id (s : slot) =
  match (s.sty, s.place) with
  | SInt, PLocal -> name_v id
  | SInt, PFrame (k, _) -> ig ctx k
  | SFloat, PLocal -> name_v id
  | SFloat, PFrame (_, j) -> fg ctx j
  | SPtr, PLocal -> name_v id
  | SPtr, PFrame (k, _) -> Printf.sprintf "(Int64.to_int %s)" (ig ctx k)
  | _ -> assert false

let trap_e msg = Printf.sprintf "(tr %s)" (quoted msg)
let unset_e ctx id = trap_e (Printf.sprintf "read of unset %%%d in %s" id ctx.fname)
let unknown_global_e g = trap_e ("unknown global " ^ g)

(* as_int *)
let xint (ctx : fctx) (v : V.t) : string =
  match vinfo ctx v with
  | KConstI n -> lit_i64 n
  | KConstF _ -> trap_e "expected integer, got float"
  | KUndef -> "0L"
  | KGlobal _ -> trap_e "expected integer, got pointer"
  | KUnknownGlobal g -> unknown_global_e g
  | KUnsetVar id -> unset_e ctx id
  | KVar (id, s) -> (
      match s.sty with
      | SInt -> rd_typed ctx id s
      | SPtr -> trap_e "expected integer, got pointer"
      | SFloat -> trap_e "expected integer, got float"
      | SUnit | SBot -> trap_e "expected integer, got unit"
      | SUnk ->
          let q = fresh ctx "q" in
          Printf.sprintf "(let %s = %s in if %s = 0 then %s else exp_int %s)" q (rd_tag ctx id s)
            q (rd_iv ctx id s) q)

(* as_float *)
let xflt (ctx : fctx) (v : V.t) : string =
  match vinfo ctx v with
  | KConstF x -> lit_float x
  | KConstI n -> lit_float (Int64.to_float n)
  | KUndef -> "0."
  | KGlobal _ | KUnknownGlobal _ | KUnsetVar _ -> (
      match vinfo ctx v with
      | KUnknownGlobal g -> unknown_global_e g
      | KUnsetVar id -> unset_e ctx id
      | _ -> trap_e "expected float")
  | KVar (id, s) -> (
      match s.sty with
      | SFloat -> rd_typed ctx id s
      | SInt -> Printf.sprintf "(Int64.to_float %s)" (rd_typed ctx id s)
      | SPtr | SUnit | SBot -> trap_e "expected float"
      | SUnk ->
          let q = fresh ctx "q" in
          Printf.sprintf
            "(let %s = %s in if %s = 1 then %s else if %s = 0 then Int64.to_float %s else tr \
             \"expected float\")"
            q (rd_tag ctx id s) q (rd_fv ctx id s) q (rd_iv ctx id s))

(* as_ptr: an OCaml int expression *)
let xptr (ctx : fctx) (v : V.t) : string =
  match vinfo ctx v with
  | KConstI n -> lit_int (Int64.to_int n)
  | KGlobal a -> lit_int a
  | KUndef -> "0"
  | KConstF _ -> trap_e "expected pointer"
  | KUnknownGlobal g -> unknown_global_e g
  | KUnsetVar id -> unset_e ctx id
  | KVar (id, s) -> (
      match s.sty with
      | SPtr -> rd_typed ctx id s
      | SInt -> Printf.sprintf "(Int64.to_int %s)" (rd_typed ctx id s)
      | SFloat | SUnit | SBot -> trap_e "expected pointer"
      | SUnk ->
          let q = fresh ctx "q" in
          Printf.sprintf
            "(let %s = %s in if %s = 0 || %s = 2 then Int64.to_int %s else tr \"expected \
             pointer\")"
            q (rd_tag ctx id s) q q (rd_iv ctx id s))

(* full triple (tag expr, int64 payload expr, float payload expr); a
   trapping lookup is surfaced through the tag component, which consumers
   always evaluate first. *)
let xtriple (ctx : fctx) (v : V.t) : string * string * string =
  match vinfo ctx v with
  | KConstI n -> ("0", lit_i64 n, "0.")
  | KConstF x -> ("1", "0L", lit_float x)
  | KGlobal a -> ("2", Printf.sprintf "(Int64.of_int %d)" a, "0.")
  | KUndef -> ("0", "0L", "0.")
  | KUnknownGlobal g -> (unknown_global_e g, "0L", "0.")
  | KUnsetVar id -> (unset_e ctx id, "0L", "0.")
  | KVar (id, s) -> (
      match s.sty with
      | SInt -> ("0", rd_typed ctx id s, "0.")
      | SFloat -> ("1", "0L", rd_typed ctx id s)
      | SPtr -> ("2", Printf.sprintf "(Int64.of_int %s)" (rd_typed ctx id s), "0.")
      | SUnit -> ("3", "0L", "0.")
      | SBot -> ("0", "0L", "0.")
      | SUnk -> (rd_tag ctx id s, rd_iv ctx id s, rd_fv ctx id s))

(* Does evaluating [v]'s lookup itself trap (independent of coercion)? *)
let lookup_traps (ctx : fctx) (v : V.t) =
  match vinfo ctx v with KUnsetVar _ | KUnknownGlobal _ -> true | _ -> false

(* Can reading [v] in the given coercion context trap? *)
let coerce_traps (ctx : fctx) (v : V.t) (c : [ `Int | `Flt | `Ptr | `Triple ]) =
  match (vinfo ctx v, c) with
  | (KUnsetVar _ | KUnknownGlobal _), _ -> true
  | _, `Triple -> false
  | KConstI _, _ -> false
  | KConstF _, `Flt -> false
  | KConstF _, _ -> true
  | KUndef, _ -> false
  | KGlobal _, `Ptr -> false
  | KGlobal _, _ -> true
  | KVar (_, s), `Int -> not (s.sty = SInt)
  | KVar (_, s), `Flt -> not (s.sty = SFloat || s.sty = SInt)
  | KVar (_, s), `Ptr -> not (s.sty = SPtr || s.sty = SInt)

(* ------------------------------------------------------------------ *)
(* Static analysis: per-definition types, placement and frame layout.   *)

let transfer_value (stys : (int, sty) Hashtbl.t) (v : V.t) : sty =
  match v with
  | V.Var id -> ( match Hashtbl.find_opt stys id with Some s -> s | None -> SBot)
  | V.IConst _ -> SInt
  | V.FConst _ -> SFloat
  | V.Global _ -> SPtr
  | V.Undef _ -> SInt

let intrinsic_result = function
  | "read_int" | "abs" | "min" | "max" -> Some SInt
  | "read_float" -> Some SFloat
  | "print_int" | "print_float" -> Some SUnit
  | _ -> None

let transfer_instr (stys : (int, sty) Hashtbl.t) (i : I.t) : sty =
  match i.I.kind with
  | I.Ibin _ | I.Icmp _ | I.Fcmp _ -> SInt
  | I.Fbin _ | I.Fneg _ -> SFloat
  | I.Alloca _ | I.Gep _ -> SPtr
  | I.Load _ -> SUnk
  | I.Store _ -> SUnit
  | I.Phi incoming ->
      List.fold_left (fun acc (v, _) -> join acc (transfer_value stys v)) SBot incoming
  | I.Select (_, a, b) -> join (transfer_value stys a) (transfer_value stys b)
  | I.Call (callee, _) -> (
      match intrinsic_result callee with Some s -> s | None -> SUnk)
  | I.Cast (c, a) -> (
      match c with
      | I.Trunc | I.ZExt | I.SExt | I.FPToUI | I.FPToSI | I.PtrToInt -> SInt
      | I.FPTrunc | I.FPExt | I.UIToFP | I.SIToFP -> SFloat
      | I.IntToPtr -> SPtr
      | I.Bitcast -> transfer_value stys a)
  | I.Freeze a -> transfer_value stys a

let analyze_function (f : F.t) : (int, sty) Hashtbl.t =
  let stys : (int, sty) Hashtbl.t = Hashtbl.create 64 in
  List.iter (fun (id, _) -> Hashtbl.replace stys id SUnk) f.F.params;
  let defs =
    List.concat_map
      (fun (b : B.t) -> List.filter (fun (i : I.t) -> I.defines i) b.B.instrs)
      f.F.blocks
  in
  List.iter (fun (i : I.t) -> Hashtbl.replace stys i.I.id SBot) defs;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (i : I.t) ->
        let cur = try Hashtbl.find stys i.I.id with Not_found -> SBot in
        let nxt = join cur (transfer_instr stys i) in
        if nxt <> cur then (
          Hashtbl.replace stys i.I.id nxt;
          changed := true))
      defs
  done;
  (* unreached phi cycles stay SBot; give them the universal representation *)
  Hashtbl.iter (fun id s -> if s = SBot then Hashtbl.replace stys id SUnk) stys;
  stys

(* ------------------------------------------------------------------ *)
(* Emission *)

type pending = { mutable psteps : int; mutable pcost : int }

(* The step/cost counters travel through the block functions as plain int
   arguments [stp]/[cst] (with the fuel bound [fl]) — registers, not heap
   fields.  They are written back to [st] only where another party reads
   them: before a user call (the callee's fuel checks) and at Ret (the
   caller reloads).  Exception paths (Trap/F/Invalid_argument) never
   observe the counters — [drive] packs zeros there — so no write-back is
   needed before a raise. *)
let flush (buf : Buffer.t) (p : pending) =
  if p.psteps > 0 then Buffer.add_string buf (Printf.sprintf "let stp = stp + %d in\n" p.psteps);
  if p.pcost > 0 then Buffer.add_string buf (Printf.sprintf "let cst = cst + %d in\n" p.pcost);
  if p.psteps > 0 then Buffer.add_string buf "if stp > fl then raise F;\n";
  p.psteps <- 0;
  p.pcost <- 0

let charge (p : pending) (op : Op.t) =
  p.psteps <- p.psteps + 1;
  p.pcost <- p.pcost + Op.cost op

(* store an instruction result whose representation matches the slot sty *)
let bind_typed buf (ctx : fctx) id (e : string) =
  match Hashtbl.find_opt ctx.slots id with
  | None -> Buffer.add_string buf (Printf.sprintf "let _ = %s in\n" e)
  | Some s -> (
      match (s.sty, s.place) with
      | _, PLocal when s.sty <> SUnk && s.sty <> SUnit ->
          Buffer.add_string buf (Printf.sprintf "let %s = %s in\n" (name_v id) e)
      | SInt, PFrame (k, _) ->
          unmemo ctx [ ikey k ];
          Buffer.add_string buf
            (Printf.sprintf "Bigarray.Array1.unsafe_set st.istk (ib + %d) (%s);\n" k e)
      | SPtr, PFrame (k, _) ->
          unmemo ctx [ ikey k ];
          Buffer.add_string buf
            (Printf.sprintf "Bigarray.Array1.unsafe_set st.istk (ib + %d) (Int64.of_int %s);\n" k
               e)
      | SFloat, PFrame (_, j) ->
          unmemo ctx [ fkey j ];
          Buffer.add_string buf (Printf.sprintf "Array.unsafe_set st.fstk (fb + %d) (%s);\n" j e)
      | SUnit, _ -> Buffer.add_string buf (Printf.sprintf "let _ = %s in\n" e)
      | _ -> assert false)

(* store a triple result (tag/iv/fv expression strings) *)
let bind_triple buf (ctx : fctx) id (t, i, fl) =
  match Hashtbl.find_opt ctx.slots id with
  | None ->
      Buffer.add_string buf (Printf.sprintf "let _ = %s in let _ = %s in let _ = %s in\n" t i fl)
  | Some s -> (
      match s.place with
      | PLocal ->
          Buffer.add_string buf
            (Printf.sprintf "let %s = %s in let %s = %s in let %s = %s in\n" (name_t id) t
               (name_i id) i (name_f id) fl)
      | PFrame (k, j) ->
          (* evaluate in tag, iv, fv order (the tag may be a trap) *)
          let qt = fresh ctx "w" and qi = fresh ctx "w" and qf = fresh ctx "w" in
          Buffer.add_string buf
            (Printf.sprintf "let %s = %s in let %s = %s in let %s = %s in\n" qt t qi i qf fl);
          unmemo ctx [ ikey k; ikey (k + 1); fkey j ];
          Buffer.add_string buf
            (Printf.sprintf "Bigarray.Array1.unsafe_set st.istk (ib + %d) (Int64.of_int %s);\n" k
               qt);
          Buffer.add_string buf
            (Printf.sprintf "Bigarray.Array1.unsafe_set st.istk (ib + %d) (%s);\n" (k + 1) qi);
          Buffer.add_string buf (Printf.sprintf "Array.unsafe_set st.fstk (fb + %d) (%s);\n" j qf))

(* convert a value to the representation of a destination slot sty *)
let value_as_sty (ctx : fctx) (v : V.t) : sty -> [ `One of string | `Three of string * string * string ]
    = function
  | SInt -> `One (xint ctx v)
  | SFloat -> `One (xflt ctx v)
  | SPtr -> `One (xptr ctx v)
  | SUnit -> `One "()"
  | SUnk | SBot -> `Three (xtriple ctx v)

let mask_expr w e =
  if w = 64 then e
  else Printf.sprintf "(Int64.logand %s %LdL)" e (Int64.sub (Int64.shift_left 1L w) 1L)

let width_of ty = try T.width ty with _ -> 64

(* Can executing instruction [i] trap or observe state (inputs, outputs,
   memory, allocator)?  Conservative TRUE is always sound — it only forces
   an earlier counter flush. *)
let instr_needs_flush (ctx : fctx) (i : I.t) : bool =
  let vt c v = coerce_traps ctx v c in
  match i.I.kind with
  | I.Ibin (op, a, b) -> (
      vt `Int a || vt `Int b
      || match op with I.SDiv | I.UDiv | I.SRem | I.URem -> true | _ -> false)
  | I.Icmp (_, a, b) -> vt `Int a || vt `Int b
  | I.Fbin (_, a, b) | I.Fcmp (_, a, b) -> vt `Flt a || vt `Flt b
  | I.Fneg a -> vt `Flt a
  | I.Alloca _ | I.Load _ | I.Store _ | I.Call _ -> true
  | I.Gep (base, idxs) -> vt `Ptr base || List.exists (vt `Int) idxs
  | I.Select (c, a, b) ->
      vt `Int c || lookup_traps ctx a || lookup_traps ctx b
  | I.Phi _ -> false
  | I.Cast (c, a) -> (
      match c with
      | I.Trunc | I.ZExt | I.SExt -> vt `Int a
      | I.FPTrunc | I.FPExt | I.FPToUI | I.FPToSI -> vt `Flt a
      | I.UIToFP | I.SIToFP -> vt `Int a
      | I.PtrToInt -> vt `Ptr a
      | I.IntToPtr -> vt `Int a
      | I.Bitcast -> lookup_traps ctx a)
  | I.Freeze a -> lookup_traps ctx a

let emit_ibin buf ctx (i : I.t) op a b =
  let tb = fresh ctx "a" and ta = fresh ctx "a" in
  (* interp evaluates operand coercions right-to-left *)
  Buffer.add_string buf (Printf.sprintf "let %s = %s in\n" tb (xint ctx b));
  Buffer.add_string buf (Printf.sprintf "let %s = %s in\n" ta (xint ctx a));
  let w = width_of i.I.ty in
  let shamt = Printf.sprintf "(Int64.to_int (Int64.logand %s 63L))" tb in
  let dz e = Printf.sprintf "(if %s = 0L then tr \"division by zero\" else %s)" tb e in
  let core =
    match op with
    | I.Add -> Printf.sprintf "(Int64.add %s %s)" ta tb
    | I.Sub -> Printf.sprintf "(Int64.sub %s %s)" ta tb
    | I.Mul -> Printf.sprintf "(Int64.mul %s %s)" ta tb
    | I.SDiv -> dz (Printf.sprintf "(Int64.div %s %s)" ta tb)
    | I.SRem -> dz (Printf.sprintf "(Int64.rem %s %s)" ta tb)
    | I.UDiv -> dz (Printf.sprintf "(Int64.unsigned_div %s %s)" (mask_expr w ta) (mask_expr w tb))
    | I.URem -> dz (Printf.sprintf "(Int64.unsigned_rem %s %s)" (mask_expr w ta) (mask_expr w tb))
    | I.Shl -> Printf.sprintf "(Int64.shift_left %s %s)" ta shamt
    | I.LShr -> Printf.sprintf "(Int64.shift_right_logical %s %s)" (mask_expr w ta) shamt
    | I.AShr -> Printf.sprintf "(Int64.shift_right %s %s)" ta shamt
    | I.And -> Printf.sprintf "(Int64.logand %s %s)" ta tb
    | I.Or -> Printf.sprintf "(Int64.logor %s %s)" ta tb
    | I.Xor -> Printf.sprintf "(Int64.logxor %s %s)" ta tb
  in
  bind_typed buf ctx i.I.id (norm_expr i.I.ty core)

let bias e = Printf.sprintf "(Int64.add %s (-9223372036854775808L))" e

let emit_icmp buf ctx (i : I.t) p a b =
  let tb = fresh ctx "a" and ta = fresh ctx "a" in
  Buffer.add_string buf (Printf.sprintf "let %s = %s in\n" tb (xint ctx b));
  Buffer.add_string buf (Printf.sprintf "let %s = %s in\n" ta (xint ctx a));
  let cmp =
    match p with
    | I.Eq -> Printf.sprintf "%s = %s" ta tb
    | I.Ne -> Printf.sprintf "%s <> %s" ta tb
    | I.Slt -> Printf.sprintf "%s < %s" ta tb
    | I.Sle -> Printf.sprintf "%s <= %s" ta tb
    | I.Sgt -> Printf.sprintf "%s > %s" ta tb
    | I.Sge -> Printf.sprintf "%s >= %s" ta tb
    | I.Ult -> Printf.sprintf "%s < %s" (bias ta) (bias tb)
    | I.Ule -> Printf.sprintf "%s <= %s" (bias ta) (bias tb)
    | I.Ugt -> Printf.sprintf "%s > %s" (bias ta) (bias tb)
    | I.Uge -> Printf.sprintf "%s >= %s" (bias ta) (bias tb)
  in
  bind_typed buf ctx i.I.id (Printf.sprintf "(if %s then 1L else 0L)" cmp)

let emit_fcmp buf ctx (i : I.t) p a b =
  let tb = fresh ctx "a" and ta = fresh ctx "a" in
  Buffer.add_string buf (Printf.sprintf "let %s = %s in\n" tb (xflt ctx b));
  Buffer.add_string buf (Printf.sprintf "let %s = %s in\n" ta (xflt ctx a));
  let op =
    match p with
    | I.Oeq -> "="
    | I.One -> "<>"
    | I.Olt -> "<"
    | I.Ole -> "<="
    | I.Ogt -> ">"
    | I.Oge -> ">="
  in
  bind_typed buf ctx i.I.id (Printf.sprintf "(if %s %s %s then 1L else 0L)" ta op tb)

(* Declared type of a gep base, mirroring Interp's def_types lookup. *)
let gep_base_ty (ctx : fctx) (base : V.t) : T.t =
  match base with
  | V.Var id -> (
      match Hashtbl.find_opt ctx.decl_ty id with Some t -> t | None -> T.Ptr T.I64)
  | V.Global g -> (
      match Hashtbl.find_opt ctx.gty1 g with Some t -> t | None -> T.Ptr T.I64)
  | _ -> T.Ptr T.I64

let emit_gep buf ctx (i : I.t) base idxs =
  (* interp: index coercions first (left to right), then the base *)
  let idx_tmps =
    List.map
      (fun v ->
        let t = fresh ctx "a" in
        Buffer.add_string buf (Printf.sprintf "let %s = %s in\n" t (xint ctx v));
        t)
      idxs
  in
  let tb = fresh ctx "a" in
  Buffer.add_string buf (Printf.sprintf "let %s = %s in\n" tb (xptr ctx base));
  let rec strides ty = function
    | [] -> []
    | _ :: rest ->
        let stride =
          match ty with T.Ptr t | T.Arr (t, _) -> T.size_in_cells t | _ -> 1
        in
        let elem = match ty with T.Ptr t | T.Arr (t, _) -> t | t -> t in
        stride :: strides elem rest
  in
  let ss = strides (gep_base_ty ctx base) idx_tmps in
  let addr =
    List.fold_left2
      (fun acc t s -> Printf.sprintf "%s + (Int64.to_int %s * %d)" acc t s)
      tb idx_tmps ss
  in
  bind_typed buf ctx i.I.id (Printf.sprintf "(%s)" addr)

let emit_copy buf ctx id a =
  let dst_sty =
    match Hashtbl.find_opt ctx.slots id with Some s -> s.sty | None -> SUnk
  in
  match value_as_sty ctx a dst_sty with
  | `One e -> bind_typed buf ctx id e
  | `Three t -> bind_triple buf ctx id t

let emit_cast buf ctx (i : I.t) c a =
  match c with
  | I.Trunc | I.ZExt | I.SExt -> bind_typed buf ctx i.I.id (norm_expr i.I.ty (xint ctx a))
  | I.FPTrunc | I.FPExt -> bind_typed buf ctx i.I.id (xflt ctx a)
  | I.FPToUI | I.FPToSI ->
      let q = fresh ctx "a" in
      Buffer.add_string buf (Printf.sprintf "let %s = %s in\n" q (xflt ctx a));
      bind_typed buf ctx i.I.id
        (Printf.sprintf "(if %s <> %s then 0L else %s)" q q
           (norm_expr i.I.ty (Printf.sprintf "(Int64.of_float %s)" q)))
  | I.UIToFP | I.SIToFP ->
      bind_typed buf ctx i.I.id (Printf.sprintf "(Int64.to_float %s)" (xint ctx a))
  | I.PtrToInt -> bind_typed buf ctx i.I.id (Printf.sprintf "(Int64.of_int %s)" (xptr ctx a))
  | I.IntToPtr -> bind_typed buf ctx i.I.id (Printf.sprintf "(Int64.to_int %s)" (xint ctx a))
  | I.Bitcast -> emit_copy buf ctx i.I.id a

let emit_select buf ctx (i : I.t) c a b =
  let tc = fresh ctx "a" in
  Buffer.add_string buf (Printf.sprintf "let %s = %s <> 0L in\n" tc (xint ctx c));
  let dst_sty =
    match Hashtbl.find_opt ctx.slots i.I.id with Some s -> s.sty | None -> SUnk
  in
  match (value_as_sty ctx a dst_sty, value_as_sty ctx b dst_sty) with
  | `One ea, `One eb ->
      bind_typed buf ctx i.I.id (Printf.sprintf "(if %s then %s else %s)" tc ea eb)
  | `Three (at, ai, af), `Three (bt, bi, bf) ->
      bind_triple buf ctx i.I.id
        ( Printf.sprintf "(if %s then %s else %s)" tc at bt,
          Printf.sprintf "(if %s then %s else %s)" tc ai bi,
          Printf.sprintf "(if %s then %s else %s)" tc af bf )
  | _ -> assert false

let emit_load buf ctx (i : I.t) p =
  let ta = fresh ctx "a" in
  Buffer.add_string buf (Printf.sprintf "let %s = %s in\n" ta (xptr ctx p));
  Buffer.add_string buf
    (* single-branch bounds check: sign bit set iff a < 0 or a > brk-1
       (a < 0 dominates any overflow of brk-1-a) *)
    (Printf.sprintf "if %s lor (st.brk - 1 - %s) < 0 then oobl %s;\n" ta ta ta);
  (* the float plane is read only under its tag: a non-float cell's mf
     entry is stale garbage no consumer may observe (they all dispatch on
     the tag first), so substituting 0. is invisible and skips a cache-line
     touch on the 8MB plane.  The int plane is the common case — read it
     unconditionally rather than pay a branch. *)
  let tg = fresh ctx "a" in
  Buffer.add_string buf
    (Printf.sprintf "let %s = Char.code (Bytes.unsafe_get st.mt %s) in\n" tg ta);
  bind_triple buf ctx i.I.id
    ( tg,
      Printf.sprintf "(Bigarray.Array1.unsafe_get st.mi %s)" ta,
      Printf.sprintf "(if %s = 1 then Array.unsafe_get st.mf %s else 0.)" tg ta )

let emit_store buf ctx (v : V.t) (p : V.t) =
  (* interp evaluates [lookup v] before [as_ptr (lookup p)] *)
  let sty =
    match vinfo ctx v with
    | KVar (_, s) -> s.sty
    | KConstI _ | KUndef -> SInt
    | KConstF _ -> SFloat
    | KGlobal _ -> SPtr
    | KUnknownGlobal _ | KUnsetVar _ -> SUnk (* triple read carries the trap *)
  in
  let write_tag ta t =
    Buffer.add_string buf (Printf.sprintf "Bytes.unsafe_set st.mt %s '\\%03d';\n" ta t)
  in
  match sty with
  | SInt | SPtr | SFloat | SUnit ->
      let comp =
        match sty with
        | SInt -> `I (xint ctx v)
        | SPtr -> `P (xptr ctx v)
        | SFloat -> `F (xflt ctx v)
        | _ -> `U
      in
      let tv = fresh ctx "a" in
      (match comp with
      | `I e | `P e -> Buffer.add_string buf (Printf.sprintf "let %s = %s in\n" tv e)
      | `F e -> Buffer.add_string buf (Printf.sprintf "let %s = %s in\n" tv e)
      | `U -> ());
      let ta = fresh ctx "a" in
      Buffer.add_string buf (Printf.sprintf "let %s = %s in\n" ta (xptr ctx p));
      Buffer.add_string buf
        (Printf.sprintf "if %s lor (st.brk - 1 - %s) < 0 then oobs %s;\n" ta ta ta);
      (match comp with
      | `I _ ->
          write_tag ta 0;
          Buffer.add_string buf
            (Printf.sprintf "Bigarray.Array1.unsafe_set st.mi %s %s;\n" ta tv)
      | `P _ ->
          write_tag ta 2;
          Buffer.add_string buf
            (Printf.sprintf "Bigarray.Array1.unsafe_set st.mi %s (Int64.of_int %s);\n" ta tv)
      | `F _ ->
          write_tag ta 1;
          Buffer.add_string buf (Printf.sprintf "Array.unsafe_set st.mf %s %s;\n" ta tv)
      | `U -> write_tag ta 3)
  | _ ->
      let t, iv, fv = xtriple ctx v in
      let qt = fresh ctx "a" and qi = fresh ctx "a" and qf = fresh ctx "a" in
      Buffer.add_string buf
        (Printf.sprintf "let %s = %s in let %s = %s in let %s = %s in\n" qt t qi iv qf fv);
      let ta = fresh ctx "a" in
      Buffer.add_string buf (Printf.sprintf "let %s = %s in\n" ta (xptr ctx p));
      Buffer.add_string buf
        (Printf.sprintf "if %s lor (st.brk - 1 - %s) < 0 then oobs %s;\n" ta ta ta);
      Buffer.add_string buf
        (Printf.sprintf "Bytes.unsafe_set st.mt %s (Char.unsafe_chr %s);\n" ta qt);
      Buffer.add_string buf (Printf.sprintf "Bigarray.Array1.unsafe_set st.mi %s %s;\n" ta qi);
      Buffer.add_string buf (Printf.sprintf "Array.unsafe_set st.mf %s %s;\n" ta qf)

let emit_call buf ctx (i : I.t) callee (args : V.t list) =
  (* interp: List.map lookup args (left to right), then eval_call *)
  let fire_lookup_traps () =
    List.iter
      (fun v ->
        if lookup_traps ctx v then
          let t, _, _ = xtriple ctx v in
          Buffer.add_string buf (Printf.sprintf "let _ = %s in\n" t))
      args
  in
  let intrinsic = intrinsic_result callee in
  match intrinsic with
  | Some _ -> (
      fire_lookup_traps ();
      match (callee, args) with
      | "read_int", _ -> bind_typed buf ctx i.I.id "(rd_i st)"
      | "read_float", _ -> bind_typed buf ctx i.I.id "(rd_f st)"
      | "print_int", [ v ] ->
          Buffer.add_string buf (Printf.sprintf "st.orev <- %s :: st.orev;\n" (xint ctx v));
          bind_typed buf ctx i.I.id "()"
      | "print_int", _ -> Buffer.add_string buf (trap_e "print_int arity" ^ ";\n")
      | "print_float", [ v ] ->
          Buffer.add_string buf (Printf.sprintf "st.frev <- %s :: st.frev;\n" (xflt ctx v));
          bind_typed buf ctx i.I.id "()"
      | "print_float", _ -> Buffer.add_string buf (trap_e "print_float arity" ^ ";\n")
      | "abs", [ v ] ->
          let q = fresh ctx "a" in
          Buffer.add_string buf (Printf.sprintf "let %s = %s in\n" q (xint ctx v));
          bind_typed buf ctx i.I.id
            (Printf.sprintf "(if %s >= 0L then %s else Int64.neg %s)" q q q)
      | "abs", _ -> Buffer.add_string buf (trap_e "abs arity" ^ ";\n")
      | ("min" | "max"), [ a; b ] ->
          let tb = fresh ctx "a" and ta = fresh ctx "a" in
          (* Stdlib.min/max evaluate [as_int] right-to-left *)
          Buffer.add_string buf (Printf.sprintf "let %s = %s in\n" tb (xint ctx b));
          Buffer.add_string buf (Printf.sprintf "let %s = %s in\n" ta (xint ctx a));
          let op = if callee = "min" then "<=" else ">=" in
          bind_typed buf ctx i.I.id
            (Printf.sprintf "(if %s %s %s then %s else %s)" ta op tb ta tb)
      | "min", _ -> Buffer.add_string buf (trap_e "min arity" ^ ";\n")
      | "max", _ -> Buffer.add_string buf (trap_e "max arity" ^ ";\n")
      | _ -> assert false)
  | None -> (
      match Hashtbl.find_opt ctx.fun_ix callee with
      | None ->
          fire_lookup_traps ();
          Buffer.add_string buf (trap_e ("call to unknown function " ^ callee) ^ ";\n")
      | Some k when ctx.fun_arity.(k) <> List.length args ->
          fire_lookup_traps ();
          Buffer.add_string buf
            (trap_e
               (Printf.sprintf "arity mismatch calling %s: %d args for %d params" callee
                  (List.length args) ctx.fun_arity.(k))
            ^ ";\n")
      | Some k ->
          let arg_tmps =
            List.map
              (fun v ->
                let t, iv, fv = xtriple ctx v in
                let qt = fresh ctx "a" and qi = fresh ctx "a" and qf = fresh ctx "a" in
                Buffer.add_string buf
                  (Printf.sprintf "let %s = %s in let %s = %s in let %s = %s in\n" qt t qi iv
                     qf fv);
                (qt, qi, qf))
              args
          in
          (* caller writes the argument triples into the callee's parameter
             slots, which sit at the base of its still-unclaimed frame
             ([st.isp + 2p] / [st.fsp + p]), after pre-growing the stacks
             for the callee's whole frame (so the wrapper checks nothing).
             No per-call boxing: every component crosses through an unboxed
             stack cell, the counters ride along as plain int arguments, and
             the result comes back as the int tag plus the st.ri/rf cells
             rather than an allocated tuple. *)
          if ctx.fun_ni.(k) > 0 then
            Buffer.add_string buf
              (Printf.sprintf
                 "if st.isp + %d > Bigarray.Array1.dim st.istk then grow_i st (st.isp + %d);\n"
                 ctx.fun_ni.(k) ctx.fun_ni.(k));
          if ctx.fun_nf.(k) > 0 then
            Buffer.add_string buf
              (Printf.sprintf
                 "if st.fsp + %d > Array.length st.fstk then grow_f st (st.fsp + %d);\n"
                 ctx.fun_nf.(k) ctx.fun_nf.(k));
          List.iteri
            (fun p (qt, qi, qf) ->
              Buffer.add_string buf
                (Printf.sprintf
                   "Bigarray.Array1.unsafe_set st.istk (st.isp + %d) (Int64.of_int %s);\n"
                   (2 * p) qt);
              Buffer.add_string buf
                (Printf.sprintf "Bigarray.Array1.unsafe_set st.istk (st.isp + %d) %s;\n"
                   ((2 * p) + 1) qi);
              Buffer.add_string buf
                (Printf.sprintf "Array.unsafe_set st.fstk (st.fsp + %d) %s;\n" p qf))
            arg_tmps;
          let rt = fresh ctx "r" in
          Buffer.add_string buf
            (Printf.sprintf "let %s = f%d_%d st stp cst fl in\n" rt ctx.mindex k);
          Buffer.add_string buf "let stp = st.steps in\nlet cst = st.cost in\n";
          if I.defines i then
            bind_triple buf ctx i.I.id
              ( rt,
                "(Bigarray.Array1.unsafe_get st.ri 0)",
                "(Array.unsafe_get st.rf 0)" )
          else Buffer.add_string buf (Printf.sprintf "let _ = %s in\n" rt))

let emit_instr buf ctx (i : I.t) =
  match i.I.kind with
  | I.Phi _ -> ()
  | I.Ibin (op, a, b) -> emit_ibin buf ctx i op a b
  | I.Fbin (op, a, b) ->
      let tb = fresh ctx "a" and ta = fresh ctx "a" in
      Buffer.add_string buf (Printf.sprintf "let %s = %s in\n" tb (xflt ctx b));
      Buffer.add_string buf (Printf.sprintf "let %s = %s in\n" ta (xflt ctx a));
      let e =
        match op with
        | I.FAdd -> Printf.sprintf "(%s +. %s)" ta tb
        | I.FSub -> Printf.sprintf "(%s -. %s)" ta tb
        | I.FMul -> Printf.sprintf "(%s *. %s)" ta tb
        | I.FDiv -> Printf.sprintf "(%s /. %s)" ta tb
        | I.FRem -> Printf.sprintf "(Float.rem %s %s)" ta tb
      in
      bind_typed buf ctx i.I.id e
  | I.Fneg a -> bind_typed buf ctx i.I.id (Printf.sprintf "(-. %s)" (xflt ctx a))
  | I.Icmp (p, a, b) -> emit_icmp buf ctx i p a b
  | I.Fcmp (p, a, b) -> emit_fcmp buf ctx i p a b
  | I.Alloca ty ->
      let cells = T.size_in_cells ty in
      if cells <= 4 then begin
        (* unroll the zeroing: Bytes.fill + the mi loop cost more than the
           handful of stores for the small allocas O0-style code leans on *)
        let ab = fresh ctx "a" in
        let zs = Buffer.create 64 in
        for c = 0 to cells - 1 do
          Buffer.add_string zs
            (Printf.sprintf
               "Bytes.unsafe_set st.mt (%s + %d) '\\000'; Bigarray.Array1.unsafe_set st.mi \
                (%s + %d) 0L; "
               ab c ab c)
        done;
        bind_typed buf ctx i.I.id
          (Printf.sprintf
             "(let %s = st.brk in if %s + %d >= mem_size then tr \"out of memory\"; st.brk <- \
              %s + %d; %s%s)"
             ab ab cells ab cells (Buffer.contents zs) ab)
      end
      else bind_typed buf ctx i.I.id (Printf.sprintf "(alloc st %d)" cells)
  | I.Load p -> emit_load buf ctx i p
  | I.Store (v, p) -> emit_store buf ctx v p
  | I.Gep (base, idxs) -> emit_gep buf ctx i base idxs
  | I.Select (c, a, b) -> emit_select buf ctx i c a b
  | I.Call (callee, args) -> emit_call buf ctx i callee args
  | I.Cast (c, a) -> emit_cast buf ctx i c a
  | I.Freeze a -> emit_copy buf ctx i.I.id a

(* -- edges ---------------------------------------------------------- *)

let block_phis (b : B.t) =
  List.filter_map
    (fun (i : I.t) -> match i.I.kind with I.Phi inc -> Some (i.I.id, inc) | _ -> None)
    b.B.instrs

(* Jump from [pred] (by label) to [target] (a label), performing the phi
   parallel copies of the target block for this edge.  The terminator's
   charge has already been flushed. *)
let emit_edge buf ctx (pred : string) (target : string) =
  match Hashtbl.find_opt ctx.label_ix target with
  | None -> Buffer.add_string buf (trap_e ("jump to unknown block " ^ target) ^ "\n")
  | Some ti ->
      let phis = block_phis ctx.blocks.(ti) in
      if phis = [] then Buffer.add_string buf (Printf.sprintf "%s st stp cst fl\n" (bname ctx.mindex ctx.findex ti))
      else begin
        (* resolve each phi's incoming value for this edge, in order *)
        let resolved =
          List.map
            (fun (id, inc) ->
              (id, List.assoc_opt pred (List.map (fun (v, l) -> (l, v)) inc)))
            phis
        in
        let rec first_miss n = function
          | [] -> None
          | (id, None) :: _ -> Some (n, id)
          | (_, Some _) :: rest -> first_miss (n + 1) rest
        in
        let k_charged, miss =
          match first_miss 0 resolved with
          | Some (n, id) -> (n + 1, Some id)
          | None -> (List.length resolved, None)
        in
        let live = List.filteri (fun n _ -> n < k_charged) resolved in
        let any_trap =
          List.exists
            (fun (_, v) -> match v with Some v -> lookup_traps ctx v | None -> false)
            live
        in
        let charge_one () =
          Buffer.add_string buf "let stp = stp + 1 in\nif stp > fl then raise F;\n"
        in
        let charge_n n =
          if n > 0 then
            Buffer.add_string buf
              (Printf.sprintf "let stp = stp + %d in\nif stp > fl then raise F;\n" n)
        in
        (* Interp charges each phi, then resolves its edge value; a missing
           edge or a trapping lookup aborts mid-list.  When no lookup can
           trap, batching every charge up front is observationally
           identical (lookups are pure, assignment happens after). *)
        let slot_sty id =
          match Hashtbl.find_opt ctx.slots id with Some s -> s.sty | None -> SUnk
        in
        let copies = ref [] in
        if any_trap then
          List.iter
            (fun (id, v) ->
              charge_one ();
              match v with
              | None ->
                  Buffer.add_string buf
                    (trap_e (Printf.sprintf "phi %%%d misses edge from %s" id pred) ^ ";\n")
              | Some v -> (
                  match value_as_sty ctx v (slot_sty id) with
                  | `One e ->
                      let q = fresh ctx "c" in
                      Buffer.add_string buf (Printf.sprintf "let %s = %s in\n" q e);
                      copies := (id, `One q) :: !copies
                  | `Three (t, iv, fv) ->
                      let qt = fresh ctx "c" and qi = fresh ctx "c" and qf = fresh ctx "c" in
                      Buffer.add_string buf
                        (Printf.sprintf "let %s = %s in let %s = %s in let %s = %s in\n" qt t
                           qi iv qf fv);
                      copies := (id, `Three (qt, qi, qf)) :: !copies))
            live
        else begin
          charge_n k_charged;
          (match miss with
          | Some id ->
              Buffer.add_string buf
                (trap_e (Printf.sprintf "phi %%%d misses edge from %s" id pred) ^ ";\n")
          | None -> ());
          List.iter
            (fun (id, v) ->
              match v with
              | None -> ()
              | Some v -> (
                  match value_as_sty ctx v (slot_sty id) with
                  | `One e ->
                      let q = fresh ctx "c" in
                      Buffer.add_string buf (Printf.sprintf "let %s = %s in\n" q e);
                      copies := (id, `One q) :: !copies
                  | `Three (t, iv, fv) ->
                      let qt = fresh ctx "c" and qi = fresh ctx "c" and qf = fresh ctx "c" in
                      Buffer.add_string buf
                        (Printf.sprintf "let %s = %s in let %s = %s in let %s = %s in\n" qt t
                           qi iv qf fv);
                      copies := (id, `Three (qt, qi, qf)) :: !copies))
            live
        end;
        if miss <> None then
          (* unreachable after the trap, but keep the expression well-typed *)
          Buffer.add_string buf (Printf.sprintf "%s st stp cst fl\n" (bname ctx.mindex ctx.findex ti))
        else begin
          (* all reads done; now the simultaneous writes *)
          List.iter
            (fun (id, q) ->
              let place =
                match Hashtbl.find_opt ctx.slots id with
                | Some s -> s.place
                | None -> PLocal
              in
              match (q, place) with
              | `One q, _ -> bind_typed buf ctx id q
              | `Three (qt, qi, qf), PFrame (k, j) ->
                  unmemo ctx [ ikey k; ikey (k + 1); fkey j ];
                  Buffer.add_string buf
                    (Printf.sprintf
                       "Bigarray.Array1.unsafe_set st.istk (ib + %d) (Int64.of_int %s);\n" k qt);
                  Buffer.add_string buf
                    (Printf.sprintf "Bigarray.Array1.unsafe_set st.istk (ib + %d) %s;\n" (k + 1)
                       qi);
                  Buffer.add_string buf
                    (Printf.sprintf "Array.unsafe_set st.fstk (fb + %d) %s;\n" j qf)
              | `Three _, _ -> () (* value-less phi: nothing to store *))
            (List.rev !copies);
          Buffer.add_string buf (Printf.sprintf "%s st stp cst fl\n" (bname ctx.mindex ctx.findex ti))
        end
      end

let emit_terminator buf ctx (b : B.t) (p : pending) =
  (match b.B.term with
  | I.Switch (_, _, cases) ->
      charge p (I.opcode_of_terminator b.B.term);
      p.pcost <- p.pcost + (List.length cases / 2)
  | t -> charge p (I.opcode_of_terminator t));
  flush buf p;
  match b.B.term with
  | I.Ret None ->
      Buffer.add_string buf
        "st.steps <- stp; st.cost <- cst;\n\
         Bigarray.Array1.unsafe_set st.ri 0 0L; Array.unsafe_set st.rf 0 0.;\n\
         3\n"
  | I.Ret (Some v) -> (
      match xtriple ctx v with
      | t, iv, fv ->
          (* same evaluation order as the tuple this used to build: fv, iv, t *)
          let qf = fresh ctx "a" and qi = fresh ctx "a" and qt = fresh ctx "a" in
          Buffer.add_string buf
            (Printf.sprintf "let %s = %s in let %s = %s in let %s = %s in\n" qf fv qi iv qt t);
          Buffer.add_string buf
            (Printf.sprintf
               "st.steps <- stp; st.cost <- cst;\n\
                Bigarray.Array1.unsafe_set st.ri 0 %s; Array.unsafe_set st.rf 0 %s;\n\
                %s\n"
               qi qf qt))
  | I.Br l -> emit_edge buf ctx b.B.label l
  | I.CondBr (c, t, e) ->
      let q = fresh ctx "a" in
      Buffer.add_string buf (Printf.sprintf "let %s = %s in\n" q (xint ctx c));
      (* memo locals bound inside an arm go out of scope with it *)
      let saved = ctx.memo in
      Buffer.add_string buf (Printf.sprintf "if %s <> 0L then begin\n" q);
      emit_edge buf ctx b.B.label t;
      ctx.memo <- saved;
      Buffer.add_string buf "end else begin\n";
      emit_edge buf ctx b.B.label e;
      ctx.memo <- saved;
      Buffer.add_string buf "end\n"
  | I.Switch (v, d, cases) ->
      let q = fresh ctx "a" in
      Buffer.add_string buf (Printf.sprintf "let %s = %s in\n" q (xint ctx v));
      let saved = ctx.memo in
      List.iter
        (fun (k, l) ->
          Buffer.add_string buf (Printf.sprintf "if %s = %LdL then begin\n" q k);
          emit_edge buf ctx b.B.label l;
          ctx.memo <- saved;
          Buffer.add_string buf "end else\n")
        cases;
      Buffer.add_string buf "begin\n";
      emit_edge buf ctx b.B.label d;
      ctx.memo <- saved;
      Buffer.add_string buf "end\n"
  | I.Unreachable -> Buffer.add_string buf (trap_e "executed unreachable" ^ "\n")

(* Each basic block is a top-level function of [st] alone, so jumping
   between blocks is a known 1-argument tail call and entering a function
   allocates no closures.  The frame bases are recomputed from the stack
   pointers: between the wrapper's bump and restore, [st.isp] stays at
   [base + ni] (callees restore it on exit), so [ib = st.isp - ni] holds at
   every block entry; likewise [fb]. *)
let emit_block buf ctx ~first (bi : int) =
  let b = ctx.blocks.(bi) in
  ctx.out <- buf;
  ctx.memo <- [];
  Buffer.add_string buf
    (Printf.sprintf "%s %s st stp cst fl =\n"
       (if first then "let rec" else "and")
       (bname ctx.mindex ctx.findex bi));
  if ctx.ni > 0 then
    Buffer.add_string buf (Printf.sprintf "let ib = st.isp - %d in\n" ctx.ni);
  if ctx.nf > 0 then
    Buffer.add_string buf (Printf.sprintf "let fb = st.fsp - %d in\n" ctx.nf);
  let p = { psteps = 0; pcost = 0 } in
  List.iter
    (fun (i : I.t) ->
      match i.I.kind with
      | I.Phi _ -> ()
      | _ ->
          if instr_needs_flush ctx i then begin
            charge p (I.opcode i);
            flush buf p;
            emit_instr buf ctx i
          end
          else begin
            emit_instr buf ctx i;
            charge p (I.opcode i)
          end)
    b.B.instrs;
  emit_terminator buf ctx b p

(* -- whole functions ------------------------------------------------ *)

let layout_function (mindex : int) (findex : int) (f : F.t)
    (gaddr : (string, int) Hashtbl.t) (gty1 : (string, T.t) Hashtbl.t)
    (fun_ix : (string, int) Hashtbl.t) (fun_arity : int array)
    (fun_ni : int array) (fun_nf : int array) : fctx =
  let blocks = Array.of_list f.F.blocks in
  let label_ix = Hashtbl.create 16 in
  Array.iteri (fun ix (b : B.t) -> Hashtbl.replace label_ix b.B.label ix) blocks;
  let stys = analyze_function f in
  let decl_ty = Hashtbl.create 64 in
  List.iter (fun (id, t) -> Hashtbl.replace decl_ty id t) f.F.params;
  Array.iter
    (fun (b : B.t) ->
      List.iter
        (fun (i : I.t) -> if I.defines i then Hashtbl.replace decl_ty i.I.id i.I.ty)
        b.B.instrs)
    blocks;
  (* def site (block index, position) per id; params live before the entry *)
  let def_site = Hashtbl.create 64 in
  List.iter (fun (id, _) -> Hashtbl.replace def_site id (0, -1)) f.F.params;
  Array.iteri
    (fun bi (b : B.t) ->
      List.iteri
        (fun pos (i : I.t) ->
          if I.defines i && not (Hashtbl.mem def_site i.I.id && List.mem_assoc i.I.id f.F.params)
          then Hashtbl.replace def_site i.I.id (bi, pos))
        b.B.instrs)
    blocks;
  (* use sites: (block index, position); phi incoming (v, l) is a use at the
     end of predecessor l; terminator operands are uses at the end *)
  let uses : (int, (int * int) list ref) Hashtbl.t = Hashtbl.create 64 in
  let add_use id site =
    match Hashtbl.find_opt uses id with
    | Some l -> l := site :: !l
    | None -> Hashtbl.add uses id (ref [ site ])
  in
  let endpos = max_int in
  Array.iteri
    (fun bi (b : B.t) ->
      List.iteri
        (fun pos (i : I.t) ->
          match i.I.kind with
          | I.Phi inc ->
              List.iter
                (fun (v, l) ->
                  match v with
                  | V.Var id -> (
                      match Hashtbl.find_opt label_ix l with
                      | Some pi -> add_use id (pi, endpos)
                      | None -> ())
                  | _ -> ())
                inc
          | _ ->
              List.iter
                (fun v -> match v with V.Var id -> add_use id (bi, pos) | _ -> ())
                (I.operands i))
        b.B.instrs;
      List.iter
        (fun v -> match v with V.Var id -> add_use id (bi, endpos) | _ -> ())
        (I.terminator_operands b.B.term))
    blocks;
  let is_phi_def = Hashtbl.create 16 in
  Array.iter
    (fun (b : B.t) ->
      List.iter
        (fun (i : I.t) ->
          match i.I.kind with I.Phi _ -> Hashtbl.replace is_phi_def i.I.id () | _ -> ())
        b.B.instrs)
    blocks;
  let slots = Hashtbl.create 64 in
  let ni = ref 0 and nf = ref 0 in
  let param_ids = List.map fst f.F.params in
  (* parameters are visible from every block, so they always live in frame
     slots (SUnk triples); the wrapper spills them before the entry runs *)
  List.iter
    (fun id ->
      let k = !ni in
      ni := !ni + 2;
      let j = !nf in
      nf := !nf + 1;
      Hashtbl.replace slots id
        { sty = SUnk; place = PFrame (k, j); def_block = 0; def_pos = -1 })
    param_ids;
  Array.iteri
    (fun bi (b : B.t) ->
      List.iteri
        (fun pos (i : I.t) ->
          if I.defines i && not (List.mem i.I.id param_ids) then begin
            let sty = try Hashtbl.find stys i.I.id with Not_found -> SUnk in
            let (dbi, dpos) =
              try Hashtbl.find def_site i.I.id with Not_found -> (bi, pos)
            in
            (* only place each id once (first definition wins, like def_site) *)
            if not (Hashtbl.mem slots i.I.id) then begin
              let cross =
                Hashtbl.mem is_phi_def i.I.id
                || List.exists
                     (fun (ubi, upos) -> ubi <> dbi || upos <= dpos)
                     (match Hashtbl.find_opt uses i.I.id with Some l -> !l | None -> [])
              in
              let place =
                if not cross then PLocal
                else
                  match sty with
                  | SInt | SPtr ->
                      let k = !ni in
                      ni := !ni + 1;
                      PFrame (k, -1)
                  | SFloat ->
                      let j = !nf in
                      nf := !nf + 1;
                      PFrame (-1, j)
                  | SUnit -> PLocal
                  | SUnk | SBot ->
                      let k = !ni in
                      ni := !ni + 2;
                      let j = !nf in
                      nf := !nf + 1;
                      PFrame (k, j)
              in
              Hashtbl.replace slots i.I.id
                { sty; place; def_block = dbi; def_pos = dpos }
            end
          end)
        b.B.instrs)
    blocks;
  fun_ni.(findex) <- !ni;
  fun_nf.(findex) <- !nf;
  {
    f;
    fname = f.F.name;
    findex;
    mindex;
    blocks;
    label_ix;
    slots;
    decl_ty;
    ni = !ni;
    nf = !nf;
    gaddr;
    gty1;
    fun_ix;
    fun_arity;
    fun_ni;
    fun_nf;
    gensym = 0;
    out = Buffer.create 16;
    memo = [];
  }

(* The function wrapper: carve the frame out of the slot stacks, spill the
   parameter triples into it, run the entry block, restore the stack
   pointers.  [first] marks the very first binding of the whole module's
   [let rec] chain (the block functions and wrappers of every function are
   one mutually recursive group). *)
let emit_function buf (ctx : fctx) ~(first : bool ref) =
  let lead () =
    let s = if !first then "let rec" else "and" in
    first := false;
    s
  in
  if ctx.blocks <> [||] then
    Array.iteri (fun bi _ -> emit_block buf ctx ~first:(lead () = "let rec") bi) ctx.blocks;
  Buffer.add_string buf
    (Printf.sprintf "%s f%d_%d st stp cst fl =\n" (lead ()) ctx.mindex ctx.findex);
  if ctx.blocks = [||] then
    Buffer.add_string buf
      (Printf.sprintf "invalid_arg %s\n"
         (quoted ("Func.entry: function " ^ ctx.fname ^ " has no blocks")))
  else begin
    (* the caller pre-grew both stacks for this whole frame (fun_ni/fun_nf),
       so claiming it is just the pointer bumps *)
    if ctx.ni > 0 then
      Buffer.add_string buf
        (Printf.sprintf "let ib = st.isp in\nst.isp <- ib + %d;\n" ctx.ni);
    if ctx.nf > 0 then
      Buffer.add_string buf
        (Printf.sprintf "let fb = st.fsp in\nst.fsp <- fb + %d;\n" ctx.nf);
    (* parameter triples are already in their frame slots: the caller wrote
       them at [st.isp + 2p] / [st.fsp + p] before the call, which is
       exactly where layout placed them (params claim the first slots) *)
    (* entering the function runs the entry block with no incoming edge:
       a phi there charges once, then traps *)
    let entry_has_phi = block_phis ctx.blocks.(0) <> [] in
    let body =
      if entry_has_phi then
        "let stp = stp + 1 in\nif stp > fl then raise F;\ntr \"phi in entry block\"\n"
      else Printf.sprintf "%s st stp cst fl\n" (bname ctx.mindex ctx.findex 0)
    in
    if ctx.ni > 0 || ctx.nf > 0 then begin
      Buffer.add_string buf (Printf.sprintf "let res = begin\n%send in\n" body);
      if ctx.ni > 0 then Buffer.add_string buf "st.isp <- ib;\n";
      if ctx.nf > 0 then Buffer.add_string buf "st.fsp <- fb;\n";
      Buffer.add_string buf "res\n"
    end
    else Buffer.add_string buf body
  end

(* -- whole modules -------------------------------------------------- *)

let emit_module buf (mindex : int) (m : M.t) =
  let gaddr = Hashtbl.create 8 and gty1 = Hashtbl.create 8 in
  let overflow = ref None in
  let gtotal = ref 0 in
  List.iter
    (fun (g : M.global) ->
      let cells = max 1 (T.size_in_cells g.M.gty) in
      if !overflow = None then begin
        if !gtotal + cells >= mem_size then overflow := Some ()
        else begin
          Hashtbl.replace gaddr g.M.gname !gtotal;
          if not (Hashtbl.mem gty1 g.M.gname) then Hashtbl.replace gty1 g.M.gname g.M.gty;
          gtotal := !gtotal + cells
        end
      end)
    m.M.globals;
  let funcs = Array.of_list m.M.funcs in
  let fun_ix = Hashtbl.create 16 in
  Array.iteri
    (fun ix (f : F.t) ->
      if not (Hashtbl.mem fun_ix f.F.name) then Hashtbl.replace fun_ix f.F.name ix)
    funcs;
  let fun_arity = Array.map (fun (f : F.t) -> List.length f.F.params) funcs in
  (* lay out every function before emitting any: emit_call pre-grows the
     stacks for the callee's whole frame, so it needs every frame size *)
  let fun_ni = Array.make (Array.length funcs) 0 in
  let fun_nf = Array.make (Array.length funcs) 0 in
  let ctxs =
    Array.mapi
      (fun ix f -> layout_function mindex ix f gaddr gty1 fun_ix fun_arity fun_ni fun_nf)
      funcs
  in
  let first = ref true in
  Array.iter (fun ctx -> emit_function buf ctx ~first) ctxs;
  if funcs = [||] then Buffer.add_string buf (Printf.sprintf "let _unused%d = ()\n" mindex);
  (* the module entry: allocate + initialise globals, call main *)
  Buffer.add_string buf (Printf.sprintf "let run%d st =\n" mindex);
  (match !overflow with
  | Some () -> Buffer.add_string buf "tr \"out of memory\"\n"
  | None -> begin
      if !gtotal > 0 then begin
        Buffer.add_string buf (Printf.sprintf "Bytes.fill st.mt 0 %d '\\000';\n" !gtotal);
        Buffer.add_string buf
          (Printf.sprintf
             "for k = 0 to %d do Bigarray.Array1.unsafe_set st.mi k 0L done;\n" (!gtotal - 1));
        Buffer.add_string buf (Printf.sprintf "st.brk <- %d;\n" !gtotal)
      end;
      (* non-zero initialiser words (cells are already zeroed) *)
      let base = ref 0 in
      List.iter
        (fun (g : M.global) ->
          let cells = max 1 (T.size_in_cells g.M.gty) in
          Array.iteri
            (fun i v ->
              if i < cells && v <> 0L then
                Buffer.add_string buf
                  (Printf.sprintf "Bigarray.Array1.unsafe_set st.mi %d %LdL;\n" (!base + i) v))
            g.M.ginit;
          base := !base + cells)
        m.M.globals;
      match Hashtbl.find_opt fun_ix "main" with
      | None ->
          Buffer.add_string buf
            (Printf.sprintf "invalid_arg %s\n" (quoted "Irmod.find_func: no function main"))
      | Some k ->
          let ps = funcs.(k).F.params in
          if fun_ni.(k) > 0 then
            Buffer.add_string buf
              (Printf.sprintf
                 "if st.isp + %d > Bigarray.Array1.dim st.istk then grow_i st (st.isp + %d);\n"
                 fun_ni.(k) fun_ni.(k));
          if fun_nf.(k) > 0 then
            Buffer.add_string buf
              (Printf.sprintf
                 "if st.fsp + %d > Array.length st.fstk then grow_f st (st.fsp + %d);\n"
                 fun_nf.(k) fun_nf.(k));
          List.iteri
            (fun p (_, ty) ->
              let tag = match ty with T.F64 -> 1 | _ -> 0 in
              Buffer.add_string buf
                (Printf.sprintf "Bigarray.Array1.unsafe_set st.istk (st.isp + %d) %dL;\n"
                   (2 * p) tag);
              Buffer.add_string buf
                (Printf.sprintf "Bigarray.Array1.unsafe_set st.istk (st.isp + %d) 0L;\n"
                   ((2 * p) + 1));
              Buffer.add_string buf
                (Printf.sprintf "Array.unsafe_set st.fstk (st.fsp + %d) 0.;\n" p))
            ps;
          Buffer.add_string buf
            (Printf.sprintf "let rt = f%d_%d st st.steps st.cost st.fuel in\n" mindex k);
          Buffer.add_string buf
            "(rt, Bigarray.Array1.unsafe_get st.ri 0, Array.unsafe_get st.rf 0)\n"
    end)

let prelude =
  {ocaml|(* generated by yali's native tier -- do not edit *)
[@@@warning "-a"]

exception T of string
exception F

let tr msg = raise (T msg)

type ba = (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t

type st = {
  mt : Bytes.t;                 (* memory cell tags: 0 int, 1 float, 2 ptr, 3 unit *)
  mi : ba;                      (* memory int/pointer payloads *)
  mf : float array;             (* memory float payloads *)
  mutable brk : int;
  mutable istk : ba;            (* int64 slot stack (tags and payloads) *)
  mutable fstk : float array;   (* float slot stack *)
  mutable isp : int;
  mutable fsp : int;
  mutable input : int64 list;
  mutable orev : int64 list;
  mutable frev : float list;
  mutable steps : int;
  mutable cost : int;
  mutable fuel : int;
  ri : ba;                      (* call return slot: int payload (1 cell) *)
  rf : float array;             (* call return slot: float payload (1 cell) *)
}

let mem_size = 1048576

let fresh_st () =
  {
    mt = Bytes.make mem_size '\000';
    mi = Bigarray.Array1.create Bigarray.int64 Bigarray.c_layout mem_size;
    mf = Array.make mem_size 0.;
    brk = 0;
    istk = Bigarray.Array1.create Bigarray.int64 Bigarray.c_layout 65536;
    fstk = Array.make 65536 0.;
    isp = 0;
    fsp = 0;
    input = [];
    orev = [];
    frev = [];
    steps = 0;
    cost = 0;
    fuel = 0;
    ri = Bigarray.Array1.create Bigarray.int64 Bigarray.c_layout 1;
    rf = Array.make 1 0.;
  }

let pool_mu = Mutex.create ()
let pool : st list ref = ref []

let take () =
  Mutex.lock pool_mu;
  match !pool with
  | s :: rest ->
      pool := rest;
      Mutex.unlock pool_mu;
      s
  | [] ->
      Mutex.unlock pool_mu;
      fresh_st ()

let give s =
  Mutex.lock pool_mu;
  pool := s :: !pool;
  Mutex.unlock pool_mu

let exp_int t =
  if t = 2 then tr "expected integer, got pointer"
  else if t = 1 then tr "expected integer, got float"
  else tr "expected integer, got unit"

let oobl a = tr ("load out of bounds: " ^ string_of_int a)
let oobs a = tr ("store out of bounds: " ^ string_of_int a)

let alloc st cells =
  let base = st.brk in
  if base + cells >= mem_size then tr "out of memory";
  st.brk <- base + cells;
  Bytes.fill st.mt base cells '\000';
  for k = base to base + cells - 1 do
    Bigarray.Array1.unsafe_set st.mi k 0L
  done;
  base

let rd_i st = match st.input with [] -> 0L | x :: rest -> st.input <- rest; x

let rd_f st =
  match st.input with [] -> 0. | x :: rest -> st.input <- rest; Int64.to_float x

let grow_i st n =
  let cur = Bigarray.Array1.dim st.istk in
  let nn = ref (cur * 2) in
  while !nn < n do nn := !nn * 2 done;
  let b = Bigarray.Array1.create Bigarray.int64 Bigarray.c_layout !nn in
  Bigarray.Array1.blit st.istk (Bigarray.Array1.sub b 0 cur);
  st.istk <- b

let grow_f st n =
  let cur = Array.length st.fstk in
  let nn = ref (cur * 2) in
  while !nn < n do nn := !nn * 2 done;
  let b = Array.make !nn 0. in
  Array.blit st.fstk 0 b 0 cur;
  st.fstk <- b

|ocaml}

let emit_plugin (ms : M.t array) : string =
  let buf = Buffer.create (1 lsl 16) in
  Buffer.add_string buf prelude;
  Buffer.add_string buf
    (Printf.sprintf
       "exception Yali_native_entry of string * (int -> int -> int64 list -> (int * string * \
        int64 list * float list * int * int64 * int * int))\n\n");
  Array.iteri (fun mi m -> emit_module buf mi m) ms;
  (* the shared driver: reset state, run, pack the outcome *)
  Buffer.add_string buf
    {ocaml|
let drive run fuel input =
  let st = take () in
  st.fuel <- fuel;
  st.input <- input;
  st.brk <- 0;
  st.orev <- [];
  st.frev <- [];
  st.steps <- 0;
  st.cost <- 0;
  st.isp <- 0;
  st.fsp <- 0;
  let fin r = give st; r in
  match run st with
  | (t, i, f) ->
      let bits = if t = 1 then Int64.bits_of_float f else i in
      fin (0, "", List.rev st.orev, List.rev st.frev, t, bits, st.steps, st.cost)
  | exception T m -> fin (1, m, [], [], 0, 0L, 0, 0)
  | exception F -> fin (2, "", [], [], 0, 0L, 0, 0)
  | exception Invalid_argument m -> fin (3, m, [], [], 0, 0L, 0, 0)
  | exception e -> give st; raise e

let entry pix fuel input =
  match pix with
|ocaml};
  Array.iteri
    (fun mi _ -> Buffer.add_string buf (Printf.sprintf "  | %d -> drive run%d fuel input\n" mi mi))
    ms;
  Buffer.add_string buf "  | _ -> (4, \"unknown program index\", [], [], 0, 0L, 0, 0)\n\n";
  Buffer.add_string buf
    (Printf.sprintf "let () = raise (Yali_native_entry (%s, entry))\n" (quoted abi_magic));
  Buffer.contents buf
