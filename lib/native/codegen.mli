(** IR → OCaml source emission for the native execution tier.

    [emit_plugin ms] renders a self-contained OCaml compilation unit that
    reproduces {!Yali_ir.Interp.run} exactly — outputs, exit value, trap
    messages verbatim, dynamic [steps] and abstract [cost] — for every
    module in [ms].  The unit depends only on the OCaml standard library
    (no yali .cmi files), so it can be compiled by any installed [ocamlopt]
    and loaded with [Dynlink] regardless of how the host binary was built.

    Shape of the generated code (see DESIGN.md §13):
    - one OCaml function per IR function; basic blocks become a [let rec]
      nest of zero-argument functions, branches are tail calls;
    - SSA values that never cross a block become plain [let]s; values that
      do cross (phis included) get dense indices into per-call frames
      carved out of two growable stacks — an [int64] bigarray for
      statically int/pointer-typed slots and a [float array] for float
      slots — so hot reads and writes are single unboxed moves;
    - a static type lattice (int/float/ptr/unit/unknown) eliminates the
      interpreter's tag dispatch wherever a slot's runtime constructor is
      invariant; unknown slots fall back to an explicit (tag, int64, float)
      triple;
    - phis are per-edge parallel copies; steps/cost accounting is batched
      straight-line counter arithmetic, flushed before any instruction that
      can trap or observe, which is provably invisible otherwise;
    - the unit announces itself by raising {!abi_magic} with an entry
      closure at module-initialisation time, which the host intercepts —
      no shared interface files needed.

    The entry closure has type
    [int -> int -> int64 list -> packed]: program index (into [ms]), fuel,
    input stream.  [packed] is
    [(status, msg, output, foutput, ev_tag, ev_bits, steps, cost)] with
    status 0 = ok, 1 = Trap, 2 = Out_of_fuel, 3 = Invalid_argument,
    4 = bad program index; ev_tag 0 = RInt, 1 = RFloat (bits), 2 = RPtr,
    3 = RUnit. *)

(** First payload of the announcement exception; lets the host reject
    plugins generated under an incompatible packing. *)
val abi_magic : string

(** Bumped on any change to the emitted code's shape; part of the artifact
    cache key. *)
val version : int

val emit_plugin : Yali_ir.Irmod.t array -> string
