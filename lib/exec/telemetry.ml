(** See telemetry.mli.  One global lock guards the aggregate tables; spans
    and counters are coarse-grained events, so contention is negligible
    next to the work they measure. *)

type span_stat = { span_count : int; span_seconds : float }

type report = {
  r_counters : (string * int) list;
  r_spans : (string * span_stat) list;
}

type sink = { on_incr : string -> int -> unit; on_span : string -> float -> unit }

let lock = Mutex.create ()
let counters : (string, int ref) Hashtbl.t = Hashtbl.create 64

type mutable_span = { mutable count : int; mutable seconds : float }

let spans : (string, mutable_span) Hashtbl.t = Hashtbl.create 64
let sink : sink option ref = ref None

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

(* ------------------------------------------------------------------ *)
(* clocks                                                              *)
(* ------------------------------------------------------------------ *)

(* [Unix.gettimeofday] is the only wall clock the bundled Unix library
   offers (no [clock_gettime]); pinning readings to be non-decreasing
   makes timings survive NTP step adjustments. *)
let clock_lock = Mutex.create ()
let last_reading = ref 0.0

let clock () =
  Mutex.lock clock_lock;
  let now = Unix.gettimeofday () in
  let t = if now > !last_reading then now else !last_reading in
  last_reading := t;
  Mutex.unlock clock_lock;
  t

let cpu_clock () = Sys.time ()

(* ------------------------------------------------------------------ *)
(* events                                                              *)
(* ------------------------------------------------------------------ *)

let incr ?(by = 1) name =
  locked (fun () ->
      (match Hashtbl.find_opt counters name with
      | Some r -> r := !r + by
      | None -> Hashtbl.replace counters name (ref by));
      match !sink with Some s -> s.on_incr name by | None -> ())

let counter name =
  locked (fun () ->
      match Hashtbl.find_opt counters name with Some r -> !r | None -> 0)

let record_span name seconds =
  locked (fun () ->
      (match Hashtbl.find_opt spans name with
      | Some s ->
          s.count <- s.count + 1;
          s.seconds <- s.seconds +. seconds
      | None -> Hashtbl.replace spans name { count = 1; seconds });
      match !sink with Some s -> s.on_span name seconds | None -> ())

let with_span name f =
  let t0 = clock () in
  Fun.protect ~finally:(fun () -> record_span name (clock () -. t0)) f

let set_sink s = locked (fun () -> sink := s)

(* ------------------------------------------------------------------ *)
(* reporting                                                           *)
(* ------------------------------------------------------------------ *)

let snapshot () =
  locked (fun () ->
      let cs =
        Hashtbl.fold (fun name r acc -> (name, !r) :: acc) counters []
      in
      let ss =
        Hashtbl.fold
          (fun name s acc ->
            (name, { span_count = s.count; span_seconds = s.seconds }) :: acc)
          spans []
      in
      let by_name (a, _) (b, _) = compare (a : string) b in
      { r_counters = List.sort by_name cs; r_spans = List.sort by_name ss })

let reset () =
  locked (fun () ->
      Hashtbl.reset counters;
      Hashtbl.reset spans)

(* counter and span names are plain identifiers, but escape defensively *)
let json_string s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let to_json () =
  let r = snapshot () in
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n  \"counters\": {";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "\n    %s: %d" (json_string name) v))
    r.r_counters;
  Buffer.add_string b "\n  },\n  \"spans\": {";
  List.iteri
    (fun i (name, s) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "\n    %s: {\"count\": %d, \"seconds\": %.6f}"
           (json_string name) s.span_count s.span_seconds))
    r.r_spans;
  Buffer.add_string b "\n  }\n}\n";
  Buffer.contents b

let write_json path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_json ()))
