(** Domain-based parallel execution for the arena and figure harness.

    A batch of independent tasks is distributed over [jobs] workers
    (spawned domains plus the calling domain), each owning a deque of task
    indices; a worker that drains its own deque steals from the others, so
    irregular task sizes still load-balance.  Results are deterministic by
    construction: every task writes only its own slot of the result array,
    and any randomness must be pre-derived on the calling domain (see
    {!Yali_util.Rng.split_ix} / {!Yali_util.Rng.split_n}) — so [jobs = 1]
    and [jobs = N] produce bit-identical output.

    Nested calls from inside a worker run sequentially inline (no domain
    explosion, no deadlock); parallelise at the outermost loop.

    Counters [pool.tasks], [pool.parallel_batches], [pool.sequential_batches]
    and [pool.steals] are reported through {!Telemetry}. *)

(** The configured parallelism: [YALI_JOBS] when set and positive,
    otherwise [Domain.recommended_domain_count ()]. *)
val default_jobs : unit -> int

val get_jobs : unit -> int

(** Override the parallelism ([--jobs N] in the CLIs).
    @raise Invalid_argument when [n < 1]. *)
val set_jobs : int -> unit

(** [with_jobs n f] runs [f] under parallelism [n], restoring the previous
    setting afterwards (also on exceptions). *)
val with_jobs : int -> (unit -> 'a) -> 'a

(** True when called from inside a pool worker (nested parallel calls
    degrade to sequential execution). *)
val inside_worker : unit -> bool

(** [run ~n task] executes [task i] for every [i] in [[0, n)], in parallel
    when the configured parallelism allows.  Exceptions raised by tasks
    are re-raised in the caller (the first one observed). *)
val run : n:int -> (int -> unit) -> unit

(** [parallel_array_map f xs] = [Array.map f xs], fanned out. *)
val parallel_array_map : ('a -> 'b) -> 'a array -> 'b array

(** [parallel_array_mapi f xs] = [Array.mapi f xs], fanned out. *)
val parallel_array_mapi : (int -> 'a -> 'b) -> 'a array -> 'b array

(** [parallel_map f xs] = [List.map f xs], fanned out. *)
val parallel_map : ('a -> 'b) -> 'a list -> 'b list

(** [parallel_array_map_rng rng f xs] maps [f child_i xs.(i)] where
    [child_i] is pre-derived from one {!Yali_util.Rng.split} of [rng]
    (which advances once) via {!Yali_util.Rng.split_ix} — task randomness
    independent of scheduling. *)
val parallel_array_map_rng :
  Yali_util.Rng.t -> (Yali_util.Rng.t -> 'a -> 'b) -> 'a array -> 'b array

(** [parallel_for_chunks ?min_chunk n f] covers [[0, n)] with disjoint
    chunks of at least [min_chunk] indices and calls [f lo hi] (half-open)
    on each — for loops too fine-grained to schedule per index. *)
val parallel_for_chunks : ?min_chunk:int -> int -> (int -> int -> unit) -> unit
