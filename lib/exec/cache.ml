(** See cache.mli.  The store is a hash table over an intrusive doubly
    linked list ordered by recency: O(1) probe, touch and eviction. *)

type 'v node = {
  nkey : string;
  nvalue : 'v;
  mutable prev : 'v node option;  (** towards most recently used *)
  mutable next : 'v node option;  (** towards least recently used *)
}

type 'v t = {
  name : string option;
  capacity : int;
  lock : Mutex.t;
  table : (string, 'v node) Hashtbl.t;
  mutable mru : 'v node option;
  mutable lru : 'v node option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  size : int;
  capacity : int;
}

let create ?name ~capacity () =
  if capacity < 1 then invalid_arg "Cache.create: capacity must be positive";
  {
    name;
    capacity;
    lock = Mutex.create ();
    table = Hashtbl.create (min capacity 1024);
    mru = None;
    lru = None;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let count t event = match t.name with
  | Some n -> Telemetry.incr (Printf.sprintf "cache.%s.%s" n event)
  | None -> ()

(* list surgery; all under the lock *)

let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.mru <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.lru <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.mru;
  node.prev <- None;
  (match t.mru with Some m -> m.prev <- Some node | None -> t.lru <- Some node);
  t.mru <- Some node

let touch t node =
  match t.mru with
  | Some m when m == node -> ()
  | _ ->
      unlink t node;
      push_front t node

let evict_beyond_capacity t =
  while Hashtbl.length t.table > t.capacity do
    match t.lru with
    | None -> assert false (* table non-empty implies a list tail *)
    | Some victim ->
        unlink t victim;
        Hashtbl.remove t.table victim.nkey;
        t.evictions <- t.evictions + 1;
        count t "evictions"
  done

let insert t key value =
  match Hashtbl.find_opt t.table key with
  | Some _ -> () (* another domain computed it first; keep the incumbent *)
  | None ->
      let node = { nkey = key; nvalue = value; prev = None; next = None } in
      Hashtbl.replace t.table key node;
      push_front t node;
      evict_beyond_capacity t

let find_or_compute t ~key f =
  let cached =
    locked t (fun () ->
        match Hashtbl.find_opt t.table key with
        | Some node ->
            touch t node;
            t.hits <- t.hits + 1;
            Some node.nvalue
        | None ->
            t.misses <- t.misses + 1;
            None)
  in
  match cached with
  | Some v ->
      count t "hits";
      v
  | None ->
      count t "misses";
      let v = f () in
      locked t (fun () -> insert t key v);
      v

let find t ~key =
  locked t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some node ->
          touch t node;
          Some node.nvalue
      | None -> None)

let length t = locked t (fun () -> Hashtbl.length t.table)

let stats t =
  locked t (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        evictions = t.evictions;
        size = Hashtbl.length t.table;
        capacity = t.capacity;
      })

let hit_rate (s : stats) =
  let probes = s.hits + s.misses in
  if probes = 0 then 0.0 else float_of_int s.hits /. float_of_int probes

let clear t =
  locked t (fun () ->
      Hashtbl.reset t.table;
      t.mru <- None;
      t.lru <- None)
