(** See pool.mli.  Workers are spawned per batch: the work dispatched
    through the pool is coarse (whole embedding loops, whole forests), so
    domain spawn cost is noise, and a batch-scoped pool cannot leak
    domains or deadlock on nesting. *)

module Rng = Yali_util.Rng

(* ------------------------------------------------------------------ *)
(* configuration                                                       *)
(* ------------------------------------------------------------------ *)

let env_jobs () =
  match Sys.getenv_opt "YALI_JOBS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> Some n
      | _ -> None)

let default_jobs () =
  match env_jobs () with
  | Some n -> n
  | None -> Domain.recommended_domain_count ()

let configured : int option ref = ref None

let get_jobs () =
  match !configured with
  | Some j -> j
  | None ->
      let j = default_jobs () in
      configured := Some j;
      j

let set_jobs n =
  if n < 1 then invalid_arg "Pool.set_jobs: jobs must be positive";
  configured := Some n

let with_jobs n f =
  let old = get_jobs () in
  set_jobs n;
  Fun.protect ~finally:(fun () -> set_jobs old) f

let inside : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)
let inside_worker () = Domain.DLS.get inside

(* ------------------------------------------------------------------ *)
(* per-worker deques                                                   *)
(* ------------------------------------------------------------------ *)

(* A worker's share of the batch: a contiguous slice of task indices.
   The owner pops from the back, thieves take from the front; nothing is
   ever pushed after construction, so a mutex per deque is plenty — the
   lock is touched once per task, and tasks are coarse. *)
type deque = {
  base : int;  (** first task index of the slice *)
  lock : Mutex.t;
  mutable lo : int;  (** next index offset a thief would take *)
  mutable hi : int;  (** one past the offset the owner pops next *)
}

let pop_own d =
  Mutex.lock d.lock;
  let r =
    if d.lo < d.hi then begin
      d.hi <- d.hi - 1;
      Some (d.base + d.hi)
    end
    else None
  in
  Mutex.unlock d.lock;
  r

let steal d =
  Mutex.lock d.lock;
  let r =
    if d.lo < d.hi then begin
      let i = d.base + d.lo in
      d.lo <- d.lo + 1;
      Some i
    end
    else None
  in
  Mutex.unlock d.lock;
  r

(* ------------------------------------------------------------------ *)
(* batch execution                                                     *)
(* ------------------------------------------------------------------ *)

let run ~n task =
  if n > 0 then begin
    Telemetry.incr ~by:n "pool.tasks";
    let j = min (get_jobs ()) n in
    if j <= 1 || inside_worker () then begin
      Telemetry.incr "pool.sequential_batches";
      for i = 0 to n - 1 do
        task i
      done
    end
    else begin
      Telemetry.incr "pool.parallel_batches";
      let deques =
        Array.init j (fun w ->
            let lo = w * n / j and hi = (w + 1) * n / j in
            { base = lo; lock = Mutex.create (); lo = 0; hi = hi - lo })
      in
      let failure = Atomic.make None in
      let steals = Atomic.make 0 in
      let run_task i =
        try task i
        with e ->
          let bt = Printexc.get_raw_backtrace () in
          (* remember the first failure; remaining tasks still run, which
             is harmless for the pure tasks this pool schedules *)
          ignore (Atomic.compare_and_set failure None (Some (e, bt)))
      in
      (* a worker drains its own deque back to front, then scans the other
         deques for work; when a full scan comes back empty the batch holds
         no unstarted task and the worker retires *)
      let work w =
        let rec own () =
          match pop_own deques.(w) with
          | Some i ->
              run_task i;
              own ()
          | None -> hunt 1
        and hunt k =
          if k < j then
            match steal deques.((w + k) mod j) with
            | Some i ->
                Atomic.incr steals;
                run_task i;
                own ()
            | None -> hunt (k + 1)
        in
        own ()
      in
      let worker w () =
        Domain.DLS.set inside true;
        work w
      in
      let domains = Array.init (j - 1) (fun k -> Domain.spawn (worker (k + 1))) in
      (* the calling domain is worker 0 *)
      Domain.DLS.set inside true;
      Fun.protect
        ~finally:(fun () -> Domain.DLS.set inside false)
        (fun () -> work 0);
      Array.iter Domain.join domains;
      if Atomic.get steals > 0 then
        Telemetry.incr ~by:(Atomic.get steals) "pool.steals";
      match Atomic.get failure with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ()
    end
  end

(* ------------------------------------------------------------------ *)
(* combinators                                                         *)
(* ------------------------------------------------------------------ *)

let parallel_array_mapi f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    run ~n (fun i -> out.(i) <- Some (f i xs.(i)));
    Array.map (function Some v -> v | None -> assert false) out
  end

let parallel_array_map f xs = parallel_array_mapi (fun _ x -> f x) xs

let parallel_map f xs =
  Array.to_list (parallel_array_map f (Array.of_list xs))

let parallel_array_map_rng rng f xs =
  let base = Rng.split rng in
  parallel_array_mapi (fun i x -> f (Rng.split_ix base i) x) xs

let parallel_for_chunks ?(min_chunk = 1) n f =
  if n > 0 then begin
    let min_chunk = max 1 min_chunk in
    let max_chunks = max 1 (n / min_chunk) in
    (* a few chunks per worker so stealing can still rebalance *)
    let chunks = min max_chunks (get_jobs () * 4) in
    run ~n:chunks (fun c ->
        let lo = c * n / chunks and hi = (c + 1) * n / chunks in
        f lo hi)
  end
