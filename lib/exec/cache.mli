(** Content-addressed memo store with bounded-size LRU eviction.

    Keys are structural digests computed by the caller (e.g. an MD5 of the
    marshalled source program, transform-pipeline name and embedding name);
    values are whatever the keyed computation produces — lowered IR
    modules, feature vectors, graphs.  A cache is safe to share across
    pool workers: probes are serialised by an internal lock, while the
    computation of a missing value runs outside it (two domains racing on
    the same fresh key may both compute it; the value must therefore come
    from a pure function, which also guarantees they agree).

    Named caches report [cache.<name>.hits] / [.misses] / [.evictions]
    through {!Telemetry}, so cache effectiveness lands in the [--telemetry]
    JSON report for free. *)

type 'v t

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  size : int;  (** live entries *)
  capacity : int;
}

(** [create ?name ~capacity ()] makes an empty cache holding at most
    [capacity] entries; least-recently-used entries are evicted beyond
    that.  @raise Invalid_argument when [capacity < 1]. *)
val create : ?name:string -> capacity:int -> unit -> 'v t

(** [find_or_compute t ~key f] returns the cached value for [key], or runs
    [f ()], stores the result under [key] and returns it.  [f] must be a
    pure function of [key]'s preimage. *)
val find_or_compute : 'v t -> key:string -> (unit -> 'v) -> 'v

(** Peek without counting a hit or miss. *)
val find : 'v t -> key:string -> 'v option

val length : 'v t -> int
val stats : 'v t -> stats

(** Hits as a fraction of probes; 0 when never probed. *)
val hit_rate : stats -> float

(** Drop all entries (statistics are kept). *)
val clear : 'v t -> unit
