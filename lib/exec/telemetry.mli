(** Lightweight observability for the execution runtime: named counters,
    timed spans, and a monotonic clock, aggregated in-process and dumpable
    as a JSON report ([--telemetry] in the CLI and figure harness).

    All operations are domain-safe; the expected call sites are coarse
    (per game round, per training run, per cache probe), so a single lock
    around the aggregate tables is not a bottleneck. *)

(** Aggregate of all closed spans sharing a name. *)
type span_stat = {
  span_count : int;  (** how many spans closed under this name *)
  span_seconds : float;  (** total wall time spent inside them *)
}

(** A consistent copy of the aggregate state. *)
type report = {
  r_counters : (string * int) list;
  r_spans : (string * span_stat) list;
}

(** An optional secondary consumer of raw events, e.g. a live logger.
    Events always also feed the in-process aggregate. *)
type sink = {
  on_incr : string -> int -> unit;  (** counter name and increment *)
  on_span : string -> float -> unit;  (** span name and duration, seconds *)
}

(** Monotonic(-ised) wall clock, in seconds.  The bundled [Unix] library
    exposes no [clock_gettime], so this guards [Unix.gettimeofday] against
    going backwards (NTP steps): consecutive readings never decrease. *)
val clock : unit -> float

(** Process CPU time, in seconds ([Sys.time]). *)
val cpu_clock : unit -> float

(** Bump a counter (created on first use). *)
val incr : ?by:int -> string -> unit

(** Current value of a counter; 0 when never bumped. *)
val counter : string -> int

(** [with_span name f] times [f ()] on {!clock} and folds the duration
    into the aggregate for [name] — also when [f] raises. *)
val with_span : string -> (unit -> 'a) -> 'a

(** Forward every subsequent event to an extra sink ([None] to detach). *)
val set_sink : sink option -> unit

val snapshot : unit -> report

(** Drop all counters and spans (tests, or between harness targets). *)
val reset : unit -> unit

(** The report as a JSON object: [{"counters": {...}, "spans": {name:
    {"count": n, "seconds": s}}}]. *)
val to_json : unit -> string

(** Write {!to_json} to a file. *)
val write_json : string -> unit
