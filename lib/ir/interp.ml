(** Reference interpreter for the miniature IR.

    Programs interact with the world through the intrinsics [read_int],
    [print_int], [read_float] and [print_float]; a run maps a list of input
    integers to a list of outputs plus an exit value.  This gives the test
    suite an executable notion of semantics: a transformation [T] preserves
    semantics iff [run p inp = run (T p) inp] for all inputs.

    The interpreter also charges an abstract per-opcode cost ({!Opcode.cost}),
    which stands in for wall-clock time in the reproduction of the paper's
    Figure 13 (performance of obfuscated vs. optimized code). *)

type rvalue = RInt of int64 | RFloat of float | RPtr of int | RUnit

exception Trap of string
exception Out_of_fuel

type outcome = {
  output : int64 list;
  foutput : float list;
  exit_value : rvalue;
  steps : int;  (** dynamic instruction count *)
  cost : int;  (** abstract cycles, per {!Opcode.cost} *)
}

type state = {
  m : Irmod.t;
  mem : rvalue array;
  mutable brk : int;  (** bump allocator frontier *)
  mutable input : int64 list;
  mutable out_rev : int64 list;
  mutable fout_rev : float list;
  mutable steps : int;
  mutable cost : int;
  fuel : int;
  globals : (string, int) Hashtbl.t;
}

let mem_size = 1 lsl 20

(* The memory image is pooled and reused between runs (one array per domain
   at steady state): [alloc] zeroes every allocation and loads are
   bounds-checked against [brk], so a recycled array is indistinguishable
   from a fresh one. *)
let arena : rvalue array Arena.t =
  Arena.create ~make:(fun () -> Array.make mem_size (RInt 0L))

let normalize (ty : Types.t) (n : int64) : int64 =
  match ty with
  | Types.I1 -> Int64.logand n 1L
  | Types.I8 ->
      let v = Int64.logand n 0xFFL in
      if Int64.compare v 0x7FL > 0 then Int64.sub v 0x100L else v
  | Types.I32 ->
      let v = Int64.logand n 0xFFFFFFFFL in
      if Int64.compare v 0x7FFFFFFFL > 0 then Int64.sub v 0x1_0000_0000L else v
  | _ -> n

let as_int = function
  | RInt n -> n
  | RPtr _ -> raise (Trap "expected integer, got pointer")
  | RFloat _ -> raise (Trap "expected integer, got float")
  | RUnit -> raise (Trap "expected integer, got unit")

let as_float = function
  | RFloat f -> f
  | RInt n -> Int64.to_float n
  | _ -> raise (Trap "expected float")

let as_ptr = function
  | RPtr p -> p
  | RInt n -> Int64.to_int n
  | _ -> raise (Trap "expected pointer")

let as_bool v = not (Int64.equal (as_int v) 0L)

let charge (st : state) (op : Opcode.t) =
  st.steps <- st.steps + 1;
  st.cost <- st.cost + Opcode.cost op;
  if st.steps > st.fuel then raise Out_of_fuel

let alloc (st : state) (cells : int) : int =
  let base = st.brk in
  if base + cells >= Array.length st.mem then raise (Trap "out of memory");
  st.brk <- base + cells;
  (* zero-initialise *)
  for i = base to base + cells - 1 do
    st.mem.(i) <- RInt 0L
  done;
  base

let mem_load (st : state) (addr : int) : rvalue =
  if addr < 0 || addr >= st.brk then
    raise (Trap (Printf.sprintf "load out of bounds: %d" addr));
  st.mem.(addr)

let mem_store (st : state) (addr : int) (v : rvalue) : unit =
  if addr < 0 || addr >= st.brk then
    raise (Trap (Printf.sprintf "store out of bounds: %d" addr));
  st.mem.(addr) <- v

let eval_ibin (ty : Types.t) (op : Instr.ibin) (a : int64) (b : int64) : int64
    =
  let ( %! ) x y = if Int64.equal y 0L then raise (Trap "division by zero") else Int64.rem x y in
  let ( /! ) x y = if Int64.equal y 0L then raise (Trap "division by zero") else Int64.div x y in
  let shamt = Int64.to_int (Int64.logand b 63L) in
  let w = try Types.width ty with _ -> 64 in
  let mask_to_width n =
    if w = 64 then n
    else Int64.logand n (Int64.sub (Int64.shift_left 1L w) 1L)
  in
  let r =
    match op with
    | Instr.Add -> Int64.add a b
    | Instr.Sub -> Int64.sub a b
    | Instr.Mul -> Int64.mul a b
    | Instr.SDiv -> a /! b
    | Instr.SRem -> a %! b
    | Instr.UDiv ->
        if Int64.equal b 0L then raise (Trap "division by zero")
        else Int64.unsigned_div (mask_to_width a) (mask_to_width b)
    | Instr.URem ->
        if Int64.equal b 0L then raise (Trap "division by zero")
        else Int64.unsigned_rem (mask_to_width a) (mask_to_width b)
    | Instr.Shl -> Int64.shift_left a shamt
    | Instr.LShr -> Int64.shift_right_logical (mask_to_width a) shamt
    | Instr.AShr -> Int64.shift_right a shamt
    | Instr.And -> Int64.logand a b
    | Instr.Or -> Int64.logor a b
    | Instr.Xor -> Int64.logxor a b
  in
  normalize ty r

let eval_fbin (op : Instr.fbin) (a : float) (b : float) : float =
  match op with
  | Instr.FAdd -> a +. b
  | Instr.FSub -> a -. b
  | Instr.FMul -> a *. b
  | Instr.FDiv -> a /. b
  | Instr.FRem -> Float.rem a b

let eval_icmp (p : Instr.icmp) (a : int64) (b : int64) : bool =
  let ucmp x y = Int64.unsigned_compare x y in
  match p with
  | Instr.Eq -> Int64.equal a b
  | Instr.Ne -> not (Int64.equal a b)
  | Instr.Slt -> Int64.compare a b < 0
  | Instr.Sle -> Int64.compare a b <= 0
  | Instr.Sgt -> Int64.compare a b > 0
  | Instr.Sge -> Int64.compare a b >= 0
  | Instr.Ult -> ucmp a b < 0
  | Instr.Ule -> ucmp a b <= 0
  | Instr.Ugt -> ucmp a b > 0
  | Instr.Uge -> ucmp a b >= 0

let eval_fcmp (p : Instr.fcmp) (a : float) (b : float) : bool =
  match p with
  | Instr.Oeq -> a = b
  | Instr.One -> a <> b
  | Instr.Olt -> a < b
  | Instr.Ole -> a <= b
  | Instr.Ogt -> a > b
  | Instr.Oge -> a >= b

let eval_cast (c : Instr.cast) (ty : Types.t) (v : rvalue) : rvalue =
  match c with
  | Instr.Trunc | Instr.ZExt | Instr.SExt -> RInt (normalize ty (as_int v))
  | Instr.FPTrunc | Instr.FPExt -> RFloat (as_float v)
  | Instr.FPToUI | Instr.FPToSI ->
      let f = as_float v in
      if Float.is_nan f then RInt 0L else RInt (normalize ty (Int64.of_float f))
  | Instr.UIToFP | Instr.SIToFP -> RFloat (Int64.to_float (as_int v))
  | Instr.PtrToInt -> RInt (Int64.of_int (as_ptr v))
  | Instr.IntToPtr -> RPtr (Int64.to_int (as_int v))
  | Instr.Bitcast -> v

(* Element stride of a gep through a pointer type: pointers to arrays step by
   the array element size when indexed past the first index. *)
let gep_addr (base_ty : Types.t) (base : int) (idxs : int64 list) : int =
  (* Our gep semantics: first index scales by pointee size; subsequent
     indices descend into array elements. *)
  let rec go ty addr = function
    | [] -> addr
    | i :: rest ->
        let i = Int64.to_int i in
        let elem =
          match ty with
          | Types.Ptr t | Types.Arr (t, _) -> t
          | t -> t
        in
        let stride =
          match ty with
          | Types.Ptr t -> Types.size_in_cells t
          | Types.Arr (t, _) -> Types.size_in_cells t
          | _ -> 1
        in
        go elem (addr + (i * stride)) rest
  in
  go base_ty base idxs

let rec eval_call (st : state) (callee : string) (args : rvalue list) : rvalue
    =
  match callee with
  | "read_int" -> (
      match st.input with
      | [] -> RInt 0L
      | x :: rest ->
          st.input <- rest;
          RInt x)
  | "read_float" -> (
      match st.input with
      | [] -> RFloat 0.
      | x :: rest ->
          st.input <- rest;
          RFloat (Int64.to_float x))
  | "print_int" ->
      (match args with
      | [ v ] -> st.out_rev <- as_int v :: st.out_rev
      | _ -> raise (Trap "print_int arity"));
      RUnit
  | "print_float" ->
      (match args with
      | [ v ] -> st.fout_rev <- as_float v :: st.fout_rev
      | _ -> raise (Trap "print_float arity"));
      RUnit
  | "abs" -> (
      match args with
      | [ v ] -> RInt (Int64.abs (as_int v))
      | _ -> raise (Trap "abs arity"))
  | "min" -> (
      match args with
      | [ a; b ] -> RInt (min (as_int a) (as_int b))
      | _ -> raise (Trap "min arity"))
  | "max" -> (
      match args with
      | [ a; b ] -> RInt (max (as_int a) (as_int b))
      | _ -> raise (Trap "max arity"))
  | _ -> (
      match Irmod.find_func st.m callee with
      | Some f -> eval_func st f args
      | None -> raise (Trap ("call to unknown function " ^ callee)))

and eval_func (st : state) (f : Func.t) (args : rvalue list) : rvalue =
  let env : (int, rvalue) Hashtbl.t = Hashtbl.create 64 in
  (if List.length args <> List.length f.params then
     raise
       (Trap
          (Printf.sprintf "arity mismatch calling %s: %d args for %d params"
             f.name (List.length args) (List.length f.params))));
  List.iter2 (fun (id, _) v -> Hashtbl.replace env id v) f.params args;
  let lookup (v : Value.t) : rvalue =
    match v with
    | Value.Var id -> (
        match Hashtbl.find_opt env id with
        | Some r -> r
        | None -> raise (Trap (Printf.sprintf "read of unset %%%d in %s" id f.name)))
    | Value.IConst (ty, n) -> RInt (normalize ty n)
    | Value.FConst x -> RFloat x
    | Value.Global g -> (
        match Hashtbl.find_opt st.globals g with
        | Some addr -> RPtr addr
        | None -> raise (Trap ("unknown global " ^ g)))
    | Value.Undef _ -> RInt 0L
  in
  let blocks = Hashtbl.create 16 in
  List.iter (fun (b : Block.t) -> Hashtbl.replace blocks b.label b) f.blocks;
  let def_types : (int, Types.t) Hashtbl.t = Hashtbl.create 64 in
  List.iter (fun (id, t) -> Hashtbl.replace def_types id t) f.params;
  List.iter
    (fun (b : Block.t) ->
      List.iter
        (fun (i : Instr.t) ->
          if Instr.defines i then Hashtbl.replace def_types i.id i.ty)
        b.instrs)
    f.blocks;
  let rec exec_block (prev : string option) (b : Block.t) : rvalue =
    (* phis are evaluated simultaneously against the incoming edge *)
    let phi_updates =
      List.filter_map
        (fun (i : Instr.t) ->
          match i.kind with
          | Instr.Phi incoming -> (
              charge st Opcode.Phi;
              match prev with
              | None -> raise (Trap "phi in entry block")
              | Some p -> (
                  match List.assoc_opt p (List.map (fun (v, l) -> (l, v)) incoming) with
                  | Some v -> Some (i.id, lookup v)
                  | None -> raise (Trap (Printf.sprintf "phi %%%d misses edge from %s" i.id p))))
          | _ -> None)
        b.instrs
    in
    List.iter (fun (id, v) -> Hashtbl.replace env id v) phi_updates;
    List.iter
      (fun (i : Instr.t) ->
        match i.kind with
        | Instr.Phi _ -> ()
        | _ ->
            charge st (Instr.opcode i);
            let result =
              match i.kind with
              | Instr.Phi _ -> assert false
              | Instr.Ibin (op, a, b') ->
                  RInt (eval_ibin i.ty op (as_int (lookup a)) (as_int (lookup b')))
              | Instr.Fbin (op, a, b') ->
                  RFloat (eval_fbin op (as_float (lookup a)) (as_float (lookup b')))
              | Instr.Fneg a -> RFloat (-.as_float (lookup a))
              | Instr.Icmp (p, a, b') ->
                  RInt (if eval_icmp p (as_int (lookup a)) (as_int (lookup b')) then 1L else 0L)
              | Instr.Fcmp (p, a, b') ->
                  RInt (if eval_fcmp p (as_float (lookup a)) (as_float (lookup b')) then 1L else 0L)
              | Instr.Alloca ty -> RPtr (alloc st (Types.size_in_cells ty))
              | Instr.Load p -> mem_load st (as_ptr (lookup p))
              | Instr.Store (v, p) ->
                  mem_store st (as_ptr (lookup p)) (lookup v);
                  RUnit
              | Instr.Gep (base, idxs) ->
                  let base_ty =
                    match base with
                    | Value.Var id -> (
                        match Hashtbl.find_opt def_types id with
                        | Some t -> t
                        | None -> Types.Ptr Types.I64)
                    | Value.Global g -> (
                        match Irmod.find_global st.m g with
                        | Some gl -> Types.Ptr gl.gty
                        | None -> Types.Ptr Types.I64)
                    | _ -> Types.Ptr Types.I64
                  in
                  RPtr
                    (gep_addr base_ty
                       (as_ptr (lookup base))
                       (List.map (fun v -> as_int (lookup v)) idxs))
              | Instr.Select (c, a, b') ->
                  if as_bool (lookup c) then lookup a else lookup b'
              | Instr.Call (callee, args) ->
                  eval_call st callee (List.map lookup args)
              | Instr.Cast (c, a) -> eval_cast c i.ty (lookup a)
              | Instr.Freeze a -> lookup a
            in
            if Instr.defines i then Hashtbl.replace env i.id result)
      b.instrs;
    charge st (Instr.opcode_of_terminator b.term);
    match b.term with
    | Instr.Ret None -> RUnit
    | Instr.Ret (Some v) -> lookup v
    | Instr.Br l -> jump b.label l
    | Instr.CondBr (c, t, e) ->
        jump b.label (if as_bool (lookup c) then t else e)
    | Instr.Switch (v, d, cases) ->
        (* a switch lowers to a compare chain / sparse jump sequence: charge
           proportionally to the number of cases (flattened functions pay
           for their dispatcher on every iteration, as on real hardware) *)
        st.cost <- st.cost + (List.length cases / 2);
        let x = as_int (lookup v) in
        let target =
          match List.find_opt (fun (k, _) -> Int64.equal k x) cases with
          | Some (_, l) -> l
          | None -> d
        in
        jump b.label target
    | Instr.Unreachable -> raise (Trap "executed unreachable")
  and jump prev l =
    match Hashtbl.find_opt blocks l with
    | Some b -> exec_block (Some prev) b
    | None -> raise (Trap ("jump to unknown block " ^ l))
  in
  exec_block None (Func.entry f)

(** Run [main] of a module on a list of input integers. *)
let run ?(fuel = 10_000_000) (m : Irmod.t) (input : int64 list) : outcome =
  Arena.with_mem arena @@ fun mem ->
  let st =
    {
      m;
      mem;
      brk = 0;
      input;
      out_rev = [];
      fout_rev = [];
      steps = 0;
      cost = 0;
      fuel;
      globals = Hashtbl.create 8;
    }
  in
  (* allocate and initialise globals *)
  List.iter
    (fun (g : Irmod.global) ->
      let cells = max 1 (Types.size_in_cells g.gty) in
      let base = alloc st cells in
      Array.iteri
        (fun i v -> if i < cells then st.mem.(base + i) <- RInt v)
        g.ginit;
      Hashtbl.replace st.globals g.gname base)
    m.globals;
  let main = Irmod.find_func_exn m "main" in
  let args = List.map (fun (_, ty) -> match ty with
    | Types.F64 -> RFloat 0. | _ -> RInt 0L) main.params in
  let exit_value = eval_func st main args in
  {
    output = List.rev st.out_rev;
    foutput = List.rev st.fout_rev;
    exit_value;
    steps = st.steps;
    cost = st.cost;
  }

(** Observable behaviour of a run: printed output plus exit value.  Two
    modules are behaviourally equivalent on an input when their observations
    agree. *)
let observe (o : outcome) : int64 list * float list * string =
  let ev =
    match o.exit_value with
    | RInt n -> Printf.sprintf "i:%Ld" n
    | RFloat f -> Printf.sprintf "f:%.9g" f
    | RPtr _ -> "ptr"
    | RUnit -> "unit"
  in
  (o.output, o.foutput, ev)

let equal_behaviour (a : outcome) (b : outcome) : bool =
  observe a = observe b
