(** Structural well-formedness checks for functions and modules.  The
    verifier is run by tests after every transformation pass: any pass that
    breaks block structure, SSA dominance of definitions over uses (at block
    granularity), or phi-node/predecessor agreement is caught here. *)

module SSet = Set.Make (String)

type error = { where : string; what : string }

let pp_error fmt e = Fmt.pf fmt "[%s] %s" e.where e.what

let check_func ?(known_funcs = SSet.empty) (f : Func.t) : error list =
  let errs = ref [] in
  let err where fmt_str =
    Printf.ksprintf (fun what -> errs := { where; what } :: !errs) fmt_str
  in
  let labels =
    List.fold_left
      (fun acc (b : Block.t) -> SSet.add b.label acc)
      SSet.empty f.blocks
  in
  if List.length f.blocks <> SSet.cardinal labels then
    err f.name "duplicate block labels";
  if f.blocks = [] then err f.name "function has no blocks";
  let cfg = Cfg.of_func f in
  (* 1. all branch targets exist *)
  List.iter
    (fun (b : Block.t) ->
      List.iter
        (fun s ->
          if not (SSet.mem s labels) then
            err b.label "branch to unknown block %s" s)
        (Block.successors b))
    f.blocks;
  (* 2. definitions are unique *)
  let defs = Hashtbl.create 64 in
  List.iter (fun (id, _) -> Hashtbl.replace defs id ()) f.params;
  List.iter
    (fun (b : Block.t) ->
      List.iter
        (fun (i : Instr.t) ->
          if Instr.defines i then
            if Hashtbl.mem defs i.id then
              err b.label "SSA id %%%d defined twice" i.id
            else Hashtbl.replace defs i.id ())
        b.instrs)
    f.blocks;
  (* 3. every used variable is defined somewhere *)
  let check_val (b : Block.t) (v : Value.t) =
    match v with
    | Value.Var id ->
        if not (Hashtbl.mem defs id) then
          err b.label "use of undefined value %%%d" id
    | _ -> ()
  in
  List.iter
    (fun (b : Block.t) ->
      List.iter
        (fun (i : Instr.t) -> List.iter (check_val b) (Instr.operands i))
        b.instrs;
      List.iter (check_val b) (Instr.terminator_operands b.term))
    f.blocks;
  (* 3b. definitions dominate their uses.  Params count as entry
     definitions; within a block the definition must come first; a phi use
     only needs to be dominated at the incoming edge.  Restricted to
     reachable blocks — dominance is meaningless off the entry tree. *)
  let dom = Dominance.compute cfg in
  let reachable = Cfg.reachable cfg in
  let params = Hashtbl.create 8 in
  List.iter (fun (id, _) -> Hashtbl.replace params id ()) f.params;
  let def_label = Hashtbl.create 64 in
  List.iter
    (fun (b : Block.t) ->
      List.iter
        (fun (i : Instr.t) ->
          if Instr.defines i && not (Hashtbl.mem def_label i.id) then
            Hashtbl.replace def_label i.id b.label)
        b.instrs)
    f.blocks;
  List.iter
    (fun (b : Block.t) ->
      if Cfg.SSet.mem b.label reachable then begin
        let seen = Hashtbl.create 16 in
        let dominated v =
          match v with
          | Value.Var id when not (Hashtbl.mem params id) -> (
              match Hashtbl.find_opt def_label id with
              | None -> true (* covered by check 3 *)
              | Some dl ->
                  if dl = b.label then Hashtbl.mem seen id
                  else Dominance.dominates dom dl b.label)
          | _ -> true
        in
        List.iter
          (fun (i : Instr.t) ->
            (match i.kind with
            | Instr.Phi incoming ->
                List.iter
                  (fun (v, src) ->
                    if
                      Cfg.SSet.mem src reachable
                      && not
                           (match v with
                           | Value.Var id when not (Hashtbl.mem params id) -> (
                               match Hashtbl.find_opt def_label id with
                               | None -> true
                               | Some dl -> Dominance.dominates dom dl src)
                           | _ -> true)
                    then
                      err b.label
                        "phi %%%d: incoming %s from %s is not dominated by \
                         its definition"
                        i.id (Value.to_string v) src)
                  incoming
            | _ ->
                List.iter
                  (fun v ->
                    if not (dominated v) then
                      err b.label
                        "use of %s is not dominated by its definition"
                        (Value.to_string v))
                  (Instr.operands i));
            if Instr.defines i then Hashtbl.replace seen i.id ())
          b.instrs;
        List.iter
          (fun v ->
            if not (dominated v) then
              err b.label
                "terminator use of %s is not dominated by its definition"
                (Value.to_string v))
          (Instr.terminator_operands b.term)
      end)
    f.blocks;
  (* 4. phis agree with predecessors, and appear only as a block prefix *)
  List.iter
    (fun (b : Block.t) ->
      let preds = SSet.of_list (Cfg.predecessors cfg b.label) in
      let seen_non_phi = ref false in
      List.iter
        (fun (i : Instr.t) ->
          match i.kind with
          | Instr.Phi incoming ->
              if !seen_non_phi then
                err b.label "phi %%%d after non-phi instruction" i.id;
              let sources = List.map snd incoming in
              let ssources = SSet.of_list sources in
              if List.length sources <> SSet.cardinal ssources then
                err b.label "phi %%%d has duplicate incoming labels" i.id;
              if not (SSet.is_empty preds) && not (SSet.equal ssources preds)
              then
                err b.label
                  "phi %%%d incoming labels {%s} do not match predecessors {%s}"
                  i.id
                  (String.concat "," sources)
                  (String.concat "," (SSet.elements preds))
          | _ -> seen_non_phi := true)
        b.instrs)
    f.blocks;
  (* 5. known callees (when a module context is available) *)
  if not (SSet.is_empty known_funcs) then
    List.iter
      (fun (b : Block.t) ->
        List.iter
          (fun (i : Instr.t) ->
            match i.kind with
            | Instr.Call (callee, _) ->
                if not (SSet.mem callee known_funcs) then
                  err b.label "call to unknown function @%s" callee
            | _ -> ())
          b.instrs)
      f.blocks;
  List.rev !errs

(** Names treated as runtime intrinsics by the interpreter. *)
let intrinsics =
  [ "read_int"; "print_int"; "read_float"; "print_float"; "abs"; "min"; "max" ]

let check_module (m : Irmod.t) : error list =
  let known =
    List.fold_left
      (fun acc (f : Func.t) -> SSet.add f.Func.name acc)
      (SSet.of_list intrinsics) m.funcs
  in
  List.concat_map (check_func ~known_funcs:known) m.funcs

(** Raise [Invalid_argument] with a report when the module is ill-formed. *)
let assert_ok (m : Irmod.t) : unit =
  match check_module m with
  | [] -> ()
  | errs ->
      let msg =
        Fmt.str "IR verification failed for %s:@.%a" m.mname
          (Fmt.list ~sep:Fmt.cut pp_error)
          errs
      in
      invalid_arg msg
