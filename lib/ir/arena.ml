(** See arena.mli. *)

type 'a t = {
  make : unit -> 'a;
  free : 'a list ref Domain.DLS.key;
  created : int Atomic.t;
}

let create ~make =
  {
    make;
    free = Domain.DLS.new_key (fun () -> ref []);
    created = Atomic.make 0;
  }

let created t = Atomic.get t.created

let with_mem t f =
  let free = Domain.DLS.get t.free in
  let mem =
    match !free with
    | m :: rest ->
        free := rest;
        m
    | [] ->
        Atomic.incr t.created;
        t.make ()
  in
  Fun.protect ~finally:(fun () -> free := mem :: !free) (fun () -> f mem)
