(** Reference interpreter for the miniature IR.

    Programs interact with the world through integer/float I/O intrinsics;
    a run maps an input stream to outputs plus an exit value.  This gives
    transformations an executable specification — [T] preserves semantics
    iff [run p i] and [run (T p) i] observe the same — and, through the
    per-opcode cost model, stands in for wall-clock time in the paper's
    Figure 13. *)

type rvalue = RInt of int64 | RFloat of float | RPtr of int | RUnit

(** Runtime fault: division by zero, out-of-bounds access, unknown callee,
    executed [unreachable]... *)
exception Trap of string

(** The step budget was exhausted (non-terminating program). *)
exception Out_of_fuel

type outcome = {
  output : int64 list;  (** values passed to [print_int], in order *)
  foutput : float list;  (** values passed to [print_float] *)
  exit_value : rvalue;  (** [main]'s return value *)
  steps : int;  (** dynamic instruction count *)
  cost : int;  (** abstract cycles per {!Opcode.cost} *)
}

(** Cells in the linear memory image (shared by both engines). *)
val mem_size : int

(** The interpreter's pooled memory image; see {!Arena}.  One array per
    domain at steady state instead of a fresh 1 MiB allocation per run.
    (The VM pools its own unboxed tag/bits banks of the same extent.) *)
val arena : rvalue array Arena.t

(** Dynamic conversions.  These define the IR's runtime typing discipline:
    integer contexts accept only [RInt] — in particular a pointer used in
    arithmetic without an explicit [ptrtoint] is a trap, not a silent
    coercion — while pointer contexts accept [RInt] (addresses round-trip
    through [ptrtoint]/arithmetic as plain integers) and float contexts
    accept [RInt] (C-like implicit widening).
    @raise Trap on any other mismatch *)
val as_int : rvalue -> int64

val as_float : rvalue -> float
val as_ptr : rvalue -> int

(** Normalise an integer to the range of a type (sign-extending wrap). *)
val normalize : Types.t -> int64 -> int64

(** Evaluate a binary integer operation with C-like semantics.
    @raise Trap on division by zero *)
val eval_ibin : Types.t -> Instr.ibin -> int64 -> int64 -> int64

val eval_fbin : Instr.fbin -> float -> float -> float
val eval_icmp : Instr.icmp -> int64 -> int64 -> bool
val eval_fcmp : Instr.fcmp -> float -> float -> bool
val eval_cast : Instr.cast -> Types.t -> rvalue -> rvalue

(** Run a module's [main] on an input stream.
    @param fuel maximum dynamic instructions (default 10M)
    @raise Trap on runtime faults
    @raise Out_of_fuel when the budget runs out *)
val run : ?fuel:int -> Irmod.t -> int64 list -> outcome

(** Observable behaviour: printed outputs plus a rendering of the exit
    value. *)
val observe : outcome -> int64 list * float list * string

(** Two runs are behaviourally equal when their observations agree. *)
val equal_behaviour : outcome -> outcome -> bool
