(** Domain-local pools of large per-run resources.

    The interpreter needs a memory image of {!Interp.mem_size} [rvalue]
    cells per run, and the VM a tag/bits bank pair of the same extent;
    allocating these afresh every time dominated GC pressure on the
    fuzz/check tiers.  An arena keeps a free list of resources {e per
    domain} (via [Domain.DLS]), so concurrent runs under [--jobs n] never
    share or contend on one, and a domain's steady state is one resource
    per nesting level of {!with_mem} — in practice exactly one.

    Resources are handed back {b dirty}: callers must not read state they
    have not themselves initialised.  Both engines satisfy this by
    construction — the bump allocator zeroes every allocation and loads
    are bounds-checked against the allocation frontier. *)

type 'a t

(** [create ~make] — a pool of resources built on demand by [make].
    Recycled resources keep their previous contents. *)
val create : make:(unit -> 'a) -> 'a t

(** Total resources ever materialised across all domains (for GC-pressure
    accounting in the bench notes). *)
val created : 'a t -> int

(** [with_mem t f] — borrow a resource for the duration of [f]; it is
    returned to the current domain's free list even if [f] raises. *)
val with_mem : 'a t -> ('a -> 'b) -> 'b
