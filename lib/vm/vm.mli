(** A pre-compiling virtual machine for the miniature IR.

    {!Interp} is the executable specification: a tree-walking interpreter
    that re-resolves SSA names, block labels, callees and types through
    hashtables on every function entry.  That is ideal for an oracle —
    simple, obviously faithful to the semantics — and hopeless for the hot
    loop every upper layer funnels through (the differential fuzzer, the
    translation-validation tiers, the Figure 13 game all execute thousands
    of programs per campaign).

    The VM does the name resolution {e once}, in {!compile}:
    - SSA values become dense frame-slot indices; a call allocates one
      [rvalue array] (recycled through a per-run free list) instead of a
      hashtable;
    - block labels become instruction offsets in one contiguous code array
      per function;
    - phi nodes are lowered out of the instruction stream into per-edge
      parallel copies, pre-resolved against each predecessor;
    - callees are pre-bound to function indices (or intrinsic tags), with
      arity mismatches and unknown callees compiled to the exact trap the
      interpreter would raise;
    - [gep] strides, global addresses and the per-instruction
      {!Opcode.cost} are all precomputed;
    - the memory image comes from a pooled {!Yali_ir.Arena}.

    {b Unboxed representation.}  Frame slots and memory cells are not
    {!Yali_ir.Interp.rvalue}s but (tag byte, raw 64-bit payload) pairs in
    two parallel banks — a [Bytes.t] of tags and a flat [float array] of
    payloads (integers and pointers travel as bit patterns via
    [Int64.bits_of_float]/[float_of_bits], which are free register moves).
    Arithmetic, compares, branches, loads/stores, phi copies and calls all
    execute without allocating; the dynamic-typing discipline survives as
    tag checks raising the interpreter's exact trap messages.

    A compiled program is immutable and safe to run from any number of
    domains concurrently.

    The contract is {b bit-identical outcomes}: for every module and input,
    [run m i] and [Interp.run m i] return equal {!Interp.outcome}s (output,
    foutput, exit value, steps, {e and} abstract cost) or raise the same
    exception, including the [Trap] message and [Trap]-vs-[Out_of_fuel]
    classification.  The hot evaluators ([normalize], 64-bit [eval_ibin],
    compares, casts) are mirrored inline for unboxed execution — a
    cross-module call would re-box every operand — and the [Check.Oracles]
    differential property is the standing proof that the mirror has not
    drifted from the oracle.

    Caveat: programs that fail SSA verification ({!Verify}) are outside the
    contract — e.g. the interpreter traps on a read of an unset name at
    {e use} time, while the VM's slot assignment cannot reproduce the exact
    trap ordering.  Every call site in this repo verifies before
    executing. *)

type program

(** Flatten a module into executable form.  Pure; never raises on
    ill-formed input — compile-time-detectable faults (unknown callee,
    arity mismatch, unknown global or block, missing [main]) are compiled
    to code that raises the interpreter's exact exception when (and only
    when) execution reaches them. *)
val compile : Yali_ir.Irmod.t -> program

(** Number of compiled instructions, across all functions (for bench
    reporting). *)
val code_size : program -> int

(** Run a compiled program; same contract and defaults as
    {!Yali_ir.Interp.run}. *)
val run_compiled :
  ?fuel:int -> program -> int64 list -> Yali_ir.Interp.outcome

(** [compile] + [run_compiled]. *)
val run : ?fuel:int -> Yali_ir.Irmod.t -> int64 list -> Yali_ir.Interp.outcome

(** Memory-image banks ever materialised by the VM's arena, across all
    domains (GC-pressure accounting in the bench notes; cf.
    [Arena.created Interp.arena] for the interpreter). *)
val arenas_created : unit -> int
