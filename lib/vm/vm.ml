(** See vm.mli for the contract.  The implementation notes below record the
    exactness-sensitive decisions; change them only against the differential
    oracle ("engines/vm-vs-interp-differential" in {!Yali_check.Oracles}).

    {b Value representation.}  The interpreter passes around boxed
    [Interp.rvalue]s; at ~15ns/step the boxing (an [Int64] block plus an
    [RInt] block per arithmetic result) and the write barrier on every
    binding dominate.  The VM instead stores every frame slot and every
    memory cell as an untagged pair in two parallel banks:

    - [tags]  : one byte per slot — 0 = int, 1 = float, 2 = ptr, 3 = unit;
    - [bits]  : a flat int64 [Bigarray.Array1.t] holding the payload — the
      value itself for ints and pointers, the [Int64.bits_of_float] image
      for floats.  With the kind and layout statically known, Bigarray
      access compiles to an inline load/store of an unboxed [int64], so
      the integer-dominated hot path pays no conversion at all; float
      operations pay a [bits_of_float]/[float_of_bits] pair instead
      (cheap [@@noalloc] externals).

    A dynamic conversion ([Interp.as_int] etc.) becomes a tag check; the
    trap messages are replicated verbatim.  The hot arithmetic never
    allocates: reads, ALU ops, compares and writes all stay unboxed.

    {b Mirrored evaluators.}  Calling {!Interp}'s evaluators would re-box
    every operand at the call boundary (no flambda), so all of [Ibin]
    (every width), [Icmp]/[Fbin]/[Fneg]/[Fcmp], casts and [normalize] are
    mirrored inline here, each a line-for-line transcription of the
    corresponding [Interp] case.  The differential property is the proof that the
    mirror has not drifted: it compares both engines on random programs
    across every pipeline variant, steps and cost included.

    {b Charging}: the interpreter charges (step + cost, then fuel check)
    {e before} evaluating each instruction and terminator; the dispatch
    loop does the same from the precomputed [c_costs] array, so the
    Trap-vs-[Out_of_fuel] precedence is identical.

    {b Phi edges}: the interpreter charges each phi of the target block,
    one at a time, before resolving it against the incoming edge.  An
    [edge] precomputes the number of phis charged along it ([e_charge] —
    for failing edges, the phis up to and including the failing one) and
    lump-charges them; the predicates [steps + k > fuel] for any
    [k <= e_charge] and [steps + e_charge > fuel] agree, so the
    classification is unchanged.  Copies are parallel: all sources are
    read into a scratch bank before any destination is written.

    {b Operand order}: OCaml evaluates application arguments right-to-left,
    so e.g. the interpreter's [eval_ibin ty op (as_int (lookup a)) (as_int
    (lookup b))] faults on [b] first.  Each dispatch arm replays the exact
    fetch/convert order so that competing traps pick the same winner. *)

open Yali_ir

(* ------------------------------------------------------------------ *)
(* Compiled form                                                       *)
(* ------------------------------------------------------------------ *)

(* A pre-resolved operand.  [Cst] carries the (tag, bits) encoding of the
   constant.  [Bad] is a fetch that traps: the interpreter resolves names
   at use time, so e.g. an unknown global only faults when (and if) the
   instruction mentioning it executes. *)
type operand =
  | Slot of int
  | Cst of int * int64  (* tag, bits *)
  | Bad of string

(* A CFG edge with its phi lowering: jump target as a code offset, the
   number of phis the interpreter charges along the edge, and the parallel
   copies [e_dst.(i) <- e_src.(i)].  [e_fail] marks edges that trap (after
   charging) instead of copying. *)
type edge = {
  e_target : int;
  e_charge : int;
  e_dst : int array;
  e_src : operand array;
  e_fail : string option;
  e_fast : bool;  (* nothing to charge, fail or copy: just jump *)
}

let mk_edge e_target e_charge e_dst e_src e_fail =
  {
    e_target;
    e_charge;
    e_dst;
    e_src;
    e_fail;
    e_fast = e_charge = 0 && e_fail = None && Array.length e_dst = 0;
  }

type intrinsic =
  | Read_int
  | Read_float
  | Print_int
  | Print_float
  | Abs
  | Min
  | Max

(* One flattened instruction.  First field of value-producing forms is the
   destination slot (-1: discard).  The [*64] constructors are the
   specialised forms for 64-bit-wide types, where [Interp.normalize] is
   the identity and the width masks are no-ops; narrow widths keep the
   generic [Ibin].  Integer compares are width-independent
   ([Interp.eval_icmp] ignores the type), so they specialise always.
   Splitting each operator into its own constructor matters: the
   operator sub-match would be a second data-dependent indirect branch
   per instruction, as mispredictable as the main dispatch.  Calls are
   pre-bound: [Call_intr] to an intrinsic tag, [Call_fn] to a function
   index, [Call_bad] to the exact trap the interpreter raises after
   evaluating the arguments. *)
type inst =
  | Add64 of int * operand * operand
  | Sub64 of int * operand * operand
  | Mul64 of int * operand * operand
  | Sdiv64 of int * operand * operand
  | Srem64 of int * operand * operand
  | Udiv64 of int * operand * operand
  | Urem64 of int * operand * operand
  | Shl64 of int * operand * operand
  | Lshr64 of int * operand * operand
  | Ashr64 of int * operand * operand
  | And64 of int * operand * operand
  | Or64 of int * operand * operand
  | Xor64 of int * operand * operand
  (* 32-bit add/sub/mul (mini-C [int] — the single hottest arithmetic
     width): [Interp.eval_ibin]'s masks are no-ops for these ops, so the
     arm is op + inline [normalize I32].  Other narrow ops stay on the
     generic [Ibin], whose arm transcribes [eval_ibin] inline. *)
  | Add32 of int * operand * operand
  | Sub32 of int * operand * operand
  | Mul32 of int * operand * operand
  | Ieq of int * operand * operand
  | Ine of int * operand * operand
  | Islt of int * operand * operand
  | Isle of int * operand * operand
  | Isgt of int * operand * operand
  | Isge of int * operand * operand
  | Iult of int * operand * operand
  | Iule of int * operand * operand
  | Iugt of int * operand * operand
  | Iuge of int * operand * operand
  | Ibin of int * Types.t * Instr.ibin * operand * operand
  | Fbin of int * Instr.fbin * operand * operand
  | Fneg of int * operand
  | Fcmp of int * Instr.fcmp * operand * operand
  (* Superinstructions, from the peephole pass ({!fuse}): adjacent pairs
     the O0-style lowering produces constantly.  The [int] before the
     trailing operands is the second constituent's {!Opcode.cost}; the arm
     charges it (step, cost, fuel check) between the two halves, so the
     accounting is exactly as if both instructions had dispatched. *)
  | Ieq_br of int * operand * operand * int * edge * edge
  | Ine_br of int * operand * operand * int * edge * edge
  | Islt_br of int * operand * operand * int * edge * edge
  | Isle_br of int * operand * operand * int * edge * edge
  | Isgt_br of int * operand * operand * int * edge * edge
  | Isge_br of int * operand * operand * int * edge * edge
  | Iult_br of int * operand * operand * int * edge * edge
  | Iule_br of int * operand * operand * int * edge * edge
  | Iugt_br of int * operand * operand * int * edge * edge
  | Iuge_br of int * operand * operand * int * edge * edge
  | Add64_st of int * operand * operand * int * operand
  | Sub64_st of int * operand * operand * int * operand
  | Mul64_st of int * operand * operand * int * operand
  | Add32_st of int * operand * operand * int * operand
  | Sub32_st of int * operand * operand * int * operand
  | Mul32_st of int * operand * operand * int * operand
  | Load_st of int * operand * int * operand
  | Load2 of int * operand * int * int * operand
  | Gep_ld of int * operand * operand array * int array * int * int
  | Gep_st of int * operand * operand array * int array * int * operand
  | Alloca of int * int
  | Load of int * operand
  | Store of operand * operand  (* value, pointer *)
  | Gep of int * operand * operand array * int array  (* base, idxs, strides *)
  | Select of int * operand * operand * operand
  | Call_intr of int * intrinsic * operand array
  | Call_fn of int * int * operand array
  | Call_bad of operand array * string
  | Cast of int * Instr.cast * Types.t * operand
  | Freeze of int * operand
  | Ret of operand
  | Ret_void
  | Jmp of edge
  | Cond_br of operand * edge * edge
  | Switch of operand * int * (int64 * edge) array * edge
    (* scrutinee, extra dispatch cost, cases in source order, default *)
  | Unreachable

type cfunc = {
  c_name : string;
  c_nslots : int;
  c_param_slots : int array;
  c_param_tys : Types.t array;
  c_code : inst array;
  c_costs : int array;  (* per-offset Opcode.cost, charged before dispatch *)
  c_entry : edge;
  c_empty : bool;  (* no blocks: entering raises Func.entry's exception *)
  c_max_copy : int;
}

type i64s = (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t

type program = {
  p_funcs : cfunc array;
  p_main : int;  (* -1 when the module has no [main] *)
  p_globals : (int * Bytes.t * i64s) array;
    (* base address, tag image, bits image *)
  p_brk0 : int;  (* allocation frontier after globals *)
  p_globals_oom : bool;  (* global layout overflows the memory image *)
  p_max_copy : int;
}

let code_size (p : program) =
  Array.fold_left (fun acc c -> acc + Array.length c.c_code) 0 p.p_funcs

(* ------------------------------------------------------------------ *)
(* Compilation                                                         *)
(* ------------------------------------------------------------------ *)

let intrinsic_of_name = function
  | "read_int" -> Some Read_int
  | "read_float" -> Some Read_float
  | "print_int" -> Some Print_int
  | "print_float" -> Some Print_float
  | "abs" -> Some Abs
  | "min" -> Some Min
  | "max" -> Some Max
  | _ -> None

(* Peephole fusion over the flattened code.  Only instruction pairs inside
   one block fuse (the second member is never a block start), and jumps
   only ever target block starts, so no edge can land in the middle of a
   superinstruction.  Edge targets are rewritten through the old-pc ->
   new-pc map afterwards.  Patterns:
   - integer compare feeding the immediately following conditional branch
     (the compare result is still written to its slot — later blocks may
     read it);
   - 64-bit add/sub/mul whose result is the value of the next store;
   - load whose result is the value of the next store (memory copy);
   - two consecutive loads;
   - gep whose result is the pointer of the next load or store. *)
let fuse (code0 : inst array) (costs0 : int array) (is_start : bool array) :
    inst array * int array * int array =
  let n = Array.length code0 in
  let out = ref [] in
  let outc = ref [] in
  let remap = Array.make (max 1 n) 0 in
  let m = ref 0 in
  let emit i c =
    out := i :: !out;
    outc := c :: !outc;
    incr m
  in
  let k = ref 0 in
  while !k < n do
    remap.(!k) <- !m;
    let fused =
      if !k + 1 < n && not is_start.(!k + 1) then
        let c2 = costs0.(!k + 1) in
        match (code0.(!k), code0.(!k + 1)) with
        | Ieq (d, a, b), Cond_br (Slot c, t, e) when c = d ->
            Some (Ieq_br (d, a, b, c2, t, e))
        | Ine (d, a, b), Cond_br (Slot c, t, e) when c = d ->
            Some (Ine_br (d, a, b, c2, t, e))
        | Islt (d, a, b), Cond_br (Slot c, t, e) when c = d ->
            Some (Islt_br (d, a, b, c2, t, e))
        | Isle (d, a, b), Cond_br (Slot c, t, e) when c = d ->
            Some (Isle_br (d, a, b, c2, t, e))
        | Isgt (d, a, b), Cond_br (Slot c, t, e) when c = d ->
            Some (Isgt_br (d, a, b, c2, t, e))
        | Isge (d, a, b), Cond_br (Slot c, t, e) when c = d ->
            Some (Isge_br (d, a, b, c2, t, e))
        | Iult (d, a, b), Cond_br (Slot c, t, e) when c = d ->
            Some (Iult_br (d, a, b, c2, t, e))
        | Iule (d, a, b), Cond_br (Slot c, t, e) when c = d ->
            Some (Iule_br (d, a, b, c2, t, e))
        | Iugt (d, a, b), Cond_br (Slot c, t, e) when c = d ->
            Some (Iugt_br (d, a, b, c2, t, e))
        | Iuge (d, a, b), Cond_br (Slot c, t, e) when c = d ->
            Some (Iuge_br (d, a, b, c2, t, e))
        | Add64 (d, a, b), Store (Slot v, p) when v = d ->
            Some (Add64_st (d, a, b, c2, p))
        | Sub64 (d, a, b), Store (Slot v, p) when v = d ->
            Some (Sub64_st (d, a, b, c2, p))
        | Mul64 (d, a, b), Store (Slot v, p) when v = d ->
            Some (Mul64_st (d, a, b, c2, p))
        | Add32 (d, a, b), Store (Slot v, p) when v = d ->
            Some (Add32_st (d, a, b, c2, p))
        | Sub32 (d, a, b), Store (Slot v, p) when v = d ->
            Some (Sub32_st (d, a, b, c2, p))
        | Mul32 (d, a, b), Store (Slot v, p) when v = d ->
            Some (Mul32_st (d, a, b, c2, p))
        | Load (d, p), Store (Slot v, q) when v = d ->
            Some (Load_st (d, p, c2, q))
        | Load (d1, p1), Load (d2, p2) -> Some (Load2 (d1, p1, c2, d2, p2))
        | Gep (d, base, idxs, strides), Load (d2, Slot p) when p = d ->
            Some (Gep_ld (d, base, idxs, strides, c2, d2))
        | Gep (d, base, idxs, strides), Store (v, Slot p) when p = d ->
            Some (Gep_st (d, base, idxs, strides, c2, v))
        | _ -> None
      else None
    in
    match fused with
    | Some fi ->
        emit fi costs0.(!k);
        k := !k + 2
    | None ->
        emit code0.(!k) costs0.(!k);
        k := !k + 1
  done;
  let re (e : edge) = { e with e_target = remap.(e.e_target) } in
  let code1 =
    Array.map
      (function
        | Jmp e -> Jmp (re e)
        | Cond_br (c, t, e) -> Cond_br (c, re t, re e)
        | Switch (v, x, cs, d) ->
            Switch (v, x, Array.map (fun (key, e) -> (key, re e)) cs, re d)
        | Ieq_br (d, a, b, c2, t, e) -> Ieq_br (d, a, b, c2, re t, re e)
        | Ine_br (d, a, b, c2, t, e) -> Ine_br (d, a, b, c2, re t, re e)
        | Islt_br (d, a, b, c2, t, e) -> Islt_br (d, a, b, c2, re t, re e)
        | Isle_br (d, a, b, c2, t, e) -> Isle_br (d, a, b, c2, re t, re e)
        | Isgt_br (d, a, b, c2, t, e) -> Isgt_br (d, a, b, c2, re t, re e)
        | Isge_br (d, a, b, c2, t, e) -> Isge_br (d, a, b, c2, re t, re e)
        | Iult_br (d, a, b, c2, t, e) -> Iult_br (d, a, b, c2, re t, re e)
        | Iule_br (d, a, b, c2, t, e) -> Iule_br (d, a, b, c2, re t, re e)
        | Iugt_br (d, a, b, c2, t, e) -> Iugt_br (d, a, b, c2, re t, re e)
        | Iuge_br (d, a, b, c2, t, e) -> Iuge_br (d, a, b, c2, re t, re e)
        | i -> i)
      (Array.of_list (List.rev !out))
  in
  (code1, Array.of_list (List.rev !outc), remap)

(* Stride of each gep index position, from the static type chain alone
   (mirrors Interp.gep_addr: first index scales by the pointee size,
   later indices descend into array elements). *)
let strides_of (base_ty : Types.t) (n : int) : int array =
  let out = Array.make n 1 in
  let ty = ref base_ty in
  for k = 0 to n - 1 do
    (match !ty with
    | Types.Ptr t | Types.Arr (t, _) ->
        out.(k) <- Types.size_in_cells t;
        ty := t
    | t ->
        out.(k) <- 1;
        ty := t)
  done;
  out

let compile (m : Irmod.t) : program =
  let funcs = Array.of_list m.funcs in
  (* callee binding: first definition of a name wins (Irmod.find_func) *)
  let ftbl : (string, int) Hashtbl.t = Hashtbl.create 16 in
  Array.iteri
    (fun i (f : Func.t) ->
      if not (Hashtbl.mem ftbl f.name) then Hashtbl.add ftbl f.name i)
    funcs;
  (* global layout is deterministic: a running total of cell counts in
     declaration order.  Last duplicate name wins (interpreter uses
     Hashtbl.replace).  Initialiser images are materialised once. *)
  let gtbl : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let brk = ref 0 in
  let oom = ref false in
  let globals =
    List.map
      (fun (g : Irmod.global) ->
        let cells = max 1 (Types.size_in_cells g.gty) in
        let base = !brk in
        if base + cells >= Interp.mem_size then oom := true;
        brk := base + cells;
        Hashtbl.replace gtbl g.gname base;
        if !oom then
          (* never written: the oom trap fires before globals are laid in *)
          (base, Bytes.empty, Bigarray.Array1.create Int64 C_layout 0)
        else begin
          let img = Bigarray.Array1.create Bigarray.Int64 Bigarray.C_layout cells in
          for i = 0 to cells - 1 do
            img.{i} <- (if i < Array.length g.ginit then g.ginit.(i) else 0L)
          done;
          (base, Bytes.make cells '\000', img)
        end)
      m.globals
    |> Array.of_list
  in
  let compile_func (f : Func.t) : cfunc =
    let blocks = Array.of_list f.blocks in
    (* Slot assignment: params first, then every definition in block order.
       Phis are assigned even when [no_result]: the interpreter binds
       [i.id] for phis unconditionally. *)
    let slots : (int, int) Hashtbl.t = Hashtbl.create 64 in
    let nslots = ref 0 in
    let assign id =
      if not (Hashtbl.mem slots id) then (
        Hashtbl.add slots id !nslots;
        incr nslots)
    in
    List.iter (fun (id, _) -> assign id) f.params;
    Array.iter
      (fun (b : Block.t) ->
        List.iter
          (fun (i : Instr.t) ->
            match i.kind with
            | Instr.Phi _ -> assign i.id
            | _ -> if Instr.defines i then assign i.id)
          b.instrs)
      blocks;
    let slot id = Hashtbl.find slots id in
    let param_slots =
      Array.of_list (List.map (fun (id, _) -> slot id) f.params)
    in
    let param_tys = Array.of_list (List.map snd f.params) in
    (* def_types mirrors the interpreter's table (last definition wins). *)
    let def_types : (int, Types.t) Hashtbl.t = Hashtbl.create 64 in
    List.iter (fun (id, t) -> Hashtbl.replace def_types id t) f.params;
    Array.iter
      (fun (b : Block.t) ->
        List.iter
          (fun (i : Instr.t) ->
            if Instr.defines i then Hashtbl.replace def_types i.id i.ty)
          b.instrs)
      blocks;
    let resolve (v : Value.t) : operand =
      match v with
      | Value.Var id -> (
          match Hashtbl.find_opt slots id with
          | Some s -> Slot s
          | None ->
              Bad (Printf.sprintf "read of unset %%%d in %s" id f.name))
      | Value.IConst (ty, n) -> Cst (0, Interp.normalize ty n)
      | Value.FConst x -> Cst (1, Int64.bits_of_float x)
      | Value.Global g -> (
          match Hashtbl.find_opt gtbl g with
          | Some addr -> Cst (2, Int64.of_int addr)
          | None -> Bad ("unknown global " ^ g))
      | Value.Undef _ -> Cst (0, 0L)
    in
    (* Code layout: per block, the non-phi instructions then the
       terminator.  Jumps resolve labels through a table where the last
       duplicate wins, like the interpreter's block table. *)
    let nblocks = Array.length blocks in
    let block_pc = Array.make (max 1 nblocks) 0 in
    let label_tbl : (string, int) Hashtbl.t = Hashtbl.create 16 in
    let pc = ref 0 in
    Array.iteri
      (fun bi (b : Block.t) ->
        block_pc.(bi) <- !pc;
        Hashtbl.replace label_tbl b.label bi;
        let non_phis =
          List.fold_left
            (fun acc (i : Instr.t) ->
              match i.kind with Instr.Phi _ -> acc | _ -> acc + 1)
            0 b.instrs
        in
        pc := !pc + non_phis + 1)
      blocks;
    let edge_into (pred : string option) (bi : int) : edge =
      let b = blocks.(bi) in
      let tpc = block_pc.(bi) in
      let rec go j dsts srcs = function
        | [] ->
            mk_edge tpc j
              (Array.of_list (List.rev dsts))
              (Array.of_list (List.rev srcs))
              None
        | (i : Instr.t) :: rest -> (
            match i.kind with
            | Instr.Phi incoming -> (
                (* the interpreter charges each phi, then resolves it *)
                match pred with
                | None ->
                    mk_edge tpc (j + 1) [||] [||] (Some "phi in entry block")
                | Some p -> (
                    match
                      List.assoc_opt p
                        (List.map (fun (v, l) -> (l, v)) incoming)
                    with
                    | Some v ->
                        go (j + 1) (slot i.id :: dsts) (resolve v :: srcs)
                          rest
                    | None ->
                        mk_edge tpc (j + 1) [||] [||]
                          (Some
                             (Printf.sprintf "phi %%%d misses edge from %s"
                                i.id p))))
            | _ -> go j dsts srcs rest)
      in
      go 0 [] [] b.instrs
    in
    let make_edge (pred : string) (target : string) : edge =
      match Hashtbl.find_opt label_tbl target with
      | None ->
          mk_edge 0 0 [||] [||] (Some ("jump to unknown block " ^ target))
      | Some bi -> edge_into (Some pred) bi
    in
    let code : inst list ref = ref [] in
    let costs : int list ref = ref [] in
    let emit inst cost =
      code := inst :: !code;
      costs := cost :: !costs
    in
    Array.iter
      (fun (b : Block.t) ->
        List.iter
          (fun (i : Instr.t) ->
            match i.kind with
            | Instr.Phi _ -> ()
            | k ->
                let dst = if Instr.defines i then slot i.id else -1 in
                let inst =
                  match k with
                  | Instr.Phi _ -> assert false
                  | Instr.Ibin (op, a, b') ->
                      (* [eval_ibin] reduces to raw 64-bit ops whenever the
                         type's width is 64 (or non-integral, same fallback) *)
                      let w = try Types.width i.ty with _ -> 64 in
                      let a = resolve a and b' = resolve b' in
                      if w <> 64 then (
                        match (w, op) with
                        | 32, Instr.Add -> Add32 (dst, a, b')
                        | 32, Instr.Sub -> Sub32 (dst, a, b')
                        | 32, Instr.Mul -> Mul32 (dst, a, b')
                        | _ -> Ibin (dst, i.ty, op, a, b'))
                      else (
                        match op with
                        | Instr.Add -> Add64 (dst, a, b')
                        | Instr.Sub -> Sub64 (dst, a, b')
                        | Instr.Mul -> Mul64 (dst, a, b')
                        | Instr.SDiv -> Sdiv64 (dst, a, b')
                        | Instr.SRem -> Srem64 (dst, a, b')
                        | Instr.UDiv -> Udiv64 (dst, a, b')
                        | Instr.URem -> Urem64 (dst, a, b')
                        | Instr.Shl -> Shl64 (dst, a, b')
                        | Instr.LShr -> Lshr64 (dst, a, b')
                        | Instr.AShr -> Ashr64 (dst, a, b')
                        | Instr.And -> And64 (dst, a, b')
                        | Instr.Or -> Or64 (dst, a, b')
                        | Instr.Xor -> Xor64 (dst, a, b'))
                  | Instr.Fbin (op, a, b') ->
                      Fbin (dst, op, resolve a, resolve b')
                  | Instr.Fneg a -> Fneg (dst, resolve a)
                  | Instr.Icmp (p, a, b') -> (
                      let a = resolve a and b' = resolve b' in
                      match p with
                      | Instr.Eq -> Ieq (dst, a, b')
                      | Instr.Ne -> Ine (dst, a, b')
                      | Instr.Slt -> Islt (dst, a, b')
                      | Instr.Sle -> Isle (dst, a, b')
                      | Instr.Sgt -> Isgt (dst, a, b')
                      | Instr.Sge -> Isge (dst, a, b')
                      | Instr.Ult -> Iult (dst, a, b')
                      | Instr.Ule -> Iule (dst, a, b')
                      | Instr.Ugt -> Iugt (dst, a, b')
                      | Instr.Uge -> Iuge (dst, a, b'))
                  | Instr.Fcmp (p, a, b') ->
                      Fcmp (dst, p, resolve a, resolve b')
                  | Instr.Alloca ty -> Alloca (dst, Types.size_in_cells ty)
                  | Instr.Load p -> Load (dst, resolve p)
                  | Instr.Store (v, p) -> Store (resolve v, resolve p)
                  | Instr.Gep (base, idxs) ->
                      let base_ty =
                        match base with
                        | Value.Var id -> (
                            match Hashtbl.find_opt def_types id with
                            | Some t -> t
                            | None -> Types.Ptr Types.I64)
                        | Value.Global g -> (
                            match Irmod.find_global m g with
                            | Some gl -> Types.Ptr gl.gty
                            | None -> Types.Ptr Types.I64)
                        | _ -> Types.Ptr Types.I64
                      in
                      Gep
                        ( dst,
                          resolve base,
                          Array.of_list (List.map resolve idxs),
                          strides_of base_ty (List.length idxs) )
                  | Instr.Select (c, a, b') ->
                      Select (dst, resolve c, resolve a, resolve b')
                  | Instr.Call (callee, args) -> (
                      let rargs = Array.of_list (List.map resolve args) in
                      (* intrinsics shadow module functions, like the
                         interpreter's eval_call *)
                      match intrinsic_of_name callee with
                      | Some it -> Call_intr (dst, it, rargs)
                      | None -> (
                          match Hashtbl.find_opt ftbl callee with
                          | None ->
                              Call_bad
                                (rargs, "call to unknown function " ^ callee)
                          | Some fix ->
                              let nparams =
                                List.length funcs.(fix).Func.params
                              in
                              if Array.length rargs <> nparams then
                                Call_bad
                                  ( rargs,
                                    Printf.sprintf
                                      "arity mismatch calling %s: %d args \
                                       for %d params"
                                      callee (Array.length rargs) nparams )
                              else Call_fn (dst, fix, rargs)))
                  | Instr.Cast (c, a) -> Cast (dst, c, i.ty, resolve a)
                  | Instr.Freeze a -> Freeze (dst, resolve a)
                in
                emit inst (Opcode.cost (Instr.opcode i)))
          b.instrs;
        let term =
          match b.term with
          | Instr.Ret None -> Ret_void
          | Instr.Ret (Some v) -> Ret (resolve v)
          | Instr.Br l -> Jmp (make_edge b.label l)
          | Instr.CondBr (c, t, e) ->
              Cond_br (resolve c, make_edge b.label t, make_edge b.label e)
          | Instr.Switch (v, d, cases) ->
              Switch
                ( resolve v,
                  List.length cases / 2,
                  Array.of_list
                    (List.map (fun (key, l) -> (key, make_edge b.label l)) cases),
                  make_edge b.label d )
          | Instr.Unreachable -> Unreachable
        in
        emit term (Opcode.cost (Instr.opcode_of_terminator b.term)))
      blocks;
    let max_copy =
      Array.fold_left
        (fun acc (b : Block.t) -> max acc (List.length (Block.phis b)))
        0 blocks
    in
    let code0 = Array.of_list (List.rev !code) in
    let costs0 = Array.of_list (List.rev !costs) in
    let is_start = Array.make (max 1 (Array.length code0)) false in
    for bi = 0 to nblocks - 1 do
      is_start.(block_pc.(bi)) <- true
    done;
    let code1, costs1, remap = fuse code0 costs0 is_start in
    let entry =
      if nblocks = 0 then mk_edge 0 0 [||] [||] None else edge_into None 0
    in
    {
      c_name = f.name;
      c_nslots = !nslots;
      c_param_slots = param_slots;
      c_param_tys = param_tys;
      c_code = code1;
      c_costs = costs1;
      c_entry =
        (if Array.length code0 = 0 then entry
         else { entry with e_target = remap.(entry.e_target) });
      c_empty = nblocks = 0;
      c_max_copy = max_copy;
    }
  in
  let cfuncs = Array.map compile_func funcs in
  {
    p_funcs = cfuncs;
    p_main =
      (match Hashtbl.find_opt ftbl "main" with Some i -> i | None -> -1);
    p_globals = globals;
    p_brk0 = !brk;
    p_globals_oom = !oom;
    p_max_copy =
      Array.fold_left (fun acc c -> max acc c.c_max_copy) 0 cfuncs;
  }

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

(* A register/memory bank: a tag byte and an unboxed 64-bit payload per
   cell.  Frames, the memory image and the phi scratch all use this.
   Payload cells start uninitialised — harmless, because every tag starts
   as unit and no unit-tagged payload can reach an observable: all
   conversions check the tag first, and raw moves carry the unit tag
   along. *)
type bank = { tags : Bytes.t; bits : i64s }

let make_bank n =
  {
    tags = Bytes.make n '\003';
    bits = Bigarray.Array1.create Bigarray.Int64 Bigarray.C_layout n;
  }

(* The VM's pooled memory image (cf. Interp.arena for the interpreter). *)
let mem_arena : bank Arena.t =
  Arena.create ~make:(fun () -> make_bank Interp.mem_size)

let arenas_created () = Arena.created mem_arena

type state = {
  prog : program;
  mem : bank;
  mutable brk : int;
  mutable input : int64 list;
  mutable out_rev : int64 list;
  mutable fout_rev : float list;
  mutable steps : int;
  mutable cost : int;
  fuel : int;
  scratch : bank;  (* phi parallel-copy buffer *)
  pools : bank list array;  (* per-function frame free lists *)
  mutable ret_tag : int;
  ret_bits : i64s;  (* 1 cell; a mutable int64 field would box *)
}

let phi_cost = Opcode.cost Opcode.Phi

(* Tag-check failures replicate Interp.as_int/as_float/as_ptr verbatim. *)
let trap_int (t : int) : 'a =
  raise
    (Interp.Trap
       (if t = 1 then "expected integer, got float"
        else if t = 2 then "expected integer, got pointer"
        else "expected integer, got unit"))

let[@inline] geti (fr : bank) (o : operand) : int64 =
  match o with
  | Slot s ->
      let t = Char.code (Bytes.unsafe_get fr.tags s) in
      if t = 0 then Bigarray.Array1.unsafe_get fr.bits s else trap_int t
  | Cst (0, b) -> b
  | Cst (t, _) -> trap_int t
  | Bad msg -> raise (Interp.Trap msg)

let[@inline] getf (fr : bank) (o : operand) : float =
  match o with
  | Slot s ->
      let t = Char.code (Bytes.unsafe_get fr.tags s) in
      if t = 1 then Int64.float_of_bits (Bigarray.Array1.unsafe_get fr.bits s)
      else if t = 0 then Int64.to_float (Bigarray.Array1.unsafe_get fr.bits s)
      else raise (Interp.Trap "expected float")
  | Cst (1, b) -> Int64.float_of_bits b
  | Cst (0, b) -> Int64.to_float b
  | Cst _ -> raise (Interp.Trap "expected float")
  | Bad msg -> raise (Interp.Trap msg)

let[@inline] getp (fr : bank) (o : operand) : int =
  match o with
  | Slot s ->
      let t = Char.code (Bytes.unsafe_get fr.tags s) in
      if t = 0 || t = 2 then
        Int64.to_int (Bigarray.Array1.unsafe_get fr.bits s)
      else raise (Interp.Trap "expected pointer")
  | Cst ((0 | 2), b) -> Int64.to_int b
  | Cst _ -> raise (Interp.Trap "expected pointer")
  | Bad msg -> raise (Interp.Trap msg)

(* Untyped fetch (tag then payload), for moves that don't convert: store
   values, select arms, freeze, returns, call arguments, phi copies.
   [graw] never faults on its own: [gtag] is always called first. *)
let[@inline] gtag (fr : bank) (o : operand) : int =
  match o with
  | Slot s -> Char.code (Bytes.unsafe_get fr.tags s)
  | Cst (t, _) -> t
  | Bad msg -> raise (Interp.Trap msg)

let[@inline] graw (fr : bank) (o : operand) : int64 =
  match o with
  | Slot s -> Bigarray.Array1.unsafe_get fr.bits s
  | Cst (_, b) -> b
  | Bad _ -> 0L

let[@inline] set_t (fr : bank) (dst : int) (t : int) (payload : int64) =
  if dst >= 0 then begin
    Bytes.unsafe_set fr.tags dst (Char.unsafe_chr t);
    Bigarray.Array1.unsafe_set fr.bits dst payload
  end

let[@inline] seti (fr : bank) (dst : int) (x : int64) = set_t fr dst 0 x

let[@inline] setf (fr : bank) (dst : int) (x : float) =
  set_t fr dst 1 (Int64.bits_of_float x)

(* Unsigned int64 compare, as Int64.unsigned_compare implements it. *)
let[@inline] ult (x : int64) (y : int64) =
  Int64.sub x Int64.min_int < Int64.sub y Int64.min_int

(* Interp.normalize, transcribed (cross-module calls would re-box). *)
let[@inline] norm32 (n : int64) : int64 =
  let v = Int64.logand n 0xFFFFFFFFL in
  if v > 0x7FFFFFFFL then Int64.sub v 0x1_0000_0000L else v

let[@inline] norm (ty : Types.t) (n : int64) : int64 =
  match ty with
  | Types.I1 -> Int64.logand n 1L
  | Types.I8 ->
      let v = Int64.logand n 0xFFL in
      if v > 0x7FL then Int64.sub v 0x100L else v
  | Types.I32 -> norm32 n
  | _ -> n

let take_edge_slow (st : state) (frame : bank) (e : edge) : int =
  if e.e_charge > 0 then (
    st.steps <- st.steps + e.e_charge;
    st.cost <- st.cost + (e.e_charge * phi_cost);
    if st.steps > st.fuel then raise Interp.Out_of_fuel);
  (match e.e_fail with Some msg -> raise (Interp.Trap msg) | None -> ());
  let n = Array.length e.e_dst in
  if n > 0 then (
    let sc = st.scratch in
    for i = 0 to n - 1 do
      let o = Array.unsafe_get e.e_src i in
      Bytes.unsafe_set sc.tags i (Char.unsafe_chr (gtag frame o));
      Bigarray.Array1.unsafe_set sc.bits i (graw frame o)
    done;
    for i = 0 to n - 1 do
      let d = Array.unsafe_get e.e_dst i in
      Bytes.unsafe_set frame.tags d (Bytes.unsafe_get sc.tags i);
      Bigarray.Array1.unsafe_set frame.bits d
        (Bigarray.Array1.unsafe_get sc.bits i)
    done);
  e.e_target


let eval_intrinsic (st : state) (frame : bank) (dst : int) (it : intrinsic)
    (args : operand array) : unit =
  (* the interpreter's caller evaluates all arguments (left to right)
     before dispatch, so arity traps fire only after every fetch *)
  let fetch_all () = Array.iter (fun o -> ignore (gtag frame o)) args in
  match it with
  | Read_int -> (
      fetch_all ();
      match st.input with
      | [] -> seti frame dst 0L
      | x :: rest ->
          st.input <- rest;
          seti frame dst x)
  | Read_float -> (
      fetch_all ();
      match st.input with
      | [] -> setf frame dst 0.
      | x :: rest ->
          st.input <- rest;
          setf frame dst (Int64.to_float x))
  | Print_int ->
      if Array.length args = 1 then (
        st.out_rev <- geti frame args.(0) :: st.out_rev;
        set_t frame dst 3 0L)
      else (
        fetch_all ();
        raise (Interp.Trap "print_int arity"))
  | Print_float ->
      if Array.length args = 1 then (
        st.fout_rev <- getf frame args.(0) :: st.fout_rev;
        set_t frame dst 3 0L)
      else (
        fetch_all ();
        raise (Interp.Trap "print_float arity"))
  | Abs ->
      if Array.length args = 1 then (
        let x = geti frame args.(0) in
        seti frame dst (if x >= 0L then x else Int64.neg x))
      else (
        fetch_all ();
        raise (Interp.Trap "abs arity"))
  | Min ->
      if Array.length args = 2 then (
        let ta = gtag frame args.(0) in
        let ba = graw frame args.(0) in
        let tb = gtag frame args.(1) in
        let bb = graw frame args.(1) in
        (* convert right-to-left, like [min (as_int a) (as_int b)] *)
        let y = if tb = 0 then bb else trap_int tb in
        let x = if ta = 0 then ba else trap_int ta in
        seti frame dst (if x <= y then x else y))
      else (
        fetch_all ();
        raise (Interp.Trap "min arity"))
  | Max ->
      if Array.length args = 2 then (
        let ta = gtag frame args.(0) in
        let ba = graw frame args.(0) in
        let tb = gtag frame args.(1) in
        let bb = graw frame args.(1) in
        let y = if tb = 0 then bb else trap_int tb in
        let x = if ta = 0 then ba else trap_int ta in
        seti frame dst (if x >= y then x else y))
      else (
        fetch_all ();
        raise (Interp.Trap "max arity"))

let rec exec (st : state) (f : cfunc) (frame : bank) : unit =
  let code = f.c_code in
  let costs = f.c_costs in
  let fuel = st.fuel in
  let mem = st.mem in
  (* The step/cost counters and the allocation frontier live in loop
     parameters (registers, via self tail calls); [st] holds the canonical
     copy only across calls, slow edges and returns.  The exception paths
     raise without syncing — nothing observes the counters of a run that
     trapped or ran out of fuel. *)
  let rec loop (k : int) (steps0 : int) (cost0 : int) (brk : int) : unit =
    let steps = steps0 + 1 in
    let cost = cost0 + Array.unsafe_get costs k in
    if steps > fuel then raise Interp.Out_of_fuel;
    match Array.unsafe_get code k with
    (* Interp.eval_ibin at width 64: masks and normalize are no-ops.
       Operand order everywhere: [y] (right) fetched before [x] (left). *)
    | Add64 (dst, a, b) ->
        let y = geti frame b in
        let x = geti frame a in
        seti frame dst (Int64.add x y);
        loop (k + 1) steps cost brk
    | Sub64 (dst, a, b) ->
        let y = geti frame b in
        let x = geti frame a in
        seti frame dst (Int64.sub x y);
        loop (k + 1) steps cost brk
    | Mul64 (dst, a, b) ->
        let y = geti frame b in
        let x = geti frame a in
        seti frame dst (Int64.mul x y);
        loop (k + 1) steps cost brk
    | Sdiv64 (dst, a, b) ->
        let y = geti frame b in
        let x = geti frame a in
        if y = 0L then raise (Interp.Trap "division by zero");
        seti frame dst (Int64.div x y);
        loop (k + 1) steps cost brk
    | Srem64 (dst, a, b) ->
        let y = geti frame b in
        let x = geti frame a in
        if y = 0L then raise (Interp.Trap "division by zero");
        seti frame dst (Int64.rem x y);
        loop (k + 1) steps cost brk
    | Udiv64 (dst, a, b) ->
        let y = geti frame b in
        let x = geti frame a in
        if y = 0L then raise (Interp.Trap "division by zero");
        seti frame dst (Int64.unsigned_div x y);
        loop (k + 1) steps cost brk
    | Urem64 (dst, a, b) ->
        let y = geti frame b in
        let x = geti frame a in
        if y = 0L then raise (Interp.Trap "division by zero");
        seti frame dst (Int64.unsigned_rem x y);
        loop (k + 1) steps cost brk
    | Shl64 (dst, a, b) ->
        let y = geti frame b in
        let x = geti frame a in
        seti frame dst
          (Int64.shift_left x (Int64.to_int (Int64.logand y 63L)));
        loop (k + 1) steps cost brk
    | Lshr64 (dst, a, b) ->
        let y = geti frame b in
        let x = geti frame a in
        seti frame dst
          (Int64.shift_right_logical x (Int64.to_int (Int64.logand y 63L)));
        loop (k + 1) steps cost brk
    | Ashr64 (dst, a, b) ->
        let y = geti frame b in
        let x = geti frame a in
        seti frame dst
          (Int64.shift_right x (Int64.to_int (Int64.logand y 63L)));
        loop (k + 1) steps cost brk
    | And64 (dst, a, b) ->
        let y = geti frame b in
        let x = geti frame a in
        seti frame dst (Int64.logand x y);
        loop (k + 1) steps cost brk
    | Or64 (dst, a, b) ->
        let y = geti frame b in
        let x = geti frame a in
        seti frame dst (Int64.logor x y);
        loop (k + 1) steps cost brk
    | Xor64 (dst, a, b) ->
        let y = geti frame b in
        let x = geti frame a in
        seti frame dst (Int64.logxor x y);
        loop (k + 1) steps cost brk
    | Add32 (dst, a, b) ->
        let y = geti frame b in
        let x = geti frame a in
        seti frame dst (norm32 (Int64.add x y));
        loop (k + 1) steps cost brk
    | Sub32 (dst, a, b) ->
        let y = geti frame b in
        let x = geti frame a in
        seti frame dst (norm32 (Int64.sub x y));
        loop (k + 1) steps cost brk
    | Mul32 (dst, a, b) ->
        let y = geti frame b in
        let x = geti frame a in
        seti frame dst (norm32 (Int64.mul x y));
        loop (k + 1) steps cost brk
    | Ibin (dst, ty, op, a, b) ->
        (* Interp.eval_ibin at widths < 64, transcribed (the cross-module
           call would box both operands). *)
        let y = geti frame b in
        let x = geti frame a in
        let w = match ty with Types.I1 -> 1 | Types.I8 -> 8 | _ -> 32 in
        let mask = Int64.sub (Int64.shift_left 1L w) 1L in
        let r =
          match op with
          | Instr.Add -> Int64.add x y
          | Instr.Sub -> Int64.sub x y
          | Instr.Mul -> Int64.mul x y
          | Instr.SDiv ->
              if y = 0L then raise (Interp.Trap "division by zero");
              Int64.div x y
          | Instr.SRem ->
              if y = 0L then raise (Interp.Trap "division by zero");
              Int64.rem x y
          | Instr.UDiv ->
              if y = 0L then raise (Interp.Trap "division by zero");
              Int64.unsigned_div (Int64.logand x mask) (Int64.logand y mask)
          | Instr.URem ->
              if y = 0L then raise (Interp.Trap "division by zero");
              Int64.unsigned_rem (Int64.logand x mask) (Int64.logand y mask)
          | Instr.Shl ->
              Int64.shift_left x (Int64.to_int (Int64.logand y 63L))
          | Instr.LShr ->
              Int64.shift_right_logical (Int64.logand x mask)
                (Int64.to_int (Int64.logand y 63L))
          | Instr.AShr ->
              Int64.shift_right x (Int64.to_int (Int64.logand y 63L))
          | Instr.And -> Int64.logand x y
          | Instr.Or -> Int64.logor x y
          | Instr.Xor -> Int64.logxor x y
        in
        seti frame dst (norm ty r);
        loop (k + 1) steps cost brk
    | Fbin (dst, op, a, b) ->
        let y = getf frame b in
        let x = getf frame a in
        setf frame dst
          (match op with
          | Instr.FAdd -> x +. y
          | Instr.FSub -> x -. y
          | Instr.FMul -> x *. y
          | Instr.FDiv -> x /. y
          | Instr.FRem -> Float.rem x y);
        loop (k + 1) steps cost brk
    | Fneg (dst, a) ->
        setf frame dst (-.getf frame a);
        loop (k + 1) steps cost brk
    | Ieq (dst, a, b) ->
        let y = geti frame b in
        let x = geti frame a in
        seti frame dst (if x = y then 1L else 0L);
        loop (k + 1) steps cost brk
    | Ine (dst, a, b) ->
        let y = geti frame b in
        let x = geti frame a in
        seti frame dst (if x <> y then 1L else 0L);
        loop (k + 1) steps cost brk
    | Islt (dst, a, b) ->
        let y = geti frame b in
        let x = geti frame a in
        seti frame dst (if x < y then 1L else 0L);
        loop (k + 1) steps cost brk
    | Isle (dst, a, b) ->
        let y = geti frame b in
        let x = geti frame a in
        seti frame dst (if x <= y then 1L else 0L);
        loop (k + 1) steps cost brk
    | Isgt (dst, a, b) ->
        let y = geti frame b in
        let x = geti frame a in
        seti frame dst (if x > y then 1L else 0L);
        loop (k + 1) steps cost brk
    | Isge (dst, a, b) ->
        let y = geti frame b in
        let x = geti frame a in
        seti frame dst (if x >= y then 1L else 0L);
        loop (k + 1) steps cost brk
    | Iult (dst, a, b) ->
        let y = geti frame b in
        let x = geti frame a in
        seti frame dst (if ult x y then 1L else 0L);
        loop (k + 1) steps cost brk
    | Iule (dst, a, b) ->
        let y = geti frame b in
        let x = geti frame a in
        seti frame dst (if ult y x then 0L else 1L);
        loop (k + 1) steps cost brk
    | Iugt (dst, a, b) ->
        let y = geti frame b in
        let x = geti frame a in
        seti frame dst (if ult y x then 1L else 0L);
        loop (k + 1) steps cost brk
    | Iuge (dst, a, b) ->
        let y = geti frame b in
        let x = geti frame a in
        seti frame dst (if ult x y then 0L else 1L);
        loop (k + 1) steps cost brk
    | Fcmp (dst, p, a, b) ->
        let y = getf frame b in
        let x = getf frame a in
        let r =
          match p with
          | Instr.Oeq -> x = y
          | Instr.One -> x <> y
          | Instr.Olt -> x < y
          | Instr.Ole -> x <= y
          | Instr.Ogt -> x > y
          | Instr.Oge -> x >= y
        in
        seti frame dst (if r then 1L else 0L);
        loop (k + 1) steps cost brk
    | Ieq_br (dst, a, b, c2, t, e) ->
        let y = geti frame b in
        let x = geti frame a in
        let r = x = y in
        seti frame dst (if r then 1L else 0L);
        let steps = steps + 1 in
        let cost = cost + c2 in
        if steps > fuel then raise Interp.Out_of_fuel;
        branch_to (if r then t else e) steps cost brk
    | Ine_br (dst, a, b, c2, t, e) ->
        let y = geti frame b in
        let x = geti frame a in
        let r = x <> y in
        seti frame dst (if r then 1L else 0L);
        let steps = steps + 1 in
        let cost = cost + c2 in
        if steps > fuel then raise Interp.Out_of_fuel;
        branch_to (if r then t else e) steps cost brk
    | Islt_br (dst, a, b, c2, t, e) ->
        let y = geti frame b in
        let x = geti frame a in
        let r = x < y in
        seti frame dst (if r then 1L else 0L);
        let steps = steps + 1 in
        let cost = cost + c2 in
        if steps > fuel then raise Interp.Out_of_fuel;
        branch_to (if r then t else e) steps cost brk
    | Isle_br (dst, a, b, c2, t, e) ->
        let y = geti frame b in
        let x = geti frame a in
        let r = x <= y in
        seti frame dst (if r then 1L else 0L);
        let steps = steps + 1 in
        let cost = cost + c2 in
        if steps > fuel then raise Interp.Out_of_fuel;
        branch_to (if r then t else e) steps cost brk
    | Isgt_br (dst, a, b, c2, t, e) ->
        let y = geti frame b in
        let x = geti frame a in
        let r = x > y in
        seti frame dst (if r then 1L else 0L);
        let steps = steps + 1 in
        let cost = cost + c2 in
        if steps > fuel then raise Interp.Out_of_fuel;
        branch_to (if r then t else e) steps cost brk
    | Isge_br (dst, a, b, c2, t, e) ->
        let y = geti frame b in
        let x = geti frame a in
        let r = x >= y in
        seti frame dst (if r then 1L else 0L);
        let steps = steps + 1 in
        let cost = cost + c2 in
        if steps > fuel then raise Interp.Out_of_fuel;
        branch_to (if r then t else e) steps cost brk
    | Iult_br (dst, a, b, c2, t, e) ->
        let y = geti frame b in
        let x = geti frame a in
        let r = ult x y in
        seti frame dst (if r then 1L else 0L);
        let steps = steps + 1 in
        let cost = cost + c2 in
        if steps > fuel then raise Interp.Out_of_fuel;
        branch_to (if r then t else e) steps cost brk
    | Iule_br (dst, a, b, c2, t, e) ->
        let y = geti frame b in
        let x = geti frame a in
        let r = not (ult y x) in
        seti frame dst (if r then 1L else 0L);
        let steps = steps + 1 in
        let cost = cost + c2 in
        if steps > fuel then raise Interp.Out_of_fuel;
        branch_to (if r then t else e) steps cost brk
    | Iugt_br (dst, a, b, c2, t, e) ->
        let y = geti frame b in
        let x = geti frame a in
        let r = ult y x in
        seti frame dst (if r then 1L else 0L);
        let steps = steps + 1 in
        let cost = cost + c2 in
        if steps > fuel then raise Interp.Out_of_fuel;
        branch_to (if r then t else e) steps cost brk
    | Iuge_br (dst, a, b, c2, t, e) ->
        let y = geti frame b in
        let x = geti frame a in
        let r = not (ult x y) in
        seti frame dst (if r then 1L else 0L);
        let steps = steps + 1 in
        let cost = cost + c2 in
        if steps > fuel then raise Interp.Out_of_fuel;
        branch_to (if r then t else e) steps cost brk
    | Add64_st (dst, a, b, c2, p) ->
        let y = geti frame b in
        let x = geti frame a in
        let r = Int64.add x y in
        seti frame dst r;
        let steps = steps + 1 in
        let cost = cost + c2 in
        if steps > fuel then raise Interp.Out_of_fuel;
        let addr = getp frame p in
        if addr < 0 || addr >= brk then
          raise (Interp.Trap (Printf.sprintf "store out of bounds: %d" addr));
        Bytes.unsafe_set mem.tags addr '\000';
        Bigarray.Array1.unsafe_set mem.bits addr r;
        loop (k + 1) steps cost brk
    | Sub64_st (dst, a, b, c2, p) ->
        let y = geti frame b in
        let x = geti frame a in
        let r = Int64.sub x y in
        seti frame dst r;
        let steps = steps + 1 in
        let cost = cost + c2 in
        if steps > fuel then raise Interp.Out_of_fuel;
        let addr = getp frame p in
        if addr < 0 || addr >= brk then
          raise (Interp.Trap (Printf.sprintf "store out of bounds: %d" addr));
        Bytes.unsafe_set mem.tags addr '\000';
        Bigarray.Array1.unsafe_set mem.bits addr r;
        loop (k + 1) steps cost brk
    | Mul64_st (dst, a, b, c2, p) ->
        let y = geti frame b in
        let x = geti frame a in
        let r = Int64.mul x y in
        seti frame dst r;
        let steps = steps + 1 in
        let cost = cost + c2 in
        if steps > fuel then raise Interp.Out_of_fuel;
        let addr = getp frame p in
        if addr < 0 || addr >= brk then
          raise (Interp.Trap (Printf.sprintf "store out of bounds: %d" addr));
        Bytes.unsafe_set mem.tags addr '\000';
        Bigarray.Array1.unsafe_set mem.bits addr r;
        loop (k + 1) steps cost brk
    | Add32_st (dst, a, b, c2, p) ->
        let y = geti frame b in
        let x = geti frame a in
        let r = norm32 (Int64.add x y) in
        seti frame dst r;
        let steps = steps + 1 in
        let cost = cost + c2 in
        if steps > fuel then raise Interp.Out_of_fuel;
        let addr = getp frame p in
        if addr < 0 || addr >= brk then
          raise (Interp.Trap (Printf.sprintf "store out of bounds: %d" addr));
        Bytes.unsafe_set mem.tags addr '\000';
        Bigarray.Array1.unsafe_set mem.bits addr r;
        loop (k + 1) steps cost brk
    | Sub32_st (dst, a, b, c2, p) ->
        let y = geti frame b in
        let x = geti frame a in
        let r = norm32 (Int64.sub x y) in
        seti frame dst r;
        let steps = steps + 1 in
        let cost = cost + c2 in
        if steps > fuel then raise Interp.Out_of_fuel;
        let addr = getp frame p in
        if addr < 0 || addr >= brk then
          raise (Interp.Trap (Printf.sprintf "store out of bounds: %d" addr));
        Bytes.unsafe_set mem.tags addr '\000';
        Bigarray.Array1.unsafe_set mem.bits addr r;
        loop (k + 1) steps cost brk
    | Mul32_st (dst, a, b, c2, p) ->
        let y = geti frame b in
        let x = geti frame a in
        let r = norm32 (Int64.mul x y) in
        seti frame dst r;
        let steps = steps + 1 in
        let cost = cost + c2 in
        if steps > fuel then raise Interp.Out_of_fuel;
        let addr = getp frame p in
        if addr < 0 || addr >= brk then
          raise (Interp.Trap (Printf.sprintf "store out of bounds: %d" addr));
        Bytes.unsafe_set mem.tags addr '\000';
        Bigarray.Array1.unsafe_set mem.bits addr r;
        loop (k + 1) steps cost brk
    | Load_st (dst, p, c2, q) ->
        let addr = getp frame p in
        if addr < 0 || addr >= brk then
          raise (Interp.Trap (Printf.sprintf "load out of bounds: %d" addr));
        let t = Char.code (Bytes.unsafe_get mem.tags addr) in
        let payload = Bigarray.Array1.unsafe_get mem.bits addr in
        set_t frame dst t payload;
        let steps = steps + 1 in
        let cost = cost + c2 in
        if steps > fuel then raise Interp.Out_of_fuel;
        let addr2 = getp frame q in
        if addr2 < 0 || addr2 >= brk then
          raise (Interp.Trap (Printf.sprintf "store out of bounds: %d" addr2));
        Bytes.unsafe_set mem.tags addr2 (Char.unsafe_chr t);
        Bigarray.Array1.unsafe_set mem.bits addr2 payload;
        loop (k + 1) steps cost brk
    | Load2 (d1, p1, c2, d2, p2) ->
        let addr = getp frame p1 in
        if addr < 0 || addr >= brk then
          raise (Interp.Trap (Printf.sprintf "load out of bounds: %d" addr));
        set_t frame d1
          (Char.code (Bytes.unsafe_get mem.tags addr))
          (Bigarray.Array1.unsafe_get mem.bits addr);
        let steps = steps + 1 in
        let cost = cost + c2 in
        if steps > fuel then raise Interp.Out_of_fuel;
        let addr2 = getp frame p2 in
        if addr2 < 0 || addr2 >= brk then
          raise (Interp.Trap (Printf.sprintf "load out of bounds: %d" addr2));
        set_t frame d2
          (Char.code (Bytes.unsafe_get mem.tags addr2))
          (Bigarray.Array1.unsafe_get mem.bits addr2);
        loop (k + 1) steps cost brk
    | Gep_ld (dst, base, idxs, strides, c2, d2) ->
        let off = ref 0 in
        for j = 0 to Array.length idxs - 1 do
          off :=
            !off
            + Int64.to_int (geti frame (Array.unsafe_get idxs j))
              * Array.unsafe_get strides j
        done;
        let b = getp frame base in
        let addr = b + !off in
        set_t frame dst 2 (Int64.of_int addr);
        let steps = steps + 1 in
        let cost = cost + c2 in
        if steps > fuel then raise Interp.Out_of_fuel;
        if addr < 0 || addr >= brk then
          raise (Interp.Trap (Printf.sprintf "load out of bounds: %d" addr));
        set_t frame d2
          (Char.code (Bytes.unsafe_get mem.tags addr))
          (Bigarray.Array1.unsafe_get mem.bits addr);
        loop (k + 1) steps cost brk
    | Gep_st (dst, base, idxs, strides, c2, v) ->
        let off = ref 0 in
        for j = 0 to Array.length idxs - 1 do
          off :=
            !off
            + Int64.to_int (geti frame (Array.unsafe_get idxs j))
              * Array.unsafe_get strides j
        done;
        let b = getp frame base in
        let addr = b + !off in
        set_t frame dst 2 (Int64.of_int addr);
        let steps = steps + 1 in
        let cost = cost + c2 in
        if steps > fuel then raise Interp.Out_of_fuel;
        let t = gtag frame v in
        let payload = graw frame v in
        if addr < 0 || addr >= brk then
          raise (Interp.Trap (Printf.sprintf "store out of bounds: %d" addr));
        Bytes.unsafe_set mem.tags addr (Char.unsafe_chr t);
        Bigarray.Array1.unsafe_set mem.bits addr payload;
        loop (k + 1) steps cost brk
    | Alloca (dst, cells) ->
        if brk + cells >= Interp.mem_size then
          raise (Interp.Trap "out of memory");
        Bytes.fill mem.tags brk cells '\000';
        for i = brk to brk + cells - 1 do
          Bigarray.Array1.unsafe_set mem.bits i 0L
        done;
        set_t frame dst 2 (Int64.of_int brk);
        loop (k + 1) steps cost (brk + cells)
    | Load (dst, p) ->
        let addr = getp frame p in
        if addr < 0 || addr >= brk then
          raise (Interp.Trap (Printf.sprintf "load out of bounds: %d" addr));
        set_t frame dst
          (Char.code (Bytes.unsafe_get mem.tags addr))
          (Bigarray.Array1.unsafe_get mem.bits addr);
        loop (k + 1) steps cost brk
    | Store (v, p) ->
        (* value first, then pointer (right-to-left application order) *)
        let t = gtag frame v in
        let payload = graw frame v in
        let addr = getp frame p in
        if addr < 0 || addr >= brk then
          raise (Interp.Trap (Printf.sprintf "store out of bounds: %d" addr));
        Bytes.unsafe_set mem.tags addr (Char.unsafe_chr t);
        Bigarray.Array1.unsafe_set mem.bits addr payload;
        loop (k + 1) steps cost brk
    | Gep (dst, base, idxs, strides) ->
        (* indices convert before the base, as in the interpreter *)
        let off = ref 0 in
        for j = 0 to Array.length idxs - 1 do
          off :=
            !off
            + Int64.to_int (geti frame (Array.unsafe_get idxs j))
              * Array.unsafe_get strides j
        done;
        let b = getp frame base in
        set_t frame dst 2 (Int64.of_int (b + !off));
        loop (k + 1) steps cost brk
    | Select (dst, c, a, b) ->
        let o = if geti frame c <> 0L then a else b in
        let t = gtag frame o in
        set_t frame dst t (graw frame o);
        loop (k + 1) steps cost brk
    | Call_intr (dst, it, args) ->
        eval_intrinsic st frame dst it args;
        loop (k + 1) steps cost brk
    | Call_fn (dst, fix, args) ->
        let callee = Array.unsafe_get st.prog.p_funcs fix in
        let cframe =
          match st.pools.(fix) with
          | fr :: rest ->
              st.pools.(fix) <- rest;
              fr
          | [] -> make_bank callee.c_nslots
        in
        let ps = callee.c_param_slots in
        for j = 0 to Array.length args - 1 do
          let o = Array.unsafe_get args j in
          let t = gtag frame o in
          let payload = graw frame o in
          let s = Array.unsafe_get ps j in
          Bytes.unsafe_set cframe.tags s (Char.unsafe_chr t);
          Bigarray.Array1.unsafe_set cframe.bits s payload
        done;
        if callee.c_empty then
          invalid_arg ("Func.entry: function " ^ callee.c_name ^ " has no blocks");
        st.steps <- steps;
        st.cost <- cost;
        st.brk <- brk;
        exec st callee cframe;
        st.pools.(fix) <- cframe :: st.pools.(fix);
        set_t frame dst st.ret_tag (Bigarray.Array1.unsafe_get st.ret_bits 0);
        loop (k + 1) st.steps st.cost st.brk
    | Call_bad (args, msg) ->
        Array.iter (fun o -> ignore (gtag frame o)) args;
        raise (Interp.Trap msg)
    | Cast (dst, c, ty, a) ->
        (* Interp.eval_cast, transcribed case by case *)
        (match c with
        | Instr.Trunc | Instr.ZExt | Instr.SExt ->
            seti frame dst (norm ty (geti frame a))
        | Instr.FPTrunc | Instr.FPExt -> setf frame dst (getf frame a)
        | Instr.FPToUI | Instr.FPToSI ->
            let x = getf frame a in
            if x <> x (* nan *) then seti frame dst 0L
            else seti frame dst (norm ty (Int64.of_float x))
        | Instr.UIToFP | Instr.SIToFP ->
            setf frame dst (Int64.to_float (geti frame a))
        | Instr.PtrToInt ->
            seti frame dst (Int64.of_int (getp frame a))
        | Instr.IntToPtr ->
            set_t frame dst 2 (Int64.of_int (Int64.to_int (geti frame a)))
        | Instr.Bitcast ->
            let t = gtag frame a in
            set_t frame dst t (graw frame a));
        loop (k + 1) steps cost brk
    | Freeze (dst, a) ->
        let t = gtag frame a in
        set_t frame dst t (graw frame a);
        loop (k + 1) steps cost brk
    | Ret v ->
        let t = gtag frame v in
        let payload = graw frame v in
        st.ret_tag <- t;
        Bigarray.Array1.unsafe_set st.ret_bits 0 payload;
        st.steps <- steps;
        st.cost <- cost;
        st.brk <- brk
    | Ret_void ->
        st.ret_tag <- 3;
        st.steps <- steps;
        st.cost <- cost;
        st.brk <- brk
    | Jmp e -> branch_to e steps cost brk
    | Cond_br (c, t, e) ->
        branch_to (if geti frame c <> 0L then t else e) steps cost brk
    | Switch (v, extra, cases, default) ->
        let cost = cost + extra in
        let x = geti frame v in
        let n = Array.length cases in
        let target = ref default in
        let j = ref 0 in
        let searching = ref true in
        while !searching && !j < n do
          let key, e = Array.unsafe_get cases !j in
          if key = x then (
            target := e;
            searching := false);
          incr j
        done;
        branch_to !target steps cost brk
    | Unreachable -> raise (Interp.Trap "executed unreachable")
  and branch_to (e : edge) (steps : int) (cost : int) (brk : int) : unit =
    if e.e_fast then loop e.e_target steps cost brk
    else begin
      st.steps <- steps;
      st.cost <- cost;
      let t = take_edge_slow st frame e in
      loop t st.steps st.cost brk
    end
  in
  if f.c_entry.e_fast then loop f.c_entry.e_target st.steps st.cost st.brk
  else begin
    let t = take_edge_slow st frame f.c_entry in
    loop t st.steps st.cost st.brk
  end

let run_compiled ?(fuel = 10_000_000) (p : program) (input : int64 list) :
    Interp.outcome =
  Arena.with_mem mem_arena @@ fun mem ->
  let st =
    {
      prog = p;
      mem;
      brk = 0;
      input;
      out_rev = [];
      fout_rev = [];
      steps = 0;
      cost = 0;
      fuel;
      scratch = make_bank (max 1 p.p_max_copy);
      pools = Array.make (Array.length p.p_funcs) [];
      ret_tag = 3;
      ret_bits = Bigarray.Array1.create Bigarray.Int64 Bigarray.C_layout 1;
    }
  in
  if p.p_globals_oom then raise (Interp.Trap "out of memory");
  Array.iter
    (fun (base, gtags, gbits) ->
      let len = Bigarray.Array1.dim gbits in
      Bytes.blit gtags 0 mem.tags base len;
      Bigarray.Array1.blit gbits (Bigarray.Array1.sub mem.bits base len))
    p.p_globals;
  st.brk <- p.p_brk0;
  if p.p_main < 0 then invalid_arg "Irmod.find_func: no function main";
  let main = p.p_funcs.(p.p_main) in
  let frame = make_bank main.c_nslots in
  Array.iteri
    (fun j ty ->
      let s = main.c_param_slots.(j) in
      Bytes.set frame.tags s
        (match ty with Types.F64 -> '\001' | _ -> '\000');
      frame.bits.{s} <- 0L)
    main.c_param_tys;
  if main.c_empty then
    invalid_arg ("Func.entry: function " ^ main.c_name ^ " has no blocks");
  exec st main frame;
  let exit_value =
    match st.ret_tag with
    | 0 -> Interp.RInt st.ret_bits.{0}
    | 1 -> Interp.RFloat (Int64.float_of_bits st.ret_bits.{0})
    | 2 -> Interp.RPtr (Int64.to_int st.ret_bits.{0})
    | _ -> Interp.RUnit
  in
  {
    Interp.output = List.rev st.out_rev;
    foutput = List.rev st.fout_rev;
    exit_value;
    steps = st.steps;
    cost = st.cost;
  }

let run ?fuel (m : Irmod.t) (input : int64 list) : Interp.outcome =
  run_compiled ?fuel (compile m) input
