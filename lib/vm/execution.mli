(** The engine switchboard: one place that decides how IR gets executed.

    Three engines produce bit-identical {!Yali_ir.Interp.outcome}s:
    - [Vm] (the default) — pre-compiling direct-threaded {!Vm};
    - [Ref] — the frozen tree-walking oracle {!Yali_ir.Interp};
    - [Native] — {!Yali_native.Native}: IR → OCaml → [ocamlopt -shared] →
      [Dynlink], with a content-addressed on-disk artifact cache.  When
      the toolchain is unavailable (bytecode build, sandboxed CI, scrubbed
      PATH) it degrades to [Vm] with a single process-wide warning; the
      telemetry counters [execution.native_fallback] (every fallback) and
      [execution.native_fallback_warned] (at most 1) record the path taken.

    The fuzzer, the translation-validation tiers, the games layer and the
    CLI all route through here, so [--engine=ref|native] can re-run any
    campaign under another engine, and a divergence report can name the
    engine that observed it. *)

type engine = Vm | Ref | Native

(** The effective engine: this domain's {!with_engine} override if one is
    active, else the process-wide default ([Vm] unless {!set_engine}d). *)
val get_engine : unit -> engine

(** Set the process-wide default. *)
val set_engine : engine -> unit

(** Run [f] with the engine swapped; restores on exit even if [f] raises.
    The override is domain-local (via [Domain.DLS]), so concurrent runs in
    other domains are unaffected — in particular it does NOT propagate into
    [Exec.Pool] worker domains.  Code that fans work out to a pool should
    resolve the engine first (e.g. call {!prepare} in the submitting
    domain) rather than read {!get_engine} from inside pool tasks. *)
val with_engine : engine -> (unit -> 'a) -> 'a

val engine_of_string : string -> engine option
val engine_to_string : engine -> string

(** Same contract as {!Yali_ir.Interp.run}, dispatched to [engine]
    (default: the effective engine). *)
val run :
  ?engine:engine -> ?fuel:int -> Yali_ir.Irmod.t -> int64 list ->
  Yali_ir.Interp.outcome

(** [prepare m] resolves the engine once and compiles [m] once (VM
    bytecode, or a native plugin — cached across processes); the returned
    closure then runs cheaply per input.  This is the shape the fuzz/check
    loops want: one module, many seeded inputs. *)
val prepare :
  ?engine:engine -> Yali_ir.Irmod.t ->
  fuel:int -> int64 list -> Yali_ir.Interp.outcome
