(** The engine switchboard: one place that decides how IR gets executed.

    Two engines produce bit-identical {!Yali_ir.Interp.outcome}s:
    - [Vm] (the default) — pre-compiling direct-threaded {!Vm};
    - [Ref] — the frozen tree-walking oracle {!Yali_ir.Interp}.

    The fuzzer, the translation-validation tiers, the games layer and the
    CLI all route through here, so [--engine=ref] can re-run any campaign
    under the reference interpreter, and a divergence report can name the
    engine that observed it. *)

type engine = Vm | Ref

(** The process-wide default, [Vm] unless changed.  Reads and writes are
    atomic; {!with_engine} is the usual way to scope a change. *)
val get_engine : unit -> engine

val set_engine : engine -> unit

(** Run [f] with the default engine swapped; restores on exit even if [f]
    raises.  Scoping is process-wide, not per-domain: don't race it against
    concurrent runs that expect the other engine. *)
val with_engine : engine -> (unit -> 'a) -> 'a

val engine_of_string : string -> engine option
val engine_to_string : engine -> string

(** Same contract as {!Yali_ir.Interp.run}, dispatched to [engine]
    (default: the process-wide engine). *)
val run :
  ?engine:engine -> ?fuel:int -> Yali_ir.Irmod.t -> int64 list ->
  Yali_ir.Interp.outcome

(** [prepare m] resolves the engine once and, under [Vm], compiles [m]
    once; the returned closure then runs cheaply per input.  This is the
    shape the fuzz/check loops want: one module, many seeded inputs. *)
val prepare :
  ?engine:engine -> Yali_ir.Irmod.t ->
  fuel:int -> int64 list -> Yali_ir.Interp.outcome
