(** See execution.mli. *)

type engine = Vm | Ref

let current : engine Atomic.t = Atomic.make Vm
let get_engine () = Atomic.get current
let set_engine e = Atomic.set current e

let with_engine e f =
  let prev = Atomic.get current in
  Atomic.set current e;
  Fun.protect ~finally:(fun () -> Atomic.set current prev) f

let engine_of_string = function
  | "vm" -> Some Vm
  | "ref" | "interp" -> Some Ref
  | _ -> None

let engine_to_string = function Vm -> "vm" | Ref -> "ref"

let run ?engine ?fuel m input =
  let e = match engine with Some e -> e | None -> Atomic.get current in
  match e with
  | Vm -> Vm.run ?fuel m input
  | Ref -> Yali_ir.Interp.run ?fuel m input

let prepare ?engine m =
  let e = match engine with Some e -> e | None -> Atomic.get current in
  match e with
  | Vm ->
      let p = Vm.compile m in
      fun ~fuel input -> Vm.run_compiled ~fuel p input
  | Ref -> fun ~fuel input -> Yali_ir.Interp.run ~fuel m input
