(** See execution.mli. *)

type engine = Vm | Ref | Native

let current : engine Atomic.t = Atomic.make Vm

(* Per-domain override, so [with_engine] can't race concurrent runs in
   other domains.  The cell is created lazily per domain. *)
let override : engine option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let get_engine () =
  match !(Domain.DLS.get override) with
  | Some e -> e
  | None -> Atomic.get current

let set_engine e = Atomic.set current e

let with_engine e f =
  let cell = Domain.DLS.get override in
  let prev = !cell in
  cell := Some e;
  Fun.protect ~finally:(fun () -> cell := prev) f

let engine_of_string = function
  | "vm" -> Some Vm
  | "ref" | "interp" -> Some Ref
  | "native" -> Some Native
  | _ -> None

let engine_to_string = function Vm -> "vm" | Ref -> "ref" | Native -> "native"

(* Native-tier fallback: when the toolchain is absent (bytecode build,
   sandboxed CI, scrubbed PATH) or a compile fails, degrade to the VM —
   same contract, just slower.  One warning per process; every fallback is
   counted so tests and telemetry can observe the path taken. *)
let warned = Atomic.make false

let native_fallback why =
  Yali_exec.Telemetry.incr "execution.native_fallback";
  if not (Atomic.exchange warned true) then begin
    Yali_exec.Telemetry.incr "execution.native_fallback_warned";
    Printf.eprintf
      "warning: native engine unavailable (%s); falling back to vm\n%!" why
  end

let prepare ?engine m =
  let e = match engine with Some e -> e | None -> get_engine () in
  match e with
  | Vm ->
      let p = Vm.compile m in
      fun ~fuel input -> Vm.run_compiled ~fuel p input
  | Ref -> fun ~fuel input -> Yali_ir.Interp.run ~fuel m input
  | Native -> (
      match Yali_native.Native.prepare m with
      | Ok p -> fun ~fuel input -> p ~fuel input
      | Error why ->
          native_fallback why;
          let p = Vm.compile m in
          fun ~fuel input -> Vm.run_compiled ~fuel p input)

let run ?engine ?fuel m input =
  let e = match engine with Some e -> e | None -> get_engine () in
  match e with
  | Vm -> Vm.run ?fuel m input
  | Ref -> Yali_ir.Interp.run ?fuel m input
  | Native ->
      let fuel = match fuel with Some f -> f | None -> 10_000_000 in
      prepare ~engine:Native m ~fuel input
