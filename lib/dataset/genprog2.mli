(** A second, structurally different corpus (extension): sixteen
    recursion-heavy problem classes probing the paper's single-dataset
    limitation (§6).  Call-dominated opcode mixes, divide-and-conquer and
    mutual recursion — a different region of program space from the
    loop-dominated {!Genprog}. *)

type problem = {
  pid : int;
  pname : string;
  generate : Yali_util.Rng.t -> Yali_minic.Ast.program;
}

val all : problem list

(** = 16. *)
val count : int

(** A balanced sampling plan over this corpus, mirroring {!Poj.plan}. *)
val plan :
  Yali_util.Rng.t -> train_per_class:int -> test_per_class:int -> Poj.plan

(** A balanced split over this corpus, mirroring {!Poj.make}. *)
val make_split :
  Yali_util.Rng.t -> train_per_class:int -> test_per_class:int -> Poj.split
