(** Dataset assembly: balanced training and test sets over the 104 problem
    classes, in the shape the paper's games consume (§4: 375 training + 125
    test samples per class; this reproduction defaults to smaller per-class
    counts so that a full game grid runs in minutes — see EXPERIMENTS.md). *)

module Rng = Yali_util.Rng

type labelled = { src : Yali_minic.Ast.program; label : int }

type split = { train : labelled array; test : labelled array }

(* -- index-based sampling plans --------------------------------------------

   A plan fixes the whole split — class subset, per-sample rng streams and
   output permutations — without generating a single program.  Sample [k]'s
   stream is [Rng.split_ix sample_base k], a random-access derivation: slot
   [j] of the split can be produced in isolation, in any order, on any
   domain, and the streaming corpus writer and the legacy materialised path
   share one generation order bit for bit. *)

type generator = { g_label : int; g_gen : Rng.t -> Yali_minic.Ast.program }

type plan = {
  gens : generator array;
  train_per_class : int;
  test_per_class : int;
  sample_base : Rng.t;  (** frozen; children via {!Rng.split_ix} *)
  train_perm : int array;  (** slot -> pre-permutation sample index *)
  test_perm : int array;
}

(* Fisher–Yates permutation of [0, n), identical draw pattern to
   [Rng.shuffle] on an n-element list *)
let permutation (rng : Rng.t) (n : int) : int array =
  let p = Array.init n Fun.id in
  for i = n - 1 downto 1 do
    let j = Rng.int rng (i + 1) in
    let tmp = p.(i) in
    p.(i) <- p.(j);
    p.(j) <- tmp
  done;
  p

let plan_of ~(gens : generator array) (rng : Rng.t) ~(train_per_class : int)
    ~(test_per_class : int) : plan =
  let sample_base = Rng.split rng in
  let perm_base = Rng.split rng in
  let nc = Array.length gens in
  {
    gens;
    train_per_class;
    test_per_class;
    sample_base;
    train_perm = permutation (Rng.split_ix perm_base 0) (nc * train_per_class);
    test_perm = permutation (Rng.split_ix perm_base 1) (nc * test_per_class);
  }

let train_size (p : plan) = Array.length p.train_perm
let test_size (p : plan) = Array.length p.test_perm

(* pre-permutation sample [k] of a side: class k/per, repetition k mod per;
   test streams continue after the train block so the two sides never share
   a child index *)
let sample_at (p : plan) ~(test : bool) (k : int) : labelled =
  let per = if test then p.test_per_class else p.train_per_class in
  let g = p.gens.(k / per) in
  let global =
    if test then (Array.length p.gens * p.train_per_class) + k else k
  in
  { src = g.g_gen (Rng.split_ix p.sample_base global); label = g.g_label }

let train_sample (p : plan) (j : int) : labelled =
  sample_at p ~test:false p.train_perm.(j)

let test_sample (p : plan) (j : int) : labelled =
  sample_at p ~test:true p.test_perm.(j)

let plan ?(shuffle_classes = false) (rng : Rng.t) ~(n_classes : int)
    ~(train_per_class : int) ~(test_per_class : int) : plan =
  let problems =
    if shuffle_classes then Rng.sample rng n_classes Genprog.all
    else List.filteri (fun k _ -> k < n_classes) Genprog.all
  in
  let gens =
    Array.of_list
      (List.mapi
         (fun cls (p : Genprog.problem) ->
           { g_label = cls; g_gen = p.generate })
         problems)
  in
  plan_of ~gens rng ~train_per_class ~test_per_class

let realize (p : plan) : split =
  {
    train = Array.init (train_size p) (train_sample p);
    test = Array.init (test_size p) (test_sample p);
  }

(** [make rng ~n_classes ~train_per_class ~test_per_class] builds a balanced
    split over the first [n_classes] problems (or a random subset when
    [shuffle_classes] is set, as in the paper's RQ1, which draws 32 of the
    104 classes at random). *)
let make ?shuffle_classes (rng : Rng.t) ~(n_classes : int)
    ~(train_per_class : int) ~(test_per_class : int) : split =
  realize (plan ?shuffle_classes rng ~n_classes ~train_per_class ~test_per_class)

let labels (xs : labelled array) : int array =
  Array.map (fun x -> x.label) xs
