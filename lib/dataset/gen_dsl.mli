(** The DSL the stochastic program generators are written in: expression
    operators, randomised loop shapes, salted naming and junk insertion.

    Generator contract: every produced program lowers to verified IR and
    terminates quickly and safely in the interpreter on any input stream
    (inputs clamped on read, divisions guarded) — the property the test
    suite relies on to fuzz the transformation passes. *)

open Yali_minic.Ast

(* expressions *)

val i : int -> expr
val v : string -> expr
val ( +@ ) : expr -> expr -> expr
val ( -@ ) : expr -> expr -> expr
val ( *@ ) : expr -> expr -> expr
val ( /@ ) : expr -> expr -> expr
val ( %@ ) : expr -> expr -> expr
val ( <@ ) : expr -> expr -> expr
val ( <=@ ) : expr -> expr -> expr
val ( >@ ) : expr -> expr -> expr
val ( >=@ ) : expr -> expr -> expr
val ( ==@ ) : expr -> expr -> expr
val ( <>@ ) : expr -> expr -> expr
val ( &&@ ) : expr -> expr -> expr
val ( ||@ ) : expr -> expr -> expr
val idx : string -> expr -> expr
val call : string -> expr list -> expr

(* statements *)

val decl : string -> expr -> stmt
val set : string -> expr -> stmt
val seti : string -> expr -> expr -> stmt
val ret : expr -> stmt
val print : expr -> stmt

(** Read an input and clamp it into [lo, hi] — the standard way generators
    accept workload sizes safely. *)
val read_clamped : int -> int -> expr

(* safety combinators, shared with the fuzzer (lib/fuzz): expressions that
   can never trap regardless of operand values *)

(** A strictly positive value derived from [e] ([abs e % 97 + 1]). *)
val nonzero : expr -> expr

(** Division with the denominator forced nonzero. *)
val safe_div : expr -> expr -> expr

(** Modulo with the denominator forced nonzero. *)
val safe_mod : expr -> expr -> expr

(** [safe_index n e] — [abs e % n], a valid index into an array of size
    [n]. *)
val safe_index : int -> expr -> expr

(* naming and randomised shapes *)

type ctx = { rng : Yali_util.Rng.t; salt : int }

val ctx : Yali_util.Rng.t -> ctx

(** A salted variable name: samples of one class draw from different
    identifier pools, like different human authors. *)
val name : ctx -> string -> string

(** A counting loop from [lo] while [< hi], rendered as [for] or [while] at
    random. *)
val count_loop :
  ctx -> var:string -> lo:expr -> hi:expr -> stmt list -> stmt list

(** A loop running down from [hi - 1] to [lo]. *)
val count_down_loop :
  ctx -> var:string -> lo:expr -> hi:expr -> stmt list -> stmt list

(** [acc = acc + e] or [acc = e + acc], at random. *)
val accum : ctx -> string -> expr -> stmt

(** One block of observably-inert scaffolding. *)
val junk_block : ctx -> stmt list

(** Zero to four junk blocks (the main source of intra-class histogram
    variance). *)
val junk : ctx -> stmt list

(** Shuffle independent statements. *)
val reorder : ctx -> stmt list -> stmt list

(** Wrap the computation in a helper function with some probability. *)
val maybe_helper :
  ctx ->
  params:(ty * string) list ->
  fret:ty ->
  body:stmt list ->
  mk_main:(string option -> stmt list) ->
  func list

val program : func list -> program

(** The common generator shape: [prologue @ junk @ body @ epilogue @ return]. *)
val simple_main :
  ?prologue:stmt list -> ?epilogue:stmt list -> ctx -> stmt list -> program
