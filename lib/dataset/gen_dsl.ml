(** A small DSL for writing stochastic program generators: expression
    operators, randomised loop shapes, name salting and junk insertion.  The
    per-class generators in [Genprog_*] are written against this module.

    Generators must produce programs that (a) always lower, and (b) always
    terminate quickly and safely in the interpreter for *any* input stream —
    inputs are clamped on read, divisions guarded.  The test suite exploits
    this: every generated program is a fuzz target for the transformation
    passes. *)

open Yali_minic.Ast
module Rng = Yali_util.Rng

(* -- expressions ---------------------------------------------------------- *)

let i n = IntLit n
let v name = Var name
let ( +@ ) a b = Bin (Add, a, b)
let ( -@ ) a b = Bin (Sub, a, b)
let ( *@ ) a b = Bin (Mul, a, b)
let ( /@ ) a b = Bin (Div, a, b)
let ( %@ ) a b = Bin (Mod, a, b)
let ( <@ ) a b = Bin (Lt, a, b)
let ( <=@ ) a b = Bin (Le, a, b)
let ( >@ ) a b = Bin (Gt, a, b)
let ( >=@ ) a b = Bin (Ge, a, b)
let ( ==@ ) a b = Bin (Eq, a, b)
let ( <>@ ) a b = Bin (Ne, a, b)
let ( &&@ ) a b = Bin (LAnd, a, b)
let ( ||@ ) a b = Bin (LOr, a, b)
let idx a e = Index (a, e)
let call f args = Call (f, args)

(* -- statements ----------------------------------------------------------- *)

let decl n e = Decl (TInt, n, Some e)
let set n e = Assign (n, e)
let seti a ie e = AssignIdx (a, ie, e)
let ret e = Return (Some e)
let print e = Expr (Call ("print_int", [ e ]))

(** [read_clamped lo hi] — read an input and clamp it into [lo, hi]; the
    standard way generators accept workload sizes safely. *)
let read_clamped lo hi =
  (* abs(read_int()) % (hi - lo + 1) + lo *)
  Bin (Add, Bin (Mod, Call ("abs", [ Call ("read_int", []) ]), i (hi - lo + 1)), i lo)

(* -- safety combinators (shared with the fuzzer) -------------------------- *)

(** [nonzero e] — a strictly positive value derived from [e]
    ([abs e % 97 + 1]); the standard safe denominator. *)
let nonzero e = Bin (Add, Bin (Mod, Call ("abs", [ e ]), i 97), i 1)

(** [e1 / e2] with the denominator forced nonzero — never traps. *)
let safe_div a b = Bin (Div, a, nonzero b)

(** [e1 % e2] with the denominator forced nonzero — never traps. *)
let safe_mod a b = Bin (Mod, a, nonzero b)

(** [safe_index n e] — [abs e % n], always a valid index into an array of
    size [n]. *)
let safe_index n e = Bin (Mod, Call ("abs", [ e ]), i n)

(* -- naming --------------------------------------------------------------- *)

type ctx = { rng : Rng.t; salt : int }

let ctx (rng : Rng.t) : ctx = { rng; salt = Rng.int rng 1000 }

(** A salted variable name: samples of the same class use different
    identifier pools, like different human authors would. *)
let name (c : ctx) (base : string) : string =
  match Rng.int c.rng 4 with
  | 0 -> base
  | 1 -> Printf.sprintf "%s%d" base (c.salt mod 10)
  | 2 -> Printf.sprintf "my_%s" base
  | _ -> Printf.sprintf "%s_%d" base (c.salt mod 100)

(* -- randomised control shapes ------------------------------------------- *)

(** A counting loop from [lo] while [< hi], step +1, rendered as [for] or
    [while] at random (both lower to near-identical IR, as real programmers'
    choices do). *)
let count_loop (c : ctx) ~(var : string) ~(lo : expr) ~(hi : expr)
    (body : stmt list) : stmt list =
  match Rng.int c.rng 3 with
  | 0 ->
      [
        For
          ( Some (Decl (TInt, var, Some lo)),
            Some (v var <@ hi),
            Some (set var (v var +@ i 1)),
            body );
      ]
  | 1 ->
      [
        Decl (TInt, var, Some lo);
        While (v var <@ hi, body @ [ set var (v var +@ i 1) ]);
      ]
  | _ ->
      [
        Decl (TInt, var, Some lo);
        For (None, Some (v var <@ hi), Some (set var (v var +@ i 1)), body);
      ]

(** A loop running down from [hi-1] to [lo]. *)
let count_down_loop (c : ctx) ~(var : string) ~(lo : expr) ~(hi : expr)
    (body : stmt list) : stmt list =
  if Rng.bool c.rng then
    [
      For
        ( Some (Decl (TInt, var, Some (hi -@ i 1))),
          Some (v var >=@ lo),
          Some (set var (v var -@ i 1)),
          body );
    ]
  else
    [
      Decl (TInt, var, Some (hi -@ i 1));
      While (v var >=@ lo, body @ [ set var (v var -@ i 1) ]);
    ]

(** Occasionally wrap an accumulation differently: [acc = acc + e] vs
    [acc = e + acc]. *)
let accum (c : ctx) (acc : string) (e : expr) : stmt =
  if Rng.bool c.rng then set acc (v acc +@ e) else set acc (e +@ v acc)

(** Junk statements that survive [-O0] but have no observable effect,
    mimicking the dead scaffolding, debugging leftovers and boilerplate that
    real judge submissions carry.  Junk is the main source of intra-class
    histogram variance: most samples receive some, and a sample can receive
    several blocks including loops and conditional chains. *)
let junk_block (c : ctx) : stmt list =
  let jn = Printf.sprintf "tmp_%d" (Rng.int c.rng 10000) in
  let jm = Printf.sprintf "aux_%d" (Rng.int c.rng 10000) in
  match Rng.int c.rng 6 with
  | 0 -> [ decl jn (i (Rng.int c.rng 100)) ]
  | 1 -> [ decl jn (i (Rng.int c.rng 50)); set jn (v jn *@ i 2) ]
  | 2 ->
      [
        decl jn (i 0);
        If (v jn >@ i (Rng.int c.rng 100 + 100), [ set jn (i 0) ], []);
      ]
  | 3 ->
      (* a dead counting loop *)
      let bound = Rng.int_range c.rng 2 6 in
      [
        decl jn (i 0);
        decl jm (i 0);
        While
          ( v jn <@ i bound,
            [ set jm (v jm +@ (v jn *@ i (Rng.int_range c.rng 2 9)));
              set jn (v jn +@ i 1) ] );
      ]
  | 4 ->
      (* a dead conditional chain *)
      let x = Rng.int c.rng 10 in
      [
        decl jn (i x);
        If
          ( v jn %@ i 3 ==@ i 0,
            [ set jn (v jn +@ i 1) ],
            [ If (v jn %@ i 3 ==@ i 1, [ set jn (v jn -@ i 1) ], []) ] );
      ]
  | _ ->
      (* a dead arithmetic chain *)
      [
        decl jn (i (Rng.int_range c.rng 1 50));
        decl jm ((v jn *@ i 17) %@ i 13);
        set jm (v jm +@ (v jn /@ i 3));
        set jn (Bin (BXor, v jn, v jm));
      ]

let junk (c : ctx) : stmt list =
  let n_blocks =
    match Rng.int c.rng 10 with
    | 0 | 1 | 2 -> 0
    | 3 | 4 | 5 -> 1
    | 6 | 7 -> 2
    | 8 -> 3
    | _ -> 4
  in
  List.concat (List.init n_blocks (fun _ -> junk_block c))

(** Shuffle a list of independent statements (samples order declarations
    differently). *)
let reorder (c : ctx) (ss : stmt list) : stmt list = Rng.shuffle c.rng ss

(** Wrap the computation in a helper function with some probability,
    otherwise keep it inline in [main].  [mk_main] receives the name of the
    function to call (or [None] when inline). *)
let maybe_helper (c : ctx) ~(params : (ty * string) list) ~(fret : ty)
    ~(body : stmt list) ~(mk_main : string option -> stmt list) :
    func list =
  if Rng.bernoulli c.rng 0.4 then
    let hname = name c "compute" in
    [
      { fname = hname; fparams = params; fret; fbody = body };
      { fname = "main"; fparams = []; fret = TInt; fbody = mk_main (Some hname) };
    ]
  else [ { fname = "main"; fparams = []; fret = TInt; fbody = mk_main None } ]

(** Assemble a program from functions (main must be present). *)
let program (funcs : func list) : program = { pfuncs = funcs }

(** The most common generator shape: main reads sizes, computes, prints.
    [body] is spliced between prologue and epilogue. *)
let simple_main ?(prologue = []) ?(epilogue = []) (c : ctx) (body : stmt list)
    : Yali_minic.Ast.program =
  let body = prologue @ junk c @ body @ epilogue @ [ ret (i 0) ] in
  program [ { fname = "main"; fparams = []; fret = TInt; fbody = body } ]
