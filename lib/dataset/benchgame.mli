(** "The Benchmark Game" stand-ins for RQ6 (Figure 13): sixteen
    deterministic compute kernels with fixed workloads, executed by the IR
    interpreter under its per-opcode cost model.  Only cost *ratios* between
    O0 / O3 / O-LLVM builds are reported, mirroring the paper's relative
    running times. *)

(** The sixteen kernels, (name, program) pairs; includes [ary3] and
    [matrix], the paper's named extremes. *)
val all : (string * Yali_minic.Ast.program) list

(** The kernels lowered to IR modules (clang -O0 style), memoized on first
    use: lowering is pure and the modules are shared read-only between
    Figure 13 and the execution-engine benchmarks. *)
val modules : unit -> (string * Yali_ir.Irmod.t) list
