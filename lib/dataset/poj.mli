(** Dataset assembly: balanced training/test splits over the 104 problem
    classes, in the shape the games consume. *)

type labelled = { src : Yali_minic.Ast.program; label : int }

type split = { train : labelled array; test : labelled array }

(** {1 Index-based sampling plans}

    A plan fixes the whole split — class subset, per-sample rng streams,
    output permutations — without generating any program: sample streams
    are derived by index ({!Yali_util.Rng.split_ix}), so any slot can be
    produced in isolation, in any order, on any domain.  The streaming
    corpus writer ({!Yali_corpus}) and the materialised {!make} path both
    go through a plan and therefore share one generation order bit for
    bit. *)

(** One labelled program generator (a problem class under its split-local
    label). *)
type generator = {
  g_label : int;
  g_gen : Yali_util.Rng.t -> Yali_minic.Ast.program;
}

type plan

(** Plan a balanced split over an explicit generator array (used by
    {!Genprog2} and any future corpus). *)
val plan_of :
  gens:generator array ->
  Yali_util.Rng.t ->
  train_per_class:int ->
  test_per_class:int ->
  plan

(** Plan a balanced split over the first [n_classes] POJ problems, or a
    random class subset when [shuffle_classes] is set. *)
val plan :
  ?shuffle_classes:bool ->
  Yali_util.Rng.t ->
  n_classes:int ->
  train_per_class:int ->
  test_per_class:int ->
  plan

val train_size : plan -> int
val test_size : plan -> int

(** [train_sample p j] generates slot [j] of the (already shuffled) training
    side — pure in [j]: equal slots give structurally equal programs. *)
val train_sample : plan -> int -> labelled

val test_sample : plan -> int -> labelled

(** Materialise both sides of a plan ([make] is [realize] of [plan]). *)
val realize : plan -> split

(** Build a balanced split over the first [n_classes] problems, or a random
    class subset when [shuffle_classes] is set (the paper's RQ1 draws 32 of
    104 at random).  Labels are re-indexed 0..n_classes-1. *)
val make :
  ?shuffle_classes:bool ->
  Yali_util.Rng.t ->
  n_classes:int ->
  train_per_class:int ->
  test_per_class:int ->
  split

val labels : labelled array -> int array
