(** A second, structurally different problem corpus — the paper's stated
    limitation is that "most of our conclusions have been drawn from
    experiments performed on a single dataset"; this corpus exists to probe
    that external validity (see [examples/second_dataset.ml]).

    Where the primary corpus ({!Genprog}) is iteration-heavy judge-style
    code, these sixteen classes are recursion- and call-graph-heavy:
    divide-and-conquer, mutual recursion, accumulator passing — a different
    region of program space with different opcode mixes (more [call]/[ret],
    fewer back edges). *)

open Yali_minic.Ast
open Gen_dsl
module Rng = Yali_util.Rng

(* helper to build one recursive function + main that feeds it *)
let rec_program (c : ctx) ~(fname : string) ~(params : (ty * string) list)
    ~(body : stmt list) ~(main_body : stmt list) : program =
  ignore c;
  {
    pfuncs =
      [
        { fname; fparams = params; fret = TInt; fbody = body };
        { fname = "main"; fparams = []; fret = TInt; fbody = main_body };
      ];
  }

(* main bodies that read one or two clamped inputs and print f(inputs) *)
let main1 (c : ctx) (f : string) ~(lo : int) ~(hi : int) : stmt list =
  let x = name c "x" in
  junk c @ [ decl x (read_clamped lo hi); print (call f [ v x ]); ret (i 0) ]

let main1_extra (c : ctx) (f : string) ~(lo : int) ~(hi : int)
    (extra : expr list) : stmt list =
  let x = name c "x" in
  junk c
  @ [ decl x (read_clamped lo hi); print (call f (v x :: extra)); ret (i 0) ]

let main2 (c : ctx) (f : string) ~(lo1 : int) ~(hi1 : int) ~(lo2 : int)
    ~(hi2 : int) : stmt list =
  let x = name c "x" and y = name c "y" in
  junk c
  @ [
      decl x (read_clamped lo1 hi1);
      decl y (read_clamped lo2 hi2);
      print (call f [ v x; v y ]);
      ret (i 0);
    ]

let rec_sum rng =
  let c = ctx rng in
  let f = name c "rsum" and n = name c "n" in
  rec_program c ~fname:f
    ~params:[ (TInt, n) ]
    ~body:
      [
        If (v n <=@ i 0, [ ret (i 0) ], []);
        ret (v n +@ call f [ v n -@ i 1 ]);
      ]
    ~main_body:(main1 c f ~lo:0 ~hi:200)

let rec_factorial rng =
  let c = ctx rng in
  let f = name c "rfact" and n = name c "n" in
  rec_program c ~fname:f
    ~params:[ (TInt, n) ]
    ~body:
      [ If (v n <=@ i 1, [ ret (i 1) ], []); ret (v n *@ call f [ v n -@ i 1 ]) ]
    ~main_body:(main1 c f ~lo:0 ~hi:12)

let rec_fib rng =
  let c = ctx rng in
  let f = name c "rfib" and n = name c "n" in
  rec_program c ~fname:f
    ~params:[ (TInt, n) ]
    ~body:
      [
        If (v n <@ i 2, [ ret (v n) ], []);
        ret (call f [ v n -@ i 1 ] +@ call f [ v n -@ i 2 ]);
      ]
    ~main_body:(main1 c f ~lo:0 ~hi:18)

let rec_gcd rng =
  let c = ctx rng in
  let f = name c "rgcd" in
  let a = name c "a" and b = name c "b" in
  rec_program c ~fname:f
    ~params:[ (TInt, a); (TInt, b) ]
    ~body:
      [ If (v b ==@ i 0, [ ret (v a) ], []); ret (call f [ v b; v a %@ v b ]) ]
    ~main_body:(main2 c f ~lo1:1 ~hi1:1000 ~lo2:1 ~hi2:1000)

let rec_power rng =
  let c = ctx rng in
  let f = name c "rpow" in
  let b = name c "base" and e = name c "e" in
  rec_program c ~fname:f
    ~params:[ (TInt, b); (TInt, e) ]
    ~body:
      [
        If (v e <=@ i 0, [ ret (i 1) ], []);
        (* fast exponentiation: divide and conquer *)
        decl "h" (call f [ v b; v e /@ i 2 ]);
        If
          ( v e %@ i 2 ==@ i 0,
            [ ret (v "h" *@ v "h") ],
            [ ret (v "h" *@ v "h" *@ v b) ] );
      ]
    ~main_body:(main2 c f ~lo1:1 ~hi1:5 ~lo2:0 ~hi2:9)

let mutual_even_odd rng =
  let c = ctx rng in
  let fe = name c "ev" and fo = name c "od" and n = name c "n" in
  {
    pfuncs =
      [
        {
          fname = fe;
          fparams = [ (TInt, n) ];
          fret = TInt;
          fbody =
            [ If (v n ==@ i 0, [ ret (i 1) ], []); ret (call fo [ v n -@ i 1 ]) ];
        };
        {
          fname = fo;
          fparams = [ (TInt, n) ];
          fret = TInt;
          fbody =
            [ If (v n ==@ i 0, [ ret (i 0) ], []); ret (call fe [ v n -@ i 1 ]) ];
        };
        {
          fname = "main";
          fparams = [];
          fret = TInt;
          fbody =
            (let x = name c "x" in
             junk c
             @ [ decl x (read_clamped 0 120); print (call fe [ v x ]); ret (i 0) ]);
        };
      ];
  }

let rec_digit_sum rng =
  let c = ctx rng in
  let f = name c "dsum" and n = name c "n" in
  rec_program c ~fname:f
    ~params:[ (TInt, n) ]
    ~body:
      [
        If (v n <@ i 10, [ ret (v n) ], []);
        ret ((v n %@ i 10) +@ call f [ v n /@ i 10 ]);
      ]
    ~main_body:(main1 c f ~lo:0 ~hi:999999)

let rec_collatz rng =
  let c = ctx rng in
  let f = name c "rcol" and n = name c "n" and d = name c "depth" in
  rec_program c ~fname:f
    ~params:[ (TInt, n); (TInt, d) ]
    ~body:
      [
        If (v n <=@ i 1 ||@ (v d >@ i 250), [ ret (i 0) ], []);
        If
          ( v n %@ i 2 ==@ i 0,
            [ ret (i 1 +@ call f [ v n /@ i 2; v d +@ i 1 ]) ],
            [ ret (i 1 +@ call f [ (v n *@ i 3) +@ i 1; v d +@ i 1 ]) ] );
      ]
    ~main_body:(main1_extra c f ~lo:1 ~hi:300 [ i 0 ])

let rec_binary_search rng =
  let c = ctx rng in
  let f = name c "bs" in
  let lo = name c "lo" and hi = name c "hi" and tgt = name c "tgt" in
  let mid = name c "mid" in
  (* search over an implicit sorted "array" a[k] = 3k+1 *)
  rec_program c ~fname:f
    ~params:[ (TInt, lo); (TInt, hi); (TInt, tgt) ]
    ~body:
      [
        If (v lo >@ v hi, [ ret (i (-1)) ], []);
        decl mid ((v lo +@ v hi) /@ i 2);
        If (((v mid *@ i 3) +@ i 1) ==@ v tgt, [ ret (v mid) ], []);
        If
          ( ((v mid *@ i 3) +@ i 1) <@ v tgt,
            [ ret (call f [ v mid +@ i 1; v hi; v tgt ]) ],
            [ ret (call f [ v lo; v mid -@ i 1; v tgt ]) ] );
      ]
    ~main_body:
      (let x = name c "x" in
       [ decl x (read_clamped 0 300); print (call f [ i 0; i 100; v x ]);
         ret (i 0) ])

let rec_hanoi rng =
  let c = ctx rng in
  let f = name c "hanoi" and n = name c "n" in
  rec_program c ~fname:f
    ~params:[ (TInt, n) ]
    ~body:
      [
        If (v n <=@ i 0, [ ret (i 0) ], []);
        ret (i 1 +@ (i 2 *@ call f [ v n -@ i 1 ]));
      ]
    ~main_body:(main1 c f ~lo:0 ~hi:16)

let rec_ackermann rng =
  let c = ctx rng in
  let f = name c "rack" in
  let m = name c "m" and n = name c "n" in
  rec_program c ~fname:f
    ~params:[ (TInt, m); (TInt, n) ]
    ~body:
      [
        If (v m ==@ i 0, [ ret (v n +@ i 1) ], []);
        If (v n ==@ i 0, [ ret (call f [ v m -@ i 1; i 1 ]) ], []);
        ret (call f [ v m -@ i 1; call f [ v m; v n -@ i 1 ] ]);
      ]
    ~main_body:(main2 c f ~lo1:0 ~hi1:2 ~lo2:0 ~hi2:3)

let rec_max_array rng =
  let c = ctx rng in
  let f = name c "rmax" in
  let lo = name c "lo" and hi = name c "hi" in
  let l = name c "l" and r = name c "r" and mid = name c "mid" in
  let n = name c "n" and k = name c "k" in
  {
    pfuncs =
      [
        {
          fname = f;
          (* arrays cannot be passed in mini-C: recursion over an implicit
             sequence seeded by index arithmetic *)
          fparams = [ (TInt, lo); (TInt, hi) ];
          fret = TInt;
          fbody =
            [
              If (v lo ==@ v hi, [ ret ((v lo *@ i 37) %@ i 101) ], []);
              decl mid ((v lo +@ v hi) /@ i 2);
              decl l (call f [ v lo; v mid ]);
              decl r (call f [ v mid +@ i 1; v hi ]);
              ret (Ternary (v l >@ v r, v l, v r));
            ];
        };
        {
          fname = "main";
          fparams = [];
          fret = TInt;
          fbody =
            [
              decl n (read_clamped 1 60);
              decl k (call f [ i 0; v n ]);
              print (v k);
              ret (i 0);
            ];
        };
      ];
  }

let rec_count_ways rng =
  (* staircase with steps of 1, 2, 3 — tribonacci by recursion *)
  let c = ctx rng in
  let f = name c "ways" and n = name c "n" in
  rec_program c ~fname:f
    ~params:[ (TInt, n) ]
    ~body:
      [
        If (v n <@ i 0, [ ret (i 0) ], []);
        If (v n ==@ i 0, [ ret (i 1) ], []);
        ret
          (call f [ v n -@ i 1 ] +@ call f [ v n -@ i 2 ]
          +@ call f [ v n -@ i 3 ]);
      ]
    ~main_body:(main1 c f ~lo:0 ~hi:14)

let rec_reverse_digits rng =
  let c = ctx rng in
  let f = name c "rrev" in
  let n = name c "n" and acc = name c "acc" in
  rec_program c ~fname:f
    ~params:[ (TInt, n); (TInt, acc) ]
    ~body:
      [
        If (v n ==@ i 0, [ ret (v acc) ], []);
        ret (call f [ v n /@ i 10; (v acc *@ i 10) +@ (v n %@ i 10) ]);
      ]
    ~main_body:(main1_extra c f ~lo:0 ~hi:999999 [ i 0 ])

let rec_mcnugget rng =
  (* can n be written as 6a + 9b + 20c?  recursive search *)
  let c = ctx rng in
  let f = name c "nugget" and n = name c "n" in
  rec_program c ~fname:f
    ~params:[ (TInt, n) ]
    ~body:
      [
        If (v n ==@ i 0, [ ret (i 1) ], []);
        If (v n <@ i 0, [ ret (i 0) ], []);
        If (call f [ v n -@ i 6 ] ==@ i 1, [ ret (i 1) ], []);
        If (call f [ v n -@ i 9 ] ==@ i 1, [ ret (i 1) ], []);
        ret (call f [ v n -@ i 20 ]);
      ]
    ~main_body:(main1 c f ~lo:0 ~hi:60)

let rec_sum_of_squares rng =
  let c = ctx rng in
  let f = name c "rsq" and n = name c "n" in
  rec_program c ~fname:f
    ~params:[ (TInt, n) ]
    ~body:
      [
        If (v n <=@ i 0, [ ret (i 0) ], []);
        ret ((v n *@ v n) +@ call f [ v n -@ i 1 ]);
      ]
    ~main_body:(main1 c f ~lo:0 ~hi:60)

let problems : (string * (Rng.t -> Yali_minic.Ast.program)) list =
  [
    ("rec_sum", rec_sum);
    ("rec_factorial", rec_factorial);
    ("rec_fib", rec_fib);
    ("rec_gcd", rec_gcd);
    ("rec_power", rec_power);
    ("mutual_even_odd", mutual_even_odd);
    ("rec_digit_sum", rec_digit_sum);
    ("rec_collatz", rec_collatz);
    ("rec_binary_search", rec_binary_search);
    ("rec_hanoi", rec_hanoi);
    ("rec_ackermann", rec_ackermann);
    ("rec_max_array", rec_max_array);
    ("rec_count_ways", rec_count_ways);
    ("rec_reverse_digits", rec_reverse_digits);
    ("rec_mcnugget", rec_mcnugget);
    ("rec_sum_of_squares", rec_sum_of_squares);
  ]

type problem = { pid : int; pname : string; generate : Rng.t -> Yali_minic.Ast.program }

let all : problem list =
  List.mapi (fun pid (pname, generate) -> { pid; pname; generate }) problems

let count = List.length all

(** A balanced sampling plan over this corpus, mirroring {!Poj.plan}:
    index-derived per-sample streams, so the streaming corpus writer and
    {!make_split} share one generation order. *)
let plan (rng : Rng.t) ~(train_per_class : int) ~(test_per_class : int) :
    Poj.plan =
  let gens =
    Array.of_list
      (List.map
         (fun p -> { Poj.g_label = p.pid; g_gen = p.generate })
         all)
  in
  Poj.plan_of ~gens rng ~train_per_class ~test_per_class

(** A balanced split over this corpus, mirroring {!Poj.make}. *)
let make_split (rng : Rng.t) ~(train_per_class : int) ~(test_per_class : int) :
    Poj.split =
  Poj.realize (plan rng ~train_per_class ~test_per_class)
