(** "The Benchmark Game" stand-ins for RQ6 (Figure 13): sixteen deterministic
    compute kernels with fixed workloads, executed by the IR interpreter
    under its per-opcode cost model.  The paper measures wall-clock time of
    clang -O0 / -O3 / O-LLVM builds; here, relative abstract cost plays the
    same role (only ratios are reported). *)

open Yali_minic.Ast
open Gen_dsl

(* Kernels are deterministic: no reads; sizes fixed so that each O0 run
   stays in the low hundreds of thousands of interpreter steps. *)

let k_body name body =
  { pfuncs = [ { fname = "main"; fparams = []; fret = TInt; fbody = body } ] }
  |> fun p -> (name, p)

let ary3 =
  (* the paper's pathological case: triple array traversal *)
  k_body "ary3"
    ([ DeclArr ("x", 500); DeclArr ("y", 500) ]
    @ [
        For
          ( Some (Decl (TInt, "k", Some (i 0))),
            Some (v "k" <@ i 500),
            Some (set "k" (v "k" +@ i 1)),
            [ seti "x" (v "k") (v "k" +@ i 1); seti "y" (v "k") (i 0) ] );
        For
          ( Some (Decl (TInt, "r", Some (i 0))),
            Some (v "r" <@ i 60),
            Some (set "r" (v "r" +@ i 1)),
            [
              For
                ( Some (Decl (TInt, "j", Some (i 499))),
                  Some (v "j" >=@ i 0),
                  Some (set "j" (v "j" -@ i 1)),
                  [ seti "y" (v "j") (idx "y" (v "j") +@ idx "x" (v "j")) ] );
            ] );
        print (idx "y" (i 0));
        print (idx "y" (i 499));
        ret (i 0);
      ])

let fibo =
  k_body "fibo"
    [
      decl "a" (i 0);
      decl "b" (i 1);
      For
        ( Some (Decl (TInt, "k", Some (i 0))),
          Some (v "k" <@ i 30000),
          Some (set "k" (v "k" +@ i 1)),
          [
            decl "t" ((v "a" +@ v "b") %@ i 1000000007);
            set "a" (v "b");
            set "b" (v "t");
          ] );
      print (v "a");
      ret (i 0);
    ]

let sieve =
  k_body "sieve"
    ([ DeclArr ("flags", 2000); decl "count" (i 0) ]
    @ [
        For
          ( Some (Decl (TInt, "k", Some (i 0))),
            Some (v "k" <@ i 2000),
            Some (set "k" (v "k" +@ i 1)),
            [ seti "flags" (v "k") (i 1) ] );
        For
          ( Some (Decl (TInt, "p", Some (i 2))),
            Some (v "p" <@ i 2000),
            Some (set "p" (v "p" +@ i 1)),
            [
              If
                ( idx "flags" (v "p") ==@ i 1,
                  [
                    set "count" (v "count" +@ i 1);
                    For
                      ( Some (Decl (TInt, "m", Some (v "p" *@ i 2))),
                        Some (v "m" <@ i 2000),
                        Some (set "m" (v "m" +@ v "p")),
                        [ seti "flags" (v "m") (i 0) ] );
                  ],
                  [] );
            ] );
        print (v "count");
        ret (i 0);
      ])

let matrix =
  (* the paper's best optimizer case: dense matrix multiplication *)
  let n = 14 in
  k_body "matrix"
    ([ DeclArr ("a", n * n); DeclArr ("b", n * n); DeclArr ("c", n * n) ]
    @ [
        For
          ( Some (Decl (TInt, "k", Some (i 0))),
            Some (v "k" <@ i (n * n)),
            Some (set "k" (v "k" +@ i 1)),
            [
              seti "a" (v "k") (v "k" %@ i 17);
              seti "b" (v "k") (v "k" %@ i 13);
            ] );
        For
          ( Some (Decl (TInt, "r", Some (i 0))),
            Some (v "r" <@ i 12),
            Some (set "r" (v "r" +@ i 1)),
            [
              For
                ( Some (Decl (TInt, "x", Some (i 0))),
                  Some (v "x" <@ i n),
                  Some (set "x" (v "x" +@ i 1)),
                  [
                    For
                      ( Some (Decl (TInt, "y", Some (i 0))),
                        Some (v "y" <@ i n),
                        Some (set "y" (v "y" +@ i 1)),
                        [
                          decl "s" (i 0);
                          For
                            ( Some (Decl (TInt, "z", Some (i 0))),
                              Some (v "z" <@ i n),
                              Some (set "z" (v "z" +@ i 1)),
                              [
                                set "s"
                                  (v "s"
                                  +@ (idx "a" ((v "x" *@ i n) +@ v "z")
                                     *@ idx "b" ((v "z" *@ i n) +@ v "y")));
                              ] );
                          seti "c" ((v "x" *@ i n) +@ v "y") (v "s");
                        ] );
                  ] );
            ] );
        print (idx "c" (i 0));
        ret (i 0);
      ])

let nbody_lite =
  (* float kernel: simplified 2-body energy integration *)
  k_body "nbody"
    [
      Decl (TFloat, "px", Some (FloatLit 1.0));
      Decl (TFloat, "py", Some (FloatLit 0.0));
      Decl (TFloat, "vx", Some (FloatLit 0.0));
      Decl (TFloat, "vy", Some (FloatLit 0.9));
      Decl (TFloat, "e", Some (FloatLit 0.0));
      For
        ( Some (Decl (TInt, "k", Some (i 0))),
          Some (v "k" <@ i 8000),
          Some (set "k" (v "k" +@ i 1)),
          [
            Decl (TFloat, "r2", Some ((v "px" *@ v "px") +@ (v "py" *@ v "py") +@ FloatLit 0.01));
            Decl (TFloat, "ax", Some (Un (Neg, v "px") /@ v "r2"));
            Decl (TFloat, "ay", Some (Un (Neg, v "py") /@ v "r2"));
            set "vx" (v "vx" +@ (v "ax" *@ FloatLit 0.01));
            set "vy" (v "vy" +@ (v "ay" *@ FloatLit 0.01));
            set "px" (v "px" +@ (v "vx" *@ FloatLit 0.01));
            set "py" (v "py" +@ (v "vy" *@ FloatLit 0.01));
            set "e" (v "e" +@ (v "vx" *@ v "vx") +@ (v "vy" *@ v "vy"));
          ] );
      Expr (Call ("print_float", [ v "e" ]));
      ret (i 0);
    ]

let spectral_lite =
  k_body "spectral"
    ([ DeclArr ("u", 40); DeclArr ("av", 40) ]
    @ [
        For
          ( Some (Decl (TInt, "k", Some (i 0))),
            Some (v "k" <@ i 40),
            Some (set "k" (v "k" +@ i 1)),
            [ seti "u" (v "k") (i 1) ] );
        For
          ( Some (Decl (TInt, "r", Some (i 0))),
            Some (v "r" <@ i 25),
            Some (set "r" (v "r" +@ i 1)),
            [
              For
                ( Some (Decl (TInt, "x", Some (i 0))),
                  Some (v "x" <@ i 40),
                  Some (set "x" (v "x" +@ i 1)),
                  [
                    decl "s" (i 0);
                    For
                      ( Some (Decl (TInt, "y", Some (i 0))),
                        Some (v "y" <@ i 40),
                        Some (set "y" (v "y" +@ i 1)),
                        [
                          decl "aij"
                            (i 1000000
                            /@ ((v "x" +@ v "y") *@ (v "x" +@ v "y" +@ i 1) /@ i 2
                               +@ v "x" +@ i 1));
                          set "s" (v "s" +@ (v "aij" *@ idx "u" (v "y") /@ i 1000));
                        ] );
                    seti "av" (v "x") (v "s");
                  ] );
              For
                ( Some (Decl (TInt, "x2", Some (i 0))),
                  Some (v "x2" <@ i 40),
                  Some (set "x2" (v "x2" +@ i 1)),
                  [ seti "u" (v "x2") ((idx "av" (v "x2") %@ i 1000) +@ i 1) ] );
            ] );
        print (idx "u" (i 0));
        ret (i 0);
      ])

let mandelbrot_lite =
  k_body "mandelbrot"
    [
      decl "inside" (i 0);
      For
        ( Some (Decl (TInt, "px", Some (i 0))),
          Some (v "px" <@ i 40),
          Some (set "px" (v "px" +@ i 1)),
          [
            For
              ( Some (Decl (TInt, "py", Some (i 0))),
                Some (v "py" <@ i 40),
                Some (set "py" (v "py" +@ i 1)),
                [
                  (* fixed point with scale 1000 *)
                  decl "cx" ((v "px" *@ i 100 /@ i 40) -@ i 2000 /@ i 1);
                  decl "cy" ((v "py" *@ i 100 /@ i 40) -@ i 1250);
                  decl "zx" (i 0);
                  decl "zy" (i 0);
                  decl "it" (i 0);
                  While
                    ( v "it" <@ i 30
                      &&@ ((v "zx" *@ v "zx") +@ (v "zy" *@ v "zy") <@ i 4000000),
                      [
                        decl "nzx" (((v "zx" *@ v "zx") -@ (v "zy" *@ v "zy")) /@ i 1000 +@ v "cx");
                        set "zy" ((i 2 *@ v "zx" *@ v "zy") /@ i 1000 +@ v "cy");
                        set "zx" (v "nzx");
                        set "it" (v "it" +@ i 1);
                      ] );
                  If (v "it" ==@ i 30, [ set "inside" (v "inside" +@ i 1) ], []);
                ] );
          ] );
      print (v "inside");
      ret (i 0);
    ]

let fannkuch_lite =
  k_body "fannkuch"
    ([ DeclArr ("perm", 7); decl "maxflips" (i 0) ]
    @ [
        For
          ( Some (Decl (TInt, "start", Some (i 0))),
            Some (v "start" <@ i 500),
            Some (set "start" (v "start" +@ i 1)),
            [
              For
                ( Some (Decl (TInt, "k", Some (i 0))),
                  Some (v "k" <@ i 7),
                  Some (set "k" (v "k" +@ i 1)),
                  [ seti "perm" (v "k") ((v "k" +@ v "start") %@ i 7) ] );
              decl "flips" (i 0);
              While
                ( idx "perm" (i 0) <>@ i 0 &&@ (v "flips" <@ i 50),
                  [
                    decl "f" (idx "perm" (i 0));
                    decl "lo" (i 0);
                    decl "hi" (v "f");
                    While
                      ( v "lo" <@ v "hi",
                        [
                          decl "t" (idx "perm" (v "lo"));
                          seti "perm" (v "lo") (idx "perm" (v "hi"));
                          seti "perm" (v "hi") (v "t");
                          set "lo" (v "lo" +@ i 1);
                          set "hi" (v "hi" -@ i 1);
                        ] );
                    set "flips" (v "flips" +@ i 1);
                  ] );
              If (v "flips" >@ v "maxflips", [ set "maxflips" (v "flips") ], []);
            ] );
        print (v "maxflips");
        ret (i 0);
      ])

let partial_sums =
  k_body "partialsums"
    [
      decl "s1" (i 0);
      decl "s2" (i 0);
      decl "s3" (i 0);
      For
        ( Some (Decl (TInt, "k", Some (i 1))),
          Some (v "k" <=@ i 8000),
          Some (set "k" (v "k" +@ i 1)),
          [
            set "s1" (v "s1" +@ (i 1000000 /@ v "k"));
            set "s2" (v "s2" +@ (i 1000000 /@ (v "k" *@ v "k")));
            set "s3" (v "s3" +@ (v "k" %@ i 2 *@ i 2 -@ i 1) *@ (i 1000000 /@ v "k"));
          ] );
      print (v "s1");
      print (v "s2");
      print (v "s3");
      ret (i 0);
    ]

let nsieve =
  k_body "nsieve"
    ([ DeclArr ("f", 3000) ]
    @ [
        decl "total" (i 0);
        For
          ( Some (Decl (TInt, "pass", Some (i 0))),
            Some (v "pass" <@ i 3),
            Some (set "pass" (v "pass" +@ i 1)),
            [
              For
                ( Some (Decl (TInt, "k", Some (i 0))),
                  Some (v "k" <@ i 3000),
                  Some (set "k" (v "k" +@ i 1)),
                  [ seti "f" (v "k") (i 1) ] );
              For
                ( Some (Decl (TInt, "p", Some (i 2))),
                  Some (v "p" <@ i 3000),
                  Some (set "p" (v "p" +@ i 1)),
                  [
                    If
                      ( idx "f" (v "p") ==@ i 1,
                        [
                          set "total" (v "total" +@ i 1);
                          For
                            ( Some (Decl (TInt, "m", Some (v "p" +@ v "p"))),
                              Some (v "m" <@ i 3000),
                              Some (set "m" (v "m" +@ v "p")),
                              [ seti "f" (v "m") (i 0) ] );
                        ],
                        [] );
                  ] );
            ] );
        print (v "total");
        ret (i 0);
      ])

let binary_trees_lite =
  (* recursion-heavy kernel *)
  {
    pfuncs =
      [
        {
          fname = "check";
          fparams = [ (TInt, "depth"); (TInt, "node") ];
          fret = TInt;
          fbody =
            [
              If (v "depth" <=@ i 0, [ ret (v "node") ], []);
              ret
                (v "node"
                +@ call "check" [ v "depth" -@ i 1; (v "node" *@ i 2) %@ i 9973 ]
                +@ call "check" [ v "depth" -@ i 1; ((v "node" *@ i 2) +@ i 1) %@ i 9973 ]);
            ];
        };
        {
          fname = "main";
          fparams = [];
          fret = TInt;
          fbody =
            [
              decl "total" (i 0);
              For
                ( Some (Decl (TInt, "d", Some (i 2))),
                  Some (v "d" <=@ i 10),
                  Some (set "d" (v "d" +@ i 1)),
                  [ set "total" ((v "total" +@ call "check" [ v "d"; i 1 ]) %@ i 1000003) ] );
              print (v "total");
              ret (i 0);
            ];
        };
      ];
  }
  |> fun p -> ("binarytrees", p)

let ackermann_bench =
  {
    pfuncs =
      [
        {
          fname = "ack";
          fparams = [ (TInt, "m"); (TInt, "n") ];
          fret = TInt;
          fbody =
            [
              If (v "m" ==@ i 0, [ ret (v "n" +@ i 1) ], []);
              If (v "n" ==@ i 0, [ ret (call "ack" [ v "m" -@ i 1; i 1 ]) ], []);
              ret (call "ack" [ v "m" -@ i 1; call "ack" [ v "m"; v "n" -@ i 1 ] ]);
            ];
        };
        {
          fname = "main";
          fparams = [];
          fret = TInt;
          fbody = [ print (call "ack" [ i 2; i 6 ]); ret (i 0) ];
        };
      ];
  }
  |> fun p -> ("ackermann", p)

let harmonic =
  k_body "harmonic"
    [
      Decl (TFloat, "s", Some (FloatLit 0.0));
      For
        ( Some (Decl (TInt, "k", Some (i 1))),
          Some (v "k" <=@ i 20000),
          Some (set "k" (v "k" +@ i 1)),
          [ set "s" (v "s" +@ (FloatLit 1.0 /@ v "k")) ] );
      Expr (Call ("print_float", [ v "s" ]));
      ret (i 0);
    ]

let random_lcg =
  k_body "random"
    [
      decl "seed" (i 42);
      decl "last" (i 0);
      For
        ( Some (Decl (TInt, "k", Some (i 0))),
          Some (v "k" <@ i 30000),
          Some (set "k" (v "k" +@ i 1)),
          [
            set "seed" (((v "seed" *@ i 3877) +@ i 29573) %@ i 139968);
            set "last" (v "seed" *@ i 100 /@ i 139968);
          ] );
      print (v "last");
      ret (i 0);
    ]

let wordfreq_analog =
  k_body "wordfreq"
    ([ DeclArr ("freq", 64) ]
    @ [
        decl "seed" (i 7);
        For
          ( Some (Decl (TInt, "k", Some (i 0))),
            Some (v "k" <@ i 64),
            Some (set "k" (v "k" +@ i 1)),
            [ seti "freq" (v "k") (i 0) ] );
        For
          ( Some (Decl (TInt, "w", Some (i 0))),
            Some (v "w" <@ i 8000),
            Some (set "w" (v "w" +@ i 1)),
            [
              set "seed" (((v "seed" *@ i 75) +@ i 74) %@ i 65537);
              decl "word" (v "seed" %@ i 64);
              seti "freq" (v "word") (idx "freq" (v "word") +@ i 1);
            ] );
        decl "best" (i 0);
        For
          ( Some (Decl (TInt, "k2", Some (i 1))),
            Some (v "k2" <@ i 64),
            Some (set "k2" (v "k2" +@ i 1)),
            [
              If
                ( idx "freq" (v "k2") >@ idx "freq" (v "best"),
                  [ set "best" (v "k2") ],
                  [] );
            ] );
        print (v "best");
        ret (i 0);
      ])

let strcat_analog =
  k_body "strcat"
    ([ DeclArr ("buf", 4096) ]
    @ [
        decl "len" (i 0);
        For
          ( Some (Decl (TInt, "k", Some (i 0))),
            Some (v "k" <@ i 800),
            Some (set "k" (v "k" +@ i 1)),
            [
              For
                ( Some (Decl (TInt, "c", Some (i 0))),
                  Some (v "c" <@ i 5 &&@ (v "len" <@ i 4095)),
                  Some (set "c" (v "c" +@ i 1)),
                  [
                    seti "buf" (v "len") ((v "k" +@ v "c") %@ i 26);
                    set "len" (v "len" +@ i 1);
                  ] );
            ] );
        print (v "len");
        print (idx "buf" (v "len" -@ i 1));
        ret (i 0);
      ])

(** The sixteen kernels of Figure 13. *)
let all : (string * Yali_minic.Ast.program) list =
  [
    ary3; fibo; sieve; matrix; nbody_lite; spectral_lite; mandelbrot_lite;
    fannkuch_lite; partial_sums; nsieve; binary_trees_lite; ackermann_bench;
    harmonic; random_lcg; wordfreq_analog; strcat_analog;
  ]

let modules : unit -> (string * Yali_ir.Irmod.t) list =
  let memo =
    lazy
      (List.map (fun (n, p) -> (n, Yali_minic.Lower.lower_program p)) all)
  in
  fun () -> Lazy.force memo
