(** Re-export: the pipeline-variant registry now lives in
    {!Yali_check.Pipelines} so the correctness layer (and the VM-vs-interp
    differential oracle) can enumerate it; this alias keeps the historical
    [Fuzz.Pipelines] path working. *)

include Yali_check.Pipelines
