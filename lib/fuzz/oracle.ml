(** The differential oracle: one program, every pipeline variant, identical
    observable behaviour.

    A check lowers the program at [-O0] (the baseline), then for each
    variant applies its stages in order, runs {!Yali_ir.Verify} after every
    stage, and executes the result on a vector of seeded input streams; any
    verifier error, transform exception, runtime fault or observable
    difference from the baseline is reported as a {!failure}.  All
    randomness (obfuscator seeds, input vectors) is derived from the
    caller's rng with {!Yali_util.Rng.split_ix}, so a check is a pure
    function of (rng state, program). *)

module Rng = Yali_util.Rng
module Ir = Yali_ir
module Interp = Yali_ir.Interp
module Execution = Yali_vm.Execution

type failure_kind =
  | Verify_failed of { stage : string; error : string }
  | Transform_crash of { stage : string; error : string }
  | Run_crash of { input_ix : int; error : string }
  | Divergence of { input_ix : int; expected : string; got : string }

type failure = { fvariant : string; fkind : failure_kind }

type result = {
  baseline_ok : bool;  (** the [-O0] build itself lowered, verified, ran *)
  execs : int;  (** interpreter runs performed *)
  failures : failure list;  (** at most one per variant, baseline included *)
}

let failure_kind_to_string = function
  | Verify_failed { stage; error } ->
      Printf.sprintf "verifier error after %s: %s" stage error
  | Transform_crash { stage; error } ->
      Printf.sprintf "exception in %s: %s" stage error
  | Run_crash { input_ix; error } ->
      Printf.sprintf "runtime fault on input #%d: %s" input_ix error
  | Divergence { input_ix; expected; got } ->
      Printf.sprintf "divergence on input #%d: baseline %s, variant %s"
        input_ix expected got

let pp_failure fmt f =
  Format.fprintf fmt "[%s] %s" f.fvariant (failure_kind_to_string f.fkind)

(* render an outcome's observation compactly for reports *)
let observation_to_string (o : Interp.outcome) : string =
  let ints, floats, exitv = Interp.observe o in
  Printf.sprintf "out=[%s] fout=[%s] exit=%s"
    (String.concat ";" (List.map Int64.to_string ints))
    (String.concat ";" (List.map string_of_float floats))
    exitv

(** [inputs_for rng ~vectors ~len] — seeded input streams shared by every
    variant of one check. *)
let inputs_for (rng : Rng.t) ~(vectors : int) ~(len : int) : int64 list array
    =
  Array.init vectors (fun ix ->
      let r = Rng.split_ix rng ix in
      List.init len (fun _ -> Int64.of_int (Rng.int_range r (-1000) 1000)))

let default_fuel = 2_000_000

(* Variant rng streams are keyed by a stable hash of the variant name (not
   its list position), so re-checking a single-variant subset — as the
   shrinker does — reproduces exactly the obfuscator randomness of the
   original full check.  Child 0 is reserved for the input vectors. *)
let variant_salt (name : string) : int =
  let h =
    String.fold_left (fun h ch -> (h * 131) + Char.code ch) 5381 name
  in
  1 + (h land 0xFFFFF)

let verify_errors (m : Ir.Irmod.t) : string option =
  match Ir.Verify.check_module m with
  | [] -> None
  | e :: _ -> Some (Format.asprintf "%a" Ir.Verify.pp_error e)

(* build a variant: apply stages in order, verifying after each *)
let build_variant (rng : Rng.t) (v : Pipelines.variant) (m0 : Ir.Irmod.t) :
    (Ir.Irmod.t, failure_kind) Result.t =
  let rec go m ix = function
    | [] -> Ok m
    | (s : Pipelines.stage) :: rest -> (
        match s.srun (Rng.split_ix rng ix) m with
        | m' -> (
            match verify_errors m' with
            | Some err -> Error (Verify_failed { stage = s.sname; error = err })
            | None -> go m' (ix + 1) rest)
        | exception e ->
            Error
              (Transform_crash
                 { stage = s.sname; error = Printexc.to_string e }))
  in
  go m0 0 v.vstages

let check ?(fuel = default_fuel) ?(variants = Pipelines.all)
    ?(inputs : int64 list array option) (rng : Rng.t)
    (p : Yali_minic.Ast.program) : result =
  let execs = ref 0 in
  let inputs =
    match inputs with
    | Some vs -> vs
    | None -> inputs_for (Rng.split_ix rng 0) ~vectors:3 ~len:32
  in
  let lower () = Yali_minic.Lower.lower_program p in
  match
    let m = lower () in
    match verify_errors m with
    | Some err -> Error (Verify_failed { stage = "lower"; error = err })
    | None ->
        let runm = Execution.prepare m in
        let base =
          Array.map
            (fun input ->
              incr execs;
              runm ~fuel input)
            inputs
        in
        Ok (m, base)
  with
  | exception e ->
      {
        baseline_ok = false;
        execs = !execs;
        failures =
          [
            {
              fvariant = "baseline";
              fkind =
                (match e with
                | Interp.Trap msg ->
                    Run_crash { input_ix = !execs - 1; error = "trap: " ^ msg }
                | Interp.Out_of_fuel ->
                    Run_crash { input_ix = !execs - 1; error = "out of fuel" }
                | e ->
                    Transform_crash
                      { stage = "lower"; error = Printexc.to_string e });
            };
          ];
      }
  | Error kind ->
      {
        baseline_ok = false;
        execs = !execs;
        failures = [ { fvariant = "baseline"; fkind = kind } ];
      }
  | Ok (m0, base) ->
      let failures = ref [] in
      List.iter
        (fun (v : Pipelines.variant) ->
          let vrng = Rng.split_ix rng (variant_salt v.vname) in
          let fail kind =
            failures := { fvariant = v.vname; fkind = kind } :: !failures
          in
          match build_variant vrng v m0 with
          | Error kind -> fail kind
          | Ok m -> (
              let vfuel = fuel * v.vfuel in
              let runv = Execution.prepare m in
              let at_input = ref 0 in
              try
                Array.iteri
                  (fun input_ix input ->
                    at_input := input_ix;
                    incr execs;
                    let o = runv ~fuel:vfuel input in
                    if not (Interp.equal_behaviour base.(input_ix) o) then (
                      failures :=
                        {
                          fvariant = v.vname;
                          fkind =
                            Divergence
                              {
                                input_ix;
                                expected =
                                  observation_to_string base.(input_ix);
                                got = observation_to_string o;
                              };
                        }
                        :: !failures;
                      raise Exit))
                  inputs
              with
              | Exit -> ()
              | Interp.Trap msg ->
                  fail
                    (Run_crash { input_ix = !at_input; error = "trap: " ^ msg })
              | Interp.Out_of_fuel ->
                  fail
                    (Run_crash { input_ix = !at_input; error = "out of fuel" })))
        variants;
      { baseline_ok = true; execs = !execs; failures = List.rev !failures }
