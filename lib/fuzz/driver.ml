(** The fuzzing campaign driver: corpus replay, parallel generation,
    shrinking, reporting.

    A run replays the persistent corpus first (afl-style seed directory),
    then fans freshly generated programs out over the {!Yali_exec.Pool} in
    fixed-size chunks; per-program rng streams are pre-derived with
    {!Yali_util.Rng.split_ix} from the campaign seed, and all counters are
    folded on the calling domain in index order — so findings and telemetry
    totals are bit-identical at any [--jobs] setting.  The optional wall
    [time_budget] is checked between chunks.

    Telemetry counters: [fuzz.programs], [fuzz.corpus], [fuzz.execs],
    [fuzz.verify_failures], [fuzz.divergences], [fuzz.crashes],
    [fuzz.findings]. *)

module Rng = Yali_util.Rng
module Pool = Yali_exec.Pool
module Telemetry = Yali_exec.Telemetry

type config = {
  seed : int;
  count : int;  (** programs to generate (on top of the corpus) *)
  time_budget : float option;  (** wall seconds; checked between chunks *)
  shrink : bool;  (** minimize failing programs before reporting *)
  corpus_dir : string option;  (** replayed first when it exists *)
  save_findings : bool;  (** persist minimized reproducers to the corpus *)
  variants : Pipelines.variant list;
  gen_cfg : Gen.cfg;
  fuel : int;
  shrink_checks : int;  (** predicate-call cap per shrink *)
  log : string -> unit;  (** progress lines; [ignore] for silence *)
}

let default =
  {
    seed = 42;
    count = 100;
    time_budget = None;
    shrink = true;
    corpus_dir = Some Corpus.default_dir;
    save_findings = false;
    variants = Pipelines.all;
    gen_cfg = Gen.default;
    fuel = Oracle.default_fuel;
    shrink_checks = 2_000;
    log = ignore;
  }

type finding = {
  f_origin : string;  (** ["gen:<ix>"] or ["corpus:<file>"] *)
  f_failures : Oracle.failure list;  (** every failing variant *)
  f_program : Yali_minic.Ast.program;
  f_minimized : Yali_minic.Ast.program option;
  f_saved : string option;  (** corpus path when persisted *)
}

type report = {
  r_corpus : int;  (** corpus entries replayed *)
  r_programs : int;  (** programs checked, corpus included *)
  r_execs : int;  (** interpreter runs *)
  r_verify_failures : int;
  r_divergences : int;
  r_crashes : int;  (** transform exceptions and runtime faults *)
  r_findings : finding list;
  r_elapsed : float;
}

(* jobs-independent chunk size: the budget check between chunks and the
   telemetry span count do not depend on the parallelism *)
let chunk_size = 32

let classify (f : Oracle.failure) =
  match f.fkind with
  | Oracle.Verify_failed _ -> `Verify
  | Oracle.Divergence _ -> `Divergence
  | Oracle.Transform_crash _ | Oracle.Run_crash _ -> `Crash

(* the shrink predicate: the candidate still fails the same variant (with a
   healthy baseline), under exactly the detection-time rng *)
let still_fails (cfg : config) (rng : Rng.t) (variant : string)
    (p : Yali_minic.Ast.program) : bool =
  match variant with
  | "baseline" ->
      let r = Oracle.check ~fuel:cfg.fuel ~variants:[] rng p in
      not r.baseline_ok
  | vn -> (
      match List.find_opt (fun (v : Pipelines.variant) -> v.vname = vn) cfg.variants with
      | None -> false
      | Some v ->
          let r = Oracle.check ~fuel:cfg.fuel ~variants:[ v ] rng p in
          r.baseline_ok
          && List.exists (fun (f : Oracle.failure) -> f.fvariant = vn) r.failures)

let make_finding (cfg : config) ~(origin : string) ~(rng : Rng.t)
    (p : Yali_minic.Ast.program) (failures : Oracle.failure list) : finding =
  let minimized =
    if cfg.shrink then
      match failures with
      | [] -> None
      | first :: _ ->
          Some
            (Shrink.run ~max_checks:cfg.shrink_checks
               (still_fails cfg rng first.fvariant)
               p)
    else None
  in
  let saved =
    match (cfg.save_findings, cfg.corpus_dir) with
    | true, Some dir ->
        Some (Corpus.save ~dir (Option.value minimized ~default:p))
    | _ -> None
  in
  {
    f_origin = origin;
    f_failures = failures;
    f_program = p;
    f_minimized = minimized;
    f_saved = saved;
  }

let run (cfg : config) : report =
  let t0 = Telemetry.clock () in
  let root = Rng.make cfg.seed in
  let corpus_rng = Rng.split_ix root 0 in
  let gen_rng = Rng.split_ix root 1 in
  let programs = ref 0
  and execs = ref 0
  and verify_failures = ref 0
  and divergences = ref 0
  and crashes = ref 0 in
  let findings = ref [] in
  (* fold one checked program into the totals, on the calling domain *)
  let absorb ~origin ~rng (p : Yali_minic.Ast.program) (r : Oracle.result) =
    incr programs;
    execs := !execs + r.execs;
    List.iter
      (fun f ->
        match classify f with
        | `Verify -> incr verify_failures
        | `Divergence -> incr divergences
        | `Crash -> incr crashes)
      r.failures;
    if r.failures <> [] then
      findings := make_finding cfg ~origin ~rng p r.failures :: !findings
  in
  (* 1. corpus replay *)
  let corpus_entries =
    match cfg.corpus_dir with None -> [] | Some dir -> Corpus.load dir
  in
  List.iteri
    (fun k (name, entry) ->
      let origin = "corpus:" ^ name in
      match entry with
      | Error msg ->
          incr programs;
          incr crashes;
          findings :=
            {
              f_origin = origin;
              f_failures =
                [
                  {
                    fvariant = "baseline";
                    fkind = Oracle.Transform_crash { stage = "parse"; error = msg };
                  };
                ];
              f_program = { Yali_minic.Ast.pfuncs = [] };
              f_minimized = None;
              f_saved = None;
            }
            :: !findings
      | Ok p ->
          let rng = Rng.split_ix corpus_rng k in
          absorb ~origin ~rng p
            (Oracle.check ~fuel:cfg.fuel ~variants:cfg.variants rng p))
    corpus_entries;
  let replayed = !programs in
  if replayed > 0 then
    cfg.log (Printf.sprintf "replayed %d corpus entr%s" replayed
               (if replayed = 1 then "y" else "ies"));
  (* 2. fresh generation, chunked over the pool *)
  let over_budget () =
    match cfg.time_budget with
    | None -> false
    | Some b -> Telemetry.clock () -. t0 >= b
  in
  let next = ref 0 in
  let stop = ref false in
  while (not !stop) && !next < cfg.count && not (over_budget ()) do
    let n = min chunk_size (cfg.count - !next) in
    let start = !next in
    let slots = Array.make n None in
    Telemetry.with_span "fuzz.chunk" (fun () ->
        Pool.run ~n (fun k ->
            let ix = start + k in
            let pri = Rng.split_ix gen_rng ix in
            let p = Gen.program ~cfg:cfg.gen_cfg (Rng.split_ix pri 0) in
            let orng = Rng.split_ix pri 1 in
            let r = Oracle.check ~fuel:cfg.fuel ~variants:cfg.variants orng p in
            slots.(k) <- Some (ix, p, orng, r)));
    Array.iter
      (function
        | None -> ()
        | Some (ix, p, orng, r) ->
            absorb ~origin:(Printf.sprintf "gen:%d" ix) ~rng:orng p r)
      slots;
    next := start + n;
    cfg.log
      (Printf.sprintf "%6d programs  %8d execs  %d finding%s  %.1fs" !programs
         !execs
         (List.length !findings)
         (if List.length !findings = 1 then "" else "s")
         (Telemetry.clock () -. t0));
    if cfg.count = max_int && cfg.time_budget = None then stop := true
  done;
  (* 3. telemetry: folded once, in deterministic order *)
  Telemetry.incr ~by:!programs "fuzz.programs";
  Telemetry.incr ~by:replayed "fuzz.corpus";
  Telemetry.incr ~by:!execs "fuzz.execs";
  Telemetry.incr ~by:!verify_failures "fuzz.verify_failures";
  Telemetry.incr ~by:!divergences "fuzz.divergences";
  Telemetry.incr ~by:!crashes "fuzz.crashes";
  Telemetry.incr ~by:(List.length !findings) "fuzz.findings";
  {
    r_corpus = replayed;
    r_programs = !programs;
    r_execs = !execs;
    r_verify_failures = !verify_failures;
    r_divergences = !divergences;
    r_crashes = !crashes;
    r_findings = List.rev !findings;
    r_elapsed = Telemetry.clock () -. t0;
  }

(* -- reporting ------------------------------------------------------------- *)

let summary (r : report) : string =
  let b = Buffer.create 256 in
  Printf.bprintf b
    "fuzz: %d programs (%d corpus), %d execs in %.1fs (%.0f execs/s, jobs=%d)\n"
    r.r_programs r.r_corpus r.r_execs r.r_elapsed
    (float_of_int r.r_execs /. Float.max 1e-9 r.r_elapsed)
    (Pool.get_jobs ());
  Printf.bprintf b
    "verify failures: %d  divergences: %d  crashes: %d  findings: %d\n"
    r.r_verify_failures r.r_divergences r.r_crashes
    (List.length r.r_findings);
  List.iter
    (fun f ->
      Printf.bprintf b "\nFAILURE %s\n" f.f_origin;
      List.iter
        (fun fl -> Printf.bprintf b "  %s\n" (Format.asprintf "%a" Oracle.pp_failure fl))
        f.f_failures;
      (match f.f_minimized with
      | Some p ->
          Printf.bprintf b "  minimized to %d statement(s):\n%s"
            (Shrink.stmt_count p)
            (Yali_minic.Pp.program_to_string p)
      | None -> ());
      match f.f_saved with
      | Some path -> Printf.bprintf b "  saved to %s\n" path
      | None -> ())
    r.r_findings;
  Buffer.contents b
