(** Re-export: the persistent corpus now lives in {!Yali_check.Corpus};
    this alias keeps the historical [Fuzz.Corpus] path working. *)

include Yali_check.Corpus
