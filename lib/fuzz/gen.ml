(** Re-export: the program generator now lives in {!Yali_check.Gen} (the
    shared property-testing engine); this alias keeps the historical
    [Fuzz.Gen] path working. *)

include Yali_check.Gen
