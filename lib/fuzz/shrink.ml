(** Re-export: the program minimizer now lives in {!Yali_check.Shrink}
    (built on {!Yali_check.Prop.minimize}); this alias keeps the historical
    [Fuzz.Shrink] path working. *)

include Yali_check.Shrink
