(** The fuzzing campaign driver: corpus replay, parallel generation,
    shrinking, reporting.  Findings and telemetry totals are bit-identical
    at any [--jobs] setting; the optional time budget is checked between
    fixed-size chunks. *)

type config = {
  seed : int;
  count : int;  (** programs to generate (on top of the corpus) *)
  time_budget : float option;  (** wall seconds; checked between chunks *)
  shrink : bool;  (** minimize failing programs before reporting *)
  corpus_dir : string option;  (** replayed first when it exists *)
  save_findings : bool;  (** persist minimized reproducers to the corpus *)
  variants : Pipelines.variant list;
  gen_cfg : Gen.cfg;
  fuel : int;
  shrink_checks : int;  (** predicate-call cap per shrink *)
  log : string -> unit;  (** progress lines; [ignore] for silence *)
}

(** Seed 42, 100 programs, all variants, shrinking on, corpus at
    {!Corpus.default_dir}, no persistence, silent. *)
val default : config

type finding = {
  f_origin : string;  (** ["gen:<ix>"] or ["corpus:<file>"] *)
  f_failures : Oracle.failure list;  (** every failing variant *)
  f_program : Yali_minic.Ast.program;
  f_minimized : Yali_minic.Ast.program option;
  f_saved : string option;  (** corpus path when persisted *)
}

type report = {
  r_corpus : int;  (** corpus entries replayed *)
  r_programs : int;  (** programs checked, corpus included *)
  r_execs : int;  (** interpreter runs *)
  r_verify_failures : int;
  r_divergences : int;
  r_crashes : int;  (** transform exceptions and runtime faults *)
  r_findings : finding list;
  r_elapsed : float;
}

val run : config -> report

(** Human-readable report: totals, then each finding with its minimized
    reproducer. *)
val summary : report -> string
