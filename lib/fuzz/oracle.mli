(** The differential oracle: one program, every pipeline variant, identical
    observable behaviour.

    A check lowers the program at [-O0] (the baseline), applies each
    variant's stages with {!Yali_ir.Verify} after every stage, and runs the
    result on a vector of seeded input streams; verifier errors, transform
    exceptions, runtime faults and observable differences are reported as
    failures.  A check is a pure function of (rng state, program): all
    randomness is derived via {!Yali_util.Rng.split_ix}. *)

type failure_kind =
  | Verify_failed of { stage : string; error : string }
  | Transform_crash of { stage : string; error : string }
  | Run_crash of { input_ix : int; error : string }
  | Divergence of { input_ix : int; expected : string; got : string }

type failure = { fvariant : string; fkind : failure_kind }

type result = {
  baseline_ok : bool;  (** the [-O0] build itself lowered, verified, ran *)
  execs : int;  (** interpreter runs performed *)
  failures : failure list;  (** at most one per variant, baseline included *)
}

val failure_kind_to_string : failure_kind -> string
val pp_failure : Format.formatter -> failure -> unit

(** Seeded input streams shared by every variant of one check (does not
    advance [rng]). *)
val inputs_for : Yali_util.Rng.t -> vectors:int -> len:int -> int64 list array

(** Baseline interpreter fuel; variants get [fuel * vfuel]. *)
val default_fuel : int

val check :
  ?fuel:int ->
  ?variants:Pipelines.variant list ->
  ?inputs:int64 list array ->
  Yali_util.Rng.t ->
  Yali_minic.Ast.program ->
  result
