(** See bin.mli.  All multi-byte quantities are little-endian. *)

exception Corrupt of string

type r = { src : string; mutable pos : int }

let reader src = { src; pos = 0 }
let pos r = r.pos
let remaining r = String.length r.src - r.pos

let fail r what =
  raise (Corrupt (Printf.sprintf "%s at byte %d of %d" what r.pos
                    (String.length r.src)))

let expect_end r =
  if remaining r <> 0 then
    fail r (Printf.sprintf "%d trailing bytes" (remaining r))

(* -- writers --------------------------------------------------------------- *)

let w_u8 b v = Buffer.add_uint8 b (v land 0xff)
let w_u16 b v = Buffer.add_uint16_le b (v land 0xffff)

let w_u32 b v =
  if v < 0 || v > 0xffff_ffff then
    invalid_arg (Printf.sprintf "Bin.w_u32: %d out of range" v);
  Buffer.add_int32_le b (Int32.of_int v)

let w_i64 b v = Buffer.add_int64_le b v
let w_int b v = w_i64 b (Int64.of_int v)
let w_f64 b v = w_i64 b (Int64.bits_of_float v)
let w_bool b v = w_u8 b (if v then 1 else 0)

let w_str b s =
  w_u32 b (String.length s);
  Buffer.add_string b s

let w_seq b f xs =
  w_u32 b (List.length xs);
  List.iter (f b) xs

let w_arr b f xs =
  w_u32 b (Array.length xs);
  Array.iter (f b) xs

let w_floats b xs = w_arr b w_f64 xs
let w_ints b xs = w_arr b w_int xs

(* -- readers --------------------------------------------------------------- *)

let need r n what = if n < 0 || remaining r < n then fail r ("truncated " ^ what)

let r_u8 r =
  need r 1 "u8";
  let v = Char.code r.src.[r.pos] in
  r.pos <- r.pos + 1;
  v

let r_u16 r =
  need r 2 "u16";
  let v = String.get_uint16_le r.src r.pos in
  r.pos <- r.pos + 2;
  v

let r_u32 r =
  need r 4 "u32";
  let v = Int32.to_int (String.get_int32_le r.src r.pos) land 0xffff_ffff in
  r.pos <- r.pos + 4;
  v

let r_i64 r =
  need r 8 "i64";
  let v = String.get_int64_le r.src r.pos in
  r.pos <- r.pos + 8;
  v

(* a round trip of [w_int] always fits: the value came from an OCaml int *)
let r_int r = Int64.to_int (r_i64 r)

let r_f64 r = Int64.float_of_bits (r_i64 r)

let r_bool r =
  match r_u8 r with
  | 0 -> false
  | 1 -> true
  | n -> fail r (Printf.sprintf "bad bool tag %d" n)

let r_raw r n =
  need r n "bytes";
  let s = String.sub r.src r.pos n in
  r.pos <- r.pos + n;
  s

let r_str r =
  let n = r_u32 r in
  r_raw r n

let r_count r what =
  let n = r_u32 r in
  (* every element takes at least one byte, so a count beyond the remaining
     input is corrupt — this bounds allocation on hostile lengths *)
  if n > remaining r then fail r (Printf.sprintf "overlong %s count %d" what n);
  n

let r_seq r f = List.init (r_count r "seq") (fun _ -> f r)
let r_arr r f = Array.init (r_count r "array") (fun _ -> f r)
let r_floats r = r_arr r r_f64
let r_ints r = r_arr r r_int
