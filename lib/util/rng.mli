(** Deterministic, splittable pseudo-random number generator (splitmix64).

    Every stochastic component of the framework draws from an explicit
    [Rng.t]; there is no global state, so experiments are reproducible from
    a single seed and property tests are stable. *)

type t

(** Create a generator from a seed. *)
val make : int -> t

(** An independent copy: advancing one does not affect the other. *)
val copy : t -> t

(** Draw the next raw 64-bit value (advances the state). *)
val next_int64 : t -> int64

(** Derive an independent generator (advances this one once). *)
val split : t -> t

(** [split_ix t i] is the [i]-th child stream of [t]'s current state,
    derived deterministically and {e without advancing [t]}: equal
    (state, index) pairs give equal children, distinct indices give
    independent streams.  Seed one child per task index before fanning a
    loop out over domains and the loop's randomness no longer depends on
    execution order. *)
val split_ix : t -> int -> t

(** [split_n t n] pre-derives [n] children, exactly as [n] successive
    {!split} calls would (advances [t] [n] times).  Lifts a
    [split]-per-iteration loop into loop bodies that never touch the
    shared generator, preserving every stream bit for bit. *)
val split_n : t -> int -> t array

(** Uniform integer in [0, bound).  @raise Invalid_argument on bound <= 0 *)
val int : t -> int -> int

(** Uniform integer in [lo, hi], inclusive. *)
val int_range : t -> int -> int -> int

(** Uniform float in [0, 1). *)
val float : t -> float

val bool : t -> bool

(** Bernoulli draw with probability [p]. *)
val bernoulli : t -> float -> bool

(** Standard normal deviate (Box–Muller). *)
val gaussian : t -> float

(** Uniform element of a non-empty list. *)
val choice : t -> 'a list -> 'a

(** Uniform element of a non-empty array. *)
val choice_arr : t -> 'a array -> 'a

(** Fisher–Yates shuffle; returns a fresh list. *)
val shuffle : t -> 'a list -> 'a list

(** [sample t k xs] draws [k] elements without replacement. *)
val sample : t -> int -> 'a list -> 'a list

(** Weighted choice; weights need not be normalised.
    @raise Invalid_argument when the total weight is not positive *)
val weighted_choice : t -> ('a * float) list -> 'a
