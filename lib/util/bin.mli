(** Little-endian binary readers and writers: the byte-level substrate of
    the serving layer's wire format ({!Yali_serve.Codec}) and of the model
    snapshots ({!Yali_ml.Model.save}).

    Writers append to a plain [Buffer.t]; readers walk a [string] with an
    explicit cursor and validate every access, so a truncated or corrupted
    input always raises {!Corrupt} — never an out-of-bounds crash or a
    silently wrong value.  Floats travel as their IEEE-754 bit patterns,
    so a round trip is bit-identical (NaN payloads included). *)

(** Raised by every reader on malformed input (truncation, bad tag,
    negative length, trailing bytes).  The message says what was expected
    and at which byte offset. *)
exception Corrupt of string

type r
(** A read cursor over an immutable byte string. *)

val reader : string -> r

(** Current cursor position, in bytes from the start. *)
val pos : r -> int

(** Bytes left between the cursor and the end of the input. *)
val remaining : r -> int

(** @raise Corrupt when input remains past the cursor. *)
val expect_end : r -> unit

val fail : r -> string -> 'a
(** [fail r what] raises {!Corrupt} mentioning [what] and the offset. *)

(** {1 Writers} *)

val w_u8 : Buffer.t -> int -> unit
val w_u16 : Buffer.t -> int -> unit

(** @raise Invalid_argument when the value does not fit in 32 unsigned
    bits (lengths and counts are always non-negative). *)
val w_u32 : Buffer.t -> int -> unit

val w_i64 : Buffer.t -> int64 -> unit

(** The int as a full i64 (OCaml ints fit). *)
val w_int : Buffer.t -> int -> unit

(** IEEE-754 bits, 8 bytes. *)
val w_f64 : Buffer.t -> float -> unit

val w_bool : Buffer.t -> bool -> unit

(** u32 byte length + raw bytes. *)
val w_str : Buffer.t -> string -> unit

(** u32 count + each element via [f]. *)
val w_seq : Buffer.t -> (Buffer.t -> 'a -> unit) -> 'a list -> unit

val w_arr : Buffer.t -> (Buffer.t -> 'a -> unit) -> 'a array -> unit
val w_floats : Buffer.t -> float array -> unit
val w_ints : Buffer.t -> int array -> unit

(** {1 Readers (each raises {!Corrupt} on truncation)} *)

val r_u8 : r -> int
val r_u16 : r -> int
val r_u32 : r -> int
val r_i64 : r -> int64
val r_int : r -> int
val r_f64 : r -> float
val r_bool : r -> bool
val r_str : r -> string

(** [r_raw r n] reads exactly [n] raw bytes. *)
val r_raw : r -> int -> string

val r_seq : r -> (r -> 'a) -> 'a list
val r_arr : r -> (r -> 'a) -> 'a array
val r_floats : r -> float array
val r_ints : r -> int array
