(** Deterministic, splittable pseudo-random number generator (splitmix64).

    Every stochastic component of the framework — dataset generation,
    obfuscation choices, model initialisation, bagging — draws from an
    explicit [Rng.t], so experiments are reproducible from a single seed and
    property tests are stable.  No global state. *)

type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let make (seed : int) : t = { state = Int64.of_int seed }

let copy (t : t) : t = { state = t.state }

let next_int64 (t : t) : int64 =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** An independent generator derived from this one. *)
let split (t : t) : t = { state = next_int64 t }

(* the splitmix64 finalizer: a bijective avalanche over the raw state *)
let mix64 (z : int64) : int64 =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** [split_ix t i] derives the [i]-th child stream of [t]'s current state
    without advancing [t]: the same (state, index) pair always yields the
    same child, and distinct indices yield independent streams.  This is
    the task-seeding primitive of the parallel runtime — deriving one
    child per task index up front makes a parallel loop's randomness
    independent of execution order, so parallel runs reproduce sequential
    ones bit for bit. *)
let split_ix (t : t) (i : int) : t =
  let offset = Int64.mul (Int64.of_int (i + 1)) golden in
  { state = mix64 (Int64.add t.state offset) }

(** [split_n t n] pre-derives [n] children exactly as [n] successive
    {!split} calls would (advancing [t] [n] times) — the drop-in way to
    lift an existing [split]-per-iteration loop into {!split}-free loop
    bodies without changing any stream. *)
let split_n (t : t) (n : int) : t array =
  if n < 0 then invalid_arg "Rng.split_n: negative count";
  let out = Array.make n t in
  for i = 0 to n - 1 do
    out.(i) <- split t
  done;
  out

(** Uniform integer in [0, bound). *)
let int (t : t) (bound : int) : int =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  Int64.to_int (Int64.unsigned_rem (next_int64 t) (Int64.of_int bound))

(** Uniform integer in [lo, hi] inclusive. *)
let int_range (t : t) (lo : int) (hi : int) : int =
  if hi < lo then invalid_arg "Rng.int_range: empty range";
  lo + int t (hi - lo + 1)

(** Uniform float in [0, 1). *)
let float (t : t) : float =
  Int64.to_float (Int64.shift_right_logical (next_int64 t) 11)
  /. 9007199254740992.0 (* 2^53 *)

let bool (t : t) : bool = Int64.logand (next_int64 t) 1L = 1L

(** Bernoulli draw with probability [p]. *)
let bernoulli (t : t) (p : Stdlib.Float.t) : bool = float t < p

(** Standard normal via Box–Muller. *)
let gaussian (t : t) : float =
  let u1 = Stdlib.max 1e-12 (float t) and u2 = float t in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let choice (t : t) (xs : 'a list) : 'a =
  match xs with
  | [] -> invalid_arg "Rng.choice: empty list"
  | _ -> List.nth xs (int t (List.length xs))

let choice_arr (t : t) (xs : 'a array) : 'a =
  if Array.length xs = 0 then invalid_arg "Rng.choice_arr: empty array";
  xs.(int t (Array.length xs))

(** Fisher–Yates shuffle (fresh list). *)
let shuffle (t : t) (xs : 'a list) : 'a list =
  let a = Array.of_list xs in
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a

(** [sample t k xs] draws [k] elements without replacement. *)
let sample (t : t) (k : int) (xs : 'a list) : 'a list =
  let shuffled = shuffle t xs in
  List.filteri (fun i _ -> i < k) shuffled

(** Weighted choice: weights need not be normalised. *)
let weighted_choice (t : t) (pairs : ('a * float) list) : 'a =
  let total = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 pairs in
  if total <= 0.0 then invalid_arg "Rng.weighted_choice: non-positive weights";
  let r = float t *. total in
  let rec go acc = function
    | [] -> fst (List.hd (List.rev pairs))
    | (x, w) :: rest -> if acc +. w >= r then x else go (acc +. w) rest
  in
  go 0.0 pairs
