lib/util/rng.mli:
