(** Deterministic, splittable pseudo-random number generator (splitmix64).

    Every stochastic component of the framework draws from an explicit
    [Rng.t]; there is no global state, so experiments are reproducible from
    a single seed and property tests are stable. *)

type t

(** Create a generator from a seed. *)
val make : int -> t

(** An independent copy: advancing one does not affect the other. *)
val copy : t -> t

(** Draw the next raw 64-bit value (advances the state). *)
val next_int64 : t -> int64

(** Derive an independent generator (advances this one once). *)
val split : t -> t

(** Uniform integer in [0, bound).  @raise Invalid_argument on bound <= 0 *)
val int : t -> int -> int

(** Uniform integer in [lo, hi], inclusive. *)
val int_range : t -> int -> int -> int

(** Uniform float in [0, 1). *)
val float : t -> float

val bool : t -> bool

(** Bernoulli draw with probability [p]. *)
val bernoulli : t -> float -> bool

(** Standard normal deviate (Box–Muller). *)
val gaussian : t -> float

(** Uniform element of a non-empty list. *)
val choice : t -> 'a list -> 'a

(** Uniform element of a non-empty array. *)
val choice_arr : t -> 'a array -> 'a

(** Fisher–Yates shuffle; returns a fresh list. *)
val shuffle : t -> 'a list -> 'a list

(** [sample t k xs] draws [k] elements without replacement. *)
val sample : t -> int -> 'a list -> 'a list

(** Weighted choice; weights need not be normalised.
    @raise Invalid_argument when the total weight is not positive *)
val weighted_choice : t -> ('a * float) list -> 'a
