lib/games/discover.ml: Array Evader List Yali_dataset Yali_embeddings Yali_minic Yali_ml Yali_obfuscation Yali_util
