lib/games/game.mli: Yali_ir Yali_minic Yali_obfuscation Yali_util
