lib/games/antivirus.ml: Array Hashtbl List Opcode Option String Yali_ir Yali_util
