lib/games/antivirus.mli: Hashtbl Yali_ir Yali_util
