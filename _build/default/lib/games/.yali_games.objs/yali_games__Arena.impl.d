lib/games/arena.ml: Array Game Unix Yali_dataset Yali_embeddings Yali_ir Yali_ml Yali_util
