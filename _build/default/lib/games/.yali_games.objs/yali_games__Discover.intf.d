lib/games/discover.mli: Yali_obfuscation Yali_util
