lib/games/arena.mli: Game Yali_dataset Yali_embeddings Yali_ir Yali_ml Yali_util
