lib/games/game.ml: Ast Fun List Lower Yali_ir Yali_minic Yali_obfuscation Yali_transforms Yali_util
