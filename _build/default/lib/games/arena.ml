(** The classification arena: wires a dataset split, an embedding, a model
    and a game setup into an accuracy measurement.  This is the engine
    behind every figure of the paper's evaluation. *)

module Rng = Yali_util.Rng
module E = Yali_embeddings
module Ml = Yali_ml
module Irmod = Yali_ir.Irmod

type result = {
  accuracy : float;
  f1 : float;
  model_bytes : int;
  train_seconds : float;
  n_train : int;
  n_test : int;
}

(* materialise the IR of both dataset halves under the game's resources *)
let build_modules (rng : Rng.t) (setup : Game.setup)
    (split : Yali_dataset.Poj.split) : (Irmod.t * int) array * (Irmod.t * int) array
    =
  let train =
    Array.map
      (fun (s : Yali_dataset.Poj.labelled) ->
        (setup.Game.train_tx (Rng.split rng) s.src, s.label))
      split.train
  in
  let test =
    Array.map
      (fun (s : Yali_dataset.Poj.labelled) ->
        ( setup.Game.normalize (setup.Game.challenge_tx (Rng.split rng) s.src),
          s.label ))
      split.test
  in
  (train, test)

let eval_predictions ~(n_classes : int) (truth : int array) (pred : int array)
    : float * float =
  let acc = Ml.Metrics.accuracy truth pred in
  let f1 = Ml.Metrics.macro_f1 (Ml.Metrics.confusion ~n_classes truth pred) in
  (acc, f1)

(** Run a game with a flat model over a flat (or flattened) embedding. *)
let run_flat (rng : Rng.t) ~(n_classes : int) (embedding : E.Embedding.t)
    (model : Ml.Model.flat) (setup : Game.setup)
    (split : Yali_dataset.Poj.split) : result =
  let train_mods, test_mods = build_modules (Rng.split rng) setup split in
  let embed m = E.Embedding.to_flat embedding m in
  let xs = Array.map (fun (m, _) -> embed m) train_mods in
  let ys = Array.map snd train_mods in
  let t0 = Unix.gettimeofday () in
  let trained = model.ftrain (Rng.split rng) ~n_classes xs ys in
  let train_seconds = Unix.gettimeofday () -. t0 in
  let truth = Array.map snd test_mods in
  let pred = Array.map (fun (m, _) -> trained.predict (embed m)) test_mods in
  let accuracy, f1 = eval_predictions ~n_classes truth pred in
  {
    accuracy;
    f1;
    model_bytes = trained.size_bytes;
    train_seconds;
    n_train = Array.length xs;
    n_test = Array.length truth;
  }

(** Run a game with the DGCNN over a graph embedding (flat embeddings are
    wrapped as single-node graphs, mirroring the paper's note that the graph
    layers "find no service" on arrays). *)
let run_graph (rng : Rng.t) ~(n_classes : int) (embedding : E.Embedding.t)
    (setup : Game.setup) (split : Yali_dataset.Poj.split) : result =
  let train_mods, test_mods = build_modules (Rng.split rng) setup split in
  let embed m = E.Embedding.to_graph embedding m in
  let graphs = Array.map (fun (m, _) -> embed m) train_mods in
  let ys = Array.map snd train_mods in
  let feat_dim =
    if Array.length graphs = 0 then 1 else graphs.(0).E.Graph.feat_dim
  in
  let t0 = Unix.gettimeofday () in
  let trained =
    Ml.Model.dgcnn.gtrain (Rng.split rng) ~n_classes ~feat_dim graphs ys
  in
  let train_seconds = Unix.gettimeofday () -. t0 in
  let truth = Array.map snd test_mods in
  let pred = Array.map (fun (m, _) -> trained.gpredict (embed m)) test_mods in
  let accuracy, f1 = eval_predictions ~n_classes truth pred in
  {
    accuracy;
    f1;
    model_bytes = trained.gsize_bytes;
    train_seconds;
    n_train = Array.length graphs;
    n_test = Array.length truth;
  }

(** The model used for the embedding-comparison experiments (RQ1): dgcnn on
    graph embeddings, its cnn truncation on flat ones — exactly the paper's
    protocol. *)
let run_neural (rng : Rng.t) ~(n_classes : int) (embedding : E.Embedding.t)
    (setup : Game.setup) (split : Yali_dataset.Poj.split) : result =
  if E.Embedding.is_flat embedding then
    run_flat rng ~n_classes embedding Ml.Model.cnn setup split
  else run_graph rng ~n_classes embedding setup split
