(** A signature-based anti-virus ensemble — the VirusTotal stand-in of
    Figure 16.  Each engine extracts opcode n-gram signatures frequent in a
    known-malware corpus and absent from a benign corpus, and flags a binary
    when enough signatures match; a stricter threshold answers the
    family-specific ("is it MIRAI?") query. *)

type scanner = {
  sname : string;
  n : int;  (** n-gram size *)
  signatures : (string, unit) Hashtbl.t;
  generic_threshold : int;
  family_threshold : int;
}

type t = { scanners : scanner list }

(** Opcode n-grams of a module, in program order. *)
val opcode_ngrams : n:int -> Yali_ir.Irmod.t -> string list

(** Train the ensemble on corpora of known malware and benign modules. *)
val build :
  Yali_util.Rng.t ->
  malware:Yali_ir.Irmod.t list ->
  benign:Yali_ir.Irmod.t list ->
  t

val matches : scanner -> Yali_ir.Irmod.t -> int
val scanner_is_malware : scanner -> Yali_ir.Irmod.t -> bool
val scanner_is_mirai : scanner -> Yali_ir.Irmod.t -> bool

(** (generic votes, family votes) across the ensemble. *)
val detections : t -> Yali_ir.Irmod.t -> int * int

(** Best single-engine accuracy over labelled challenges (label 1 =
    malware), for the generic and family queries. *)
val best_accuracy : t -> (Yali_ir.Irmod.t * int) list -> float * float
