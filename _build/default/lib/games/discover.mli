(** RQ7 (Figure 14): can a classifier detect *which transformer* was applied
    to a program?  Ten transformer classes; four dataset regimes differing
    in whether every transformer sees the same programs (1, 2) or its own
    (3, 4) — regime 3 produces the spurious correlation the paper warns
    about. *)

type dataset_kind = Dataset1 | Dataset2 | Dataset3 | Dataset4

val dataset_name : dataset_kind -> string

(** The ten transformer classes of §4.7: O0, mem2reg, O3, bcf, fla, sub,
    drlsg, mcmc, rs, ga. *)
val transformers : Yali_obfuscation.Evader.t list

val n_transformers : int

type result = { kind : dataset_kind; accuracy : float }

(** Train a histogram+rf classifier to name the transformer; report held-out
    accuracy. *)
val run :
  ?per_transformer:int ->
  ?train_fraction:float ->
  Yali_util.Rng.t ->
  dataset_kind ->
  result
