(** The game framework of the paper's Section 2, as code: Definition 2.3
    (algorithm classification), Definition 2.4 (adversarial game), and the
    four resource assignments of Figure 1. *)

(** A classifier names the problem class it believes a challenge solves
    (Definition 2.3). *)
type classifier = Yali_ir.Irmod.t -> int

(** An evader builds the challenge module from a source solution
    (Definition 2.4, step 1). *)
type evader = Yali_util.Rng.t -> Yali_minic.Ast.program -> Yali_ir.Irmod.t

(** The resources of a game: how the classifier builds IR from its share of
    the dataset, how the evader builds challenges, and what the classifier
    applies to an incoming challenge before classifying. *)
type setup = {
  game_name : string;
  train_tx : Yali_util.Rng.t -> Yali_minic.Ast.program -> Yali_ir.Irmod.t;
  challenge_tx : Yali_util.Rng.t -> Yali_minic.Ast.program -> Yali_ir.Irmod.t;
  normalize : Yali_ir.Irmod.t -> Yali_ir.Irmod.t;
}

(** Plain [-O0] lowering: the passive evader. *)
val passive : evader

(** Game0 (symmetric): no transformation on either side. *)
val game0 : setup

(** Game1 (asymmetric): the evader transforms; the classifier is unaware. *)
val game1 : Yali_obfuscation.Evader.t -> setup

(** Game2 (symmetric): both players hold the same one-way transformation. *)
val game2 : Yali_obfuscation.Evader.t -> setup

(** Game3 (asymmetric): the classifier holds an optimizer used as a
    normalizer (default [-O3]) against an unknown evader. *)
val game3 :
  ?normalizer:(Yali_ir.Irmod.t -> Yali_ir.Irmod.t) ->
  Yali_obfuscation.Evader.t ->
  setup

(** Definition 2.4's outcome: accuracy against a threshold [K]. *)
type verdict = { accuracy : float; classifier_wins : bool }

(** Play a challenge set against a classifier; the classifier wins when its
    accuracy exceeds [threshold]. *)
val play :
  classifier:classifier ->
  threshold:float ->
  (Yali_ir.Irmod.t * int) list ->
  verdict
