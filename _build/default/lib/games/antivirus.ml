(** A signature-based anti-virus ensemble, standing in for VIRUSTOTAL in the
    reproduction of Figure 16.

    Each scanner in the ensemble is built the way classical AV engines are:
    from a corpus of *known* malware builds (here: MIRAI variants compiled at
    [-O0]), extract opcode n-gram signatures that are frequent in malware
    and absent from a benign corpus; flag a binary when enough signatures
    match.  Two queries are supported, mirroring the paper's two rows:

    - [is_malware]: any scanner's generic threshold fires;
    - [is_mirai]:   the family-specific (stricter) threshold fires.

    Signature matching degrades under optimization and obfuscation — the
    behaviour the figure contrasts with the retrained rf classifier. *)

module Rng = Yali_util.Rng
module Irmod = Yali_ir.Irmod
open Yali_ir

type scanner = {
  sname : string;
  n : int;  (** n-gram size *)
  signatures : (string, unit) Hashtbl.t;
  generic_threshold : int;  (** #matches to call it malware *)
  family_threshold : int;  (** #matches to call it MIRAI *)
}

type t = { scanners : scanner list }

let opcode_ngrams ~(n : int) (m : Irmod.t) : string list =
  let ops = Array.of_list (List.map Opcode.to_string (Irmod.opcodes m)) in
  let len = Array.length ops in
  if len < n then []
  else
    List.init
      (len - n + 1)
      (fun k -> String.concat "." (Array.to_list (Array.sub ops k n)))

(** Build the ensemble from corpora of known-malware and known-benign
    modules (both compiled the way samples reach the vendor: unoptimized). *)
let build (rng : Rng.t) ~(malware : Irmod.t list) ~(benign : Irmod.t list) : t
    =
  let scanner_config =
    [ ("av-ngram3", 3, 12, 30); ("av-ngram4", 4, 10, 25);
      ("av-ngram5", 5, 8, 20); ("av-ngram6", 6, 6, 16);
      ("av-loose3", 3, 6, 40); ("av-strict5", 5, 14, 30) ]
  in
  let scanners =
    List.map
      (fun (sname, n, generic_threshold, family_threshold) ->
        let benign_grams = Hashtbl.create 4096 in
        List.iter
          (fun m ->
            List.iter
              (fun g -> Hashtbl.replace benign_grams g ())
              (opcode_ngrams ~n m))
          benign;
        let counts = Hashtbl.create 4096 in
        List.iter
          (fun m ->
            List.iter
              (fun g ->
                if not (Hashtbl.mem benign_grams g) then
                  Hashtbl.replace counts g
                    (1 + Option.value (Hashtbl.find_opt counts g) ~default:0))
              (List.sort_uniq compare (opcode_ngrams ~n m)))
          malware;
        let signatures = Hashtbl.create 1024 in
        let min_support = max 2 (List.length malware / 4) in
        Hashtbl.iter
          (fun g c ->
            (* vendors keep only reliable signatures; drop a few at random,
               different engines know different subsets *)
            if c >= min_support && Rng.float rng < 0.85 then
              Hashtbl.replace signatures g ())
          counts;
        { sname; n; signatures; generic_threshold; family_threshold })
      scanner_config
  in
  { scanners }

let matches (s : scanner) (m : Irmod.t) : int =
  List.fold_left
    (fun acc g -> if Hashtbl.mem s.signatures g then acc + 1 else acc)
    0
    (List.sort_uniq compare (opcode_ngrams ~n:s.n m))

(** Detection by a single scanner. *)
let scanner_is_malware (s : scanner) (m : Irmod.t) : bool =
  matches s m >= s.generic_threshold

let scanner_is_mirai (s : scanner) (m : Irmod.t) : bool =
  matches s m >= s.family_threshold

(** Ensemble votes, VirusTotal style: how many engines flag the sample. *)
let detections (t : t) (m : Irmod.t) : int * int =
  List.fold_left
    (fun (g, f) s ->
      ( (g + if scanner_is_malware s m then 1 else 0),
        f + if scanner_is_mirai s m then 1 else 0 ))
    (0, 0) t.scanners

(** Best-scanner accuracy over a labelled challenge set (label 1 = malware),
    for the generic and the family query — the two top rows of Figure 16. *)
let best_accuracy (t : t) (challenges : (Irmod.t * int) list) :
    float * float =
  let acc_of pred =
    let hits =
      List.fold_left
        (fun acc (m, l) -> if pred m = (l = 1) then acc + 1 else acc)
        0 challenges
    in
    float_of_int hits /. float_of_int (max 1 (List.length challenges))
  in
  let best f =
    List.fold_left (fun best s -> max best (acc_of (f s))) 0.0 t.scanners
  in
  (best scanner_is_malware, best scanner_is_mirai)
