(** The four search strategies from Zhang et al. (2021) for combining the
    fifteen base source transformations into an evading sequence:

    - [rs]    — random search: a random permutation prefix, no repetition;
    - [mcmc]  — Markov-chain Monte Carlo over sequences, favouring programs
                far from the original (Metropolis acceptance);
    - [drlsg] — the Deep-Reinforcement-Learning Sequence Generator; here a
                greedy distance-maximising policy that plays the same role
                (pick, at each step, the transformation that moves the
                lowered program furthest from the original);
    - [ga]    — a genetic algorithm over transformation sequences.

    All strategies score candidates by the Euclidean distance between opcode
    histograms of the lowered ([-O0]) original and transformed programs —
    the metric the paper itself uses to quantify evasion capacity
    (Figure 10). *)

open Yali_minic
module Rng = Yali_util.Rng
module E = Yali_embeddings

let distance (original : float array) (p : Ast.program) : float =
  let m = Lower.lower_program p in
  E.Histogram.euclidean original (E.Histogram.of_module m)

let base_histogram (p : Ast.program) : float array =
  E.Histogram.of_module (Lower.lower_program p)

(* Apply a sequence; catch lowering failures (a transformation should never
   produce an un-lowerable program, but search must be robust). *)
let try_apply (txs : Source_tx.t list) (rng : Rng.t) (p : Ast.program) :
    Ast.program option =
  let p' = Source_tx.apply_sequence txs rng p in
  match Lower.lower_program p' with
  | _ -> Some p'
  | exception _ -> None

(** Random search: a random subset of the 15 transformations, each used at
    most once, in random order. *)
let rs ?(max_len = 8) (rng : Rng.t) (p : Ast.program) : Ast.program =
  let len = Rng.int_range rng 1 max_len in
  let seq = Rng.sample rng len Source_tx.all in
  match try_apply seq rng p with Some p' -> p' | None -> p

(** MCMC: propose single-step mutations of the sequence; accept with
    Metropolis probability on the distance objective. *)
let mcmc ?(iterations = 20) ?(max_len = 8) (rng : Rng.t) (p : Ast.program) :
    Ast.program =
  let h0 = base_histogram p in
  let score seq =
    match try_apply seq (Rng.copy rng) p with
    | Some p' -> (distance h0 p', p')
    | None -> (neg_infinity, p)
  in
  let mutate seq =
    let tx () = Rng.choice rng Source_tx.all in
    match Rng.int rng 3 with
    | 0 when List.length seq < max_len -> seq @ [ tx () ] (* grow *)
    | 1 when List.length seq > 1 -> List.tl seq (* shrink *)
    | _ ->
        (* replace a random position *)
        if seq = [] then [ tx () ]
        else
          let k = Rng.int rng (List.length seq) in
          List.mapi (fun i t -> if i = k then tx () else t) seq
  in
  let temperature = 2.0 in
  let rec go seq cur_s (best_score, best_p) iter =
    if iter >= iterations then best_p
    else
      let seq' = mutate seq in
      let s', p' = score seq' in
      let accept =
        s' >= cur_s || Rng.float rng < exp ((s' -. cur_s) /. temperature)
      in
      let seq, cur_s = if accept then (seq', s') else (seq, cur_s) in
      let best = if s' > best_score then (s', p') else (best_score, best_p) in
      go seq cur_s best (iter + 1)
  in
  let seq0 = [ Rng.choice rng Source_tx.all ] in
  let s0, p0 = score seq0 in
  go seq0 s0 (s0, p0) 0

(** Greedy distance-maximising sequence generation (the role DRLSG plays in
    Zhang et al.): at each step, apply the transformation whose result is
    furthest from the original program; stop when no step improves. *)
let drlsg ?(max_len = 8) (rng : Rng.t) (p : Ast.program) : Ast.program =
  let h0 = base_histogram p in
  let rec go p cur_score steps =
    if steps >= max_len then p
    else
      let candidates =
        List.filter_map
          (fun tx ->
            match try_apply [ tx ] (Rng.split rng) p with
            | Some p' -> Some (distance h0 p', p')
            | None -> None)
          Source_tx.all
      in
      match List.sort (fun (a, _) (b, _) -> compare b a) candidates with
      | (s, p') :: _ when s > cur_score -> go p' s (steps + 1)
      | _ -> p
  in
  go p (-1.0) 0

(** Genetic algorithm over sequences: tournament selection, one-point
    crossover, point mutation. *)
let ga ?(population = 12) ?(generations = 6) ?(max_len = 8) (rng : Rng.t)
    (p : Ast.program) : Ast.program =
  let h0 = base_histogram p in
  let random_seq () =
    let len = Rng.int_range rng 1 max_len in
    List.init len (fun _ -> Rng.choice rng Source_tx.all)
  in
  let fitness seq =
    match try_apply seq (Rng.copy rng) p with
    | Some p' -> (distance h0 p', p')
    | None -> (neg_infinity, p)
  in
  let crossover a b =
    if a = [] || b = [] then a
    else
      let ka = Rng.int rng (List.length a) in
      let kb = Rng.int rng (List.length b) in
      let take n l = List.filteri (fun i _ -> i < n) l in
      let drop n l = List.filteri (fun i _ -> i >= n) l in
      let child = take ka a @ drop kb b in
      take max_len child
  in
  let mutate seq =
    if seq = [] || Rng.bernoulli rng 0.5 then
      seq @ [ Rng.choice rng Source_tx.all ]
    else
      let k = Rng.int rng (List.length seq) in
      List.mapi
        (fun i t -> if i = k then Rng.choice rng Source_tx.all else t)
        seq
  in
  let pop = ref (List.init population (fun _ -> random_seq ())) in
  let best = ref (fitness (List.hd !pop)) in
  for _ = 1 to generations do
    let scored = List.map (fun s -> (s, fitness s)) !pop in
    List.iter
      (fun (_, (f, p')) -> if f > fst !best then best := (f, p'))
      scored;
    let tournament () =
      let a = Rng.choice rng scored and b = Rng.choice rng scored in
      if fst (snd a) >= fst (snd b) then fst a else fst b
    in
    pop :=
      List.init population (fun _ ->
          let parent_a = tournament () and parent_b = tournament () in
          mutate (crossover parent_a parent_b))
  done;
  snd !best

type strategy = {
  sname : string;
  run : Rng.t -> Ast.program -> Ast.program;
}

let all : strategy list =
  [
    { sname = "rs"; run = (fun rng p -> rs rng p) };
    { sname = "mcmc"; run = (fun rng p -> mcmc rng p) };
    { sname = "drlsg"; run = (fun rng p -> drlsg rng p) };
    { sname = "ga"; run = (fun rng p -> ga rng p) };
  ]

let find name = List.find_opt (fun s -> s.sname = name) all
