(** The evader registry (paper, Figure 4).  An evader maps a source program
    to the IR module it hands the classifier: IR-level evaders lower at
    [-O0] and transform the IR; source-level evaders transform the source
    and then lower; [clang -O3] is itself an evader (Ren et al.'s
    observation, confirmed by the paper §4.3). *)

open Yali_minic
open Yali_ir
module Rng = Yali_util.Rng
module P = Yali_transforms.Pipeline

type t = { ename : string; apply : Rng.t -> Ast.program -> Irmod.t }

let lower = Lower.lower_program ?name:None

let none = { ename = "none"; apply = (fun _ p -> lower p) }
let o3 = { ename = "O3"; apply = (fun _ p -> P.o3 (lower p)) }
let sub = { ename = "sub"; apply = (fun rng p -> Sub.run rng (lower p)) }
let bcf = { ename = "bcf"; apply = (fun rng p -> Bcf.run rng (lower p)) }
let fla = { ename = "fla"; apply = (fun rng p -> Fla.run rng (lower p)) }
let ollvm = { ename = "ollvm"; apply = (fun rng p -> Ollvm.run rng (lower p)) }

let source_strategy (s : Strategies.strategy) : t =
  { ename = s.sname; apply = (fun rng p -> lower (s.run rng p)) }

let rs = source_strategy (Option.get (Strategies.find "rs"))
let mcmc = source_strategy (Option.get (Strategies.find "mcmc"))
let drlsg = source_strategy (Option.get (Strategies.find "drlsg"))
let ga = source_strategy (Option.get (Strategies.find "ga"))

(* extra transformer used in the obfuscator-detection experiment (RQ7) *)
let mem2reg =
  {
    ename = "mem2reg";
    apply = (fun _ p -> Yali_transforms.Mem2reg.run (lower p));
  }

(** The eight active evaders of Figures 8–11, plus the passive one. *)
let active : t list = [ o3; ollvm; bcf; fla; sub; rs; mcmc; drlsg ]

let all : t list = none :: active

let find name =
  List.find_opt (fun e -> e.ename = name) (all @ [ ga; mem2reg ])
