(** Instruction substitution, after O-LLVM's [-sub] pass: integer
    arithmetic/logic instructions are replaced by longer sequences with
    identical modular-arithmetic semantics. *)

(** Transform one function.
    @param probability chance of substituting each eligible instruction
           (default 1.0)
    @param rounds number of substitution passes (default 1); each round
           substitutes the previous round's output, compounding code
           growth *)
val run_func :
  ?probability:float -> ?rounds:int -> Yali_util.Rng.t -> Yali_ir.Func.t ->
  Yali_ir.Func.t

val run :
  ?probability:float -> ?rounds:int -> Yali_util.Rng.t -> Yali_ir.Irmod.t ->
  Yali_ir.Irmod.t
