(** Bogus control flow, after O-LLVM's [-bcf] pass: selected blocks are
    guarded by an always-true opaque predicate over two module globals; the
    false edge leads to a never-executed perturbed clone.  Because the
    predicate reads memory, optimizers cannot fold it — the reason bcf
    resists -O3 normalization in the paper's §4.4.

    Operates on phi-free functions; SSA-form functions pass through. *)

(** Names of the opaque-predicate globals. *)
val x_global : string

val y_global : string

(** Transform one function.
    @param probability chance of guarding each non-entry block
           (default 0.5) *)
val run_func :
  ?probability:float -> Yali_util.Rng.t -> Yali_ir.Func.t -> Yali_ir.Func.t

(** Ensure the opaque-predicate globals exist. *)
val add_globals : Yali_ir.Irmod.t -> Yali_ir.Irmod.t

val run :
  ?probability:float -> Yali_util.Rng.t -> Yali_ir.Irmod.t -> Yali_ir.Irmod.t
