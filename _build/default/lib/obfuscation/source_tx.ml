(** The fifteen source-to-source transformations behind Zhang et al.'s
    clone-detector evaders (used by the [rs], [mcmc], [drlsg] and [ga]
    strategies of the paper).  Each transformation is semantics-preserving on
    mini-C functions; strategies in {!Strategies} combine them.

    Faithful to the paper's observation (§4.3), most of these rewrites are
    *syntactic*: lowering to IR (let alone SSA conversion) already normalises
    many of them away. *)

open Yali_minic.Ast
module Rng = Yali_util.Rng

type t = { txname : string; apply : Rng.t -> func -> func }

(* -- helpers ------------------------------------------------------------- *)

let rec expr_has_call (e : expr) : bool =
  match e with
  | Call _ -> true
  | IntLit _ | FloatLit _ | Var _ -> false
  | Bin (_, a, b) -> expr_has_call a || expr_has_call b
  | Un (_, a) -> expr_has_call a
  | Index (_, i) -> expr_has_call i
  | Ternary (c, a, b) -> expr_has_call c || expr_has_call a || expr_has_call b

let rec stmts_have_jump (ss : stmt list) : bool =
  List.exists
    (fun s ->
      match s with
      | Break | Continue -> true
      | If (_, t, e) -> stmts_have_jump t || stmts_have_jump e
      | Block b -> stmts_have_jump b
      (* jumps inside nested loops/switches bind to those, not to us *)
      | While _ | DoWhile _ | For _ | Switch _ -> false
      | _ -> false)
    ss

let on_body (f : stmt list -> stmt list) (fn : func) : func =
  { fn with fbody = f fn.fbody }

(* -- 1: for → while ------------------------------------------------------ *)

let for_to_while =
  let apply _rng fn =
    on_body
      (map_stmts (function
        | For (init, cond, step, body) when not (stmts_have_jump body) ->
            (* [continue] in a for-loop jumps to the step; in the converted
               while it would skip it — hence the jump-free guard *)
            let cond = Option.value cond ~default:(IntLit 1) in
            let body' = body @ Option.to_list step in
            let loop = While (cond, body') in
            Block (Option.to_list init @ [ loop ])
        | s -> s))
      fn
  in
  { txname = "for_to_while"; apply }

(* -- 2: while → for ------------------------------------------------------ *)

let while_to_for =
  let apply _rng fn =
    on_body
      (map_stmts (function
        | While (c, body) -> For (None, Some c, None, body)
        | s -> s))
      fn
  in
  { txname = "while_to_for"; apply }

(* -- 3: while → do-while under an if ------------------------------------ *)

let while_to_dowhile =
  let apply _rng fn =
    on_body
      (map_stmts (function
        | While (c, body) when not (stmts_have_jump body) ->
            If (c, [ DoWhile (body, c) ], [])
        | s -> s))
      fn
  in
  { txname = "while_to_dowhile"; apply }

(* -- 4: switch → if-chain ------------------------------------------------ *)

let switch_to_ifchain =
  let apply _rng fn =
    on_body
      (map_stmts (function
        | Switch (e, cases, default) when not (expr_has_call e) ->
            let rec chain = function
              | [] -> default
              | (k, body) :: rest ->
                  [ If (Bin (Eq, e, IntLit k), body, chain rest) ]
            in
            Block (chain cases)
        | s -> s))
      fn
  in
  { txname = "switch_to_ifchain"; apply }

(* -- 5: negate-and-swap if ----------------------------------------------- *)

let if_negate_swap =
  let apply _rng fn =
    on_body
      (map_stmts (function
        | If (c, t, e) when e <> [] -> If (Un (LNot, c), e, t)
        | s -> s))
      fn
  in
  { txname = "if_negate_swap"; apply }

(* -- 6: constant unfolding (n = (n-k) + k) ------------------------------- *)

let const_unfold =
  let apply rng fn =
    let body =
      map_exprs
        (function
          | IntLit n when n > 1 && n < 1000000 ->
              let k = Rng.int_range rng 1 16 in
              Bin (Add, IntLit (n - k), IntLit k)
          | e -> e)
        fn.fbody
    in
    { fn with fbody = body }
  in
  { txname = "const_unfold"; apply }

(* -- 7: constant xor masking --------------------------------------------- *)

let const_xor =
  let apply rng fn =
    let body =
      map_exprs
        (function
          | IntLit n when n >= 0 && n < 1000000 ->
              let k = Rng.int_range rng 1 255 in
              Bin (BXor, IntLit (n lxor k), IntLit k)
          | e -> e)
        fn.fbody
    in
    { fn with fbody = body }
  in
  { txname = "const_xor"; apply }

(* -- 8: variable renaming ------------------------------------------------ *)

let var_rename =
  let apply rng fn =
    let salt = Rng.int rng 10000 in
    let names = declared_vars fn in
    let mapping = Hashtbl.create 16 in
    List.iteri
      (fun i n ->
        if not (Hashtbl.mem mapping n) then
          Hashtbl.replace mapping n (Printf.sprintf "v%d_%d" salt i))
      names;
    let rn n = Option.value (Hashtbl.find_opt mapping n) ~default:n in
    let rec rn_expr e =
      match e with
      | Var v -> Var (rn v)
      | Index (a, i) -> Index (rn a, rn_expr i)
      | IntLit _ | FloatLit _ -> e
      | Bin (op, a, b) -> Bin (op, rn_expr a, rn_expr b)
      | Un (op, a) -> Un (op, rn_expr a)
      | Call (f, args) -> Call (f, List.map rn_expr args)
      | Ternary (c, a, b) -> Ternary (rn_expr c, rn_expr a, rn_expr b)
    in
    let rn_stmt s =
      match s with
      | Decl (t, n, e) -> Decl (t, rn n, e)
      | DeclArr (n, sz) -> DeclArr (rn n, sz)
      | Assign (n, e) -> Assign (rn n, e)
      | AssignIdx (a, i, e) -> AssignIdx (rn a, i, e)
      | s -> s
    in
    let body = map_stmts rn_stmt fn.fbody in
    let body = map_exprs rn_expr body in
    {
      fn with
      fparams = List.map (fun (t, n) -> (t, rn n)) fn.fparams;
      fbody = body;
    }
  in
  { txname = "var_rename"; apply }

(* -- 9: dead declarations ------------------------------------------------ *)

let dead_decl =
  let apply rng fn =
    let salt = Rng.int rng 100000 in
    let n_junk = Rng.int_range rng 1 3 in
    let param_reads =
      List.filter_map
        (fun (t, n) -> if t = TInt then Some (Var n) else None)
        fn.fparams
    in
    let junk_expr i =
      match param_reads with
      | [] -> Bin (Mul, Var (Printf.sprintf "__j%d_%d" salt i), IntLit 3)
      | vs -> Bin (Add, Rng.choice rng vs, IntLit (Rng.int rng 100))
    in
    let decls =
      List.init n_junk (fun i ->
          if param_reads = [] then
            (* self-referencing junk is invalid; use a constant chain *)
            Decl
              ( TInt,
                Printf.sprintf "__j%d_%d" salt i,
                Some (IntLit (Rng.int rng 1000)) )
          else Decl (TInt, Printf.sprintf "__j%d_%d" salt i, Some (junk_expr i)))
    in
    (* also consume the junk so that -O0 keeps it but semantics stay put:
       an if over a junk var with an empty body *)
    let uses =
      List.init n_junk (fun i ->
          If
            ( Bin (Lt, Var (Printf.sprintf "__j%d_%d" salt i), IntLit (-1000000)),
              [ Expr (IntLit 0) ],
              [] ))
    in
    { fn with fbody = decls @ uses @ fn.fbody }
  in
  { txname = "dead_decl"; apply }

(* -- 10: commute pure operands ------------------------------------------- *)

let commute =
  let apply _rng fn =
    let body =
      map_exprs
        (function
          | Bin ((Add | Mul | BAnd | BOr | BXor) as op, a, b)
            when (not (expr_has_call a)) && not (expr_has_call b) ->
              Bin (op, b, a)
          | e -> e)
        fn.fbody
    in
    { fn with fbody = body }
  in
  { txname = "commute"; apply }

(* -- 11: x*2 → x+x -------------------------------------------------------- *)

let mul2_to_add =
  let apply _rng fn =
    let body =
      map_exprs
        (function
          | Bin (Mul, a, IntLit 2) when not (expr_has_call a) -> Bin (Add, a, a)
          | Bin (Mul, IntLit 2, a) when not (expr_has_call a) -> Bin (Add, a, a)
          | e -> e)
        fn.fbody
    in
    { fn with fbody = body }
  in
  { txname = "mul2_to_add"; apply }

(* -- 12: peel one loop iteration ----------------------------------------- *)

let loop_peel =
  let apply _rng fn =
    on_body
      (map_stmts (function
        | While (c, body)
          when (not (stmts_have_jump body))
               && (not (expr_has_call c))
               && stmt_count body <= 10 ->
            If (c, body @ [ While (c, body) ], [])
        | s -> s))
      fn
  in
  { txname = "loop_peel"; apply }

(* -- 13: wrap in do { … } while (0) -------------------------------------- *)

let wrap_dowhile0 =
  let apply rng fn =
    on_body
      (map_stmts (function
        | (If _ | Block _) as s
          when (not (stmts_have_jump [ s ])) && Rng.bool rng ->
            DoWhile ([ s ], IntLit 0)
        | s -> s))
      fn
  in
  { txname = "wrap_dowhile0"; apply }

(* -- 14: arithmetic identities ------------------------------------------- *)

let add_identity =
  let apply rng fn =
    let rec add_id (s : stmt) =
      match s with
      | Assign (n, e) when not (expr_has_call e) ->
          if Rng.bool rng then Assign (n, Bin (Add, e, IntLit 0))
          else Assign (n, Bin (Mul, e, IntLit 1))
      | If (c, t, e) -> If (c, List.map add_id t, List.map add_id e)
      | While (c, b) -> While (c, List.map add_id b)
      | DoWhile (b, c) -> DoWhile (List.map add_id b, c)
      | For (i, c, st, b) -> For (i, c, st, List.map add_id b)
      | Switch (e, cases, d) ->
          Switch
            ( e,
              List.map (fun (k, b) -> (k, List.map add_id b)) cases,
              List.map add_id d )
      | Block b -> Block (List.map add_id b)
      | s -> s
    in
    { fn with fbody = List.map add_id fn.fbody }
  in
  { txname = "add_identity"; apply }

(* -- 15: comparison swapping --------------------------------------------- *)

let cmp_swap =
  let apply _rng fn =
    let body =
      map_exprs
        (function
          | Bin (Lt, a, b) when (not (expr_has_call a)) && not (expr_has_call b)
            ->
              Bin (Gt, b, a)
          | Bin (Le, a, b) when (not (expr_has_call a)) && not (expr_has_call b)
            ->
              Bin (Ge, b, a)
          | Bin (Gt, a, b) when (not (expr_has_call a)) && not (expr_has_call b)
            ->
              Bin (Lt, b, a)
          | Bin (Ge, a, b) when (not (expr_has_call a)) && not (expr_has_call b)
            ->
              Bin (Le, b, a)
          | e -> e)
        fn.fbody
    in
    { fn with fbody = body }
  in
  { txname = "cmp_swap"; apply }

(** The fifteen base transformations, in a stable order. *)
let all : t list =
  [
    for_to_while; while_to_for; while_to_dowhile; switch_to_ifchain;
    if_negate_swap; const_unfold; const_xor; var_rename; dead_decl; commute;
    mul2_to_add; loop_peel; wrap_dowhile0; add_identity; cmp_swap;
  ]

let find name = List.find_opt (fun t -> t.txname = name) all

(** Apply a transformation to every function of a program. *)
let apply_program (tx : t) (rng : Rng.t) (p : program) : program =
  { pfuncs = List.map (tx.apply rng) p.pfuncs }

(** Apply a sequence of transformations left to right. *)
let apply_sequence (txs : t list) (rng : Rng.t) (p : program) : program =
  List.fold_left (fun p tx -> apply_program tx rng p) p txs
