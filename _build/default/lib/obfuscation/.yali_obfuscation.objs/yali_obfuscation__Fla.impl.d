lib/obfuscation/fla.ml: Block Func Hashtbl Instr Int64 Irmod List Printf Types Value Yali_ir Yali_util
