lib/obfuscation/evader.mli: Yali_ir Yali_minic Yali_util
