lib/obfuscation/evader.ml: Ast Bcf Fla Irmod List Lower Ollvm Option Strategies Sub Yali_ir Yali_minic Yali_transforms Yali_util
