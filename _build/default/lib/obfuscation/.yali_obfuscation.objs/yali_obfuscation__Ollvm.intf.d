lib/obfuscation/ollvm.mli: Yali_ir Yali_util
