lib/obfuscation/bcf.mli: Yali_ir Yali_util
