lib/obfuscation/strategies.mli: Yali_minic Yali_util
