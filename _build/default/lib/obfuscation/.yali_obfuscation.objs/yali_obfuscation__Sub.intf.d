lib/obfuscation/sub.mli: Yali_ir Yali_util
