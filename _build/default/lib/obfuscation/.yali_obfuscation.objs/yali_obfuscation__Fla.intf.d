lib/obfuscation/fla.mli: Yali_ir Yali_util
