lib/obfuscation/source_tx.mli: Yali_minic Yali_util
