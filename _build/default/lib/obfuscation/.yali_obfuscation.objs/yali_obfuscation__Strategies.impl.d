lib/obfuscation/strategies.ml: Ast List Lower Source_tx Yali_embeddings Yali_minic Yali_util
