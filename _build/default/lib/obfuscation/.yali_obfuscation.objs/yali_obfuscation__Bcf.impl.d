lib/obfuscation/bcf.ml: Block Func Hashtbl Instr Irmod List Printf Types Value Yali_ir Yali_util
