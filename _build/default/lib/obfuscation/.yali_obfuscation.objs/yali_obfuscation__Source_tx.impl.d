lib/obfuscation/source_tx.ml: Hashtbl List Option Printf Yali_minic Yali_util
