lib/obfuscation/ollvm.ml: Bcf Fla Irmod Sub Yali_ir Yali_util
