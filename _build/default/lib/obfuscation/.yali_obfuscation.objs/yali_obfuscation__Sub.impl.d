lib/obfuscation/sub.ml: Block Func Instr Irmod List Types Value Yali_ir Yali_util
