(** The combined O-LLVM evader — instruction substitution, then control-flow
    flattening, then bogus control flow — the paper's [ollvm]
    configuration. *)

val run :
  ?sub_probability:float ->
  ?sub_rounds:int ->
  ?bcf_probability:float ->
  Yali_util.Rng.t ->
  Yali_ir.Irmod.t ->
  Yali_ir.Irmod.t
