(** The combined O-LLVM evader: instruction substitution, then control-flow
    flattening, then bogus control flow — the "all passes together"
    configuration the paper calls simply [ollvm]. *)

open Yali_ir
module Rng = Yali_util.Rng

let run ?(sub_probability = 1.0) ?(sub_rounds = 2) ?(bcf_probability = 0.8)
    (rng : Rng.t) (m : Irmod.t) : Irmod.t =
  m
  |> Sub.run ~probability:sub_probability ~rounds:sub_rounds (Rng.split rng)
  |> Fla.run (Rng.split rng)
  |> Bcf.run ~probability:bcf_probability (Rng.split rng)
