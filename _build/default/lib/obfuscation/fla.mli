(** Control-flow flattening, after O-LLVM's [-fla] pass: every basic block
    becomes a case of a switch inside a dispatch loop, erasing the original
    CFG structure.  Operates on phi-free ([-O0]-style) functions; functions
    with phis, fewer than two blocks, or an entry block that is a branch
    target pass through unchanged. *)

(** Replace switch terminators with compare-and-branch chains (flattening's
    precondition; exposed for tests and reuse). *)
val lower_switches : Yali_ir.Func.t -> Yali_ir.Func.t

val run_func : Yali_util.Rng.t -> Yali_ir.Func.t -> Yali_ir.Func.t
val run : Yali_util.Rng.t -> Yali_ir.Irmod.t -> Yali_ir.Irmod.t
