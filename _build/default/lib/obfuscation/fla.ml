(** Control-flow flattening, after O-LLVM's [-fla] pass.

    Every basic block becomes a case of a switch inside a dispatch loop; a
    "next block" variable, kept in memory, selects the successor at the end
    of each case.  The CFG of the flattened function is a star: all
    structure of the original control flow disappears — though, as the paper
    notes, the *histogram* of opcodes barely changes, which is why
    histogram-based classifiers see through flattening (§4.3).

    Precondition: phi-free functions (the pass runs on [-O0]-style code).
    Switch terminators are first lowered into compare-and-branch chains. *)

open Yali_ir
module Rng = Yali_util.Rng

let has_phis (f : Func.t) =
  List.exists
    (fun (i : Instr.t) -> match i.kind with Instr.Phi _ -> true | _ -> false)
    (Func.instrs f)

(** Replace switch terminators with chains of [icmp eq]/[condbr] blocks. *)
let lower_switches (f : Func.t) : Func.t =
  let next = ref f.next_id in
  let fresh () =
    let id = !next in
    incr next;
    id
  in
  let next_label = ref f.next_label in
  let fresh_label hint =
    let l = Printf.sprintf "%s.%d" hint !next_label in
    incr next_label;
    l
  in
  let blocks =
    List.concat_map
      (fun (b : Block.t) ->
        match b.term with
        | Instr.Switch (v, default, cases) ->
            (* b ends with a test for the first case; continuation blocks
               test the remaining cases *)
            let rec chain cases =
              match cases with
              | [] -> (default, [])
              | (k, l) :: rest ->
                  let cont, blocks = chain rest in
                  let test_label = fresh_label (b.label ^ ".swtest") in
                  let c = fresh () in
                  let test_block =
                    Block.make ~label:test_label
                      ~instrs:
                        [
                          Instr.mk ~id:c ~ty:Types.I1
                            (Instr.Icmp (Instr.Eq, v, Value.IConst (Types.I64, k)));
                        ]
                      ~term:(Instr.CondBr (Value.Var c, l, cont))
                  in
                  (test_label, test_block :: blocks)
            in
            let first, chain_blocks = chain cases in
            [ { b with term = Instr.Br first } ] @ chain_blocks
        | _ -> [ b ])
      f.blocks
  in
  { f with blocks; next_id = !next; next_label = !next_label }

let run_func (rng : Rng.t) (f : Func.t) : Func.t =
  if has_phis f || List.length f.blocks < 2 then f
  else
    let f = lower_switches f in
    let entry = Func.entry f in
    let rest = List.tl f.blocks in
    (* entry must not be a branch target *)
    let entry_is_target =
      List.exists
        (fun (b : Block.t) -> List.mem entry.label (Block.successors b))
        f.blocks
    in
    if entry_is_target then f
    else
      let next = ref f.next_id in
      let fresh () =
        let id = !next in
        incr next;
        id
      in
      (* randomized case numbers *)
      let labels = List.map (fun (b : Block.t) -> b.label) rest in
      let shuffled = Rng.shuffle rng labels in
      let case_of : (string, int) Hashtbl.t = Hashtbl.create 16 in
      List.iteri (fun i l -> Hashtbl.replace case_of l i) shuffled;
      let sw_slot = fresh () in
      let dispatch_label = "fla.dispatch" in
      let case_const l = Value.i32 (Hashtbl.find case_of l) in
      (* rewrite a terminator into "store next-case; br dispatcher" *)
      let reroute (instrs : Instr.t list) (term : Instr.terminator) :
          Instr.t list * Instr.terminator =
        match term with
        | Instr.Br l ->
            ( instrs
              @ [ Instr.mk_void (Instr.Store (case_const l, Value.Var sw_slot)) ],
              Instr.Br dispatch_label )
        | Instr.CondBr (c, t, e) ->
            let sel = fresh () in
            ( instrs
              @ [
                  Instr.mk ~id:sel ~ty:Types.I32
                    (Instr.Select (c, case_const t, case_const e));
                  Instr.mk_void (Instr.Store (Value.Var sel, Value.Var sw_slot));
                ],
              Instr.Br dispatch_label )
        | (Instr.Ret _ | Instr.Unreachable) as t -> (instrs, t)
        | Instr.Switch _ -> (instrs, term) (* lowered away above *)
      in
      let entry_instrs, entry_term =
        let alloca =
          Instr.mk ~id:sw_slot ~ty:(Types.Ptr Types.I32) (Instr.Alloca Types.I32)
        in
        reroute (entry.instrs @ [ alloca ]) entry.term
      in
      let entry' = { entry with instrs = entry_instrs; term = entry_term } in
      let flattened =
        List.map
          (fun (b : Block.t) ->
            let instrs, term = reroute b.instrs b.term in
            { b with instrs; term })
          rest
      in
      (* the dispatcher *)
      let loaded = fresh () in
      let cases =
        List.map (fun l -> (Int64.of_int (Hashtbl.find case_of l), l)) labels
      in
      let default = match labels with l :: _ -> l | [] -> entry.label in
      let dispatcher =
        Block.make ~label:dispatch_label
          ~instrs:[ Instr.mk ~id:loaded ~ty:Types.I32 (Instr.Load (Value.Var sw_slot)) ]
          ~term:(Instr.Switch (Value.Var loaded, default, cases))
      in
      { f with blocks = entry' :: dispatcher :: flattened; next_id = !next }

let run (rng : Rng.t) (m : Irmod.t) : Irmod.t =
  Irmod.map_funcs (run_func rng) m
