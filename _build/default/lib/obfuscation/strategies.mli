(** The four search strategies from Zhang et al. (2021) for combining the
    base source transformations into an evading sequence.  All score
    candidates by the Euclidean distance between opcode histograms of the
    lowered original and transformed programs — the paper's own evasion
    metric (Figure 10). *)

(** Random search: a random subset, each transformation at most once. *)
val rs :
  ?max_len:int ->
  Yali_util.Rng.t -> Yali_minic.Ast.program -> Yali_minic.Ast.program

(** Markov-chain Monte Carlo over sequences (Metropolis acceptance on the
    distance objective). *)
val mcmc :
  ?iterations:int ->
  ?max_len:int ->
  Yali_util.Rng.t -> Yali_minic.Ast.program -> Yali_minic.Ast.program

(** Greedy distance-maximising sequence generation — the role the Deep-RL
    sequence generator plays in Zhang et al. *)
val drlsg :
  ?max_len:int ->
  Yali_util.Rng.t -> Yali_minic.Ast.program -> Yali_minic.Ast.program

(** Genetic algorithm: tournament selection, one-point crossover, point
    mutation. *)
val ga :
  ?population:int ->
  ?generations:int ->
  ?max_len:int ->
  Yali_util.Rng.t -> Yali_minic.Ast.program -> Yali_minic.Ast.program

type strategy = {
  sname : string;
  run : Yali_util.Rng.t -> Yali_minic.Ast.program -> Yali_minic.Ast.program;
}

(** [rs], [mcmc], [drlsg], [ga]. *)
val all : strategy list

val find : string -> strategy option
