(** The evader registry (paper, Figure 4).

    An evader owns the challenge's build pipeline: it maps a source program
    to the IR module handed to the classifier.  IR-level evaders lower at
    [-O0] and transform the IR; source-level evaders transform the source
    first; [clang -O3] is itself an evader. *)

type t = {
  ename : string;
  apply : Yali_util.Rng.t -> Yali_minic.Ast.program -> Yali_ir.Irmod.t;
}

(** The passive evader of Game0: plain [-O0] lowering. *)
val none : t

(** Compiler optimization as evasion (Ren et al.). *)
val o3 : t

(** O-LLVM instruction substitution. *)
val sub : t

(** O-LLVM bogus control flow. *)
val bcf : t

(** O-LLVM control-flow flattening. *)
val fla : t

(** All O-LLVM passes combined. *)
val ollvm : t

(** Zhang-style source-level strategies. *)
val rs : t

val mcmc : t
val drlsg : t
val ga : t

(** [clang -mem2reg] alone — a transformer class in the RQ7 experiment. *)
val mem2reg : t

(** The eight active evaders of Figures 8–11. *)
val active : t list

(** [none :: active]. *)
val all : t list

(** Look up any evader by name, including [ga] and [mem2reg]. *)
val find : string -> t option
