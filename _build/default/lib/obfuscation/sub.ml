(** Instruction substitution, after O-LLVM's [-sub] pass (Junod et al.).

    Integer arithmetic and logic instructions are replaced by longer
    sequences with identical semantics (in modular arithmetic):

    - [a + b]  →  [a - (0 - b)]   or  [(a | b) + (a & b)]
                  or  [(a ^ b) + 2*(a & b)]
    - [a - b]  →  [a + (0 - b)]
    - [a ^ b]  →  [(a | b) - (a & b)]
    - [a & b]  →  [(a | b) - (a ^ b)]
    - [a | b]  →  [(a & b) + (a ^ b)] *)

open Yali_ir
module Rng = Yali_util.Rng

(* Build replacement instruction sequences.  [fresh ()] mints SSA ids; the
   final instruction must carry [id] (the original result id) so that uses
   remain valid. *)
let substitute ~(fresh : unit -> int) (rng : Rng.t) (i : Instr.t) :
    Instr.t list option =
  let ty = i.ty in
  let mk ~id kind = Instr.mk ~id ~ty kind in
  match i.kind with
  | Instr.Ibin (Instr.Add, a, b) -> (
      match Rng.int rng 3 with
      | 0 ->
          (* a - (0 - b) *)
          let t = fresh () in
          Some
            [
              mk ~id:t (Instr.Ibin (Instr.Sub, Value.IConst (ty, 0L), b));
              mk ~id:i.id (Instr.Ibin (Instr.Sub, a, Value.Var t));
            ]
      | 1 ->
          (* (a | b) + (a & b) *)
          let t1 = fresh () and t2 = fresh () in
          Some
            [
              mk ~id:t1 (Instr.Ibin (Instr.Or, a, b));
              mk ~id:t2 (Instr.Ibin (Instr.And, a, b));
              mk ~id:i.id (Instr.Ibin (Instr.Add, Value.Var t1, Value.Var t2));
            ]
      | _ ->
          (* (a ^ b) + 2*(a & b) *)
          let t1 = fresh () and t2 = fresh () and t3 = fresh () in
          Some
            [
              mk ~id:t1 (Instr.Ibin (Instr.Xor, a, b));
              mk ~id:t2 (Instr.Ibin (Instr.And, a, b));
              mk ~id:t3 (Instr.Ibin (Instr.Shl, Value.Var t2, Value.IConst (ty, 1L)));
              mk ~id:i.id (Instr.Ibin (Instr.Add, Value.Var t1, Value.Var t3));
            ])
  | Instr.Ibin (Instr.Sub, a, b) ->
      (* a + (0 - b) *)
      let t = fresh () in
      Some
        [
          mk ~id:t (Instr.Ibin (Instr.Sub, Value.IConst (ty, 0L), b));
          mk ~id:i.id (Instr.Ibin (Instr.Add, a, Value.Var t));
        ]
  | Instr.Ibin (Instr.Xor, a, b) ->
      let t1 = fresh () and t2 = fresh () in
      Some
        [
          mk ~id:t1 (Instr.Ibin (Instr.Or, a, b));
          mk ~id:t2 (Instr.Ibin (Instr.And, a, b));
          mk ~id:i.id (Instr.Ibin (Instr.Sub, Value.Var t1, Value.Var t2));
        ]
  | Instr.Ibin (Instr.And, a, b) ->
      let t1 = fresh () and t2 = fresh () in
      Some
        [
          mk ~id:t1 (Instr.Ibin (Instr.Or, a, b));
          mk ~id:t2 (Instr.Ibin (Instr.Xor, a, b));
          mk ~id:i.id (Instr.Ibin (Instr.Sub, Value.Var t1, Value.Var t2));
        ]
  | Instr.Ibin (Instr.Or, a, b) ->
      let t1 = fresh () and t2 = fresh () in
      Some
        [
          mk ~id:t1 (Instr.Ibin (Instr.And, a, b));
          mk ~id:t2 (Instr.Ibin (Instr.Xor, a, b));
          mk ~id:i.id (Instr.Ibin (Instr.Add, Value.Var t1, Value.Var t2));
        ]
  | _ -> None

let run_func ?(probability = 1.0) ?(rounds = 1) (rng : Rng.t) (f : Func.t) :
    Func.t =
  let f = ref f in
  for _ = 1 to rounds do
    let next = ref !f.next_id in
    let fresh () =
      let id = !next in
      incr next;
      id
    in
    let blocks =
      List.map
        (fun (b : Block.t) ->
          let instrs =
            List.concat_map
              (fun (i : Instr.t) ->
                if
                  Types.is_integer i.ty
                  && Instr.defines i
                  && Rng.bernoulli rng probability
                then
                  match substitute ~fresh rng i with
                  | Some seq -> seq
                  | None -> [ i ]
                else [ i ])
              b.instrs
          in
          { b with instrs })
        !f.blocks
    in
    f := { !f with blocks; next_id = !next }
  done;
  !f

let run ?probability ?rounds (rng : Rng.t) (m : Irmod.t) : Irmod.t =
  Irmod.map_funcs (run_func ?probability ?rounds rng) m
