(** The fifteen source-to-source transformations behind Zhang et al.'s
    clone-detector evaders.  Each is semantics-preserving on mini-C
    functions; {!Strategies} combines them into evading sequences. *)

type t = {
  txname : string;
  apply : Yali_util.Rng.t -> Yali_minic.Ast.func -> Yali_minic.Ast.func;
}

val for_to_while : t
val while_to_for : t
val while_to_dowhile : t
val switch_to_ifchain : t
val if_negate_swap : t
val const_unfold : t
val const_xor : t
val var_rename : t
val dead_decl : t
val commute : t
val mul2_to_add : t
val loop_peel : t
val wrap_dowhile0 : t
val add_identity : t
val cmp_swap : t

(** The fifteen base transformations, in a stable order. *)
val all : t list

val find : string -> t option

(** Apply one transformation to every function of a program. *)
val apply_program :
  t -> Yali_util.Rng.t -> Yali_minic.Ast.program -> Yali_minic.Ast.program

(** Apply a sequence, left to right. *)
val apply_sequence :
  t list -> Yali_util.Rng.t -> Yali_minic.Ast.program -> Yali_minic.Ast.program
