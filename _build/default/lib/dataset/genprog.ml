(** The synthetic programming-problem corpus: 104 problem classes, mirroring
    the shape of Mou et al.'s POJ-104 (104 problems, many stochastically
    varied solutions per problem).  Every generator yields a fresh mini-C
    program that is a valid solution to its class's problem; variation comes
    from identifier pools, loop-shape choices, statement order, helper
    splitting and junk code — the axes along which human submissions to an
    online judge differ. *)

module Rng = Yali_util.Rng

type problem = {
  pid : int;
  pname : string;
  generate : Rng.t -> Yali_minic.Ast.program;
}

let all : problem list =
  List.mapi
    (fun pid (pname, generate) -> { pid; pname; generate })
    (Genprog_arith.problems @ Genprog_arrays.problems @ Genprog_loops.problems
   @ Genprog_matrix.problems @ Genprog_dp.problems @ Genprog_misc.problems)

let count = List.length all

let () =
  (* the corpus is POJ-104-shaped by construction *)
  assert (count = 104)

let find_by_name name = List.find_opt (fun p -> p.pname = name) all

let nth (k : int) : problem = List.nth all k

(** [sample rng problem] draws one stochastic solution. *)
let sample (rng : Rng.t) (p : problem) : Yali_minic.Ast.program =
  p.generate rng
