(** Problem classes: loop-heavy output and series tasks. *)

open Yali_minic.Ast
open Gen_dsl
module Rng = Yali_util.Rng

let multiplication_table rng =
  let c = ctx rng in
  let n = name c "n" and x = name c "x" and y = name c "y" in
  simple_main c
    ~prologue:[ decl n (read_clamped 1 9) ]
    (count_loop c ~var:x ~lo:(i 1) ~hi:(v n +@ i 1)
       (count_loop c ~var:y ~lo:(i 1) ~hi:(v n +@ i 1)
          [ print (v x *@ v y) ]))

let fibonacci_sequence rng =
  let c = ctx rng in
  let n = name c "n" and a = name c "a" and b = name c "b" and t = name c "t" in
  let k = name c "k" in
  simple_main c
    ~prologue:[ decl n (read_clamped 1 20) ]
    (reorder c [ decl a (i 0); decl b (i 1) ]
    @ count_loop c ~var:k ~lo:(i 0) ~hi:(v n)
        [ print (v a); decl t (v a +@ v b); set a (v b); set b (v t) ])

let alternating_series rng =
  let c = ctx rng in
  let n = name c "n" and s = name c "s" and sign = name c "sign" and k = name c "k" in
  simple_main c
    ~prologue:[ decl n (read_clamped 1 40) ]
    ~epilogue:[ print (v s) ]
    (reorder c [ decl s (i 0); decl sign (i 1) ]
    @ count_loop c ~var:k ~lo:(i 1) ~hi:(v n +@ i 1)
        [ accum c s (v sign *@ v k); set sign (i 0 -@ v sign) ])

let geometric_series rng =
  let c = ctx rng in
  let n = name c "n" and s = name c "s" and p = name c "p" and k = name c "k" in
  simple_main c
    ~prologue:[ decl n (read_clamped 1 20) ]
    ~epilogue:[ print (v s) ]
    (reorder c [ decl s (i 0); decl p (i 1) ]
    @ count_loop c ~var:k ~lo:(i 0) ~hi:(v n)
        [ accum c s (v p); set p (v p *@ i 2) ])

let count_bits_range rng =
  let c = ctx rng in
  let n = name c "n" and total = name c "total" in
  let k = name c "k" and x = name c "x" in
  simple_main c
    ~prologue:[ decl n (read_clamped 1 64) ]
    ~epilogue:[ print (v total) ]
    (decl total (i 0)
    :: count_loop c ~var:k ~lo:(i 1) ~hi:(v n +@ i 1)
         [
           decl x (v k);
           While
             ( v x >@ i 0,
               [ accum c total (v x %@ i 2); set x (v x /@ i 2) ] );
         ])

let xor_range rng =
  let c = ctx rng in
  let n = name c "n" and acc = name c "acc" and k = name c "k" in
  simple_main c
    ~prologue:[ decl n (read_clamped 1 100) ]
    ~epilogue:[ print (v acc) ]
    (decl acc (i 0)
    :: count_loop c ~var:k ~lo:(i 1) ~hi:(v n +@ i 1)
         [ set acc (Bin (BXor, v acc, v k)) ])

let temperature_conversion rng =
  let c = ctx rng in
  let n = name c "n" and t = name c "t" and k = name c "k" in
  simple_main c
    ~prologue:[ decl n (read_clamped 1 10) ]
    (count_loop c ~var:k ~lo:(i 0) ~hi:(v n)
       [ decl t (read_clamped 0 100); print ((v t *@ i 9 /@ i 5) +@ i 32) ])

let compound_interest rng =
  let c = ctx rng in
  let years = name c "years" and bal = name c "bal" and k = name c "k" in
  simple_main c
    ~prologue:[ decl years (read_clamped 1 20) ]
    ~epilogue:[ print (v bal) ]
    (decl bal (i 10000)
    :: count_loop c ~var:k ~lo:(i 0) ~hi:(v years)
         [ set bal (v bal +@ (v bal *@ i 5 /@ i 100)); print (v bal) ])

let digit_histogram rng =
  let c = ctx rng in
  let h = name c "hist" and n = name c "n" and x = name c "x" in
  let k = name c "k" and k2 = name c "p" in
  simple_main c
    ~prologue:[ DeclArr (h, 10); decl n (read_clamped 1 8) ]
    (count_loop c ~var:k ~lo:(i 0) ~hi:(i 10) [ seti h (v k) (i 0) ]
    @ count_loop c ~var:k2 ~lo:(i 0) ~hi:(v n)
        [
          decl x (read_clamped 0 999999);
          If (v x ==@ i 0, [ seti h (i 0) (idx h (i 0) +@ i 1) ], []);
          While
            ( v x >@ i 0,
              [
                seti h (v x %@ i 10) (idx h (v x %@ i 10) +@ i 1);
                set x (v x /@ i 10);
              ] );
        ]
    @
    let k3 = name c "q" in
    count_loop c ~var:k3 ~lo:(i 0) ~hi:(i 10) [ print (idx h (v k3)) ])

let running_max rng =
  let c = ctx rng in
  let n = name c "n" and best = name c "best" and x = name c "x" and k = name c "k" in
  simple_main c
    ~prologue:[ decl n (read_clamped 1 20) ]
    (decl best (i (-1))
    :: count_loop c ~var:k ~lo:(i 0) ~hi:(v n)
         [
           decl x (read_clamped 0 1000);
           If (v x >@ v best, [ set best (v x) ], []);
           print (v best);
         ])

let sum_odd_even rng =
  let c = ctx rng in
  let n = name c "n" and so = name c "sum_odd" and se = name c "sum_even" in
  let k = name c "k" and x = name c "x" in
  simple_main c
    ~prologue:[ decl n (read_clamped 1 20) ]
    ~epilogue:[ print (v so); print (v se) ]
    (reorder c [ decl so (i 0); decl se (i 0) ]
    @ count_loop c ~var:k ~lo:(i 0) ~hi:(v n)
        [
          decl x (read_clamped 0 100);
          If (v x %@ i 2 ==@ i 0, [ accum c se (v x) ], [ accum c so (v x) ]);
        ])

let triangle_pattern rng =
  let c = ctx rng in
  let n = name c "n" and x = name c "row" and y = name c "col" in
  simple_main c
    ~prologue:[ decl n (read_clamped 1 12) ]
    (count_loop c ~var:x ~lo:(i 1) ~hi:(v n +@ i 1)
       (count_loop c ~var:y ~lo:(i 0) ~hi:(v x) [ print (v x) ]))

let lcg_sequence rng =
  let c = ctx rng in
  let n = name c "n" and s = name c "seed" and k = name c "k" in
  simple_main c
    ~prologue:[ decl n (read_clamped 1 30); decl s (read_clamped 1 1000) ]
    (count_loop c ~var:k ~lo:(i 0) ~hi:(v n)
       [
         set s (((v s *@ i 1103) +@ i 12345) %@ i 65536);
         print (v s %@ i 100);
       ])

let checksum rng =
  let c = ctx rng in
  let n = name c "n" and acc = name c "acc" and x = name c "x" and k = name c "k" in
  simple_main c
    ~prologue:[ decl n (read_clamped 1 20) ]
    ~epilogue:[ print (v acc) ]
    (decl acc (i 7)
    :: count_loop c ~var:k ~lo:(i 0) ~hi:(v n)
         [
           decl x (read_clamped 0 255);
           set acc (Bin (BXor, v acc *@ i 31 %@ i 65536, v x));
         ])

let gcd_of_stream rng =
  let c = ctx rng in
  let n = name c "n" and g = name c "g" and x = name c "x" in
  let a = name c "a" and b = name c "b" and t = name c "t" and k = name c "k" in
  simple_main c
    ~prologue:[ decl n (read_clamped 1 10) ]
    ~epilogue:[ print (v g) ]
    (decl g (read_clamped 1 500)
    :: count_loop c ~var:k ~lo:(i 1) ~hi:(v n)
         [
           decl x (read_clamped 1 500);
           decl a (v g);
           decl b (v x);
           While (v b <>@ i 0, [ decl t (v b); set b (v a %@ v b); set a (v t) ]);
           set g (v a);
         ])

let divisor_pairs rng =
  let c = ctx rng in
  let n = name c "n" and k = name c "k" in
  simple_main c
    ~prologue:[ decl n (read_clamped 1 60) ]
    (count_loop c ~var:k ~lo:(i 1) ~hi:(v n +@ i 1)
       [ If (v n %@ v k ==@ i 0, [ print (v k); print (v n /@ v k) ], []) ])

let countdown_print rng =
  let c = ctx rng in
  let n = name c "n" and k = name c "k" in
  simple_main c
    ~prologue:[ decl n (read_clamped 1 30) ]
    (count_down_loop c ~var:k ~lo:(i 0) ~hi:(v n +@ i 1) [ print (v k) ])

let weighted_sum rng =
  let c = ctx rng in
  let n = name c "n" and s = name c "s" and x = name c "x" and k = name c "k" in
  simple_main c
    ~prologue:[ decl n (read_clamped 1 20) ]
    ~epilogue:[ print (v s) ]
    (decl s (i 0)
    :: count_loop c ~var:k ~lo:(i 0) ~hi:(v n)
         [ decl x (read_clamped 0 50); accum c s (v x *@ (v k +@ i 1)) ])

let clamp_stream rng =
  let c = ctx rng in
  let n = name c "n" and x = name c "x" and k = name c "k" in
  let lo = name c "lo" and hi = name c "hi" in
  simple_main c
    ~prologue:
      [ decl n (read_clamped 1 20); decl lo (i 10); decl hi (i 90) ]
    (count_loop c ~var:k ~lo:(i 0) ~hi:(v n)
       [
         decl x (read_clamped 0 100);
         If (v x <@ v lo, [ set x (v lo) ], []);
         If (v x >@ v hi, [ set x (v hi) ], []);
         print (v x);
       ])

let three_way_classify rng =
  let c = ctx rng in
  let n = name c "n" and x = name c "x" and k = name c "k" in
  let neg = name c "nneg" and zer = name c "nzer" and pos = name c "npos" in
  simple_main c
    ~prologue:[ decl n (read_clamped 1 25) ]
    ~epilogue:[ print (v neg); print (v zer); print (v pos) ]
    (reorder c [ decl neg (i 0); decl zer (i 0); decl pos (i 0) ]
    @ count_loop c ~var:k ~lo:(i 0) ~hi:(v n)
        [
          decl x (read_clamped 0 20 -@ i 10);
          If
            ( v x <@ i 0,
              [ accum c neg (i 1) ],
              [
                If (v x ==@ i 0, [ accum c zer (i 1) ], [ accum c pos (i 1) ]);
              ] );
        ])

let problems : (string * (Rng.t -> Yali_minic.Ast.program)) list =
  [
    ("multiplication_table", multiplication_table);
    ("fibonacci_sequence", fibonacci_sequence);
    ("alternating_series", alternating_series);
    ("geometric_series", geometric_series);
    ("count_bits_range", count_bits_range);
    ("xor_range", xor_range);
    ("temperature_conversion", temperature_conversion);
    ("compound_interest", compound_interest);
    ("digit_histogram", digit_histogram);
    ("running_max", running_max);
    ("sum_odd_even", sum_odd_even);
    ("triangle_pattern", triangle_pattern);
    ("lcg_sequence", lcg_sequence);
    ("checksum", checksum);
    ("gcd_of_stream", gcd_of_stream);
    ("divisor_pairs", divisor_pairs);
    ("countdown_print", countdown_print);
    ("weighted_sum", weighted_sum);
    ("clamp_stream", clamp_stream);
    ("three_way_classify", three_way_classify);
  ]
