lib/dataset/mirai.ml: Gen_dsl List Yali_minic Yali_util
