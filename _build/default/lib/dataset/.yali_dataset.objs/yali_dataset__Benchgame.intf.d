lib/dataset/benchgame.mli: Yali_minic
