lib/dataset/genprog2.mli: Poj Yali_minic Yali_util
