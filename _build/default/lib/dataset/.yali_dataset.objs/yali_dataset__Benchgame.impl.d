lib/dataset/benchgame.ml: Gen_dsl Yali_minic
