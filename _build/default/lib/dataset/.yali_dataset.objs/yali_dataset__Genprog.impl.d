lib/dataset/genprog.ml: Genprog_arith Genprog_arrays Genprog_dp Genprog_loops Genprog_matrix Genprog_misc List Yali_minic Yali_util
