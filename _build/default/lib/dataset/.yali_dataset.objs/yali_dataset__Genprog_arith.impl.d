lib/dataset/genprog_arith.ml: Gen_dsl Yali_minic Yali_util
