lib/dataset/genprog_arrays.ml: Gen_dsl Printf Yali_minic Yali_util
