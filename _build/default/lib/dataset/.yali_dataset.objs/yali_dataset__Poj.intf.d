lib/dataset/poj.mli: Yali_minic Yali_util
