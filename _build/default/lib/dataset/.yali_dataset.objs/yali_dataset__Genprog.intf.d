lib/dataset/genprog.mli: Yali_minic Yali_util
