lib/dataset/mirai.mli: Yali_minic Yali_util
