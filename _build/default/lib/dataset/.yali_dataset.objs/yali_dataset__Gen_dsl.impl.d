lib/dataset/gen_dsl.ml: List Printf Yali_minic Yali_util
