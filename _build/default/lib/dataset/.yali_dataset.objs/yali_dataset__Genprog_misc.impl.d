lib/dataset/genprog_misc.ml: Gen_dsl Yali_minic Yali_util
