lib/dataset/genprog2.ml: Array Gen_dsl List Poj Yali_minic Yali_util
