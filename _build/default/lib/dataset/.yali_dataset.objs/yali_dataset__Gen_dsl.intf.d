lib/dataset/gen_dsl.mli: Yali_minic Yali_util
