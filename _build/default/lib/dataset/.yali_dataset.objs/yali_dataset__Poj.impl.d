lib/dataset/poj.ml: Array Genprog List Yali_minic Yali_util
