lib/dataset/genprog_dp.ml: Gen_dsl List Yali_minic Yali_util
