lib/dataset/genprog_loops.ml: Gen_dsl Yali_minic Yali_util
