lib/dataset/genprog_matrix.ml: Gen_dsl Printf Yali_minic Yali_util
