(** Problem classes: arithmetic and number theory (POJ-style "programming
    judge" tasks).  Each generator returns a fresh stochastic solution to the
    same underlying problem, playing the role of a distinct human submission. *)

open Yali_minic.Ast
open Gen_dsl
module Rng = Yali_util.Rng

let sum_1_to_n rng =
  let c = ctx rng in
  let n = name c "n" and s = name c "s" and k = name c "k" in
  simple_main c
    ~prologue:[ decl n (read_clamped 1 40) ]
    ~epilogue:[ print (v s) ]
    (decl s (i 0)
    :: count_loop c ~var:k ~lo:(i 1) ~hi:(v n +@ i 1) [ accum c s (v k) ])

let factorial rng =
  let c = ctx rng in
  let n = name c "n" and f = name c "f" and k = name c "k" in
  simple_main c
    ~prologue:[ decl n (read_clamped 1 12) ]
    ~epilogue:[ print (v f) ]
    (decl f (i 1)
    :: count_loop c ~var:k ~lo:(i 2) ~hi:(v n +@ i 1)
         [ set f (v f *@ v k) ])

let fibonacci rng =
  let c = ctx rng in
  let n = name c "n" and a = name c "a" and b = name c "b" and t = name c "t" in
  let k = name c "k" in
  simple_main c
    ~prologue:[ decl n (read_clamped 1 30) ]
    ~epilogue:[ print (v a) ]
    (reorder c [ decl a (i 0); decl b (i 1) ]
    @ count_loop c ~var:k ~lo:(i 0) ~hi:(v n)
        [ decl t (v a +@ v b); set a (v b); set b (v t) ])

let gcd rng =
  let c = ctx rng in
  let a = name c "a" and b = name c "b" and t = name c "t" in
  simple_main c
    ~prologue:[ decl a (read_clamped 1 1000); decl b (read_clamped 1 1000) ]
    ~epilogue:[ print (v a) ]
    [
      While
        ( v b <>@ i 0,
          [ decl t (v b); set b (v a %@ v b); set a (v t) ] );
    ]

let lcm rng =
  let c = ctx rng in
  let a = name c "a" and b = name c "b" in
  let x = name c "x" and y = name c "y" and t = name c "t" in
  simple_main c
    ~prologue:[ decl a (read_clamped 1 60); decl b (read_clamped 1 60) ]
    ~epilogue:[ print (v a *@ v b /@ v x) ]
    [
      decl x (v a);
      decl y (v b);
      While (v y <>@ i 0, [ decl t (v y); set y (v x %@ v y); set x (v t) ]);
    ]

let is_prime rng =
  let c = ctx rng in
  let n = name c "n" and p = name c "p" and d = name c "d" in
  simple_main c
    ~prologue:[ decl n (read_clamped 2 500) ]
    ~epilogue:[ print (v p) ]
    (decl p (i 1)
    :: count_loop c ~var:d ~lo:(i 2) ~hi:(v n)
         [ If (v n %@ v d ==@ i 0 &&@ (v d <@ v n), [ set p (i 0) ], []) ])

let count_primes rng =
  let c = ctx rng in
  let n = name c "n" and cnt = name c "count" in
  let k = name c "k" and d = name c "d" and ok = name c "ok" in
  simple_main c
    ~prologue:[ decl n (read_clamped 2 80) ]
    ~epilogue:[ print (v cnt) ]
    (decl cnt (i 0)
    :: count_loop c ~var:k ~lo:(i 2) ~hi:(v n +@ i 1)
         (decl ok (i 1)
         :: count_loop c ~var:d ~lo:(i 2) ~hi:(v k)
              [ If (v k %@ v d ==@ i 0, [ set ok (i 0) ], []) ]
         @ [ If (v ok ==@ i 1, [ accum c cnt (i 1) ], []) ]))

let sum_of_digits rng =
  let c = ctx rng in
  let n = name c "n" and s = name c "s" in
  simple_main c
    ~prologue:[ decl n (read_clamped 0 999999) ]
    ~epilogue:[ print (v s) ]
    [
      decl s (i 0);
      While (v n >@ i 0, [ accum c s (v n %@ i 10); set n (v n /@ i 10) ]);
    ]

let reverse_digits rng =
  let c = ctx rng in
  let n = name c "n" and r = name c "r" in
  simple_main c
    ~prologue:[ decl n (read_clamped 0 999999) ]
    ~epilogue:[ print (v r) ]
    [
      decl r (i 0);
      While
        ( v n >@ i 0,
          [ set r ((v r *@ i 10) +@ (v n %@ i 10)); set n (v n /@ i 10) ] );
    ]

let palindrome_number rng =
  let c = ctx rng in
  let n = name c "n" and m = name c "m" and r = name c "r" in
  simple_main c
    ~prologue:[ decl n (read_clamped 0 99999) ]
    ~epilogue:[ print (Ternary (v r ==@ v m, i 1, i 0)) ]
    [
      decl m (v n);
      decl r (i 0);
      While
        ( v n >@ i 0,
          [ set r ((v r *@ i 10) +@ (v n %@ i 10)); set n (v n /@ i 10) ] );
    ]

let perfect_number rng =
  let c = ctx rng in
  let n = name c "n" and s = name c "s" and d = name c "d" in
  simple_main c
    ~prologue:[ decl n (read_clamped 1 500) ]
    ~epilogue:[ print (Ternary (v s ==@ v n, i 1, i 0)) ]
    (decl s (i 0)
    :: count_loop c ~var:d ~lo:(i 1) ~hi:(v n)
         [ If (v n %@ v d ==@ i 0, [ accum c s (v d) ], []) ])

let armstrong rng =
  let c = ctx rng in
  let n = name c "n" and m = name c "m" and s = name c "s" and d = name c "d" in
  simple_main c
    ~prologue:[ decl n (read_clamped 1 999) ]
    ~epilogue:[ print (Ternary (v s ==@ v m, i 1, i 0)) ]
    [
      decl m (v n);
      decl s (i 0);
      While
        ( v n >@ i 0,
          [
            decl d (v n %@ i 10);
            accum c s (v d *@ v d *@ v d);
            set n (v n /@ i 10);
          ] );
    ]

let int_power rng =
  let c = ctx rng in
  let b = name c "base" and e = name c "e" and r = name c "r" and k = name c "k" in
  simple_main c
    ~prologue:[ decl b (read_clamped 1 9); decl e (read_clamped 0 9) ]
    ~epilogue:[ print (v r) ]
    (decl r (i 1)
    :: count_loop c ~var:k ~lo:(i 0) ~hi:(v e) [ set r (v r *@ v b) ])

let collatz_steps rng =
  let c = ctx rng in
  let n = name c "n" and s = name c "steps" in
  simple_main c
    ~prologue:[ decl n (read_clamped 1 200) ]
    ~epilogue:[ print (v s) ]
    [
      decl s (i 0);
      While
        ( v n >@ i 1 &&@ (v s <@ i 300),
          [
            If
              ( v n %@ i 2 ==@ i 0,
                [ set n (v n /@ i 2) ],
                [ set n ((v n *@ i 3) +@ i 1) ] );
            accum c s (i 1);
          ] );
    ]

let sum_multiples_3_5 rng =
  let c = ctx rng in
  let n = name c "n" and s = name c "s" and k = name c "k" in
  simple_main c
    ~prologue:[ decl n (read_clamped 1 200) ]
    ~epilogue:[ print (v s) ]
    (decl s (i 0)
    :: count_loop c ~var:k ~lo:(i 1) ~hi:(v n)
         [
           If
             ( v k %@ i 3 ==@ i 0 ||@ (v k %@ i 5 ==@ i 0),
               [ accum c s (v k) ],
               [] );
         ])

let digital_root rng =
  let c = ctx rng in
  let n = name c "n" and s = name c "s" in
  simple_main c
    ~prologue:[ decl n (read_clamped 0 999999) ]
    ~epilogue:[ print (v n) ]
    [
      While
        ( v n >=@ i 10,
          [
            decl s (i 0);
            While
              (v n >@ i 0, [ accum c s (v n %@ i 10); set n (v n /@ i 10) ]);
            set n (v s);
          ] );
    ]

let count_divisors rng =
  let c = ctx rng in
  let n = name c "n" and cnt = name c "cnt" and d = name c "d" in
  simple_main c
    ~prologue:[ decl n (read_clamped 1 400) ]
    ~epilogue:[ print (v cnt) ]
    (decl cnt (i 0)
    :: count_loop c ~var:d ~lo:(i 1) ~hi:(v n +@ i 1)
         [ If (v n %@ v d ==@ i 0, [ accum c cnt (i 1) ], []) ])

let integer_sqrt rng =
  let c = ctx rng in
  let n = name c "n" and r = name c "r" in
  simple_main c
    ~prologue:[ decl n (read_clamped 0 10000) ]
    ~epilogue:[ print (v r) ]
    [
      decl r (i 0);
      While ((v r +@ i 1) *@ (v r +@ i 1) <=@ v n, [ accum c r (i 1) ]);
    ]

let to_binary rng =
  let c = ctx rng in
  let n = name c "n" and b = name c "bits" and p = name c "p" in
  simple_main c
    ~prologue:[ decl n (read_clamped 0 1023) ]
    ~epilogue:[ print (v b) ]
    [
      decl b (i 0);
      decl p (i 1);
      While
        ( v n >@ i 0,
          [
            set b (v b +@ (v n %@ i 2 *@ v p));
            set p (v p *@ i 10);
            set n (v n /@ i 2);
          ] );
    ]

let mod_exp rng =
  let c = ctx rng in
  let b = name c "b" and e = name c "e" and m = name c "m" and r = name c "r" in
  let k = name c "k" in
  simple_main c
    ~prologue:
      [
        decl b (read_clamped 1 50);
        decl e (read_clamped 0 20);
        decl m (read_clamped 2 97);
      ]
    ~epilogue:[ print (v r) ]
    (decl r (i 1)
    :: count_loop c ~var:k ~lo:(i 0) ~hi:(v e)
         [ set r (v r *@ v b %@ v m) ])

let triangular rng =
  let c = ctx rng in
  let n = name c "n" and t = name c "t" and k = name c "k" in
  simple_main c
    ~prologue:[ decl n (read_clamped 1 50) ]
    ~epilogue:[ print (v t) ]
    (decl t (i 0)
    :: count_loop c ~var:k ~lo:(i 1) ~hi:(v n +@ i 1)
         [ accum c t (v k); print (v t) ])

let sum_of_squares rng =
  let c = ctx rng in
  let n = name c "n" and s = name c "s" and k = name c "k" in
  simple_main c
    ~prologue:[ decl n (read_clamped 1 50) ]
    ~epilogue:[ print (v s) ]
    (decl s (i 0)
    :: count_loop c ~var:k ~lo:(i 1) ~hi:(v n +@ i 1)
         [ accum c s (v k *@ v k) ])

let harmonic_scaled rng =
  let c = ctx rng in
  let n = name c "n" and s = name c "s" and k = name c "k" in
  simple_main c
    ~prologue:[ decl n (read_clamped 1 60) ]
    ~epilogue:[ print (v s) ]
    (decl s (i 0)
    :: count_loop c ~var:k ~lo:(i 1) ~hi:(v n +@ i 1)
         [ accum c s (i 100000 /@ v k) ])

let prime_factors_count rng =
  let c = ctx rng in
  let n = name c "n" and cnt = name c "cnt" and d = name c "d" in
  simple_main c
    ~prologue:[ decl n (read_clamped 2 600) ]
    ~epilogue:[ print (v cnt) ]
    [
      decl cnt (i 0);
      decl d (i 2);
      While
        ( v d *@ v d <=@ v n,
          [
            While (v n %@ v d ==@ i 0, [ accum c cnt (i 1); set n (v n /@ v d) ]);
            accum c d (i 1);
          ] );
      If (v n >@ i 1, [ accum c cnt (i 1) ], []);
    ]

let ackermann_like rng =
  (* a bounded double-recursive function in the style of Ackermann *)
  let c = ctx rng in
  let fn = name c "ack" in
  let m = name c "m" and n = name c "n" in
  let helper =
    {
      fname = fn;
      fparams = [ (TInt, m); (TInt, n) ];
      fret = TInt;
      fbody =
        [
          If (v m ==@ i 0, [ ret (v n +@ i 1) ], []);
          If (v n ==@ i 0, [ ret (call fn [ v m -@ i 1; i 1 ]) ], []);
          ret (call fn [ v m -@ i 1; call fn [ v m; v n -@ i 1 ] ]);
        ];
    }
  in
  let main =
    {
      fname = "main";
      fparams = [];
      fret = TInt;
      fbody =
        [
          decl m (read_clamped 0 2);
          decl n (read_clamped 0 3);
          print (call fn [ v m; v n ]);
          ret (i 0);
        ];
    }
  in
  program [ helper; main ]

let problems : (string * (Rng.t -> Yali_minic.Ast.program)) list =
  [
    ("sum_1_to_n", sum_1_to_n);
    ("factorial", factorial);
    ("fibonacci", fibonacci);
    ("gcd", gcd);
    ("lcm", lcm);
    ("is_prime", is_prime);
    ("count_primes", count_primes);
    ("sum_of_digits", sum_of_digits);
    ("reverse_digits", reverse_digits);
    ("palindrome_number", palindrome_number);
    ("perfect_number", perfect_number);
    ("armstrong", armstrong);
    ("int_power", int_power);
    ("collatz_steps", collatz_steps);
    ("sum_multiples_3_5", sum_multiples_3_5);
    ("digital_root", digital_root);
    ("count_divisors", count_divisors);
    ("integer_sqrt", integer_sqrt);
    ("to_binary", to_binary);
    ("mod_exp", mod_exp);
    ("triangular", triangular);
    ("sum_of_squares", sum_of_squares);
    ("harmonic_scaled", harmonic_scaled);
    ("prime_factors_count", prime_factors_count);
    ("ackermann_like", ackermann_like);
  ]
