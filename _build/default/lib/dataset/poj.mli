(** Dataset assembly: balanced training/test splits over the 104 problem
    classes, in the shape the games consume. *)

type labelled = { src : Yali_minic.Ast.program; label : int }

type split = { train : labelled array; test : labelled array }

(** Build a balanced split over the first [n_classes] problems, or a random
    class subset when [shuffle_classes] is set (the paper's RQ1 draws 32 of
    104 at random).  Labels are re-indexed 0..n_classes-1. *)
val make :
  ?shuffle_classes:bool ->
  Yali_util.Rng.t ->
  n_classes:int ->
  train_per_class:int ->
  test_per_class:int ->
  split

val labels : labelled array -> int array
