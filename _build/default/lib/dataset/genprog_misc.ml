(** Problem classes: simulations and miscellany. *)

open Yali_minic.Ast
open Gen_dsl
module Rng = Yali_util.Rng

let josephus rng =
  let c = ctx rng in
  let n = name c "n" and k = name c "k" and survivor = name c "survivor" in
  let x = name c "x" in
  simple_main c
    ~prologue:[ decl n (read_clamped 1 30); decl k (read_clamped 1 10) ]
    ~epilogue:[ print (v survivor +@ i 1) ]
    (decl survivor (i 0)
    :: count_loop c ~var:x ~lo:(i 2) ~hi:(v n +@ i 1)
         [ set survivor ((v survivor +@ v k) %@ v x) ])

let queue_simulation rng =
  let c = ctx rng in
  let q = name c "q" and head = name c "head" and tail = name c "tail" in
  let n = name c "n" and op = name c "op" and k = name c "k" in
  let qsize = 32 in
  simple_main c
    ~prologue:
      [ DeclArr (q, qsize); decl head (i 0); decl tail (i 0);
        decl n (read_clamped 1 20) ]
    ~epilogue:[ print (v tail -@ v head) ]
    (count_loop c ~var:k ~lo:(i 0) ~hi:(v n)
       [
         decl op (read_clamped 0 2);
         If
           ( v op >@ i 0 &&@ (v tail <@ i qsize),
             [ seti q (v tail) (v k); set tail (v tail +@ i 1) ],
             [
               If
                 ( v head <@ v tail,
                   [ print (idx q (v head)); set head (v head +@ i 1) ],
                   [] );
             ] );
       ])

let stack_depth rng =
  let c = ctx rng in
  let n = name c "n" and depth = name c "depth" and best = name c "best" in
  let op = name c "op" and k = name c "k" in
  simple_main c
    ~prologue:[ decl n (read_clamped 1 25) ]
    ~epilogue:[ print (v best) ]
    (reorder c [ decl depth (i 0); decl best (i 0) ]
    @ count_loop c ~var:k ~lo:(i 0) ~hi:(v n)
        [
          decl op (read_clamped 0 2);
          If
            ( v op >@ i 0,
              [ accum c depth (i 1) ],
              [ If (v depth >@ i 0, [ set depth (v depth -@ i 1) ], []) ] );
          If (v depth >@ v best, [ set best (v depth) ], []);
        ])

let game_of_life_row rng =
  let c = ctx rng in
  let cur = name c "cur" and nxt = name c "nxt" and n = name c "n" in
  let steps = name c "steps" and k = name c "k" and s = name c "s" and t = name c "t" in
  let left = name c "left" and right = name c "right" in
  let w = 12 in
  simple_main c
    ~prologue:
      ([ DeclArr (cur, w); DeclArr (nxt, w); decl n (i w);
         decl steps (read_clamped 1 5) ]
      @ count_loop c ~var:k ~lo:(i 0) ~hi:(i w)
          [ seti cur (v k) (read_clamped 0 1) ])
    (count_loop c ~var:t ~lo:(i 0) ~hi:(v steps)
       (count_loop c ~var:s ~lo:(i 0) ~hi:(v n)
          [
            decl left (Ternary (v s ==@ i 0, i 0, idx cur (v s -@ i 1)));
            decl right (Ternary (v s ==@ (v n -@ i 1), i 0, idx cur (v s +@ i 1)));
            seti nxt (v s)
              (Ternary (v left +@ v right ==@ i 1, i 1, i 0));
          ]
       @ count_loop c ~var:k ~lo:(i 0) ~hi:(v n)
           [ seti cur (v k) (idx nxt (v k)) ])
    @
    let k2 = name c "p" in
    count_loop c ~var:k2 ~lo:(i 0) ~hi:(v n) [ print (idx cur (v k2)) ])

let random_walk rng =
  let c = ctx rng in
  let pos = name c "pos" and seed = name c "seed" and n = name c "n" and k = name c "k" in
  simple_main c
    ~prologue:
      [ decl pos (i 0); decl seed (read_clamped 1 9999);
        decl n (read_clamped 1 50) ]
    ~epilogue:[ print (call "abs" [ v pos ]) ]
    (count_loop c ~var:k ~lo:(i 0) ~hi:(v n)
       [
         set seed (((v seed *@ i 75) +@ i 74) %@ i 65537);
         If
           ( v seed %@ i 2 ==@ i 0,
             [ accum c pos (i 1) ],
             [ set pos (v pos -@ i 1) ] );
       ])

let bank_balance rng =
  let c = ctx rng in
  let bal = name c "balance" and n = name c "n" and amt = name c "amt" and k = name c "k" in
  simple_main c
    ~prologue:[ decl bal (i 1000); decl n (read_clamped 1 20) ]
    ~epilogue:[ print (v bal) ]
    (count_loop c ~var:k ~lo:(i 0) ~hi:(v n)
       [
         decl amt (read_clamped 0 200 -@ i 100);
         If
           ( (v amt <@ i 0) &&@ (v bal +@ v amt <@ i 0),
             [ print (i (-1)) ],
             [ set bal (v bal +@ v amt); print (v bal) ] );
       ])

let voting_winner rng =
  let c = ctx rng in
  let votes = name c "votes" and n = name c "n" and x = name c "x" in
  let k = name c "k" and best = name c "best" and k2 = name c "p" in
  let candidates = 5 in
  simple_main c
    ~prologue:
      ([ DeclArr (votes, candidates); decl n (read_clamped 1 30) ]
      @ count_loop c ~var:k ~lo:(i 0) ~hi:(i candidates)
          [ seti votes (v k) (i 0) ])
    ~epilogue:[ print (v best) ]
    (count_loop c ~var:k2 ~lo:(i 0) ~hi:(v n)
       [
         decl x (read_clamped 0 (candidates - 1));
         seti votes (v x) (idx votes (v x) +@ i 1);
       ]
    @
    let k3 = name c "q" in
    decl best (i 0)
    :: count_loop c ~var:k3 ~lo:(i 1) ~hi:(i candidates)
         [
           If (idx votes (v k3) >@ idx votes (v best), [ set best (v k3) ], []);
         ])

let sliding_window_max rng =
  let c = ctx rng in
  let a = name c "a" and n = name c "n" and w = name c "w" in
  let x = name c "x" and y = name c "y" and best = name c "best" and k = name c "k" in
  let sz = 16 in
  simple_main c
    ~prologue:
      ([ decl n (read_clamped 2 sz); DeclArr (a, sz) ]
      @ count_loop c ~var:k ~lo:(i 0) ~hi:(v n)
          [ seti a (v k) (read_clamped 0 99) ]
      @ [ decl w (read_clamped 1 4) ]
      @ [ If (v w >@ v n, [ set w (v n) ], []) ])
    (count_loop c ~var:x ~lo:(i 0) ~hi:(v n -@ v w +@ i 1)
       (decl best (idx a (v x))
       :: count_loop c ~var:y ~lo:(v x +@ i 1) ~hi:(v x +@ v w)
            [ If (idx a (v y) >@ v best, [ set best (idx a (v y)) ], []) ]
       @ [ print (v best) ]))

let caesar_shift rng =
  let c = ctx rng in
  let n = name c "n" and shift = name c "shift" and x = name c "x" and k = name c "k" in
  simple_main c
    ~prologue:[ decl n (read_clamped 1 20); decl shift (read_clamped 1 25) ]
    (count_loop c ~var:k ~lo:(i 0) ~hi:(v n)
       [
         decl x (read_clamped 0 25);
         print ((v x +@ v shift) %@ i 26);
       ])

let vowel_analog_count rng =
  (* count values in {0,4,8,14,20} — the "vowels" of a 26-letter alphabet *)
  let c = ctx rng in
  let n = name c "n" and cnt = name c "cnt" and x = name c "x" and k = name c "k" in
  simple_main c
    ~prologue:[ decl n (read_clamped 1 30) ]
    ~epilogue:[ print (v cnt) ]
    (decl cnt (i 0)
    :: count_loop c ~var:k ~lo:(i 0) ~hi:(v n)
         [
           decl x (read_clamped 0 25);
           Switch
             ( v x,
               [ (0, [ accum c cnt (i 1) ]); (4, [ accum c cnt (i 1) ]);
                 (8, [ accum c cnt (i 1) ]); (14, [ accum c cnt (i 1) ]);
                 (20, [ accum c cnt (i 1) ]) ],
               [] );
         ])

let run_length_encode rng =
  let c = ctx rng in
  let a = name c "a" and n = name c "n" in
  let cur = name c "cur" and cnt = name c "cnt" and k = name c "k" in
  let sz = 20 in
  simple_main c
    ~prologue:
      ([ decl n (read_clamped 1 sz); DeclArr (a, sz) ]
      @ count_loop c ~var:k ~lo:(i 0) ~hi:(v n)
          [ seti a (v k) (read_clamped 0 3) ])
    ~epilogue:[ print (v cur); print (v cnt) ]
    (let k2 = name c "p" in
     [ decl cur (idx a (i 0)); decl cnt (i 1) ]
     @ count_loop c ~var:k2 ~lo:(i 1) ~hi:(v n)
         [
           If
             ( idx a (v k2) ==@ v cur,
               [ accum c cnt (i 1) ],
               [
                 print (v cur);
                 print (v cnt);
                 set cur (idx a (v k2));
                 set cnt (i 1);
               ] );
         ])

let bubble_pass_count rng =
  let c = ctx rng in
  let a = name c "a" and n = name c "n" and passes = name c "passes" in
  let swapped = name c "swapped" and y = name c "y" and t = name c "t" and k = name c "k" in
  let sz = 12 in
  simple_main c
    ~prologue:
      ([ decl n (read_clamped 2 sz); DeclArr (a, sz) ]
      @ count_loop c ~var:k ~lo:(i 0) ~hi:(v n)
          [ seti a (v k) (read_clamped 0 99) ])
    ~epilogue:[ print (v passes) ]
    [
      decl passes (i 0);
      decl swapped (i 1);
      While
        ( v swapped ==@ i 1,
          Block
            (count_loop c ~var:y ~lo:(i 0) ~hi:(v n -@ i 1)
               [
                 If
                   ( idx a (v y) >@ idx a (v y +@ i 1),
                     [
                       decl t (idx a (v y));
                       seti a (v y) (idx a (v y +@ i 1));
                       seti a (v y +@ i 1) (v t);
                       set swapped (i 1);
                     ],
                     [] );
               ])
          :: [ accum c passes (i 1) ]
          |> fun body -> set swapped (i 0) :: body );
    ]

let problems : (string * (Rng.t -> Yali_minic.Ast.program)) list =
  [
    ("josephus", josephus);
    ("queue_simulation", queue_simulation);
    ("stack_depth", stack_depth);
    ("game_of_life_row", game_of_life_row);
    ("random_walk", random_walk);
    ("bank_balance", bank_balance);
    ("voting_winner", voting_winner);
    ("sliding_window_max", sliding_window_max);
    ("caesar_shift", caesar_shift);
    ("vowel_analog_count", vowel_analog_count);
    ("run_length_encode", run_length_encode);
    ("bubble_pass_count", bubble_pass_count);
  ]
