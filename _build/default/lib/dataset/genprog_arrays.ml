(** Problem classes: one-dimensional arrays — sorting, searching, scanning.
    Arrays are filled from the input stream (clamped), so every program
    remains safe to execute on arbitrary inputs. *)

open Yali_minic.Ast
open Gen_dsl
module Rng = Yali_util.Rng

let arr_size = 16

(* read `n` then fill arr[0..n) from inputs (clamped element values) *)
let read_array (c : ctx) ~(arr : string) ~(n : string) : stmt list =
  let k = Printf.sprintf "ld_%d" (Rng.int c.rng 100) in
  [ decl n (read_clamped 1 arr_size); DeclArr (arr, arr_size) ]
  @ count_loop c ~var:k ~lo:(i 0) ~hi:(v n)
      [ seti arr (v k) (read_clamped 0 99) ]

let sum_array rng =
  let c = ctx rng in
  let a = name c "a" and n = name c "n" and s = name c "s" and k = name c "k" in
  simple_main c
    ~prologue:(read_array c ~arr:a ~n)
    ~epilogue:[ print (v s) ]
    (decl s (i 0)
    :: count_loop c ~var:k ~lo:(i 0) ~hi:(v n) [ accum c s (idx a (v k)) ])

let max_element rng =
  let c = ctx rng in
  let a = name c "a" and n = name c "n" and m = name c "best" and k = name c "k" in
  simple_main c
    ~prologue:(read_array c ~arr:a ~n)
    ~epilogue:[ print (v m) ]
    (decl m (idx a (i 0))
    :: count_loop c ~var:k ~lo:(i 1) ~hi:(v n)
         [ If (idx a (v k) >@ v m, [ set m (idx a (v k)) ], []) ])

let min_element rng =
  let c = ctx rng in
  let a = name c "a" and n = name c "n" and m = name c "low" and k = name c "k" in
  simple_main c
    ~prologue:(read_array c ~arr:a ~n)
    ~epilogue:[ print (v m) ]
    (decl m (idx a (i 0))
    :: count_loop c ~var:k ~lo:(i 1) ~hi:(v n)
         [ If (idx a (v k) <@ v m, [ set m (idx a (v k)) ], []) ])

let average rng =
  let c = ctx rng in
  let a = name c "a" and n = name c "n" and s = name c "s" and k = name c "k" in
  simple_main c
    ~prologue:(read_array c ~arr:a ~n)
    ~epilogue:[ print (v s /@ v n) ]
    (decl s (i 0)
    :: count_loop c ~var:k ~lo:(i 0) ~hi:(v n) [ accum c s (idx a (v k)) ])

let bubble_sort rng =
  let c = ctx rng in
  let a = name c "a" and n = name c "n" in
  let x = name c "x" and y = name c "y" and t = name c "t" and k = name c "k" in
  simple_main c
    ~prologue:(read_array c ~arr:a ~n)
    (count_loop c ~var:x ~lo:(i 0) ~hi:(v n)
       (count_loop c ~var:y ~lo:(i 0) ~hi:(v n -@ i 1)
          [
            If
              ( idx a (v y) >@ idx a (v y +@ i 1),
                [
                  decl t (idx a (v y));
                  seti a (v y) (idx a (v y +@ i 1));
                  seti a (v y +@ i 1) (v t);
                ],
                [] );
          ])
    @ count_loop c ~var:k ~lo:(i 0) ~hi:(v n) [ print (idx a (v k)) ])

let selection_sort rng =
  let c = ctx rng in
  let a = name c "a" and n = name c "n" in
  let x = name c "x" and y = name c "y" and m = name c "m" and t = name c "t" in
  let k = name c "k" in
  simple_main c
    ~prologue:(read_array c ~arr:a ~n)
    (count_loop c ~var:x ~lo:(i 0) ~hi:(v n -@ i 1)
       (decl m (v x)
       :: count_loop c ~var:y ~lo:(v x +@ i 1) ~hi:(v n)
            [ If (idx a (v y) <@ idx a (v m), [ set m (v y) ], []) ]
       @ [
           decl t (idx a (v x));
           seti a (v x) (idx a (v m));
           seti a (v m) (v t);
         ])
    @ count_loop c ~var:k ~lo:(i 0) ~hi:(v n) [ print (idx a (v k)) ])

let insertion_sort rng =
  let c = ctx rng in
  let a = name c "a" and n = name c "n" in
  let x = name c "x" and j = name c "j" and key = name c "key" and k = name c "k" in
  simple_main c
    ~prologue:(read_array c ~arr:a ~n)
    (count_loop c ~var:x ~lo:(i 1) ~hi:(v n)
       [
         decl key (idx a (v x));
         decl j (v x -@ i 1);
         While
           ( v j >=@ i 0 &&@ (idx a (v j) >@ v key),
             [ seti a (v j +@ i 1) (idx a (v j)); set j (v j -@ i 1) ] );
         seti a (v j +@ i 1) (v key);
       ]
    @ count_loop c ~var:k ~lo:(i 0) ~hi:(v n) [ print (idx a (v k)) ])

let reverse_array rng =
  let c = ctx rng in
  let a = name c "a" and n = name c "n" in
  let l = name c "lo" and r = name c "hi" and t = name c "t" and k = name c "k" in
  simple_main c
    ~prologue:(read_array c ~arr:a ~n)
    ([
       decl l (i 0);
       decl r (v n -@ i 1);
       While
         ( v l <@ v r,
           [
             decl t (idx a (v l));
             seti a (v l) (idx a (v r));
             seti a (v r) (v t);
             set l (v l +@ i 1);
             set r (v r -@ i 1);
           ] );
     ]
    @ count_loop c ~var:k ~lo:(i 0) ~hi:(v n) [ print (idx a (v k)) ])

let count_evens rng =
  let c = ctx rng in
  let a = name c "a" and n = name c "n" and cnt = name c "cnt" and k = name c "k" in
  simple_main c
    ~prologue:(read_array c ~arr:a ~n)
    ~epilogue:[ print (v cnt) ]
    (decl cnt (i 0)
    :: count_loop c ~var:k ~lo:(i 0) ~hi:(v n)
         [ If (idx a (v k) %@ i 2 ==@ i 0, [ accum c cnt (i 1) ], []) ])

let linear_search rng =
  let c = ctx rng in
  let a = name c "a" and n = name c "n" and x = name c "x" in
  let pos = name c "pos" and k = name c "k" in
  simple_main c
    ~prologue:(read_array c ~arr:a ~n @ [ decl x (read_clamped 0 99) ])
    ~epilogue:[ print (v pos) ]
    (decl pos (i (-1))
    :: count_loop c ~var:k ~lo:(i 0) ~hi:(v n)
         [
           If (idx a (v k) ==@ v x &&@ (v pos ==@ i (-1)), [ set pos (v k) ], []);
         ])

let binary_search rng =
  let c = ctx rng in
  let a = name c "a" and n = name c "n" and x = name c "x" in
  let lo = name c "lo" and hi = name c "hi" and mid = name c "mid" in
  let y = name c "y" and j = name c "j" and key = name c "key" in
  let found = name c "found" in
  simple_main c
    ~prologue:(read_array c ~arr:a ~n @ [ decl x (read_clamped 0 99) ])
    ~epilogue:[ print (v found) ]
    ((* sort first with insertion sort so the search is meaningful *)
     count_loop c ~var:y ~lo:(i 1) ~hi:(v n)
       [
         decl key (idx a (v y));
         decl j (v y -@ i 1);
         While
           ( v j >=@ i 0 &&@ (idx a (v j) >@ v key),
             [ seti a (v j +@ i 1) (idx a (v j)); set j (v j -@ i 1) ] );
         seti a (v j +@ i 1) (v key);
       ]
    @ [
        decl lo (i 0);
        decl hi (v n -@ i 1);
        decl found (i (-1));
        While
          ( v lo <=@ v hi,
            [
              decl mid ((v lo +@ v hi) /@ i 2);
              If
                ( idx a (v mid) ==@ v x,
                  [ set found (v mid); Break ],
                  [
                    If
                      ( idx a (v mid) <@ v x,
                        [ set lo (v mid +@ i 1) ],
                        [ set hi (v mid -@ i 1) ] );
                  ] );
            ] );
      ])

let second_largest rng =
  let c = ctx rng in
  let a = name c "a" and n = name c "n" in
  let m1 = name c "first" and m2 = name c "second" and k = name c "k" in
  simple_main c
    ~prologue:(read_array c ~arr:a ~n)
    ~epilogue:[ print (v m2) ]
    (reorder c [ decl m1 (i (-1)); decl m2 (i (-1)) ]
    @ count_loop c ~var:k ~lo:(i 0) ~hi:(v n)
        [
          If
            ( idx a (v k) >@ v m1,
              [ set m2 (v m1); set m1 (idx a (v k)) ],
              [ If (idx a (v k) >@ v m2, [ set m2 (idx a (v k)) ], []) ] );
        ])

let rotate_left rng =
  let c = ctx rng in
  let a = name c "a" and n = name c "n" and first = name c "first" in
  let k = name c "k" and k2 = name c "p" in
  simple_main c
    ~prologue:(read_array c ~arr:a ~n)
    ([ decl first (idx a (i 0)) ]
    @ count_loop c ~var:k ~lo:(i 0) ~hi:(v n -@ i 1)
        [ seti a (v k) (idx a (v k +@ i 1)) ]
    @ [ seti a (v n -@ i 1) (v first) ]
    @ count_loop c ~var:k2 ~lo:(i 0) ~hi:(v n) [ print (idx a (v k2)) ])

let prefix_sums rng =
  let c = ctx rng in
  let a = name c "a" and n = name c "n" and k = name c "k" in
  simple_main c
    ~prologue:(read_array c ~arr:a ~n)
    (count_loop c ~var:k ~lo:(i 1) ~hi:(v n)
       [ seti a (v k) (idx a (v k) +@ idx a (v k -@ i 1)) ]
    @ [ print (idx a (v n -@ i 1)) ])

let count_inversions rng =
  let c = ctx rng in
  let a = name c "a" and n = name c "n" and inv = name c "inv" in
  let x = name c "x" and y = name c "y" in
  simple_main c
    ~prologue:(read_array c ~arr:a ~n)
    ~epilogue:[ print (v inv) ]
    (decl inv (i 0)
    :: count_loop c ~var:x ~lo:(i 0) ~hi:(v n)
         (count_loop c ~var:y ~lo:(v x +@ i 1) ~hi:(v n)
            [ If (idx a (v x) >@ idx a (v y), [ accum c inv (i 1) ], []) ]))

let pairs_sum_k rng =
  let c = ctx rng in
  let a = name c "a" and n = name c "n" and target = name c "target" in
  let cnt = name c "cnt" and x = name c "x" and y = name c "y" in
  simple_main c
    ~prologue:(read_array c ~arr:a ~n @ [ decl target (read_clamped 0 198) ])
    ~epilogue:[ print (v cnt) ]
    (decl cnt (i 0)
    :: count_loop c ~var:x ~lo:(i 0) ~hi:(v n)
         (count_loop c ~var:y ~lo:(v x +@ i 1) ~hi:(v n)
            [
              If (idx a (v x) +@ idx a (v y) ==@ v target, [ accum c cnt (i 1) ], []);
            ]))

let kadane rng =
  let c = ctx rng in
  let a = name c "a" and n = name c "n" in
  let best = name c "best" and cur = name c "cur" and k = name c "k" in
  simple_main c
    ~prologue:
      (read_array c ~arr:a ~n
      @ (* make some entries negative so the problem is non-trivial *)
      count_loop c ~var:k ~lo:(i 0) ~hi:(v n)
        [
          If (idx a (v k) %@ i 3 ==@ i 0, [ seti a (v k) (i 0 -@ idx a (v k)) ], []);
        ])
    ~epilogue:[ print (v best) ]
    (let t = name c "t" in
     [
       decl best (idx a (i 0));
       decl cur (idx a (i 0));
       Block
         (count_loop c ~var:t ~lo:(i 1) ~hi:(v n)
            [
              set cur
                (Ternary (v cur >@ i 0, v cur +@ idx a (v t), idx a (v t)));
              If (v cur >@ v best, [ set best (v cur) ], []);
            ]);
     ])

let equilibrium_index rng =
  let c = ctx rng in
  let a = name c "a" and n = name c "n" in
  let total = name c "total" and left = name c "left" and ans = name c "ans" in
  let k = name c "k" and k2 = name c "p" in
  simple_main c
    ~prologue:(read_array c ~arr:a ~n)
    ~epilogue:[ print (v ans) ]
    (decl total (i 0)
    :: count_loop c ~var:k ~lo:(i 0) ~hi:(v n) [ accum c total (idx a (v k)) ]
    @ [ decl left (i 0); decl ans (i (-1)) ]
    @ count_loop c ~var:k2 ~lo:(i 0) ~hi:(v n)
        [
          If
            ( v left ==@ (v total -@ v left -@ idx a (v k2))
              &&@ (v ans ==@ i (-1)),
              [ set ans (v k2) ],
              [] );
          accum c left (idx a (v k2));
        ])

let most_frequent rng =
  let c = ctx rng in
  let a = name c "a" and n = name c "n" in
  let bestv = name c "bestv" and bestc = name c "bestc" in
  let x = name c "x" and y = name c "y" and cnt = name c "cnt" in
  simple_main c
    ~prologue:(read_array c ~arr:a ~n)
    ~epilogue:[ print (v bestv) ]
    (reorder c [ decl bestv (i (-1)); decl bestc (i 0) ]
    @ count_loop c ~var:x ~lo:(i 0) ~hi:(v n)
        (decl cnt (i 0)
        :: count_loop c ~var:y ~lo:(i 0) ~hi:(v n)
             [ If (idx a (v y) ==@ idx a (v x), [ accum c cnt (i 1) ], []) ]
        @ [
            If
              ( v cnt >@ v bestc,
                [ set bestc (v cnt); set bestv (idx a (v x)) ],
                [] );
          ]))

let distinct_count rng =
  let c = ctx rng in
  let a = name c "a" and n = name c "n" and cnt = name c "cnt" in
  let x = name c "x" and y = name c "y" and dup = name c "dup" in
  simple_main c
    ~prologue:(read_array c ~arr:a ~n)
    ~epilogue:[ print (v cnt) ]
    (decl cnt (i 0)
    :: count_loop c ~var:x ~lo:(i 0) ~hi:(v n)
         (decl dup (i 0)
         :: count_loop c ~var:y ~lo:(i 0) ~hi:(v x)
              [ If (idx a (v y) ==@ idx a (v x), [ set dup (i 1) ], []) ]
         @ [ If (v dup ==@ i 0, [ accum c cnt (i 1) ], []) ]))

let dot_product rng =
  let c = ctx rng in
  let a = name c "a" and b = name c "b" and n = name c "n" in
  let s = name c "s" and k = name c "k" and k2 = name c "p" in
  simple_main c
    ~prologue:
      ([ decl n (read_clamped 1 arr_size); DeclArr (a, arr_size); DeclArr (b, arr_size) ]
      @ count_loop c ~var:k ~lo:(i 0) ~hi:(v n)
          [ seti a (v k) (read_clamped 0 20); seti b (v k) (read_clamped 0 20) ])
    ~epilogue:[ print (v s) ]
    (decl s (i 0)
    :: count_loop c ~var:k2 ~lo:(i 0) ~hi:(v n)
         [ accum c s (idx a (v k2) *@ idx b (v k2)) ])

let is_sorted rng =
  let c = ctx rng in
  let a = name c "a" and n = name c "n" and ok = name c "ok" and k = name c "k" in
  simple_main c
    ~prologue:(read_array c ~arr:a ~n)
    ~epilogue:[ print (v ok) ]
    (decl ok (i 1)
    :: count_loop c ~var:k ~lo:(i 1) ~hi:(v n)
         [ If (idx a (v k) <@ idx a (v k -@ i 1), [ set ok (i 0) ], []) ])

let longest_run rng =
  let c = ctx rng in
  let a = name c "a" and n = name c "n" in
  let best = name c "best" and cur = name c "cur" and k = name c "k" in
  simple_main c
    ~prologue:(read_array c ~arr:a ~n)
    ~epilogue:[ print (v best) ]
    (reorder c [ decl best (i 1); decl cur (i 1) ]
    @ count_loop c ~var:k ~lo:(i 1) ~hi:(v n)
        [
          If
            ( idx a (v k) >=@ idx a (v k -@ i 1),
              [ accum c cur (i 1) ],
              [ set cur (i 1) ] );
          If (v cur >@ v best, [ set best (v cur) ], []);
        ])

let range_sum_queries rng =
  let c = ctx rng in
  let a = name c "a" and n = name c "n" in
  let q = name c "q" and lo = name c "lo" and hi = name c "hi" in
  let s = name c "s" and k = name c "k" and t = name c "t" in
  let swp = name c "swp" in
  simple_main c
    ~prologue:(read_array c ~arr:a ~n)
    (decl q (read_clamped 1 4)
    :: count_loop c ~var:t ~lo:(i 0) ~hi:(v q)
         ([
            decl lo (read_clamped 0 (arr_size - 1));
            decl hi (read_clamped 0 (arr_size - 1));
            If (v lo >@ v hi, [ decl swp (v lo); set lo (v hi); set hi (v swp) ], []);
            If (v hi >=@ v n, [ set hi (v n -@ i 1) ], []);
            If (v lo >=@ v n, [ set lo (v n -@ i 1) ], []);
            decl s (i 0);
          ]
         @ count_loop c ~var:k ~lo:(v lo) ~hi:(v hi +@ i 1)
             [ accum c s (idx a (v k)) ]
         @ [ print (v s) ]))

let swap_min_max rng =
  let c = ctx rng in
  let a = name c "a" and n = name c "n" in
  let im = name c "imin" and ix = name c "imax" and k = name c "k" and t = name c "t" in
  let k2 = name c "p" in
  simple_main c
    ~prologue:(read_array c ~arr:a ~n)
    (reorder c [ decl im (i 0); decl ix (i 0) ]
    @ count_loop c ~var:k ~lo:(i 1) ~hi:(v n)
        [
          If (idx a (v k) <@ idx a (v im), [ set im (v k) ], []);
          If (idx a (v k) >@ idx a (v ix), [ set ix (v k) ], []);
        ]
    @ [
        decl t (idx a (v im));
        seti a (v im) (idx a (v ix));
        seti a (v ix) (v t);
      ]
    @ count_loop c ~var:k2 ~lo:(i 0) ~hi:(v n) [ print (idx a (v k2)) ])

let problems : (string * (Rng.t -> Yali_minic.Ast.program)) list =
  [
    ("sum_array", sum_array);
    ("max_element", max_element);
    ("min_element", min_element);
    ("average", average);
    ("bubble_sort", bubble_sort);
    ("selection_sort", selection_sort);
    ("insertion_sort", insertion_sort);
    ("reverse_array", reverse_array);
    ("count_evens", count_evens);
    ("linear_search", linear_search);
    ("binary_search", binary_search);
    ("second_largest", second_largest);
    ("rotate_left", rotate_left);
    ("prefix_sums", prefix_sums);
    ("count_inversions", count_inversions);
    ("pairs_sum_k", pairs_sum_k);
    ("kadane", kadane);
    ("equilibrium_index", equilibrium_index);
    ("most_frequent", most_frequent);
    ("distinct_count", distinct_count);
    ("dot_product", dot_product);
    ("is_sorted", is_sorted);
    ("longest_run", longest_run);
    ("range_sum_queries", range_sum_queries);
    ("swap_min_max", swap_min_max);
  ]
