(** The synthetic programming-problem corpus: 104 problem classes in the
    shape of Mou et al.'s POJ-104.  Each class's generator emits fresh
    stochastically varied mini-C solutions — different identifier pools,
    loop shapes, statement orders, helper splits and junk scaffolding — the
    axes along which human judge submissions differ.

    Generators guarantee: every sample lowers to verified IR and terminates
    quickly and safely in the interpreter on *any* input stream.  The test
    suite leans on this to fuzz every transformation pass. *)

type problem = {
  pid : int;  (** class index, 0..103 *)
  pname : string;
  generate : Yali_util.Rng.t -> Yali_minic.Ast.program;
}

(** All 104 problems, in pid order. *)
val all : problem list

(** = 104. *)
val count : int

val find_by_name : string -> problem option
val nth : int -> problem

(** Draw one stochastic solution. *)
val sample : Yali_util.Rng.t -> problem -> Yali_minic.Ast.program
