(** Problem classes: dynamic programming and recursion. *)

open Yali_minic.Ast
open Gen_dsl
module Rng = Yali_util.Rng

let cap = 24 (* DP tables are at most this long *)

let fib_dp rng =
  let c = ctx rng in
  let n = name c "n" and dp = name c "dp" and k = name c "k" in
  simple_main c
    ~prologue:[ decl n (read_clamped 2 (cap - 1)); DeclArr (dp, cap) ]
    ~epilogue:[ print (idx dp (v n)) ]
    ([ seti dp (i 0) (i 0); seti dp (i 1) (i 1) ]
    @ count_loop c ~var:k ~lo:(i 2) ~hi:(v n +@ i 1)
        [ seti dp (v k) (idx dp (v k -@ i 1) +@ idx dp (v k -@ i 2)) ])

let climbing_stairs rng =
  let c = ctx rng in
  let n = name c "n" and dp = name c "ways" and k = name c "k" in
  simple_main c
    ~prologue:[ decl n (read_clamped 1 (cap - 1)); DeclArr (dp, cap) ]
    ~epilogue:[ print (idx dp (v n)) ]
    ([ seti dp (i 0) (i 1); seti dp (i 1) (i 1) ]
    @ count_loop c ~var:k ~lo:(i 2) ~hi:(v n +@ i 1)
        [ seti dp (v k) (idx dp (v k -@ i 1) +@ idx dp (v k -@ i 2)) ]
    @ [ print (v n) ])

let tribonacci rng =
  let c = ctx rng in
  let n = name c "n" and dp = name c "t" and k = name c "k" in
  simple_main c
    ~prologue:[ decl n (read_clamped 3 (cap - 1)); DeclArr (dp, cap) ]
    ~epilogue:[ print (idx dp (v n)) ]
    ([ seti dp (i 0) (i 0); seti dp (i 1) (i 1); seti dp (i 2) (i 1) ]
    @ count_loop c ~var:k ~lo:(i 3) ~hi:(v n +@ i 1)
        [
          seti dp (v k)
            (idx dp (v k -@ i 1) +@ idx dp (v k -@ i 2) +@ idx dp (v k -@ i 3));
        ])

let coin_change_count rng =
  let c = ctx rng in
  let n = name c "amount" and dp = name c "dp" in
  let k = name c "k" and k2 = name c "p" and k3 = name c "q" in
  simple_main c
    ~prologue:[ decl n (read_clamped 1 (cap - 1)); DeclArr (dp, cap) ]
    ~epilogue:[ print (idx dp (v n)) ]
    (count_loop c ~var:k ~lo:(i 0) ~hi:(i cap) [ seti dp (v k) (i 0) ]
    @ [ seti dp (i 0) (i 1) ]
    @ List.concat_map
        (fun coin ->
          count_loop c
            ~var:(match coin with 1 -> k2 | 2 -> k3 | _ -> name c "r")
            ~lo:(i coin) ~hi:(v n +@ i 1)
            [
              seti dp
                (match coin with 1 -> v k2 | 2 -> v k3 | _ -> v (name c "r"))
                (idx dp
                   (match coin with 1 -> v k2 | 2 -> v k3 | _ -> v (name c "r"))
                +@ idx dp
                     ((match coin with
                      | 1 -> v k2
                      | 2 -> v k3
                      | _ -> v (name c "r"))
                     -@ i coin));
            ])
        [ 1; 2 ])

let longest_increasing_subseq rng =
  let c = ctx rng in
  let a = name c "a" and dp = name c "dp" and n = name c "n" in
  let x = name c "x" and y = name c "y" and best = name c "best" and k = name c "k" in
  simple_main c
    ~prologue:
      ([ decl n (read_clamped 1 12); DeclArr (a, 12); DeclArr (dp, 12) ]
      @ count_loop c ~var:k ~lo:(i 0) ~hi:(v n)
          [ seti a (v k) (read_clamped 0 50) ])
    ~epilogue:[ print (v best) ]
    (count_loop c ~var:x ~lo:(i 0) ~hi:(v n)
       (seti dp (v x) (i 1)
       :: count_loop c ~var:y ~lo:(i 0) ~hi:(v x)
            [
              If
                ( idx a (v y) <@ idx a (v x)
                  &&@ (idx dp (v y) +@ i 1 >@ idx dp (v x)),
                  [ seti dp (v x) (idx dp (v y) +@ i 1) ],
                  [] );
            ])
    @ decl best (i 0)
      :: count_loop c ~var:k ~lo:(i 0) ~hi:(v n)
           [ If (idx dp (v k) >@ v best, [ set best (idx dp (v k)) ], []) ])

let grid_paths rng =
  let c = ctx rng in
  let w = name c "w" and h = name c "h" and dp = name c "dp" in
  let x = name c "x" and y = name c "y" in
  let maxw = 6 in
  simple_main c
    ~prologue:
      [
        decl w (read_clamped 1 maxw);
        decl h (read_clamped 1 maxw);
        DeclArr (dp, maxw * maxw);
      ]
    ~epilogue:[ print (idx dp (((v h -@ i 1) *@ v w) +@ v w -@ i 1)) ]
    (count_loop c ~var:y ~lo:(i 0) ~hi:(v h)
       (count_loop c ~var:x ~lo:(i 0) ~hi:(v w)
          [
            If
              ( v x ==@ i 0 ||@ (v y ==@ i 0),
                [ seti dp ((v y *@ v w) +@ v x) (i 1) ],
                [
                  seti dp
                    ((v y *@ v w) +@ v x)
                    (idx dp ((v y *@ v w) +@ v x -@ i 1)
                    +@ idx dp (((v y -@ i 1) *@ v w) +@ v x));
                ] );
          ]))

let subset_sum_count rng =
  let c = ctx rng in
  let n = name c "n" and a = name c "a" and target = name c "target" in
  let cnt = name c "cnt" and mask = name c "mask" and s = name c "s" and k = name c "k" in
  let k2 = name c "p" in
  simple_main c
    ~prologue:
      ([ decl n (read_clamped 1 8); DeclArr (a, 8) ]
      @ count_loop c ~var:k ~lo:(i 0) ~hi:(v n)
          [ seti a (v k) (read_clamped 0 9) ]
      @ [ decl target (read_clamped 0 30) ])
    ~epilogue:[ print (v cnt) ]
    (decl cnt (i 0)
    :: count_loop c ~var:mask ~lo:(i 0)
         ~hi:(Bin (Shl, i 1, v n))
         (decl s (i 0)
         :: count_loop c ~var:k2 ~lo:(i 0) ~hi:(v n)
              [
                If
                  ( Bin (BAnd, Bin (Shr, v mask, v k2), i 1) ==@ i 1,
                    [ accum c s (idx a (v k2)) ],
                    [] );
              ]
         @ [ If (v s ==@ v target, [ accum c cnt (i 1) ], []) ]))

let rod_cutting rng =
  let c = ctx rng in
  let n = name c "n" and price = name c "price" and dp = name c "dp" in
  let x = name c "x" and y = name c "y" and k = name c "k" in
  let maxn = 12 in
  simple_main c
    ~prologue:
      ([ decl n (read_clamped 1 (maxn - 1)); DeclArr (price, maxn); DeclArr (dp, maxn) ]
      @ count_loop c ~var:k ~lo:(i 0) ~hi:(i maxn)
          [ seti price (v k) ((v k *@ i 3) +@ read_clamped 0 4) ])
    ~epilogue:[ print (idx dp (v n)) ]
    (seti dp (i 0) (i 0)
    :: count_loop c ~var:x ~lo:(i 1) ~hi:(v n +@ i 1)
         (seti dp (v x) (i 0)
         :: count_loop c ~var:y ~lo:(i 1) ~hi:(v x +@ i 1)
              [
                If
                  ( idx price (v y) +@ idx dp (v x -@ v y) >@ idx dp (v x),
                    [ seti dp (v x) (idx price (v y) +@ idx dp (v x -@ v y)) ],
                    [] );
              ]))

let max_path_triangle rng =
  let c = ctx rng in
  let rows = 5 in
  let tri = name c "tri" and dp = name c "dp" in
  let x = name c "x" and y = name c "y" and k = name c "k" and best = name c "best" in
  let cellcount = rows * (rows + 1) / 2 in
  let rowbase r = r *@ (r +@ i 1) /@ i 2 in
  simple_main c
    ~prologue:
      ([ DeclArr (tri, cellcount); DeclArr (dp, cellcount) ]
      @ count_loop c ~var:k ~lo:(i 0) ~hi:(i cellcount)
          [ seti tri (v k) (read_clamped 0 9) ])
    ~epilogue:[ print (v best) ]
    ([ seti dp (i 0) (idx tri (i 0)) ]
    @ count_loop c ~var:x ~lo:(i 1) ~hi:(i rows)
        (count_loop c ~var:y ~lo:(i 0) ~hi:(v x +@ i 1)
           [
             If
               ( v y ==@ i 0,
                 [
                   seti dp
                     (rowbase (v x) +@ v y)
                     (idx dp (rowbase (v x -@ i 1)) +@ idx tri (rowbase (v x) +@ v y));
                 ],
                 [
                   If
                     ( v y ==@ v x,
                       [
                         seti dp
                           (rowbase (v x) +@ v y)
                           (idx dp (rowbase (v x -@ i 1) +@ v y -@ i 1)
                           +@ idx tri (rowbase (v x) +@ v y));
                       ],
                       [
                         seti dp
                           (rowbase (v x) +@ v y)
                           (call "max"
                              [
                                idx dp (rowbase (v x -@ i 1) +@ v y);
                                idx dp (rowbase (v x -@ i 1) +@ v y -@ i 1);
                              ]
                           +@ idx tri (rowbase (v x) +@ v y));
                       ] );
                 ] );
           ])
    @ decl best (i 0)
      :: count_loop c ~var:k ~lo:(i 0) ~hi:(i rows)
           [
             If
               ( idx dp (rowbase (i (rows - 1)) +@ v k) >@ v best,
                 [ set best (idx dp (rowbase (i (rows - 1)) +@ v k)) ],
                 [] );
           ])

let lcs_length rng =
  let c = ctx rng in
  let n = name c "n" and m = name c "m" in
  let a = name c "a" and b = name c "b" and dp = name c "dp" in
  let x = name c "x" and y = name c "y" and k = name c "k" and k2 = name c "p" in
  let cap2 = 9 in
  simple_main c
    ~prologue:
      ([
         decl n (read_clamped 1 (cap2 - 1));
         decl m (read_clamped 1 (cap2 - 1));
         DeclArr (a, cap2);
         DeclArr (b, cap2);
         DeclArr (dp, cap2 * cap2);
       ]
      @ count_loop c ~var:k ~lo:(i 0) ~hi:(v n)
          [ seti a (v k) (read_clamped 0 4) ]
      @ count_loop c ~var:k2 ~lo:(i 0) ~hi:(v m)
          [ seti b (v k2) (read_clamped 0 4) ])
    ~epilogue:[ print (idx dp ((v n *@ i cap2) +@ v m)) ]
    (count_loop c ~var:x ~lo:(i 0) ~hi:(v n +@ i 1)
       (count_loop c ~var:y ~lo:(i 0) ~hi:(v m +@ i 1)
          [
            If
              ( v x ==@ i 0 ||@ (v y ==@ i 0),
                [ seti dp ((v x *@ i cap2) +@ v y) (i 0) ],
                [
                  If
                    ( idx a (v x -@ i 1) ==@ idx b (v y -@ i 1),
                      [
                        seti dp
                          ((v x *@ i cap2) +@ v y)
                          (idx dp (((v x -@ i 1) *@ i cap2) +@ v y -@ i 1) +@ i 1);
                      ],
                      [
                        seti dp
                          ((v x *@ i cap2) +@ v y)
                          (call "max"
                             [
                               idx dp (((v x -@ i 1) *@ i cap2) +@ v y);
                               idx dp ((v x *@ i cap2) +@ v y -@ i 1);
                             ]);
                      ] );
                ] );
          ]))

let knapsack01 rng =
  let c = ctx rng in
  let n = name c "n" and capacity = name c "capacity" in
  let wt = name c "wt" and va = name c "val" and dp = name c "dp" in
  let x = name c "x" and y = name c "y" and k = name c "k" in
  let maxn = 6 and maxc = 15 in
  simple_main c
    ~prologue:
      ([
         decl n (read_clamped 1 maxn);
         decl capacity (read_clamped 1 (maxc - 1));
         DeclArr (wt, maxn);
         DeclArr (va, maxn);
         DeclArr (dp, maxc);
       ]
      @ count_loop c ~var:k ~lo:(i 0) ~hi:(v n)
          [ seti wt (v k) (read_clamped 1 5); seti va (v k) (read_clamped 1 9) ])
    ~epilogue:[ print (idx dp (v capacity)) ]
    (count_loop c ~var:k ~lo:(i 0) ~hi:(i maxc) [ seti dp (v k) (i 0) ]
    @ count_loop c ~var:x ~lo:(i 0) ~hi:(v n)
        (count_down_loop c ~var:y ~lo:(i 0) ~hi:(v capacity +@ i 1)
           [
             If
               ( v y >=@ idx wt (v x),
                 [
                   If
                     ( idx dp (v y -@ idx wt (v x)) +@ idx va (v x) >@ idx dp (v y),
                       [
                         seti dp (v y) (idx dp (v y -@ idx wt (v x)) +@ idx va (v x));
                       ],
                       [] );
                 ],
                 [] );
           ]))

let catalan_dp rng =
  let c = ctx rng in
  let n = name c "n" and dp = name c "cat" in
  let x = name c "x" and y = name c "y" in
  let maxn = 12 in
  simple_main c
    ~prologue:[ decl n (read_clamped 1 (maxn - 1)); DeclArr (dp, maxn) ]
    ~epilogue:[ print (idx dp (v n)) ]
    ([ seti dp (i 0) (i 1) ]
    @ count_loop c ~var:x ~lo:(i 1) ~hi:(v n +@ i 1)
        (seti dp (v x) (i 0)
        :: count_loop c ~var:y ~lo:(i 0) ~hi:(v x)
             [
               seti dp (v x)
                 (idx dp (v x) +@ (idx dp (v y) *@ idx dp (v x -@ i 1 -@ v y)));
             ]))

let problems : (string * (Rng.t -> Yali_minic.Ast.program)) list =
  [
    ("fib_dp", fib_dp);
    ("climbing_stairs", climbing_stairs);
    ("tribonacci", tribonacci);
    ("coin_change_count", coin_change_count);
    ("longest_increasing_subseq", longest_increasing_subseq);
    ("grid_paths", grid_paths);
    ("subset_sum_count", subset_sum_count);
    ("rod_cutting", rod_cutting);
    ("max_path_triangle", max_path_triangle);
    ("lcs_length", lcs_length);
    ("knapsack01", knapsack01);
    ("catalan_dp", catalan_dp);
  ]
