(** Dataset assembly: balanced training and test sets over the 104 problem
    classes, in the shape the paper's games consume (§4: 375 training + 125
    test samples per class; this reproduction defaults to smaller per-class
    counts so that a full game grid runs in minutes — see EXPERIMENTS.md). *)

module Rng = Yali_util.Rng

type labelled = { src : Yali_minic.Ast.program; label : int }

type split = { train : labelled array; test : labelled array }

(** [make rng ~n_classes ~train_per_class ~test_per_class] builds a balanced
    split over the first [n_classes] problems (or a random subset when
    [shuffle_classes] is set, as in the paper's RQ1, which draws 32 of the
    104 classes at random). *)
let make ?(shuffle_classes = false) (rng : Rng.t) ~(n_classes : int)
    ~(train_per_class : int) ~(test_per_class : int) : split =
  let problems =
    if shuffle_classes then
      Rng.sample rng n_classes Genprog.all
    else
      List.filteri (fun k _ -> k < n_classes) Genprog.all
  in
  let problems = Array.of_list problems in
  let n_classes = Array.length problems in
  let train = ref [] and test = ref [] in
  for cls = 0 to n_classes - 1 do
    let p = problems.(cls) in
    for _ = 1 to train_per_class do
      train := { src = Genprog.sample rng p; label = cls } :: !train
    done;
    for _ = 1 to test_per_class do
      test := { src = Genprog.sample rng p; label = cls } :: !test
    done
  done;
  {
    train = Array.of_list (Rng.shuffle rng !train);
    test = Array.of_list (Rng.shuffle rng !test);
  }

let labels (xs : labelled array) : int array =
  Array.map (fun x -> x.label) xs
