(** The RQ8 corpus: MIRAI-like malware variants and size-matched benign
    compute kernels.  Reproduces the experimental *design* of the paper's
    48-variant MIRAI suite: a family of mutually-similar bot programs
    (scanner, rival-killer, UDP/SYN flood kernels, C2 polling loop) whose
    members vary the way forked malware sources do.  Network and process
    operations are modelled with the interpreter's integer I/O intrinsics. *)

(** One MIRAI-family variant. *)
val generate_malware : Yali_util.Rng.t -> Yali_minic.Ast.program

(** One benign sample of comparable size and style. *)
val generate_benign : Yali_util.Rng.t -> Yali_minic.Ast.program

(** [n] positives (label 1) followed by [n] negatives (label 0). *)
val seed_suite :
  Yali_util.Rng.t -> n:int -> (Yali_minic.Ast.program * int) list
