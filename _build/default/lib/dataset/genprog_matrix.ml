(** Problem classes: small dense matrices, represented as flattened
    row-major arrays (mini-C arrays are one-dimensional). *)

open Yali_minic.Ast
open Gen_dsl
module Rng = Yali_util.Rng

let dim = 4 (* matrices are dim x dim, read from input *)
let cells = dim * dim

let read_matrix (c : ctx) ~(m : string) : stmt list =
  let k = Printf.sprintf "ml_%d" (Rng.int c.rng 100) in
  DeclArr (m, cells)
  :: count_loop c ~var:k ~lo:(i 0) ~hi:(i cells)
       [ seti m (v k) (read_clamped 0 9) ]

let at m r cc = idx m ((r *@ i dim) +@ cc)

let matrix_trace rng =
  let c = ctx rng in
  let m = name c "m" and s = name c "s" and k = name c "k" in
  simple_main c
    ~prologue:(read_matrix c ~m)
    ~epilogue:[ print (v s) ]
    (decl s (i 0)
    :: count_loop c ~var:k ~lo:(i 0) ~hi:(i dim)
         [ accum c s (at m (v k) (v k)) ])

let matrix_sum rng =
  let c = ctx rng in
  let m = name c "m" and s = name c "s" and x = name c "x" and y = name c "y" in
  simple_main c
    ~prologue:(read_matrix c ~m)
    ~epilogue:[ print (v s) ]
    (decl s (i 0)
    :: count_loop c ~var:x ~lo:(i 0) ~hi:(i dim)
         (count_loop c ~var:y ~lo:(i 0) ~hi:(i dim)
            [ accum c s (at m (v x) (v y)) ]))

let matrix_transpose_print rng =
  let c = ctx rng in
  let m = name c "m" and x = name c "x" and y = name c "y" in
  simple_main c
    ~prologue:(read_matrix c ~m)
    (count_loop c ~var:x ~lo:(i 0) ~hi:(i dim)
       (count_loop c ~var:y ~lo:(i 0) ~hi:(i dim)
          [ print (at m (v y) (v x)) ]))

let matrix_vector_product rng =
  let c = ctx rng in
  let m = name c "m" and vv = name c "vec" and s = name c "s" in
  let x = name c "x" and y = name c "y" and k = name c "k" in
  simple_main c
    ~prologue:
      (read_matrix c ~m
      @ [ DeclArr (vv, dim) ]
      @ count_loop c ~var:k ~lo:(i 0) ~hi:(i dim)
          [ seti vv (v k) (read_clamped 0 9) ])
    (count_loop c ~var:x ~lo:(i 0) ~hi:(i dim)
       (decl s (i 0)
       :: count_loop c ~var:y ~lo:(i 0) ~hi:(i dim)
            [ accum c s (at m (v x) (v y) *@ idx vv (v y)) ]
       @ [ print (v s) ]))

let matrix_multiply rng =
  let c = ctx rng in
  let a = name c "a" and b = name c "b" and s = name c "s" in
  let x = name c "x" and y = name c "y" and k = name c "k" in
  simple_main c
    ~prologue:(read_matrix c ~m:a @ read_matrix c ~m:b)
    (count_loop c ~var:x ~lo:(i 0) ~hi:(i dim)
       (count_loop c ~var:y ~lo:(i 0) ~hi:(i dim)
          (decl s (i 0)
          :: count_loop c ~var:k ~lo:(i 0) ~hi:(i dim)
               [ accum c s (at a (v x) (v k) *@ at b (v k) (v y)) ]
          @ [ print (v s) ])))

let diagonal_max rng =
  let c = ctx rng in
  let m = name c "m" and best = name c "best" and k = name c "k" in
  simple_main c
    ~prologue:(read_matrix c ~m)
    ~epilogue:[ print (v best) ]
    (decl best (at m (i 0) (i 0))
    :: count_loop c ~var:k ~lo:(i 1) ~hi:(i dim)
         [
           If (at m (v k) (v k) >@ v best, [ set best (at m (v k) (v k)) ], []);
         ])

let is_symmetric rng =
  let c = ctx rng in
  let m = name c "m" and ok = name c "ok" and x = name c "x" and y = name c "y" in
  simple_main c
    ~prologue:(read_matrix c ~m)
    ~epilogue:[ print (v ok) ]
    (decl ok (i 1)
    :: count_loop c ~var:x ~lo:(i 0) ~hi:(i dim)
         (count_loop c ~var:y ~lo:(i 0) ~hi:(i dim)
            [
              If (at m (v x) (v y) <>@ at m (v y) (v x), [ set ok (i 0) ], []);
            ]))

let is_identity rng =
  let c = ctx rng in
  let m = name c "m" and ok = name c "ok" and x = name c "x" and y = name c "y" in
  simple_main c
    ~prologue:(read_matrix c ~m)
    ~epilogue:[ print (v ok) ]
    (decl ok (i 1)
    :: count_loop c ~var:x ~lo:(i 0) ~hi:(i dim)
         (count_loop c ~var:y ~lo:(i 0) ~hi:(i dim)
            [
              If
                ( v x ==@ v y,
                  [ If (at m (v x) (v y) <>@ i 1, [ set ok (i 0) ], []) ],
                  [ If (at m (v x) (v y) <>@ i 0, [ set ok (i 0) ], []) ] );
            ]))

let row_sums rng =
  let c = ctx rng in
  let m = name c "m" and s = name c "s" and x = name c "x" and y = name c "y" in
  simple_main c
    ~prologue:(read_matrix c ~m)
    (count_loop c ~var:x ~lo:(i 0) ~hi:(i dim)
       (decl s (i 0)
       :: count_loop c ~var:y ~lo:(i 0) ~hi:(i dim)
            [ accum c s (at m (v x) (v y)) ]
       @ [ print (v s) ]))

let column_max rng =
  let c = ctx rng in
  let m = name c "m" and best = name c "best" and x = name c "x" and y = name c "y" in
  simple_main c
    ~prologue:(read_matrix c ~m)
    (count_loop c ~var:y ~lo:(i 0) ~hi:(i dim)
       (decl best (at m (i 0) (v y))
       :: count_loop c ~var:x ~lo:(i 1) ~hi:(i dim)
            [
              If (at m (v x) (v y) >@ v best, [ set best (at m (v x) (v y)) ], []);
            ]
       @ [ print (v best) ]))

let problems : (string * (Rng.t -> Yali_minic.Ast.program)) list =
  [
    ("matrix_trace", matrix_trace);
    ("matrix_sum", matrix_sum);
    ("matrix_transpose_print", matrix_transpose_print);
    ("matrix_vector_product", matrix_vector_product);
    ("matrix_multiply", matrix_multiply);
    ("diagonal_max", diagonal_max);
    ("is_symmetric", is_symmetric);
    ("is_identity", is_identity);
    ("row_sums", row_sums);
    ("column_max", column_max);
  ]
