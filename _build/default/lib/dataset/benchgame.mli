(** "The Benchmark Game" stand-ins for RQ6 (Figure 13): sixteen
    deterministic compute kernels with fixed workloads, executed by the IR
    interpreter under its per-opcode cost model.  Only cost *ratios* between
    O0 / O3 / O-LLVM builds are reported, mirroring the paper's relative
    running times. *)

(** The sixteen kernels, (name, program) pairs; includes [ary3] and
    [matrix], the paper's named extremes. *)
val all : (string * Yali_minic.Ast.program) list
