(** The RQ8 corpus: MIRAI-like malware variants and size-matched benign
    programs.

    The paper uses 48 source versions of the MIRAI botnet plus benign C
    files from SPEC CPU2017 chosen by size.  This generator reproduces the
    *experimental design*: a family of mutually-similar bot programs — a
    network scanner loop, a competing-process killer, UDP/TCP flood attack
    kernels and a command-and-control polling loop, the structure described
    by Griffioen & Doerr — and a pool of benign compute kernels of similar
    size.  Network and process operations are modelled with the interpreter's
    integer I/O intrinsics (an address is an int, a send is a print). *)

open Yali_minic.Ast
open Gen_dsl
module Rng = Yali_util.Rng

(* -- malware ------------------------------------------------------------- *)

(* Pseudo-random IPv4 generation + port scan loop, as in Mirai's scanner. *)
let scanner_func (c : ctx) : func =
  let seed = name c "seed" and ip = name c "ip" and port = name c "port" in
  let tries = name c "tries" and k = name c "k" and hits = name c "hits" in
  {
    fname = "scan_targets";
    fparams = [ (TInt, tries) ];
    fret = TInt;
    fbody =
      [ decl seed (i (17 + Rng.int c.rng 1000)); decl hits (i 0) ]
      @ count_loop c ~var:k ~lo:(i 0) ~hi:(v tries)
          [
            (* LCG "rand" like Mirai's rand_next *)
            set seed (((v seed *@ i 1664525) +@ i 1013904223) %@ i 2147483647);
            decl ip (call "abs" [ v seed ] %@ i 16777216);
            decl port
              (Ternary
                 ( v seed %@ i 10 <@ i 9,
                   i 23 (* telnet, Mirai's main vector *),
                   i 2323 ));
            (* "connect": deterministic reachability predicate *)
            If
              ( (v ip %@ i 71 ==@ i 3) &&@ (v port ==@ i 23),
                [ accum c hits (i 1); print (v ip) ],
                [] );
          ]
      @ [ ret (v hits) ];
  }

(* Kill competing bots: scan a process table (input stream) for signatures. *)
let killer_func (c : ctx) : func =
  let n = name c "nprocs" and pid = name c "pid" and sig_ = name c "sig" in
  let k = name c "k" and killed = name c "killed" in
  {
    fname = "kill_rivals";
    fparams = [ (TInt, n) ];
    fret = TInt;
    fbody =
      [ decl killed (i 0) ]
      @ count_loop c ~var:k ~lo:(i 0) ~hi:(v n)
          [
            decl pid (read_clamped 1 32768);
            decl sig_ (v pid %@ i 97);
            (* match known rival signatures (qbot, zollard, remaiten...) *)
            Switch
              ( v sig_,
                [
                  (13, [ print (i 0 -@ v pid); accum c killed (i 1) ]);
                  (29, [ print (i 0 -@ v pid); accum c killed (i 1) ]);
                  (41, [ print (i 0 -@ v pid); accum c killed (i 1) ]);
                ],
                [] );
          ]
      @ [ ret (v killed) ];
  }

(* UDP flood kernel: craft and "send" packets. *)
let attack_udp_func (c : ctx) : func =
  let target = name c "target" and count = name c "npkts" in
  let k = name c "k" and pkt = name c "pkt" and cksum = name c "cksum" in
  {
    fname = "attack_udp";
    fparams = [ (TInt, target); (TInt, count) ];
    fret = TVoid;
    fbody =
      count_loop c ~var:k ~lo:(i 0) ~hi:(v count)
        [
          decl pkt ((v target +@ v k) %@ i 65536);
          decl cksum (Bin (BXor, v pkt *@ i 31, v k) %@ i 65536);
          print (Bin (BXor, v pkt, v cksum));
        ];
  }

(* TCP SYN flood variant. *)
let attack_syn_func (c : ctx) : func =
  let target = name c "target" and count = name c "npkts" in
  let k = name c "k" and seq = name c "seq" in
  {
    fname = "attack_syn";
    fparams = [ (TInt, target); (TInt, count) ];
    fret = TVoid;
    fbody =
      [ decl seq (i (Rng.int c.rng 10000)) ]
      @ count_loop c ~var:k ~lo:(i 0) ~hi:(v count)
          [
            set seq (((v seq *@ i 69069) +@ i 1) %@ i 65536);
            print (Bin (BXor, v target, v seq));
          ];
  }

(* C2 loop: poll for commands, dispatch attacks. *)
let c2_loop_func (c : ctx) : func =
  let rounds = name c "rounds" and cmd = name c "cmd" and target = name c "target" in
  let k = name c "k" in
  {
    fname = "c2_loop";
    fparams = [ (TInt, rounds) ];
    fret = TInt;
    fbody =
      count_loop c ~var:k ~lo:(i 0) ~hi:(v rounds)
        [
          decl cmd (read_clamped 0 4);
          decl target (read_clamped 1 16777215);
          Switch
            ( v cmd,
              [
                (1, [ Expr (call "attack_udp" [ v target; i (8 + Rng.int c.rng 8) ]) ]);
                (2, [ Expr (call "attack_syn" [ v target; i (8 + Rng.int c.rng 8) ]) ]);
                (3, [ Expr (call "scan_targets" [ i (20 + Rng.int c.rng 20) ]) ]);
              ],
              [ print (i 0) ] );
        ]
      @ [ ret (i 0) ];
  }

(** One MIRAI-family variant: same architecture, stochastically varied code. *)
let generate_malware (rng : Rng.t) : Yali_minic.Ast.program =
  let c = ctx rng in
  let rounds = name c "rounds" in
  let main =
    {
      fname = "main";
      fparams = [];
      fret = TInt;
      fbody =
        junk c
        @ [
            (* daemonize-and-hide preamble: obfuscate own name *)
            Expr (call "kill_rivals" [ read_clamped 1 12 ]);
            decl rounds (read_clamped 1 6);
            Expr (call "c2_loop" [ v rounds ]);
            ret (i 0);
          ];
    }
  in
  (* function order varies between variants, like reshuffled source files *)
  let helpers =
    Yali_util.Rng.shuffle rng
      [ scanner_func c; killer_func c; attack_udp_func c; attack_syn_func c ]
  in
  { pfuncs = helpers @ [ c2_loop_func c; main ] }

(* -- benign -------------------------------------------------------------- *)

(** Benign samples: compute kernels of comparable size (the paper used SPEC
    CPU2017 C files size-matched to the malware). *)
let generate_benign (rng : Rng.t) : Yali_minic.Ast.program =
  let c = ctx rng in
  match Rng.int rng 4 with
  | 0 ->
      (* numeric integration kernel *)
      let n = name c "n" and s = name c "s" and k = name c "k" and x = name c "x" in
      let f = name c "fval" in
      simple_main c
        ~prologue:[ decl n (read_clamped 10 60) ]
        ~epilogue:[ print (v s) ]
        (decl s (i 0)
        :: count_loop c ~var:k ~lo:(i 0) ~hi:(v n)
             [
               decl x (v k *@ i 100 /@ v n);
               decl f ((v x *@ v x /@ i 100) +@ (v x *@ i 3));
               accum c s (v f);
             ])
  | 1 ->
      (* string-table compaction kernel *)
      let a = name c "table" and n = name c "n" and w = name c "w" in
      let k = name c "k" and out = name c "out" in
      let sz = 24 in
      simple_main c
        ~prologue:
          ([ decl n (read_clamped 4 sz); DeclArr (a, sz) ]
          @ count_loop c ~var:k ~lo:(i 0) ~hi:(v n)
              [ seti a (v k) (read_clamped 0 255) ])
        ~epilogue:[ print (v out) ]
        (let k2 = name c "p" in
         reorder c [ decl w (i 0); decl out (i 0) ]
         @ count_loop c ~var:k2 ~lo:(i 0) ~hi:(v n)
             [
               If
                 ( idx a (v k2) <>@ i 0,
                   [
                     seti a (v w) (idx a (v k2));
                     set w (v w +@ i 1);
                     set out (Bin (BXor, v out *@ i 17 %@ i 65536, idx a (v k2)));
                   ],
                   [] );
             ])
  | 2 ->
      (* sparse mat-vec-like kernel *)
      let vals = name c "vals" and colidx = name c "cols" and x = name c "x" in
      let n = name c "n" and s = name c "s" and k = name c "k" in
      let sz = 20 in
      simple_main c
        ~prologue:
          ([ decl n (read_clamped 4 sz); DeclArr (vals, sz); DeclArr (colidx, sz);
             DeclArr (x, 8) ]
          @ (let k0 = name c "q" in
             count_loop c ~var:k0 ~lo:(i 0) ~hi:(i 8)
               [ seti x (v k0) (read_clamped 0 9) ])
          @ count_loop c ~var:k ~lo:(i 0) ~hi:(v n)
              [
                seti vals (v k) (read_clamped 0 50);
                seti colidx (v k) (read_clamped 0 7);
              ])
        ~epilogue:[ print (v s) ]
        (let k2 = name c "p" in
         decl s (i 0)
         :: count_loop c ~var:k2 ~lo:(i 0) ~hi:(v n)
              [ accum c s (idx vals (v k2) *@ idx x (idx colidx (v k2))) ])
  | _ ->
      (* LZ-like run compression estimate *)
      let a = name c "buf" and n = name c "n" and k = name c "k" in
      let cost = name c "cost" and run = name c "run" in
      let sz = 24 in
      simple_main c
        ~prologue:
          ([ decl n (read_clamped 2 sz); DeclArr (a, sz) ]
          @ count_loop c ~var:k ~lo:(i 0) ~hi:(v n)
              [ seti a (v k) (read_clamped 0 3) ])
        ~epilogue:[ print (v cost) ]
        (let k2 = name c "p" in
         reorder c [ decl cost (i 0); decl run (i 1) ]
         @ count_loop c ~var:k2 ~lo:(i 1) ~hi:(v n)
             [
               If
                 ( idx a (v k2) ==@ idx a (v k2 -@ i 1),
                   [ accum c run (i 1) ],
                   [ accum c cost (i 2); set run (i 1) ] );
             ]
         @ [ accum c cost (i 2) ])

(** The RQ8 seed suite: [n] positive (malware) and [n] negative (benign)
    samples.  Labels: 1 = malware, 0 = benign. *)
let seed_suite (rng : Rng.t) ~(n : int) : (Yali_minic.Ast.program * int) list =
  List.init n (fun _ -> (generate_malware (Rng.split rng), 1))
  @ List.init n (fun _ -> (generate_benign (Rng.split rng), 0))
