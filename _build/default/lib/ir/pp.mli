(** Textual rendering of the IR in an LLVM-flavoured concrete syntax;
    {!Parser} reads it back. *)

val pp_value : Format.formatter -> Value.t -> unit
val pp_operand : Format.formatter -> Value.t -> unit
val pp_instr : Format.formatter -> Instr.t -> unit
val pp_terminator : Format.formatter -> Instr.terminator -> unit
val pp_block : Format.formatter -> Block.t -> unit
val pp_func : Format.formatter -> Func.t -> unit
val pp_global : Format.formatter -> Irmod.global -> unit
val pp_module : Format.formatter -> Irmod.t -> unit

val func_to_string : Func.t -> string
val module_to_string : Irmod.t -> string
