lib/ir/irmod.mli: Func Opcode Types
