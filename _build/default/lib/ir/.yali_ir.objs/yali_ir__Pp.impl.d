lib/ir/pp.ml: Block Fmt Func Instr Irmod List Types Value
