lib/ir/instr.ml: List Opcode Types Value
