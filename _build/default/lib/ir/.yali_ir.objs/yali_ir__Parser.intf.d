lib/ir/parser.mli: Irmod Types
