lib/ir/block.mli: Instr Opcode
