lib/ir/parser.ml: Block Func Instr Int64 Irmod List Option Printf String Types Value
