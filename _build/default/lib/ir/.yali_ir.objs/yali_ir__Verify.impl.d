lib/ir/verify.ml: Block Cfg Fmt Func Hashtbl Instr Irmod List Printf Set String Value
