lib/ir/loops.mli: Cfg Dominance Func Map Set String
