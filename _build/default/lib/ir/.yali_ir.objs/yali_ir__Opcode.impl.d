lib/ir/opcode.ml: Fmt Hashtbl List
