lib/ir/cfg.mli: Func Map Set String
