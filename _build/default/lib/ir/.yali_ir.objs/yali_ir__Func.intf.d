lib/ir/func.mli: Block Hashtbl Instr Opcode Types Value
