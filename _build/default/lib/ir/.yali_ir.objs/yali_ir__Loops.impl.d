lib/ir/loops.ml: Cfg Dominance Func Hashtbl List Map Option Queue Set String
