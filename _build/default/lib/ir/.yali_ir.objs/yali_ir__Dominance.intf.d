lib/ir/dominance.mli: Cfg Map String
