lib/ir/irmod.ml: Func List Opcode Printf Types
