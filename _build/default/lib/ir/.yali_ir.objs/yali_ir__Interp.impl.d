lib/ir/interp.ml: Array Block Float Func Hashtbl Instr Int64 Irmod List Opcode Printf Types Value
