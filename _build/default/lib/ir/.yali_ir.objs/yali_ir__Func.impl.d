lib/ir/func.ml: Block Hashtbl Instr List Opcode Printf String Types Value
