lib/ir/types.ml: Fmt Printf
