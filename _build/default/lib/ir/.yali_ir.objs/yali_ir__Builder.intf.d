lib/ir/builder.mli: Func Instr Types Value
