lib/ir/pp.mli: Block Format Func Instr Irmod Value
