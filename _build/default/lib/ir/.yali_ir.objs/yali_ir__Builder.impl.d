lib/ir/builder.ml: Block Func Instr List Option Printf Types Value
