lib/ir/instr.mli: Opcode Types Value
