lib/ir/verify.mli: Format Func Irmod Set String
