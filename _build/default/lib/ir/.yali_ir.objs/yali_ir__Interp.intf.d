lib/ir/interp.mli: Instr Irmod Types
