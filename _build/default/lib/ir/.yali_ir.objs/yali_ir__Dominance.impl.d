lib/ir/dominance.ml: Cfg Hashtbl List Map Option String
