(** Instructions and terminators of the miniature IR.  Instructions are
    immutable; passes construct new ones.  Every instruction carries the SSA
    identifier it defines ([id]; {!no_result} for value-less instructions
    like [store]) and its result type. *)

type ibin =
  | Add | Sub | Mul | SDiv | UDiv | SRem | URem
  | Shl | LShr | AShr | And | Or | Xor

type fbin = FAdd | FSub | FMul | FDiv | FRem

type icmp = Eq | Ne | Slt | Sle | Sgt | Sge | Ult | Ule | Ugt | Uge

type fcmp = Oeq | One | Olt | Ole | Ogt | Oge

type cast =
  | Trunc | ZExt | SExt
  | FPTrunc | FPExt | FPToUI | FPToSI | UIToFP | SIToFP
  | PtrToInt | IntToPtr | Bitcast

type kind =
  | Ibin of ibin * Value.t * Value.t
  | Fbin of fbin * Value.t * Value.t
  | Fneg of Value.t
  | Icmp of icmp * Value.t * Value.t
  | Fcmp of fcmp * Value.t * Value.t
  | Alloca of Types.t  (** allocated type; result is a pointer to it *)
  | Load of Value.t  (** pointer *)
  | Store of Value.t * Value.t  (** stored value, pointer *)
  | Gep of Value.t * Value.t list  (** base pointer, element indices *)
  | Phi of (Value.t * string) list  (** (incoming value, predecessor) *)
  | Select of Value.t * Value.t * Value.t
  | Call of string * Value.t list
  | Cast of cast * Value.t
  | Freeze of Value.t

type t = { id : int; ty : Types.t; kind : kind }

type terminator =
  | Ret of Value.t option
  | Br of string
  | CondBr of Value.t * string * string
  | Switch of Value.t * string * (int64 * string) list
      (** scrutinee, default, cases *)
  | Unreachable

(** The [id] of instructions that define nothing. *)
val no_result : int

val mk : id:int -> ty:Types.t -> kind -> t

(** An instruction with no result ([store], void [call]). *)
val mk_void : kind -> t

val defines : t -> bool

(** The opcode an instruction contributes to histograms. *)
val opcode : t -> Opcode.t

val opcode_of_terminator : terminator -> Opcode.t

(** Value operands, in syntactic order. *)
val operands : t -> Value.t list

val map_operands : (Value.t -> Value.t) -> t -> t
val terminator_operands : terminator -> Value.t list
val map_terminator_operands : (Value.t -> Value.t) -> terminator -> terminator

(** Successor labels, in order (duplicates possible for switches). *)
val successors : terminator -> string list

val map_successors : (string -> string) -> terminator -> terminator

(** No side effects: removable when the result is unused. *)
val is_pure : t -> bool

val ibin_to_string : ibin -> string
val fbin_to_string : fbin -> string
val icmp_to_string : icmp -> string
val fcmp_to_string : fcmp -> string
val cast_to_string : cast -> string

(** [a < b  ==  b > a], etc. *)
val icmp_swap : icmp -> icmp

(** Logical negation of a predicate. *)
val icmp_negate : icmp -> icmp

val is_commutative_ibin : ibin -> bool
