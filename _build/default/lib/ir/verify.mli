(** Structural well-formedness checks: block structure, unique SSA
    definitions, no uses of undefined values, phi/predecessor agreement,
    known callees.  Run by the test suite after every transformation. *)

type error = { where : string; what : string }

val pp_error : Format.formatter -> error -> unit

(** Check one function.  [known_funcs], when non-empty, also validates
    call targets. *)
val check_func :
  ?known_funcs:Set.Make(String).t -> Func.t -> error list

(** Function names the interpreter treats as runtime intrinsics
    ([read_int], [print_int], ...). *)
val intrinsics : string list

val check_module : Irmod.t -> error list

(** @raise Invalid_argument with a report when the module is ill-formed. *)
val assert_ok : Irmod.t -> unit
