(** Dominator tree and dominance frontiers (Cooper–Harvey–Kennedy), the
    foundation of SSA construction and loop detection. *)

module SMap :
  Map.S with type key = string and type 'a t = 'a Map.Make(String).t

type t = {
  idom : string SMap.t;  (** immediate dominator of each non-entry block *)
  frontier : string list SMap.t;
  rpo : string list;
}

val compute : Cfg.t -> t

(** Immediate dominator, or [None] for the entry block / unreachable
    blocks. *)
val idom : t -> string -> string option

(** Dominance frontier of a block (possibly empty). *)
val frontier_of : t -> string -> string list

(** Does [a] dominate [b]?  Reflexive. *)
val dominates : t -> string -> string -> bool

(** Children map of the dominator tree. *)
val children : t -> string list SMap.t
