(** Compilation units: functions plus global variables.  Execution starts
    at [main]. *)

type global = {
  gname : string;
  gty : Types.t;
  ginit : int64 array;  (** flat word-level initialiser (zeros if short) *)
}

type t = { mname : string; globals : global list; funcs : Func.t list }

val make : ?globals:global list -> name:string -> Func.t list -> t

val find_func : t -> string -> Func.t option

(** @raise Invalid_argument when absent *)
val find_func_exn : t -> string -> Func.t

val find_global : t -> string -> global option
val map_funcs : (Func.t -> Func.t) -> t -> t

(** Replace a function, matched by name. *)
val update_func : t -> Func.t -> t

(** All opcodes of the module: the raw material of the histogram
    embedding. *)
val opcodes : t -> Opcode.t list

val instr_count : t -> int
