(** The instruction set of the miniature IR.

    Exactly 63 opcodes, mirroring the 63-dimensional opcode histogram used by
    Damásio et al. (CGO'23) as the [histogram] embedding.  A number of the
    exotic opcodes (vector, atomic, exception handling) are never produced by
    the mini-C frontend — just as a C frontend for LLVM exercises only part of
    the LLVM instruction set — but they are part of the opcode universe and
    hence of the histogram's dimensionality. *)

type t =
  (* Terminators *)
  | Ret
  | Br
  | CondBr
  | Switch
  | Unreachable
  (* Integer binary operations *)
  | Add
  | Sub
  | Mul
  | SDiv
  | UDiv
  | SRem
  | URem
  | Shl
  | LShr
  | AShr
  | And
  | Or
  | Xor
  (* Floating-point operations *)
  | FAdd
  | FSub
  | FMul
  | FDiv
  | FRem
  | FNeg
  (* Memory *)
  | Alloca
  | Load
  | Store
  | Gep
  (* Casts *)
  | Trunc
  | ZExt
  | SExt
  | FPTrunc
  | FPExt
  | FPToUI
  | FPToSI
  | UIToFP
  | SIToFP
  | PtrToInt
  | IntToPtr
  | Bitcast
  | AddrSpaceCast
  (* Comparisons, data flow, calls *)
  | ICmp
  | FCmp
  | Phi
  | Select
  | Call
  | Freeze
  | ExtractValue
  | InsertValue
  (* Vectors *)
  | ExtractElement
  | InsertElement
  | ShuffleVector
  (* Atomics and exotica *)
  | AtomicRMW
  | CmpXchg
  | Fence
  | VAArg
  | LandingPad
  | Resume
  | Invoke
  | CallBr
  | CatchSwitch
  | CatchRet
  | CleanupRet

let all : t list =
  [ Ret; Br; CondBr; Switch; Unreachable;
    Add; Sub; Mul; SDiv; UDiv; SRem; URem; Shl; LShr; AShr; And; Or; Xor;
    FAdd; FSub; FMul; FDiv; FRem; FNeg;
    Alloca; Load; Store; Gep;
    Trunc; ZExt; SExt; FPTrunc; FPExt; FPToUI; FPToSI; UIToFP; SIToFP;
    PtrToInt; IntToPtr; Bitcast; AddrSpaceCast;
    ICmp; FCmp; Phi; Select; Call; Freeze; ExtractValue; InsertValue;
    ExtractElement; InsertElement; ShuffleVector;
    AtomicRMW; CmpXchg; Fence; VAArg; LandingPad; Resume; Invoke; CallBr;
    CatchSwitch; CatchRet; CleanupRet ]

(** Number of opcodes; the dimensionality of the histogram embedding. *)
let count = List.length all

let to_string = function
  | Ret -> "ret"
  | Br -> "br"
  | CondBr -> "condbr"
  | Switch -> "switch"
  | Unreachable -> "unreachable"
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | SDiv -> "sdiv"
  | UDiv -> "udiv"
  | SRem -> "srem"
  | URem -> "urem"
  | Shl -> "shl"
  | LShr -> "lshr"
  | AShr -> "ashr"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | FAdd -> "fadd"
  | FSub -> "fsub"
  | FMul -> "fmul"
  | FDiv -> "fdiv"
  | FRem -> "frem"
  | FNeg -> "fneg"
  | Alloca -> "alloca"
  | Load -> "load"
  | Store -> "store"
  | Gep -> "getelementptr"
  | Trunc -> "trunc"
  | ZExt -> "zext"
  | SExt -> "sext"
  | FPTrunc -> "fptrunc"
  | FPExt -> "fpext"
  | FPToUI -> "fptoui"
  | FPToSI -> "fptosi"
  | UIToFP -> "uitofp"
  | SIToFP -> "sitofp"
  | PtrToInt -> "ptrtoint"
  | IntToPtr -> "inttoptr"
  | Bitcast -> "bitcast"
  | AddrSpaceCast -> "addrspacecast"
  | ICmp -> "icmp"
  | FCmp -> "fcmp"
  | Phi -> "phi"
  | Select -> "select"
  | Call -> "call"
  | Freeze -> "freeze"
  | ExtractValue -> "extractvalue"
  | InsertValue -> "insertvalue"
  | ExtractElement -> "extractelement"
  | InsertElement -> "insertelement"
  | ShuffleVector -> "shufflevector"
  | AtomicRMW -> "atomicrmw"
  | CmpXchg -> "cmpxchg"
  | Fence -> "fence"
  | VAArg -> "va_arg"
  | LandingPad -> "landingpad"
  | Resume -> "resume"
  | Invoke -> "invoke"
  | CallBr -> "callbr"
  | CatchSwitch -> "catchswitch"
  | CatchRet -> "catchret"
  | CleanupRet -> "cleanupret"

let index_tbl : (t, int) Hashtbl.t =
  let tbl = Hashtbl.create 97 in
  List.iteri (fun i op -> Hashtbl.add tbl op i) all;
  tbl

(** Dense index of an opcode in [all]; used to address histogram buckets. *)
let index (op : t) : int = Hashtbl.find index_tbl op

let of_string_tbl : (string, t) Hashtbl.t =
  let tbl = Hashtbl.create 97 in
  List.iter (fun op -> Hashtbl.add tbl (to_string op) op) all;
  tbl

let of_string s = Hashtbl.find_opt of_string_tbl s

let pp fmt op = Fmt.string fmt (to_string op)

(** Abstract cost of executing one instance of an opcode, in cycles.  Used by
    the reference interpreter to reproduce the paper's Figure 13 performance
    comparison without real hardware: what matters there is the *relative*
    cost of optimized vs. obfuscated instruction streams. *)
let cost = function
  | Ret | Br -> 1
  | CondBr -> 2
  | Switch -> 3
  | Unreachable -> 0
  | Add | Sub | And | Or | Xor | Shl | LShr | AShr -> 1
  | Mul -> 3
  | SDiv | UDiv | SRem | URem -> 20
  | FAdd | FSub | FNeg -> 3
  | FMul -> 5
  | FDiv | FRem -> 20
  | Alloca -> 2
  | Load | Store -> 4
  | Gep -> 1
  | Trunc | ZExt | SExt | Bitcast | AddrSpaceCast | PtrToInt | IntToPtr
  | Freeze -> 1
  | FPTrunc | FPExt | FPToUI | FPToSI | UIToFP | SIToFP -> 4
  | ICmp | FCmp | Select -> 1
  | Phi -> 0
  | Call -> 10
  | ExtractValue | InsertValue | ExtractElement | InsertElement -> 1
  | ShuffleVector -> 2
  | AtomicRMW | CmpXchg -> 30
  | Fence -> 15
  | VAArg -> 4
  | LandingPad | Resume | Invoke | CallBr | CatchSwitch | CatchRet
  | CleanupRet -> 10
