(** Imperative convenience layer for constructing functions.  Frontends and
    obfuscators create a builder, emit instructions into named blocks, and
    [finish] into an immutable {!Func.t}. *)

type t = {
  name : string;
  params : (int * Types.t) list;
  ret : Types.t;
  mutable next_id : int;
  mutable next_label : int;
  mutable blocks_rev : (string * Instr.t list ref * Instr.terminator option ref) list;
  mutable current : (string * Instr.t list ref * Instr.terminator option ref) option;
}

let create ~name ~param_tys ~ret =
  let params = List.mapi (fun i ty -> (i, ty)) param_tys in
  {
    name;
    params;
    ret;
    next_id = List.length param_tys;
    next_label = 0;
    blocks_rev = [];
    current = None;
  }

let param (b : t) (i : int) : Value.t =
  if i < 0 || i >= List.length b.params then
    invalid_arg "Builder.param: index out of range";
  Value.Var (fst (List.nth b.params i))

let fresh_id (b : t) : int =
  let id = b.next_id in
  b.next_id <- id + 1;
  id

(** Create a new block label (without switching to it). *)
let new_block ?(hint = "bb") (b : t) : string =
  let l = Printf.sprintf "%s%d" hint b.next_label in
  b.next_label <- b.next_label + 1;
  b.blocks_rev <- (l, ref [], ref None) :: b.blocks_rev;
  l

(** Position the builder at the end of block [label]. *)
let switch_to (b : t) (label : string) : unit =
  match
    List.find_opt (fun (l, _, _) -> l = label) b.blocks_rev
  with
  | Some blk -> b.current <- Some blk
  | None -> invalid_arg ("Builder.switch_to: unknown block " ^ label)

let current_label (b : t) : string =
  match b.current with
  | Some (l, _, _) -> l
  | None -> invalid_arg "Builder.current_label: no current block"

let emit (b : t) ~(ty : Types.t) (kind : Instr.kind) : Value.t =
  match b.current with
  | None -> invalid_arg "Builder.emit: no current block"
  | Some (_, instrs, term) ->
      if !term <> None then
        invalid_arg "Builder.emit: block already terminated";
      let id = if ty = Types.Void then Instr.no_result else fresh_id b in
      instrs := Instr.mk ~id ~ty kind :: !instrs;
      if id = Instr.no_result then Value.Undef Types.Void else Value.Var id

let emit_void (b : t) (kind : Instr.kind) : unit =
  ignore (emit b ~ty:Types.Void kind)

let terminate (b : t) (term : Instr.terminator) : unit =
  match b.current with
  | None -> invalid_arg "Builder.terminate: no current block"
  | Some (_, _, t) ->
      if !t <> None then invalid_arg "Builder.terminate: already terminated";
      t := Some term

let is_terminated (b : t) : bool =
  match b.current with
  | None -> false
  | Some (_, _, t) -> !t <> None

(* Typed emission helpers. *)

let ibin b op x y ~ty = emit b ~ty (Instr.Ibin (op, x, y))
let fbin b op x y = emit b ~ty:Types.F64 (Instr.Fbin (op, x, y))
let icmp b p x y = emit b ~ty:Types.I1 (Instr.Icmp (p, x, y))
let fcmp b p x y = emit b ~ty:Types.I1 (Instr.Fcmp (p, x, y))
let alloca b ty = emit b ~ty:(Types.Ptr ty) (Instr.Alloca ty)
let load b ~ty ptr = emit b ~ty (Instr.Load ptr)
let store b v ptr = emit_void b (Instr.Store (v, ptr))
let gep b ~ty base idxs = emit b ~ty (Instr.Gep (base, idxs))
let phi b ~ty incoming = emit b ~ty (Instr.Phi incoming)
let select b c x y ~ty = emit b ~ty (Instr.Select (c, x, y))
let call b ~ty callee args =
  if ty = Types.Void then (
    emit_void b (Instr.Call (callee, args));
    Value.Undef Types.Void)
  else emit b ~ty (Instr.Call (callee, args))
let cast b op v ~ty = emit b ~ty (Instr.Cast (op, v))

let ret b v = terminate b (Instr.Ret v)
let br b l = terminate b (Instr.Br l)
let condbr b c l1 l2 = terminate b (Instr.CondBr (c, l1, l2))
let switch b v ~default cases = terminate b (Instr.Switch (v, default, cases))

(** Assemble the builder into an immutable function.  Blocks appear in
    creation order; untermined blocks receive [unreachable]. *)
let finish (b : t) : Func.t =
  let blocks =
    List.rev_map
      (fun (label, instrs, term) ->
        let term = Option.value !term ~default:Instr.Unreachable in
        Block.make ~label ~instrs:(List.rev !instrs) ~term)
      b.blocks_rev
  in
  Func.make ~name:b.name ~params:b.params ~ret:b.ret ~blocks
