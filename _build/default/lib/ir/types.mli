(** Types of the miniature IR: integers of four widths, one float type,
    pointers and flat arrays. *)

type t =
  | Void
  | I1
  | I8
  | I32
  | I64
  | F64
  | Ptr of t
  | Arr of t * int  (** element type, length *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool

val is_integer : t -> bool
val is_float : t -> bool
val is_pointer : t -> bool

(** Bit width of an integer type.
    @raise Invalid_argument on non-integer types *)
val width : t -> int

(** Pointee of a pointer type.
    @raise Invalid_argument on non-pointer types *)
val deref : t -> t

(** Element type of an array, or pointee of a pointer. *)
val element : t -> t

(** Size in the interpreter's word-addressed memory cells. *)
val size_in_cells : t -> int
