(** Basic blocks: a label, a straight-line list of instructions, and a single
    terminator. *)

type t = { label : string; instrs : Instr.t list; term : Instr.terminator }

let make ~label ~instrs ~term = { label; instrs; term }

(** Phi instructions of the block (always a prefix of the instruction list in
    a well-formed block). *)
let phis (b : t) =
  List.filter (fun (i : Instr.t) -> match i.kind with Phi _ -> true | _ -> false)
    b.instrs

let non_phis (b : t) =
  List.filter
    (fun (i : Instr.t) -> match i.kind with Phi _ -> false | _ -> true)
    b.instrs

let successors (b : t) = Instr.successors b.term

(** All opcodes executed by the block, including the terminator. *)
let opcodes (b : t) =
  List.map Instr.opcode b.instrs @ [ Instr.opcode_of_terminator b.term ]

(** Rewrite incoming-phi predecessor labels: wherever a phi lists [old_pred],
    relabel it to [new_pred].  Used by CFG surgery. *)
let retarget_phis ~(old_pred : string) ~(new_pred : string) (b : t) : t =
  let instrs =
    List.map
      (fun (i : Instr.t) ->
        match i.kind with
        | Phi incoming ->
            let incoming =
              List.map
                (fun (v, l) -> if l = old_pred then (v, new_pred) else (v, l))
                incoming
            in
            { i with kind = Phi incoming }
        | _ -> i)
      b.instrs
  in
  { b with instrs }

(** Remove phi entries coming from a predecessor that no longer branches
    here. *)
let remove_phi_entries ~(pred : string) (b : t) : t =
  let instrs =
    List.filter_map
      (fun (i : Instr.t) ->
        match i.kind with
        | Phi incoming -> (
            match List.filter (fun (_, l) -> l <> pred) incoming with
            | [] -> None
            | incoming -> Some { i with kind = Instr.Phi incoming })
        | _ -> Some i)
      b.instrs
  in
  { b with instrs }
