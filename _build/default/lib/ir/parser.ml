(** Parser for the textual IR emitted by {!Pp}.

    The contract is a printer/parser round trip: for any module [m] produced
    by this library, [parse (Pp.module_to_string m)] yields a module that
    prints identically and behaves identically under the interpreter.
    Constant operands print without their type, so the parser infers integer
    constant types from the instruction context (falling back to [i32]);
    this is invisible in the printed form and immaterial to execution for
    modules built by the frontend. *)

exception Parse_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* -- lexing helpers (line oriented) --------------------------------------- *)

let strip s = String.trim s

let split_ws (s : string) : string list =
  String.split_on_char ' ' s |> List.filter (fun t -> t <> "")

(* split "a, b, c" at top level (no nesting in our operand lists except
   phi's [ v, %l ] groups, handled separately) *)
let split_commas (s : string) : string list =
  String.split_on_char ',' s |> List.map strip |> List.filter (fun t -> t <> "")

let parse_type (s : string) : Types.t =
  let rec go (s : string) : Types.t =
    if String.length s > 0 && s.[String.length s - 1] = '*' then
      Types.Ptr (go (String.sub s 0 (String.length s - 1)))
    else
      match s with
      | "void" -> Types.Void
      | "i1" -> Types.I1
      | "i8" -> Types.I8
      | "i32" -> Types.I32
      | "i64" -> Types.I64
      | "double" -> Types.F64
      | s when String.length s > 2 && s.[0] = '[' ->
          (* [N x ty] *)
          let inner = String.sub s 1 (String.length s - 2) in
          (match String.index_opt inner 'x' with
          | Some k ->
              let n = int_of_string (strip (String.sub inner 0 k)) in
              let elt = strip (String.sub inner (k + 1) (String.length inner - k - 1)) in
              Types.Arr (go elt, n)
          | None -> err "bad array type %S" s)
      | s -> err "unknown type %S" s
  in
  go (strip s)

let parse_operand ?(ty = Types.I32) (tok : string) : Value.t =
  let tok = strip tok in
  if tok = "" then err "empty operand"
  else if tok = "undef" then Value.Undef ty
  else if tok.[0] = '%' then
    Value.Var (int_of_string (String.sub tok 1 (String.length tok - 1)))
  else if tok.[0] = '@' then
    Value.Global (String.sub tok 1 (String.length tok - 1))
  else if
    String.contains tok '.'
    || String.contains tok 'p'
    || (String.contains tok 'x' && String.length tok > 1 && tok.[0] = '0')
    || String.contains tok 'n' (* nan *)
    || String.contains tok 'i' (* infinity *)
  then Value.FConst (float_of_string tok)
  else Value.IConst (ty, Int64.of_string tok)

let ibin_of_string = function
  | "add" -> Some Instr.Add | "sub" -> Some Instr.Sub | "mul" -> Some Instr.Mul
  | "sdiv" -> Some Instr.SDiv | "udiv" -> Some Instr.UDiv
  | "srem" -> Some Instr.SRem | "urem" -> Some Instr.URem
  | "shl" -> Some Instr.Shl | "lshr" -> Some Instr.LShr
  | "ashr" -> Some Instr.AShr | "and" -> Some Instr.And
  | "or" -> Some Instr.Or | "xor" -> Some Instr.Xor
  | _ -> None

let fbin_of_string = function
  | "fadd" -> Some Instr.FAdd | "fsub" -> Some Instr.FSub
  | "fmul" -> Some Instr.FMul | "fdiv" -> Some Instr.FDiv
  | "frem" -> Some Instr.FRem
  | _ -> None

let icmp_of_string = function
  | "eq" -> Instr.Eq | "ne" -> Instr.Ne | "slt" -> Instr.Slt
  | "sle" -> Instr.Sle | "sgt" -> Instr.Sgt | "sge" -> Instr.Sge
  | "ult" -> Instr.Ult | "ule" -> Instr.Ule | "ugt" -> Instr.Ugt
  | "uge" -> Instr.Uge
  | p -> err "unknown icmp predicate %S" p

let fcmp_of_string = function
  | "oeq" -> Instr.Oeq | "one" -> Instr.One | "olt" -> Instr.Olt
  | "ole" -> Instr.Ole | "ogt" -> Instr.Ogt | "oge" -> Instr.Oge
  | p -> err "unknown fcmp predicate %S" p

let cast_of_string = function
  | "trunc" -> Some Instr.Trunc | "zext" -> Some Instr.ZExt
  | "sext" -> Some Instr.SExt | "fptrunc" -> Some Instr.FPTrunc
  | "fpext" -> Some Instr.FPExt | "fptoui" -> Some Instr.FPToUI
  | "fptosi" -> Some Instr.FPToSI | "uitofp" -> Some Instr.UIToFP
  | "sitofp" -> Some Instr.SIToFP | "ptrtoint" -> Some Instr.PtrToInt
  | "inttoptr" -> Some Instr.IntToPtr | "bitcast" -> Some Instr.Bitcast
  | _ -> None

(* "%5 = rest" -> (5, "rest"); no '=' -> (-1, line) *)
let split_dest (line : string) : int * string =
  match String.index_opt line '=' with
  | Some k
    when String.length line > 1
         && line.[0] = '%'
         && (not (String.contains (String.sub line 0 k) '('))
         && String.trim (String.sub line 1 (k - 1)) <> ""
         && (match int_of_string_opt (strip (String.sub line 1 (k - 1))) with
            | Some _ -> true
            | None -> false) ->
      ( int_of_string (strip (String.sub line 1 (k - 1))),
        strip (String.sub line (k + 1) (String.length line - k - 1)) )
  | _ -> (Instr.no_result, strip line)

let parse_phi_incoming (s : string) : (Value.t * string) list * Types.t -> (Value.t * string) list =
 fun (acc, ty) ->
  ignore acc;
  (* s is like "[ v, %l ], [ v, %l ]" *)
  let parts = ref [] in
  let i = ref 0 in
  let n = String.length s in
  while !i < n do
    match String.index_from_opt s !i '[' with
    | None -> i := n
    | Some o -> (
        match String.index_from_opt s o ']' with
        | None -> err "unterminated phi group"
        | Some c ->
            let inner = String.sub s (o + 1) (c - o - 1) in
            (match split_commas inner with
            | [ v; l ] when String.length l > 1 && l.[0] = '%' ->
                parts :=
                  (parse_operand ~ty v, String.sub l 1 (String.length l - 1))
                  :: !parts
            | _ -> err "bad phi group %S" inner);
            i := c + 1)
  done;
  List.rev !parts

let parse_instr_line (line : string) : Instr.t =
  let id, rest = split_dest line in
  let toks = split_ws rest in
  match toks with
  | [] -> err "empty instruction"
  | mnemonic :: _ -> (
      let after = strip (String.sub rest (String.length mnemonic)
                            (String.length rest - String.length mnemonic)) in
      match mnemonic with
      | "store" -> (
          match split_commas after with
          | [ v; p ] ->
              Instr.mk_void (Instr.Store (parse_operand v, parse_operand p))
          | _ -> err "bad store %S" line)
      | "alloca" ->
          let ty = parse_type after in
          Instr.mk ~id ~ty:(Types.Ptr ty) (Instr.Alloca ty)
      | "load" -> (
          match split_commas after with
          | [ ty; p ] ->
              let ty = parse_type ty in
              Instr.mk ~id ~ty (Instr.Load (parse_operand p))
          | _ -> err "bad load %S" line)
      | "icmp" -> (
          match split_ws after with
          | pred :: rest_toks ->
              let ops = split_commas (String.concat " " rest_toks) in
              (match ops with
              | [ a; b ] ->
                  Instr.mk ~id ~ty:Types.I1
                    (Instr.Icmp (icmp_of_string pred, parse_operand a, parse_operand b))
              | _ -> err "bad icmp %S" line)
          | [] -> err "bad icmp %S" line)
      | "fcmp" -> (
          match split_ws after with
          | pred :: rest_toks ->
              let ops = split_commas (String.concat " " rest_toks) in
              (match ops with
              | [ a; b ] ->
                  Instr.mk ~id ~ty:Types.I1
                    (Instr.Fcmp (fcmp_of_string pred, parse_operand a, parse_operand b))
              | _ -> err "bad fcmp %S" line)
          | [] -> err "bad fcmp %S" line)
      | "fneg" -> (
          match split_ws after with
          | [ _ty; a ] -> Instr.mk ~id ~ty:Types.F64 (Instr.Fneg (parse_operand a))
          | _ -> err "bad fneg %S" line)
      | "phi" -> (
          match split_ws after with
          | ty_tok :: _ ->
              let ty = parse_type ty_tok in
              let groups = strip (String.sub after (String.length ty_tok)
                                     (String.length after - String.length ty_tok)) in
              Instr.mk ~id ~ty (Instr.Phi (parse_phi_incoming groups ([], ty)))
          | [] -> err "bad phi %S" line)
      | "select" -> (
          (* select %c, ty a, ty b *)
          match split_commas after with
          | [ c; a; b ] ->
              let drop_ty s =
                match split_ws s with
                | [ ty; v ] -> (parse_type ty, v)
                | [ v ] -> (Types.I32, v)
                | _ -> err "bad select arm %S" s
              in
              let ty, av = drop_ty a in
              let _, bv = drop_ty b in
              Instr.mk ~id ~ty
                (Instr.Select (parse_operand c, parse_operand ~ty av, parse_operand ~ty bv))
          | _ -> err "bad select %S" line)
      | "call" -> (
          (* call ty @f(args) *)
          match String.index_opt after '@' with
          | None -> err "bad call %S" line
          | Some at ->
              let ty = parse_type (String.sub after 0 at) in
              let opn = String.index_from after at '(' in
              let close = String.rindex after ')' in
              let callee = String.sub after (at + 1) (opn - at - 1) in
              let args = String.sub after (opn + 1) (close - opn - 1) in
              let args = List.map (fun a -> parse_operand a) (split_commas args) in
              if ty = Types.Void then Instr.mk_void (Instr.Call (callee, args))
              else Instr.mk ~id ~ty (Instr.Call (callee, args)))
      | "getelementptr" -> (
          match split_ws after with
          | ty_tok :: _ ->
              let ty = parse_type ty_tok in
              let ops = strip (String.sub after (String.length ty_tok)
                                  (String.length after - String.length ty_tok)) in
              (match split_commas ops with
              | base :: idxs ->
                  Instr.mk ~id ~ty
                    (Instr.Gep (parse_operand base, List.map (fun i -> parse_operand i) idxs))
              | [] -> err "bad gep %S" line)
          | [] -> err "bad gep %S" line)
      | "freeze" ->
          Instr.mk ~id ~ty:Types.I32 (Instr.Freeze (parse_operand after))
      | m -> (
          match ibin_of_string m with
          | Some op -> (
              match split_ws after with
              | ty_tok :: rest_toks ->
                  let ty = parse_type ty_tok in
                  (match split_commas (String.concat " " rest_toks) with
                  | [ a; b ] ->
                      Instr.mk ~id ~ty
                        (Instr.Ibin (op, parse_operand ~ty a, parse_operand ~ty b))
                  | _ -> err "bad %s %S" m line)
              | [] -> err "bad %s %S" m line)
          | None -> (
              match fbin_of_string m with
              | Some op -> (
                  match split_ws after with
                  | _ty :: rest_toks -> (
                      match split_commas (String.concat " " rest_toks) with
                      | [ a; b ] ->
                          Instr.mk ~id ~ty:Types.F64
                            (Instr.Fbin (op, parse_operand a, parse_operand b))
                      | _ -> err "bad %s %S" m line)
                  | [] -> err "bad %s %S" m line)
              | None -> (
                  match cast_of_string m with
                  | Some c -> (
                      (* "<op> to <ty>" *)
                      match String.index_opt after 't' with
                      | _ -> (
                          match split_ws after with
                          | [ v; "to"; ty ] ->
                              let ty = parse_type ty in
                              Instr.mk ~id ~ty (Instr.Cast (c, parse_operand v))
                          | _ -> err "bad cast %S" line))
                  | None -> err "unknown mnemonic %S in %S" m line))))

let parse_label_ref (tok : string) : string =
  (* "label %foo" or "%foo" or "%foo," *)
  let tok = strip tok in
  let tok =
    if String.length tok > 0 && tok.[String.length tok - 1] = ',' then
      String.sub tok 0 (String.length tok - 1)
    else tok
  in
  if String.length tok > 1 && tok.[0] = '%' then
    String.sub tok 1 (String.length tok - 1)
  else err "expected label, got %S" tok

let parse_terminator (line : string) : Instr.terminator =
  let toks = split_ws line in
  match toks with
  | [ "ret"; "void" ] -> Instr.Ret None
  | [ "ret"; v ] -> Instr.Ret (Some (parse_operand v))
  | [ "br"; "label"; l ] -> Instr.Br (parse_label_ref l)
  | "br" :: c :: "label" :: t :: "label" :: e ->
      let c = String.sub c 0 (String.length c - 1) (* trailing comma *) in
      Instr.CondBr
        (parse_operand c, parse_label_ref t, parse_label_ref (String.concat "" e))
  | "switch" :: _ -> (
      (* switch %v, label %d [k: %l k: %l ...] *)
      match String.index_opt line '[' with
      | None -> err "bad switch %S" line
      | Some o ->
          let head = String.sub line 0 o in
          let close = String.rindex line ']' in
          let body = String.sub line (o + 1) (close - o - 1) in
          let head_toks = split_ws head in
          (match head_toks with
          | [ "switch"; v; "label"; d ] ->
              let v = String.sub v 0 (String.length v - 1) in
              let cases =
                let toks = split_ws body in
                let rec go = function
                  | [] -> []
                  | k :: l :: rest ->
                      let k = String.sub k 0 (String.length k - 1) in
                      (Int64.of_string k, parse_label_ref l) :: go rest
                  | _ -> err "bad switch cases %S" body
                in
                go toks
              in
              Instr.Switch (parse_operand ~ty:Types.I64 v, parse_label_ref d, cases)
          | _ -> err "bad switch %S" line))
  | [ "unreachable" ] -> Instr.Unreachable
  | _ -> err "unknown terminator %S" line

let is_terminator_line (line : string) : bool =
  match split_ws line with
  | ("ret" | "br" | "switch" | "unreachable") :: _ -> true
  | _ -> false

(* -- function / module structure ------------------------------------------ *)

let parse_module (src : string) : Irmod.t =
  let lines = String.split_on_char '\n' src in
  let name = ref "m" in
  let globals = ref [] in
  let funcs = ref [] in
  (* current function state *)
  let cur_name = ref "" in
  let cur_ret = ref Types.Void in
  let cur_params = ref [] in
  let cur_blocks = ref [] in
  let cur_label = ref None in
  let cur_instrs = ref [] in
  let cur_term = ref None in
  let close_block () =
    match !cur_label with
    | None -> ()
    | Some label ->
        let term = Option.value !cur_term ~default:Instr.Unreachable in
        cur_blocks :=
          Block.make ~label ~instrs:(List.rev !cur_instrs) ~term :: !cur_blocks;
        cur_label := None;
        cur_instrs := [];
        cur_term := None
  in
  let close_func () =
    close_block ();
    if !cur_name <> "" then begin
      funcs :=
        Func.make ~name:!cur_name ~params:(List.rev !cur_params) ~ret:!cur_ret
          ~blocks:(List.rev !cur_blocks)
        :: !funcs;
      cur_name := "";
      cur_params := [];
      cur_blocks := []
    end
  in
  List.iter
    (fun raw ->
      let line = strip raw in
      if line = "" then ()
      else if String.length line >= 9 && String.sub line 0 9 = "; module " then
        name := strip (String.sub line 9 (String.length line - 9))
      else if line.[0] = ';' then ()
      else if line.[0] = '@' then begin
        (* @g = global <ty> *)
        match String.index_opt line '=' with
        | Some k ->
            let gname = strip (String.sub line 1 (k - 1)) in
            let rest = strip (String.sub line (k + 1) (String.length line - k - 1)) in
            (match split_ws rest with
            | "global" :: ty_toks ->
                let gty = parse_type (String.concat " " ty_toks) in
                globals :=
                  { Irmod.gname; gty; ginit = [||] } :: !globals
            | _ -> err "bad global %S" line)
        | None -> err "bad global %S" line
      end
      else if String.length line >= 7 && String.sub line 0 7 = "define " then begin
        close_func ();
        (* define <ty> @name(<ty> %N, ...) { *)
        let at = String.index line '@' in
        let opn = String.index_from line at '(' in
        let close = String.rindex line ')' in
        cur_ret := parse_type (String.sub line 7 (at - 7));
        cur_name := String.sub line (at + 1) (opn - at - 1);
        let params_s = String.sub line (opn + 1) (close - opn - 1) in
        cur_params :=
          List.rev
            (List.map
               (fun p ->
                 match split_ws p with
                 | [ ty; v ] when String.length v > 1 && v.[0] = '%' ->
                     ( int_of_string (String.sub v 1 (String.length v - 1)),
                       parse_type ty )
                 | _ -> err "bad parameter %S" p)
               (split_commas params_s))
      end
      else if line = "}" then close_func ()
      else if String.length line > 1 && line.[String.length line - 1] = ':' then begin
        close_block ();
        cur_label := Some (String.sub line 0 (String.length line - 1))
      end
      else if is_terminator_line line then cur_term := Some (parse_terminator line)
      else begin
        match !cur_label with
        | None -> err "instruction outside block: %S" line
        | Some _ -> cur_instrs := parse_instr_line line :: !cur_instrs
      end)
    lines;
  close_func ();
  Irmod.make ~globals:(List.rev !globals) ~name:!name (List.rev !funcs)
