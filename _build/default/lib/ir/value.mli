(** Values (operands) of the miniature IR. *)

type t =
  | Var of int  (** SSA name / virtual register, function-local *)
  | IConst of Types.t * int64  (** typed integer constant *)
  | FConst of float
  | Global of string  (** address of a global variable *)
  | Undef of Types.t

(** Constructors for common constants. *)

val i1 : bool -> t
val i8 : int -> t
val i32 : int -> t
val i32_64 : int64 -> t
val i64 : int -> t
val f64 : float -> t
val var : int -> t

val is_const : t -> bool
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
