(** Natural-loop detection: back edges via dominance, loop bodies by
    backward reachability.  Used by loop-aware passes (LICM) and by
    structural metrics. *)

module SSet = Set.Make (String)
module SMap = Map.Make (String)

type loop = {
  header : string;
  latches : string list;  (** sources of back edges into the header *)
  body : SSet.t;  (** blocks of the loop, header included *)
}

type t = { loops : loop list }

let compute (g : Cfg.t) (dom : Dominance.t) : t =
  (* back edge: u -> h where h dominates u *)
  let back_edges =
    List.concat_map
      (fun u ->
        List.filter_map
          (fun h -> if Dominance.dominates dom h u then Some (u, h) else None)
          (Cfg.successors g u))
      g.Cfg.order
  in
  (* group by header *)
  let by_header = Hashtbl.create 8 in
  List.iter
    (fun (u, h) ->
      Hashtbl.replace by_header h
        (u :: Option.value (Hashtbl.find_opt by_header h) ~default:[]))
    back_edges;
  let loops =
    Hashtbl.fold
      (fun header latches acc ->
        (* body: header + blocks that reach a latch without passing through
           the header (standard natural-loop algorithm) *)
        let body = ref (SSet.singleton header) in
        let work = Queue.create () in
        List.iter
          (fun l -> if not (SSet.mem l !body) then Queue.add l work)
          latches;
        while not (Queue.is_empty work) do
          let b = Queue.pop work in
          if not (SSet.mem b !body) then begin
            body := SSet.add b !body;
            List.iter
              (fun p -> if not (SSet.mem p !body) then Queue.add p work)
              (Cfg.predecessors g b)
          end
        done;
        { header; latches; body = !body } :: acc)
      by_header []
  in
  { loops }

let of_func (f : Func.t) : t =
  let g = Cfg.of_func f in
  compute g (Dominance.compute g)

(** Innermost-first ordering (by body size, ascending). *)
let innermost_first (t : t) : loop list =
  List.sort (fun a b -> compare (SSet.cardinal a.body) (SSet.cardinal b.body)) t.loops

(** The loop nesting depth of each block. *)
let depth_map (t : t) : int SMap.t =
  List.fold_left
    (fun acc l ->
      SSet.fold
        (fun b acc ->
          SMap.update b
            (function None -> Some 1 | Some d -> Some (d + 1))
            acc)
        l.body acc)
    SMap.empty t.loops

let loop_count (t : t) = List.length t.loops
