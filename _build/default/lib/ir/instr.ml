(** Instructions and terminators of the miniature IR.

    Instructions are immutable records; transformation passes construct new
    instructions rather than mutating in place.  Every instruction carries the
    SSA identifier it defines ([id]; [-1] for instructions with no result,
    e.g. [store]) and its result type. *)

type ibin =
  | Add | Sub | Mul | SDiv | UDiv | SRem | URem
  | Shl | LShr | AShr | And | Or | Xor

type fbin = FAdd | FSub | FMul | FDiv | FRem

type icmp = Eq | Ne | Slt | Sle | Sgt | Sge | Ult | Ule | Ugt | Uge

type fcmp = Oeq | One | Olt | Ole | Ogt | Oge

type cast =
  | Trunc | ZExt | SExt
  | FPTrunc | FPExt | FPToUI | FPToSI | UIToFP | SIToFP
  | PtrToInt | IntToPtr | Bitcast

type kind =
  | Ibin of ibin * Value.t * Value.t
  | Fbin of fbin * Value.t * Value.t
  | Fneg of Value.t
  | Icmp of icmp * Value.t * Value.t
  | Fcmp of fcmp * Value.t * Value.t
  | Alloca of Types.t  (** allocated type; result type is a pointer to it *)
  | Load of Value.t  (** pointer *)
  | Store of Value.t * Value.t  (** stored value, pointer *)
  | Gep of Value.t * Value.t list  (** base pointer, element indices *)
  | Phi of (Value.t * string) list  (** (incoming value, predecessor label) *)
  | Select of Value.t * Value.t * Value.t
  | Call of string * Value.t list
  | Cast of cast * Value.t
  | Freeze of Value.t

type t = { id : int; ty : Types.t; kind : kind }

type terminator =
  | Ret of Value.t option
  | Br of string
  | CondBr of Value.t * string * string
  | Switch of Value.t * string * (int64 * string) list
      (** scrutinee, default label, cases *)
  | Unreachable

let no_result = -1

let mk ~id ~ty kind = { id; ty; kind }
let mk_void kind = { id = no_result; ty = Types.Void; kind }

let defines (i : t) = i.id <> no_result

let opcode (i : t) : Opcode.t =
  match i.kind with
  | Ibin (Add, _, _) -> Opcode.Add
  | Ibin (Sub, _, _) -> Opcode.Sub
  | Ibin (Mul, _, _) -> Opcode.Mul
  | Ibin (SDiv, _, _) -> Opcode.SDiv
  | Ibin (UDiv, _, _) -> Opcode.UDiv
  | Ibin (SRem, _, _) -> Opcode.SRem
  | Ibin (URem, _, _) -> Opcode.URem
  | Ibin (Shl, _, _) -> Opcode.Shl
  | Ibin (LShr, _, _) -> Opcode.LShr
  | Ibin (AShr, _, _) -> Opcode.AShr
  | Ibin (And, _, _) -> Opcode.And
  | Ibin (Or, _, _) -> Opcode.Or
  | Ibin (Xor, _, _) -> Opcode.Xor
  | Fbin (FAdd, _, _) -> Opcode.FAdd
  | Fbin (FSub, _, _) -> Opcode.FSub
  | Fbin (FMul, _, _) -> Opcode.FMul
  | Fbin (FDiv, _, _) -> Opcode.FDiv
  | Fbin (FRem, _, _) -> Opcode.FRem
  | Fneg _ -> Opcode.FNeg
  | Icmp _ -> Opcode.ICmp
  | Fcmp _ -> Opcode.FCmp
  | Alloca _ -> Opcode.Alloca
  | Load _ -> Opcode.Load
  | Store _ -> Opcode.Store
  | Gep _ -> Opcode.Gep
  | Phi _ -> Opcode.Phi
  | Select _ -> Opcode.Select
  | Call _ -> Opcode.Call
  | Cast (Trunc, _) -> Opcode.Trunc
  | Cast (ZExt, _) -> Opcode.ZExt
  | Cast (SExt, _) -> Opcode.SExt
  | Cast (FPTrunc, _) -> Opcode.FPTrunc
  | Cast (FPExt, _) -> Opcode.FPExt
  | Cast (FPToUI, _) -> Opcode.FPToUI
  | Cast (FPToSI, _) -> Opcode.FPToSI
  | Cast (UIToFP, _) -> Opcode.UIToFP
  | Cast (SIToFP, _) -> Opcode.SIToFP
  | Cast (PtrToInt, _) -> Opcode.PtrToInt
  | Cast (IntToPtr, _) -> Opcode.IntToPtr
  | Cast (Bitcast, _) -> Opcode.Bitcast
  | Freeze _ -> Opcode.Freeze

let opcode_of_terminator : terminator -> Opcode.t = function
  | Ret _ -> Opcode.Ret
  | Br _ -> Opcode.Br
  | CondBr _ -> Opcode.CondBr
  | Switch _ -> Opcode.Switch
  | Unreachable -> Opcode.Unreachable

(** All value operands of an instruction, in syntactic order. *)
let operands (i : t) : Value.t list =
  match i.kind with
  | Ibin (_, a, b) | Fbin (_, a, b) | Icmp (_, a, b) | Fcmp (_, a, b) -> [ a; b ]
  | Fneg a | Load a | Cast (_, a) | Freeze a -> [ a ]
  | Alloca _ -> []
  | Store (v, p) -> [ v; p ]
  | Gep (base, idxs) -> base :: idxs
  | Phi incoming -> List.map fst incoming
  | Select (c, a, b) -> [ c; a; b ]
  | Call (_, args) -> args

(** Rewrite every operand with [f]. *)
let map_operands (f : Value.t -> Value.t) (i : t) : t =
  let kind =
    match i.kind with
    | Ibin (op, a, b) -> Ibin (op, f a, f b)
    | Fbin (op, a, b) -> Fbin (op, f a, f b)
    | Fneg a -> Fneg (f a)
    | Icmp (p, a, b) -> Icmp (p, f a, f b)
    | Fcmp (p, a, b) -> Fcmp (p, f a, f b)
    | Alloca t -> Alloca t
    | Load p -> Load (f p)
    | Store (v, p) -> Store (f v, f p)
    | Gep (base, idxs) -> Gep (f base, List.map f idxs)
    | Phi incoming -> Phi (List.map (fun (v, l) -> (f v, l)) incoming)
    | Select (c, a, b) -> Select (f c, f a, f b)
    | Call (callee, args) -> Call (callee, List.map f args)
    | Cast (c, a) -> Cast (c, f a)
    | Freeze a -> Freeze (f a)
  in
  { i with kind }

let terminator_operands : terminator -> Value.t list = function
  | Ret (Some v) -> [ v ]
  | Ret None | Br _ | Unreachable -> []
  | CondBr (c, _, _) -> [ c ]
  | Switch (v, _, _) -> [ v ]

let map_terminator_operands (f : Value.t -> Value.t) :
    terminator -> terminator = function
  | Ret (Some v) -> Ret (Some (f v))
  | Ret None -> Ret None
  | Br l -> Br l
  | CondBr (c, t, e) -> CondBr (f c, t, e)
  | Switch (v, d, cases) -> Switch (f v, d, cases)
  | Unreachable -> Unreachable

(** Successor labels of a terminator, in order. *)
let successors : terminator -> string list = function
  | Ret _ | Unreachable -> []
  | Br l -> [ l ]
  | CondBr (_, t, e) -> [ t; e ]
  | Switch (_, d, cases) -> d :: List.map snd cases

(** Rewrite successor labels of a terminator. *)
let map_successors (f : string -> string) : terminator -> terminator = function
  | Ret v -> Ret v
  | Br l -> Br (f l)
  | CondBr (c, t, e) -> CondBr (c, f t, f e)
  | Switch (v, d, cases) ->
      Switch (v, f d, List.map (fun (k, l) -> (k, f l)) cases)
  | Unreachable -> Unreachable

(** [true] when the instruction has no side effects and may be removed if its
    result is unused. *)
let is_pure (i : t) =
  match i.kind with
  | Store _ | Call _ -> false
  | Alloca _ ->
      (* allocas are kept alive by their uses only *)
      true
  | Ibin _ | Fbin _ | Fneg _ | Icmp _ | Fcmp _ | Load _ | Gep _ | Phi _
  | Select _ | Cast _ | Freeze _ ->
      true

let ibin_to_string = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | SDiv -> "sdiv"
  | UDiv -> "udiv" | SRem -> "srem" | URem -> "urem" | Shl -> "shl"
  | LShr -> "lshr" | AShr -> "ashr" | And -> "and" | Or -> "or" | Xor -> "xor"

let fbin_to_string = function
  | FAdd -> "fadd" | FSub -> "fsub" | FMul -> "fmul" | FDiv -> "fdiv"
  | FRem -> "frem"

let icmp_to_string = function
  | Eq -> "eq" | Ne -> "ne" | Slt -> "slt" | Sle -> "sle" | Sgt -> "sgt"
  | Sge -> "sge" | Ult -> "ult" | Ule -> "ule" | Ugt -> "ugt" | Uge -> "uge"

let fcmp_to_string = function
  | Oeq -> "oeq" | One -> "one" | Olt -> "olt" | Ole -> "ole" | Ogt -> "ogt"
  | Oge -> "oge"

let cast_to_string = function
  | Trunc -> "trunc" | ZExt -> "zext" | SExt -> "sext" | FPTrunc -> "fptrunc"
  | FPExt -> "fpext" | FPToUI -> "fptoui" | FPToSI -> "fptosi"
  | UIToFP -> "uitofp" | SIToFP -> "sitofp" | PtrToInt -> "ptrtoint"
  | IntToPtr -> "inttoptr" | Bitcast -> "bitcast"

(** Swap the two sides of an integer comparison predicate, e.g.
    [a < b  ==  b > a]. *)
let icmp_swap = function
  | Eq -> Eq | Ne -> Ne
  | Slt -> Sgt | Sle -> Sge | Sgt -> Slt | Sge -> Sle
  | Ult -> Ugt | Ule -> Uge | Ugt -> Ult | Uge -> Ule

(** Negate an integer comparison predicate. *)
let icmp_negate = function
  | Eq -> Ne | Ne -> Eq
  | Slt -> Sge | Sle -> Sgt | Sgt -> Sle | Sge -> Slt
  | Ult -> Uge | Ule -> Ugt | Ugt -> Ule | Uge -> Ult

let is_commutative_ibin = function
  | Add | Mul | And | Or | Xor -> true
  | Sub | SDiv | UDiv | SRem | URem | Shl | LShr | AShr -> false
