(** Natural-loop detection: back edges via dominance, loop bodies by
    backward reachability. *)

module SSet :
  Set.S with type elt = string and type t = Set.Make(String).t
module SMap :
  Map.S with type key = string and type 'a t = 'a Map.Make(String).t

type loop = {
  header : string;
  latches : string list;  (** sources of back edges into the header *)
  body : SSet.t;  (** blocks of the loop, header included *)
}

type t = { loops : loop list }

val compute : Cfg.t -> Dominance.t -> t
val of_func : Func.t -> t

(** Loops ordered by body size, ascending (inner loops first). *)
val innermost_first : t -> loop list

(** Loop-nesting depth of each block (absent = not in any loop). *)
val depth_map : t -> int SMap.t

val loop_count : t -> int
