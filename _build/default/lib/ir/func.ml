(** Functions: parameters, a return type, and an ordered list of basic
    blocks.  The first block is the entry block.  [next_id] is a high-water
    mark for SSA identifiers, letting passes mint fresh names; [next_label]
    plays the same role for block labels. *)

type t = {
  name : string;
  params : (int * Types.t) list;  (** SSA id and type of each parameter *)
  ret : Types.t;
  blocks : Block.t list;
  next_id : int;
  next_label : int;
}

let make ~name ~params ~ret ~blocks =
  let max_id =
    List.fold_left
      (fun acc (b : Block.t) ->
        List.fold_left
          (fun acc (i : Instr.t) -> max acc i.id)
          acc b.instrs)
      (List.fold_left (fun acc (id, _) -> max acc id) (-1) params)
      blocks
  in
  let max_label =
    List.fold_left
      (fun acc (b : Block.t) ->
        match int_of_string_opt (String.concat "" (String.split_on_char 'L' b.label)) with
        | Some n -> max acc n
        | None -> acc)
      (-1) blocks
  in
  { name; params; ret; blocks; next_id = max_id + 1; next_label = max_label + 1 }

let entry (f : t) =
  match f.blocks with
  | [] -> invalid_arg ("Func.entry: function " ^ f.name ^ " has no blocks")
  | b :: _ -> b

let find_block (f : t) (label : string) : Block.t option =
  List.find_opt (fun (b : Block.t) -> b.label = label) f.blocks

let find_block_exn (f : t) (label : string) : Block.t =
  match find_block f label with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "Func.find_block: %s has no block %s" f.name label)

(** Replace a block (matched by label) with a rebuilt version. *)
let update_block (f : t) (b : Block.t) : t =
  {
    f with
    blocks =
      List.map (fun (b' : Block.t) -> if b'.label = b.Block.label then b else b') f.blocks;
  }

let map_blocks (g : Block.t -> Block.t) (f : t) : t =
  { f with blocks = List.map g f.blocks }

(** Allocate [n] fresh SSA identifiers; returns the first one and the updated
    function. *)
let fresh_ids (f : t) (n : int) : int * t =
  (f.next_id, { f with next_id = f.next_id + n })

let fresh_label (f : t) (hint : string) : string * t =
  ( Printf.sprintf "%s.%d" hint f.next_label,
    { f with next_label = f.next_label + 1 } )

(** All instructions of the function, in block order. *)
let instrs (f : t) : Instr.t list =
  List.concat_map (fun (b : Block.t) -> b.Block.instrs) f.blocks

(** All opcodes executed by the function, terminators included. *)
let opcodes (f : t) : Opcode.t list =
  List.concat_map Block.opcodes f.blocks

let instr_count (f : t) =
  List.fold_left
    (fun acc (b : Block.t) -> acc + List.length b.instrs + 1)
    0 f.blocks

(** Map from SSA id to defining instruction. *)
let definitions (f : t) : (int, Instr.t) Hashtbl.t =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (b : Block.t) ->
      List.iter
        (fun (i : Instr.t) -> if Instr.defines i then Hashtbl.replace tbl i.id i)
        b.instrs)
    f.blocks;
  tbl

(** Rename every operand according to [f] throughout the function. *)
let map_values (g : Value.t -> Value.t) (f : t) : t =
  map_blocks
    (fun b ->
      {
        b with
        instrs = List.map (Instr.map_operands g) b.instrs;
        term = Instr.map_terminator_operands g b.term;
      })
    f
